// Ablation — automatic format switching (DESIGN.md).
//
// The auto rule (choose_format) versus each format pinned, on the Fig 4
// density sweep. Expected shape: no pinned format wins everywhere — CSR
// wastes O(nrows) on hypersparse data, bitmap/dense waste O(n^2) on sparse
// data, DCSR pays a row-search penalty on dense rows — while auto tracks
// the per-regime winner in both storage and op time.

#include "bench_common.hpp"

#include <iostream>

#include "sparse/ewise.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::bench;
using sparse::Format;
using sparse::Index;
using S = semiring::PlusTimes<double>;

sparse::Matrix<double> workload(Index n, double fill, std::uint64_t seed) {
  const auto m = static_cast<std::size_t>(
      fill * static_cast<double>(n) * static_cast<double>(n));
  return er_matrix(n, std::max<std::size_t>(m, 1), seed);
}

void print_preamble() {
  util::banner("Ablation: pinned formats vs automatic switching");
  util::TextTable t({"density", "auto picks", "bytes auto", "bytes CSR",
                     "bytes bitmap"});
  const Index n = 1024;
  for (const double fill : {0.00002, 0.002, 0.15, 0.9}) {
    auto m = workload(n, fill, 3);
    const auto auto_fmt = m.format();
    const auto auto_bytes = m.bytes();
    auto csr = m;
    csr.convert(Format::kCsr);
    auto bmp = m;
    bmp.convert(Format::kBitmap);
    t.row(fill, std::string(format_name(auto_fmt)), auto_bytes, csr.bytes(),
          bmp.bytes());
  }
  t.print();
  std::cout << "\n(auto never loses by more than the regime constant; no "
               "pinned format is smallest in every row)\n";
}

void run_pinned(benchmark::State& state, Format f, double fill) {
  auto a = workload(1 << 12, fill, 1);
  auto b = workload(1 << 12, fill, 2);
  try {
    a.convert(f);
    b.convert(f);
  } catch (const std::length_error&) {
    state.SkipWithError("format impossible at this dimension");
    return;
  }
  for (auto _ : state) benchmark::DoNotOptimize(sparse::ewise_add<S>(a, b));
}

void bm_pinned_csr_sparse(benchmark::State& state) {
  run_pinned(state, Format::kCsr, 0.0005);
  state.SetLabel("CSR on sparse");
}
BENCHMARK(bm_pinned_csr_sparse);

void bm_pinned_dcsr_sparse(benchmark::State& state) {
  run_pinned(state, Format::kDcsr, 0.0005);
  state.SetLabel("DCSR on sparse");
}
BENCHMARK(bm_pinned_dcsr_sparse);

void bm_pinned_bitmap_sparse(benchmark::State& state) {
  run_pinned(state, Format::kBitmap, 0.0005);
  state.SetLabel("bitmap on sparse (wasteful)");
}
BENCHMARK(bm_pinned_bitmap_sparse);

void bm_auto_sparse(benchmark::State& state) {
  auto a = workload(1 << 12, 0.0005, 1);
  auto b = workload(1 << 12, 0.0005, 2);
  for (auto _ : state) benchmark::DoNotOptimize(sparse::ewise_add<S>(a, b));
  state.SetLabel("auto on sparse");
}
BENCHMARK(bm_auto_sparse);

void bm_hypersparse_csr_penalty(benchmark::State& state) {
  // 2^22 rows, 4096 entries: CSR's row pointer alone is 32 MB; DCSR is KBs.
  const Index n = Index{1} << 22;
  auto a = er_matrix(n, 4096, 5);
  auto d = a;
  d.convert(Format::kDcsr);
  auto c = a;
  c.convert(Format::kCsr);
  const bool use_dcsr = state.range(0) == 1;
  auto& m = use_dcsr ? d : c;
  for (auto _ : state) benchmark::DoNotOptimize(sparse::ewise_add<S>(m, m));
  state.SetLabel(std::string(use_dcsr ? "DCSR" : "CSR") + " on hypersparse, " +
                 std::to_string(m.bytes() / 1024) + " KiB stored");
}
BENCHMARK(bm_hypersparse_csr_penalty)->Arg(0)->Arg(1);

void bm_auto_format_cost(benchmark::State& state) {
  // The act of deciding + converting must be cheap relative to one op.
  auto a = workload(1 << 12, 0.002, 7);
  for (auto _ : state) {
    auto copy = a;
    copy.auto_format();
    benchmark::DoNotOptimize(copy);
  }
  state.SetLabel("copy + auto_format decision");
}
BENCHMARK(bm_auto_format_cost);

}  // namespace

int main(int argc, char** argv) {
  print_preamble();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
