// Ablation — SpGEMM accumulator strategy (DESIGN.md) and mask fusion.
//
// Three axes:
//   * accumulator strategy — Gustavson dense scratch vs flat open-addressing
//     hash vs sorted-merge, with the pre-refactor std::unordered_map
//     accumulator as the baseline the flat table must beat (the
//     BENCH_spgemm.json acceptance row);
//   * dimension regime — ordinary sparse vs hypersparse-huge, where the
//     dense accumulator is impossible and the hash path carries everything;
//   * mask density × fusion — fused mxm_masked (O(kept) accumulator work)
//     vs compute-then-filter at 1%/10%/50% mask density, both senses.

#include "bench_common.hpp"

#include <iostream>

#include "sparse/masked.hpp"
#include "sparse/mxm.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::bench;
using sparse::Index;
using sparse::MxmStrategy;
using S = semiring::PlusTimes<double>;

void print_preamble() {
  util::banner("Ablation: SpGEMM accumulators & fused masks");
  std::cout << "auto rule: dense accumulator iff ncols(B) <= 2^24\n";
  // Correctness cross-checks at bench time.
  const auto a = er_matrix(512, 4096, 1);
  const auto b = er_matrix(512, 4096, 2);
  const auto g = sparse::mxm_gustavson<S>(a, b);
  std::cout << "strategies agree on 512x512: "
            << (g == sparse::mxm_hash<S>(a, b) &&
                        g == sparse::mxm_sorted<S>(a, b) &&
                        g == sparse::mxm_hash_baseline<S>(a, b)
                    ? "yes"
                    : "NO")
            << "\n";
  const auto m = er_matrix(512, 8192, 3);
  std::cout << "fused == filtered on 512x512: "
            << (sparse::mxm_masked<S>(a, b, m) ==
                        sparse::mxm_masked_unfused<S>(a, b, m)
                    ? "yes"
                    : "NO")
            << "\n";
}

void bm_gustavson(benchmark::State& state) {
  const Index n = state.range(0);
  const auto a = er_matrix(n, static_cast<std::size_t>(n) * 8, 1);
  const auto b = er_matrix(n, static_cast<std::size_t>(n) * 8, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::mxm<S>(a, b, MxmStrategy::kGustavson));
  }
  state.SetLabel("Gustavson (dense accumulator)");
}
BENCHMARK(bm_gustavson)->Arg(256)->Arg(1024)->Arg(4096);

void bm_hash(benchmark::State& state) {
  const Index n = state.range(0);
  const auto a = er_matrix(n, static_cast<std::size_t>(n) * 8, 1);
  const auto b = er_matrix(n, static_cast<std::size_t>(n) * 8, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::mxm<S>(a, b, MxmStrategy::kHash));
  }
  state.SetLabel("hash accumulator");
}
BENCHMARK(bm_hash)->Arg(256)->Arg(1024)->Arg(4096);

sparse::Matrix<double> hyper(Index dim_log2, std::size_t m, std::uint64_t seed) {
  std::vector<sparse::Triple<double>> t;
  for (const auto& e : util::hypersparse_edges(Index{1} << dim_log2, m, seed)) {
    t.push_back({e.src, e.dst, e.weight});
  }
  return sparse::Matrix<double>::from_triples<S>(Index{1} << dim_log2,
                                                 Index{1} << dim_log2,
                                                 std::move(t));
}

void bm_hash_hypersparse(benchmark::State& state) {
  // Gustavson cannot run here (2^40 columns); hash is O(flops).
  const auto a = hyper(static_cast<Index>(state.range(0)), 1 << 14, 1);
  const auto b = hyper(static_cast<Index>(state.range(0)), 1 << 14, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::mxm<S>(a, b, MxmStrategy::kHash));
  }
  state.SetLabel("hash on 2^" + std::to_string(state.range(0)) +
                 " dims (Gustavson impossible)");
}
BENCHMARK(bm_hash_hypersparse)->Arg(30)->Arg(40)->Arg(50);

/// Hypersparse bipartite product factors with real per-row accumulator
/// traffic: `rows` occupied rows at huge indices, each with `row_nnz`
/// entries into a small shared inner key space, so each output row folds
/// row_nnz × row_nnz partial products through the accumulator.
sparse::Matrix<double> hyper_wide(Index dim_log2, Index rows, Index row_nnz,
                                  Index inner, std::uint64_t seed) {
  const Index dim = Index{1} << dim_log2;
  util::Xoshiro256 rng(seed);
  std::vector<sparse::Triple<double>> t;
  for (Index r = 0; r < rows; ++r) {
    const auto row =
        static_cast<Index>(rng.bounded(static_cast<std::uint64_t>(dim)));
    for (Index e = 0; e < row_nnz; ++e) {
      t.push_back({row,
                   static_cast<Index>(rng.bounded(
                       static_cast<std::uint64_t>(inner))),
                   rng.uniform(1.0, 2.0)});
    }
  }
  return sparse::Matrix<double>::from_triples<S>(dim, dim, std::move(t));
}

void bm_hash_flat_vs_stdmap(benchmark::State& state) {
  // The acceptance comparison: flat open-addressing accumulator vs the
  // pre-refactor std::unordered_map baseline on the hypersparse path, at
  // ~2^11 flops per occupied row (where the accumulator, not the row
  // dispatch, is the cost). Arg0: log2 dimension; Arg1: 0 = flat, 1 = map.
  const Index inner = Index{1} << 12;
  const auto a =
      hyper_wide(static_cast<Index>(state.range(0)), 1 << 10, 32, inner, 1);
  // B's occupied rows must live in the inner key space A's columns hit.
  util::Xoshiro256 rng(2);
  std::vector<sparse::Triple<double>> tb;
  const Index bdim = Index{1} << static_cast<Index>(state.range(0));
  for (Index r = 0; r < inner; ++r) {
    for (Index e = 0; e < 16; ++e) {
      tb.push_back({r,
                    static_cast<Index>(rng.bounded(
                        static_cast<std::uint64_t>(bdim))),
                    rng.uniform(1.0, 2.0)});
    }
  }
  const auto b = sparse::Matrix<double>::from_triples<S>(bdim, bdim,
                                                         std::move(tb));
  const bool flat = state.range(1) == 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(flat ? sparse::mxm_hash<S>(a, b)
                                  : sparse::mxm_hash_baseline<S>(a, b));
  }
  state.SetLabel(std::string(flat ? "flat open-addressing" : "unordered_map") +
                 ", 2^" + std::to_string(state.range(0)) + " dims");
}
BENCHMARK(bm_hash_flat_vs_stdmap)
    ->Args({40, 0})
    ->Args({40, 1})
    ->Args({50, 0})
    ->Args({50, 1});

void bm_sorted_accumulator(benchmark::State& state) {
  const Index n = state.range(0);
  const auto a = er_matrix(n, static_cast<std::size_t>(n) * 8, 1);
  const auto b = er_matrix(n, static_cast<std::size_t>(n) * 8, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::mxm<S>(a, b, MxmStrategy::kSorted));
  }
  state.SetLabel("sorted-merge accumulator");
}
BENCHMARK(bm_sorted_accumulator)->Arg(256)->Arg(1024)->Arg(4096);

void bm_masked(benchmark::State& state) {
  // Mask-density × accumulator-strategy × fusion sweep.
  // Arg0: mask density in tenths of a percent of the full extent,
  // Arg1: strategy (0 Gustavson, 1 flat hash, 2 sorted),
  // Arg2: 0 = fused (mask consulted during accumulation), 1 = unfused
  //       (compute then filter).
  const Index n = 1024;
  const auto a = er_matrix(n, static_cast<std::size_t>(n) * 16, 1);
  const auto b = er_matrix(n, static_cast<std::size_t>(n) * 16, 2);
  const auto density_tenths = static_cast<std::size_t>(state.range(0));
  const auto m = er_matrix(
      n, static_cast<std::size_t>(n) * n * density_tenths / 1000, 3);
  const auto strategy = state.range(1) == 0   ? MxmStrategy::kGustavson
                        : state.range(1) == 1 ? MxmStrategy::kHash
                                              : MxmStrategy::kSorted;
  const bool fused = state.range(2) == 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fused ? sparse::mxm_masked<S>(a, b, m, {}, nullptr, strategy)
              : sparse::mxm_masked_unfused<S>(a, b, m, {}, strategy));
  }
  state.SetLabel(std::string(fused ? "fused" : "unfused") + ", mask " +
                 std::to_string(density_tenths / 10.0) + "%, " +
                 (state.range(1) == 0   ? "Gustavson"
                  : state.range(1) == 1 ? "flat hash"
                                        : "sorted"));
}
BENCHMARK(bm_masked)
    ->Args({10, 0, 0})
    ->Args({10, 0, 1})
    ->Args({10, 1, 0})
    ->Args({10, 1, 1})
    ->Args({10, 2, 0})
    ->Args({10, 2, 1})
    ->Args({100, 0, 0})
    ->Args({100, 0, 1})
    ->Args({100, 1, 0})
    ->Args({100, 1, 1})
    ->Args({500, 0, 0})
    ->Args({500, 0, 1});

void bm_masked_probe(benchmark::State& state) {
  // Mask-probe ablation: binary search vs per-row bitmap on dense mask
  // rows (the first half of the ROADMAP "merge-path masked probe" item).
  // Arg0: mask density in tenths of a percent; Arg1: 0 = kBinary forced,
  // 1 = kBitmap forced, 2 = kAuto (density/amortization gate).
  const Index n = 1024;
  const auto a = er_matrix(n, static_cast<std::size_t>(n) * 16, 1);
  const auto b = er_matrix(n, static_cast<std::size_t>(n) * 16, 2);
  const auto density_tenths = static_cast<std::size_t>(state.range(0));
  const auto m = er_matrix(
      n, static_cast<std::size_t>(n) * n * density_tenths / 1000, 3);
  const auto probe = state.range(1) == 0   ? sparse::MaskProbe::kBinary
                     : state.range(1) == 1 ? sparse::MaskProbe::kBitmap
                     : state.range(1) == 3 ? sparse::MaskProbe::kMerge
                                           : sparse::MaskProbe::kAuto;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sparse::mxm_masked<S>(a, b, m, {.complement = false, .probe = probe}));
  }
  state.SetLabel(std::string(state.range(1) == 0   ? "binary-search"
                             : state.range(1) == 1 ? "bitmap"
                             : state.range(1) == 3 ? "merge"
                                                   : "auto") +
                 " probe, mask " + std::to_string(density_tenths / 10.0) +
                 "%");
}
BENCHMARK(bm_masked_probe)
    ->Args({100, 0})
    ->Args({100, 1})
    ->Args({100, 2})
    ->Args({100, 3})
    ->Args({500, 0})
    ->Args({500, 1})
    ->Args({500, 2})
    ->Args({500, 3});

void bm_masked_probe_hypersparse(benchmark::State& state) {
  // The band the merge probe exists for: long mask rows over a column
  // space far too wide to arm a bitmap (2^40 — inadmissible outright), so
  // the contest is binary search's O(log len) per product vs the merge's
  // amortized cursor walk. Arg: 0 = kBinary forced, 1 = kMerge forced,
  // 2 = kAuto (must pick the merge here).
  const Index huge = Index{1} << 40;
  const int rows = 256;
  std::vector<sparse::Triple<double>> ta, tb, tm;
  for (int r = 0; r < rows; ++r) {
    ta.push_back({r, 7, 1.0});
    ta.push_back({r, 11, 2.0});
  }
  // Two long B rows and a long mask row per output row: every product
  // probes a 4096-entry sorted mask row in ascending column order.
  for (int j = 0; j < 4096; ++j) {
    const Index col = (Index{1} << 30) + j * (Index{1} << 18);
    tb.push_back({7, col, 1.0 + j});
    tb.push_back({11, col + 1, 2.0 + j});
  }
  for (int r = 0; r < rows; ++r) {
    for (int j = 0; j < 4096; j += 2) {
      const Index col = (Index{1} << 30) + j * (Index{1} << 18);
      tm.push_back({r, col, 1.0});
    }
  }
  const auto a = sparse::Matrix<double>::from_unique_triples(rows, huge,
                                                             std::move(ta));
  const auto b = sparse::Matrix<double>::from_unique_triples(huge, huge,
                                                             std::move(tb));
  const auto m = sparse::Matrix<double>::from_unique_triples(rows, huge,
                                                             std::move(tm));
  const auto probe = state.range(0) == 0   ? sparse::MaskProbe::kBinary
                     : state.range(0) == 1 ? sparse::MaskProbe::kMerge
                                           : sparse::MaskProbe::kAuto;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sparse::mxm_masked<S>(a, b, m, {.complement = false, .probe = probe}));
  }
  state.SetLabel(std::string(state.range(0) == 0   ? "binary-search"
                             : state.range(0) == 1 ? "merge"
                                                   : "auto") +
                 " probe, hypersparse 2^40 column space");
}
BENCHMARK(bm_masked_probe_hypersparse)->Arg(0)->Arg(1)->Arg(2);

void bm_masked_complement_bfs_style(benchmark::State& state) {
  // The BFS shape: thin frontier row-vector × adjacency with a dense
  // complement ("visited") mask — the case fusion exists for. Arg: percent
  // of vertices already visited.
  const Index n = Index{1} << 16;
  const auto a = er_matrix(n, static_cast<std::size_t>(n) * 8, 1);
  util::Xoshiro256 rng(4);
  std::vector<sparse::Triple<double>> ft, vt;
  for (int i = 0; i < 256; ++i) {
    ft.push_back({0, static_cast<Index>(rng.bounded(
                         static_cast<std::uint64_t>(n))), 1.0});
  }
  const auto visited_share = static_cast<std::uint64_t>(state.range(0));
  for (Index v = 0; v < n; ++v) {
    if (rng.bounded(100) < visited_share) vt.push_back({0, v, 1.0});
  }
  const auto frontier =
      sparse::Matrix<double>::from_triples<S>(1, n, std::move(ft));
  const auto visited =
      sparse::Matrix<double>::from_triples<S>(1, n, std::move(vt));
  const bool fused = state.range(1) == 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fused ? sparse::mxm_masked<S>(frontier, a, visited,
                                      {.complement = true})
              : sparse::mxm_masked_unfused<S>(frontier, a, visited,
                                              {.complement = true}));
  }
  state.SetLabel(std::string(fused ? "fused" : "unfused") + ", " +
                 std::to_string(visited_share) + "% visited, ¬mask");
}
BENCHMARK(bm_masked_complement_bfs_style)
    ->Args({50, 0})
    ->Args({50, 1})
    ->Args({95, 0})
    ->Args({95, 1});

void bm_auto(benchmark::State& state) {
  const Index n = state.range(0);
  const auto a = er_matrix(n, static_cast<std::size_t>(n) * 8, 1);
  const auto b = er_matrix(n, static_cast<std::size_t>(n) * 8, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::mxm<S>(a, b, MxmStrategy::kAuto));
  }
  state.SetLabel("auto strategy");
}
BENCHMARK(bm_auto)->Arg(1024)->Arg(4096);

void bm_threads(benchmark::State& state) {
  // Thread-scaling sweep on the unified runtime: Arg = thread count.
  // Output is bit-identical at every row of the sweep (determinism
  // contract), so this measures pure scheduling/scaling behavior.
  hyperspace::util::set_num_threads(static_cast<int>(state.range(0)));
  const Index n = 2048;
  const auto a = er_matrix(n, static_cast<std::size_t>(n) * 16, 1);
  const auto b = er_matrix(n, static_cast<std::size_t>(n) * 16, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::mxm<S>(a, b, MxmStrategy::kGustavson));
  }
  state.SetLabel("Gustavson, " + std::to_string(state.range(0)) + " threads");
  hyperspace::util::set_num_threads(0);
}
BENCHMARK(bm_threads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void bm_dense_output_regime(benchmark::State& state) {
  // Dense-ish products (high flops per output): Gustavson's advantage peaks.
  const Index n = 512;
  const auto a = er_matrix(n, static_cast<std::size_t>(n) * 64, 3);
  const auto b = er_matrix(n, static_cast<std::size_t>(n) * 64, 4);
  const bool gust = state.range(0) == 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::mxm<S>(
        a, b, gust ? MxmStrategy::kGustavson : MxmStrategy::kHash));
  }
  state.SetLabel(gust ? "dense-output, Gustavson" : "dense-output, hash");
}
BENCHMARK(bm_dense_output_regime)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  print_preamble();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
