// Ablation — SpGEMM accumulator strategy (DESIGN.md).
//
// Gustavson's dense accumulator versus the hash accumulator across density
// regimes and dimension scales. Expected shape: Gustavson wins when the
// output row fits a reusable dense accumulator (ordinary sparse, modest
// ncols); hash wins — and is the only option — when the column space is
// hypersparse-huge. The auto strategy must track the winner.

#include "bench_common.hpp"

#include <iostream>

#include "sparse/mxm.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::bench;
using sparse::Index;
using sparse::MxmStrategy;
using S = semiring::PlusTimes<double>;

void print_preamble() {
  util::banner("Ablation: SpGEMM Gustavson vs hash accumulator");
  std::cout << "auto rule: dense accumulator iff ncols(B) <= 2^24\n";
  // Correctness cross-check at bench time.
  const auto a = er_matrix(512, 4096, 1);
  const auto b = er_matrix(512, 4096, 2);
  std::cout << "strategies agree on 512x512: "
            << (sparse::mxm_gustavson<S>(a, b) == sparse::mxm_hash<S>(a, b)
                    ? "yes"
                    : "NO")
            << "\n";
}

void bm_gustavson(benchmark::State& state) {
  const Index n = state.range(0);
  const auto a = er_matrix(n, static_cast<std::size_t>(n) * 8, 1);
  const auto b = er_matrix(n, static_cast<std::size_t>(n) * 8, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::mxm<S>(a, b, MxmStrategy::kGustavson));
  }
  state.SetLabel("Gustavson (dense accumulator)");
}
BENCHMARK(bm_gustavson)->Arg(256)->Arg(1024)->Arg(4096);

void bm_hash(benchmark::State& state) {
  const Index n = state.range(0);
  const auto a = er_matrix(n, static_cast<std::size_t>(n) * 8, 1);
  const auto b = er_matrix(n, static_cast<std::size_t>(n) * 8, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::mxm<S>(a, b, MxmStrategy::kHash));
  }
  state.SetLabel("hash accumulator");
}
BENCHMARK(bm_hash)->Arg(256)->Arg(1024)->Arg(4096);

sparse::Matrix<double> hyper(Index dim_log2, std::size_t m, std::uint64_t seed) {
  std::vector<sparse::Triple<double>> t;
  for (const auto& e : util::hypersparse_edges(Index{1} << dim_log2, m, seed)) {
    t.push_back({e.src, e.dst, e.weight});
  }
  return sparse::Matrix<double>::from_triples<S>(Index{1} << dim_log2,
                                                 Index{1} << dim_log2,
                                                 std::move(t));
}

void bm_hash_hypersparse(benchmark::State& state) {
  // Gustavson cannot run here (2^40 columns); hash is O(flops).
  const auto a = hyper(static_cast<Index>(state.range(0)), 1 << 14, 1);
  const auto b = hyper(static_cast<Index>(state.range(0)), 1 << 14, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::mxm<S>(a, b, MxmStrategy::kHash));
  }
  state.SetLabel("hash on 2^" + std::to_string(state.range(0)) +
                 " dims (Gustavson impossible)");
}
BENCHMARK(bm_hash_hypersparse)->Arg(30)->Arg(40)->Arg(50);

void bm_auto(benchmark::State& state) {
  const Index n = state.range(0);
  const auto a = er_matrix(n, static_cast<std::size_t>(n) * 8, 1);
  const auto b = er_matrix(n, static_cast<std::size_t>(n) * 8, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::mxm<S>(a, b, MxmStrategy::kAuto));
  }
  state.SetLabel("auto strategy");
}
BENCHMARK(bm_auto)->Arg(1024)->Arg(4096);

void bm_threads(benchmark::State& state) {
  // Thread-scaling sweep on the unified runtime: Arg = thread count.
  // Output is bit-identical at every row of the sweep (determinism
  // contract), so this measures pure scheduling/scaling behavior.
  hyperspace::util::set_num_threads(static_cast<int>(state.range(0)));
  const Index n = 2048;
  const auto a = er_matrix(n, static_cast<std::size_t>(n) * 16, 1);
  const auto b = er_matrix(n, static_cast<std::size_t>(n) * 16, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::mxm<S>(a, b, MxmStrategy::kGustavson));
  }
  state.SetLabel("Gustavson, " + std::to_string(state.range(0)) + " threads");
  hyperspace::util::set_num_threads(0);
}
BENCHMARK(bm_threads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void bm_dense_output_regime(benchmark::State& state) {
  // Dense-ish products (high flops per output): Gustavson's advantage peaks.
  const Index n = 512;
  const auto a = er_matrix(n, static_cast<std::size_t>(n) * 64, 3);
  const auto b = er_matrix(n, static_cast<std::size_t>(n) * 64, 4);
  const bool gust = state.range(0) == 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::mxm<S>(
        a, b, gust ? MxmStrategy::kGustavson : MxmStrategy::kHash));
  }
  state.SetLabel(gust ? "dense-output, Gustavson" : "dense-output, hash");
}
BENCHMARK(bm_dense_output_regime)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  print_preamble();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
