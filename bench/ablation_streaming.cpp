// Ablation — hierarchical hypersparse streaming ingest (DESIGN.md; the
// design of Kepner et al.'s "75B streaming inserts/second" hierarchical
// hypersparse GraphBLAS matrices, cited as [8]).
//
// Compares insert paths into a 2^48-keyed adjacency: (a) the hierarchical
// StreamingMatrix (buffered COO cascading into geometric layers), (b) naive
// rebuild-per-batch, (c) one-shot batch build (the upper bound). Expected
// shape: hierarchical ingest is within a small factor of the one-shot
// build and orders of magnitude above naive rebuilds, with rate independent
// of the key-space dimension.

#include "bench_common.hpp"

#include <iostream>

#include "sparse/stream.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::bench;
using sparse::Index;
using S = semiring::PlusTimes<double>;

std::vector<util::Edge> stream_edges(std::size_t m) {
  return util::hypersparse_edges(Index{1} << 48, m, 21);
}

void print_preamble() {
  util::banner("Ablation: hierarchical hypersparse streaming inserts");
  const auto edges = stream_edges(100000);
  sparse::StreamingMatrix<S> sm(Index{1} << 48, Index{1} << 48, 1 << 14);
  util::WallTimer t;
  for (const auto& e : edges) sm.insert(e.src, e.dst, e.weight);
  const double secs = t.seconds();
  std::cout << "100k inserts into 2^48 x 2^48 key space: "
            << static_cast<double>(edges.size()) / secs / 1e6
            << " M inserts/s, " << sm.n_layers() << " layers\n";
  // Correctness: snapshot equals the batch build.
  std::vector<sparse::Triple<double>> batch;
  for (const auto& e : edges) batch.push_back({e.src, e.dst, e.weight});
  const auto built = sparse::Matrix<double>::from_triples<S>(
      Index{1} << 48, Index{1} << 48, std::move(batch));
  std::cout << "snapshot == batch build: "
            << (sm.snapshot() == built ? "yes" : "NO") << '\n';
}

void bm_hierarchical_ingest(benchmark::State& state) {
  const auto edges = stream_edges(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    sparse::StreamingMatrix<S> sm(Index{1} << 48, Index{1} << 48, 1 << 14);
    for (const auto& e : edges) sm.insert(e.src, e.dst, e.weight);
    benchmark::DoNotOptimize(sm.pending_updates());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel("hierarchical (buffer 16Ki, fanout 4)");
}
BENCHMARK(bm_hierarchical_ingest)->Arg(10000)->Arg(100000)->Arg(400000);

void bm_naive_rebuild_ingest(benchmark::State& state) {
  // Rebuild the sorted matrix every batch of 1024 inserts — what ingest
  // looks like without the hierarchy.
  const auto edges = stream_edges(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    sparse::Matrix<double> acc(Index{1} << 48, Index{1} << 48);
    std::vector<sparse::Triple<double>> pend;
    for (const auto& e : edges) {
      pend.push_back({e.src, e.dst, e.weight});
      if (pend.size() == 1024) {
        acc = sparse::ewise_add<S>(
            acc, sparse::Matrix<double>::from_triples<S>(
                     Index{1} << 48, Index{1} << 48, std::move(pend)));
        pend.clear();
      }
    }
    benchmark::DoNotOptimize(acc.nnz());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel("naive rebuild per 1Ki batch");
}
BENCHMARK(bm_naive_rebuild_ingest)->Arg(10000)->Arg(100000);

void bm_batch_build(benchmark::State& state) {
  const auto edges = stream_edges(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::vector<sparse::Triple<double>> t;
    t.reserve(edges.size());
    for (const auto& e : edges) t.push_back({e.src, e.dst, e.weight});
    benchmark::DoNotOptimize(sparse::Matrix<double>::from_triples<S>(
        Index{1} << 48, Index{1} << 48, std::move(t)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel("one-shot batch build (upper bound)");
}
BENCHMARK(bm_batch_build)->Arg(10000)->Arg(100000)->Arg(400000);

void bm_buffer_capacity_sweep(benchmark::State& state) {
  // The design knob: larger level-0 buffers amortize more per cascade.
  const auto edges = stream_edges(100000);
  const auto cap = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sparse::StreamingMatrix<S> sm(Index{1} << 48, Index{1} << 48, cap);
    for (const auto& e : edges) sm.insert(e.src, e.dst, e.weight);
    benchmark::DoNotOptimize(sm.n_layers());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
  state.SetLabel("buffer capacity " + std::to_string(cap));
}
BENCHMARK(bm_buffer_capacity_sweep)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void bm_snapshot_cost(benchmark::State& state) {
  const auto edges = stream_edges(static_cast<std::size_t>(state.range(0)));
  sparse::StreamingMatrix<S> sm(Index{1} << 48, Index{1} << 48, 1 << 14);
  for (const auto& e : edges) sm.insert(e.src, e.dst, e.weight);
  for (auto _ : state) benchmark::DoNotOptimize(sm.snapshot());
  state.SetLabel("snapshot (merge all layers)");
}
BENCHMARK(bm_snapshot_cost)->Arg(100000);

}  // namespace

int main(int argc, char** argv) {
  print_preamble();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
