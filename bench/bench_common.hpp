#pragma once
// Shared helpers for the benchmark binaries.

#include <benchmark/benchmark.h>

#include <vector>

#include "semiring/all.hpp"
#include "sparse/matrix.hpp"
#include "util/generators.hpp"
#include "util/table.hpp"
#include "util/timing.hpp"

namespace hyperspace::bench {

/// R-MAT adjacency matrix at the given scale (2^scale vertices).
inline sparse::Matrix<double> rmat_matrix(int scale, double edge_factor = 8,
                                          std::uint64_t seed = 1) {
  using S = semiring::PlusTimes<double>;
  const auto edges = util::rmat_edges(
      {.scale = scale, .edge_factor = edge_factor, .seed = seed});
  std::vector<sparse::Triple<double>> t;
  t.reserve(edges.size());
  for (const auto& e : edges) t.push_back({e.src, e.dst, e.weight});
  return sparse::Matrix<double>::from_triples<S>(
      sparse::Index{1} << scale, sparse::Index{1} << scale, std::move(t));
}

/// Uniform-random square matrix with m entries.
inline sparse::Matrix<double> er_matrix(sparse::Index n, std::size_t m,
                                        std::uint64_t seed = 1) {
  using S = semiring::PlusTimes<double>;
  std::vector<sparse::Triple<double>> t;
  t.reserve(m);
  for (const auto& e : util::erdos_renyi_edges(n, m, seed)) {
    t.push_back({e.src, e.dst, e.weight});
  }
  return sparse::Matrix<double>::from_triples<S>(n, n, std::move(t));
}

}  // namespace hyperspace::bench
