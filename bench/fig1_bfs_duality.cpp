// Fig 1 — Graph Adjacency Array Duality.
//
// Reproduction: the worked BFS step (v^T A reaches the source's neighbors)
// on an Alice/Bob/Carl graph, then the measured duality: BFS via repeated
// vxm (array method) versus the classic frontier queue (graph method) on
// R-MAT graphs. Expected shape: both scale linearly in edges; the queue
// baseline is faster by a constant factor (no per-level array assembly),
// while the array method is semiring-generic — the paper's point is
// equivalence of results, which is asserted here at bench time.

#include "bench_common.hpp"

#include <iostream>

#include "hypergraph/bfs.hpp"
#include "sparse/io.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::bench;
using S = semiring::PlusTimes<double>;

void print_fig1() {
  util::banner("Fig 1: BFS on a graph == one array multiply per level");
  // Alice(0) -> Bob(1), Alice -> Carl(2), Bob -> Carl.
  const auto a = sparse::make_matrix<S>(
      3, 3, {{0, 1, 1.0}, {0, 2, 1.0}, {1, 2, 1.0}});
  std::cout << "Adjacency array A^T column view (A(k1,k2) != 0 => edge):\n"
            << sparse::to_grid(a) << '\n';
  const auto v = sparse::Matrix<double>::from_unique_triples(
      1, 3, {{0, 0, 1.0}});
  const auto step = sparse::mxm<S>(v, a);
  std::cout << "v (start at Alice):   " << sparse::to_grid(v)
            << "v^T A (one BFS step): " << sparse::to_grid(step);
  const auto levels = hypergraph::bfs_array(a, 0);
  std::cout << "BFS levels from Alice: ";
  for (const auto l : levels) std::cout << l << ' ';
  std::cout << "\nqueue traversal agrees: "
            << (levels == hypergraph::bfs_queue(a, 0) ? "yes" : "NO") << "\n";
}

void bm_bfs_array(benchmark::State& state) {
  const auto a = rmat_matrix(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hypergraph::bfs_array(a, 0));
  }
  state.SetLabel("array method (vxm per level)");
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(bm_bfs_array)->Arg(8)->Arg(10)->Arg(12)->Arg(14);

void bm_bfs_queue(benchmark::State& state) {
  const auto a = rmat_matrix(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hypergraph::bfs_queue(a, 0));
  }
  state.SetLabel("graph method (frontier queue)");
  state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(bm_bfs_queue)->Arg(8)->Arg(10)->Arg(12)->Arg(14);

void bm_bfs_equivalence_check(benchmark::State& state) {
  const auto a = rmat_matrix(static_cast<int>(state.range(0)));
  bool equal = true;
  for (auto _ : state) {
    equal = equal &&
            (hypergraph::bfs_array(a, 0) == hypergraph::bfs_queue(a, 0));
  }
  if (!equal) state.SkipWithError("duality violated");
  state.SetLabel("both sides, results compared");
}
BENCHMARK(bm_bfs_equivalence_check)->Arg(10);

}  // namespace

int main(int argc, char** argv) {
  print_fig1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
