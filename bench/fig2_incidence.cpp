// Fig 2 — Hyper-Multi-Graph Edge Array Duality.
//
// Reproduction: a 13-edge, 12-vertex hyper-multi-graph rendered as its
// E_out / E_in incidence arrays (hyper-edge row touching >2 vertices,
// multi-edge rows repeating a vertex pair), then streaming-ingest rate
// series: edges/second into incidence arrays as the stream grows, for both
// modest and hypersparse vertex key spaces.

#include "bench_common.hpp"

#include <iostream>

#include "hypergraph/incidence.hpp"
#include "sparse/io.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::bench;
using hypergraph::HyperEdge;
using sparse::Index;

hypergraph::IncidencePair fig2_graph() {
  std::vector<HyperEdge> edges;
  for (const auto& [s, d] :
       std::vector<std::pair<Index, Index>>{{0, 1}, {1, 2}, {2, 3}, {3, 4},
                                            {4, 5}, {5, 6}, {6, 7}, {7, 0},
                                            {8, 9}, {10, 11}}) {
    edges.push_back({{s}, {d}, 1.0});
  }
  edges.push_back({{0, 2, 4}, {6, 8, 10}, 1.0});  // hyper-edge (red)
  edges.push_back({{3}, {4}, 1.0});               // multi-edge (blue)
  edges.push_back({{3}, {4}, 1.0});
  return hypergraph::IncidencePair(12, edges);
}

void print_fig2() {
  util::banner("Fig 2: Incidence arrays of a hyper-multi-graph");
  const auto g = fig2_graph();
  std::cout << "13 edges x 12 vertices; edge 10 is a hyper-edge, edges 11-12 "
               "repeat (3,4) (multi-edges)\n\n";
  std::cout << "E_out (edge k leaves vertex k1):\n"
            << sparse::to_grid(g.eout(), 3) << '\n';
  std::cout << "E_in (edge k enters vertex k2):\n"
            << sparse::to_grid(g.ein(), 3) << '\n';
  std::cout << "has hyper-edges: " << (g.has_hyper_edges() ? "yes" : "no")
            << "\n";
}

void bm_incidence_ingest(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto edges = util::erdos_renyi_edges(1 << 16, m, 5);
  std::vector<std::pair<Index, Index>> pairs;
  pairs.reserve(m);
  for (const auto& e : edges) pairs.emplace_back(e.src, e.dst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hypergraph::incidence_from_edges(1 << 16, pairs));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(m));
  state.SetLabel("64k-vertex key space");
}
BENCHMARK(bm_incidence_ingest)->Arg(10000)->Arg(100000)->Arg(400000);

void bm_incidence_ingest_hypersparse(benchmark::State& state) {
  // The same stream drawn from a 2^48 key space: the edge dimension stays
  // O(edges); vertex dimension never allocates (DCSR columns).
  const auto m = static_cast<std::size_t>(state.range(0));
  const Index huge = Index{1} << 48;
  const auto edges = util::hypersparse_edges(huge, m, 6);
  std::vector<hypergraph::HyperEdge> hs;
  hs.reserve(m);
  for (const auto& e : edges) hs.push_back({{e.src}, {e.dst}, e.weight});
  for (auto _ : state) {
    benchmark::DoNotOptimize(hypergraph::IncidencePair(huge, hs));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(m));
  state.SetLabel("2^48-vertex key space (hypersparse)");
}
BENCHMARK(bm_incidence_ingest_hypersparse)->Arg(10000)->Arg(100000);

void bm_hyperedge_expansion(benchmark::State& state) {
  // Hyper-edges with k endpoints: ingest cost grows with endpoint count.
  const int k = static_cast<int>(state.range(0));
  std::vector<HyperEdge> hs;
  util::Xoshiro256 rng(7);
  for (int e = 0; e < 5000; ++e) {
    HyperEdge h;
    for (int i = 0; i < k; ++i) {
      h.out.push_back(static_cast<Index>(rng.bounded(1 << 14)));
      h.in.push_back(static_cast<Index>(rng.bounded(1 << 14)));
    }
    h.weight = 1.0;
    hs.push_back(std::move(h));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(hypergraph::IncidencePair(1 << 14, hs));
  }
  state.SetLabel(std::to_string(k) + " endpoints/side");
}
BENCHMARK(bm_hyperedge_expansion)->Arg(1)->Arg(4)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  print_fig2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
