// Fig 3 — Edge Array to Adjacency Array: A = E_out^T E_in.
//
// Reproduction: the Fig 2 example projected entry-for-entry (the A(4,3)
// style formula is cross-checked against a direct scalar evaluation), then
// scaling series: projection by array multiply versus direct adjacency
// construction from the raw edge stream. Expected shape: both O(edges) for
// simple edges; projection is the only formulation that also handles
// hyper-edges (which expand to out x in pairs).

#include "bench_common.hpp"

#include <iostream>

#include "hypergraph/incidence.hpp"
#include "hypergraph/projection.hpp"
#include "sparse/io.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::bench;
using sparse::Index;
using S = semiring::PlusTimes<double>;

void print_fig3() {
  util::banner("Fig 3: A = E_out^T (+.x) E_in");
  // A 7-vertex graph in incidence form, mirroring the figure's shape.
  const auto g = hypergraph::incidence_from_edges(
      7, {{3, 2}, {3, 2}, {0, 1}, {1, 2}, {2, 4}, {4, 5}, {5, 6}, {6, 0},
          {3, 5}, {4, 6}, {0, 2}, {1, 3}});
  const auto a = hypergraph::adjacency(g);
  std::cout << "E_out^T E_in =\n" << sparse::to_grid(a, 3) << '\n';
  // The paper's formula for a single entry, evaluated by hand:
  double a32 = 0;
  for (Index k = 0; k < g.n_edges(); ++k) {
    const auto o = g.eout().get(k, 3);
    const auto i = g.ein().get(k, 2);
    if (o && i) a32 += *o * *i;
  }
  std::cout << "A(3,2) via sum_k E_out^T(3,k) x E_in(k,2) = " << a32
            << "   (array multiply gave " << a.get(3, 2).value_or(0)
            << "; multi-edge 3->2 accumulated)\n";
}

void bm_projection(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  const auto edges = util::rmat_edges({.scale = scale, .edge_factor = 8});
  std::vector<std::pair<Index, Index>> pairs;
  for (const auto& e : edges) pairs.emplace_back(e.src, e.dst);
  const auto g = hypergraph::incidence_from_edges(Index{1} << scale, pairs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hypergraph::adjacency(g));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(edges.size()));
  state.SetLabel("A = E_out^T E_in");
}
BENCHMARK(bm_projection)->Arg(8)->Arg(10)->Arg(12);

void bm_direct_adjacency(benchmark::State& state) {
  const int scale = static_cast<int>(state.range(0));
  const auto edges = util::rmat_edges({.scale = scale, .edge_factor = 8});
  std::vector<sparse::Triple<double>> t;
  for (const auto& e : edges) t.push_back({e.src, e.dst, 1.0});
  for (auto _ : state) {
    auto copy = t;
    benchmark::DoNotOptimize(sparse::Matrix<double>::from_triples<S>(
        Index{1} << scale, Index{1} << scale, std::move(copy)));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(edges.size()));
  state.SetLabel("direct build (baseline, simple edges only)");
}
BENCHMARK(bm_direct_adjacency)->Arg(8)->Arg(10)->Arg(12);

void bm_projection_semiring(benchmark::State& state) {
  // Projection over min.+ (earliest-link semantics) — same kernel.
  const auto edges = util::rmat_edges({.scale = 10, .edge_factor = 8});
  std::vector<std::pair<Index, Index>> pairs;
  for (const auto& e : edges) pairs.emplace_back(e.src, e.dst);
  const auto g = hypergraph::incidence_from_edges(1 << 10, pairs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hypergraph::adjacency_projection<semiring::MinTimes<double>>(
            g.eout(), g.ein()));
  }
  state.SetLabel("projection over min.x");
}
BENCHMARK(bm_projection_semiring);

}  // namespace

int main(int argc, char** argv) {
  print_fig3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
