// Fig 4 — Dense, Sparse, and Hypersparse Arrays.
//
// Reproduction: the three regimes (nnz ~ N^2, nnz ~ N, nnz << N) built at a
// sweep of N, printing the storage format the container picks and the bytes
// per stored entry. Expected shape: dense bytes/entry is constant-small;
// CSR adds an index per entry plus an O(N) row pointer (which dominates as
// density falls); DCSR stays O(nnz) — flat bytes/entry no matter how large
// N grows, which is the figure's point. Then timed ewise work per regime.

#include "bench_common.hpp"

#include <iostream>

#include "sparse/ewise.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::bench;
using sparse::Index;
using S = semiring::PlusTimes<double>;

sparse::Matrix<double> dense_regime(Index n) {
  return sparse::Matrix<double>::full(n, n, 1.0);
}

sparse::Matrix<double> sparse_regime(Index n) {
  std::vector<sparse::Triple<double>> t;
  for (Index i = 0; i < n; ++i) {
    t.push_back({i, (i * 7 + 1) % n, 1.0});
    t.push_back({i, (i * 13 + 5) % n, 1.0});
  }
  return sparse::Matrix<double>::from_triples<S>(n, n, std::move(t));
}

sparse::Matrix<double> hypersparse_regime(Index n_huge, std::size_t m) {
  std::vector<sparse::Triple<double>> t;
  for (const auto& e : util::hypersparse_edges(n_huge, m, 9)) {
    t.push_back({e.src, e.dst, e.weight});
  }
  return sparse::Matrix<double>::from_triples<S>(n_huge, n_huge, std::move(t));
}

void print_fig4() {
  util::banner("Fig 4: dense (nnz~N^2) / sparse (nnz~N) / hypersparse (nnz<<N)");
  util::TextTable t({"regime", "N", "nnz", "format", "bytes", "bytes/entry"});
  for (const Index n : {Index{256}, Index{1024}, Index{4096}}) {
    const auto d = dense_regime(std::min<Index>(n, 2048));
    t.row("dense", d.nrows(), d.nnz(), std::string(format_name(d.format())),
          d.bytes(),
          static_cast<double>(d.bytes()) / static_cast<double>(d.nnz()));
  }
  for (const Index n : {Index{1} << 12, Index{1} << 16, Index{1} << 20}) {
    const auto s = sparse_regime(n);
    t.row("sparse", s.nrows(), s.nnz(), std::string(format_name(s.format())),
          s.bytes(),
          static_cast<double>(s.bytes()) / static_cast<double>(s.nnz()));
  }
  for (const Index n : {Index{1} << 30, Index{1} << 45, Index{1} << 60}) {
    const auto h = hypersparse_regime(n, 4096);
    t.row("hypersparse", h.nrows(), h.nnz(),
          std::string(format_name(h.format())), h.bytes(),
          static_cast<double>(h.bytes()) / static_cast<double>(h.nnz()));
  }
  t.print();
  std::cout << "\nShape check: hypersparse bytes/entry stays flat as N grows "
               "to 2^60 — storage is O(nnz), independent of dimension.\n";
}

void bm_ewise_dense(benchmark::State& state) {
  const auto a = dense_regime(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(sparse::ewise_add<S>(a, a));
  state.SetLabel("dense regime");
}
BENCHMARK(bm_ewise_dense)->Arg(256)->Arg(1024);

void bm_ewise_sparse(benchmark::State& state) {
  const auto a = sparse_regime(state.range(0));
  for (auto _ : state) benchmark::DoNotOptimize(sparse::ewise_add<S>(a, a));
  state.SetLabel("sparse regime (CSR)");
}
BENCHMARK(bm_ewise_sparse)->Arg(1 << 14)->Arg(1 << 18);

void bm_ewise_hypersparse(benchmark::State& state) {
  const auto a = hypersparse_regime(Index{1} << state.range(0), 1 << 16);
  for (auto _ : state) benchmark::DoNotOptimize(sparse::ewise_add<S>(a, a));
  state.SetLabel("hypersparse regime (DCSR), 64Ki entries");
}
BENCHMARK(bm_ewise_hypersparse)->Arg(30)->Arg(45)->Arg(60);

void bm_build_hypersparse(benchmark::State& state) {
  // Streaming-build cost must depend on nnz only, never on dimension.
  const Index n = Index{1} << state.range(0);
  const auto edges = util::hypersparse_edges(n, 1 << 16, 4);
  for (auto _ : state) {
    std::vector<sparse::Triple<double>> t;
    t.reserve(edges.size());
    for (const auto& e : edges) t.push_back({e.src, e.dst, e.weight});
    benchmark::DoNotOptimize(
        sparse::Matrix<double>::from_triples<S>(n, n, std::move(t)));
  }
  state.SetLabel("build 64Ki entries, dim 2^" +
                 std::to_string(state.range(0)));
}
BENCHMARK(bm_build_hypersparse)->Arg(20)->Arg(40)->Arg(60);

}  // namespace

int main(int argc, char** argv) {
  print_fig4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
