// Fig 5 — Graph Union and Intersection.
//
// Reproduction: two 7-vertex graphs combined with element-wise ⊕ (union)
// and ⊗ (intersection), rendered as in the figure; then scaling series on
// R-MAT pairs, including the semiring-independence of the result pattern.

#include "bench_common.hpp"

#include <iostream>

#include "sparse/apply.hpp"
#include "sparse/ewise.hpp"
#include "sparse/io.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::bench;
using S = semiring::PlusTimes<double>;

void print_fig5() {
  util::banner("Fig 5: graph union (+) and intersection (x)");
  const auto A = sparse::make_matrix<S>(
      7, 7, {{0, 3, 4.0}, {2, 1, 2.0}, {2, 2, 1.0}, {5, 6, 7.0}});
  const auto B = sparse::make_matrix<S>(
      7, 7, {{2, 1, 2.0}, {4, 4, 5.0}, {5, 6, 7.0}});
  std::cout << "A =\n" << sparse::to_grid(A, 3)
            << "B =\n" << sparse::to_grid(B, 3)
            << "A (+) B  [graph union] =\n"
            << sparse::to_grid(sparse::ewise_add<S>(A, B), 3)
            << "A (x) B  [graph intersection] =\n"
            << sparse::to_grid(sparse::ewise_mult<S>(A, B), 3);
}

void bm_union(benchmark::State& state) {
  const auto a = rmat_matrix(static_cast<int>(state.range(0)), 8, 1);
  const auto b = rmat_matrix(static_cast<int>(state.range(0)), 8, 2);
  for (auto _ : state) benchmark::DoNotOptimize(sparse::ewise_add<S>(a, b));
  state.SetItemsProcessed(state.iterations() * (a.nnz() + b.nnz()));
  state.SetLabel("graph union");
}
BENCHMARK(bm_union)->Arg(10)->Arg(12)->Arg(14)->Arg(16);

void bm_intersection(benchmark::State& state) {
  const auto a = rmat_matrix(static_cast<int>(state.range(0)), 8, 1);
  const auto b = rmat_matrix(static_cast<int>(state.range(0)), 8, 2);
  for (auto _ : state) benchmark::DoNotOptimize(sparse::ewise_mult<S>(a, b));
  state.SetItemsProcessed(state.iterations() * (a.nnz() + b.nnz()));
  state.SetLabel("graph intersection");
}
BENCHMARK(bm_intersection)->Arg(10)->Arg(12)->Arg(14)->Arg(16);

void bm_union_tropical(benchmark::State& state) {
  // Same union over max.+: pattern identical, one templated kernel.
  using MP = semiring::MaxPlus<double>;
  const auto a = rmat_matrix(12, 8, 1);
  const auto b = rmat_matrix(12, 8, 2);
  bool same = true;
  for (auto _ : state) {
    const auto u = sparse::ewise_add<MP>(a, b);
    benchmark::DoNotOptimize(u);
    same = same && sparse::same_sparsity(u, sparse::ewise_add<S>(a, b));
  }
  if (!same) state.SkipWithError("pattern depended on semiring");
  state.SetLabel("union over max.+ (pattern verified identical)");
}
BENCHMARK(bm_union_tropical);

}  // namespace

int main(int argc, char** argv) {
  print_fig5();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
