// Fig 6 — the same neighbor query in SQL, NoSQL, NewSQL, and associative
// array (semilink select) form.
//
// Reproduction: the paper's exact 3-row traffic table and the query
// "find 1.1.1.1's nearest neighbors", answered by all four engines; then a
// synthetic-traffic sweep timing each engine. Expected shape: the SQL scan
// is O(rows) per query; the triple store and adjacency matrix answer from
// indexes (flat in table size once built); the semilink select costs a few
// sparse ops over the table array — same asymptotics as the matrix path.
// All engines return identical answers (asserted at bench time).

#include "bench_common.hpp"

#include <iostream>

#include "db/polystore.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::bench;
using db::FlowPolystore;

void print_fig6() {
  util::banner("Fig 6: one query, four engines");
  FlowPolystore ps;
  ps.insert({"1.1.1.1", "http", "0.0.0.0"});
  ps.insert({"0.0.0.0", "udp", "1.1.1.1"});
  ps.insert({"1.1.1.1", "ssh", "2.2.2.2"});
  std::cout << "T =\n  src      link  dest\n"
               "  1.1.1.1  http  0.0.0.0\n"
               "  0.0.0.0  udp   1.1.1.1\n"
               "  1.1.1.1  ssh   2.2.2.2\n\n"
               "SELECT 'dest' FROM T WHERE 'src=1.1.1.1':\n";
  util::TextTable t({"engine", "result"});
  auto join = [](const std::vector<std::string>& v) {
    std::string s;
    for (const auto& x : v) s += (s.empty() ? "" : ", ") + x;
    return s;
  };
  t.row("SQL (relational scan)", join(ps.neighbors_sql("1.1.1.1")));
  t.row("NoSQL (triple store)", join(ps.neighbors_nosql("1.1.1.1")));
  t.row("NewSQL (v^T A)", join(ps.neighbors_newsql("1.1.1.1")));
  t.row("semilink select", join(ps.neighbors_semilink("1.1.1.1")));
  t.print();
}

FlowPolystore synthetic_store(std::size_t flows, std::size_t n_ips,
                              std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  const char* protos[] = {"http", "udp", "ssh", "dns"};
  std::vector<std::string> ips;
  ips.reserve(n_ips);
  for (std::size_t i = 0; i < n_ips; ++i) {
    ips.push_back(util::synthetic_ip(rng, 1 << 30));
  }
  FlowPolystore ps;
  for (std::size_t i = 0; i < flows; ++i) {
    ps.insert({ips[rng.bounded(n_ips)], protos[rng.bounded(4)],
               ips[rng.bounded(n_ips)]});
  }
  return ps;
}

const std::string kProbe = "10.0.0.1";

FlowPolystore& store_for(benchmark::State& state) {
  static std::map<std::int64_t, FlowPolystore> cache;
  const auto flows = state.range(0);
  auto it = cache.find(flows);
  if (it == cache.end()) {
    auto ps = synthetic_store(static_cast<std::size_t>(flows), 200, 11);
    ps.insert({kProbe, "http", "10.0.0.2"});  // guaranteed hit
    it = cache.emplace(flows, std::move(ps)).first;
    // Warm the lazily-built structures outside the timed region.
    (void)it->second.neighbors_semilink(kProbe);
    (void)it->second.neighbors_nosql(kProbe);
    (void)it->second.neighbors_newsql(kProbe);
  }
  return it->second;
}

void bm_query_sql(benchmark::State& state) {
  auto& ps = store_for(state);
  for (auto _ : state) benchmark::DoNotOptimize(ps.neighbors_sql(kProbe));
  state.SetLabel("SQL scan");
}
BENCHMARK(bm_query_sql)->Arg(1000)->Arg(10000)->Arg(50000);

void bm_query_nosql(benchmark::State& state) {
  auto& ps = store_for(state);
  for (auto _ : state) benchmark::DoNotOptimize(ps.neighbors_nosql(kProbe));
  state.SetLabel("NoSQL triple store");
}
BENCHMARK(bm_query_nosql)->Arg(1000)->Arg(10000)->Arg(50000);

void bm_query_newsql(benchmark::State& state) {
  auto& ps = store_for(state);
  for (auto _ : state) benchmark::DoNotOptimize(ps.neighbors_newsql(kProbe));
  state.SetLabel("NewSQL v^T A");
}
BENCHMARK(bm_query_newsql)->Arg(1000)->Arg(10000)->Arg(50000);

void bm_query_semilink(benchmark::State& state) {
  auto& ps = store_for(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ps.neighbors_semilink(kProbe));
  }
  state.SetLabel("semilink select");
}
BENCHMARK(bm_query_semilink)->Arg(1000)->Arg(10000);

void bm_engines_agree(benchmark::State& state) {
  auto& ps = store_for(state);
  bool ok = true;
  for (auto _ : state) {
    const auto a = ps.neighbors_sql(kProbe);
    ok = ok && a == ps.neighbors_nosql(kProbe) &&
         a == ps.neighbors_newsql(kProbe) && a == ps.neighbors_semilink(kProbe);
  }
  if (!ok) state.SkipWithError("engines disagree");
  state.SetLabel("all four engines, answers compared");
}
BENCHMARK(bm_engines_agree)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
  print_fig6();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
