// Figs 7/8 — DNN inference as a linear system over two semirings.
//
// Reproduction: a four-layer network in the Fig 8 shape (input features →
// hidden layers → category scores) run through both the standard
// formulation h(YW + B) and the paper's two-semiring formulation
// Y W ⊗₂ B ⊕₂ 0 with S1 = +.× and S2 = max.+. The outputs are asserted
// identical at bench time. Then scaling series in neurons and layers
// (RadiX-Net style, Sparse DNN Challenge shape). Expected shape: cost is
// O(batch · nnz(W) · activity) per layer for both formulations; the
// semilink form costs the same as the standard form (it is the same
// arithmetic, re-typed), which is the paper's linearity point.

#include "bench_common.hpp"

#include <iostream>

#include "dnn/inference.hpp"
#include "dnn/radixnet.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::bench;
using namespace hyperspace::dnn;

void print_fig8() {
  util::banner("Fig 8: four-layer DNN, standard vs two-semiring inference");
  const auto net = make_radixnet(
      {.neurons = 256, .layers = 4, .fanin = 32, .weight = 0.5,
       .bias = -0.001});
  const auto y0 = make_sparse_features(8, 256, 0.25, 123);
  const auto std_out = infer_standard(net, y0);
  const auto sl_out = infer_semilink(net, y0);
  bool identical = std_out.data == sl_out.data;
  std::cout << "network: L=4, N=256 neurons/layer, fanin 32 ("
            << net.total_nnz() << " weights)\n"
            << "input batch: 8 x 256, " << y0.nnz() << " nonzero features\n"
            << "output activity: " << std_out.nnz() << " of "
            << std_out.batch * std_out.n << " (sparse through depth)\n"
            << "standard h(YW+B) == semilink YW (x)B (+)0 bitwise: "
            << (identical ? "yes" : "NO") << '\n';
  const auto cats = categories(std_out);
  std::cout << "argmax categories per batch row:";
  for (const auto c : cats) std::cout << ' ' << c;
  std::cout << '\n';
}

Network net_for(sparse::Index neurons, int layers) {
  return make_radixnet({.neurons = neurons, .layers = layers, .fanin = 32,
                        .weight = 0.5, .bias = -0.001});
}

void bm_infer_standard(benchmark::State& state) {
  const auto neurons = static_cast<sparse::Index>(state.range(0));
  const auto net = net_for(neurons, 8);
  const auto y0 = make_sparse_features(32, neurons, 0.2, 9);
  for (auto _ : state) benchmark::DoNotOptimize(infer_standard(net, y0));
  state.SetItemsProcessed(state.iterations() * net.total_nnz() * 32);
  state.SetLabel("standard, L=8, batch=32");
}
BENCHMARK(bm_infer_standard)->Arg(1024)->Arg(4096)->Arg(16384);

void bm_infer_semilink(benchmark::State& state) {
  const auto neurons = static_cast<sparse::Index>(state.range(0));
  const auto net = net_for(neurons, 8);
  const auto y0 = make_sparse_features(32, neurons, 0.2, 9);
  for (auto _ : state) benchmark::DoNotOptimize(infer_semilink(net, y0));
  state.SetItemsProcessed(state.iterations() * net.total_nnz() * 32);
  state.SetLabel("two-semiring, L=8, batch=32");
}
BENCHMARK(bm_infer_semilink)->Arg(1024)->Arg(4096)->Arg(16384);

void bm_infer_depth(benchmark::State& state) {
  const auto layers = static_cast<int>(state.range(0));
  const auto net = net_for(1024, layers);
  const auto y0 = make_sparse_features(32, 1024, 0.2, 9);
  for (auto _ : state) benchmark::DoNotOptimize(infer_standard(net, y0));
  state.SetLabel("depth sweep, N=1024");
}
BENCHMARK(bm_infer_depth)->Arg(4)->Arg(30)->Arg(120);

void bm_equivalence_check(benchmark::State& state) {
  const auto net = net_for(1024, 8);
  const auto y0 = make_sparse_features(16, 1024, 0.2, 10);
  bool ok = true;
  for (auto _ : state) {
    ok = ok && infer_standard(net, y0).data == infer_semilink(net, y0).data;
  }
  if (!ok) state.SkipWithError("formulations diverged");
  state.SetLabel("both formulations, outputs compared");
}
BENCHMARK(bm_equivalence_check);

}  // namespace

int main(int argc, char** argv) {
  print_fig8();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
