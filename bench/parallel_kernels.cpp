// Parallel-runtime scaling bench — per-kernel timings across thread counts.
//
// Each benchmark pins the unified runtime to Arg(0) threads via
// util::set_num_threads and runs one kernel on the generator workloads, so
// the JSON output (bench/run_benches.sh → BENCH_parallel.json) captures the
// serial→parallel trajectory per kernel. The determinism contract means the
// outputs being timed are bit-identical across every row of the sweep.

#include "bench_common.hpp"

#include <algorithm>
#include <cstdint>

#include "hypergraph/bfs.hpp"
#include "sparse/ewise.hpp"
#include "sparse/kron.hpp"
#include "sparse/mxm.hpp"
#include "sparse/mxv.hpp"
#include "sparse/reduce.hpp"
#include "sparse/transpose.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::bench;
using sparse::Index;
using S = semiring::PlusTimes<double>;
using Add = semiring::AddMonoidOf<S>;

constexpr int kScale = 13;  // 8192 vertices, ~64k edges

const sparse::Matrix<double>& workload_a() {
  static const auto m = rmat_matrix(kScale, 8, 1);
  return m;
}
const sparse::Matrix<double>& workload_b() {
  static const auto m = rmat_matrix(kScale, 8, 2);
  return m;
}

void with_threads(benchmark::State& state) {
  util::set_num_threads(static_cast<int>(state.range(0)));
}

void bm_mxm(benchmark::State& state) {
  with_threads(state);
  const auto& a = workload_a();
  const auto& b = workload_b();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::mxm<S>(a, b));
  }
  util::set_num_threads(0);
}
BENCHMARK(bm_mxm)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void bm_ewise_add(benchmark::State& state) {
  with_threads(state);
  const auto& a = workload_a();
  const auto& b = workload_b();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::ewise_add<S>(a, b));
  }
  util::set_num_threads(0);
}
BENCHMARK(bm_ewise_add)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void bm_transpose(benchmark::State& state) {
  with_threads(state);
  const auto& a = workload_a();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::transpose(a));
  }
  util::set_num_threads(0);
}
BENCHMARK(bm_transpose)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void bm_reduce_rows(benchmark::State& state) {
  with_threads(state);
  const auto& a = workload_a();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::reduce_rows<Add>(a));
  }
  util::set_num_threads(0);
}
BENCHMARK(bm_reduce_rows)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void bm_mxv_pull(benchmark::State& state) {
  with_threads(state);
  const auto& a = workload_a();
  const std::vector<double> x(static_cast<std::size_t>(a.ncols()), 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::mxv_pull<S>(a, x));
  }
  util::set_num_threads(0);
}
BENCHMARK(bm_mxv_pull)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void bm_vxm_push(benchmark::State& state) {
  with_threads(state);
  const auto& a = workload_a();
  const std::vector<double> x(static_cast<std::size_t>(a.nrows()), 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::vxm_push<S>(x, a));
  }
  util::set_num_threads(0);
}
BENCHMARK(bm_vxm_push)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void bm_kron(benchmark::State& state) {
  with_threads(state);
  const auto a = er_matrix(128, 2048, 3);
  const auto b = er_matrix(64, 512, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::kron<S>(a, b));
  }
  util::set_num_threads(0);
}
BENCHMARK(bm_kron)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// ------------------------------------------------- skewed-SpGEMM steal suite
//
// Rows: bm_steal_skew/<dist>/<threads>/<sched> where <sched> is 0 for the
// static chunk scheduler and 1 for work-stealing. The three distributions
// bracket the load-balance spectrum: uniform (static chunking is already
// fair — work-steal must not regress), hub (one row holds ~95% of the
// flops), and zipf (power-law row lengths). On a multi-core host the hub
// and zipf rows show the steal win; on a 1-core CI container every pair
// should be parity.

enum class Dist { kUniform, kHub, kZipf };

sparse::Matrix<double> skew_matrix(Dist d, Index n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<sparse::Triple<double>> t;
  const auto rand_col = [&] {
    return static_cast<Index>(rng.bounded(static_cast<std::uint64_t>(n)));
  };
  switch (d) {
    case Dist::kUniform:
      for (Index i = 0; i < n; ++i) {
        for (int e = 0; e < 16; ++e) t.push_back({i, rand_col(), 1.0});
      }
      break;
    case Dist::kHub: {
      const std::size_t hub = static_cast<std::size_t>(n) * 15;  // ~95% of nnz
      for (std::size_t e = 0; e < hub; ++e) t.push_back({0, rand_col(), 1.0});
      for (Index i = 1; i < n; ++i) t.push_back({i, rand_col(), 1.0});
      break;
    }
    case Dist::kZipf:
      for (Index i = 0; i < n; ++i) {
        const std::size_t len = std::max<std::size_t>(
            1, static_cast<std::size_t>(n) / (static_cast<std::size_t>(i) + 1));
        for (std::size_t e = 0; e < len; ++e) t.push_back({i, rand_col(), 1.0});
      }
      break;
  }
  return sparse::Matrix<double>::from_triples<S>(n, n, std::move(t));
}

void bm_steal_skew(benchmark::State& state, Dist d) {
  with_threads(state);
  util::set_scheduler(state.range(1) == 0 ? util::Scheduler::kStatic
                                          : util::Scheduler::kWorkSteal);
  const auto a = skew_matrix(d, 2048, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::mxm<S>(a, a));
  }
  util::reset_scheduler();
  util::set_num_threads(0);
}
#define STEAL_SKEW_ARGS                                               \
  Args({1, 0})->Args({1, 1})->Args({2, 0})->Args({2, 1})->Args({4, 0}) \
      ->Args({4, 1})->Args({8, 0})->Args({8, 1})                       \
      ->Unit(benchmark::kMillisecond)
BENCHMARK_CAPTURE(bm_steal_skew, uniform, Dist::kUniform)->STEAL_SKEW_ARGS;
BENCHMARK_CAPTURE(bm_steal_skew, hub, Dist::kHub)->STEAL_SKEW_ARGS;
BENCHMARK_CAPTURE(bm_steal_skew, zipf, Dist::kZipf)->STEAL_SKEW_ARGS;
#undef STEAL_SKEW_ARGS

void bm_bfs(benchmark::State& state) {
  with_threads(state);
  const auto& a = workload_a();
  for (auto _ : state) {
    benchmark::DoNotOptimize(hypergraph::bfs_array(a, 0));
  }
  util::set_num_threads(0);
}
BENCHMARK(bm_bfs)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
