#!/usr/bin/env bash
# Run the ablation + parallel-scaling benches and emit BENCH_parallel.json
# with per-kernel timings. Used locally via the `run_benches` CMake target
# and in CI, where the JSON is uploaded as an artifact to track the perf
# trajectory across PRs.
#
# Usage: BENCH_BUILD_DIR=<build dir> bench/run_benches.sh [output.json]
set -euo pipefail

BUILD_DIR="${BENCH_BUILD_DIR:-build}"
OUT="${1:-${BUILD_DIR}/BENCH_parallel.json}"
TMPDIR_BENCH="$(mktemp -d)"
trap 'rm -rf "${TMPDIR_BENCH}"' EXIT

run_bench() {
  local name="$1"
  local extra_args="${2:-}"
  local bin="${BUILD_DIR}/${name}"
  if [[ ! -x "${bin}" ]]; then
    echo "skip: ${bin} not built" >&2
    return 0
  fi
  echo "=== ${name} ===" >&2
  # shellcheck disable=SC2086
  "${bin}" ${extra_args} \
    --benchmark_format=json \
    --benchmark_out="${TMPDIR_BENCH}/${name}.json" \
    --benchmark_out_format=json >&2
}

# The new parallel-scaling sweep plus the SpGEMM strategy ablation.
run_bench parallel_kernels
run_bench ablation_spgemm "--benchmark_filter=(bm_threads/.*|.*/(256|1024)$)"

# Merge per-binary reports into one {bench_name: report} document.
shopt -s nullglob
reports=("${TMPDIR_BENCH}"/*.json)
shopt -u nullglob
if [[ ${#reports[@]} -eq 0 ]]; then
  echo '{}' > "${OUT}"
  echo "no bench reports produced; wrote empty ${OUT}" >&2
  exit 0
fi
if command -v jq >/dev/null 2>&1; then
  jq -n '
    [inputs | {(input_filename | split("/")[-1] | rtrimstr(".json")): .}]
    | add // {}' "${TMPDIR_BENCH}"/*.json > "${OUT}"
else
  python3 - "${OUT}" "${TMPDIR_BENCH}" <<'EOF'
import json, pathlib, sys
out, tmp = sys.argv[1], pathlib.Path(sys.argv[2])
merged = {p.stem: json.loads(p.read_text()) for p in sorted(tmp.glob("*.json"))}
pathlib.Path(out).write_text(json.dumps(merged, indent=2))
EOF
fi

echo "wrote ${OUT}" >&2
