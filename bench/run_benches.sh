#!/usr/bin/env bash
# Run the ablation + parallel-scaling benches and emit three JSON reports:
#   BENCH_parallel.json — per-kernel parallel-scaling timings
#   BENCH_spgemm.json   — SpGEMM accumulator-strategy, mask-fusion, and
#     mask-probe sweep (flat open-addressing hash vs the unordered_map
#     baseline, mask-density × strategy × fused/unfused, binary vs bitmap
#     probe)
#   BENCH_serve.json    — serving-throughput sweep (K=1/8/64 queries,
#     batched block-diagonal serving vs per-query dispatch, sync + async
#     executor paths, multi-base cross-base vs per-base dispatch, and the
#     result-cache on/off Zipf-repeat rows)
# Used locally via the `run_benches` CMake target and in CI, where the
# JSONs are uploaded as artifacts to track the perf trajectory across PRs.
# Schemas and row-reading guide: docs/BENCHMARKS.md.
#
# Usage: BENCH_BUILD_DIR=<build dir> bench/run_benches.sh [parallel.json] [spgemm.json] [serve.json]
set -euo pipefail

BUILD_DIR="${BENCH_BUILD_DIR:-build}"
OUT_PARALLEL="${1:-${BUILD_DIR}/BENCH_parallel.json}"
OUT_SPGEMM="${2:-${BUILD_DIR}/BENCH_spgemm.json}"
OUT_SERVE="${3:-${BUILD_DIR}/BENCH_serve.json}"
TMPDIR_BENCH="$(mktemp -d)"
trap 'rm -rf "${TMPDIR_BENCH}"' EXIT

run_bench() {
  local outdir="$1"
  local name="$2"
  local extra_args="${3:-}"
  local bin="${BUILD_DIR}/${name}"
  if [[ ! -x "${bin}" ]]; then
    echo "skip: ${bin} not built" >&2
    return 0
  fi
  echo "=== ${name} -> ${outdir} ===" >&2
  mkdir -p "${TMPDIR_BENCH}/${outdir}"
  # shellcheck disable=SC2086
  "${bin}" ${extra_args} \
    --benchmark_format=json \
    --benchmark_out="${TMPDIR_BENCH}/${outdir}/${name}.json" \
    --benchmark_out_format=json >&2
}

# Merge one directory of per-binary reports into {bench_name: report}.
merge_reports() {
  local dir="$1"
  local out="$2"
  shopt -s nullglob
  local reports=("${dir}"/*.json)
  shopt -u nullglob
  if [[ ${#reports[@]} -eq 0 ]]; then
    echo '{}' > "${out}"
    echo "no bench reports produced; wrote empty ${out}" >&2
    return 0
  fi
  if command -v jq >/dev/null 2>&1; then
    jq -n '
      [inputs | {(input_filename | split("/")[-1] | rtrimstr(".json")): .}]
      | add // {}' "${dir}"/*.json > "${out}"
  else
    python3 - "${out}" "${dir}" <<'EOF'
import json, pathlib, sys
out, tmp = sys.argv[1], pathlib.Path(sys.argv[2])
merged = {p.stem: json.loads(p.read_text()) for p in sorted(tmp.glob("*.json"))}
pathlib.Path(out).write_text(json.dumps(merged, indent=2))
EOF
  fi
  echo "wrote ${out}" >&2
}

# Parallel-scaling sweep (unchanged trajectory series).
run_bench parallel parallel_kernels
run_bench parallel ablation_spgemm "--benchmark_filter=(bm_threads/.*|bm_(gustavson|hash|auto)/(256|1024)$)"
merge_reports "${TMPDIR_BENCH}/parallel" "${OUT_PARALLEL}"

# SpGEMM accumulator + mask-fusion ablation: the flat-hash-vs-unordered_map,
# fused-vs-unfused, and binary-vs-bitmap-probe acceptance numbers live here.
run_bench spgemm ablation_spgemm \
  "--benchmark_filter=(bm_hash_flat_vs_stdmap/.*|bm_sorted_accumulator/.*|bm_masked/.*|bm_masked_probe/.*|bm_masked_probe_hypersparse/.*|bm_masked_complement_bfs_style/.*|bm_hash_hypersparse/.*)"
merge_reports "${TMPDIR_BENCH}/spgemm" "${OUT_SPGEMM}"

# Batch-throughput sweep: K=1/8/64 queries, batched vs per-query dispatch,
# plus the sharded-vs-unsharded router rows (N=1/2/4 at K=8/64) — the
# serving engine's acceptance numbers (launches saved, queries/s).
run_bench serve serve_throughput
# Result-cache sweep: Zipf-repeat point mix at K=8/64, cache on vs off,
# hit rate as a counter — the cache acceptance rows (>= 2x on at 90%+
# repeats).
run_bench serve serve_cache
merge_reports "${TMPDIR_BENCH}/serve" "${OUT_SERVE}"

# Schema sanity: a malformed artifact (truncated report, crashed binary,
# renamed field) fails the run — and CI with it — instead of uploading a
# file that silently breaks cross-PR comparisons.
python3 "$(dirname "$0")/../tools/check_bench_json.py" \
  "${OUT_PARALLEL}" "${OUT_SPGEMM}" "${OUT_SERVE}"
