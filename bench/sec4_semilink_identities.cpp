// §IV — semilink identities at scale.
//
// Reproduction: every identity the section states, checked live over random
// key-addressed arrays and multiple semirings, then timing of the identity
// machinery (the §IV rewrites matter for query planners; their checks must
// be cheap relative to the operations they license).

#include "bench_common.hpp"

#include <iostream>

#include "semilink/identities.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::array;
using namespace hyperspace::bench;
using namespace hyperspace::semilink;
using S = semiring::PlusTimes<double>;
using Arr = AssocArray<S>;

Arr random_array(std::size_t entries, std::size_t keyspace,
                 std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<Key> k1, k2;
  std::vector<double> v;
  for (std::size_t i = 0; i < entries; ++i) {
    k1.emplace_back(static_cast<std::int64_t>(rng.bounded(keyspace)));
    k2.emplace_back(static_cast<std::int64_t>(rng.bounded(keyspace)));
    v.push_back(static_cast<double>(1 + rng.bounded(7)));
  }
  return Arr(k1, k2, v);
}

Arr random_permutation_valued(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<Key> k1, k2;
  std::vector<double> v;
  std::vector<std::int64_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<std::int64_t>(i);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.bounded(i)]);
  }
  for (std::size_t i = 0; i < n; ++i) {
    k1.emplace_back(static_cast<std::int64_t>(i));
    k2.emplace_back(perm[i]);
    v.push_back(static_cast<double>(1 + rng.bounded(5)));
  }
  return Arr(k1, k2, v);
}

void print_sec4() {
  util::banner("Section IV: semilink identities, verified at scale");
  util::TextTable t({"identity", "setting", "status"});

  Semilink<S> link(KeySet::range(64));
  t.row("1 x I = I,  1 (+.x) I = 1", "+.x, 64 keys",
        identities_interact(link) ? "holds" : "FAIL");
  Semilink<semiring::MaxPlus<double>> link_mp(KeySet::range(64));
  t.row("1 x I = I,  1 (+.x) I = 1", "max.+, 64 keys",
        identities_interact(link_mp) ? "holds" : "FAIL");
  Semilink<semiring::UnionIntersect> link_db(KeySet::range(32));
  t.row("1 x I = I,  1 (+.x) I = 1", "u.n (database), 32 keys",
        identities_interact(link_db) ? "holds" : "FAIL");

  const auto p = random_permutation_valued(128, 3);
  t.row("|A|0 = P  =>  A x P = P x A = A", "128-key permutation",
        permutation_elementwise_identity(p) ? "holds" : "FAIL");

  const auto a = random_array(400, 64, 5);
  t.row("A (+.x) 1 projects rows", "400 entries",
        ones_projects_rows(a) ? "holds" : "FAIL");
  t.row("1 (+.x) A projects cols", "400 entries",
        ones_projects_cols(a) ? "holds" : "FAIL");

  const auto a1 = random_permutation_valued(64, 7);
  const auto a2 = Arr(
      [&] {
        std::vector<Key> k;
        for (auto& [r, c, v] : a1.entries()) k.push_back(r);
        return k;
      }(),
      [&] {
        std::vector<Key> k;
        for (auto& [r, c, v] : a1.entries()) k.push_back(c);
        return k;
      }(),
      std::vector<double>(64, 3.0));
  const auto b = random_array(200, 64, 8);
  const auto c = random_array(200, 64, 9);
  t.row("A(+.x)(BxC) = (A1(+.x)B)x(A2(+.x)C)", "perm-pattern A1,A2",
        conditional_distributivity(a1, a2, b, c) ? "holds" : "FAIL");

  t.row("A=1 or C=I => hybrid assoc", "A = 1 case",
        hybrid_associativity_trivial(a, true) ? "holds" : "FAIL");
  t.row("A=1 or C=I => hybrid assoc", "C = I case",
        hybrid_associativity_trivial(random_array(100, 32, 10), false)
            ? "holds"
            : "FAIL");

  // Annihilation: operands over disjoint key blocks.
  const auto ax = random_array(50, 16, 11);
  auto shift = [](const Arr& arr, std::int64_t offset) {
    std::vector<Key> k1, k2;
    std::vector<double> v;
    for (auto& [r, c, val] : arr.entries()) {
      k1.emplace_back(r.as_int() + offset);
      k2.emplace_back(c.as_int() + offset);
      v.push_back(val);
    }
    return Arr(k1, k2, v);
  };
  const auto bx = shift(ax, 1000);
  const auto cx = shift(ax, 2000);
  t.row("disjoint keys => A x (B (+.x) C) = 0", "key blocks 0/1k/2k",
        annihilates_left(ax, bx, cx) ? "holds" : "FAIL");
  t.row("disjoint keys => (A x B) (+.x) C = 0", "key blocks 0/1k/2k",
        annihilates_right(ax, bx, cx) ? "holds" : "FAIL");
  t.row("corollary: both groupings = 0", "key blocks 0/1k/2k",
        annihilates_both(ax, bx, cx) ? "holds" : "FAIL");
  t.print();
}

void bm_identity_check(benchmark::State& state) {
  const auto a = random_array(static_cast<std::size_t>(state.range(0)), 256, 2);
  for (auto _ : state) benchmark::DoNotOptimize(ones_projects_rows(a));
  state.SetLabel("projection identity check");
}
BENCHMARK(bm_identity_check)->Arg(1000)->Arg(5000);

void bm_permutation_detect(benchmark::State& state) {
  const auto p = random_permutation_valued(
      static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) benchmark::DoNotOptimize(is_permutation_pattern(p));
  state.SetLabel("|A|0 = P detection (O(nnz))");
}
BENCHMARK(bm_permutation_detect)->Arg(1000)->Arg(100000);

void bm_disjointness_precheck_vs_multiply(benchmark::State& state) {
  // The annihilation conditions let a planner skip a product entirely;
  // compare the key-overlap test against actually multiplying.
  const auto a = random_array(static_cast<std::size_t>(state.range(0)), 512, 5);
  const auto b = random_array(static_cast<std::size_t>(state.range(0)), 512, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(array::disjoint(a.col(), b.row()));
  }
  state.SetLabel("key-overlap precheck");
}
BENCHMARK(bm_disjointness_precheck_vs_multiply)->Arg(2000)->Arg(20000);

void bm_full_multiply_baseline(benchmark::State& state) {
  const auto a = random_array(static_cast<std::size_t>(state.range(0)), 512, 5);
  const auto b = random_array(static_cast<std::size_t>(state.range(0)), 512, 6);
  for (auto _ : state) benchmark::DoNotOptimize(mtimes(a, b));
  state.SetLabel("the product the precheck can skip");
}
BENCHMARK(bm_full_multiply_baseline)->Arg(2000)->Arg(20000);

}  // namespace

int main(int argc, char** argv) {
  print_sec4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
