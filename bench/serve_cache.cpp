// Result-cache benchmark: Zipf-repeat point-lookup traffic against a
// long-lived Router with the serve-layer cache on vs off. The acceptance
// row for the ROADMAP result-cache item: on a ~90%-repeat Zipfian mix the
// cached engine must clear >= 2x the uncached throughput at K=8 and K=64,
// with the observed hit rate reported as a counter. The preamble is the
// correctness gate: cached and uncached answers must be byte-identical
// through a read/mutate interleaving before any speedup is reported.

#include "bench_common.hpp"

#include <cstring>
#include <iostream>

#include "serve/cache.hpp"
#include "serve/router.hpp"
#include "util/metrics.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::bench;
using sparse::Index;
using S = semiring::PlusTimes<double>;

constexpr Index kN = 4096;           ///< base dimension
constexpr std::size_t kNnz = 65536;  ///< base entries
constexpr int kPool = 64;            ///< distinct queries in the hot set
constexpr std::size_t kCacheBytes = std::size_t{1} << 22;

/// The hot set: kPool distinct 4-entry point lookups. Traffic draws from
/// this pool through a Zipf(s=1.1) rank distribution, so a few queries
/// dominate — the shape a result cache exists for. After the first
/// touch of each rank every redraw is an exact repeat (~90%+ of draws at
/// this skew and pool size); the measured hit rate is reported.
std::vector<serve::Query<S>> query_pool(Index n, std::uint64_t seed) {
  using Q = serve::Query<S>;
  util::Xoshiro256 rng(seed);
  std::vector<serve::Query<S>> pool;
  pool.reserve(kPool);
  for (int i = 0; i < kPool; ++i) {
    std::vector<sparse::Triple<double>> t;
    for (int e = 0; e < 4; ++e) {
      t.push_back({0,
                   static_cast<Index>(
                       rng.bounded(static_cast<std::uint64_t>(n))),
                   rng.uniform(0.5, 1.5)});
    }
    pool.push_back(Q::analytic(
        sparse::Matrix<double>::from_triples<S>(1, n, std::move(t))));
  }
  return pool;
}

/// args: {K, cache_on}. The router is a long-lived server built once per
/// benchmark; each iteration submits K Zipf-drawn queries and waits for
/// them all, so an iteration is one K-query burst.
void bm_serve_cache(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const bool cache_on = state.range(1) != 0;
  const auto base = er_matrix(kN, kNnz, 1);
  const auto pool = query_pool(kN, 2);
  serve::Router<S>::Config cfg;
  cfg.n_shards = 4;
  cfg.executor.cache_bytes = cache_on ? kCacheBytes : 0;
  serve::Router<S> router(base, cfg);
  util::Xoshiro256 rng(3);
  util::ZipfDistribution zipf(kPool, 1.1);
  std::vector<std::size_t> tickets(static_cast<std::size_t>(k));
  for (auto _ : state) {
    for (int i = 0; i < k; ++i) {
      tickets[static_cast<std::size_t>(i)] =
          router.submit(pool[static_cast<std::size_t>(zipf(rng))]);
    }
    for (const auto t : tickets) benchmark::DoNotOptimize(&router.wait(t));
  }
  const auto st = router.cache_stats();
  const auto probes = st.hits + st.misses;
  state.counters["queries/s"] = benchmark::Counter(
      static_cast<double>(k), benchmark::Counter::kIsIterationInvariantRate);
  state.counters["hit_rate"] =
      probes ? static_cast<double>(st.hits) / static_cast<double>(probes)
             : 0.0;
  state.SetLabel(std::string(cache_on ? "cache on" : "cache off") +
                 ", K=" + std::to_string(k));
}
// Iterations pinned: the router is a long-lived server and the cache
// warms across iterations by design (a serving cache's steady state IS
// the warmed state); unpinned runs would compare different warm-up
// fractions between the on/off rows.
BENCHMARK(bm_serve_cache)
    ->Iterations(256)
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Unit(benchmark::kMicrosecond);

/// Correctness gate: cached vs uncached through a read/mutate
/// interleaving must agree BYTE for byte (operator== plus a raw memcmp of
/// the value bytes) before any speedup means anything.
void print_preamble() {
  util::banner("Serving: result cache on vs off");
  const auto base = er_matrix(1024, 16384, 1);
  serve::Router<S>::Config cfg;
  cfg.n_shards = 4;
  cfg.executor.cache_bytes = kCacheBytes;
  serve::Router<S> cached(base, cfg);
  auto ucfg = cfg;
  ucfg.executor.cache_bytes = 0;
  serve::Router<S> uncached(base, ucfg);
  const auto pool = query_pool(1024, 7);
  util::Xoshiro256 rng(8);
  util::ZipfDistribution zipf(kPool, 1.1);
  bool same = true;
  for (int op = 0; op < 256; ++op) {
    if (op % 32 == 31) {  // sprinkle mutations: epochs must invalidate
      sparse::UpdateBatch<double> ops;
      ops.push_back(sparse::Update<double>::assign(
          static_cast<Index>(rng.bounded(1024)),
          static_cast<Index>(rng.bounded(1024)), rng.uniform(0.5, 1.5)));
      cached.mutate(ops);
      uncached.mutate(ops);
      continue;
    }
    const auto& q = pool[static_cast<std::size_t>(zipf(rng))];
    const auto& rc = cached.wait(cached.submit(q));
    const auto& ru = uncached.wait(uncached.submit(q));
    same &= rc == ru;
    const auto vc = rc.view();
    const auto vu = ru.view();
    same &= vc.vals.size() == vu.vals.size() &&
            (vc.vals.empty() ||
             std::memcmp(vc.vals.data(), vu.vals.data(),
                         vc.vals.size() * sizeof(double)) == 0);
  }
  const auto st = cached.cache_stats();
  std::cout << "cached == uncached (byte-exact) across 248 queries + 8 "
               "mutations: "
            << (same ? "yes" : "NO") << "\n"
            << "gate hit rate: " << st.hits << "/" << (st.hits + st.misses)
            << " probes\n";
}

}  // namespace

int main(int argc, char** argv) {
  print_preamble();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
