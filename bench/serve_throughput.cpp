// Batch-throughput sweep for the serving engine: K concurrent queries
// against one shared base, batched (one block-diagonal coalesced launch)
// vs per-query dispatch (K launches). The acceptance row for the ROADMAP
// "batched query execution" item: at K=64 batching must beat per-query
// dispatch, with the savings reported in ServeStats counters.

#include "bench_common.hpp"

#include <iostream>

#include "serve/executor.hpp"
#include "serve/router.hpp"
#include "serve/service.hpp"
#include "serve/trace.hpp"
#include "util/metrics.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::bench;
using sparse::Index;
using S = semiring::PlusTimes<double>;

/// Point-lookup traffic — the canonical serving shape: every query is a
/// 1-row frontier expansion (a few entries against the base). Per-query
/// dispatch pays the full fixed cost (region spin-up, accumulator scratch
/// construction, result assembly) per request; batching pays it once per
/// flush, so this mix shows the coalescing win even single-threaded.
std::vector<serve::Query<S>> point_queries(int k, Index n,
                                           std::uint64_t seed) {
  using Q = serve::Query<S>;
  util::Xoshiro256 rng(seed);
  std::vector<serve::Query<S>> qs;
  qs.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    std::vector<sparse::Triple<double>> t;
    for (int e = 0; e < 4; ++e) {
      t.push_back({0,
                   static_cast<Index>(
                       rng.bounded(static_cast<std::uint64_t>(n))),
                   rng.uniform(0.5, 1.5)});
    }
    qs.push_back(Q::analytic(
        sparse::Matrix<double>::from_triples<S>(1, n, std::move(t))));
  }
  return qs;
}

/// Analytic traffic: heavier lhs operands (8 rows, 64 entries), every 4th
/// with a plain output mask, every 8th complement-masked, every 6th a
/// row-extraction select. Flop-dominated — the batched win here comes from
/// sharing one parallel region across queries, i.e. from core counts > 1.
std::vector<serve::Query<S>> mixed_queries(int k, Index n,
                                           std::uint64_t seed) {
  using Q = serve::Query<S>;
  util::Xoshiro256 rng(seed);
  std::vector<serve::Query<S>> qs;
  qs.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    if (i % 6 == 5) {
      std::vector<Index> rows;
      for (int r = 0; r < 8; ++r) {
        rows.push_back(static_cast<Index>(
            rng.bounded(static_cast<std::uint64_t>(n))));
      }
      qs.push_back(Q::select(rows, n));
      continue;
    }
    std::vector<sparse::Triple<double>> t;
    for (int e = 0; e < 64; ++e) {
      t.push_back({static_cast<Index>(rng.bounded(8)),
                   static_cast<Index>(
                       rng.bounded(static_cast<std::uint64_t>(n))),
                   rng.uniform(0.5, 1.5)});
    }
    auto lhs = sparse::Matrix<double>::from_triples<S>(8, n, std::move(t));
    if (i % 4 == 3) {
      std::vector<sparse::Triple<double>> mt;
      for (int e = 0; e < static_cast<int>(n) * 2; ++e) {
        mt.push_back({static_cast<Index>(rng.bounded(8)),
                      static_cast<Index>(
                          rng.bounded(static_cast<std::uint64_t>(n))),
                      1.0});
      }
      auto mask = sparse::Matrix<double>::from_triples<S>(8, n,
                                                          std::move(mt));
      qs.push_back(Q::masked(std::move(lhs), std::move(mask),
                                    {.complement = i % 8 == 7}));
    } else {
      qs.push_back(Q::analytic(std::move(lhs)));
    }
  }
  return qs;
}

std::vector<serve::Query<S>> make_queries(int kind, int k, Index n,
                                          std::uint64_t seed) {
  return kind == 0 ? point_queries(k, n, seed) : mixed_queries(k, n, seed);
}

void print_preamble() {
  util::banner("Serving: batched vs per-query dispatch");
  const auto base = er_matrix(1024, 16384, 1);
  for (const int kind : {0, 1}) {
    const auto qs = make_queries(kind, 16, 1024, 2);
    const auto batched = serve::run_batch(base, qs);
    bool same = true;
    for (std::size_t i = 0; i < qs.size(); ++i) {
      same &= batched[i] == serve::run_single(base, qs[i]);
    }
    std::cout << "batched == per-query on 16-query "
              << (kind == 0 ? "point" : "mixed") << " mix: "
              << (same ? "yes" : "NO") << "\n";
  }
  // Sharded correctness gate: a fast wrong number must fail loudly here.
  for (const int shards : {2, 4}) {
    serve::Router<S> router(base, {.n_shards = shards});
    const auto qs = make_queries(1, 16, 1024, 2);
    bool same = true;
    std::vector<std::size_t> tickets;
    for (const auto& q : qs) tickets.push_back(router.submit(q));
    for (std::size_t i = 0; i < qs.size(); ++i) {
      same &= router.wait(tickets[i]) == serve::run_single(base, qs[i]);
    }
    std::cout << "sharded(N=" << shards
              << ") == unsharded on 16-query mixed mix: "
              << (same ? "yes" : "NO") << "\n";
  }
}

void bm_serve(benchmark::State& state) {
  // Arg0: K (queries per flush). Arg1: 0 = batched (one coalesced launch),
  // 1 = per-query dispatch (K launches). Arg2: 0 = point-lookup mix,
  // 1 = analytic mix.
  const int k = static_cast<int>(state.range(0));
  const Index n = 4096;
  const auto base = er_matrix(n, static_cast<std::size_t>(n) * 16, 1);
  const auto qs = make_queries(static_cast<int>(state.range(2)), k, n, 3);
  const bool batched = state.range(1) == 0;
  serve::ServeStats stats;
  for (auto _ : state) {
    if (batched) {
      benchmark::DoNotOptimize(
          serve::run_batch(base, qs, sparse::MxmStrategy::kAuto, &stats));
    } else {
      for (const auto& q : qs) {
        benchmark::DoNotOptimize(serve::run_single(base, q));
      }
    }
  }
  if (batched && stats.batches > 0) {
    state.counters["launches_saved_per_flush"] = static_cast<double>(
        stats.launches_saved / stats.batches);
    state.counters["rows_coalesced_per_flush"] = static_cast<double>(
        stats.rows_coalesced / stats.batches);
  }
  state.counters["queries_per_s"] = benchmark::Counter(
      static_cast<double>(k), benchmark::Counter::kIsIterationInvariantRate);
  state.SetLabel(std::string(batched ? "batched" : "per-query") + ", K=" +
                 std::to_string(k) +
                 (state.range(2) == 0 ? ", point lookups" : ", analytic mix"));
}
BENCHMARK(bm_serve)
    ->Args({1, 0, 0})
    ->Args({1, 1, 0})
    ->Args({8, 0, 0})
    ->Args({8, 1, 0})
    ->Args({64, 0, 0})
    ->Args({64, 1, 0})
    ->Args({1, 0, 1})
    ->Args({1, 1, 1})
    ->Args({8, 0, 1})
    ->Args({8, 1, 1})
    ->Args({64, 0, 1})
    ->Args({64, 1, 1});

void bm_serve_executor(benchmark::State& state) {
  // The full executor path: submit K queries, flush, read one result —
  // measures queue + admission overhead on top of the coalesced launch.
  const int k = static_cast<int>(state.range(0));
  const Index n = 4096;
  auto base = er_matrix(n, static_cast<std::size_t>(n) * 16, 1);
  const auto qs = make_queries(0, k, n, 4);
  for (auto _ : state) {
    serve::Executor<S> ex(base);
    std::size_t last = 0;
    for (const auto& q : qs) last = ex.submit(q);
    benchmark::DoNotOptimize(ex.wait(last));
  }
  state.counters["queries_per_s"] = benchmark::Counter(
      static_cast<double>(k), benchmark::Counter::kIsIterationInvariantRate);
  state.SetLabel("executor submit+flush, K=" + std::to_string(k));
}
BENCHMARK(bm_serve_executor)->Arg(8)->Arg(64);

void bm_serve_executor_async(benchmark::State& state) {
  // Async executor: the background thread flushes on queue depth while the
  // caller submits, then every ticket is awaited. Measures the futures
  // round trip (submit → background coalesced launch → wait) against the
  // synchronous path above; answers are bit-identical by contract.
  const int k = static_cast<int>(state.range(0));
  const Index n = 4096;
  auto base = er_matrix(n, static_cast<std::size_t>(n) * 16, 1);
  const auto qs = make_queries(0, k, n, 4);
  for (auto _ : state) {
    serve::Executor<S> ex(base, {.async = true,
                                 .flush_queue_depth = 16,
                                 .flush_interval =
                                     std::chrono::milliseconds(1)});
    std::vector<std::size_t> tickets;
    tickets.reserve(qs.size());
    for (const auto& q : qs) tickets.push_back(ex.submit(q));
    for (const auto t : tickets) benchmark::DoNotOptimize(ex.wait(t));
  }
  state.counters["queries_per_s"] = benchmark::Counter(
      static_cast<double>(k), benchmark::Counter::kIsIterationInvariantRate);
  state.SetLabel("async executor submit+wait, K=" + std::to_string(k));
}
BENCHMARK(bm_serve_executor_async)->Arg(8)->Arg(64);

void bm_serve_multibase(benchmark::State& state) {
  // K point queries spread round-robin over G=4 bases. Arg1 selects the
  // dispatch: 0 = ONE cross-base block-diagonal launch on the stack a
  // long-lived server caches at startup (run_batch_on_stack — the
  // executor's steady-state path; stacking the bases is a one-time cost
  // outside the measurement), 1 = one coalesced batch per base
  // (G launches), 2 = per-query dispatch (K launches). The 0-vs-1 gap is
  // what stacking the bases themselves buys once per-launch costs
  // dominate.
  const int k = static_cast<int>(state.range(0));
  const int mode = static_cast<int>(state.range(1));
  const Index n = 2048;
  constexpr std::size_t kBases = 4;
  std::vector<sparse::Matrix<double>> bases;
  for (std::size_t g = 0; g < kBases; ++g) {
    bases.push_back(
        er_matrix(n, static_cast<std::size_t>(n) * 16, 10 + g));
  }
  std::vector<const sparse::Matrix<double>*> bptrs;
  for (const auto& b : bases) bptrs.push_back(&b);
  const auto stack = sparse::stack_bases<double>(bptrs);
  const auto qs = make_queries(0, k, n, 5);
  std::vector<std::size_t> ids(qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) ids[i] = i % kBases;
  serve::ServeStats stats;
  for (auto _ : state) {
    if (mode == 0) {
      benchmark::DoNotOptimize(serve::run_batch_on_stack<S>(
          stack, qs, ids, sparse::MxmStrategy::kAuto, &stats));
    } else if (mode == 1) {
      for (std::size_t g = 0; g < kBases; ++g) {
        std::vector<serve::Query<S>> group;
        for (std::size_t i = g; i < qs.size(); i += kBases) {
          group.push_back(qs[i]);
        }
        benchmark::DoNotOptimize(serve::run_batch(
            bases[g], group, sparse::MxmStrategy::kAuto, &stats));
      }
    } else {
      for (std::size_t i = 0; i < qs.size(); ++i) {
        benchmark::DoNotOptimize(serve::run_single(bases[ids[i]], qs[i]));
      }
    }
  }
  if (mode == 0 && stats.batches > 0) {
    state.counters["launches_saved_per_flush"] = static_cast<double>(
        stats.launches_saved / stats.batches);
  }
  state.counters["queries_per_s"] = benchmark::Counter(
      static_cast<double>(k), benchmark::Counter::kIsIterationInvariantRate);
  state.SetLabel(std::string(mode == 0   ? "cross-base batched"
                             : mode == 1 ? "per-base batched"
                                         : "per-query") +
                 ", K=" + std::to_string(k) + ", G=4 bases");
}
BENCHMARK(bm_serve_multibase)
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({8, 2})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({64, 2});

void bm_serve_sharded(benchmark::State& state) {
  // Sharded vs unsharded serving: K queries through a Router over N
  // row-range shards (N=1 is the unsharded executor path, verbatim — the
  // baseline row). The point mix draws 4 random keys per query, so at
  // N>1 nearly every query straddles shards — the worst case for the
  // scatter + carry-merge machinery, which the straddling_merges counter
  // makes visible; the sharded win on multi-core runners is per-shard
  // admission and flush independence. Answers are bit-identical across N
  // by contract (see the preamble check).
  const int k = static_cast<int>(state.range(0));
  const int shards = static_cast<int>(state.range(1));
  const Index n = 4096;
  const auto base = er_matrix(n, static_cast<std::size_t>(n) * 16, 1);
  const auto qs = make_queries(0, k, n, 6);
  serve::Router<S> router(base, {.n_shards = shards});
  std::uint64_t merges = 0;
  for (auto _ : state) {
    std::vector<std::size_t> tickets;
    tickets.reserve(qs.size());
    for (const auto& q : qs) tickets.push_back(router.submit(q));
    router.flush();
    for (const auto t : tickets) benchmark::DoNotOptimize(router.wait(t));
  }
  merges = router.router_stats().merges;
  state.counters["queries_per_s"] = benchmark::Counter(
      static_cast<double>(k), benchmark::Counter::kIsIterationInvariantRate);
  state.counters["straddling_merges"] = static_cast<double>(merges);
  state.SetLabel("sharded router, N=" + std::to_string(shards) +
                 ", K=" + std::to_string(k) + ", point lookups");
}
// Iterations are pinned: the router is a long-lived server (the shard
// split is a one-time cost outside the loop, as in bm_serve_multibase) and
// its ticket ledger grows per submit, so the iteration count bounds memory.
BENCHMARK(bm_serve_sharded)
    ->Iterations(256)
    ->Args({8, 1})
    ->Args({8, 2})
    ->Args({8, 4})
    ->Args({64, 1})
    ->Args({64, 2})
    ->Args({64, 4});

void bm_serve_mixed_rw(benchmark::State& state) {
  // Mixed read/write serving through the Service interface: each tick
  // interleaves K point queries with M mutation batches (32 updates each,
  // 3:1 assigns to erases) against a live delta base, then redeems every
  // ticket. Arg0 = K (query rate per tick), Arg1 = M (mutation rate per
  // tick), Arg2 = shard count (1 = plain executor path). The M=0 rows are
  // the read-only baseline; the grid shows what live writes cost the read
  // path (delta-overlay probes + stale-stack fallbacks) at each rate.
  const int k = static_cast<int>(state.range(0));
  const int muts = static_cast<int>(state.range(1));
  const int shards = static_cast<int>(state.range(2));
  const Index n = 4096;
  const auto base = er_matrix(n, static_cast<std::size_t>(n) * 16, 1);
  serve::Router<S> router(base, {.n_shards = shards});
  serve::Service<S>& svc = router;
  const auto qs = make_queries(0, k, n, 7);
  util::Xoshiro256 rng(8);
  auto random_vertex = [&] {
    return static_cast<Index>(rng.bounded(static_cast<std::uint64_t>(n)));
  };
  const int gap = muts > 0 ? std::max(1, k / muts) : 0;
  for (auto _ : state) {
    std::vector<std::size_t> tickets;
    tickets.reserve(qs.size());
    for (int i = 0; i < k; ++i) {
      tickets.push_back(svc.submit(qs[static_cast<std::size_t>(i)]));
      if (gap > 0 && i % gap == gap - 1) {
        sparse::UpdateBatch<double> ops;
        ops.reserve(32);
        for (int u = 0; u < 32; ++u) {
          if (u % 4 == 3) {
            ops.push_back(sparse::Update<double>::erased(random_vertex(),
                                                         random_vertex()));
          } else {
            ops.push_back(sparse::Update<double>::assign(
                random_vertex(), random_vertex(), rng.uniform(0.5, 1.5)));
          }
        }
        svc.mutate(ops);
      }
    }
    svc.flush();
    for (const auto t : tickets) benchmark::DoNotOptimize(svc.wait(t));
  }
  state.counters["queries_per_s"] = benchmark::Counter(
      static_cast<double>(k), benchmark::Counter::kIsIterationInvariantRate);
  state.counters["mutations_per_s"] = benchmark::Counter(
      static_cast<double>(muts > 0 ? k / gap : 0),
      benchmark::Counter::kIsIterationInvariantRate);
  state.counters["final_epoch"] = static_cast<double>(svc.epoch());
  state.SetLabel("mixed r/w, K=" + std::to_string(k) + " reads, M=" +
                 std::to_string(muts) + " writes/tick, N=" +
                 std::to_string(shards) + " shards");
}
// Iterations pinned for the same reason as bm_serve_sharded: long-lived
// server, ticket ledger and delta epochs grow per tick.
BENCHMARK(bm_serve_mixed_rw)
    ->Iterations(64)
    ->Args({64, 0, 1})
    ->Args({64, 4, 1})
    ->Args({64, 16, 1})
    ->Args({8, 4, 1})
    ->Args({64, 0, 4})
    ->Args({64, 4, 4});

void bm_serve_latency(benchmark::State& state) {
  // End-to-end query latency through the async executor, reported as
  // nearest-rank percentiles from the process-wide telemetry histogram
  // (serve.query_latency_ns: submit enqueue → result settled). These are
  // the BENCH_serve.json tail-latency rows the SLO story reads; the
  // histogram's log buckets give ≤ 2^-4 relative error per quantile.
  const int k = static_cast<int>(state.range(0));
  const Index n = 4096;
  auto base = er_matrix(n, static_cast<std::size_t>(n) * 16, 1);
  const auto qs = make_queries(0, k, n, 9);
  util::metrics::set_enabled(true);
  util::metrics::Registry::instance().reset_values();
  for (auto _ : state) {
    serve::Executor<S> ex(base, {.async = true,
                                 .flush_queue_depth = 16,
                                 .flush_interval =
                                     std::chrono::milliseconds(1)});
    std::vector<std::size_t> tickets;
    tickets.reserve(qs.size());
    for (const auto& q : qs) tickets.push_back(ex.submit(q));
    for (const auto t : tickets) benchmark::DoNotOptimize(ex.wait(t));
  }
  const auto lat = util::metrics::Registry::instance().histogram_snapshot(
      "serve.query_latency_ns");
  if (lat.count > 0) {
    state.counters["p50_ns"] = static_cast<double>(lat.percentile(0.50));
    state.counters["p95_ns"] = static_cast<double>(lat.percentile(0.95));
    state.counters["p99_ns"] = static_cast<double>(lat.percentile(0.99));
  }
  state.counters["queries_per_s"] = benchmark::Counter(
      static_cast<double>(k), benchmark::Counter::kIsIterationInvariantRate);
  state.SetLabel("async executor tail latency, K=" + std::to_string(k));
}
BENCHMARK(bm_serve_latency)->Arg(8)->Arg(64);

void bm_serve_telemetry_overhead(benchmark::State& state) {
  // The telemetry guardrail: the same synchronous submit+flush+wait
  // workload with telemetry fully off (Arg 0), counters/histograms only
  // (Arg 1), and full per-query tracing (Arg 2). Row 0 vs row 1 is the
  // always-on production cost and must stay in the noise; row 2 prices the
  // clock reads + ring appends tracing adds per query.
  const int mode = static_cast<int>(state.range(0));
  const int k = 64;
  const Index n = 4096;
  auto base = er_matrix(n, static_cast<std::size_t>(n) * 16, 1);
  const auto qs = make_queries(0, k, n, 10);
  util::metrics::set_enabled(mode >= 1);
  serve::trace::Tracer::instance().configure(
      {.enabled = mode >= 2, .sample_every = 1});
  for (auto _ : state) {
    serve::Executor<S> ex(base);
    std::vector<std::size_t> tickets;
    tickets.reserve(qs.size());
    for (const auto& q : qs) tickets.push_back(ex.submit(q));
    for (const auto t : tickets) benchmark::DoNotOptimize(ex.wait(t));
  }
  serve::trace::Tracer::instance().configure({});  // restore: tracing off
  util::metrics::set_enabled(true);                // restore: metrics on
  state.counters["queries_per_s"] = benchmark::Counter(
      static_cast<double>(k), benchmark::Counter::kIsIterationInvariantRate);
  state.SetLabel(std::string(mode == 0   ? "telemetry off"
                             : mode == 1 ? "counters only"
                                         : "full tracing") +
                 ", K=" + std::to_string(k));
}
BENCHMARK(bm_serve_telemetry_overhead)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

int main(int argc, char** argv) {
  print_preamble();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
