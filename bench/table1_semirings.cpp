// Table I — selected semirings.
//
// Reproduction: prints the table itself (set, ⊕, ⊗, 0, 1) with the
// identities evaluated by the implementation, then verifies every law on a
// random sample, then times mxm over each semiring on the same R-MAT
// pattern. The paper's claim — one kernel, many semirings — is visible as
// near-identical timings for the numeric rows.

#include "bench_common.hpp"

#include <iostream>

#include "sparse/mxm.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::bench;

template <semiring::Semiring S>
void print_row(util::TextTable& table, const char* set, const char* zero,
               const char* one) {
  std::vector<typename S::value_type> sample;
  if constexpr (std::is_same_v<typename S::value_type, double>) {
    sample = {0.0, 0.5, 1.0, 2.0, 7.0};
  }
  const bool laws = sample.empty() || semiring::all_semiring_laws<S>(sample);
  table.row(set, std::string(S::name()), zero, one,
            laws ? "verified" : "FAILED");
}

void print_table1() {
  util::banner("Table I: Selected Semirings (identities verified in code)");
  util::TextTable t({"set", "+.x (name)", "0", "1", "laws"});
  print_row<semiring::PlusTimes<double>>(t, "R", "0", "1");
  print_row<semiring::MaxPlus<double>>(t, "R u -inf", "-inf", "0");
  print_row<semiring::MinPlus<double>>(t, "R u +inf", "+inf", "0");
  print_row<semiring::MaxTimes<double>>(t, "R>=0", "0", "1");
  print_row<semiring::MinTimes<double>>(t, "R>=0 u +inf", "+inf", "1");
  {
    std::vector<semiring::ValueSet> s = {semiring::ValueSet::empty(),
                                         semiring::ValueSet::all(),
                                         semiring::ValueSet{1, 2},
                                         semiring::ValueSet{2, 5}};
    util::TextTable dummy({""});
    (void)dummy;
    t.row("P(V)", std::string(semiring::UnionIntersect::name()), "empty",
          "P(V)",
          semiring::all_semiring_laws<semiring::UnionIntersect>(s)
              ? "verified"
              : "FAILED");
  }
  print_row<semiring::MaxMin<double>>(t, "V u -inf", "-inf", "+inf");
  print_row<semiring::MinMax<double>>(t, "V u +inf", "+inf", "-inf");
  t.print();
  std::cout << "\n(mxm timing series below exercises one templated kernel "
               "across all rows)\n";
}

template <semiring::Semiring S>
void bm_mxm_semiring(benchmark::State& state) {
  const auto a = rmat_matrix(static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::mxm<S>(a, a));
  }
  state.SetLabel(std::string(S::name()));
}

BENCHMARK(bm_mxm_semiring<semiring::PlusTimes<double>>)->Arg(8)->Arg(10);
BENCHMARK(bm_mxm_semiring<semiring::MaxPlus<double>>)->Arg(8)->Arg(10);
BENCHMARK(bm_mxm_semiring<semiring::MinPlus<double>>)->Arg(8)->Arg(10);
BENCHMARK(bm_mxm_semiring<semiring::MaxTimes<double>>)->Arg(8)->Arg(10);
BENCHMARK(bm_mxm_semiring<semiring::MinTimes<double>>)->Arg(8)->Arg(10);
BENCHMARK(bm_mxm_semiring<semiring::MaxMin<double>>)->Arg(8)->Arg(10);
BENCHMARK(bm_mxm_semiring<semiring::MinMax<double>>)->Arg(8)->Arg(10);

void bm_mxm_union_intersect(benchmark::State& state) {
  using U = semiring::UnionIntersect;
  using semiring::ValueSet;
  const auto n = static_cast<sparse::Index>(1) << state.range(0);
  util::Xoshiro256 rng(3);
  std::vector<sparse::Triple<ValueSet>> t;
  for (sparse::Index i = 0; i < n * 4; ++i) {
    t.push_back({static_cast<sparse::Index>(rng.bounded(static_cast<std::uint64_t>(n))),
                 static_cast<sparse::Index>(rng.bounded(static_cast<std::uint64_t>(n))),
                 ValueSet{static_cast<std::int64_t>(rng.bounded(16))}});
  }
  const auto a = sparse::Matrix<ValueSet>::from_triples<U>(n, n, std::move(t));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sparse::mxm<U>(a, a));
  }
  state.SetLabel("u.n (set-valued)");
}
BENCHMARK(bm_mxm_union_intersect)->Arg(8)->Arg(10);

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
