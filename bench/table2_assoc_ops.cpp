// Table II — associative array operations and properties.
//
// Reproduction: prints each Table II row with a live verification on random
// key-addressed arrays, then times each operation as a function of nnz.

#include "bench_common.hpp"

#include <iostream>

#include "array/assoc_array.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::array;
using namespace hyperspace::bench;
using S = semiring::PlusTimes<double>;
using Arr = AssocArray<S>;

Arr random_array(std::size_t entries, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<Key> k1, k2;
  std::vector<double> v;
  for (std::size_t i = 0; i < entries; ++i) {
    k1.emplace_back("ip-" + std::to_string(rng.bounded(entries)));
    k2.emplace_back("port-" + std::to_string(rng.bounded(64)));
    v.push_back(static_cast<double>(1 + rng.bounded(9)));
  }
  return Arr(k1, k2, v);
}

void print_table2() {
  util::banner("Table II: Associative Array Operations (verified live)");
  const auto A = random_array(500, 1);
  const auto B = random_array(500, 2);
  const auto C = random_array(500, 3);

  util::TextTable t({"property", "notation", "status"});
  const auto entries = A.entries();
  t.row("Construction", "A = A(k1,k2,v)",
        Arr::from_entries(entries) == A ? "ok" : "FAIL");
  t.row("Extraction", "(k1,k2,v) = A",
        entries.size() == static_cast<std::size_t>(A.nnz()) ? "ok" : "FAIL");
  t.row("Identity", "I(k) = P(k,k)",
        Arr::identity(A.row()).nnz() ==
                static_cast<sparse::Index>(A.row().size())
            ? "ok"
            : "FAIL");
  t.row("Transpose", "A(k2,k1) = A^T(k1,k2)",
        A.transpose().transpose() == A ? "ok" : "FAIL");
  t.row("Row keys", "k1 = row(A)", !A.row().empty() ? "ok" : "FAIL");
  t.row("Col keys", "k2 = col(A)", !A.col().empty() ? "ok" : "FAIL");
  t.row("Nonzero count", "nnz(A)", A.nnz() > 0 ? "ok" : "FAIL");
  t.row("Same sparsity", "|A|0 = |B|0",
        A.zero_norm() == A.zero_norm() ? "ok" : "FAIL");
  t.row("EW add identity", "A + 0 = A", add(A, Arr()) == A ? "ok" : "FAIL");
  t.row("EW mult identity", "A x 1 = A",
        mult(A, Arr::ones(A.row_keys(), A.col_keys())) == A ? "ok" : "FAIL");
  t.row("EW mult annihilator", "A x 0 = 0",
        mult(A, Arr()).empty() ? "ok" : "FAIL");
  t.row("Array mult identity", "A I = A",
        mtimes(A, Arr::identity(A.col_keys())) == A ? "ok" : "FAIL");
  t.row("Array mult annihilator", "A 0 = 0",
        mtimes(A, Arr()).empty() ? "ok" : "FAIL");
  t.row("Commutativity", "A+B = B+A", add(A, B) == add(B, A) ? "ok" : "FAIL");
  t.row("Commutativity", "AxB = BxA",
        mult(A, B) == mult(B, A) ? "ok" : "FAIL");
  t.row("Transpose of product", "(AB)^T = B^T A^T",
        mtimes(A, B).transpose() ==
                mtimes(B.transpose(), A.transpose())
            ? "ok"
            : "FAIL");
  t.row("Associativity", "(A+B)+C = A+(B+C)",
        add(add(A, B), C) == add(A, add(B, C)) ? "ok" : "FAIL");
  t.row("Associativity", "(AB)C = A(BC)",
        mtimes(mtimes(A, B), C) == mtimes(A, mtimes(B, C)) ? "ok" : "FAIL");
  t.row("Distributivity", "Ax(B+C) = AxB + AxC",
        mult(A, add(B, C)) == add(mult(A, B), mult(A, C)) ? "ok" : "FAIL");
  t.row("Distributivity", "A(B+C) = AB + AC",
        mtimes(A, add(B, C)) == add(mtimes(A, B), mtimes(A, C)) ? "ok"
                                                                : "FAIL");
  t.print();
}

void bm_construction(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(random_array(n, 7));
  }
}
BENCHMARK(bm_construction)->Arg(1000)->Arg(10000);

void bm_ewise_add(benchmark::State& state) {
  const auto a = random_array(static_cast<std::size_t>(state.range(0)), 1);
  const auto b = random_array(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) benchmark::DoNotOptimize(add(a, b));
}
BENCHMARK(bm_ewise_add)->Arg(1000)->Arg(10000);

void bm_ewise_mult(benchmark::State& state) {
  const auto a = random_array(static_cast<std::size_t>(state.range(0)), 1);
  const auto b = random_array(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) benchmark::DoNotOptimize(mult(a, b));
}
BENCHMARK(bm_ewise_mult)->Arg(1000)->Arg(10000);

void bm_array_mult(benchmark::State& state) {
  const auto a = random_array(static_cast<std::size_t>(state.range(0)), 1);
  const auto b = random_array(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) benchmark::DoNotOptimize(mtimes(a, b.transpose()));
}
BENCHMARK(bm_array_mult)->Arg(1000)->Arg(4000);

void bm_transpose(benchmark::State& state) {
  const auto a = random_array(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) benchmark::DoNotOptimize(a.transpose());
}
BENCHMARK(bm_transpose)->Arg(1000)->Arg(10000);

void bm_zero_norm(benchmark::State& state) {
  const auto a = random_array(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) benchmark::DoNotOptimize(a.zero_norm());
}
BENCHMARK(bm_zero_norm)->Arg(1000)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
  print_table2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
