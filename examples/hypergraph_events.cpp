// Hypergraph events — the §II-A scenario.
//
// Streaming events that connect *groups* of entities (a meeting, an email
// with many recipients, a multicast flow) are hyper-edges. This example
// ingests synthetic "meeting" events as incidence arrays, projects them to
// an interaction adjacency array (Fig 3), and mines the projection.

#include <iostream>
#include <map>

#include "hypergraph/algorithms.hpp"
#include "hypergraph/incidence.hpp"
#include "hypergraph/projection.hpp"
#include "sparse/reduce.hpp"
#include "util/generators.hpp"

int main() {
  using namespace hyperspace;
  using sparse::Index;

  // 2000 people; 500 meetings of 2-8 participants each. Organizers (the
  // "out" side) invite attendees (the "in" side).
  util::Xoshiro256 rng(31);
  const Index n_people = 2000;
  std::vector<hypergraph::HyperEdge> meetings;
  util::ZipfDistribution popular(n_people, 1.05);  // some people meet a lot
  for (int m = 0; m < 500; ++m) {
    hypergraph::HyperEdge e;
    const int organizers = 1 + static_cast<int>(rng.bounded(2));
    const int attendees = 1 + static_cast<int>(rng.bounded(7));
    for (int i = 0; i < organizers; ++i) e.out.push_back(popular(rng));
    for (int i = 0; i < attendees; ++i) e.in.push_back(popular(rng));
    e.weight = 1.0;
    meetings.push_back(std::move(e));
  }
  const hypergraph::IncidencePair g(n_people, meetings);
  std::cout << "ingested " << g.n_edges() << " meetings over " << n_people
            << " people\n"
            << "E_out nnz " << g.eout().nnz() << ", E_in nnz " << g.ein().nnz()
            << ", hyper-edges present: "
            << (g.has_hyper_edges() ? "yes" : "no") << "\n\n";

  // Project to who-met-whom: A = E_out^T E_in accumulates co-attendance.
  const auto a = hypergraph::adjacency(g);
  std::cout << "interaction array: " << a.nnz()
            << " organizer->attendee pairs ("
            << sparse::format_name(a.format()) << ")\n";

  // Strongest interaction.
  double best = 0;
  Index bi = 0, bj = 0;
  for (const auto& t : a.to_triples()) {
    if (t.val > best) {
      best = t.val;
      bi = t.row;
      bj = t.col;
    }
  }
  std::cout << "most frequent pair: person " << bi << " -> person " << bj
            << " (" << best << " joint meetings)\n";

  // Who organizes the most interactions? Row projection A ⊕.⊗ 1 (§IV).
  using Add = semiring::AddMonoidOf<semiring::PlusTimes<double>>;
  const auto out_strength = sparse::reduce_rows<Add>(a);
  double top = 0;
  Index who = 0;
  for (const auto& t : out_strength.to_triples()) {
    if (t.val > top) {
      top = t.val;
      who = t.row;
    }
  }
  std::cout << "busiest organizer: person " << who << " with total weight "
            << top << '\n';

  // Social structure of the projection.
  const auto cc = hypergraph::connected_components(a);
  std::map<Index, int> sizes;
  for (const auto c : cc) ++sizes[c];
  // People in no meeting form singleton components; count the real ones.
  int communities = 0, largest = 0;
  for (const auto& [c, sz] : sizes) {
    if (sz > 1) {
      ++communities;
      largest = std::max(largest, sz);
    }
  }
  std::cout << communities << " meeting communities; largest has " << largest
            << " people; triangle count "
            << hypergraph::triangle_count(a) << '\n';
  return 0;
}
