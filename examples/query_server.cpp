// Sharded async multi-tenant query serving — the millions-of-concurrent-
// users loop in miniature.
//
// A follower graph is the shared base array, partitioned by the shard map
// into four row-range shards, each owned by its own executor with its own
// background flush thread and admission budget. Three tenants (a
// recommender, a feed filter, and a profile service) issue neighbor
// expansions (mtimes), filtered expansions (fused output masks, both
// senses), and profile lookups (select) through the ROUTER, which
// scatters each query to the shard(s) its key range touches and gathers
// per-shard partials with the deterministic carry fold. Nobody calls
// flush(): the shard flush threads drain their queues on queue depth or
// deadline, coalescing each slice into ONE block-diagonal masked product
// under the admission policy — including the per-tenant flop quota that
// keeps the heavy recommender from starving the profile service's point
// lookups. Callers submit() and later wait() their ticket, exactly like a
// future. Answers are bit-identical to serving every query alone,
// synchronously, unsharded; ServeStats shows what coalescing saved,
// RouterStats how the scatter split the traffic, and TenantStats breaks
// the accounting down per tenant.

#include <cstdio>
#include <iostream>

#include "semiring/all.hpp"
#include "serve/router.hpp"
#include "util/generators.hpp"
#include "util/rng.hpp"

int main() {
  using namespace hyperspace;
  using sparse::Index;
  using S = semiring::PlusTimes<double>;
  using Q = serve::Query<S>;

  const int scale = 12;
  const Index n = Index{1} << scale;
  const auto edges = util::rmat_edges({.scale = scale, .edge_factor = 16,
                                       .seed = 7});
  std::vector<sparse::Triple<double>> t;
  for (const auto& e : edges) t.push_back({e.src, e.dst, 1.0});
  const auto base = sparse::Matrix<double>::from_triples<S>(n, n,
                                                            std::move(t));
  std::cout << "base graph: " << n << " users, " << base.nnz()
            << " follow edges\n";

  // Tenants: 0 = recommender (heavy expansions), 1 = feed filter (masked
  // expansions), 2 = profile service (point lookups). The quota bounds how
  // many flops any one tenant may occupy per batch, so tenant 2's lookups
  // never queue behind tenant 0's fan-outs.
  constexpr serve::TenantId kRecommender = 0;
  constexpr serve::TenantId kFeedFilter = 1;
  constexpr serve::TenantId kProfiles = 2;
  serve::Router<S> ex(
      base, {.executor = {.max_batch_queries = 64,
                          .tenant_flop_quota = std::uint64_t{1} << 16,
                          .async = true,
                          .flush_queue_depth = 48,
                          .flush_interval = std::chrono::milliseconds(1)},
             .n_shards = 4});
  std::cout << "router: " << ex.n_shards() << " row-range shards of "
            << ex.map().height(0) << " users each\n";
  util::Xoshiro256 rng(42);
  auto random_vertex = [&] {
    return static_cast<Index>(rng.bounded(static_cast<std::uint64_t>(n)));
  };

  // One "tick" of traffic: 256 concurrent requests of mixed kinds. The
  // background flush thread is already draining while these land.
  std::vector<std::size_t> tickets;
  for (int u = 0; u < 256; ++u) {
    switch (u % 3) {
      case 0: {  // recommender: who do my follows follow? (8-seed fan-out)
        std::vector<sparse::Triple<double>> seeds;
        for (int i = 0; i < 8; ++i) seeds.push_back({0, random_vertex(), 1.0});
        tickets.push_back(ex.submit(
            kRecommender,
            Q::mtimes(sparse::Matrix<double>::from_triples<S>(
                1, n, std::move(seeds)))));
        break;
      }
      case 1: {  // feed filter: expand, but exclude already-seen users
        std::vector<sparse::Triple<double>> seen;
        for (int i = 0; i < 32; ++i) seen.push_back({0, random_vertex(), 1.0});
        tickets.push_back(ex.submit(
            kFeedFilter,
            Q::mtimes_masked(sparse::Matrix<double>::from_unique_triples(
                                 1, n, {{0, random_vertex(), 1.0}}),
                             sparse::Matrix<double>::from_triples<S>(
                                 1, n, std::move(seen)),
                             {.complement = true})));
        break;
      }
      default: {  // profile service: raw adjacency rows for 4 users
        tickets.push_back(ex.submit(
            kProfiles, Q::select({random_vertex(), random_vertex(),
                                  random_vertex(), random_vertex()},
                                 n)));
      }
    }
  }

  // Redeem the futures — wait() nudges the flusher for anything still
  // queued, so no explicit flush() appears anywhere in this program.
  std::size_t answered = 0, nonempty = 0;
  for (const auto tk : tickets) {
    ++answered;
    nonempty += ex.wait(tk).nnz() > 0;
  }

  const auto st = ex.stats();
  const auto rs = ex.router_stats();
  std::cout << "answered " << answered << " queries (" << nonempty
            << " with hits)\n"
            << "single-shard queries: " << rs.single_shard << '\n'
            << "straddling queries:   " << rs.straddling << " (" << rs.merges
            << " carry merges)\n"
            << "shard sub-queries:    " << rs.stage_submits << '\n'
            << "batches flushed:      " << st.batches << '\n'
            << "kernel launches:      " << st.kernel_launches << '\n'
            << "launches saved:       " << st.launches_saved << '\n'
            << "rows coalesced:       " << st.rows_coalesced << '\n'
            << "mask flops kept:      " << st.flops_kept << '\n'
            << "mask flops skipped:   " << st.flops_skipped << '\n';

  // Per-tenant breakdown — the TenantStats counters in action. queries /
  // rows / flops are exact and timing-invariant; batches / deferrals show
  // how the quota actually sliced this run's traffic.
  const char* names[] = {"recommender", "feed filter", "profiles"};
  std::printf("\n%-12s %8s %6s %10s %8s %10s\n", "tenant", "queries",
              "rows", "flops", "batches", "deferrals");
  for (const auto tenant : ex.tenants()) {
    const auto ts = ex.tenant_stats(tenant);
    std::printf("%-12s %8llu %6llu %10llu %8llu %10llu\n",
                names[tenant % 3],
                static_cast<unsigned long long>(ts.queries),
                static_cast<unsigned long long>(ts.rows),
                static_cast<unsigned long long>(ts.flops),
                static_cast<unsigned long long>(ts.batches),
                static_cast<unsigned long long>(ts.deferrals));
  }
  ex.shutdown();  // drains anything left; also what ~Executor would do
  return 0;
}
