// Sharded async multi-tenant query serving WITH live mutation — the
// millions-of-concurrent-users loop in miniature.
//
// A follower graph is the shared base array, partitioned by the shard map
// into four row-range shards, each owned by its own executor with its own
// background flush thread and admission budget. Three tenants (a
// recommender, a feed filter, and a profile service) issue neighbor
// expansions (analytic), filtered expansions (fused output masks, both
// senses), and profile lookups (select) — and between traffic ticks the
// graph itself CHANGES: users follow and unfollow, applied live through
// mutate() as delta-base epochs, no rebuild, no downtime.
//
// Everything below the construction line drives the engine through ONE
// interface: serve::Service<S> — submit / mutate / wait / poll / flush /
// shutdown / stats. The traffic loop takes a Service& and never learns it
// is talking to a sharded router; swap in a plain Executor and the same
// code runs unchanged (and answers bit-identically, per the Service
// contract). Nobody calls flush(): the shard flush threads drain their
// queues on queue depth or deadline, coalescing each slice into ONE
// block-diagonal masked product under the admission policy. Callers
// submit() and later wait() their ticket, exactly like a future. In-flight
// batches finish on the epoch they started on; batches flushed after a
// mutate() serve the new epoch.
//
// The run is also OBSERVED: the tracer samples every 2nd query end to end
// (submit → tenant queue → admission → kernel → carry → gather → wait)
// and dumps a Chrome trace-event JSON — pass a path as argv[1], default
// query_server_trace.json — loadable in chrome://tracing or Perfetto and
// schema-checked in CI by tools/check_trace_json.py. The Prometheus-style
// metrics exposition (Service::metrics_text) prints at the end.

#include <cstdio>
#include <iostream>

#include "semiring/all.hpp"
#include "serve/router.hpp"
#include "serve/service.hpp"
#include "serve/trace.hpp"
#include "util/generators.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace {

using namespace hyperspace;
using sparse::Index;
using S = semiring::PlusTimes<double>;
using Q = serve::Query<S>;

// Tenants: 0 = recommender (heavy expansions), 1 = feed filter (masked
// expansions), 2 = profile service (point lookups). The quota bounds how
// many flops any one tenant may occupy per batch, so tenant 2's lookups
// never queue behind tenant 0's fan-outs.
constexpr serve::TenantId kRecommender = 0;
constexpr serve::TenantId kFeedFilter = 1;
constexpr serve::TenantId kProfiles = 2;

/// One "tick" of traffic against ANY serving engine: `count` concurrent
/// requests of mixed kinds, submitted through the Service interface.
std::vector<std::size_t> run_tick(serve::Service<S>& svc, Index n,
                                  util::Xoshiro256& rng, int count) {
  auto random_vertex = [&] {
    return static_cast<Index>(rng.bounded(static_cast<std::uint64_t>(n)));
  };
  std::vector<std::size_t> tickets;
  tickets.reserve(static_cast<std::size_t>(count));
  // Warm the trending panel once per tick (one deliberate miss): the
  // cache installs at settle, so a burst submitted before the first
  // settle would probe an entry that does not exist yet. After this one
  // round trip every trending request below is a cache hit — until the
  // next churn epoch invalidates the entry and the next tick re-warms.
  svc.wait(svc.submit(kProfiles, Q::select({0, 1, 2, 3}, n)));
  for (int u = 0; u < count; ++u) {
    switch (u % 3) {
      case 0: {  // recommender: who do my follows follow? (8-seed fan-out)
        std::vector<sparse::Triple<double>> seeds;
        for (int i = 0; i < 8; ++i) seeds.push_back({0, random_vertex(), 1.0});
        tickets.push_back(svc.submit(
            kRecommender,
            Q::analytic(sparse::Matrix<double>::from_triples<S>(
                1, n, std::move(seeds)))));
        break;
      }
      case 1: {  // feed filter: expand, but exclude already-seen users
        std::vector<sparse::Triple<double>> seen;
        for (int i = 0; i < 32; ++i) seen.push_back({0, random_vertex(), 1.0});
        tickets.push_back(svc.submit(
            kFeedFilter,
            Q::masked(sparse::Matrix<double>::from_unique_triples(
                          1, n, {{0, random_vertex(), 1.0}}),
                      sparse::Matrix<double>::from_triples<S>(
                          1, n, std::move(seen)),
                      {.complement = true})));
        break;
      }
      default: {  // profile service: raw adjacency rows for 4 users;
        // every other request is the trending panel — the SAME four hot
        // profiles every time, the repeat shape the result cache serves
        // from memory until the next churn epoch invalidates it.
        if (u % 2 == 0) {
          tickets.push_back(svc.submit(kProfiles, Q::select({0, 1, 2, 3}, n)));
        } else {
          tickets.push_back(svc.submit(
              kProfiles, Q::select({random_vertex(), random_vertex(),
                                    random_vertex(), random_vertex()},
                                   n)));
        }
      }
    }
  }
  return tickets;
}

/// The graph changes between ticks: `follows` new edges land, `unfollows`
/// existing-or-not edges drop. One mutate() call, one new epoch, applied
/// live while the flush threads keep serving.
std::uint64_t churn(serve::Service<S>& svc, Index n, util::Xoshiro256& rng,
                    int follows, int unfollows) {
  auto random_vertex = [&] {
    return static_cast<Index>(rng.bounded(static_cast<std::uint64_t>(n)));
  };
  sparse::UpdateBatch<double> ops;
  for (int i = 0; i < follows; ++i) {
    ops.push_back(
        sparse::Update<double>::assign(random_vertex(), random_vertex(), 1.0));
  }
  for (int i = 0; i < unfollows; ++i) {
    ops.push_back(
        sparse::Update<double>::erased(random_vertex(), random_vertex()));
  }
  return svc.mutate(ops);
}

}  // namespace

int main(int argc, char** argv) {
  // Arm telemetry before any traffic: metrics are on by default; tracing
  // is opt-in and samples 1 in 2 queries here to show sampled operation.
  hyperspace::util::metrics::set_enabled(true);
  serve::trace::Tracer::instance().configure(
      {.enabled = true, .sample_every = 2});
  const char* trace_path = argc > 1 ? argv[1] : "query_server_trace.json";
  const int scale = 12;
  const Index n = Index{1} << scale;
  const auto edges = util::rmat_edges({.scale = scale, .edge_factor = 16,
                                       .seed = 7});
  std::vector<sparse::Triple<double>> t;
  for (const auto& e : edges) t.push_back({e.src, e.dst, 1.0});
  const auto base = sparse::Matrix<double>::from_triples<S>(n, n,
                                                            std::move(t));
  std::cout << "base graph: " << n << " users, " << base.nnz()
            << " follow edges\n";

  serve::Router<S> router(
      base, {.executor = {.max_batch_queries = 64,
                          .tenant_flop_quota = std::uint64_t{1} << 16,
                          .async = true,
                          .flush_queue_depth = 48,
                          .flush_interval = std::chrono::milliseconds(1),
                          .cache_bytes = std::size_t{1} << 20},
             .n_shards = 4});
  std::cout << "router: " << router.n_shards() << " row-range shards of "
            << router.map().height(0) << " users each\n";

  // Everything from here down holds the ENGINE-AGNOSTIC interface.
  serve::Service<S>& ex = router;
  util::Xoshiro256 rng(42);

  // Three ticks of traffic with live graph churn in between: 128 new
  // follows and 64 unfollows per gap, each batch a new epoch served
  // without a rebuild. Queries in flight at mutate() time finish on the
  // epoch they started on.
  std::size_t answered = 0, nonempty = 0;
  for (int tick = 0; tick < 3; ++tick) {
    const auto tickets = run_tick(ex, n, rng, 256);
    // Redeem the futures — wait() nudges the flushers for anything still
    // queued, so no explicit flush() appears anywhere in this program.
    for (const auto tk : tickets) {
      ++answered;
      nonempty += ex.wait(tk).nnz() > 0;
    }
    if (tick + 1 < 3) {
      const auto epoch = churn(ex, n, rng, 128, 64);
      std::cout << "tick " << tick << ": graph churn applied, epoch "
                << epoch << '\n';
    }
  }

  const auto st = ex.stats();
  const auto rs = router.router_stats();
  std::cout << "answered " << answered << " queries (" << nonempty
            << " with hits)\n"
            << "mutation batches:     " << st.mutations << " (router epoch "
            << ex.epoch() << ")\n"
            << "single-shard queries: " << rs.single_shard << '\n'
            << "straddling queries:   " << rs.straddling << " (" << rs.merges
            << " carry merges)\n"
            << "shard sub-queries:    " << rs.stage_submits << '\n'
            << "batches flushed:      " << st.batches << '\n'
            << "kernel launches:      " << st.kernel_launches << '\n'
            << "launches saved:       " << st.launches_saved << '\n'
            << "rows coalesced:       " << st.rows_coalesced << '\n'
            << "mask flops kept:      " << st.flops_kept << '\n'
            << "mask flops skipped:   " << st.flops_skipped << '\n'
            << "cache hits / misses:  " << rs.cache_hits << " / "
            << rs.cache_misses << " (trending panel repeats; each churn "
            << "epoch re-misses once)\n";

  // Per-tenant breakdown — the TenantStats counters in action. queries /
  // rows / flops are exact and timing-invariant; batches / deferrals show
  // how the quota actually sliced this run's traffic.
  const char* names[] = {"recommender", "feed filter", "profiles"};
  std::printf("\n%-12s %8s %6s %10s %8s %10s\n", "tenant", "queries",
              "rows", "flops", "batches", "deferrals");
  for (const auto tenant : router.tenants()) {
    const auto ts = router.tenant_stats(tenant);
    std::printf("%-12s %8llu %6llu %10llu %8llu %10llu\n",
                names[tenant % 3],
                static_cast<unsigned long long>(ts.queries),
                static_cast<unsigned long long>(ts.rows),
                static_cast<unsigned long long>(ts.flops),
                static_cast<unsigned long long>(ts.batches),
                static_cast<unsigned long long>(ts.deferrals));
  }
  ex.shutdown();  // drains anything left; also what ~Router would do

  // Quiesced: dump the life-of-a-query trace and the metrics exposition.
  auto& tracer = serve::trace::Tracer::instance();
  std::cout << "\ntrace: " << tracer.recorded() << " spans recorded ("
            << "1 in " << tracer.sample_every() << " queries traced)\n";
  if (tracer.write_chrome_json(trace_path)) {
    std::cout << "trace: wrote " << trace_path
              << " (chrome://tracing / Perfetto)\n";
  } else {
    std::cerr << "trace: FAILED to write " << trace_path << '\n';
    return 1;
  }
  std::cout << "\n--- metrics_text() ---\n" << ex.metrics_text();
  return 0;
}
