// Batched query serving — the millions-of-concurrent-users loop in
// miniature.
//
// A follower graph is the shared base array; a stream of simulated users
// issues neighbor expansions (mtimes), filtered expansions (fused output
// masks, both senses), and profile lookups (select). The executor queues
// them, its admission policy slices the queue into coalesced batches, and
// each batch runs as ONE block-diagonal masked product — bit-identical to
// answering every user alone, but paying the runtime overhead once per
// batch instead of once per query. ServeStats shows what coalescing saved.

#include <iostream>

#include "semiring/all.hpp"
#include "serve/executor.hpp"
#include "util/generators.hpp"
#include "util/rng.hpp"

int main() {
  using namespace hyperspace;
  using sparse::Index;
  using S = semiring::PlusTimes<double>;
  using Q = serve::Query<S>;

  const int scale = 12;
  const Index n = Index{1} << scale;
  const auto edges = util::rmat_edges({.scale = scale, .edge_factor = 16,
                                       .seed = 7});
  std::vector<sparse::Triple<double>> t;
  for (const auto& e : edges) t.push_back({e.src, e.dst, 1.0});
  const auto base = sparse::Matrix<double>::from_triples<S>(n, n,
                                                            std::move(t));
  std::cout << "base graph: " << n << " users, " << base.nnz()
            << " follow edges\n";

  serve::Executor<S> ex(base, {.max_batch_queries = 64});
  util::Xoshiro256 rng(42);
  auto random_vertex = [&] {
    return static_cast<Index>(rng.bounded(static_cast<std::uint64_t>(n)));
  };

  // One "tick" of traffic: 256 concurrent requests of mixed kinds.
  std::vector<std::size_t> tickets;
  for (int u = 0; u < 256; ++u) {
    switch (u % 3) {
      case 0: {  // who do my follows follow? (1-row frontier expansion)
        tickets.push_back(
            ex.submit(Q::mtimes(sparse::Matrix<double>::from_unique_triples(
                1, n, {{0, random_vertex(), 1.0}}))));
        break;
      }
      case 1: {  // same, but exclude already-seen users (¬visited mask)
        std::vector<sparse::Triple<double>> seen;
        for (int i = 0; i < 32; ++i) seen.push_back({0, random_vertex(), 1.0});
        tickets.push_back(ex.submit(Q::mtimes_masked(
            sparse::Matrix<double>::from_unique_triples(
                1, n, {{0, random_vertex(), 1.0}}),
            sparse::Matrix<double>::from_triples<S>(1, n, std::move(seen)),
            {.complement = true})));
        break;
      }
      default: {  // profile lookup: raw adjacency rows for 4 users
        tickets.push_back(
            ex.submit(Q::select({random_vertex(), random_vertex(),
                                 random_vertex(), random_vertex()},
                                n)));
      }
    }
  }
  ex.flush();

  std::size_t answered = 0, nonempty = 0;
  for (const auto tk : tickets) {
    ++answered;
    nonempty += ex.result(tk).nnz() > 0;
  }
  const auto& st = ex.stats();
  std::cout << "answered " << answered << " queries (" << nonempty
            << " with hits)\n"
            << "batches flushed:      " << st.batches << '\n'
            << "kernel launches:      " << st.kernel_launches << '\n'
            << "launches saved:       " << st.launches_saved << '\n'
            << "rows coalesced:       " << st.rows_coalesced << '\n'
            << "mask flops kept:      " << st.flops_kept << '\n'
            << "mask flops skipped:   " << st.flops_skipped << '\n';
  return 0;
}
