// Quickstart — the library in five minutes.
//
// Builds an associative array from string-keyed data, exercises the three
// semilink operations (⊕, ⊗, ⊕.⊗), swaps semirings, and shows hypersparse
// storage at an astronomically large key space.

#include <iostream>

#include "array/assoc_array.hpp"
#include "semiring/all.hpp"
#include "sparse/io.hpp"
#include "util/parallel.hpp"

int main() {
  using namespace hyperspace;
  using S = semiring::PlusTimes<double>;
  using Arr = array::AssocArray<S>;
  using array::Key;

  // 1. Associative arrays map sortable keys to values — no dimensioning.
  const Arr follows(
      std::vector<Key>{"alice", "alice", "bob", "carol"},
      std::vector<Key>{"bob", "carol", "carol", "dave"},
      std::vector<double>{1, 1, 1, 1});
  std::cout << "follows graph:\n" << follows << '\n';

  // 2. ⊕.⊗ composes relations: who is two hops away?
  const auto two_hops = array::mtimes(follows, follows);
  std::cout << "two hops (follows (+.x) follows):\n" << two_hops << '\n';

  // 3. ⊕ is union, ⊗ is intersection — combine observation windows.
  const Arr window2(
      std::vector<Key>{"alice", "dave"},
      std::vector<Key>{"bob", "erin"},
      std::vector<double>{1, 1});
  std::cout << "union of windows:\n" << array::add(follows, window2)
            << "persistent links (intersection):\n"
            << array::mult(follows, window2) << '\n';

  // 4. Swap the semiring, keep the code: min.+ finds cheapest routes.
  using MP = semiring::MinPlus<double>;
  const array::AssocArray<MP> costs(
      std::vector<Key>{"nyc", "nyc", "chi", "chi"},
      std::vector<Key>{"chi", "lax", "lax", "den"},
      std::vector<double>{790, 2790, 2015, 1000});
  const auto cheapest_2seg = array::mtimes(costs, costs);
  std::cout << "cheapest 2-segment fares (min.+):\n" << cheapest_2seg << '\n';

  // 5. Hypersparse: a 2^60-keyed matrix with three entries costs ~a KB.
  const auto huge = sparse::Matrix<double>::from_unique_triples(
      sparse::Index{1} << 60, sparse::Index{1} << 60,
      {{123, 456, 1.0}, {sparse::Index{1} << 59, 7, 2.0},
       {999999999999LL, 42, 3.0}});
  std::cout << "2^60 x 2^60 matrix: " << sparse::summary(huge) << '\n';

  // 6. Every kernel runs on the unified parallel runtime. Thread count
  //    comes from HYPERSPACE_NUM_THREADS (or set_num_threads), and results
  //    are bit-identical at any setting.
  std::cout << "parallel runtime threads: " << util::max_threads() << '\n';
  return 0;
}
