// Social network analytics — the §V-A scenario.
//
// Generates a power-law follower graph (the "social media" stream of the
// paper's introduction), then runs the graph-analytic stack: BFS both ways
// (Fig 1 duality), connected components, triangle counting, and degree
// distribution — all on the semiring kernels.

#include <algorithm>
#include <iostream>
#include <map>

#include "hypergraph/algorithms.hpp"
#include "hypergraph/bfs.hpp"
#include "util/generators.hpp"

int main() {
  using namespace hyperspace;
  using sparse::Index;
  using S = semiring::PlusTimes<double>;

  const int scale = 12;
  const Index n = Index{1} << scale;
  const auto edges = util::rmat_edges({.scale = scale, .edge_factor = 8,
                                       .seed = 2026});
  std::vector<sparse::Triple<double>> t;
  for (const auto& e : edges) t.push_back({e.src, e.dst, 1.0});
  const auto a = sparse::Matrix<double>::from_triples<S>(n, n, std::move(t));
  std::cout << "follower graph: " << n << " users, " << a.nnz()
            << " distinct follow edges\n";

  // Fig 1 duality: BFS as array multiplication vs queue traversal.
  const auto lv_array = hypergraph::bfs_array(a, 0);
  const auto lv_queue = hypergraph::bfs_queue(a, 0);
  std::cout << "BFS duality holds: " << (lv_array == lv_queue ? "yes" : "NO")
            << '\n';
  std::map<Index, int> level_hist;
  for (const auto l : lv_array) {
    if (l >= 0) ++level_hist[l];
  }
  std::cout << "reach from user 0 by hops:";
  for (const auto& [lvl, cnt] : level_hist) {
    std::cout << "  " << lvl << ":" << cnt;
  }
  std::cout << '\n';

  // Communities (weakly connected components via min.+ label propagation).
  const auto cc = hypergraph::connected_components(a);
  std::map<Index, int> comp_size;
  for (const auto c : cc) ++comp_size[c];
  std::size_t biggest = 0;
  for (const auto& [c, sz] : comp_size) {
    biggest = std::max<std::size_t>(biggest, static_cast<std::size_t>(sz));
  }
  std::cout << comp_size.size() << " components; giant component has "
            << biggest << " users\n";

  // Triangles (clustering signal) via A ⊗ (A ⊕.⊗ A).
  std::cout << "triangles: " << hypergraph::triangle_count(a) << '\n';

  // Degree distribution tail — the power law the generator mimics.
  auto deg = hypergraph::out_degrees(a);
  std::sort(deg.begin(), deg.end(), std::greater<>());
  std::cout << "top out-degrees:";
  for (int i = 0; i < 5; ++i) std::cout << ' ' << deg[static_cast<std::size_t>(i)];
  std::cout << "  (median " << deg[deg.size() / 2] << ")\n";
  return 0;
}
