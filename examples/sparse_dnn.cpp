// Sparse DNN inference — the §V-C scenario.
//
// Builds a Sparse-DNN-Challenge-style RadiX-Net, runs batched inference in
// both the standard and the two-semiring (S1 = +.×, S2 = max.+)
// formulations, verifies they agree bitwise, and reports throughput and
// activation sparsity through depth.

#include <iostream>

#include "dnn/inference.hpp"
#include "dnn/radixnet.hpp"
#include "util/timing.hpp"

int main() {
  using namespace hyperspace;
  using namespace hyperspace::dnn;

  const RadixNetParams params{.neurons = 4096, .layers = 24, .fanin = 32,
                              .weight = 0.5, .bias = -0.001};
  const auto net = make_radixnet(params);
  std::cout << "RadiX-Net: " << params.layers << " layers x " << params.neurons
            << " neurons, fanin " << params.fanin << " ("
            << net.total_nnz() << " weights)\n";

  const Index batch = 64;
  auto y = make_sparse_features(batch, params.neurons, 0.15, 99);
  std::cout << "input batch " << batch << " x " << params.neurons << ", "
            << y.nnz() << " active features\n\n";

  // Layer-by-layer activation sparsity (the challenge's defining trait).
  std::cout << "activity through depth (nnz fraction): ";
  auto probe = y;
  for (std::size_t l = 0; l < net.depth(); l += 6) {
    for (std::size_t k = l; k < std::min(l + 6, net.depth()); ++k) {
      probe = step_standard(probe, net.layer(k));
    }
    std::cout << static_cast<double>(probe.nnz()) /
                     static_cast<double>(probe.batch * probe.n)
              << ' ';
  }
  std::cout << '\n';

  util::WallTimer t_std;
  const auto out_std = infer_standard(net, y);
  const double ms_std = t_std.millis();
  util::WallTimer t_link;
  const auto out_link = infer_semilink(net, y);
  const double ms_link = t_link.millis();

  const double gedges = static_cast<double>(net.total_nnz()) *
                        static_cast<double>(batch) / 1e9;
  std::cout << "standard   h(YW+B):        " << ms_std << " ms ("
            << gedges / (ms_std / 1e3) << " Gconn/s)\n"
            << "two-semiring YW(x)B(+)0:   " << ms_link << " ms ("
            << gedges / (ms_link / 1e3) << " Gconn/s)\n"
            << "outputs identical: "
            << (out_std.data == out_link.data ? "yes" : "NO") << '\n';

  const auto cats = categories(out_std);
  std::cout << "first 8 predicted categories:";
  for (int i = 0; i < 8; ++i) std::cout << ' ' << cats[static_cast<std::size_t>(i)];
  std::cout << '\n';
  return out_std.data == out_link.data ? 0 : 1;
}
