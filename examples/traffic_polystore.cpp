// Network-traffic polystore — the Fig 6 scenario at workload scale.
//
// Ingests synthetic flow records into all four engines at once (SQL scan,
// NoSQL triple store, NewSQL adjacency matrix, associative-array semilink
// select) and answers the paper's canonical query from each, verifying
// agreement and reporting per-engine latency.

#include <iostream>

#include "db/polystore.hpp"
#include "util/generators.hpp"
#include "util/timing.hpp"

int main() {
  using namespace hyperspace;

  util::Xoshiro256 rng(7);
  const char* protos[] = {"http", "https", "udp", "ssh", "dns"};
  std::vector<std::string> hosts;
  for (int i = 0; i < 300; ++i) hosts.push_back(util::synthetic_ip(rng, 1 << 28));

  db::FlowPolystore ps;
  util::WallTimer ingest;
  const int kFlows = 20000;
  for (int i = 0; i < kFlows; ++i) {
    ps.insert({hosts[rng.bounded(hosts.size())], protos[rng.bounded(5)],
               hosts[rng.bounded(hosts.size())]});
  }
  std::cout << "ingested " << kFlows << " flows into 4 engines in "
            << ingest.millis() << " ms\n";

  const auto& probe = hosts[0];
  std::cout << "\nquery: neighbors of " << probe << "\n";

  util::WallTimer t1;
  const auto sql = ps.neighbors_sql(probe);
  const double ms_sql = t1.millis();
  util::WallTimer t2;
  const auto nosql = ps.neighbors_nosql(probe);
  const double ms_nosql = t2.millis();
  util::WallTimer t3;
  const auto newsql = ps.neighbors_newsql(probe);
  const double ms_newsql = t3.millis();
  util::WallTimer t4;
  const auto semilink = ps.neighbors_semilink(probe);
  const double ms_semilink = t4.millis();

  std::cout << "  SQL scan:        " << sql.size() << " neighbors, " << ms_sql
            << " ms\n"
            << "  NoSQL triples:   " << nosql.size() << " neighbors, "
            << ms_nosql << " ms\n"
            << "  NewSQL v^T A:    " << newsql.size() << " neighbors, "
            << ms_newsql << " ms\n"
            << "  semilink select: " << semilink.size() << " neighbors, "
            << ms_semilink << " ms\n";
  const bool agree = sql == nosql && nosql == newsql && newsql == semilink;
  std::cout << "all engines agree: " << (agree ? "yes" : "NO") << '\n';

  // Relational set algebra on top: who talks to the probe over ssh?
  const auto ssh_flows = ps.relational().where("link", "ssh");
  const auto to_probe = ps.relational().where("dest", probe);
  const auto ssh_to_probe = table_intersection(ssh_flows, to_probe);
  std::cout << "\nssh flows into " << probe << ": " << ssh_to_probe.size()
            << " of " << ps.size() << " records\n";
  return agree ? 0 : 1;
}
