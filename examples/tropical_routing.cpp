// Tropical-semiring routing — the finance/optimization corner of Table I.
//
// One flight network, three questions, three semirings, one kernel:
//   min.+   cheapest itinerary cost        (shortest path)
//   max.min widest-bottleneck capacity     (max.min row of Table I)
//   max.×   most reliable route            (probability product, max.×)
// Each is k-hop closure by repeated ⊕.⊗ over the appropriate semiring.

#include <iostream>

#include "array/assoc_array.hpp"
#include "semiring/all.hpp"

int main() {
  using namespace hyperspace;
  using array::Key;

  const std::vector<Key> from = {"nyc", "nyc", "chi", "chi", "den", "sfo"};
  const std::vector<Key> to = {"chi", "sfo", "den", "sfo", "lax", "lax"};

  // min.+: ticket prices; itinerary cost is the sum, choose the min.
  {
    using MP = semiring::MinPlus<double>;
    array::AssocArray<MP> fares(from, to,
                                {190, 420, 110, 250, 95, 120});
    auto reach = fares;
    for (int hops = 1; hops < 3; ++hops) {
      reach = array::add(reach, array::mtimes(reach, fares));
    }
    std::cout << "cheapest fares up to 3 segments (min.+):\n" << reach << '\n';
  }

  // max.min: per-leg seat capacity; a route's capacity is its bottleneck.
  {
    using MM = semiring::MaxMin<double>;
    array::AssocArray<MM> seats(from, to, {180, 120, 200, 90, 160, 140});
    auto cap = seats;
    for (int hops = 1; hops < 3; ++hops) {
      cap = array::add(cap, array::mtimes(cap, seats));
    }
    std::cout << "widest-bottleneck capacity, up to 3 segments (max.min):\n"
              << cap << '\n';
  }

  // max.×: per-leg on-time probability; route reliability multiplies.
  {
    using MT = semiring::MaxTimes<double>;
    array::AssocArray<MT> ontime(from, to, {0.9, 0.7, 0.95, 0.8, 0.85, 0.9});
    auto rel = ontime;
    for (int hops = 1; hops < 3; ++hops) {
      rel = array::add(rel, array::mtimes(rel, ontime));
    }
    std::cout << "most reliable routes, up to 3 segments (max.x):\n" << rel;
    const auto nyc_lax = rel.get("nyc", "lax");
    std::cout << "\nnyc->lax best reliability: "
              << (nyc_lax ? *nyc_lax : 0.0)
              << "  (via chi->den->lax: 0.9*0.95*0.85 = "
              << 0.9 * 0.95 * 0.85 << ")\n";
  }
  return 0;
}
