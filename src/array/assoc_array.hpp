#pragma once
// AssocArray<S> — the associative array A : K1 × K2 → V of Section III.
//
// An associative array is a sparse matrix whose rows and columns are
// addressed by *keys* (any sortable set) rather than contiguous integers,
// over a value semiring S. The element-wise semiring (A, ⊕, ⊗, 0, 1) and
// the array semiring (A, ⊕, ⊕.⊗, 0, I) both live here; together they form
// the semilink studied in Section IV (see semilink/).
//
// Key-space conformance: per the paper, "associative arrays are typically
// added and multiplied with little regard for the true dimensions of their
// large row and column key spaces" — all binary operations align operand
// key spaces by set-union first, then dispatch to the sparse kernels, so
// arrays over different key sets compose freely.

#include <optional>
#include <ostream>
#include <tuple>
#include <utility>
#include <vector>

#include "array/key.hpp"
#include "semiring/concepts.hpp"
#include "sparse/apply.hpp"
#include "sparse/ewise.hpp"
#include "sparse/io.hpp"
#include "sparse/masked.hpp"
#include "sparse/matrix.hpp"
#include "sparse/mxm.hpp"
#include "sparse/reduce.hpp"
#include "sparse/transpose.hpp"

namespace hyperspace::array {

template <semiring::Semiring S>
class AssocArray {
 public:
  using value_type = typename S::value_type;
  using semiring_type = S;
  using Entry = std::tuple<Key, Key, value_type>;

  AssocArray() : data_(0, 0, S::zero()) {}

  /// Construction A = A(k1, k2, v) (Table II): parallel key/value vectors;
  /// duplicate (k1, k2) pairs combine with ⊕ (multi-edge semantics).
  AssocArray(const std::vector<Key>& k1, const std::vector<Key>& k2,
             const std::vector<value_type>& v) {
    if (k1.size() != k2.size() || k1.size() != v.size()) {
      throw std::invalid_argument("AssocArray: k1, k2, v length mismatch");
    }
    rows_ = KeySet(k1);
    cols_ = KeySet(k2);
    std::vector<sparse::Triple<value_type>> t;
    t.reserve(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) {
      t.push_back({static_cast<sparse::Index>(*rows_.find(k1[i])),
                   static_cast<sparse::Index>(*cols_.find(k2[i])), v[i]});
    }
    data_ = sparse::Matrix<value_type>::template from_triples<S>(
        static_cast<sparse::Index>(rows_.size()),
        static_cast<sparse::Index>(cols_.size()), std::move(t));
  }

  /// Construction from (key, key, value) entries.
  static AssocArray from_entries(const std::vector<Entry>& entries) {
    std::vector<Key> k1, k2;
    std::vector<value_type> v;
    k1.reserve(entries.size());
    k2.reserve(entries.size());
    v.reserve(entries.size());
    for (const auto& [a, b, val] : entries) {
      k1.push_back(a);
      k2.push_back(b);
      v.push_back(val);
    }
    return AssocArray(k1, k2, v);
  }

  /// Wrap an existing matrix with explicit key spaces (sizes must match).
  AssocArray(KeySet rows, KeySet cols, sparse::Matrix<value_type> data)
      : rows_(std::move(rows)), cols_(std::move(cols)), data_(std::move(data)) {
    if (static_cast<sparse::Index>(rows_.size()) != data_.nrows() ||
        static_cast<sparse::Index>(cols_.size()) != data_.ncols()) {
      throw std::invalid_argument("AssocArray: key/matrix shape mismatch");
    }
  }

  /// Permutation array P(k1, k2) = A(k1, k2, 1) with k1, k2 unique
  /// (Table II). k1 and k2 must have equal length.
  static AssocArray permutation(const std::vector<Key>& k1,
                                const std::vector<Key>& k2) {
    if (k1.size() != k2.size()) {
      throw std::invalid_argument("permutation: key length mismatch");
    }
    return AssocArray(k1, k2,
                      std::vector<value_type>(k1.size(), S::one()));
  }

  /// Identity I(k) = P(k, k) (Table II).
  static AssocArray identity(const KeySet& k) {
    return permutation(k.keys(), k.keys());
  }

  /// The all-1 array over the given key spaces ("1 is the array of all 1").
  static AssocArray ones(const KeySet& r, const KeySet& c) {
    return AssocArray(
        r, c,
        sparse::Matrix<value_type>::full(static_cast<sparse::Index>(r.size()),
                                         static_cast<sparse::Index>(c.size()),
                                         S::one(), S::zero()));
  }

  const KeySet& row_keys() const { return rows_; }   ///< full key space
  const KeySet& col_keys() const { return cols_; }
  const sparse::Matrix<value_type>& matrix() const { return data_; }
  sparse::Index nnz() const { return data_.nnz(); }
  bool empty() const { return data_.nnz() == 0; }

  /// k1 = row(A): keys of rows with at least one stored entry (Table II).
  KeySet row() const {
    std::vector<Key> ks;
    const auto v = data_.view();
    ks.reserve(v.row_ids.size());
    for (std::size_t ri = 0; ri < v.row_ids.size(); ++ri) {
      if (!v.row_cols(ri).empty()) {
        ks.push_back(rows_[static_cast<std::size_t>(v.row_ids[ri])]);
      }
    }
    return KeySet(std::move(ks));
  }

  /// k2 = col(A): keys of columns with at least one stored entry.
  KeySet col() const {
    std::vector<char> seen(cols_.size(), 0);
    const auto v = data_.view();
    for (std::size_t ri = 0; ri < v.row_ids.size(); ++ri) {
      for (const auto c : v.row_cols(ri)) {
        seen[static_cast<std::size_t>(c)] = 1;
      }
    }
    std::vector<Key> ks;
    for (std::size_t c = 0; c < seen.size(); ++c) {
      if (seen[c]) ks.push_back(cols_[c]);
    }
    return KeySet(std::move(ks));
  }

  /// Stored value at (r, c), if present.
  std::optional<value_type> get(const Key& r, const Key& c) const {
    const auto ri = rows_.find(r);
    const auto ci = cols_.find(c);
    if (!ri || !ci) return std::nullopt;
    return data_.get(static_cast<sparse::Index>(*ri),
                     static_cast<sparse::Index>(*ci));
  }

  /// Extraction (k1, k2, v) = A (Table II), in key order.
  std::vector<Entry> entries() const {
    std::vector<Entry> out;
    for (const auto& t : data_.to_triples()) {
      out.emplace_back(rows_[static_cast<std::size_t>(t.row)],
                       cols_[static_cast<std::size_t>(t.col)], t.val);
    }
    return out;
  }

  /// Transpose A(k2, k1) = Aᵀ(k1, k2).
  AssocArray transpose() const {
    return AssocArray(cols_, rows_, sparse::transpose(data_));
  }

  /// Sub-array A(rk, ck): rows/cols restricted to the given key sets
  /// (missing keys simply select nothing — no conformance errors).
  AssocArray extract(const KeySet& rk, const KeySet& ck) const {
    std::vector<Entry> out;
    for (auto& [r, c, v] : entries()) {
      if (rk.contains(r) && ck.contains(c)) out.emplace_back(r, c, v);
    }
    AssocArray result = from_entries(out);
    return result.realign(rk, ck);
  }

  /// Rows of A whose key is in rk, all columns: A(rk, :).
  AssocArray extract_rows(const KeySet& rk) const { return extract(rk, cols_); }

  /// Columns of A whose key is in ck, all rows: A(:, ck).
  AssocArray extract_cols(const KeySet& ck) const { return extract(rows_, ck); }

  /// |A|₀ (Table II): non-zero entries become 1.
  AssocArray zero_norm() const {
    return AssocArray(rows_, cols_, sparse::zero_norm<S>(data_));
  }

  /// Re-embed this array in the given (super- or sub-) key spaces.
  /// Entries whose keys are absent from the new spaces are dropped.
  AssocArray realign(const KeySet& new_rows, const KeySet& new_cols) const {
    std::vector<sparse::Triple<value_type>> t;
    for (auto& [r, c, v] : entries()) {
      const auto ri = new_rows.find(r);
      const auto ci = new_cols.find(c);
      if (ri && ci) {
        t.push_back({static_cast<sparse::Index>(*ri),
                     static_cast<sparse::Index>(*ci), v});
      }
    }
    auto m = sparse::Matrix<value_type>::template from_triples<S>(
        static_cast<sparse::Index>(new_rows.size()),
        static_cast<sparse::Index>(new_cols.size()), std::move(t));
    return AssocArray(new_rows, new_cols, std::move(m));
  }

  /// Shrink key spaces to the non-empty rows/columns.
  AssocArray compact() const { return realign(row(), col()); }

  /// Entry-set equality: same stored (key, key, value) triples, regardless
  /// of how large the ambient key spaces are. This is the right notion of
  /// equality for arrays that are "added and multiplied with little regard
  /// for the true dimensions of their key spaces".
  friend bool operator==(const AssocArray& a, const AssocArray& b) {
    return a.entries() == b.entries();
  }

  friend std::ostream& operator<<(std::ostream& os, const AssocArray& a) {
    os << "AssocArray " << a.rows_.size() << "x" << a.cols_.size()
       << " nnz=" << a.nnz() << '\n';
    for (const auto& [r, c, v] : a.entries()) {
      os << "  (" << r << ", " << c << ") -> " << v << '\n';
    }
    return os;
  }

 private:
  KeySet rows_;
  KeySet cols_;
  sparse::Matrix<value_type> data_;
};

namespace detail {

/// Align two arrays onto the union of their key spaces.
template <semiring::Semiring S>
std::pair<AssocArray<S>, AssocArray<S>> align(const AssocArray<S>& a,
                                              const AssocArray<S>& b) {
  const KeySet rows = key_union(a.row_keys(), b.row_keys());
  const KeySet cols = key_union(a.col_keys(), b.col_keys());
  return {a.realign(rows, cols), b.realign(rows, cols)};
}

}  // namespace detail

/// C = A ⊕ B — element-wise addition / graph union (Fig 5 top).
template <semiring::Semiring S>
AssocArray<S> add(const AssocArray<S>& a, const AssocArray<S>& b) {
  auto [x, y] = detail::align(a, b);
  return AssocArray<S>(x.row_keys(), x.col_keys(),
                       sparse::ewise_add<S>(x.matrix(), y.matrix()));
}

/// C = A ⊗ B — element-wise multiplication / graph intersection (Fig 5
/// bottom).
template <semiring::Semiring S>
AssocArray<S> mult(const AssocArray<S>& a, const AssocArray<S>& b) {
  auto [x, y] = detail::align(a, b);
  return AssocArray<S>(x.row_keys(), x.col_keys(),
                       sparse::ewise_mult<S>(x.matrix(), y.matrix()));
}

/// C = A ⊕.⊗ B — array multiplication: C(k1,k2) = ⨁_k A(k1,k) ⊗ B(k,k2).
/// Inner key spaces are aligned by union; "what is more important ... is
/// some overlap in the non-zero row and column keys" (Section III).
template <semiring::Semiring S>
AssocArray<S> mtimes(const AssocArray<S>& a, const AssocArray<S>& b) {
  const KeySet inner = key_union(a.col_keys(), b.row_keys());
  const AssocArray<S> x = a.realign(a.row_keys(), inner);
  const AssocArray<S> y = b.realign(inner, b.col_keys());
  return AssocArray<S>(a.row_keys(), b.col_keys(),
                       sparse::mxm<S>(x.matrix(), y.matrix()));
}

/// C⟨M⟩ = A ⊕.⊗ B — masked array multiplication with the mask fused into
/// accumulation (sparse::mxm_masked): M's pattern, re-embedded in
/// (row(A), col(B)) key space, limits which output keys are ever produced —
/// the §V-B row-mask |…|₀ ∩ A pushdown. `stats` receives kept/skipped flop
/// counts.
template <semiring::Semiring S, semiring::Semiring SM>
AssocArray<S> mtimes_masked(const AssocArray<S>& a, const AssocArray<S>& b,
                            const AssocArray<SM>& mask,
                            sparse::MaskDesc desc = {},
                            sparse::MxmMaskStats* stats = nullptr) {
  const KeySet inner = key_union(a.col_keys(), b.row_keys());
  const AssocArray<S> x = a.realign(a.row_keys(), inner);
  const AssocArray<S> y = b.realign(inner, b.col_keys());
  const AssocArray<SM> m = mask.realign(a.row_keys(), b.col_keys());
  return AssocArray<S>(
      a.row_keys(), b.col_keys(),
      sparse::mxm_masked<S>(x.matrix(), y.matrix(), m.matrix(), desc, stats));
}

/// Operator sugar matching the paper's notation.
template <semiring::Semiring S>
AssocArray<S> operator+(const AssocArray<S>& a, const AssocArray<S>& b) {
  return add(a, b);
}
template <semiring::Semiring S>
AssocArray<S> operator*(const AssocArray<S>& a, const AssocArray<S>& b) {
  return mult(a, b);
}

}  // namespace hyperspace::array
