#pragma once
// Batch-aware associative-array façade over serve/ — coalesce concurrent
// key-space queries against one shared base array.
//
// Array-level batching carries one obligation the matrix layer doesn't:
// mtimes aligns operand inner key spaces by set-union, so two queries only
// share a stacked base operand when that alignment IS the base's own row
// key space. batchable() is exactly that condition — col keys of the query
// within the base's row keys. mtimes_batched realigns every operand the
// same way per-query mtimes/mtimes_masked would, so batched results are
// entry-identical to sequential execution; queries that fail the condition
// belong to the planner's per-query fallback (db::planned_batch).

#include <optional>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "array/assoc_array.hpp"
#include "serve/batch.hpp"

namespace hyperspace::array {

/// One pending array-level query against a shared base: lhs ⊕.⊗ base,
/// optionally under a fused output mask.
template <semiring::Semiring S>
struct BatchQuery {
  AssocArray<S> lhs;
  std::optional<AssocArray<S>> mask;
  sparse::MaskDesc desc{};
};

/// Can this query join a coalesced batch against `base`? True iff the
/// mtimes inner alignment key_union(col_keys(lhs), row_keys(base)) is the
/// base's own row key space — i.e. col_keys(lhs) ⊆ row_keys(base).
template <semiring::Semiring S>
bool batchable(const AssocArray<S>& base, const BatchQuery<S>& q) {
  return key_union(q.lhs.col_keys(), base.row_keys()) == base.row_keys();
}

/// Execute every query against `base` as one coalesced launch. All queries
/// must be batchable(); results come back in submission order, each
/// entry-identical to mtimes / mtimes_masked run alone. The span-of-
/// pointers overload is the core (callers that route a larger query list —
/// db::planned_batch — coalesce a subset without copying any operand).
template <semiring::Semiring S>
std::vector<AssocArray<S>> mtimes_batched(
    const AssocArray<S>& base,
    std::span<const BatchQuery<S>* const> queries,
    serve::ServeStats* stats = nullptr) {
  std::vector<serve::Query<S>> qs;
  qs.reserve(queries.size());
  for (const auto* q : queries) {
    if (!batchable(base, *q)) {
      throw std::invalid_argument(
          "mtimes_batched: query inner keys outside base row keys");
    }
    // The realignments per-query mtimes would perform, in base coordinates.
    auto lhs = q->lhs.realign(q->lhs.row_keys(), base.row_keys()).matrix();
    if (q->mask) {
      auto mask =
          q->mask->realign(q->lhs.row_keys(), base.col_keys()).matrix();
      qs.push_back(serve::Query<S>::masked(std::move(lhs),
                                                  std::move(mask), q->desc));
    } else {
      qs.push_back(serve::Query<S>::analytic(std::move(lhs)));
    }
  }
  auto rs = serve::run_batch(base.matrix(), qs, sparse::MxmStrategy::kAuto,
                             stats);
  std::vector<AssocArray<S>> out;
  out.reserve(rs.size());
  for (std::size_t i = 0; i < rs.size(); ++i) {
    out.emplace_back(queries[i]->lhs.row_keys(), base.col_keys(),
                     std::move(rs[i]));
  }
  return out;
}

template <semiring::Semiring S>
std::vector<AssocArray<S>> mtimes_batched(
    const AssocArray<S>& base, const std::vector<BatchQuery<S>>& queries,
    serve::ServeStats* stats = nullptr) {
  std::vector<const BatchQuery<S>*> ptrs;
  ptrs.reserve(queries.size());
  for (const auto& q : queries) ptrs.push_back(&q);
  return mtimes_batched<S>(base, ptrs, stats);
}

/// A BatchQuery routed at one of several base arrays (multi-base serving).
template <semiring::Semiring S>
struct MultiBatchQuery {
  std::size_t base = 0;  ///< index into the bases list
  BatchQuery<S> q;
};

/// Execute queries against SEVERAL bases as one coalesced launch
/// (serve::run_batch_multi block-diagonal-stacks the bases themselves).
/// Every query must be batchable() against ITS base; each result is
/// entry-identical to mtimes / mtimes_masked against that base alone.
template <semiring::Semiring S>
std::vector<AssocArray<S>> mtimes_batched_multi(
    std::span<const AssocArray<S>* const> bases,
    std::span<const MultiBatchQuery<S>* const> queries,
    serve::ServeStats* stats = nullptr) {
  using T = typename S::value_type;
  std::vector<serve::Query<S>> qs;
  std::vector<std::size_t> base_ids;
  qs.reserve(queries.size());
  base_ids.reserve(queries.size());
  for (const auto* mq : queries) {
    if (mq->base >= bases.size() || bases[mq->base] == nullptr) {
      throw std::invalid_argument("mtimes_batched_multi: bad base index");
    }
    const auto& base = *bases[mq->base];
    if (!batchable(base, mq->q)) {
      throw std::invalid_argument(
          "mtimes_batched_multi: query inner keys outside base row keys");
    }
    // The realignments per-query mtimes would perform, in base coordinates.
    auto lhs =
        mq->q.lhs.realign(mq->q.lhs.row_keys(), base.row_keys()).matrix();
    if (mq->q.mask) {
      auto mask =
          mq->q.mask->realign(mq->q.lhs.row_keys(), base.col_keys()).matrix();
      qs.push_back(serve::Query<S>::masked(std::move(lhs),
                                                  std::move(mask),
                                                  mq->q.desc));
    } else {
      qs.push_back(serve::Query<S>::analytic(std::move(lhs)));
    }
    base_ids.push_back(mq->base);
  }
  std::vector<const sparse::Matrix<T>*> base_mats;
  base_mats.reserve(bases.size());
  for (const auto* b : bases) {
    base_mats.push_back(b == nullptr ? nullptr : &b->matrix());
  }
  auto rs = serve::run_batch_multi<S>(base_mats, qs, base_ids,
                                      sparse::MxmStrategy::kAuto, stats);
  std::vector<AssocArray<S>> out;
  out.reserve(rs.size());
  for (std::size_t i = 0; i < rs.size(); ++i) {
    out.emplace_back(queries[i]->q.lhs.row_keys(),
                     bases[base_ids[i]]->col_keys(), std::move(rs[i]));
  }
  return out;
}

template <semiring::Semiring S>
std::vector<AssocArray<S>> mtimes_batched_multi(
    const std::vector<const AssocArray<S>*>& bases,
    const std::vector<MultiBatchQuery<S>>& queries,
    serve::ServeStats* stats = nullptr) {
  std::vector<const MultiBatchQuery<S>*> ptrs;
  ptrs.reserve(queries.size());
  for (const auto& q : queries) ptrs.push_back(&q);
  return mtimes_batched_multi<S>(
      std::span<const AssocArray<S>* const>(bases.data(), bases.size()),
      std::span<const MultiBatchQuery<S>* const>(ptrs.data(), ptrs.size()),
      stats);
}

}  // namespace hyperspace::array
