#pragma once
// Batch-aware associative-array façade over serve/ — coalesce concurrent
// key-space queries against one shared base array.
//
// Array-level batching carries one obligation the matrix layer doesn't:
// mtimes aligns operand inner key spaces by set-union, so two queries only
// share a stacked base operand when that alignment IS the base's own row
// key space. batchable() is exactly that condition — col keys of the query
// within the base's row keys. mtimes_batched realigns every operand the
// same way per-query mtimes/mtimes_masked would, so batched results are
// entry-identical to sequential execution; queries that fail the condition
// belong to the planner's per-query fallback (db::planned_batch).

#include <optional>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "array/assoc_array.hpp"
#include "serve/batch.hpp"

namespace hyperspace::array {

/// One pending array-level query against a shared base: lhs ⊕.⊗ base,
/// optionally under a fused output mask.
template <semiring::Semiring S>
struct BatchQuery {
  AssocArray<S> lhs;
  std::optional<AssocArray<S>> mask;
  sparse::MaskDesc desc{};
};

/// Can this query join a coalesced batch against `base`? True iff the
/// mtimes inner alignment key_union(col_keys(lhs), row_keys(base)) is the
/// base's own row key space — i.e. col_keys(lhs) ⊆ row_keys(base).
template <semiring::Semiring S>
bool batchable(const AssocArray<S>& base, const BatchQuery<S>& q) {
  return key_union(q.lhs.col_keys(), base.row_keys()) == base.row_keys();
}

/// Execute every query against `base` as one coalesced launch. All queries
/// must be batchable(); results come back in submission order, each
/// entry-identical to mtimes / mtimes_masked run alone. The span-of-
/// pointers overload is the core (callers that route a larger query list —
/// db::planned_batch — coalesce a subset without copying any operand).
template <semiring::Semiring S>
std::vector<AssocArray<S>> mtimes_batched(
    const AssocArray<S>& base,
    std::span<const BatchQuery<S>* const> queries,
    serve::ServeStats* stats = nullptr) {
  std::vector<serve::Query<S>> qs;
  qs.reserve(queries.size());
  for (const auto* q : queries) {
    if (!batchable(base, *q)) {
      throw std::invalid_argument(
          "mtimes_batched: query inner keys outside base row keys");
    }
    // The realignments per-query mtimes would perform, in base coordinates.
    auto lhs = q->lhs.realign(q->lhs.row_keys(), base.row_keys()).matrix();
    if (q->mask) {
      auto mask =
          q->mask->realign(q->lhs.row_keys(), base.col_keys()).matrix();
      qs.push_back(serve::Query<S>::mtimes_masked(std::move(lhs),
                                                  std::move(mask), q->desc));
    } else {
      qs.push_back(serve::Query<S>::mtimes(std::move(lhs)));
    }
  }
  auto rs = serve::run_batch(base.matrix(), qs, sparse::MxmStrategy::kAuto,
                             stats);
  std::vector<AssocArray<S>> out;
  out.reserve(rs.size());
  for (std::size_t i = 0; i < rs.size(); ++i) {
    out.emplace_back(queries[i]->lhs.row_keys(), base.col_keys(),
                     std::move(rs[i]));
  }
  return out;
}

template <semiring::Semiring S>
std::vector<AssocArray<S>> mtimes_batched(
    const AssocArray<S>& base, const std::vector<BatchQuery<S>>& queries,
    serve::ServeStats* stats = nullptr) {
  std::vector<const BatchQuery<S>*> ptrs;
  ptrs.reserve(queries.size());
  for (const auto& q : queries) ptrs.push_back(&q);
  return mtimes_batched<S>(base, ptrs, stats);
}

}  // namespace hyperspace::array
