#pragma once
// Keys and key sets.
//
// Section III: associative arrays map K1 × K2 → V where "K1 (the set of row
// keys) and K2 (the set of column keys) can be any sortable sets, such as
// the integers, real numbers, or strings." Key is a strict totally ordered
// sum of exactly those three carriers (ordered by type tag, then value, so
// mixed-type key sets still sort deterministically). KeySet is the
// sorted-unique container with the union/intersection operations that the
// §IV annihilation conditions (row(A) ∩ row(B) = ∅ ...) are stated over.

#include <algorithm>
#include <compare>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace hyperspace::array {

class Key {
 public:
  Key() : v_(std::int64_t{0}) {}
  Key(std::int64_t i) : v_(i) {}                       // NOLINT(runtime/explicit)
  Key(int i) : v_(static_cast<std::int64_t>(i)) {}     // NOLINT(runtime/explicit)
  Key(double d) : v_(d) {}                             // NOLINT(runtime/explicit)
  Key(std::string s) : v_(std::move(s)) {}             // NOLINT(runtime/explicit)
  Key(const char* s) : v_(std::string(s)) {}           // NOLINT(runtime/explicit)

  bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  bool is_real() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  std::int64_t as_int() const { return std::get<std::int64_t>(v_); }
  double as_real() const { return std::get<double>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }

  std::string to_string() const {
    if (is_int()) return std::to_string(as_int());
    if (is_real()) return std::to_string(as_real());
    return as_string();
  }

  friend bool operator==(const Key& a, const Key& b) { return a.v_ == b.v_; }
  friend bool operator<(const Key& a, const Key& b) {
    if (a.v_.index() != b.v_.index()) return a.v_.index() < b.v_.index();
    return a.v_ < b.v_;
  }
  friend bool operator<=(const Key& a, const Key& b) { return !(b < a); }
  friend bool operator>(const Key& a, const Key& b) { return b < a; }
  friend bool operator>=(const Key& a, const Key& b) { return !(a < b); }

  friend std::ostream& operator<<(std::ostream& os, const Key& k) {
    return os << k.to_string();
  }

 private:
  std::variant<std::int64_t, double, std::string> v_;
};

/// Sorted-unique set of keys; positions double as matrix indices.
class KeySet {
 public:
  KeySet() = default;
  KeySet(std::initializer_list<Key> ks) : keys_(ks) { normalize(); }
  explicit KeySet(std::vector<Key> ks) : keys_(std::move(ks)) { normalize(); }

  /// {0, 1, ..., n-1} — the integer key range used by plain matrices.
  static KeySet range(std::int64_t n, std::int64_t start = 0) {
    std::vector<Key> ks;
    ks.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) ks.emplace_back(start + i);
    KeySet s;
    s.keys_ = std::move(ks);  // already sorted-unique
    return s;
  }

  std::size_t size() const { return keys_.size(); }
  bool empty() const { return keys_.empty(); }
  const Key& operator[](std::size_t i) const { return keys_[i]; }
  const std::vector<Key>& keys() const { return keys_; }
  auto begin() const { return keys_.begin(); }
  auto end() const { return keys_.end(); }

  /// Index of `k` in the set, if present.
  std::optional<std::size_t> find(const Key& k) const {
    const auto it = std::lower_bound(keys_.begin(), keys_.end(), k);
    if (it == keys_.end() || !(*it == k)) return std::nullopt;
    return static_cast<std::size_t>(it - keys_.begin());
  }

  bool contains(const Key& k) const { return find(k).has_value(); }

  friend KeySet key_union(const KeySet& a, const KeySet& b) {
    KeySet out;
    out.keys_.reserve(a.size() + b.size());
    std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(out.keys_));
    return out;
  }

  friend KeySet key_intersection(const KeySet& a, const KeySet& b) {
    KeySet out;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(out.keys_));
    return out;
  }

  friend bool operator==(const KeySet& a, const KeySet& b) {
    return a.keys_ == b.keys_;
  }

  friend std::ostream& operator<<(std::ostream& os, const KeySet& s) {
    os << '{';
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (i) os << ',';
      os << s[i];
    }
    return os << '}';
  }

 private:
  void normalize() {
    std::sort(keys_.begin(), keys_.end());
    keys_.erase(std::unique(keys_.begin(), keys_.end()), keys_.end());
  }

  std::vector<Key> keys_;
};

/// The §IV disjointness predicate: row(A) ∩ row(B) = ∅ etc.
inline bool disjoint(const KeySet& a, const KeySet& b) {
  return key_intersection(a, b).empty();
}

}  // namespace hyperspace::array
