#pragma once
// Shard-aware associative-array serving — the key-space face of the
// sharded router (serve/router.hpp).
//
// At the array layer a shard is a KEY range: the base's sorted row keys
// map 1:1 onto matrix rows, so partitioning rows [cuts[s], cuts[s+1])
// partitions the row key space into N contiguous key ranges. The
// obligation unique to this layer is the same one array::mtimes_batched
// carries: mtimes aligns inner key spaces by set-union, so a query joins
// the sharded path only when that alignment IS the base's own row key
// space (batchable: col_keys(lhs) ⊆ row_keys(base)). ShardedServer
// performs that realignment ONCE per query, at the router — shard
// executors never see a key, only matrices already in shard-local
// coordinates — and queries that fail the condition belong to the
// planner's per-query fallback (db::planned_sharded_batch).

#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "array/batch.hpp"
#include "serve/router.hpp"
#include "util/metrics.hpp"

namespace hyperspace::array {

/// One key-addressed mutation: assign (insert-or-update) or erase at
/// (row key, col key). The keys must already exist in the base's key
/// sets — live mutation changes VALUES under fixed key spaces; growing a
/// key space is a rebuild (ROADMAP).
template <typename T>
struct KeyUpdate {
  Key row;
  Key col;
  T val{};
  bool erase = false;
};

/// A sharded serving front end over one base array: serve::Router plus the
/// key spaces needed to realign queries on the way in and label results on
/// the way out. Results are entry-identical to mtimes / mtimes_masked
/// against the unsharded base for any shard count.
template <semiring::Semiring S>
class ShardedServer {
  using T = typename S::value_type;

 public:
  ShardedServer(const AssocArray<S>& base,
                typename serve::Router<S>::Config cfg = {})
      : rows_(base.row_keys()),
        cols_(base.col_keys()),
        router_(base.matrix(), cfg) {}

  const KeySet& row_keys() const { return rows_; }
  const KeySet& col_keys() const { return cols_; }
  std::size_t n_shards() const { return router_.n_shards(); }
  serve::Router<S>& router() { return router_; }
  const serve::Router<S>& router() const { return router_; }

  /// Can this query ride the sharded path? Same condition as
  /// array::batchable: inner alignment must be the base's own row keys.
  bool batchable(const BatchQuery<S>& q) const {
    return key_union(q.lhs.col_keys(), rows_) == rows_;
  }

  /// Realign the query into base coordinates — exactly as per-query mtimes
  /// would — and scatter it to the shard(s) its key range touches. Returns
  /// the router ticket.
  std::size_t submit(serve::TenantId tenant, const BatchQuery<S>& q) {
    if (!batchable(q)) {
      throw std::invalid_argument(
          "ShardedServer: query inner keys outside base row keys");
    }
    serve::Query<S> sq;
    const bool telemetry = util::metrics::enabled();
    const std::uint64_t t0 = telemetry ? util::metrics::clock_ns() : 0;
    sq.lhs = q.lhs.realign(q.lhs.row_keys(), rows_).matrix();
    if (q.mask) {
      sq.kind = serve::QueryKind::kMtimesMasked;
      sq.mask = q.mask->realign(q.lhs.row_keys(), cols_).matrix();
      sq.desc = q.desc;
    }
    if (telemetry) {
      // The key→coordinate realignment is the one per-query cost unique
      // to this layer; its time distribution says whether the sharded key
      // path is realign-bound or kernel-bound.
      static auto& submits = util::metrics::Registry::instance().counter(
          "array.sharded.submits", util::metrics::Stability::kInvariant);
      static auto& realign_ns = util::metrics::Registry::instance().histogram(
          "array.realign_ns");
      submits.inc();
      realign_ns.record(util::metrics::clock_ns() - t0);
    }
    std::lock_guard lock(mu_);
    const std::size_t ticket = router_.submit(tenant, std::move(sq));
    if (ticket >= row_keys_of_.size()) row_keys_of_.resize(ticket + 1);
    row_keys_of_[ticket] = q.lhs.row_keys();
    return ticket;
  }

  std::size_t submit(const BatchQuery<S>& q) { return submit(0, q); }

  /// Key-aligned live mutation: translate each (row key, col key) through
  /// the base's key sets and forward the batch to the router, which
  /// scatters every update to the shard owning its row. In-order,
  /// last-write-per-key-wins, and served results at the new epoch are
  /// entry-identical to rebuilding the array from scratch with these
  /// writes applied. Unknown keys throw before anything is applied.
  std::uint64_t mutate(serve::TenantId tenant,
                       const std::vector<KeyUpdate<T>>& ops) {
    sparse::UpdateBatch<T> mops;
    mops.reserve(ops.size());
    for (const auto& u : ops) {
      const auto r = rows_.find(u.row);
      const auto c = cols_.find(u.col);
      if (!r || !c) {
        throw std::out_of_range(
            "ShardedServer: mutation key outside the base key space");
      }
      mops.push_back({static_cast<sparse::Index>(*r),
                      static_cast<sparse::Index>(*c), u.val, u.erase});
    }
    return router_.mutate(tenant, mops);
  }
  std::uint64_t mutate(const std::vector<KeyUpdate<T>>& ops) {
    return mutate(serve::TenantId{0}, ops);
  }
  /// The router-level epoch (logical mutation batches accepted).
  std::uint64_t epoch() const { return router_.epoch(); }

  /// Block for the chain's final result and wrap it back into key space.
  AssocArray<S> wait(std::size_t ticket) {
    const auto& m = router_.wait(ticket);
    std::lock_guard lock(mu_);
    return AssocArray<S>(row_keys_of_.at(ticket), cols_, m);
  }

  void flush() { router_.flush(); }
  serve::ServeStats stats() const { return router_.stats(); }
  serve::RouterStats router_stats() const { return router_.router_stats(); }

 private:
  KeySet rows_;
  KeySet cols_;
  serve::Router<S> router_;
  mutable std::mutex mu_;             ///< ticket → row-key bookkeeping
  std::deque<KeySet> row_keys_of_;    ///< result row keys per ticket
};

/// One-shot convenience: run every query against `base` through an
/// N-shard router and return results in submission order, each
/// entry-identical to mtimes / mtimes_masked run alone. All queries must
/// be batchable (the planner routes the rest). A long-lived server should
/// construct ShardedServer once instead — this pays the shard split per
/// call.
template <semiring::Semiring S>
std::vector<AssocArray<S>> mtimes_sharded(
    const AssocArray<S>& base, const std::vector<BatchQuery<S>>& queries,
    typename serve::Router<S>::Config cfg = {},
    serve::ServeStats* stats = nullptr,
    serve::RouterStats* router_stats = nullptr) {
  ShardedServer<S> server(base, cfg);
  std::vector<std::size_t> tickets;
  tickets.reserve(queries.size());
  for (const auto& q : queries) tickets.push_back(server.submit(q));
  server.flush();
  std::vector<AssocArray<S>> out;
  out.reserve(queries.size());
  for (const auto t : tickets) out.push_back(server.wait(t));
  if (stats) *stats += server.stats();
  if (router_stats) *router_stats = server.router_stats();
  return out;
}

}  // namespace hyperspace::array
