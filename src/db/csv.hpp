#pragma once
// CSV ⇄ associative array — the paper's closing claim that this algebra can
// "be a plug-in replacement for spreadsheets [and] database tables".
//
// read_csv ingests a header-rowed CSV into an AssocTable (row keys are the
// 1-based sequence ids, column keys the header fields, cells interned
// through the table's dictionary). write_csv round-trips a table back out.
// The parser handles quoted fields with embedded commas and doubled quotes.

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "db/table.hpp"

namespace hyperspace::db {

/// Split one CSV record, honoring double-quoted fields ("" = literal quote).
inline std::vector<std::string> parse_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char ch = line[i];
    if (quoted) {
      if (ch == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        cur.push_back(ch);
      }
    } else if (ch == '"') {
      quoted = true;
    } else if (ch == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (ch != '\r') {
      cur.push_back(ch);
    }
  }
  if (quoted) throw std::invalid_argument("parse_csv_line: unterminated quote");
  fields.push_back(std::move(cur));
  return fields;
}

/// Quote a field if it needs it.
inline std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char ch : s) {
    if (ch == '"') out += "\"\"";
    else out.push_back(ch);
  }
  out += '"';
  return out;
}

/// Read a header-rowed CSV into a table. Empty cells are skipped (absent =
/// the semiring 0 — sparsity is first-class, unlike a spreadsheet grid).
inline AssocTable read_csv(std::istream& is,
                           std::shared_ptr<Dictionary> dict =
                               std::make_shared<Dictionary>()) {
  std::string line;
  if (!std::getline(is, line)) {
    throw std::invalid_argument("read_csv: missing header row");
  }
  const auto header = parse_csv_line(line);
  AssocTable table(std::move(dict));
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    const auto fields = parse_csv_line(line);
    if (fields.size() > header.size()) {
      throw std::invalid_argument("read_csv: row wider than header");
    }
    Record rec;
    for (std::size_t i = 0; i < fields.size(); ++i) {
      if (!fields[i].empty()) rec[header[i]] = fields[i];
    }
    table.insert(rec);
  }
  return table;
}

inline AssocTable read_csv_string(const std::string& text) {
  std::istringstream is(text);
  return read_csv(is);
}

/// Write a table back to CSV: header = sorted column keys, one row per
/// row key; multi-valued cells join with ';'.
inline void write_csv(std::ostream& os, const AssocTable& table) {
  const auto& arr = table.array();
  const auto cols = arr.col_keys();
  os << "row";
  for (const auto& c : cols) os << ',' << csv_escape(c.to_string());
  os << '\n';
  const auto& dict = *table.dictionary();
  for (const auto& r : arr.row_keys()) {
    os << csv_escape(r.to_string());
    for (const auto& c : cols) {
      os << ',';
      const auto cell = arr.get(r, c);
      if (!cell) continue;
      std::string joined;
      for (const auto id : cell->elements()) {
        if (!joined.empty()) joined += ';';
        joined += dict.at(id);
      }
      os << csv_escape(joined);
    }
    os << '\n';
  }
}

inline std::string write_csv_string(const AssocTable& table) {
  std::ostringstream os;
  write_csv(os, table);
  return os.str();
}

}  // namespace hyperspace::db
