#pragma once
// Bidirectional string ⇄ id dictionary.
//
// The paper's Conclusions call for "key based indices (such as pointers to
// strings)" to make GraphBLAS a richer associative array algebra. This
// dictionary is that index: it interns strings once and hands out dense
// int64 ids, so ValueSet cells and matrix dimensions stay numeric while
// the user-facing API speaks strings.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace hyperspace::db {

class Dictionary {
 public:
  /// Intern `s`, returning its stable id (existing id if already present).
  std::int64_t intern(const std::string& s) {
    const auto it = ids_.find(s);
    if (it != ids_.end()) return it->second;
    const auto id = static_cast<std::int64_t>(strings_.size());
    strings_.push_back(s);
    ids_.emplace(s, id);
    return id;
  }

  /// Id of `s` if already interned.
  std::optional<std::int64_t> find(const std::string& s) const {
    const auto it = ids_.find(s);
    if (it == ids_.end()) return std::nullopt;
    return it->second;
  }

  const std::string& at(std::int64_t id) const {
    return strings_.at(static_cast<std::size_t>(id));
  }

  std::size_t size() const { return strings_.size(); }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, std::int64_t> ids_;
};

}  // namespace hyperspace::db
