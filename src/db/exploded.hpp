#pragma once
// D4M-style exploded schema.
//
// The paper's associative-array database lineage (D4M, refs [23]–[28])
// popularized the *exploded* table encoding: instead of cell (row, column)
// = value, store a 0/1 entry at (row, "column|value"). Every distinct
// value becomes its own column key, so
//
//   * select column=value  becomes a single column lookup (no scan),
//   * AᵀA computes value co-occurrence counts ("facet correlation"),
//   * the table is a pure sparsity pattern — any Table I semiring applies.
//
// ExplodedTable ingests the same Record stream as AssocTable and exposes
// both queries; tests assert it agrees with the semilink select.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "array/assoc_array.hpp"
#include "semiring/arithmetic.hpp"

namespace hyperspace::db {

class ExplodedTable {
 public:
  using S = semiring::PlusTimes<double>;
  using Arr = array::AssocArray<S>;

  static constexpr char kSeparator = '|';

  /// "column|value" composite key — D4M's exploded column space.
  static array::Key exploded_key(const std::string& column,
                                 const std::string& value) {
    return array::Key(column + kSeparator + value);
  }

  void insert(const std::map<std::string, std::string>& record) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%06zu", n_rows_ + 1);
    const array::Key row{std::string(buf)};
    for (const auto& [column, value] : record) {
      entries_.emplace_back(row, exploded_key(column, value), 1.0);
    }
    ++n_rows_;
    dirty_ = true;
  }

  std::size_t size() const { return n_rows_; }

  const Arr& array() const {
    if (dirty_) {
      arr_ = Arr::from_entries(entries_);
      dirty_ = false;
    }
    return arr_;
  }

  /// Row keys matching column=value: one column extraction, no scan.
  array::KeySet select_rows(const std::string& column,
                            const std::string& value) const {
    const auto sub =
        array().extract_cols(array::KeySet{exploded_key(column, value)});
    return sub.row();
  }

  /// All records (as exploded keys) for the matching rows — the D4M
  /// equivalent of the §V-B select: pattern mask times the table.
  Arr select(const std::string& column, const std::string& value) const {
    return array().extract_rows(select_rows(column, value));
  }

  /// Distinct values of `out_column` among rows where `column` = `value`.
  std::vector<std::string> select_values(const std::string& column,
                                         const std::string& value,
                                         const std::string& out_column) const {
    const auto rows = select(column, value);
    const std::string prefix = out_column + kSeparator;
    std::vector<std::string> out;
    for (const auto& k : rows.col()) {
      const auto& s = k.as_string();
      if (s.rfind(prefix, 0) == 0) out.push_back(s.substr(prefix.size()));
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

  /// Facet correlation AᵀA: entry (k1, k2) counts rows where both exploded
  /// keys co-occur — D4M's signature one-liner for cross-column statistics.
  Arr correlation() const {
    const auto& a = array();
    return array::mtimes(a.transpose(), a);
  }

  /// Co-occurrence count of two (column, value) facets.
  double cooccurrence(const std::string& col1, const std::string& val1,
                      const std::string& col2, const std::string& val2) const {
    const auto c = correlation().get(exploded_key(col1, val1),
                                     exploded_key(col2, val2));
    return c.value_or(0.0);
  }

 private:
  std::vector<Arr::Entry> entries_;
  mutable Arr arr_;
  mutable bool dirty_ = false;
  std::size_t n_rows_ = 0;
};

}  // namespace hyperspace::db
