#pragma once
// Adjacency-matrix database — the "NewSQL / Matrix Mathematics" panel of
// Fig 6: the link table lives as a hypersparse adjacency matrix over
// interned entity ids, and the neighbor query is a vector-matrix product
// vᵀA (the same operation as the Fig 1 BFS step).

#include <memory>
#include <string>
#include <vector>

#include "db/dictionary.hpp"
#include "semiring/arithmetic.hpp"
#include "sparse/matrix.hpp"
#include "sparse/mxm.hpp"
#include "sparse/transpose.hpp"

namespace hyperspace::db {

class MatrixDb {
 public:
  explicit MatrixDb(std::shared_ptr<Dictionary> dict =
                        std::make_shared<Dictionary>())
      : dict_(std::move(dict)) {}

  void insert_edge(const std::string& src, const std::string& dst,
                   double weight = 1.0) {
    pending_.push_back({dict_->intern(src), dict_->intern(dst), weight});
    dirty_ = true;
  }

  std::size_t size() const { return pending_.size(); }
  const std::shared_ptr<Dictionary>& dictionary() const { return dict_; }

  /// Out-neighbors of `entity` via vᵀA over +.× (weights accumulate).
  std::vector<std::string> out_neighbors(const std::string& entity) const {
    return neighbors(entity, /*transposed=*/false);
  }

  /// In-neighbors via vᵀAᵀ.
  std::vector<std::string> in_neighbors(const std::string& entity) const {
    return neighbors(entity, /*transposed=*/true);
  }

  const sparse::Matrix<double>& adjacency() const {
    rebuild();
    return adj_;
  }

 private:
  void rebuild() const {
    if (!dirty_) return;
    const auto n = static_cast<sparse::Index>(dict_->size());
    using S = semiring::PlusTimes<double>;
    adj_ = sparse::Matrix<double>::from_triples<S>(n, n, pending_);
    adj_t_ = sparse::transpose(adj_);
    dirty_ = false;
  }

  std::vector<std::string> neighbors(const std::string& entity,
                                     bool transposed) const {
    const auto id = dict_->find(entity);
    if (!id) return {};
    rebuild();
    const auto& A = transposed ? adj_t_ : adj_;
    using S = semiring::PlusTimes<double>;
    const auto v = sparse::Matrix<double>::from_unique_triples(
        1, A.nrows(), {{0, *id, 1.0}});
    const auto hits = sparse::mxm<S>(v, A);
    std::vector<std::string> out;
    for (const auto& t : hits.to_triples()) out.push_back(dict_->at(t.col));
    std::sort(out.begin(), out.end());
    return out;
  }

  std::shared_ptr<Dictionary> dict_;
  mutable std::vector<sparse::Triple<double>> pending_;
  mutable sparse::Matrix<double> adj_;
  mutable sparse::Matrix<double> adj_t_;
  mutable bool dirty_ = false;
};

}  // namespace hyperspace::db
