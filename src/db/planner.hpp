#pragma once
// Query planning with §IV annihilation conditions.
//
// "Intersection ∩ distributing over union ∪ is essential to database query
//  planning and parallel query execution" (§V-B) — and the §IV key-overlap
//  conditions give a planner license to skip whole products: if
//  row(A) ∩ row(B) = ∅ (etc.), the result is 0 and need not be computed.
//
// The planner here evaluates composite expressions over associative arrays
// with those prechecks, recording how much work was skipped.

#include <cstdint>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "array/assoc_array.hpp"
#include "array/batch.hpp"
#include "array/shard.hpp"
#include "semilink/identities.hpp"

namespace hyperspace::db {

struct PlanStats {
  int products_evaluated = 0;
  int products_skipped = 0;   ///< skipped via §IV annihilation
  int mults_evaluated = 0;
  int mults_skipped = 0;
  // Fused-mask accounting (planned_mtimes_masked / planned_batch): per-flop
  // kept/skipped counts reported by the masked multiply kernel.
  std::uint64_t mask_flops_kept = 0;
  std::uint64_t mask_flops_skipped = 0;
  // Batched-serving accounting (planned_batch).
  int batches = 0;            ///< coalesced launches issued
  int queries_batched = 0;    ///< queries served inside a coalesced batch
  int queries_fallback = 0;   ///< queries routed to per-query execution
  // Sharded-serving accounting (planned_sharded_batch): how the shard map
  // scattered the coalesced survivors. shard_subqueries < queries ×
  // n_shards is the shard-level §IV win — sub-queries never issued because
  // a query's key range provably misses those shards.
  int queries_single_shard = 0;  ///< served entirely by one shard
  int queries_straddling = 0;    ///< scattered across ≥ 2 shards
  int shard_subqueries = 0;      ///< per-shard sub-queries actually issued
};

/// A ⊕.⊗ B with the inner-key precheck: col(A) ∩ row(B) = ∅ ⇒ 0.
template <semiring::Semiring S>
array::AssocArray<S> planned_mtimes(const array::AssocArray<S>& a,
                                    const array::AssocArray<S>& b,
                                    PlanStats* stats = nullptr) {
  if (array::disjoint(a.col(), b.row())) {
    if (stats) ++stats->products_skipped;
    return array::AssocArray<S>();
  }
  if (stats) ++stats->products_evaluated;
  return array::mtimes(a, b);
}

/// C⟨M⟩ = A ⊕.⊗ B with mask pushdown: beyond the §IV inner-key precheck,
/// an output mask provably annihilating every output position (empty mask,
/// plain sense — the degenerate |…|₀ ∩ A of §V-B) skips the product
/// entirely; otherwise the mask is fused into accumulation and the kernel's
/// per-flop kept/skipped counts land in the stats.
template <semiring::Semiring S, semiring::Semiring SM>
array::AssocArray<S> planned_mtimes_masked(const array::AssocArray<S>& a,
                                           const array::AssocArray<S>& b,
                                           const array::AssocArray<SM>& mask,
                                           sparse::MaskDesc desc = {},
                                           PlanStats* stats = nullptr) {
  if (array::disjoint(a.col(), b.row())) {
    if (stats) ++stats->products_skipped;
    return array::AssocArray<S>();
  }
  if (!desc.complement &&
      (mask.empty() || array::disjoint(a.row(), mask.row()) ||
       array::disjoint(b.col(), mask.col()))) {
    if (stats) ++stats->products_skipped;
    return array::AssocArray<S>();
  }
  if (stats) ++stats->products_evaluated;
  sparse::MxmMaskStats ms;
  auto result = array::mtimes_masked(a, b, mask, desc, &ms);
  if (stats) {
    stats->mask_flops_kept += ms.flops_kept;
    stats->mask_flops_skipped += ms.flops_skipped;
  }
  return result;
}

/// A ⊗ B with the pattern precheck: disjoint rows or columns ⇒ 0.
template <semiring::Semiring S>
array::AssocArray<S> planned_mult(const array::AssocArray<S>& a,
                                  const array::AssocArray<S>& b,
                                  PlanStats* stats = nullptr) {
  if (array::disjoint(a.row(), b.row()) || array::disjoint(a.col(), b.col())) {
    if (stats) ++stats->mults_skipped;
    return array::AssocArray<S>();
  }
  if (stats) ++stats->mults_evaluated;
  return array::mult(a, b);
}

/// A ⊗ (B ⊕.⊗ C) with the full §IV form-1 precheck.
template <semiring::Semiring S>
array::AssocArray<S> planned_mult_of_product(const array::AssocArray<S>& a,
                                             const array::AssocArray<S>& b,
                                             const array::AssocArray<S>& c,
                                             PlanStats* stats = nullptr) {
  if (array::disjoint(a.row(), b.row()) ||
      array::disjoint(a.col(), c.col()) ||
      array::disjoint(b.col(), c.row())) {
    if (stats) {
      ++stats->mults_skipped;
      ++stats->products_skipped;
    }
    return array::AssocArray<S>();
  }
  return planned_mult(a, planned_mtimes(b, c, stats), stats);
}

namespace detail {

enum class BatchRoute { kAnnihilated, kCoalesce, kFallback };

/// The one copy of the batch routers' per-query precheck: §IV inner-key
/// annihilation, §V-B mask annihilation (plain sense), then the key-space
/// batchability split. Annihilated queries count as skipped products.
template <semiring::Semiring S>
BatchRoute route_batch_query(const array::AssocArray<S>& base,
                             const array::BatchQuery<S>& q,
                             PlanStats* stats) {
  // §IV inner-key annihilation: col(lhs) ∩ row(base) = ∅ ⇒ 0.
  if (array::disjoint(q.lhs.col(), base.row())) {
    if (stats) ++stats->products_skipped;
    return BatchRoute::kAnnihilated;
  }
  // §V-B mask annihilation (plain sense): a provably-empty output mask
  // skips the product entirely.
  if (q.mask && !q.desc.complement &&
      (q.mask->empty() || array::disjoint(q.lhs.row(), q.mask->row()) ||
       array::disjoint(base.col(), q.mask->col()))) {
    if (stats) ++stats->products_skipped;
    return BatchRoute::kAnnihilated;
  }
  return array::batchable(base, q) ? BatchRoute::kCoalesce
                                   : BatchRoute::kFallback;
}

}  // namespace detail

/// Serve K concurrent queries against one base array — the §V-B "parallel
/// query execution" story batched. Each query gets the same §IV inner-key
/// and §V-B mask-annihilation prechecks as planned_mtimes(_masked); the
/// survivors split two ways:
///
///   * batchable (inner alignment = the base's row key space, see
///     array::batchable) — coalesced into ONE block-diagonal launch
///     through serve::run_batch;
///   * incompatible key spaces — per-query planned fallback. (Semiring
///     compatibility is the template parameter: queries over different
///     semirings cannot share a batch by construction.)
///
/// Results are returned in query order, entry-identical to running each
/// query through planned_mtimes(_masked) alone.
template <semiring::Semiring S>
std::vector<array::AssocArray<S>> planned_batch(
    const array::AssocArray<S>& base,
    const std::vector<array::BatchQuery<S>>& queries,
    PlanStats* stats = nullptr, serve::ServeStats* serve_stats = nullptr) {
  std::vector<array::AssocArray<S>> out(queries.size());
  std::vector<std::size_t> coalesce;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto& q = queries[i];
    switch (detail::route_batch_query(base, q, stats)) {
      case detail::BatchRoute::kAnnihilated:
        break;  // out[i] stays the empty array, exactly as planned_mtimes
      case detail::BatchRoute::kCoalesce:
        coalesce.push_back(i);
        break;
      case detail::BatchRoute::kFallback:
        out[i] = q.mask ? planned_mtimes_masked(q.lhs, base, *q.mask, q.desc,
                                                stats)
                        : planned_mtimes(q.lhs, base, stats);
        if (stats) ++stats->queries_fallback;
        break;
    }
  }
  if (!coalesce.empty()) {
    // Pointers, not copies: the coalesced subset is consulted in place.
    std::vector<const array::BatchQuery<S>*> group;
    group.reserve(coalesce.size());
    for (const auto i : coalesce) group.push_back(&queries[i]);
    serve::ServeStats ss;
    auto rs = array::mtimes_batched<S>(base, group, &ss);
    for (std::size_t k = 0; k < coalesce.size(); ++k) {
      out[coalesce[k]] = std::move(rs[k]);
    }
    if (stats) {
      ++stats->batches;
      stats->queries_batched += static_cast<int>(coalesce.size());
      stats->products_evaluated += static_cast<int>(coalesce.size());
      stats->mask_flops_kept += ss.flops_kept;
      stats->mask_flops_skipped += ss.flops_skipped;
    }
    if (serve_stats) *serve_stats += ss;
  }
  return out;
}

/// Shard-aware planned serving: K concurrent queries against one base held
/// by an N-shard ShardedServer. Every query gets the same §IV inner-key
/// and §V-B mask-annihilation prechecks as planned_batch; the survivors
/// split the same two ways (batchable → the sharded router, incompatible
/// key spaces → per-query planned fallback against `base`). On the sharded
/// path the key-space precheck extends to the SHARD level: the scatter
/// routes a query only to the shards its inner key range actually touches,
/// so disjoint shards never see a sub-query — the per-shard §IV
/// annihilation, visible as shard_subqueries in the stats. Results are
/// entry-identical to planned_batch against the unsharded base.
///
/// `base` must be the array `server` was built from (same key spaces); it
/// is needed here for the per-query fallback path.
template <semiring::Semiring S>
std::vector<array::AssocArray<S>> planned_sharded_batch(
    const array::AssocArray<S>& base, array::ShardedServer<S>& server,
    const std::vector<array::BatchQuery<S>>& queries,
    PlanStats* stats = nullptr, serve::ServeStats* serve_stats = nullptr) {
  if (server.row_keys() != base.row_keys() ||
      server.col_keys() != base.col_keys()) {
    throw std::invalid_argument(
        "planned_sharded_batch: server/base key spaces differ");
  }
  std::vector<array::AssocArray<S>> out(queries.size());
  std::vector<std::size_t> coalesce;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto& q = queries[i];
    switch (detail::route_batch_query(base, q, stats)) {
      case detail::BatchRoute::kAnnihilated:
        break;  // out[i] stays the empty array, exactly as planned_mtimes
      case detail::BatchRoute::kCoalesce:
        coalesce.push_back(i);
        break;
      case detail::BatchRoute::kFallback:
        out[i] = q.mask ? planned_mtimes_masked(q.lhs, base, *q.mask, q.desc,
                                                stats)
                        : planned_mtimes(q.lhs, base, stats);
        if (stats) ++stats->queries_fallback;
        break;
    }
  }
  if (!coalesce.empty()) {
    const auto before = server.router_stats();
    const auto sbefore = server.stats();
    std::vector<std::size_t> tickets;
    tickets.reserve(coalesce.size());
    for (const auto i : coalesce) tickets.push_back(server.submit(queries[i]));
    server.flush();
    for (std::size_t k = 0; k < coalesce.size(); ++k) {
      out[coalesce[k]] = server.wait(tickets[k]);
    }
    const auto after = server.router_stats();
    const auto safter = server.stats();
    if (stats) {
      ++stats->batches;
      stats->queries_batched += static_cast<int>(coalesce.size());
      stats->products_evaluated += static_cast<int>(coalesce.size());
      stats->mask_flops_kept += safter.flops_kept - sbefore.flops_kept;
      stats->mask_flops_skipped +=
          safter.flops_skipped - sbefore.flops_skipped;
      stats->queries_single_shard +=
          static_cast<int>(after.single_shard - before.single_shard);
      stats->queries_straddling +=
          static_cast<int>(after.straddling - before.straddling);
      stats->shard_subqueries +=
          static_cast<int>(after.stage_submits - before.stage_submits);
    }
    if (serve_stats) {
      // Add only this call's delta: the server may be long-lived.
      serve_stats->queries += safter.queries - sbefore.queries;
      serve_stats->batches += safter.batches - sbefore.batches;
      serve_stats->kernel_launches +=
          safter.kernel_launches - sbefore.kernel_launches;
      serve_stats->launches_saved +=
          safter.launches_saved - sbefore.launches_saved;
      serve_stats->rows_coalesced +=
          safter.rows_coalesced - sbefore.rows_coalesced;
      serve_stats->flops_kept += safter.flops_kept - sbefore.flops_kept;
      serve_stats->flops_skipped +=
          safter.flops_skipped - sbefore.flops_skipped;
    }
  }
  return out;
}

/// Multi-base planned serving: K concurrent queries, each routed at one of
/// SEVERAL base arrays. Every query gets the same §IV inner-key and §V-B
/// mask-annihilation prechecks against its own base; the survivors split:
///
///   * batchable against their base — coalesced into ONE cross-base
///     block-diagonal launch (serve::run_batch_multi stacks the bases
///     themselves);
///   * incompatible key spaces — per-query planned fallback against their
///     base, exactly as the single-base router falls back.
///
/// Results are returned in query order, entry-identical to routing each
/// query through planned_mtimes(_masked) against its base alone.
template <semiring::Semiring S>
std::vector<array::AssocArray<S>> planned_multi_batch(
    const std::vector<const array::AssocArray<S>*>& bases,
    const std::vector<array::MultiBatchQuery<S>>& queries,
    PlanStats* stats = nullptr, serve::ServeStats* serve_stats = nullptr) {
  std::vector<array::AssocArray<S>> out(queries.size());
  std::vector<std::size_t> coalesce;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto& mq = queries[i];
    if (mq.base >= bases.size() || bases[mq.base] == nullptr) {
      throw std::invalid_argument("planned_multi_batch: bad base index");
    }
    const auto& base = *bases[mq.base];
    const auto& q = mq.q;
    switch (detail::route_batch_query(base, q, stats)) {
      case detail::BatchRoute::kAnnihilated:
        break;  // out[i] stays the empty array, exactly as planned_mtimes
      case detail::BatchRoute::kCoalesce:
        coalesce.push_back(i);
        break;
      case detail::BatchRoute::kFallback:
        out[i] = q.mask ? planned_mtimes_masked(q.lhs, base, *q.mask, q.desc,
                                                stats)
                        : planned_mtimes(q.lhs, base, stats);
        if (stats) ++stats->queries_fallback;
        break;
    }
  }
  if (!coalesce.empty()) {
    std::vector<const array::MultiBatchQuery<S>*> group;
    group.reserve(coalesce.size());
    for (const auto i : coalesce) group.push_back(&queries[i]);
    serve::ServeStats ss;
    auto rs = array::mtimes_batched_multi<S>(
        std::span<const array::AssocArray<S>* const>(bases.data(),
                                                     bases.size()),
        std::span<const array::MultiBatchQuery<S>* const>(group.data(),
                                                          group.size()),
        &ss);
    for (std::size_t k = 0; k < coalesce.size(); ++k) {
      out[coalesce[k]] = std::move(rs[k]);
    }
    if (stats) {
      ++stats->batches;
      stats->queries_batched += static_cast<int>(coalesce.size());
      stats->products_evaluated += static_cast<int>(coalesce.size());
      stats->mask_flops_kept += ss.flops_kept;
      stats->mask_flops_skipped += ss.flops_skipped;
    }
    if (serve_stats) *serve_stats += ss;
  }
  return out;
}

/// Chain product A1 ⊕.⊗ A2 ⊕.⊗ ... with early exit: the first disjoint
/// inner key space annihilates the whole chain (associativity, Table II).
template <semiring::Semiring S>
array::AssocArray<S> planned_chain(
    const std::vector<array::AssocArray<S>>& factors,
    PlanStats* stats = nullptr) {
  if (factors.empty()) return array::AssocArray<S>();
  for (std::size_t i = 0; i + 1 < factors.size(); ++i) {
    if (array::disjoint(factors[i].col(), factors[i + 1].row())) {
      if (stats) {
        stats->products_skipped +=
            static_cast<int>(factors.size()) - 1 - stats->products_evaluated;
      }
      return array::AssocArray<S>();
    }
  }
  auto acc = factors.front();
  for (std::size_t i = 1; i < factors.size(); ++i) {
    acc = planned_mtimes(acc, factors[i], stats);
    if (acc.empty()) break;  // sparsity can still annihilate mid-chain
  }
  return acc;
}

}  // namespace hyperspace::db
