#pragma once
// Query planning with §IV annihilation conditions.
//
// "Intersection ∩ distributing over union ∪ is essential to database query
//  planning and parallel query execution" (§V-B) — and the §IV key-overlap
//  conditions give a planner license to skip whole products: if
//  row(A) ∩ row(B) = ∅ (etc.), the result is 0 and need not be computed.
//
// The planner here evaluates composite expressions over associative arrays
// with those prechecks, recording how much work was skipped.

#include <cstdint>
#include <vector>

#include "array/assoc_array.hpp"
#include "semilink/identities.hpp"

namespace hyperspace::db {

struct PlanStats {
  int products_evaluated = 0;
  int products_skipped = 0;   ///< skipped via §IV annihilation
  int mults_evaluated = 0;
  int mults_skipped = 0;
  // Fused-mask accounting (planned_mtimes_masked): per-flop kept/skipped
  // counts reported by the masked multiply kernel.
  std::uint64_t mask_flops_kept = 0;
  std::uint64_t mask_flops_skipped = 0;
};

/// A ⊕.⊗ B with the inner-key precheck: col(A) ∩ row(B) = ∅ ⇒ 0.
template <semiring::Semiring S>
array::AssocArray<S> planned_mtimes(const array::AssocArray<S>& a,
                                    const array::AssocArray<S>& b,
                                    PlanStats* stats = nullptr) {
  if (array::disjoint(a.col(), b.row())) {
    if (stats) ++stats->products_skipped;
    return array::AssocArray<S>();
  }
  if (stats) ++stats->products_evaluated;
  return array::mtimes(a, b);
}

/// C⟨M⟩ = A ⊕.⊗ B with mask pushdown: beyond the §IV inner-key precheck,
/// an output mask provably annihilating every output position (empty mask,
/// plain sense — the degenerate |…|₀ ∩ A of §V-B) skips the product
/// entirely; otherwise the mask is fused into accumulation and the kernel's
/// per-flop kept/skipped counts land in the stats.
template <semiring::Semiring S, semiring::Semiring SM>
array::AssocArray<S> planned_mtimes_masked(const array::AssocArray<S>& a,
                                           const array::AssocArray<S>& b,
                                           const array::AssocArray<SM>& mask,
                                           sparse::MaskDesc desc = {},
                                           PlanStats* stats = nullptr) {
  if (array::disjoint(a.col(), b.row())) {
    if (stats) ++stats->products_skipped;
    return array::AssocArray<S>();
  }
  if (!desc.complement &&
      (mask.empty() || array::disjoint(a.row(), mask.row()) ||
       array::disjoint(b.col(), mask.col()))) {
    if (stats) ++stats->products_skipped;
    return array::AssocArray<S>();
  }
  if (stats) ++stats->products_evaluated;
  sparse::MxmMaskStats ms;
  auto result = array::mtimes_masked(a, b, mask, desc, &ms);
  if (stats) {
    stats->mask_flops_kept += ms.flops_kept;
    stats->mask_flops_skipped += ms.flops_skipped;
  }
  return result;
}

/// A ⊗ B with the pattern precheck: disjoint rows or columns ⇒ 0.
template <semiring::Semiring S>
array::AssocArray<S> planned_mult(const array::AssocArray<S>& a,
                                  const array::AssocArray<S>& b,
                                  PlanStats* stats = nullptr) {
  if (array::disjoint(a.row(), b.row()) || array::disjoint(a.col(), b.col())) {
    if (stats) ++stats->mults_skipped;
    return array::AssocArray<S>();
  }
  if (stats) ++stats->mults_evaluated;
  return array::mult(a, b);
}

/// A ⊗ (B ⊕.⊗ C) with the full §IV form-1 precheck.
template <semiring::Semiring S>
array::AssocArray<S> planned_mult_of_product(const array::AssocArray<S>& a,
                                             const array::AssocArray<S>& b,
                                             const array::AssocArray<S>& c,
                                             PlanStats* stats = nullptr) {
  if (array::disjoint(a.row(), b.row()) ||
      array::disjoint(a.col(), c.col()) ||
      array::disjoint(b.col(), c.row())) {
    if (stats) {
      ++stats->mults_skipped;
      ++stats->products_skipped;
    }
    return array::AssocArray<S>();
  }
  return planned_mult(a, planned_mtimes(b, c, stats), stats);
}

/// Chain product A1 ⊕.⊗ A2 ⊕.⊗ ... with early exit: the first disjoint
/// inner key space annihilates the whole chain (associativity, Table II).
template <semiring::Semiring S>
array::AssocArray<S> planned_chain(
    const std::vector<array::AssocArray<S>>& factors,
    PlanStats* stats = nullptr) {
  if (factors.empty()) return array::AssocArray<S>();
  for (std::size_t i = 0; i + 1 < factors.size(); ++i) {
    if (array::disjoint(factors[i].col(), factors[i + 1].row())) {
      if (stats) {
        stats->products_skipped +=
            static_cast<int>(factors.size()) - 1 - stats->products_evaluated;
      }
      return array::AssocArray<S>();
    }
  }
  auto acc = factors.front();
  for (std::size_t i = 1; i < factors.size(); ++i) {
    acc = planned_mtimes(acc, factors[i], stats);
    if (acc.empty()) break;  // sparsity can still annihilate mid-chain
  }
  return acc;
}

}  // namespace hyperspace::db
