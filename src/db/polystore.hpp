#pragma once
// Polystore — Fig 6 in one object.
//
// "Associative arrays combine the properties of databases, graphs, and
// matrices and provide common mathematics that span SQL, NoSQL, and NewSQL
// databases." FlowPolystore ingests network-flow records once and answers
// the figure's canonical query — find an address's nearest neighbors — in
// all four engines: relational scan (SQL), triple store (NoSQL), adjacency
// matrix (NewSQL), and the associative-array semilink select. The integration
// tests assert all four agree.

#include <memory>
#include <string>
#include <vector>

#include "db/matrixdb.hpp"
#include "db/relational.hpp"
#include "db/table.hpp"
#include "db/triplestore.hpp"

namespace hyperspace::db {

/// One network flow, the Fig 6 record shape: (src, link, dest).
struct Flow {
  std::string src;
  std::string link;  ///< protocol, e.g. "http", "udp", "ssh"
  std::string dest;
};

class FlowPolystore {
 public:
  FlowPolystore() : dict_(std::make_shared<Dictionary>()),
                    assoc_(dict_), triples_(dict_), matrix_(dict_) {}

  void insert(const Flow& f) {
    relational_.insert({{"src", f.src}, {"link", f.link}, {"dest", f.dest}});
    assoc_.insert({{"src", f.src}, {"link", f.link}, {"dest", f.dest}});
    triples_.insert(f.src, f.link, f.dest);
    matrix_.insert_edge(f.src, f.dest);
  }

  std::size_t size() const { return relational_.size(); }

  /// SQL: SELECT DISTINCT dest FROM T WHERE src = ip.
  std::vector<std::string> neighbors_sql(const std::string& ip) const {
    return relational_.where("src", ip).project("dest");
  }

  /// NoSQL: objects of triples with subject = ip.
  std::vector<std::string> neighbors_nosql(const std::string& ip) const {
    return triples_.out_neighbors(ip);
  }

  /// NewSQL: vᵀA over the adjacency matrix.
  std::vector<std::string> neighbors_newsql(const std::string& ip) const {
    return matrix_.out_neighbors(ip);
  }

  /// Associative array: the paper's semilink select expression.
  std::vector<std::string> neighbors_semilink(const std::string& ip) const {
    return assoc_.select_values("src", ip, "dest");
  }

  const RelationalTable& relational() const { return relational_; }
  const AssocTable& assoc() const { return assoc_; }
  const TripleStore& triples() const { return triples_; }
  const MatrixDb& matrix() const { return matrix_; }

 private:
  std::shared_ptr<Dictionary> dict_;
  RelationalTable relational_;
  AssocTable assoc_;
  TripleStore triples_;
  MatrixDb matrix_;
};

}  // namespace hyperspace::db
