#pragma once
// A minimal row-store relational engine — the "SQL / Set Operations" panel
// of Fig 6, and the scan baseline the associative-array formulations are
// checked against. Supports insert, full-scan select, projection, and the
// set-algebra table operations (union / intersection of row sets) that the
// ∪.∩ semiring abstracts.

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace hyperspace::db {

using RelRecord = std::map<std::string, std::string>;

class RelationalTable {
 public:
  void insert(RelRecord rec) { rows_.push_back(std::move(rec)); }

  std::size_t size() const { return rows_.size(); }
  const std::vector<RelRecord>& rows() const { return rows_; }

  /// SELECT * FROM this WHERE column = value (full scan).
  RelationalTable where(const std::string& column,
                        const std::string& value) const {
    RelationalTable out;
    for (const auto& r : rows_) {
      const auto it = r.find(column);
      if (it != r.end() && it->second == value) out.insert(r);
    }
    return out;
  }

  /// SELECT DISTINCT column FROM this (projection).
  std::vector<std::string> project(const std::string& column) const {
    std::set<std::string> vals;
    for (const auto& r : rows_) {
      const auto it = r.find(column);
      if (it != r.end()) vals.insert(it->second);
    }
    return {vals.begin(), vals.end()};
  }

  /// Set union of row multisets (duplicates collapse).
  friend RelationalTable table_union(const RelationalTable& a,
                                     const RelationalTable& b) {
    std::set<RelRecord> s(a.rows_.begin(), a.rows_.end());
    s.insert(b.rows_.begin(), b.rows_.end());
    RelationalTable out;
    for (const auto& r : s) out.insert(r);
    return out;
  }

  /// Set intersection of row sets.
  friend RelationalTable table_intersection(const RelationalTable& a,
                                            const RelationalTable& b) {
    const std::set<RelRecord> sa(a.rows_.begin(), a.rows_.end());
    RelationalTable out;
    std::set<RelRecord> seen;
    for (const auto& r : b.rows_) {
      if (sa.count(r) && seen.insert(r).second) out.insert(r);
    }
    return out;
  }

 private:
  std::vector<RelRecord> rows_;
};

}  // namespace hyperspace::db
