#pragma once
// The §V-B semilink select.
//
// "Perhaps the most canonical function in a relational database is the SQL
//  select statement ... In terms of this semilink [the select] can be
//  written as
//
//      |((A ∪.∩ I(k(i))) ∩ v) ∪.∩ 1|₀ ∩ A
//
//  The term A ∪.∩ I(k(i)) selects column k(i) from A. The next operation
//  ∩ v selects the entries corresponding to v. A mask of all the columns in
//  these rows is constructed by ∪.∩ 1, whose values are converted to P(V)
//  with the zero norm ||₀. Applying the mask with ∩ A selects the
//  corresponding rows."
//
// semilink_select evaluates exactly that expression over the relevant
// semilink (A, ∪, ∩, ∪.∩, ∅, 1, I) where each entry of 1 is P(V) and
// I(k,k) = P(V). direct_select is the scan baseline the tests compare
// against.

#include "array/assoc_array.hpp"
#include "semiring/set_algebra.hpp"

namespace hyperspace::db {

using SetSemiring = semiring::UnionIntersect;
using SetArray = array::AssocArray<SetSemiring>;
using semiring::ValueSet;

/// I(k(i)): the identity array restricted to the single column key — a
/// one-entry diagonal whose value is P(V).
inline SetArray column_selector(const array::Key& column) {
  return SetArray::identity(array::KeySet{column});
}

/// The paper's semilink select: rows of A whose column `column` contains
/// element `v`. Returns those rows of A (all columns), as an array over
/// A's key spaces.
inline SetArray semilink_select(const SetArray& A, const array::Key& column,
                                ValueSet::element v) {
  // A ∪.∩ I(k(i)) — keep only column k(i).
  const SetArray col = array::mtimes(A, column_selector(column));
  // ∩ v — intersect every cell with {v}; cells lacking v become ∅.
  const SetArray v_hits = array::mult(
      col, SetArray(A.row_keys(), array::KeySet{column},
                    sparse::Matrix<ValueSet>::full(
                        static_cast<sparse::Index>(A.row_keys().size()), 1,
                        ValueSet{v}, ValueSet::empty())));
  // Drop the ∅ cells so the mask only covers matching rows.
  const SetArray pruned(
      v_hits.row_keys(), v_hits.col_keys(),
      sparse::prune<SetSemiring>(v_hits.matrix()));
  // ∪.∩ 1 — spread each matching row across all columns of A.
  const SetArray mask_raw = array::mtimes(
      pruned, SetArray::ones(array::KeySet{column}, A.col_keys()));
  // |·|₀ — convert mask values to P(V) (the ⊗-identity), then ∩ A.
  const SetArray mask = mask_raw.zero_norm();
  return array::mult(mask, A);
}

/// Scan baseline: same result computed row-by-row without the semilink.
inline SetArray direct_select(const SetArray& A, const array::Key& column,
                              ValueSet::element v) {
  std::vector<SetArray::Entry> keep;
  std::vector<char> row_in(A.row_keys().size(), 0);
  for (const auto& [r, c, val] : A.entries()) {
    if (c == column && val.contains(v)) {
      row_in[*A.row_keys().find(r)] = 1;
    }
  }
  for (const auto& [r, c, val] : A.entries()) {
    if (row_in[*A.row_keys().find(r)]) keep.emplace_back(r, c, val);
  }
  return SetArray::from_entries(keep).realign(A.row_keys(), A.col_keys());
}

}  // namespace hyperspace::db
