#pragma once
// AssocTable — a database table as an associative array (Section V-B).
//
// "The row keys are equivalent to the sequence ID in a relational database
//  table. The column keys are equivalent to the column names or record
//  fields."
//
// Cells hold *sets of values* from a shared dictionary, so the table lives
// directly over the ∪.∩ semiring and the paper's semilink select applies
// unchanged. String values are interned once; queries translate strings to
// ids at the boundary.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "db/dictionary.hpp"
#include "db/select.hpp"

namespace hyperspace::db {

/// One record: field name → value string.
using Record = std::map<std::string, std::string>;

class AssocTable {
 public:
  explicit AssocTable(std::shared_ptr<Dictionary> dict =
                          std::make_shared<Dictionary>())
      : dict_(std::move(dict)) {}

  /// Append a record; the row key is the (1-based, zero-padded) sequence id
  /// unless an explicit row key is given.
  void insert(const Record& rec) {
    insert(next_row_key(), rec);
  }

  void insert(const array::Key& row, const Record& rec) {
    for (const auto& [field, value] : rec) {
      pending_.emplace_back(row, array::Key(field),
                            ValueSet{dict_->intern(value)});
    }
    dirty_ = true;
    ++n_rows_;
  }

  std::size_t size() const { return n_rows_; }
  const std::shared_ptr<Dictionary>& dictionary() const { return dict_; }

  /// The associative array over the ∪.∩ semiring (built lazily; duplicate
  /// cells union their value sets — multi-valued fields are first-class).
  const SetArray& array() const {
    if (dirty_) {
      arr_ = SetArray::from_entries(pending_);
      dirty_ = false;
    }
    return arr_;
  }

  /// select ... from T where `column` = `value` — via the paper's semilink
  /// expression. Returns the matching rows as a table-shaped array.
  SetArray select_semilink(const std::string& column,
                           const std::string& value) const {
    const auto id = dict_->find(value);
    if (!id) return SetArray();  // value never seen: empty result
    return semilink_select(array(), array::Key(column), *id);
  }

  /// Same query via the direct row scan (baseline).
  SetArray select_direct(const std::string& column,
                         const std::string& value) const {
    const auto id = dict_->find(value);
    if (!id) return SetArray();
    return direct_select(array(), array::Key(column), *id);
  }

  /// Distinct values of `column` among rows matching the select — e.g. the
  /// Fig 6 query: SELECT 'dest' FROM T WHERE 'src=1.1.1.1'.
  std::vector<std::string> select_values(const std::string& where_col,
                                         const std::string& where_val,
                                         const std::string& out_col) const {
    const SetArray rows = select_semilink(where_col, where_val);
    std::vector<std::string> out;
    for (const auto& [r, c, v] : rows.entries()) {
      if (c == array::Key(out_col)) {
        for (const auto id : v.elements()) out.push_back(dict_->at(id));
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

 private:
  array::Key next_row_key() const {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%06zu", n_rows_ + 1);
    return array::Key(std::string(buf));
  }

  std::shared_ptr<Dictionary> dict_;
  std::vector<SetArray::Entry> pending_;
  mutable SetArray arr_;
  mutable bool dirty_ = false;
  std::size_t n_rows_ = 0;
};

}  // namespace hyperspace::db
