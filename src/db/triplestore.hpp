#pragma once
// A triple store — the "NoSQL / Graph Operations" panel of Fig 6.
//
// Facts are (subject, predicate, object) triples; the Fig 6 neighbor query
// "find 1.1.1.1's nearest neighbors" is the SPO-index lookup
// objects(subject = 1.1.1.1). Indexes are sorted vectors over interned ids
// (SPO and OPS orderings), the standard minimal triple-store layout.

#include <algorithm>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "db/dictionary.hpp"

namespace hyperspace::db {

class TripleStore {
 public:
  explicit TripleStore(std::shared_ptr<Dictionary> dict =
                           std::make_shared<Dictionary>())
      : dict_(std::move(dict)) {}

  void insert(const std::string& subject, const std::string& predicate,
              const std::string& object) {
    const auto s = dict_->intern(subject);
    const auto p = dict_->intern(predicate);
    const auto o = dict_->intern(object);
    spo_.emplace_back(s, p, o);
    ops_.emplace_back(o, p, s);
    sorted_ = false;
  }

  std::size_t size() const { return spo_.size(); }
  const std::shared_ptr<Dictionary>& dictionary() const { return dict_; }

  /// All distinct objects o with (subject, *, o) — out-neighbors.
  std::vector<std::string> out_neighbors(const std::string& subject) const {
    return scan(spo_, dict_->find(subject));
  }

  /// All distinct subjects s with (s, *, object) — in-neighbors.
  std::vector<std::string> in_neighbors(const std::string& object) const {
    return scan(ops_, dict_->find(object));
  }

  /// Distinct objects for (subject, predicate, ·).
  std::vector<std::string> objects(const std::string& subject,
                                   const std::string& predicate) const {
    const auto s = dict_->find(subject);
    const auto p = dict_->find(predicate);
    if (!s || !p) return {};
    ensure_sorted();
    std::vector<std::string> out;
    const std::tuple<std::int64_t, std::int64_t, std::int64_t> lo{*s, *p, -1};
    for (auto it = std::upper_bound(spo_.begin(), spo_.end(), lo);
         it != spo_.end() && std::get<0>(*it) == *s && std::get<1>(*it) == *p;
         ++it) {
      out.push_back(dict_->at(std::get<2>(*it)));
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

 private:
  using T3 = std::tuple<std::int64_t, std::int64_t, std::int64_t>;

  void ensure_sorted() const {
    if (sorted_) return;
    std::sort(spo_.begin(), spo_.end());
    spo_.erase(std::unique(spo_.begin(), spo_.end()), spo_.end());
    std::sort(ops_.begin(), ops_.end());
    ops_.erase(std::unique(ops_.begin(), ops_.end()), ops_.end());
    sorted_ = true;
  }

  std::vector<std::string> scan(const std::vector<T3>& index,
                                std::optional<std::int64_t> first) const {
    if (!first) return {};
    ensure_sorted();
    std::vector<std::string> out;
    const T3 lo{*first, std::numeric_limits<std::int64_t>::min(),
                std::numeric_limits<std::int64_t>::min()};
    for (auto it = std::lower_bound(index.begin(), index.end(), lo);
         it != index.end() && std::get<0>(*it) == *first; ++it) {
      out.push_back(dict_->at(std::get<2>(*it)));
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

  std::shared_ptr<Dictionary> dict_;
  mutable std::vector<T3> spo_;
  mutable std::vector<T3> ops_;
  mutable bool sorted_ = true;
};

}  // namespace hyperspace::db
