#pragma once
// DNN inference two ways (Section V-C):
//
//   * infer_standard — the conventional formulation
//         Yℓ₊₁ = h(Yℓ Wℓ + Bℓ),  h = ReLU = max(·, 0)
//     computed with a row-parallel dense-batch × sparse-matrix kernel.
//
//   * infer_semilink — the paper's two-semiring linear formulation
//         Yk₊₁ = Yk Wk ⊗ Bk ⊕ 0
//     where Yk Wk is evaluated over S1 = (R, +, ×, 0, 1) and the ⊗ (bias
//     add) and ⊕ 0 (ReLU) are evaluated over S2 = (R ∪ {-∞}, max, +, -∞, 0).
//     Note ⊕ 0 adds S2's *multiplicative* identity (the real number 0) with
//     S2's ⊕ = max — i.e. ReLU is literally "⊕ 1₂" in S2. The code below
//     spells every scalar step with S1/S2 operations to make the linearity
//     claim executable; tests assert both paths agree.
//
// "Thus, the inference step of a ReLU DNN can be viewed as combining
//  correlations of inputs to choose optimal paths through the network."

#include <vector>

#include "dnn/network.hpp"
#include "semiring/arithmetic.hpp"
#include "semiring/tropical.hpp"
#include "util/parallel.hpp"

namespace hyperspace::dnn {

/// One standard layer step: out = ReLU(in · W + b), row-parallel on the
/// unified runtime (each batch row owns its output slice — deterministic
/// for any thread count).
inline DenseBatch step_standard(const DenseBatch& in, const Layer& layer) {
  DenseBatch out(in.batch, layer.n_out());
  const auto w = layer.weights.view();
  const bool full = w.n_nonempty_rows() == w.nrows;

  util::parallel_for(0, static_cast<std::ptrdiff_t>(in.batch), 1,
                     [&](std::ptrdiff_t r) {
    double* acc = &out.data[static_cast<std::size_t>(r) *
                            static_cast<std::size_t>(out.n)];
    for (Index k = 0; k < in.n; ++k) {
      const double y = in.at(static_cast<Index>(r), k);
      if (y == 0.0) continue;
      const std::ptrdiff_t ri =
          full ? k
               : [&] {
                   const auto it = std::lower_bound(w.row_ids.begin(),
                                                    w.row_ids.end(), k);
                   return (it != w.row_ids.end() && *it == k)
                              ? it - w.row_ids.begin()
                              : std::ptrdiff_t{-1};
                 }();
      if (ri < 0) continue;
      const auto cols = w.row_cols(static_cast<std::size_t>(ri));
      const auto vals = w.row_vals(static_cast<std::size_t>(ri));
      for (std::size_t q = 0; q < cols.size(); ++q) {
        acc[cols[q]] += y * vals[q];
      }
    }
    for (Index j = 0; j < out.n; ++j) {
      const double z = acc[j] + layer.bias[static_cast<std::size_t>(j)];
      acc[j] = z > 0.0 ? z : 0.0;
    }
  });
  return out;
}

/// Full standard inference.
inline DenseBatch infer_standard(const Network& net, DenseBatch y) {
  for (const auto& layer : net.layers()) y = step_standard(y, layer);
  return y;
}

/// One semilink layer step: S1 for the correlation Yk Wk, S2 for bias ⊗ and
/// the ⊕ 0 ReLU. Identical arithmetic, expressed through the two semirings.
inline DenseBatch step_semilink(const DenseBatch& in, const Layer& layer) {
  using S1 = semiring::PlusTimes<double>;
  using S2 = semiring::MaxPlus<double>;
  DenseBatch out(in.batch, layer.n_out());
  const auto w = layer.weights.view();
  const bool full = w.n_nonempty_rows() == w.nrows;

  util::parallel_for(0, static_cast<std::ptrdiff_t>(in.batch), 1,
                     [&](std::ptrdiff_t r) {
    double* acc = &out.data[static_cast<std::size_t>(r) *
                            static_cast<std::size_t>(out.n)];
    // Yk Wk over S1 = (+, ×): acc_j = ⊕₁_k  Y(r,k) ⊗₁ W(k,j).
    for (Index k = 0; k < in.n; ++k) {
      const double y = in.at(static_cast<Index>(r), k);
      if (y == S1::zero()) continue;
      const std::ptrdiff_t ri =
          full ? k
               : [&] {
                   const auto it = std::lower_bound(w.row_ids.begin(),
                                                    w.row_ids.end(), k);
                   return (it != w.row_ids.end() && *it == k)
                              ? it - w.row_ids.begin()
                              : std::ptrdiff_t{-1};
                 }();
      if (ri < 0) continue;
      const auto cols = w.row_cols(static_cast<std::size_t>(ri));
      const auto vals = w.row_vals(static_cast<std::size_t>(ri));
      for (std::size_t q = 0; q < cols.size(); ++q) {
        acc[cols[q]] = S1::add(acc[cols[q]], S1::mul(y, vals[q]));
      }
    }
    // (· ⊗₂ Bk) ⊕₂ 0 over S2 = (max, +): bias add is S2's ⊗; ReLU is
    // ⊕₂ with S2's multiplicative identity 1₂ = 0.0.
    for (Index j = 0; j < out.n; ++j) {
      const double z = S2::mul(acc[j], layer.bias[static_cast<std::size_t>(j)]);
      acc[j] = S2::add(z, S2::one());
    }
  });
  return out;
}

/// Full two-semiring inference — must agree with infer_standard exactly.
inline DenseBatch infer_semilink(const Network& net, DenseBatch y) {
  for (const auto& layer : net.layers()) y = step_semilink(y, layer);
  return y;
}

/// Categories: argmax per batch row of the final layer scores.
inline std::vector<Index> categories(const DenseBatch& y) {
  std::vector<Index> out(static_cast<std::size_t>(y.batch), 0);
  for (Index r = 0; r < y.batch; ++r) {
    Index best = 0;
    for (Index j = 1; j < y.n; ++j) {
      if (y.at(r, j) > y.at(r, best)) best = j;
    }
    out[static_cast<std::size_t>(r)] = best;
  }
  return out;
}

}  // namespace hyperspace::dnn
