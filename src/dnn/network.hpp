#pragma once
// Sparse deep neural network substrate (Section V-C, Fig 8).
//
// A network is a sequence of layers, each a sparse weight matrix Wℓ
// (neuron i → neuron j where Wℓ(i,j) ≠ 0, the paper's "standard graph
// community convention") plus a bias vector bℓ. Inference propagates a
// batch Yℓ of row vectors:  Yℓ₊₁ = h(Yℓ Wℓ + Bℓ)  with h = ReLU.

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "semiring/arithmetic.hpp"
#include "sparse/matrix.hpp"

namespace hyperspace::dnn {

using sparse::Index;

struct Layer {
  sparse::Matrix<double> weights;  ///< n_in × n_out
  std::vector<double> bias;        ///< size n_out

  Index n_in() const { return weights.nrows(); }
  Index n_out() const { return weights.ncols(); }
};

/// A dense batch of row vectors (batch × n, row-major) — the Yℓ array.
struct DenseBatch {
  Index batch = 0;
  Index n = 0;
  std::vector<double> data;  ///< batch * n values

  DenseBatch() = default;
  DenseBatch(Index b, Index width)
      : batch(b), n(width),
        data(static_cast<std::size_t>(b) * static_cast<std::size_t>(width), 0.0) {}

  double& at(Index r, Index c) {
    return data[static_cast<std::size_t>(r * n + c)];
  }
  double at(Index r, Index c) const {
    return data[static_cast<std::size_t>(r * n + c)];
  }

  Index nnz() const {
    Index count = 0;
    for (const double v : data) count += (v != 0.0);
    return count;
  }
};

class Network {
 public:
  Network() = default;
  explicit Network(std::vector<Layer> layers) : layers_(std::move(layers)) {
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      if (layers_[l].bias.size() !=
          static_cast<std::size_t>(layers_[l].n_out())) {
        throw std::invalid_argument("Network: bias size != n_out");
      }
      if (l > 0 && layers_[l - 1].n_out() != layers_[l].n_in()) {
        throw std::invalid_argument("Network: layer width mismatch");
      }
    }
  }

  std::size_t depth() const { return layers_.size(); }
  const Layer& layer(std::size_t l) const { return layers_[l]; }
  const std::vector<Layer>& layers() const { return layers_; }

  Index n_in() const { return layers_.empty() ? 0 : layers_.front().n_in(); }
  Index n_out() const { return layers_.empty() ? 0 : layers_.back().n_out(); }

  /// Total stored weights across layers.
  Index total_nnz() const {
    Index s = 0;
    for (const auto& l : layers_) s += l.weights.nnz();
    return s;
  }

 private:
  std::vector<Layer> layers_;
};

}  // namespace hyperspace::dnn
