#pragma once
// Synthetic sparse DNN topologies.
//
// The paper cites the Sparse DNN Challenge networks (RadiX-Net mixed-radix
// topologies: fixed fan-in, every neuron reachable). We generate the same
// family: each layer connects neuron k to `fanin` evenly strided targets,
// with a stride that varies per layer so paths mix across depth — plus a
// uniformly random sparse generator for unstructured controls. Weights and
// biases follow the challenge convention (constant weight, constant
// negative bias) so activations stay sparse through depth.
// See DESIGN.md "Substitutions".

#include <vector>

#include "dnn/network.hpp"
#include "semiring/arithmetic.hpp"
#include "util/rng.hpp"

namespace hyperspace::dnn {

struct RadixNetParams {
  Index neurons = 1024;     ///< width of every layer
  int layers = 8;
  int fanin = 32;           ///< connections into each neuron
  double weight = 0.5;      ///< base synapse magnitude (jittered per synapse)
  double bias = -0.001;     ///< constant bias (keeps activity sparse, not dead)
};

/// Fixed fan-in, mixed-stride layered topology.
inline Network make_radixnet(const RadixNetParams& p) {
  std::vector<Layer> layers;
  layers.reserve(static_cast<std::size_t>(p.layers));
  using S = semiring::PlusTimes<double>;
  for (int l = 0; l < p.layers; ++l) {
    std::vector<sparse::Triple<double>> t;
    t.reserve(static_cast<std::size_t>(p.neurons) *
              static_cast<std::size_t>(p.fanin));
    // Per-layer odd stride so consecutive layers permute differently and
    // every output neuron keeps in-degree exactly `fanin`.
    const Index stride = 2 * static_cast<Index>(l) + 1;
    for (Index k = 0; k < p.neurons; ++k) {
      for (int f = 0; f < p.fanin; ++f) {
        const Index j =
            (k * stride + f * (p.neurons / p.fanin + 1)) % p.neurons;
        // Deterministic mixed-sign variation around the base weight: an
        // all-equal-positive net maps every input to the same saturating
        // output vector; mixed signs keep activations sparse through depth
        // (the Sparse DNN Challenge trait) and differentiate categories.
        const double jitter =
            static_cast<double>((k * 131 + j * 17 + l * 7) % 64) / 32.0 - 1.0;
        t.push_back({k, j, p.weight * jitter});
      }
    }
    auto w = sparse::Matrix<double>::from_triples<S>(p.neurons, p.neurons,
                                                     std::move(t));
    layers.push_back(
        {std::move(w),
         std::vector<double>(static_cast<std::size_t>(p.neurons), p.bias)});
  }
  return Network(std::move(layers));
}

/// Uniformly random sparse layers (unstructured control).
inline Network make_random_net(Index neurons, int depth, double density,
                               std::uint64_t seed = 7) {
  using S = semiring::PlusTimes<double>;
  util::Xoshiro256 rng(seed);
  std::vector<Layer> layers;
  layers.reserve(static_cast<std::size_t>(depth));
  const auto per_layer = static_cast<std::size_t>(
      density * static_cast<double>(neurons) * static_cast<double>(neurons));
  for (int l = 0; l < depth; ++l) {
    std::vector<sparse::Triple<double>> t;
    t.reserve(per_layer);
    for (std::size_t e = 0; e < per_layer; ++e) {
      t.push_back({static_cast<Index>(rng.bounded(static_cast<std::uint64_t>(neurons))),
                   static_cast<Index>(rng.bounded(static_cast<std::uint64_t>(neurons))),
                   rng.uniform(-0.5, 0.5)});
    }
    auto w = sparse::Matrix<double>::from_triples<S>(neurons, neurons,
                                                     std::move(t));
    layers.push_back(
        {std::move(w),
         std::vector<double>(static_cast<std::size_t>(neurons), -0.05)});
  }
  return Network(std::move(layers));
}

/// Synthetic sparse feature batch (MNIST-like: a fraction of inputs lit).
inline DenseBatch make_sparse_features(Index batch, Index n, double density,
                                       std::uint64_t seed = 11) {
  util::Xoshiro256 rng(seed);
  DenseBatch y(batch, n);
  const auto per_row = static_cast<std::size_t>(
      density * static_cast<double>(n));
  for (Index r = 0; r < batch; ++r) {
    for (std::size_t e = 0; e < per_row; ++e) {
      const auto c = static_cast<Index>(
          rng.bounded(static_cast<std::uint64_t>(n)));
      y.at(r, c) = rng.uniform(0.5, 1.5);
    }
  }
  return y;
}

}  // namespace hyperspace::dnn
