#pragma once
// Graph analytics in the language of sparse arrays (§V-A): the topological
// operations — BFS (bfs.hpp), union ⊕, intersection ⊗ — hold over any
// semiring; these classics exercise specific semirings:
//
//   * connected_components: min.+ label propagation (tropical semiring)
//   * triangle_count:       +.× with element-wise mask, tri = Σ(A ⊗ A²)/6
//   * degrees:              row reduction (the §IV "1 projects rows")
//   * sssp:                 min.+ Bellman–Ford iteration

#include <vector>

#include "semiring/arithmetic.hpp"
#include "semiring/tropical.hpp"
#include "sparse/apply.hpp"
#include "sparse/ewise.hpp"
#include "sparse/matrix.hpp"
#include "sparse/mxm.hpp"
#include "sparse/reduce.hpp"
#include "sparse/transpose.hpp"

namespace hyperspace::hypergraph {

/// Undirected view: A ⊕ Aᵀ over lor.land pattern.
template <typename T>
sparse::Matrix<std::uint8_t> symmetrize_pattern(const sparse::Matrix<T>& A) {
  auto p = sparse::apply(A, [](const T&) -> std::uint8_t { return 1; });
  return sparse::ewise_add<semiring::LorLand>(p, sparse::transpose(p));
}

/// Connected components by min.+ label propagation: labels start as vertex
/// ids; each round y ← y ⊕ (y ⊕.⊗ A₀) over min.+, where A₀ is the
/// undirected pattern with weight 0; converges when labels stop changing.
/// Returns the component label (smallest reachable vertex id) per vertex.
template <typename T>
std::vector<sparse::Index> connected_components(const sparse::Matrix<T>& A) {
  using MP = semiring::MinPlus<double>;
  using sparse::Index;
  const Index n = A.nrows();
  const auto undirected = symmetrize_pattern(A);
  // min.+ needs edge weight 0 so propagation takes the min of neighbors.
  auto zeros = sparse::apply(undirected, [](std::uint8_t) { return 0.0; });
  zeros.set_implicit_zero(MP::zero());

  std::vector<sparse::Triple<double>> init;
  init.reserve(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    init.push_back({0, i, static_cast<double>(i)});
  }
  auto y = sparse::Matrix<double>::from_canonical_triples(1, n, init,
                                                          MP::zero());
  while (true) {
    auto next = sparse::ewise_add<MP>(y, sparse::mxm<MP>(y, zeros));
    if (next == y) break;
    y = std::move(next);
  }
  std::vector<Index> label(static_cast<std::size_t>(n), -1);
  for (const auto& t : y.to_triples()) {
    label[static_cast<std::size_t>(t.col)] = static_cast<Index>(t.val);
  }
  return label;
}

/// Triangle count on the undirected simple graph underlying A:
/// tri = Σ_{i,j} (A ⊗ (A ⊕.⊗ A))(i,j) / 6 over +.× on the 0/1 pattern.
template <typename T>
std::int64_t triangle_count(const sparse::Matrix<T>& A) {
  using S = semiring::PlusTimes<double>;
  auto p8 = symmetrize_pattern(A);
  // Drop self-loops; convert to doubles for counting.
  auto p = sparse::select(
      sparse::apply(p8, [](std::uint8_t) { return 1.0; }),
      [](sparse::Index r, sparse::Index c, double) { return r != c; });
  const auto a2 = sparse::mxm<S>(p, p);
  const auto masked = sparse::ewise_mult<S>(p, a2);
  const double total =
      sparse::reduce_all<semiring::AddMonoidOf<S>>(masked);
  return static_cast<std::int64_t>(total + 0.5) / 6;
}

/// Out-degree per vertex via the row projection A ⊕.⊗ 1 (§IV) computed as a
/// reduction over the counting semiring.
template <typename T>
std::vector<sparse::Index> out_degrees(const sparse::Matrix<T>& A) {
  using S = semiring::PlusTimes<double>;
  auto cnt = sparse::apply(A, [](const T&) { return 1.0; });
  const auto sums = sparse::reduce_rows<semiring::AddMonoidOf<S>>(cnt);
  std::vector<sparse::Index> deg(static_cast<std::size_t>(A.nrows()), 0);
  for (const auto& t : sums.to_triples()) {
    deg[static_cast<std::size_t>(t.row)] = static_cast<sparse::Index>(t.val);
  }
  return deg;
}

/// Single-source shortest paths over min.+ (Bellman–Ford as repeated vxm).
/// Unreachable vertices get +inf.
inline std::vector<double> sssp(const sparse::Matrix<double>& A,
                                sparse::Index source) {
  using MP = semiring::MinPlus<double>;
  using sparse::Index;
  const Index n = A.nrows();
  auto W = A;  // weights as given; implicit zero must be +inf for min.+
  W.set_implicit_zero(MP::zero());

  auto d = sparse::Matrix<double>::from_unique_triples(1, n,
                                                       {{0, source, 0.0}},
                                                       MP::zero());
  for (Index round = 0; round < n; ++round) {
    auto next = sparse::ewise_add<MP>(d, sparse::mxm<MP>(d, W));
    if (next == d) break;
    d = std::move(next);
  }
  std::vector<double> dist(static_cast<std::size_t>(n), MP::zero());
  for (const auto& t : d.to_triples()) {
    dist[static_cast<std::size_t>(t.col)] = t.val;
  }
  return dist;
}

}  // namespace hyperspace::hypergraph
