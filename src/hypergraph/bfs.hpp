#pragma once
// Breadth-first search two ways — the Fig 1 duality.
//
// "Breadth-first-search performed on a graph (left) and an adjacency array
// (right) illustrates the deep connection between graphs and arrays."
//
//   * bfs_array: the array formulation — repeated vᵀA over the lor.land
//     semiring, masking off visited vertices each step.
//   * bfs_queue: the classic frontier-queue traversal over CSR rows.
//
// Both return the same level array (tests assert equality on R-MAT graphs);
// the bench measures both sides of the duality.

#include <queue>
#include <vector>

#include "semiring/arithmetic.hpp"
#include "sparse/apply.hpp"
#include "sparse/matrix.hpp"
#include "sparse/mxm.hpp"
#include "sparse/slices.hpp"
#include "util/parallel.hpp"

namespace hyperspace::hypergraph {

using sparse::Index;

/// BFS levels via the array method: frontier row-vector times adjacency
/// array per level, any semiring's pattern works — lor.land used here.
/// Returns level[v] = hops from source, or -1 if unreachable.
template <typename T>
std::vector<Index> bfs_array(const sparse::Matrix<T>& A, Index source) {
  using B = semiring::LorLand;
  const Index n = A.nrows();
  std::vector<Index> level(static_cast<std::size_t>(n), -1);
  if (source < 0 || source >= n) return level;
  level[static_cast<std::size_t>(source)] = 0;

  // Work on the pattern of A so the traversal is semiring-agnostic.
  const auto pattern = sparse::apply(
      A, [](const T&) -> std::uint8_t { return 1; });

  auto frontier = sparse::Matrix<std::uint8_t>::from_unique_triples(
      1, n, {{0, source, std::uint8_t{1}}});
  Index depth = 0;
  while (frontier.nnz() > 0) {
    ++depth;
    frontier = sparse::mxm<B>(frontier, pattern);
    // Mask: keep only not-yet-visited vertices; record their level. The
    // frontier's columns are unique, so the level writes are disjoint and
    // the chunked filter (spliced in chunk order) is deterministic for any
    // thread count.
    auto triples = frontier.to_triples();
    const auto nt = static_cast<std::ptrdiff_t>(triples.size());
    constexpr std::ptrdiff_t grain = 512;
    std::vector<std::vector<sparse::Triple<std::uint8_t>>> parts(
        static_cast<std::size_t>(util::chunk_count(nt, grain)));
    util::parallel_chunks(
        0, nt, grain,
        [&](std::ptrdiff_t chunk, std::ptrdiff_t lo, std::ptrdiff_t hi) {
          auto& part = parts[static_cast<std::size_t>(chunk)];
          for (std::ptrdiff_t i = lo; i < hi; ++i) {
            const auto& t = triples[static_cast<std::size_t>(i)];
            auto& lv = level[static_cast<std::size_t>(t.col)];
            if (lv < 0) {
              lv = depth;
              part.push_back(t);
            }
          }
        });
    const auto next = sparse::detail::splice_triple_chunks(parts);
    frontier = sparse::Matrix<std::uint8_t>::from_canonical_triples(1, n, next);
  }
  return level;
}

/// BFS levels via the classic queue traversal (the baseline side of Fig 1).
template <typename T>
std::vector<Index> bfs_queue(const sparse::Matrix<T>& A, Index source) {
  const Index n = A.nrows();
  std::vector<Index> level(static_cast<std::size_t>(n), -1);
  if (source < 0 || source >= n) return level;
  const auto v = A.view();
  const bool full = v.n_nonempty_rows() == v.nrows;

  std::queue<Index> q;
  q.push(source);
  level[static_cast<std::size_t>(source)] = 0;
  while (!q.empty()) {
    const Index u = q.front();
    q.pop();
    const auto ri = sparse::detail::find_row(v, u, full);
    if (ri < 0) continue;
    for (const Index w : v.row_cols(static_cast<std::size_t>(ri))) {
      auto& lw = level[static_cast<std::size_t>(w)];
      if (lw < 0) {
        lw = level[static_cast<std::size_t>(u)] + 1;
        q.push(w);
      }
    }
  }
  return level;
}

}  // namespace hyperspace::hypergraph
