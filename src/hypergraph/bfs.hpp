#pragma once
// Breadth-first search two ways — the Fig 1 duality.
//
// "Breadth-first-search performed on a graph (left) and an adjacency array
// (right) illustrates the deep connection between graphs and arrays."
//
//   * bfs_array: the array formulation — repeated vᵀA over the lor.land
//     semiring with the ¬visited complement mask FUSED into the product
//     (mxm_masked), so each step does O(kept) accumulator work: products
//     landing on visited vertices are skipped inside the kernel, never
//     materialized. Pass a MxmMaskStats to observe the kept/skipped split.
//   * bfs_queue: the classic frontier-queue traversal over CSR rows.
//
// Both return the same level array (tests assert equality on R-MAT graphs);
// the bench measures both sides of the duality.

#include <algorithm>
#include <iterator>
#include <queue>
#include <vector>

#include "semiring/arithmetic.hpp"
#include "sparse/apply.hpp"
#include "sparse/masked.hpp"
#include "sparse/matrix.hpp"
#include "sparse/mxm.hpp"
#include "sparse/slices.hpp"
#include "util/parallel.hpp"

namespace hyperspace::hypergraph {

using sparse::Index;

/// BFS levels via the array method: frontier row-vector times adjacency
/// array per level, any semiring's pattern works — lor.land used here.
/// The ¬visited write mask is fused into the product, so products landing
/// on visited vertices are skipped inside the kernel (O(kept) accumulator
/// work); the level array catches the few stragglers admitted by the
/// amortized (doubling) mask refresh. Returns level[v] = hops from source,
/// or -1 if unreachable. `stats`, when given, accumulates the fused
/// kernel's kept/skipped flop counts across all levels.
template <typename T>
std::vector<Index> bfs_array(const sparse::Matrix<T>& A, Index source,
                             sparse::MxmMaskStats* stats = nullptr) {
  using B = semiring::LorLand;
  const Index n = A.nrows();
  std::vector<Index> level(static_cast<std::size_t>(n), -1);
  if (source < 0 || source >= n) return level;
  level[static_cast<std::size_t>(source)] = 0;

  // Work on the pattern of A so the traversal is semiring-agnostic.
  const auto pattern = sparse::apply(
      A, [](const T&) -> std::uint8_t { return 1; });

  auto frontier = sparse::Matrix<std::uint8_t>::from_unique_triples(
      1, n, {{0, source, std::uint8_t{1}}});
  // Visited set as a sorted 1×n mask row. Rebuilding the mask Matrix every
  // level would cost O(|visited|) per level — Θ(V·depth) on high-diameter
  // graphs — so the mask is refreshed only when the visited set has doubled
  // since the last build (amortized O(V) total). The mask may therefore be
  // a slightly stale SUPERSET of ¬visited; the level array below filters
  // the stragglers, exactly as a GraphBLAS app would combine a lagged mask
  // with an assign-if-unset accumulator.
  std::vector<sparse::Triple<std::uint8_t>> visited{{0, source, 1}};
  auto mask = sparse::Matrix<std::uint8_t>::from_canonical_triples(1, n,
                                                                   visited);
  std::size_t mask_nnz = visited.size();
  Index depth = 0;
  while (frontier.nnz() > 0) {
    ++depth;
    frontier = sparse::mxm_masked<B>(frontier, pattern, mask,
                                     {.complement = true}, stats);
    // Keep only still-unvisited vertices and record their level. Columns
    // are unique within the product row, so the writes are disjoint and the
    // chunked filter (spliced in chunk order) is deterministic for any
    // thread count.
    const auto triples = frontier.to_triples();
    const auto next = sparse::detail::chunked_collect<std::uint8_t>(
        static_cast<std::ptrdiff_t>(triples.size()), 512,
        [&](std::ptrdiff_t i,
            std::vector<sparse::Triple<std::uint8_t>>& part) {
          const auto& t = triples[static_cast<std::size_t>(i)];
          auto& lv = level[static_cast<std::size_t>(t.col)];
          if (lv < 0) {
            lv = depth;
            part.push_back(t);
          }
        });
    frontier = sparse::Matrix<std::uint8_t>::from_canonical_triples(1, n, next);
    // Merge the new frontier into the visited row (both sorted by column)
    // and refresh the mask once the set has doubled.
    std::vector<sparse::Triple<std::uint8_t>> merged;
    merged.reserve(visited.size() + next.size());
    std::merge(visited.begin(), visited.end(), next.begin(), next.end(),
               std::back_inserter(merged),
               [](const auto& x, const auto& y) { return x.col < y.col; });
    visited = std::move(merged);
    if (visited.size() >= 2 * mask_nnz) {
      mask = sparse::Matrix<std::uint8_t>::from_canonical_triples(1, n,
                                                                  visited);
      mask_nnz = visited.size();
    }
  }
  return level;
}

/// BFS levels via the classic queue traversal (the baseline side of Fig 1).
template <typename T>
std::vector<Index> bfs_queue(const sparse::Matrix<T>& A, Index source) {
  const Index n = A.nrows();
  std::vector<Index> level(static_cast<std::size_t>(n), -1);
  if (source < 0 || source >= n) return level;
  const auto v = A.view();
  const bool full = v.n_nonempty_rows() == v.nrows;

  std::queue<Index> q;
  q.push(source);
  level[static_cast<std::size_t>(source)] = 0;
  while (!q.empty()) {
    const Index u = q.front();
    q.pop();
    const auto ri = sparse::detail::find_row(v, u, full);
    if (ri < 0) continue;
    for (const Index w : v.row_cols(static_cast<std::size_t>(ri))) {
      auto& lw = level[static_cast<std::size_t>(w)];
      if (lw < 0) {
        lw = level[static_cast<std::size_t>(u)] + 1;
        q.push(w);
      }
    }
  }
  return level;
}

}  // namespace hyperspace::hypergraph
