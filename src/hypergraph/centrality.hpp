#pragma once
// Further graph analytics on the semiring kernels: PageRank (repeated
// normalized vxm over +.×), k-truss peeling (repeated masked triangle
// support counts, the algorithm Davis demonstrates on SuiteSparse:GraphBLAS
// [17]), and Jaccard neighborhood similarity.

#include <cmath>
#include <vector>

#include "hypergraph/algorithms.hpp"
#include "semiring/arithmetic.hpp"
#include "sparse/apply.hpp"
#include "sparse/ewise.hpp"
#include "sparse/matrix.hpp"
#include "sparse/mxm.hpp"
#include "sparse/reduce.hpp"
#include "sparse/transpose.hpp"

namespace hyperspace::hypergraph {

struct PageRankParams {
  double damping = 0.85;
  double tolerance = 1e-9;
  int max_iterations = 100;
};

/// PageRank over the out-degree-normalized adjacency pattern. Dangling
/// vertices redistribute uniformly. Returns a probability vector.
template <typename T>
std::vector<double> pagerank(const sparse::Matrix<T>& A,
                             PageRankParams params = {}) {
  using S = semiring::PlusTimes<double>;
  using sparse::Index;
  const Index n = A.nrows();
  if (n == 0) return {};

  // Row-normalize the pattern: P(i, j) = 1/outdeg(i).
  const auto deg = out_degrees(A);
  auto triples = A.to_triples();
  std::vector<sparse::Triple<double>> pt;
  pt.reserve(triples.size());
  for (const auto& t : triples) {
    pt.push_back({t.row, t.col,
                  1.0 / static_cast<double>(deg[static_cast<std::size_t>(t.row)])});
  }
  const auto P = sparse::Matrix<double>::from_triples<S>(n, n, std::move(pt));

  std::vector<double> rank(static_cast<std::size_t>(n),
                           1.0 / static_cast<double>(n));
  const double teleport = (1.0 - params.damping) / static_cast<double>(n);
  for (int it = 0; it < params.max_iterations; ++it) {
    // r' = teleport + d * (r P + dangling mass / n)
    std::vector<sparse::Triple<double>> rt;
    rt.reserve(rank.size());
    for (Index i = 0; i < n; ++i) {
      rt.push_back({0, i, rank[static_cast<std::size_t>(i)]});
    }
    const auto r = sparse::Matrix<double>::from_canonical_triples(1, n, rt);
    const auto rp = sparse::mxm<S>(r, P);
    double dangling = 0;
    for (Index i = 0; i < n; ++i) {
      if (deg[static_cast<std::size_t>(i)] == 0) {
        dangling += rank[static_cast<std::size_t>(i)];
      }
    }
    std::vector<double> next(static_cast<std::size_t>(n),
                             teleport + params.damping * dangling /
                                            static_cast<double>(n));
    for (const auto& t : rp.to_triples()) {
      next[static_cast<std::size_t>(t.col)] += params.damping * t.val;
    }
    double delta = 0;
    for (std::size_t i = 0; i < next.size(); ++i) {
      delta += std::abs(next[i] - rank[i]);
    }
    rank.swap(next);
    if (delta < params.tolerance) break;
  }
  return rank;
}

/// k-truss: the maximal subgraph in which every edge participates in at
/// least k-2 triangles. Returns the surviving undirected edge pattern.
template <typename T>
sparse::Matrix<double> k_truss(const sparse::Matrix<T>& A, int k) {
  using S = semiring::PlusTimes<double>;
  using sparse::Index;
  const int support_needed = k - 2;
  auto e8 = symmetrize_pattern(A);
  auto E = sparse::select(
      sparse::apply(e8, [](std::uint8_t) { return 1.0; }),
      [](Index r, Index c, double) { return r != c; });
  // k <= 2 keeps every edge (support >= 0 is vacuous; edges with zero
  // support carry no stored entry in the support matrix below).
  if (support_needed <= 0) return E;
  while (true) {
    // support(i,j) = #common neighbors = (E ⊕.⊗ E)(i,j) on the edge mask.
    const auto support = sparse::ewise_mult<S>(E, sparse::mxm<S>(E, E));
    // Keep edges with enough support.
    auto kept = sparse::select(support, [&](Index, Index, double s) {
      return s >= static_cast<double>(support_needed);
    });
    const auto next = sparse::apply(kept, [](double) { return 1.0; });
    if (next.nnz() == E.nnz()) return E;
    if (next.nnz() == 0) return sparse::Matrix<double>(E.nrows(), E.ncols());
    E = next;
  }
}

/// Jaccard similarity of out-neighborhoods for every connected pair:
/// J(i,j) = |N(i) ∩ N(j)| / |N(i) ∪ N(j)|, computed as (A Aᵀ) with
/// degree normalization. Returns entries only where the overlap is > 0.
template <typename T>
sparse::Matrix<double> jaccard_similarity(const sparse::Matrix<T>& A) {
  using S = semiring::PlusTimes<double>;
  using sparse::Index;
  const auto pattern = sparse::apply(A, [](const T&) { return 1.0; });
  const auto overlap = sparse::mxm<S>(pattern, sparse::transpose(pattern));
  const auto deg = out_degrees(A);
  auto triples = overlap.to_triples();
  std::vector<sparse::Triple<double>> out;
  out.reserve(triples.size());
  for (const auto& t : triples) {
    if (t.row == t.col) continue;
    const double du = static_cast<double>(deg[static_cast<std::size_t>(t.row)]);
    const double dv = static_cast<double>(deg[static_cast<std::size_t>(t.col)]);
    const double uni = du + dv - t.val;
    if (uni > 0) out.push_back({t.row, t.col, t.val / uni});
  }
  return sparse::Matrix<double>::from_canonical_triples(A.nrows(), A.nrows(),
                                                        out);
}

}  // namespace hyperspace::hypergraph
