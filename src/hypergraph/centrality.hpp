#pragma once
// Further graph analytics on the semiring kernels: PageRank (repeated
// normalized vxm over +.×), k-truss peeling (repeated masked triangle
// support counts, the algorithm Davis demonstrates on SuiteSparse:GraphBLAS
// [17]), and Jaccard neighborhood similarity.

#include <cmath>
#include <vector>

#include "hypergraph/algorithms.hpp"
#include "semiring/arithmetic.hpp"
#include "sparse/apply.hpp"
#include "sparse/ewise.hpp"
#include "sparse/masked.hpp"
#include "sparse/matrix.hpp"
#include "sparse/mxm.hpp"
#include "sparse/reduce.hpp"
#include "sparse/slices.hpp"
#include "sparse/transpose.hpp"
#include "util/parallel.hpp"

namespace hyperspace::hypergraph {

struct PageRankParams {
  double damping = 0.85;
  double tolerance = 1e-9;
  int max_iterations = 100;
};

/// PageRank over the out-degree-normalized adjacency pattern. Dangling
/// vertices redistribute uniformly. Returns a probability vector.
template <typename T>
std::vector<double> pagerank(const sparse::Matrix<T>& A,
                             PageRankParams params = {}) {
  using S = semiring::PlusTimes<double>;
  using sparse::Index;
  const Index n = A.nrows();
  if (n == 0) return {};

  // Row-normalize the pattern: P(i, j) = 1/outdeg(i).
  const auto deg = out_degrees(A);
  auto triples = A.to_triples();
  std::vector<sparse::Triple<double>> pt;
  pt.reserve(triples.size());
  for (const auto& t : triples) {
    pt.push_back({t.row, t.col,
                  1.0 / static_cast<double>(deg[static_cast<std::size_t>(t.row)])});
  }
  const auto P = sparse::Matrix<double>::from_triples<S>(n, n, std::move(pt));

  std::vector<double> rank(static_cast<std::size_t>(n),
                           1.0 / static_cast<double>(n));
  const double teleport = (1.0 - params.damping) / static_cast<double>(n);
  for (int it = 0; it < params.max_iterations; ++it) {
    // r' = teleport + d * (r P + dangling mass / n)
    std::vector<sparse::Triple<double>> rt(static_cast<std::size_t>(n));
    util::parallel_for(0, static_cast<std::ptrdiff_t>(n), 1024,
                       [&](std::ptrdiff_t i) {
                         rt[static_cast<std::size_t>(i)] = {
                             0, static_cast<Index>(i),
                             rank[static_cast<std::size_t>(i)]};
                       });
    const auto r = sparse::Matrix<double>::from_canonical_triples(1, n, rt);
    const auto rp = sparse::mxm<S>(r, P);
    // Fixed-grain chunked sum — the same value at every thread count.
    const double dangling = util::parallel_reduce(
        0, static_cast<std::ptrdiff_t>(n), 1024, 0.0,
        [&](std::ptrdiff_t i) {
          return deg[static_cast<std::size_t>(i)] == 0
                     ? rank[static_cast<std::size_t>(i)]
                     : 0.0;
        },
        [](double a, double b) { return a + b; });
    std::vector<double> next(static_cast<std::size_t>(n),
                             teleport + params.damping * dangling /
                                            static_cast<double>(n));
    // rp is 1 × n canonical — columns unique, so the scatter is race-free.
    const auto rpt = rp.to_triples();
    util::parallel_for(0, static_cast<std::ptrdiff_t>(rpt.size()), 1024,
                       [&](std::ptrdiff_t i) {
                         const auto& t = rpt[static_cast<std::size_t>(i)];
                         next[static_cast<std::size_t>(t.col)] +=
                             params.damping * t.val;
                       });
    const double delta = util::parallel_reduce(
        0, static_cast<std::ptrdiff_t>(n), 1024, 0.0,
        [&](std::ptrdiff_t i) {
          return std::abs(next[static_cast<std::size_t>(i)] -
                          rank[static_cast<std::size_t>(i)]);
        },
        [](double a, double b) { return a + b; });
    rank.swap(next);
    if (delta < params.tolerance) break;
  }
  return rank;
}

/// k-truss: the maximal subgraph in which every edge participates in at
/// least k-2 triangles. Returns the surviving undirected edge pattern.
template <typename T>
sparse::Matrix<double> k_truss(const sparse::Matrix<T>& A, int k) {
  using S = semiring::PlusTimes<double>;
  using sparse::Index;
  const int support_needed = k - 2;
  auto e8 = symmetrize_pattern(A);
  auto E = sparse::select(
      sparse::apply(e8, [](std::uint8_t) { return 1.0; }),
      [](Index r, Index c, double) { return r != c; });
  // k <= 2 keeps every edge (support >= 0 is vacuous; edges with zero
  // support carry no stored entry in the support matrix below).
  if (support_needed <= 0) return E;
  while (true) {
    // support(i,j) = #common neighbors = (E ⊕.⊗ E)⟨E⟩(i,j): the edge mask is
    // fused into the product, so only wedges that close on an existing edge
    // ever reach an accumulator (E's entries are all 1, so the former
    // compute-then-ewise_mult form is value-identical).
    const auto support = sparse::mxm_masked<S>(E, E, E);
    // Keep edges with enough support.
    auto kept = sparse::select(support, [&](Index, Index, double s) {
      return s >= static_cast<double>(support_needed);
    });
    const auto next = sparse::apply(kept, [](double) { return 1.0; });
    if (next.nnz() == E.nnz()) return E;
    if (next.nnz() == 0) return sparse::Matrix<double>(E.nrows(), E.ncols());
    E = next;
  }
}

/// Jaccard similarity of out-neighborhoods for every connected pair:
/// J(i,j) = |N(i) ∩ N(j)| / |N(i) ∪ N(j)|, computed as (A Aᵀ) with
/// degree normalization. Returns entries only where the overlap is > 0.
template <typename T>
sparse::Matrix<double> jaccard_similarity(const sparse::Matrix<T>& A) {
  using S = semiring::PlusTimes<double>;
  using sparse::Index;
  const auto pattern = sparse::apply(A, [](const T&) { return 1.0; });
  // NOT a fused-mask site: excluding the diagonal via a complemented
  // identity mask would probe the mask on every one of the product's flops
  // to save only n diagonal entries — the free row==col skip in the
  // normalization pass below is strictly cheaper. (k-truss and BFS masks
  // skip dense fractions of the flops; this one cannot.)
  const auto overlap = sparse::mxm<S>(pattern, sparse::transpose(pattern));
  const auto deg = out_degrees(A);
  const auto triples = overlap.to_triples();
  const auto out = sparse::detail::chunked_collect<double>(
      static_cast<std::ptrdiff_t>(triples.size()), 1024,
      [&](std::ptrdiff_t i, std::vector<sparse::Triple<double>>& part) {
        const auto& t = triples[static_cast<std::size_t>(i)];
        if (t.row == t.col) return;
        const double du =
            static_cast<double>(deg[static_cast<std::size_t>(t.row)]);
        const double dv =
            static_cast<double>(deg[static_cast<std::size_t>(t.col)]);
        const double uni = du + dv - t.val;
        if (uni > 0) part.push_back({t.row, t.col, t.val / uni});
      });
  return sparse::Matrix<double>::from_canonical_triples(A.nrows(), A.nrows(),
                                                        out);
}

}  // namespace hyperspace::hypergraph
