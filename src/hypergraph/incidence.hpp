#pragma once
// Incidence (edge) arrays — Fig 2.
//
// Streaming events are "hyper-multi-weighted-directed-graphs ... best
// represented as incidence (or edge) arrays", where
//
//   E_out(k, k1) ≠ 0   edge k comes out of vertex k1
//   E_in (k, k2) ≠ 0   edge k goes into vertex k2
//
// A HyperEdge may leave multiple vertices and enter multiple vertices
// (hyper-edge, Fig 2 red) and the same (out, in) pair may repeat across
// edge rows (multi-edge, Fig 2 blue).

#include <stdexcept>
#include <vector>

#include "semiring/arithmetic.hpp"
#include "sparse/matrix.hpp"

namespace hyperspace::hypergraph {

using sparse::Index;

struct HyperEdge {
  std::vector<Index> out;  ///< vertices the edge leaves
  std::vector<Index> in;   ///< vertices the edge enters
  double weight = 1.0;
};

/// A directed hyper-multi-graph stored as the pair (E_out, E_in) of
/// n_edges × n_vertices incidence arrays.
class IncidencePair {
 public:
  IncidencePair(Index n_vertices, const std::vector<HyperEdge>& edges)
      : n_vertices_(n_vertices), n_edges_(static_cast<Index>(edges.size())) {
    using S = semiring::PlusTimes<double>;
    std::vector<sparse::Triple<double>> out_t, in_t;
    for (Index k = 0; k < n_edges_; ++k) {
      const auto& e = edges[static_cast<std::size_t>(k)];
      if (e.out.empty() || e.in.empty()) {
        throw std::invalid_argument("HyperEdge: needs >=1 out and in vertex");
      }
      for (const Index v : e.out) out_t.push_back({k, v, e.weight});
      for (const Index v : e.in) in_t.push_back({k, v, e.weight});
    }
    eout_ = sparse::Matrix<double>::from_triples<S>(n_edges_, n_vertices_,
                                                    std::move(out_t));
    ein_ = sparse::Matrix<double>::from_triples<S>(n_edges_, n_vertices_,
                                                   std::move(in_t));
  }

  Index n_vertices() const { return n_vertices_; }
  Index n_edges() const { return n_edges_; }
  const sparse::Matrix<double>& eout() const { return eout_; }
  const sparse::Matrix<double>& ein() const { return ein_; }

  /// True if any edge row touches more than two vertices total (hyper-edge).
  bool has_hyper_edges() const {
    const auto vo = eout_.view();
    const auto vi = ein_.view();
    // Count per edge row across both arrays.
    std::vector<Index> touch(static_cast<std::size_t>(n_edges_), 0);
    for (std::size_t r = 0; r < vo.row_ids.size(); ++r) {
      touch[static_cast<std::size_t>(vo.row_ids[r])] +=
          static_cast<Index>(vo.row_cols(r).size());
    }
    for (std::size_t r = 0; r < vi.row_ids.size(); ++r) {
      touch[static_cast<std::size_t>(vi.row_ids[r])] +=
          static_cast<Index>(vi.row_cols(r).size());
    }
    for (const Index t : touch) {
      if (t > 2) return true;
    }
    return false;
  }

 private:
  Index n_vertices_;
  Index n_edges_;
  sparse::Matrix<double> eout_;
  sparse::Matrix<double> ein_;
};

/// Convenience: plain directed edges (src → dst) as an incidence pair.
inline IncidencePair incidence_from_edges(
    Index n_vertices, const std::vector<std::pair<Index, Index>>& edges,
    double weight = 1.0) {
  std::vector<HyperEdge> hs;
  hs.reserve(edges.size());
  for (const auto& [s, d] : edges) hs.push_back({{s}, {d}, weight});
  return IncidencePair(n_vertices, hs);
}

}  // namespace hyperspace::hypergraph
