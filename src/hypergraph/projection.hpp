#pragma once
// Edge array → adjacency array projection (Fig 3):
//
//   A = E_outᵀ E_in,   A(i, j) = ⨁_k E_outᵀ(i, k) ⊗ E_in(k, j)
//
// "The adjacency array represents a projection of edge data and is often an
// initial step in processing diverse digital data."

#include "hypergraph/incidence.hpp"
#include "semiring/concepts.hpp"
#include "sparse/mxm.hpp"
#include "sparse/transpose.hpp"

namespace hyperspace::hypergraph {

/// A = E_outᵀ ⊕.⊗ E_in over an arbitrary semiring (the values of A depend
/// on the semiring; its *pattern* — the graph topology — does not, which is
/// the §V-A observation about topological operations).
template <semiring::Semiring S>
sparse::Matrix<typename S::value_type> adjacency_projection(
    const sparse::Matrix<typename S::value_type>& eout,
    const sparse::Matrix<typename S::value_type>& ein) {
  return sparse::mxm<S>(sparse::transpose(eout), ein);
}

/// The standard +.× projection of an IncidencePair: multi-edges accumulate.
inline sparse::Matrix<double> adjacency(const IncidencePair& g) {
  return adjacency_projection<semiring::PlusTimes<double>>(g.eout(), g.ein());
}

}  // namespace hyperspace::hypergraph
