#pragma once
// The DNN semiring pair (Section V-C).
//
// "the ReLU DNN can be written as a linear system that oscillates over two
//  semirings S1 and S2 ... This DNN semiring pair is more complex than what
//  is described by the semilink concept and may require extending the
//  semilink concept to encompass DNNs."
//
// SemiringPair is that extension: two semirings over the same carrier with
// designated roles (S1 for the correlation step, S2 for the thresholding
// step). The dnn/ module instantiates DnnLink = (+.×, max.+).

#include <concepts>

#include "semiring/arithmetic.hpp"
#include "semiring/concepts.hpp"
#include "semiring/tropical.hpp"

namespace hyperspace::semilink {

/// Two semirings sharing one carrier — the "linked semirings" of the
/// paper's conclusions.
template <semiring::Semiring A, semiring::Semiring B>
  requires std::same_as<typename A::value_type, typename B::value_type>
struct SemiringPair {
  using S1 = A;  ///< the correlation semiring (Yk Wk)
  using S2 = B;  ///< the selection semiring (bias ⊗, threshold ⊕)
  using value_type = typename A::value_type;
};

/// S1 = (R, +, ×, 0, 1), S2 = (R ∪ {-∞}, max, +, -∞, 0).
using DnnLink =
    SemiringPair<semiring::PlusTimes<double>, semiring::MaxPlus<double>>;

/// ReLU written purely in S2: h(y) = y ⊕₂ 1₂ = max(y, 0).
template <typename Pair = DnnLink>
constexpr typename Pair::value_type relu(typename Pair::value_type y) {
  using S2 = typename Pair::S2;
  return S2::add(y, S2::one());
}

/// Bias application written purely in S2: y ⊗₂ b = y + b.
template <typename Pair = DnnLink>
constexpr typename Pair::value_type bias_mul(typename Pair::value_type y,
                                             typename Pair::value_type b) {
  using S2 = typename Pair::S2;
  return S2::mul(y, b);
}

}  // namespace hyperspace::semilink
