#pragma once
// The §IV semilink identities, as executable checks.
//
// Each identity the paper states becomes a predicate that evaluates both
// sides with the library's own operations and compares stored entries.
// The test suite asserts these under the stated preconditions and exhibits
// counterexamples when a precondition is dropped; the §IV bench measures
// them at scale.

#include <utility>

#include "array/assoc_array.hpp"
#include "semilink/semilink.hpp"
#include "sparse/apply.hpp"

namespace hyperspace::semilink {

/// 1 ⊗ I = I ⊗ 1 = I  and  1 ⊕.⊗ I = I ⊕.⊗ 1 = 1  — the identities
/// "preserve their properties with respect to their corresponding
/// operations". Checked over the given square key space.
template <semiring::Semiring S>
bool identities_interact(const Semilink<S>& L) {
  const auto one = L.one();
  const auto eye = L.eye();
  const bool mult_side = (L.mult(one, eye) == eye) && (L.mult(eye, one) == eye);
  const bool mtimes_side =
      (L.mtimes(one, eye) == one) && (L.mtimes(eye, one) == one);
  return mult_side && mtimes_side;
}

/// If |A|₀ = P (a permutation pattern) then A ⊗ P = P ⊗ A = A.
/// P here is the zero-norm of A itself, the canonical such permutation.
template <semiring::Semiring S>
bool permutation_elementwise_identity(const AssocArray<S>& A) {
  const auto P = A.zero_norm();
  return array::mult(A, P) == A && array::mult(P, A) == A;
}

/// C = A ⊕.⊗ 1 projects onto rows: C(k1, :) = ⨁_{k2} A(k1, k2).
/// Verified against the direct monoid reduction.
template <semiring::Semiring S>
bool ones_projects_rows(const AssocArray<S>& A) {
  const KeySet out_col{Key(std::int64_t{0})};
  const auto ones = AssocArray<S>::ones(A.col_keys(), out_col);
  const auto via_mtimes = array::mtimes(A, ones);
  const auto direct =
      sparse::reduce_rows<semiring::AddMonoidOf<S>>(A.matrix());
  const AssocArray<S> expect(A.row_keys(), out_col, direct);
  return via_mtimes == expect;
}

/// C = 1 ⊕.⊗ A projects onto columns: C(:, k2) = ⨁_{k1} A(k1, k2).
template <semiring::Semiring S>
bool ones_projects_cols(const AssocArray<S>& A) {
  const KeySet out_row{Key(std::int64_t{0})};
  const auto ones = AssocArray<S>::ones(out_row, A.row_keys());
  const auto via_mtimes = array::mtimes(ones, A);
  const auto direct =
      sparse::reduce_cols<semiring::AddMonoidOf<S>>(A.matrix());
  const AssocArray<S> expect(out_row, A.col_keys(), direct);
  return via_mtimes == expect;
}

/// Conditional distributivity of ⊕.⊗ over ⊗ (§IV): if
/// |A|₀ = |A1|₀ = |A2|₀ = P and A = A1 ⊗ A2, then
///   A ⊕.⊗ (B ⊗ C) = (A1 ⊕.⊗ B) ⊗ (A2 ⊕.⊗ C).
/// Preconditions are checked; returns false if they do not hold or if the
/// identity fails.
template <semiring::Semiring S>
bool conditional_distributivity(const AssocArray<S>& A1,
                                const AssocArray<S>& A2,
                                const AssocArray<S>& B,
                                const AssocArray<S>& C) {
  if (!is_permutation_pattern(A1) || !is_permutation_pattern(A2)) return false;
  const auto A = array::mult(A1, A2);
  if (!(A.zero_norm() == A1.zero_norm() && A.zero_norm() == A2.zero_norm())) {
    return false;  // patterns must coincide for the hypothesis |A|₀ = P
  }
  const auto lhs = array::mtimes(A, array::mult(B, C));
  const auto rhs =
      array::mult(array::mtimes(A1, B), array::mtimes(A2, C));
  return lhs == rhs;
}

/// Does A ⊗ (B ⊕.⊗ C) = (A ⊗ B) ⊕.⊗ C hold for these operands? §IV proves
/// it in the trivial cases A = 1 or C = I; tests use this general evaluator
/// to confirm those cases and to exhibit counterexamples outside them.
template <semiring::Semiring S>
bool hybrid_associativity_holds(const AssocArray<S>& A, const AssocArray<S>& B,
                                const AssocArray<S>& C) {
  const auto lhs = array::mult(A, array::mtimes(B, C));
  const auto rhs = array::mtimes(array::mult(A, B), C);
  return lhs == rhs;
}

/// Hybrid associativity in the trivial cases (§IV): if A = 1 or C = I then
///   A ⊗ (B ⊕.⊗ C) = (A ⊗ B) ⊕.⊗ C.
/// `a_is_one` selects which trivial case to instantiate for operand B.
template <semiring::Semiring S>
bool hybrid_associativity_trivial(const AssocArray<S>& B, bool a_is_one) {
  const auto eye = AssocArray<S>::identity(B.col_keys());
  if (a_is_one) {
    // A = 1 over B's key spaces, C = I over B's column keys.
    const auto one = AssocArray<S>::ones(B.row_keys(), B.col_keys());
    const auto lhs = array::mult(one, array::mtimes(B, eye));
    const auto rhs = array::mtimes(array::mult(one, B), eye);
    return lhs == rhs;
  }
  // A = B (arbitrary), C = I over B's column keys.
  const auto lhs = array::mult(B, array::mtimes(B, eye));
  const auto rhs = array::mtimes(array::mult(B, B), eye);
  return lhs == rhs;
}

/// §IV annihilation, form 1: if row(A) ∩ row(B) = ∅ or
/// col(A) ∩ col(C) = ∅ or col(B) ∩ row(C) = ∅, then A ⊗ (B ⊕.⊗ C) = 0.
template <semiring::Semiring S>
bool annihilates_left(const AssocArray<S>& A, const AssocArray<S>& B,
                      const AssocArray<S>& C) {
  const bool precondition = array::disjoint(A.row(), B.row()) ||
                            array::disjoint(A.col(), C.col()) ||
                            array::disjoint(B.col(), C.row());
  if (!precondition) return false;
  return array::mult(A, array::mtimes(B, C)).empty();
}

/// §IV annihilation, form 2: if row(A) ∩ row(B) = ∅ or col(A) ∩ col(B) = ∅
/// or col(A) ∩ row(C) = ∅ or col(B) ∩ row(C) = ∅, then (A ⊗ B) ⊕.⊗ C = 0.
template <semiring::Semiring S>
bool annihilates_right(const AssocArray<S>& A, const AssocArray<S>& B,
                       const AssocArray<S>& C) {
  const bool precondition = array::disjoint(A.row(), B.row()) ||
                            array::disjoint(A.col(), B.col()) ||
                            array::disjoint(A.col(), C.row()) ||
                            array::disjoint(B.col(), C.row());
  if (!precondition) return false;
  return array::mtimes(array::mult(A, B), C).empty();
}

/// §IV corollary: if row(A) ∩ row(B) = ∅ or col(B) ∩ row(C) = ∅, then both
/// groupings vanish: A ⊗ (B ⊕.⊗ C) = (A ⊗ B) ⊕.⊗ C = 0.
template <semiring::Semiring S>
bool annihilates_both(const AssocArray<S>& A, const AssocArray<S>& B,
                      const AssocArray<S>& C) {
  const bool precondition = array::disjoint(A.row(), B.row()) ||
                            array::disjoint(B.col(), C.row());
  if (!precondition) return false;
  return array::mult(A, array::mtimes(B, C)).empty() &&
         array::mtimes(array::mult(A, B), C).empty();
}

}  // namespace hyperspace::semilink
