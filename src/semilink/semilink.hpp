#pragma once
// The semilink (Section IV):
//
//   (A, ⊕, ⊗, ⊕.⊗, 0, 1, I)
//
// the structure obtained by coupling the element-wise commutative semiring
// (A, ⊕, ⊗, 0, 1) with the array semiring (A, ⊕, ⊕.⊗, 0, I) over the
// associative arrays A on a value semiring S. Semilink<S> packages the
// three operations and the three distinguished arrays (0, 1, I) over a
// fixed pair of key spaces, so the §IV identities can be stated — and
// checked (identities.hpp) — as code.

#include "array/assoc_array.hpp"
#include "semiring/concepts.hpp"

namespace hyperspace::semilink {

using array::AssocArray;
using array::Key;
using array::KeySet;

template <semiring::Semiring S>
class Semilink {
 public:
  using value_type = typename S::value_type;
  using Array = AssocArray<S>;

  /// A semilink instance over row key space `r` and column key space `c`.
  Semilink(KeySet r, KeySet c) : rows_(std::move(r)), cols_(std::move(c)) {}

  /// Square semilink (row keys == column keys), the setting of most §IV
  /// statements (I is square by construction).
  explicit Semilink(KeySet k) : rows_(k), cols_(std::move(k)) {}

  const KeySet& row_keys() const { return rows_; }
  const KeySet& col_keys() const { return cols_; }

  /// 0 — the array of all 0, i.e. the empty array (no stored entries).
  Array zero() const {
    return Array(rows_, cols_,
                 sparse::Matrix<value_type>(
                     static_cast<sparse::Index>(rows_.size()),
                     static_cast<sparse::Index>(cols_.size()), S::zero()));
  }

  /// 1 — the array of all 1 (⊗-identity of the element-wise semiring).
  Array one() const { return Array::ones(rows_, cols_); }

  /// I — the identity array (⊕.⊗-identity), defined on the row key space.
  Array eye() const { return Array::identity(rows_); }

  /// The three semilink operations, bound to this instance for fluency.
  Array add(const Array& a, const Array& b) const { return array::add(a, b); }
  Array mult(const Array& a, const Array& b) const { return array::mult(a, b); }
  Array mtimes(const Array& a, const Array& b) const {
    return array::mtimes(a, b);
  }

 private:
  KeySet rows_;
  KeySet cols_;
};

/// True iff the sparsity pattern of A is a permutation: every non-empty row
/// has exactly one entry and no column is used twice (|A|₀ = P, §IV).
template <semiring::Semiring S>
bool is_permutation_pattern(const AssocArray<S>& A) {
  const auto v = A.matrix().view();
  std::vector<char> col_used(static_cast<std::size_t>(A.matrix().ncols()), 0);
  for (std::size_t ri = 0; ri < v.row_ids.size(); ++ri) {
    const auto cols = v.row_cols(ri);
    if (cols.size() > 1) return false;
    for (const auto c : cols) {
      auto& used = col_used[static_cast<std::size_t>(c)];
      if (used) return false;
      used = 1;
    }
  }
  return true;
}

}  // namespace hyperspace::semilink
