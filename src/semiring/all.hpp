#pragma once
// Convenience umbrella for the full Table I semiring family.

#include "semiring/arithmetic.hpp"
#include "semiring/concepts.hpp"
#include "semiring/laws.hpp"
#include "semiring/set_algebra.hpp"
#include "semiring/tropical.hpp"
