#pragma once
// Standard arithmetic semiring (R, +, ×, 0, 1) — Table I row 1, and the S1
// semiring of the paper's DNN formulation (Section V-C).

#include <cstdint>
#include <string_view>

namespace hyperspace::semiring {

/// (T, +, ×, 0, 1). T is any arithmetic-like type.
template <typename T = double>
struct PlusTimes {
  using value_type = T;
  static constexpr std::string_view name() { return "+.x"; }
  static constexpr T zero() { return T{0}; }
  static constexpr T one() { return T{1}; }
  static constexpr T add(const T& a, const T& b) { return a + b; }
  static constexpr T mul(const T& a, const T& b) { return a * b; }
};

/// Boolean (lor.land) semiring: ({0,1}, ∨, ∧, 0, 1). The semiring of pure
/// topology — BFS reachability, sparsity-pattern algebra, the zero-norm ||₀.
/// Carrier is uint8_t (0/1) rather than bool so values pack into ordinary
/// arrays (std::vector<bool> has no contiguous storage to view).
struct LorLand {
  using value_type = std::uint8_t;
  static constexpr std::string_view name() { return "lor.land"; }
  static constexpr value_type zero() { return 0; }
  static constexpr value_type one() { return 1; }
  static constexpr value_type add(value_type a, value_type b) {
    return static_cast<value_type>(a | b);
  }
  static constexpr value_type mul(value_type a, value_type b) {
    return static_cast<value_type>(a & b);
  }
};

}  // namespace hyperspace::semiring
