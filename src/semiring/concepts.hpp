#pragma once
// C++20 concepts for monoids and semirings.
//
// The paper (Section II-C) defines a semiring (V, ⊕, ⊗, 0, 1): ⊕ is a
// commutative monoid with identity 0, ⊗ is a monoid with identity 1, ⊗
// distributes over ⊕, and 0 annihilates under ⊗. Semirings are *types* in
// this library: stateless structs exposing the carrier type and the four
// ingredients, so every sparse kernel can be instantiated for every Table I
// semiring from a single code path — the GraphBLAS design the paper builds on.

#include <concepts>

namespace hyperspace::semiring {

/// A monoid over M::value_type: associative op() with identity().
template <typename M>
concept Monoid = requires(typename M::value_type a, typename M::value_type b) {
  typename M::value_type;
  { M::identity() } -> std::convertible_to<typename M::value_type>;
  { M::op(a, b) } -> std::convertible_to<typename M::value_type>;
};

/// A semiring over S::value_type.
///
/// Requirements (checked structurally here, algebraically in laws.hpp and
/// the property-test suite):
///  - add(a,b): commutative monoid with identity zero()
///  - mul(a,b): monoid with identity one()
///  - mul distributes over add; zero() annihilates mul.
template <typename S>
concept Semiring = requires(typename S::value_type a, typename S::value_type b) {
  typename S::value_type;
  { S::zero() } -> std::convertible_to<typename S::value_type>;
  { S::one() } -> std::convertible_to<typename S::value_type>;
  { S::add(a, b) } -> std::convertible_to<typename S::value_type>;
  { S::mul(a, b) } -> std::convertible_to<typename S::value_type>;
  { S::name() };
};

/// The additive monoid view of a semiring, usable wherever Monoid is needed
/// (e.g. reductions C = A ⊕.⊗ 1 project via the add monoid alone).
template <Semiring S>
struct AddMonoidOf {
  using value_type = typename S::value_type;
  static value_type identity() { return S::zero(); }
  static value_type op(const value_type& a, const value_type& b) {
    return S::add(a, b);
  }
};

/// The multiplicative monoid view of a semiring.
template <Semiring S>
struct MulMonoidOf {
  using value_type = typename S::value_type;
  static value_type identity() { return S::one(); }
  static value_type op(const value_type& a, const value_type& b) {
    return S::mul(a, b);
  }
};

}  // namespace hyperspace::semiring
