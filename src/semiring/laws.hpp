#pragma once
// Executable algebraic-law checkers.
//
// The paper's Section II argues that the *laws* (distributivity, additive
// identity, multiplicative annihilator) are what buy reordering freedom for
// parallel computation and zero-elision for sparse storage. This header
// turns each law into a predicate over a sample of carrier values, so the
// property-test suite and the §IV bench can verify every Table I semiring
// mechanically rather than by assertion.

#include <cmath>
#include <vector>

#include "semiring/concepts.hpp"

namespace hyperspace::semiring {

namespace detail {
// Approximate equality for floating carriers: tropical adds on large
// magnitudes are exact, but +.x over doubles needs a relative tolerance
// when checking associativity/distributivity on random samples.
inline bool law_eq(double a, double b) {
  if (a == b) return true;            // covers ±inf and exact hits
  if (a != a && b != b) return true;  // NaN == NaN for law purposes
  const double scale = std::max(std::abs(a), std::abs(b));
  return std::abs(a - b) <= 1e-9 * std::max(scale, 1.0);
}
template <typename T>
bool law_eq(const T& a, const T& b) {
  return a == b;
}
}  // namespace detail

/// ∀a,b ∈ sample: a ⊕ b == b ⊕ a.
template <Semiring S>
bool add_commutative(const std::vector<typename S::value_type>& sample) {
  for (const auto& a : sample) {
    for (const auto& b : sample) {
      if (!detail::law_eq(S::add(a, b), S::add(b, a))) return false;
    }
  }
  return true;
}

/// ∀a,b,c: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
template <Semiring S>
bool add_associative(const std::vector<typename S::value_type>& sample) {
  for (const auto& a : sample) {
    for (const auto& b : sample) {
      for (const auto& c : sample) {
        if (!detail::law_eq(S::add(S::add(a, b), c), S::add(a, S::add(b, c)))) {
          return false;
        }
      }
    }
  }
  return true;
}

/// ∀a,b,c: (a ⊗ b) ⊗ c == a ⊗ (b ⊗ c).
template <Semiring S>
bool mul_associative(const std::vector<typename S::value_type>& sample) {
  for (const auto& a : sample) {
    for (const auto& b : sample) {
      for (const auto& c : sample) {
        if (!detail::law_eq(S::mul(S::mul(a, b), c), S::mul(a, S::mul(b, c)))) {
          return false;
        }
      }
    }
  }
  return true;
}

/// ∀a: a ⊕ 0 == a and 0 ⊕ a == a.
template <Semiring S>
bool additive_identity(const std::vector<typename S::value_type>& sample) {
  for (const auto& a : sample) {
    if (!detail::law_eq(S::add(a, S::zero()), a)) return false;
    if (!detail::law_eq(S::add(S::zero(), a), a)) return false;
  }
  return true;
}

/// ∀a: a ⊗ 1 == a and 1 ⊗ a == a.
template <Semiring S>
bool multiplicative_identity(const std::vector<typename S::value_type>& sample) {
  for (const auto& a : sample) {
    if (!detail::law_eq(S::mul(a, S::one()), a)) return false;
    if (!detail::law_eq(S::mul(S::one(), a), a)) return false;
  }
  return true;
}

/// ∀a: a ⊗ 0 == 0 and 0 ⊗ a == 0 — the zero-elision property that makes
/// sparse storage correct.
template <Semiring S>
bool multiplicative_annihilator(const std::vector<typename S::value_type>& sample) {
  for (const auto& a : sample) {
    if (!detail::law_eq(S::mul(a, S::zero()), S::zero())) return false;
    if (!detail::law_eq(S::mul(S::zero(), a), S::zero())) return false;
  }
  return true;
}

/// ∀a,b,c: a ⊗ (b ⊕ c) == (a ⊗ b) ⊕ (a ⊗ c) and the right-hand version —
/// the reordering property Section I highlights for parallel computation.
template <Semiring S>
bool distributive(const std::vector<typename S::value_type>& sample) {
  for (const auto& a : sample) {
    for (const auto& b : sample) {
      for (const auto& c : sample) {
        if (!detail::law_eq(S::mul(a, S::add(b, c)),
                            S::add(S::mul(a, b), S::mul(a, c)))) {
          return false;
        }
        if (!detail::law_eq(S::mul(S::add(b, c), a),
                            S::add(S::mul(b, a), S::mul(c, a)))) {
          return false;
        }
      }
    }
  }
  return true;
}

/// All semiring laws at once; the one-call check used by TEST_P sweeps.
template <Semiring S>
bool all_semiring_laws(const std::vector<typename S::value_type>& sample) {
  return add_commutative<S>(sample) && add_associative<S>(sample) &&
         mul_associative<S>(sample) && additive_identity<S>(sample) &&
         multiplicative_identity<S>(sample) &&
         multiplicative_annihilator<S>(sample) && distributive<S>(sample);
}

}  // namespace hyperspace::semiring
