#pragma once
// The union-intersection semiring (P(V), ∪, ∩, ∅, P(V)) — Table I row 6 and
// the semiring of relational algebra (Section V-B):
//
//   "relational (SQL) databases are described by relational algebra that
//    corresponds to the union-intersection semiring ∪.∩"
//
// ValueSet represents an element of the power set P(V) for a countable
// universe V. The top element P(V) itself (the ⊗-identity 1) is represented
// symbolically by a `universe` flag so that the identity is exact even when
// V is unbounded — the same trick lets the database layer's 1-array and
// I-array (Section V-B) be finite objects.

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <string_view>
#include <vector>

namespace hyperspace::semiring {

/// A set of element ids drawn from a universe V, or the whole universe P(V)'s
/// top element. Elements are kept sorted-unique; operations are linear merges.
class ValueSet {
 public:
  using element = std::int64_t;

  ValueSet() = default;
  ValueSet(std::initializer_list<element> xs) : elems_(xs) { normalize(); }
  explicit ValueSet(std::vector<element> xs) : elems_(std::move(xs)) { normalize(); }

  /// The top element: the entire universe V (i.e. "P(V)" in Table I).
  static ValueSet all() {
    ValueSet s;
    s.universe_ = true;
    return s;
  }
  static ValueSet empty() { return ValueSet{}; }

  bool is_universe() const { return universe_; }
  bool is_empty() const { return !universe_ && elems_.empty(); }
  std::size_t size() const { return elems_.size(); }
  const std::vector<element>& elements() const { return elems_; }

  bool contains(element x) const {
    if (universe_) return true;
    return std::binary_search(elems_.begin(), elems_.end(), x);
  }

  friend ValueSet set_union(const ValueSet& a, const ValueSet& b) {
    if (a.universe_ || b.universe_) return all();
    ValueSet out;
    out.elems_.reserve(a.elems_.size() + b.elems_.size());
    std::set_union(a.elems_.begin(), a.elems_.end(), b.elems_.begin(),
                   b.elems_.end(), std::back_inserter(out.elems_));
    return out;
  }

  friend ValueSet set_intersection(const ValueSet& a, const ValueSet& b) {
    if (a.universe_) return b;
    if (b.universe_) return a;
    ValueSet out;
    std::set_intersection(a.elems_.begin(), a.elems_.end(), b.elems_.begin(),
                          b.elems_.end(), std::back_inserter(out.elems_));
    return out;
  }

  friend bool operator==(const ValueSet& a, const ValueSet& b) {
    return a.universe_ == b.universe_ && a.elems_ == b.elems_;
  }

  /// Content-hash hook for sparse::fingerprint (the serve-layer result
  /// cache). Templated on the hasher so this layer never depends on it;
  /// found by ADL. The universe flag and the sorted-unique element list
  /// together ARE the value, so hashing them is content-exact.
  template <typename H>
  friend void fingerprint_append(H& h, const ValueSet& s) {
    h.u64(s.universe_ ? 1u : 0u);
    h.u64(static_cast<std::uint64_t>(s.elems_.size()));
    for (const element e : s.elems_) h.u64(static_cast<std::uint64_t>(e));
  }

  friend std::ostream& operator<<(std::ostream& os, const ValueSet& s) {
    if (s.universe_) return os << "P(V)";
    os << '{';
    for (std::size_t i = 0; i < s.elems_.size(); ++i) {
      if (i) os << ',';
      os << s.elems_[i];
    }
    return os << '}';
  }

 private:
  void normalize() {
    std::sort(elems_.begin(), elems_.end());
    elems_.erase(std::unique(elems_.begin(), elems_.end()), elems_.end());
  }

  std::vector<element> elems_;
  bool universe_ = false;
};

/// (P(V), ∪, ∩, ∅, P(V)). ∅ is the ⊕-identity and ⊗-annihilator; P(V) is the
/// ⊗-identity. Distributivity of ∩ over ∪ is what makes relational query
/// planning sound (Section V-B).
struct UnionIntersect {
  using value_type = ValueSet;
  static constexpr std::string_view name() { return "u.n"; }
  static value_type zero() { return ValueSet::empty(); }
  static value_type one() { return ValueSet::all(); }
  static value_type add(const value_type& a, const value_type& b) {
    return set_union(a, b);
  }
  static value_type mul(const value_type& a, const value_type& b) {
    return set_intersection(a, b);
  }
};

}  // namespace hyperspace::semiring
