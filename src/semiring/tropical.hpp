#pragma once
// The tropical semiring family of Table I:
//
//   R ∪ {-∞}   max  +    -∞   0      (max.+, DNN/finance)
//   R ∪ {+∞}   min  +    +∞   0      (min.+, shortest paths)
//   R≥0        max  ×     0   1      (max.×)
//   R≥0 ∪ {+∞} min  ×    +∞   1      (min.×)
//   V ∪ {-∞}   max  min  -∞  +∞      (max.min, bottleneck paths)
//   V ∪ {+∞}   min  max  +∞  -∞      (min.max)
//
// The real-valued instantiations use IEEE ±inf directly. For arbitrary
// strict totally ordered carriers V (the paper: "any sortable set", e.g.
// strings), Bounded<T> adjoins explicit ±∞ elements so max.min / min.max
// work over non-numeric keys too.

#include <algorithm>
#include <compare>
#include <limits>
#include <string_view>

namespace hyperspace::semiring {

template <typename T = double>
struct MaxPlus {
  using value_type = T;
  static constexpr std::string_view name() { return "max.+"; }
  static constexpr T zero() { return -std::numeric_limits<T>::infinity(); }
  static constexpr T one() { return T{0}; }
  static constexpr T add(const T& a, const T& b) { return std::max(a, b); }
  static constexpr T mul(const T& a, const T& b) { return a + b; }
};

template <typename T = double>
struct MinPlus {
  using value_type = T;
  static constexpr std::string_view name() { return "min.+"; }
  static constexpr T zero() { return std::numeric_limits<T>::infinity(); }
  static constexpr T one() { return T{0}; }
  static constexpr T add(const T& a, const T& b) { return std::min(a, b); }
  static constexpr T mul(const T& a, const T& b) { return a + b; }
};

/// max.× over the non-negative reals R≥0 (0 is both ⊕-identity and
/// ⊗-annihilator; closure requires a,b ≥ 0, asserted in debug kernels).
template <typename T = double>
struct MaxTimes {
  using value_type = T;
  static constexpr std::string_view name() { return "max.x"; }
  static constexpr T zero() { return T{0}; }
  static constexpr T one() { return T{1}; }
  static constexpr T add(const T& a, const T& b) { return std::max(a, b); }
  static constexpr T mul(const T& a, const T& b) { return a * b; }
};

/// min.× over R≥0 ∪ {+∞}.
template <typename T = double>
struct MinTimes {
  using value_type = T;
  static constexpr std::string_view name() { return "min.x"; }
  static constexpr T zero() { return std::numeric_limits<T>::infinity(); }
  static constexpr T one() { return T{1}; }
  static constexpr T add(const T& a, const T& b) { return std::min(a, b); }
  static constexpr T mul(const T& a, const T& b) {
    // +∞ must annihilate min even against 0 (IEEE inf*0 = NaN otherwise).
    if (a == zero() || b == zero()) return zero();
    return a * b;
  }
};

template <typename T = double>
struct MaxMin {
  using value_type = T;
  static constexpr std::string_view name() { return "max.min"; }
  static constexpr T zero() { return -std::numeric_limits<T>::infinity(); }
  static constexpr T one() { return std::numeric_limits<T>::infinity(); }
  static constexpr T add(const T& a, const T& b) { return std::max(a, b); }
  static constexpr T mul(const T& a, const T& b) { return std::min(a, b); }
};

template <typename T = double>
struct MinMax {
  using value_type = T;
  static constexpr std::string_view name() { return "min.max"; }
  static constexpr T zero() { return std::numeric_limits<T>::infinity(); }
  static constexpr T one() { return -std::numeric_limits<T>::infinity(); }
  static constexpr T add(const T& a, const T& b) { return std::min(a, b); }
  static constexpr T mul(const T& a, const T& b) { return std::max(a, b); }
};

/// T extended with explicit -∞ / +∞ elements, totally ordered:
/// NegInf < every finite value (by T's order) < PosInf.
/// Lets max.min / min.max run over any sortable carrier (e.g. std::string).
template <typename T>
struct Bounded {
  enum class Kind : unsigned char { NegInf, Finite, PosInf };

  Kind kind = Kind::Finite;
  T value{};

  static constexpr Bounded neg_inf() { return {Kind::NegInf, T{}}; }
  static constexpr Bounded pos_inf() { return {Kind::PosInf, T{}}; }
  static constexpr Bounded finite(T v) { return {Kind::Finite, std::move(v)}; }

  friend bool operator==(const Bounded& a, const Bounded& b) {
    if (a.kind != b.kind) return false;
    return a.kind != Kind::Finite || a.value == b.value;
  }
  friend bool operator<(const Bounded& a, const Bounded& b) {
    if (a.kind != b.kind) {
      return static_cast<int>(a.kind) < static_cast<int>(b.kind);
    }
    return a.kind == Kind::Finite && a.value < b.value;
  }
};

/// max.min over Bounded<T> — "V is any strict totally ordered set".
template <typename T>
struct BoundedMaxMin {
  using value_type = Bounded<T>;
  static constexpr std::string_view name() { return "max.min (ordered V)"; }
  static value_type zero() { return Bounded<T>::neg_inf(); }
  static value_type one() { return Bounded<T>::pos_inf(); }
  static value_type add(const value_type& a, const value_type& b) {
    return a < b ? b : a;
  }
  static value_type mul(const value_type& a, const value_type& b) {
    return a < b ? a : b;
  }
};

/// min.max over Bounded<T>.
template <typename T>
struct BoundedMinMax {
  using value_type = Bounded<T>;
  static constexpr std::string_view name() { return "min.max (ordered V)"; }
  static value_type zero() { return Bounded<T>::pos_inf(); }
  static value_type one() { return Bounded<T>::neg_inf(); }
  static value_type add(const value_type& a, const value_type& b) {
    return a < b ? a : b;
  }
  static value_type mul(const value_type& a, const value_type& b) {
    return a < b ? b : a;
  }
};

}  // namespace hyperspace::semiring
