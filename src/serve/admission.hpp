#pragma once
// Adaptive admission — derive the executor's batch budgets online.
//
// The executor's admission policy is governed by two knobs that PR 4 left
// static: `max_batch_flops` (close a batch at this flop budget) and
// `flush_queue_depth` (async: flush at this queue depth). Because the
// serving engine counts flops EXACTLY (Σ base-row lengths per lhs entry —
// no estimation), every flushed batch yields one exact (flops, latency)
// sample, and a latency target translates directly into a flop budget:
//
//   latency ≈ fixed_cost + ns_per_flop · flops
//   ⇒ max_batch_flops = (target − fixed_cost) / ns_per_flop
//
// This controller is that translation, first cut: EWMA over the per-batch
// ns-per-flop (batches large enough that the fixed cost is noise) plus an
// EWMA of the per-query flop mass to derive a matching queue depth. It is
// a PURE component — observe() takes the sample, limits() returns the
// recommendation, nothing reads a clock — so tests drive it with injected
// timings and assert exact convergence. The executor wires real batch
// timings in when `Config.latency_target` is set; with the target unset
// (the default) admission stays fully static.
//
// Adaptivity never touches results: admission only decides how the queue
// is SLICED into batches, and batching is answer-invariant by the serving
// determinism contract.

#include <algorithm>
#include <chrono>
#include <cstdint>

namespace hyperspace::serve {

class AdmissionController {
 public:
  struct Config {
    /// Per-batch latency to converge toward. Zero disables the controller.
    std::chrono::microseconds latency_target{0};
    /// Clamp bounds for the derived flop budget: the controller must not
    /// starve admission to nothing on a latency spike nor open the flood
    /// gates on one lucky fast batch.
    std::uint64_t min_batch_flops = 1u << 10;
    std::uint64_t max_batch_flops = std::uint64_t{1} << 40;
    int min_queue_depth = 1;
    int max_queue_depth = 1 << 16;
    /// EWMA smoothing weight of a new sample, in [0, 1].
    double gain = 0.25;
    /// Ignore batches below this flop mass when estimating ns/flop: tiny
    /// batches measure the fixed launch cost, not the marginal flop cost.
    std::uint64_t min_sample_flops = 256;
  };

  /// The two live admission limits the executor consumes.
  struct Limits {
    std::uint64_t max_batch_flops;
    int flush_queue_depth;
  };

  AdmissionController() = default;
  explicit AdmissionController(Config cfg, Limits initial)
      : cfg_(cfg), limits_(clamp(initial)) {}

  bool enabled() const { return cfg_.latency_target.count() > 0; }

  /// Feed one flushed batch's exact sample: its admitted flop mass, its
  /// measured wall latency, and how many queries it served.
  void observe(std::uint64_t flops, std::chrono::nanoseconds latency,
               std::size_t queries) {
    if (!enabled()) return;
    if (queries > 0 && flops > 0) {
      const double fpq = static_cast<double>(flops) /
                         static_cast<double>(queries);
      flops_per_query_ = flops_per_query_ <= 0.0
                             ? fpq
                             : ewma(flops_per_query_, fpq);
    }
    if (flops < cfg_.min_sample_flops) return;  // fixed-cost noise
    const double sample = static_cast<double>(latency.count()) /
                          static_cast<double>(flops);
    if (sample <= 0.0) return;
    ns_per_flop_ = ns_per_flop_ <= 0.0 ? sample : ewma(ns_per_flop_, sample);
    const double target_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            cfg_.latency_target)
            .count());
    const double want = target_ns / ns_per_flop_;
    Limits next;
    next.max_batch_flops =
        want >= static_cast<double>(cfg_.max_batch_flops)
            ? cfg_.max_batch_flops
            : static_cast<std::uint64_t>(want);
    // Queue depth: how many average queries fill the flop budget. Without
    // a flop estimate yet, leave the configured depth alone.
    next.flush_queue_depth =
        flops_per_query_ > 0.0
            ? static_cast<int>(std::min<double>(
                  static_cast<double>(cfg_.max_queue_depth),
                  static_cast<double>(next.max_batch_flops) /
                      flops_per_query_))
            : limits_.flush_queue_depth;
    limits_ = clamp(next);
  }

  Limits limits() const { return limits_; }
  const Config& config() const { return cfg_; }

  /// Current ns-per-flop estimate (0 until the first usable sample).
  double ns_per_flop() const { return ns_per_flop_; }
  double flops_per_query() const { return flops_per_query_; }

 private:
  double ewma(double prev, double sample) const {
    return prev + cfg_.gain * (sample - prev);
  }

  Limits clamp(Limits l) const {
    l.max_batch_flops = std::clamp(l.max_batch_flops, cfg_.min_batch_flops,
                                   cfg_.max_batch_flops);
    l.flush_queue_depth = std::clamp(l.flush_queue_depth,
                                     cfg_.min_queue_depth,
                                     cfg_.max_queue_depth);
    return l;
  }

  Config cfg_{};
  Limits limits_{std::uint64_t{1} << 32, 64};
  double ns_per_flop_ = 0.0;
  double flops_per_query_ = 0.0;
};

}  // namespace hyperspace::serve
