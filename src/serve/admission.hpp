#pragma once
// Adaptive admission — derive the executor's batch budgets online.
//
// The executor's admission policy is governed by two knobs that PR 4 left
// static: `max_batch_flops` (close a batch at this flop budget) and
// `flush_queue_depth` (async: flush at this queue depth). Because the
// serving engine counts flops EXACTLY (Σ base-row lengths per lhs entry —
// no estimation), every flushed batch yields one exact (flops, latency)
// sample, and a latency target translates directly into a flop budget:
//
//   latency ≈ fixed_cost + ns_per_flop · flops
//   ⇒ max_batch_flops = (target − fixed_cost) / ns_per_flop
//
// This controller is that translation, first cut: EWMA over the per-batch
// ns-per-flop (batches large enough that the fixed cost is noise) plus an
// EWMA of the per-query flop mass to derive a matching queue depth. It is
// a PURE component — observe() takes the sample, limits() returns the
// recommendation, nothing reads a clock — so tests drive it with injected
// timings and assert exact convergence. The executor wires real batch
// timings in when `Config.latency_target` is set; with the target unset
// (the default) admission stays fully static.
//
// Adaptivity never touches results: admission only decides how the queue
// is SLICED into batches, and batching is answer-invariant by the serving
// determinism contract.
//
// Second cut (telemetry PR): alongside the EWMA mean the controller keeps
// a log-bucketed histogram of every usable ns-per-flop sample (the
// util/metrics.hpp bucket geometry, in 1/1024 ns-per-flop fixed point,
// stored as a plain copyable array — still pure, still no clocks). With
// `Config.use_p95` set, budget derivation divides the target by the
// nearest-rank p95 instead of the mean: tail-aware admission that one
// lucky fast batch cannot widen. The executor exports the live limits and
// the usable-sample count as gauges, so a starved controller (all batches
// below min_sample_flops) is visible instead of silently static.

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>

#include "util/metrics.hpp"

namespace hyperspace::serve {

class AdmissionController {
 public:
  struct Config {
    /// Per-batch latency to converge toward. Zero disables the controller.
    std::chrono::microseconds latency_target{0};
    /// Clamp bounds for the derived flop budget: the controller must not
    /// starve admission to nothing on a latency spike nor open the flood
    /// gates on one lucky fast batch.
    std::uint64_t min_batch_flops = 1u << 10;
    std::uint64_t max_batch_flops = std::uint64_t{1} << 40;
    int min_queue_depth = 1;
    int max_queue_depth = 1 << 16;
    /// EWMA smoothing weight of a new sample, in [0, 1].
    double gain = 0.25;
    /// Ignore batches below this flop mass when estimating ns/flop: tiny
    /// batches measure the fixed launch cost, not the marginal flop cost.
    std::uint64_t min_sample_flops = 256;
    /// Steer by the p95 of observed ns-per-flop instead of the EWMA mean.
    /// Tail-aware: the budget converges to what the SLOW batches cost, so
    /// a latency target is met at the tail, not on average. Falls back to
    /// the EWMA until the histogram has a sample.
    bool use_p95 = false;
  };

  /// The two live admission limits the executor consumes.
  struct Limits {
    std::uint64_t max_batch_flops;
    int flush_queue_depth;
  };

  AdmissionController() = default;
  explicit AdmissionController(Config cfg, Limits initial)
      : cfg_(cfg), limits_(clamp(initial)) {}

  bool enabled() const { return cfg_.latency_target.count() > 0; }

  /// Feed one flushed batch's exact sample: its admitted flop mass, its
  /// measured wall latency, and how many queries it served.
  void observe(std::uint64_t flops, std::chrono::nanoseconds latency,
               std::size_t queries) {
    if (!enabled()) return;
    if (queries > 0 && flops > 0) {
      const double fpq = static_cast<double>(flops) /
                         static_cast<double>(queries);
      flops_per_query_ = flops_per_query_ <= 0.0
                             ? fpq
                             : ewma(flops_per_query_, fpq);
    }
    if (flops < cfg_.min_sample_flops) return;  // fixed-cost noise
    const double sample = static_cast<double>(latency.count()) /
                          static_cast<double>(flops);
    if (sample <= 0.0) return;
    ns_per_flop_ = ns_per_flop_ <= 0.0 ? sample : ewma(ns_per_flop_, sample);
    buckets_[util::metrics::bucket_index(to_fixed(sample))] += 1;
    samples_ += 1;
    const double target_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            cfg_.latency_target)
            .count());
    const double cost = cfg_.use_p95 && samples_ > 0
                            ? std::max(p95_ns_per_flop(), kMinCost)
                            : ns_per_flop_;
    const double want = target_ns / cost;
    Limits next;
    next.max_batch_flops =
        want >= static_cast<double>(cfg_.max_batch_flops)
            ? cfg_.max_batch_flops
            : static_cast<std::uint64_t>(want);
    // Queue depth: how many average queries fill the flop budget. Without
    // a flop estimate yet, leave the configured depth alone.
    next.flush_queue_depth =
        flops_per_query_ > 0.0
            ? static_cast<int>(std::min<double>(
                  static_cast<double>(cfg_.max_queue_depth),
                  static_cast<double>(next.max_batch_flops) /
                      flops_per_query_))
            : limits_.flush_queue_depth;
    limits_ = clamp(next);
  }

  Limits limits() const { return limits_; }
  const Config& config() const { return cfg_; }

  /// Current ns-per-flop estimate (0 until the first usable sample).
  double ns_per_flop() const { return ns_per_flop_; }
  double flops_per_query() const { return flops_per_query_; }

  /// Usable samples observed (those at or above min_sample_flops). A
  /// controller stuck at 0 here is starved — every batch measured fixed
  /// cost — and its limits are whatever they were configured to.
  std::uint64_t samples() const { return samples_; }

  /// Nearest-rank percentile of every usable ns-per-flop sample so far,
  /// at the histogram's 2^-4 relative resolution. 0 until the first
  /// sample.
  double ns_per_flop_percentile(double q) const {
    const auto rank = util::metrics::nearest_rank(q, samples_);
    if (rank == 0) return 0.0;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      cum += buckets_[i];
      if (cum >= rank) return from_fixed(util::metrics::bucket_floor(i));
    }
    return 0.0;
  }
  double p95_ns_per_flop() const { return ns_per_flop_percentile(0.95); }

 private:
  /// ns-per-flop is routinely below 1, so the histogram stores samples in
  /// 1/1024 ns-per-flop fixed point to keep sub-ns resolution.
  static constexpr double kFixedScale = 1024.0;
  static constexpr double kMinCost = 1.0 / kFixedScale;
  static std::uint64_t to_fixed(double ns_per_flop) {
    return static_cast<std::uint64_t>(ns_per_flop * kFixedScale);
  }
  static double from_fixed(std::uint64_t v) {
    return static_cast<double>(v) / kFixedScale;
  }

  double ewma(double prev, double sample) const {
    return prev + cfg_.gain * (sample - prev);
  }

  Limits clamp(Limits l) const {
    l.max_batch_flops = std::clamp(l.max_batch_flops, cfg_.min_batch_flops,
                                   cfg_.max_batch_flops);
    l.flush_queue_depth = std::clamp(l.flush_queue_depth,
                                     cfg_.min_queue_depth,
                                     cfg_.max_queue_depth);
    return l;
  }

  Config cfg_{};
  Limits limits_{std::uint64_t{1} << 32, 64};
  double ns_per_flop_ = 0.0;
  double flops_per_query_ = 0.0;
  std::uint64_t samples_ = 0;
  /// Plain (non-atomic) sample histogram: observe() is already serialized
  /// by the executor's flush lock, and a plain array keeps the controller
  /// copyable and pure.
  std::array<std::uint64_t, util::metrics::kNumBuckets> buckets_{};
};

}  // namespace hyperspace::serve
