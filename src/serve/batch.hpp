#pragma once
// Batched query serving — block-diagonal coalescing of concurrent queries.
//
// The ROADMAP north star is serving millions of concurrent users, but a
// kernel library answers one query per launch: every mtimes pays region
// spin-up, per-thread scratch construction, and mask setup alone. This
// header coalesces K concurrent queries against a shared base matrix B
// into ONE masked SpGEMM:
//
//   stack   — per-query left operands concatenate into disjoint row ranges
//             (sparse::concat_rows), so the batch is a single operand
//             whose row blocks ARE the queries;
//   mask    — per-query output masks concatenate the same way, and
//             mxm_masked_batched resolves each row block's own mask
//             sense/probe, so plain-masked, complement-masked, and
//             unmasked queries share one fused launch;
//   scatter — the stacked result splits back per query
//             (sparse::split_rows).
//
// Determinism contract: the driver computes each stacked row with exactly
// the accumulation the per-query kernel would run (same B rows, same mask
// row, same encounter order), and split_rows rebuilds each result through
// the same canonical-triple path — so batched results are bit-identical to
// per-query execution at any thread count, for every semiring and
// strategy. tests/test_serve.cpp enforces this.

#include <algorithm>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "semiring/concepts.hpp"
#include "sparse/block_diag.hpp"
#include "sparse/masked.hpp"
#include "sparse/matrix.hpp"
#include "sparse/mxm.hpp"
#include "util/parallel.hpp"

namespace hyperspace::serve {

/// Coalescing accounting. All counters are exact and thread-count
/// invariant (the flop counts aggregate the kernel's deterministic
/// MxmMaskStats). In a batch that mixes masked and unmasked queries,
/// flops_kept counts every product that reached an accumulator — unmasked
/// queries' flops included.
struct ServeStats {
  std::uint64_t queries = 0;          ///< queries executed
  std::uint64_t batches = 0;          ///< coalesced batches flushed
  std::uint64_t kernel_launches = 0;  ///< parallel products actually run
  std::uint64_t launches_saved = 0;   ///< queries − kernel_launches
  std::uint64_t rows_coalesced = 0;   ///< stacked rows across all batches
  std::uint64_t flops_kept = 0;       ///< products that ran
  std::uint64_t flops_skipped = 0;    ///< products the masks dropped

  ServeStats& operator+=(const ServeStats& o) {
    queries += o.queries;
    batches += o.batches;
    kernel_launches += o.kernel_launches;
    launches_saved += o.launches_saved;
    rows_coalesced += o.rows_coalesced;
    flops_kept += o.flops_kept;
    flops_skipped += o.flops_skipped;
    return *this;
  }
};

enum class QueryKind : unsigned char { kMtimes, kMtimesMasked, kSelect };

/// One pending query against a shared base matrix B (n × c).
template <semiring::Semiring S>
struct Query {
  using T = typename S::value_type;

  QueryKind kind = QueryKind::kMtimes;
  sparse::Matrix<T> lhs;                  ///< m_q × n
  std::optional<sparse::Matrix<T>> mask;  ///< m_q × c output mask
  sparse::MaskDesc desc{};

  /// C_q = lhs ⊕.⊗ B.
  static Query mtimes(sparse::Matrix<T> a) {
    return {QueryKind::kMtimes, std::move(a), std::nullopt, {}};
  }

  /// C_q⟨M⟩ = lhs ⊕.⊗ B with a per-query fused output mask.
  static Query mtimes_masked(sparse::Matrix<T> a, sparse::Matrix<T> m,
                             sparse::MaskDesc d = {}) {
    return {QueryKind::kMtimesMasked, std::move(a), std::move(m), d};
  }

  /// Row-extraction query: result row i = base row rows[i]. Compiles to an
  /// mtimes whose lhs is a selector (one S::one() per requested row), so
  /// it coalesces with every other query kind.
  static Query select(const std::vector<sparse::Index>& rows,
                      sparse::Index base_nrows) {
    std::vector<sparse::Triple<T>> t;
    t.reserve(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      t.push_back({static_cast<sparse::Index>(i), rows[i], S::one()});
    }
    return {QueryKind::kSelect,
            sparse::Matrix<T>::from_unique_triples(
                static_cast<sparse::Index>(rows.size()), base_nrows,
                std::move(t), S::zero()),
            std::nullopt,
            {}};
  }
};

namespace detail {

template <semiring::Semiring S>
void validate_query(const sparse::Matrix<typename S::value_type>& base,
                    const Query<S>& q) {
  if (q.lhs.ncols() != base.nrows()) {
    throw std::invalid_argument("serve: query inner dimension mismatch");
  }
  if (q.mask && (q.mask->nrows() != q.lhs.nrows() ||
                 q.mask->ncols() != base.ncols())) {
    throw std::invalid_argument("serve: query mask shape mismatch");
  }
}

}  // namespace detail

/// Reference single-query execution — exactly what a batch must reproduce.
template <semiring::Semiring S>
sparse::Matrix<typename S::value_type> run_single(
    const sparse::Matrix<typename S::value_type>& base, const Query<S>& q,
    sparse::MxmStrategy strategy = sparse::MxmStrategy::kAuto,
    sparse::MxmMaskStats* ms = nullptr) {
  detail::validate_query(base, q);
  if (q.mask) {
    return sparse::mxm_masked<S>(q.lhs, base, *q.mask, q.desc, ms, strategy);
  }
  return sparse::mxm<S>(q.lhs, base, strategy);
}

/// Execute every query against `base` as one coalesced launch; results are
/// returned in submission order, each bit-identical to run_single's.
template <semiring::Semiring S>
std::vector<sparse::Matrix<typename S::value_type>> run_batch(
    const sparse::Matrix<typename S::value_type>& base,
    const std::vector<Query<S>>& queries,
    sparse::MxmStrategy strategy = sparse::MxmStrategy::kAuto,
    ServeStats* stats = nullptr) {
  using T = typename S::value_type;
  if (queries.empty()) return {};
  for (const auto& q : queries) detail::validate_query(base, q);

  std::vector<sparse::Index> offsets(queries.size() + 1, 0);
  bool any_mask = false;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    offsets[i + 1] = offsets[i] + queries[i].lhs.nrows();
    any_mask |= queries[i].mask.has_value();
  }

  sparse::MxmMaskStats ms;
  std::vector<sparse::Matrix<T>> results;
  if (queries.size() == 1) {
    // A batch of one skips the stack/scatter copies.
    results.push_back(run_single(base, queries.front(), strategy, &ms));
  } else {
    std::vector<sparse::Block<T>> ablocks;
    ablocks.reserve(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      ablocks.push_back({&queries[i].lhs, offsets[i], 0});
    }
    const auto stacked = sparse::concat_blocks(offsets.back(), base.nrows(),
                                               std::move(ablocks), S::zero());
    // Run the ONE coalesced product, keeping the driver's per-row output
    // slices so per-query results assemble straight from them — no stacked
    // result matrix is ever materialized or re-split.
    std::vector<sparse::detail::RowSlice<T>> rows;
    if (!any_mask) {
      rows = sparse::detail::mxm_dispatch_rows<S>(
          stacked, base, strategy, sparse::detail::NoMask{}, &ms);
    } else {
      // Zero-copy mask path: each query block probes its own mask view in
      // local row coordinates; unmasked blocks get an empty view under a
      // complement sense (absent ⇒ all allowed). No mask entry is copied.
      std::vector<sparse::SparseView<T>> mviews(queries.size());
      std::vector<sparse::MaskDesc> descs(queries.size());
      for (std::size_t i = 0; i < queries.size(); ++i) {
        if (queries[i].mask) {
          descs[i] = queries[i].desc;
          mviews[i] = queries[i].mask->view();
        } else {
          descs[i] = {.complement = true};
        }
      }
      const sparse::detail::MultiMask<T> policy{mviews, offsets, descs};
      rows = sparse::detail::mxm_dispatch_rows<S>(stacked, base, strategy,
                                                  policy, &ms);
    }
    // Scatter: slices are sorted by stacked row, so query q owns the
    // contiguous run in [offsets[q], offsets[q+1]). Each result is built
    // through the same canonical-triple path the per-query kernel uses.
    const auto nq = static_cast<std::ptrdiff_t>(queries.size());
    results.resize(queries.size());
    util::parallel_for(0, nq, 1, [&](std::ptrdiff_t q) {
      const sparse::Index lo = offsets[static_cast<std::size_t>(q)];
      const sparse::Index hi = offsets[static_cast<std::size_t>(q) + 1];
      const auto first = std::lower_bound(
          rows.begin(), rows.end(), lo,
          [](const auto& r, sparse::Index v) { return r.row < v; });
      const auto last = std::lower_bound(
          first, rows.end(), hi,
          [](const auto& r, sparse::Index v) { return r.row < v; });
      std::size_t total = 0;
      for (auto it = first; it != last; ++it) total += it->cols.size();
      std::vector<sparse::Triple<T>> t;
      t.reserve(total);
      for (auto it = first; it != last; ++it) {
        for (std::size_t j = 0; j < it->cols.size(); ++j) {
          t.push_back({it->row - lo, it->cols[j], std::move(it->vals[j])});
        }
      }
      results[static_cast<std::size_t>(q)] =
          sparse::Matrix<T>::from_canonical_triples(hi - lo, base.ncols(), t,
                                                    S::zero());
    });
  }

  if (stats) {
    stats->queries += queries.size();
    stats->batches += 1;
    stats->kernel_launches += 1;
    stats->launches_saved += queries.size() - 1;
    stats->rows_coalesced += static_cast<std::uint64_t>(offsets.back());
    stats->flops_kept += ms.flops_kept;
    stats->flops_skipped += ms.flops_skipped;
  }
  return results;
}

}  // namespace hyperspace::serve
