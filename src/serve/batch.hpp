#pragma once
// Batched query serving — block-diagonal coalescing of concurrent queries.
//
// The ROADMAP north star is serving millions of concurrent users, but a
// kernel library answers one query per launch: every mtimes pays region
// spin-up, per-thread scratch construction, and mask setup alone. This
// header coalesces K concurrent queries against a shared base matrix B
// into ONE masked SpGEMM:
//
//   stack   — per-query left operands concatenate into disjoint row ranges
//             (sparse::concat_rows), so the batch is a single operand
//             whose row blocks ARE the queries;
//   mask    — per-query output masks concatenate the same way, and
//             mxm_masked_batched resolves each row block's own mask
//             sense/probe, so plain-masked, complement-masked, and
//             unmasked queries share one fused launch;
//   scatter — the stacked result splits back per query
//             (sparse::split_rows).
//
// Determinism contract: the driver computes each stacked row with exactly
// the accumulation the per-query kernel would run (same B rows, same mask
// row, same encounter order), and split_rows rebuilds each result through
// the same canonical-triple path — so batched results are bit-identical to
// per-query execution at any thread count, for every semiring and
// strategy. tests/test_serve.cpp enforces this.

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "semiring/concepts.hpp"
#include "sparse/block_diag.hpp"
#include "sparse/delta.hpp"
#include "sparse/masked.hpp"
#include "sparse/matrix.hpp"
#include "sparse/mxm.hpp"
#include "util/parallel.hpp"

namespace hyperspace::serve {

/// Coalescing accounting. All counters are exact and thread-count
/// invariant (the flop counts aggregate the kernel's deterministic
/// MxmMaskStats). flops_kept counts every product that reached an
/// accumulator — unmasked queries' (and unmasked batches') flops included
/// — so the totals are also independent of how admission happened to
/// slice masked and unmasked queries into batches.
struct ServeStats {
  std::uint64_t queries = 0;          ///< queries executed
  std::uint64_t batches = 0;          ///< coalesced batches flushed
  std::uint64_t kernel_launches = 0;  ///< parallel products actually run
  std::uint64_t launches_saved = 0;   ///< queries − kernel_launches
  std::uint64_t rows_coalesced = 0;   ///< stacked rows across all batches
  std::uint64_t flops_kept = 0;       ///< products that ran
  std::uint64_t flops_skipped = 0;    ///< products the masks dropped
  std::uint64_t mutations = 0;        ///< mutation batches applied
  /// Highest base epoch any batch in this row was served at (0 = every
  /// batch ran against pristine, never-mutated bases).
  std::uint64_t epoch = 0;

  ServeStats& operator+=(const ServeStats& o) {
    queries += o.queries;
    batches += o.batches;
    kernel_launches += o.kernel_launches;
    launches_saved += o.launches_saved;
    rows_coalesced += o.rows_coalesced;
    flops_kept += o.flops_kept;
    flops_skipped += o.flops_skipped;
    mutations += o.mutations;
    epoch = std::max(epoch, o.epoch);
    return *this;
  }
};

enum class QueryKind : unsigned char { kMtimes, kMtimesMasked, kSelect };

/// One pending query against a shared base matrix B (n × c).
template <semiring::Semiring S>
struct Query {
  using T = typename S::value_type;

  QueryKind kind = QueryKind::kMtimes;
  sparse::Matrix<T> lhs;                  ///< m_q × n
  std::optional<sparse::Matrix<T>> mask;  ///< m_q × c output mask
  sparse::MaskDesc desc{};
  /// Fold carry (m_q × c): a partial result from an earlier launch over a
  /// PREFIX of the inner dimension. It seeds every row's accumulator before
  /// any product folds, so this launch continues the carry's flat left fold
  /// — the sharded router's gather chains shard launches through this field
  /// and stays bit-identical to one unsharded launch (floats included).
  /// Carry entries are never mask-probed and add no flops to the stats.
  std::optional<sparse::Matrix<T>> carry;
  /// Life-of-a-query trace id (serve/trace.hpp). 0 = untraced. Executors
  /// draw one from Tracer::sample() at submit when the caller left it 0;
  /// the router propagates it into every per-shard sub-query. Purely
  /// observational — results are bit-identical for any value.
  std::uint64_t trace = 0;
  /// Opt this query out of the serve-layer result cache (serve/cache.hpp):
  /// it neither probes nor installs. Queries carrying a fold seed
  /// (`carry`) are never cached regardless of this flag — a carry makes
  /// the answer depend on state outside the (epoch, operands) key.
  bool no_cache = false;

  /// Analytic query: the full product C_q = lhs ⊕.⊗ B.
  static Query analytic(sparse::Matrix<T> a) {
    if (a.ncols() <= 0) {
      throw std::invalid_argument("Query::analytic: lhs has no columns");
    }
    return {QueryKind::kMtimes, std::move(a), std::nullopt, {}};
  }

  /// Masked query: C_q⟨M⟩ = lhs ⊕.⊗ B with a per-query fused output mask.
  /// The mask's sense (keep / complement, value vs structural probe) rides
  /// in `d`. Validated here — mask height must match the lhs — instead of
  /// deep inside run_batch.
  static Query masked(sparse::Matrix<T> a, sparse::Matrix<T> m,
                      sparse::MaskDesc d = {}) {
    if (a.ncols() <= 0) {
      throw std::invalid_argument("Query::masked: lhs has no columns");
    }
    if (m.nrows() != a.nrows()) {
      throw std::invalid_argument("Query::masked: mask height mismatch");
    }
    return {QueryKind::kMtimesMasked, std::move(a), std::move(m), d};
  }

  /// Point lookup: the single base row `key`, as a 1-row selector product
  /// — coalesces with every other query kind.
  static Query point(sparse::Index key, sparse::Index base_nrows) {
    if (key < 0 || key >= base_nrows) {
      throw std::invalid_argument("Query::point: key out of range");
    }
    return select({key}, base_nrows);
  }

  /// Row-extraction query: result row i = base row rows[i]. Compiles to an
  /// analytic product whose lhs is a selector (one S::one() per requested
  /// row). Keys are validated at construction.
  static Query select(const std::vector<sparse::Index>& rows,
                      sparse::Index base_nrows) {
    std::vector<sparse::Triple<T>> t;
    t.reserve(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (rows[i] < 0 || rows[i] >= base_nrows) {
        throw std::invalid_argument("Query::select: row key out of range");
      }
      t.push_back({static_cast<sparse::Index>(i), rows[i], S::one()});
    }
    return {QueryKind::kSelect,
            sparse::Matrix<T>::from_unique_triples(
                static_cast<sparse::Index>(rows.size()), base_nrows,
                std::move(t), S::zero()),
            std::nullopt,
            {}};
  }
};

namespace detail {

template <semiring::Semiring S>
void validate_query(sparse::Index base_nrows, sparse::Index base_ncols,
                    const Query<S>& q) {
  if (q.lhs.ncols() != base_nrows) {
    throw std::invalid_argument("serve: query inner dimension mismatch");
  }
  if (q.mask && (q.mask->nrows() != q.lhs.nrows() ||
                 q.mask->ncols() != base_ncols)) {
    throw std::invalid_argument("serve: query mask shape mismatch");
  }
  if (q.carry && (q.carry->nrows() != q.lhs.nrows() ||
                  q.carry->ncols() != base_ncols)) {
    throw std::invalid_argument("serve: query carry shape mismatch");
  }
}

template <semiring::Semiring S>
void validate_query(const sparse::Matrix<typename S::value_type>& base,
                    const Query<S>& q) {
  validate_query<S>(base.nrows(), base.ncols(), q);
}

/// The shared coalesced core behind run_batch and run_batch_on_stack: run
/// the stacked operand against B under the per-query zero-copy mask
/// policy, then scatter per-query results straight from the driver's row
/// slices. `qcol_off` empty ⇒ one shared column space (single base);
/// otherwise query i's result columns rebase by qcol_off[i] into a
/// qncols[i]-wide matrix. Each row is computed with exactly the
/// accumulation the per-query kernel would run and assembled through the
/// same canonical-triple path, so every result is bit-identical to
/// run_single's — the one copy of the serving determinism contract.
template <semiring::Semiring S>
std::vector<sparse::Matrix<typename S::value_type>> run_stacked(
    const sparse::Matrix<typename S::value_type>& stacked,
    const sparse::detail::BaseView<typename S::value_type>& B,
    std::span<const Query<S>* const> queries,
    std::span<const sparse::Index> offsets,
    std::span<const sparse::Index> qcol_off,
    std::span<const sparse::Index> qncols, sparse::MxmStrategy strategy,
    sparse::MxmMaskStats* ms) {
  using T = typename S::value_type;
  bool any_mask = false;
  bool any_carry = false;
  for (const auto* q : queries) {
    any_mask |= q->mask.has_value();
    any_carry |= q->carry.has_value();
  }

  // Zero-copy carry path: each query block seeds its rows from its own
  // carry view (the shard chain's fold continuation), addressed in local
  // row space, columns shifted into the block's output band. Queries
  // without a carry keep the default (empty) view — no seed.
  std::vector<sparse::SparseView<T>> cviews;
  sparse::detail::MultiCarry<T> cpolicy;
  if (any_carry) {
    cviews.resize(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      if (queries[i]->carry) cviews[i] = queries[i]->carry->view();
    }
    cpolicy = {cviews, offsets, qcol_off};
  }

  std::vector<sparse::detail::RowSlice<T>> rows;
  if (!any_mask) {
    const sparse::detail::NoMask nomask{};
    rows = any_carry
               ? sparse::detail::mxm_dispatch_rows<S>(stacked, B, strategy,
                                                      nomask, ms, cpolicy)
               : sparse::detail::mxm_dispatch_rows<S>(stacked, B, strategy,
                                                      nomask, ms);
  } else {
    // Zero-copy mask path: each query block probes its own mask view in
    // local row (and, multi-base, local column) coordinates; unmasked
    // blocks get an empty view under a complement sense (absent ⇒ all
    // allowed). No mask entry is copied.
    std::vector<sparse::SparseView<T>> mviews(queries.size());
    std::vector<sparse::MaskDesc> descs(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      if (queries[i]->mask) {
        descs[i] = queries[i]->desc;
        mviews[i] = queries[i]->mask->view();
      } else {
        descs[i] = {.complement = true};
      }
    }
    const sparse::detail::MultiMask<T> policy{mviews, offsets, descs,
                                              qcol_off};
    rows = any_carry
               ? sparse::detail::mxm_dispatch_rows<S>(stacked, B, strategy,
                                                      policy, ms, cpolicy)
               : sparse::detail::mxm_dispatch_rows<S>(stacked, B, strategy,
                                                      policy, ms);
  }

  // Scatter: slices are sorted by stacked row, so query q owns the
  // contiguous run in [offsets[q], offsets[q+1]); rows rebase by the
  // query's block offset, columns by its base's column offset. Carry rows
  // whose lhs row the driver never visited (no lhs entries in this launch)
  // pass through verbatim — rows the driver DID visit already contain
  // their carry via the in-kernel seed.
  const auto nq = static_cast<std::ptrdiff_t>(queries.size());
  std::vector<sparse::Matrix<T>> results(queries.size());
  util::parallel_for(0, nq, 1, [&](std::ptrdiff_t q) {
    const auto qi = static_cast<std::size_t>(q);
    const sparse::Index lo = offsets[qi];
    const sparse::Index hi = offsets[qi + 1];
    const sparse::Index coff = qcol_off.empty() ? 0 : qcol_off[qi];
    const auto first = std::lower_bound(
        rows.begin(), rows.end(), lo,
        [](const auto& r, sparse::Index v) { return r.row < v; });
    const auto last = std::lower_bound(
        first, rows.end(), hi,
        [](const auto& r, sparse::Index v) { return r.row < v; });
    const sparse::SparseView<T>* cv =
        any_carry && queries[qi]->carry ? &cviews[qi] : nullptr;
    std::size_t total = 0;
    for (auto it = first; it != last; ++it) total += it->cols.size();
    if (cv) total += static_cast<std::size_t>(cv->nnz());  // upper bound
    std::vector<sparse::Triple<T>> t;
    t.reserve(total);
    std::size_t ci = 0;  // next unmerged carry row
    const auto emit_carry_row = [&](std::size_t ri) {
      const auto rc = cv->row_cols(ri);
      const auto rv = cv->row_vals(ri);
      for (std::size_t j = 0; j < rc.size(); ++j) {
        t.push_back({cv->row_ids[ri], rc[j], rv[j]});
      }
    };
    for (auto it = first; it != last; ++it) {
      const sparse::Index local = it->row - lo;
      if (cv) {
        while (ci < cv->row_ids.size() && cv->row_ids[ci] < local) {
          emit_carry_row(ci);
          ++ci;
        }
        // The driver seeded this row's carry in-kernel; don't re-emit.
        if (ci < cv->row_ids.size() && cv->row_ids[ci] == local) ++ci;
      }
      for (std::size_t j = 0; j < it->cols.size(); ++j) {
        t.push_back({local, it->cols[j] - coff, std::move(it->vals[j])});
      }
    }
    if (cv) {
      for (; ci < cv->row_ids.size(); ++ci) emit_carry_row(ci);
    }
    results[qi] = sparse::Matrix<T>::from_canonical_triples(
        hi - lo, qncols[qi], t, S::zero());
  });
  return results;
}

}  // namespace detail

/// Reference single-query execution — exactly what a batch must reproduce.
/// The BaseView overload is the core; a delta snapshot's patched rows and
/// a plain matrix serve through identical code.
template <semiring::Semiring S>
sparse::Matrix<typename S::value_type> run_single(
    const sparse::detail::BaseView<typename S::value_type>& base,
    const Query<S>& q,
    sparse::MxmStrategy strategy = sparse::MxmStrategy::kAuto,
    sparse::MxmMaskStats* ms = nullptr) {
  detail::validate_query<S>(base.nrows, base.ncols, q);
  if (q.carry) {
    // Seeded product — the shard chain's merge step: the carry continues
    // its fold through this launch. One query, no stacking: the lhs is its
    // own "stacked" operand; the shared core handles seed + pass-through.
    const Query<S>* qp = &q;
    const std::vector<sparse::Index> offsets{0, q.lhs.nrows()};
    const std::vector<sparse::Index> qncols{base.ncols};
    auto rs = detail::run_stacked<S>(q.lhs, base, std::span(&qp, 1), offsets,
                                     {}, qncols, strategy, ms);
    return std::move(rs.front());
  }
  if (q.mask) {
    // The fused masked product (sparse::mxm_masked), routed through the
    // view-aware dispatch so patched rows are consulted.
    const sparse::detail::StructuralMask<typename S::value_type> mask{
        q.mask->view(), q.desc};
    return sparse::detail::mxm_dispatch<S>(q.lhs, base, strategy, mask, ms);
  }
  // Thread the stats through even unmasked: flops_kept counts every
  // product that reached an accumulator, so a batch of one reports the
  // same flops its query would contribute to any larger batch.
  return sparse::detail::mxm_dispatch<S>(q.lhs, base, strategy,
                                         sparse::detail::NoMask{}, ms);
}

template <semiring::Semiring S>
sparse::Matrix<typename S::value_type> run_single(
    const sparse::Matrix<typename S::value_type>& base, const Query<S>& q,
    sparse::MxmStrategy strategy = sparse::MxmStrategy::kAuto,
    sparse::MxmMaskStats* ms = nullptr) {
  const sparse::detail::BaseView<typename S::value_type> bv(base);
  return run_single<S>(bv, q, strategy, ms);
}

template <semiring::Semiring S>
sparse::Matrix<typename S::value_type> run_single(
    const sparse::DeltaSnapshot<typename S::value_type>& snap,
    const Query<S>& q,
    sparse::MxmStrategy strategy = sparse::MxmStrategy::kAuto,
    sparse::MxmMaskStats* ms = nullptr) {
  return run_single<S>(snap.base_view(), q, strategy, ms);
}

/// Execute every query against `base` as one coalesced launch; results are
/// returned in submission order, each bit-identical to run_single's. The
/// BaseView span-of-pointers overload is the core — callers that route a
/// larger query list (the per-base fallback, db::planned_batch via the
/// array layer) coalesce a subset without copying any operand, and a delta
/// snapshot's patched base serves through the identical path.
template <semiring::Semiring S>
std::vector<sparse::Matrix<typename S::value_type>> run_batch(
    const sparse::detail::BaseView<typename S::value_type>& base,
    std::span<const Query<S>* const> queries,
    sparse::MxmStrategy strategy = sparse::MxmStrategy::kAuto,
    ServeStats* stats = nullptr) {
  using T = typename S::value_type;
  if (queries.empty()) return {};
  for (const auto* q : queries) {
    detail::validate_query<S>(base.nrows, base.ncols, *q);
  }

  std::vector<sparse::Index> offsets(queries.size() + 1, 0);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    offsets[i + 1] = offsets[i] + queries[i]->lhs.nrows();
  }

  sparse::MxmMaskStats ms;
  std::vector<sparse::Matrix<T>> results;
  if (queries.size() == 1) {
    // A batch of one skips the stack/scatter copies.
    results.push_back(run_single(base, *queries.front(), strategy, &ms));
  } else {
    std::vector<sparse::Block<T>> ablocks;
    ablocks.reserve(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      ablocks.push_back({&queries[i]->lhs, offsets[i], 0});
    }
    const auto stacked = sparse::concat_blocks(offsets.back(), base.nrows,
                                               std::move(ablocks), S::zero());
    // Run the ONE coalesced product and scatter per-query results straight
    // from the driver's row slices — no stacked result matrix is ever
    // materialized or re-split (detail::run_stacked).
    const std::vector<sparse::Index> qncols(queries.size(), base.ncols);
    results = detail::run_stacked<S>(stacked, base, queries, offsets, {},
                                     qncols, strategy, &ms);
  }

  if (stats) {
    stats->queries += queries.size();
    stats->batches += 1;
    stats->kernel_launches += 1;
    stats->launches_saved += queries.size() - 1;
    stats->rows_coalesced += static_cast<std::uint64_t>(offsets.back());
    stats->flops_kept += ms.flops_kept;
    stats->flops_skipped += ms.flops_skipped;
  }
  return results;
}

template <semiring::Semiring S>
std::vector<sparse::Matrix<typename S::value_type>> run_batch(
    const sparse::Matrix<typename S::value_type>& base,
    std::span<const Query<S>* const> queries,
    sparse::MxmStrategy strategy = sparse::MxmStrategy::kAuto,
    ServeStats* stats = nullptr) {
  const sparse::detail::BaseView<typename S::value_type> bv(base);
  return run_batch<S>(bv, queries, strategy, stats);
}

template <semiring::Semiring S>
std::vector<sparse::Matrix<typename S::value_type>> run_batch(
    const sparse::DeltaSnapshot<typename S::value_type>& snap,
    std::span<const Query<S>* const> queries,
    sparse::MxmStrategy strategy = sparse::MxmStrategy::kAuto,
    ServeStats* stats = nullptr) {
  auto out = run_batch<S>(snap.base_view(), queries, strategy, stats);
  if (stats) stats->epoch = std::max(stats->epoch, snap.epoch);
  return out;
}

template <semiring::Semiring S>
std::vector<sparse::Matrix<typename S::value_type>> run_batch(
    const sparse::Matrix<typename S::value_type>& base,
    const std::vector<Query<S>>& queries,
    sparse::MxmStrategy strategy = sparse::MxmStrategy::kAuto,
    ServeStats* stats = nullptr) {
  std::vector<const Query<S>*> ptrs;
  ptrs.reserve(queries.size());
  for (const auto& q : queries) ptrs.push_back(&q);
  return run_batch<S>(base, ptrs, strategy, stats);
}

template <semiring::Semiring S>
std::vector<sparse::Matrix<typename S::value_type>> run_batch(
    const sparse::DeltaSnapshot<typename S::value_type>& snap,
    const std::vector<Query<S>>& queries,
    sparse::MxmStrategy strategy = sparse::MxmStrategy::kAuto,
    ServeStats* stats = nullptr) {
  std::vector<const Query<S>*> ptrs;
  ptrs.reserve(queries.size());
  for (const auto& q : queries) ptrs.push_back(&q);
  return run_batch<S>(snap, ptrs, strategy, stats);
}

namespace detail {

/// The per-base fallback shared by run_batch_multi and the executor: group
/// (queries, ids) per base and run each group as its own coalesced batch —
/// still batched within a base, never stacked across bases, no operand
/// copied (groups are pointer spans). Results return in input order.
/// `base_of(id)` resolves a base id to its matrix.
template <semiring::Semiring S, typename GetBase>
std::vector<sparse::Matrix<typename S::value_type>> run_batch_per_base(
    GetBase&& base_of, std::span<const Query<S>* const> queries,
    std::span<const std::size_t> ids, sparse::MxmStrategy strategy,
    ServeStats* stats) {
  using T = typename S::value_type;
  std::vector<std::size_t> used(ids.begin(), ids.end());
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  std::vector<sparse::Matrix<T>> out(queries.size());
  for (const auto id : used) {
    std::vector<const Query<S>*> group;
    std::vector<std::size_t> where;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      if (ids[i] == id) {
        group.push_back(queries[i]);
        where.push_back(i);
      }
    }
    auto rs = run_batch<S>(base_of(id), group, strategy, stats);
    for (std::size_t k = 0; k < where.size(); ++k) {
      out[where[k]] = std::move(rs[k]);
    }
  }
  return out;
}

}  // namespace detail

/// Execute queries against a PREBUILT block-diagonal base stack as one
/// coalesced launch: block_of[i] names the stack block (base) query i
/// runs against. This is the steady-state serving path — a long-lived
/// executor stacks its bases ONCE and reuses the stack every flush, so a
/// batch pays O(queries), never O(nnz(bases)). Each query's lhs lands at
/// the column offset of its base's ROW band (lhs columns index base
/// rows), and per-query masks probe in their base's local column space
/// through the two-sided MultiMask — so queries against different bases
/// share ONE fused kernel launch. Results come back in submission order,
/// each in its own base's column space, bit-identical to run_single
/// against that base.
template <semiring::Semiring S>
std::vector<sparse::Matrix<typename S::value_type>> run_batch_on_stack(
    const sparse::BaseStack<typename S::value_type>& stack,
    std::span<const Query<S>* const> queries,
    std::span<const std::size_t> block_of,
    sparse::MxmStrategy strategy = sparse::MxmStrategy::kAuto,
    ServeStats* stats = nullptr) {
  using T = typename S::value_type;
  if (queries.size() != block_of.size()) {
    throw std::invalid_argument("run_batch_on_stack: one block per query");
  }
  if (queries.empty()) return {};
  const std::size_t nblocks = stack.row_offsets.size() - 1;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (block_of[i] >= nblocks) {
      throw std::invalid_argument("run_batch_on_stack: bad block index");
    }
  }

  std::vector<sparse::Index> offsets(queries.size() + 1, 0);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    offsets[i + 1] = offsets[i] + queries[i]->lhs.nrows();
  }

  // Stack the lhs operands: query i's columns shift into its base's row
  // band of the block-diagonal base stack.
  std::vector<sparse::Block<T>> ablocks;
  ablocks.reserve(queries.size());
  std::vector<sparse::Index> qcol_off(queries.size(), 0);
  std::vector<sparse::Index> qncols(queries.size(), 0);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto g = block_of[i];
    if (queries[i]->lhs.ncols() !=
        stack.row_offsets[g + 1] - stack.row_offsets[g]) {
      throw std::invalid_argument(
          "run_batch_on_stack: query inner dimension mismatch");
    }
    qncols[i] = stack.col_offsets[g + 1] - stack.col_offsets[g];
    if (queries[i]->mask &&
        (queries[i]->mask->nrows() != queries[i]->lhs.nrows() ||
         queries[i]->mask->ncols() != qncols[i])) {
      throw std::invalid_argument("run_batch_on_stack: mask shape mismatch");
    }
    if (queries[i]->carry &&
        (queries[i]->carry->nrows() != queries[i]->lhs.nrows() ||
         queries[i]->carry->ncols() != qncols[i])) {
      throw std::invalid_argument("run_batch_on_stack: carry shape mismatch");
    }
    ablocks.push_back({&queries[i]->lhs, offsets[i], stack.row_offsets[g]});
    qcol_off[i] = stack.col_offsets[g];  // result-column rebase per query
  }
  const auto stacked = sparse::concat_blocks(
      offsets.back(), stack.stacked.nrows(), std::move(ablocks), S::zero());

  sparse::MxmMaskStats ms;
  // The two-sided coalesced core: block i probes its own mask view in
  // local row AND column coordinates, and results scatter back into each
  // base's own column space (detail::run_stacked).
  const sparse::detail::BaseView<T> bview(stack.stacked);
  auto results = detail::run_stacked<S>(stacked, bview, queries, offsets,
                                        qcol_off, qncols, strategy, &ms);

  if (stats) {
    stats->queries += queries.size();
    stats->batches += 1;
    stats->kernel_launches += 1;
    stats->launches_saved += queries.size() - 1;
    stats->rows_coalesced += static_cast<std::uint64_t>(offsets.back());
    stats->flops_kept += ms.flops_kept;
    stats->flops_skipped += ms.flops_skipped;
  }
  return results;
}

template <semiring::Semiring S>
std::vector<sparse::Matrix<typename S::value_type>> run_batch_on_stack(
    const sparse::BaseStack<typename S::value_type>& stack,
    const std::vector<Query<S>>& queries,
    std::span<const std::size_t> block_of,
    sparse::MxmStrategy strategy = sparse::MxmStrategy::kAuto,
    ServeStats* stats = nullptr) {
  std::vector<const Query<S>*> ptrs;
  ptrs.reserve(queries.size());
  for (const auto& q : queries) ptrs.push_back(&q);
  return run_batch_on_stack<S>(stack, ptrs, block_of, strategy, stats);
}

/// Execute queries routed at SEVERAL bases as one coalesced launch:
/// base_ids[i] names the base query i runs against. The used bases stack
/// block-diagonally (sparse::stack_bases) and the batch runs through
/// run_batch_on_stack. This one-shot entry point pays the O(nnz(bases))
/// stacking per call — a long-lived server should stack once and call
/// run_batch_on_stack per flush, which is exactly what the Executor's
/// cached-stack path does.
///
/// Fallback: a forced kGustavson strategy whose dense scratch fits each
/// base alone but not the stacked column space falls back to one coalesced
/// batch PER base (still batched within each base) — mirroring how
/// db::planned_batch falls back per-query on incompatible key spaces.
template <semiring::Semiring S>
std::vector<sparse::Matrix<typename S::value_type>> run_batch_multi(
    std::span<const sparse::Matrix<typename S::value_type>* const> bases,
    const std::vector<Query<S>>& queries,
    std::span<const std::size_t> base_ids,
    sparse::MxmStrategy strategy = sparse::MxmStrategy::kAuto,
    ServeStats* stats = nullptr) {
  using T = typename S::value_type;
  if (queries.size() != base_ids.size()) {
    throw std::invalid_argument("run_batch_multi: one base id per query");
  }
  if (queries.empty()) return {};
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (base_ids[i] >= bases.size() || bases[base_ids[i]] == nullptr) {
      throw std::invalid_argument("run_batch_multi: bad base id");
    }
    detail::validate_query(*bases[base_ids[i]], queries[i]);
  }

  // Used bases in ascending id order; position of each id in the stack.
  std::vector<std::size_t> used(base_ids.begin(), base_ids.end());
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  if (used.size() == 1) {
    // One base after all — the single-base path, bit for bit.
    return run_batch(*bases[used.front()], queries, strategy, stats);
  }

  std::vector<const sparse::Matrix<T>*> base_ptrs;
  base_ptrs.reserve(used.size());
  sparse::Index stacked_cols = 0;
  for (const auto id : used) {
    base_ptrs.push_back(bases[id]);
    stacked_cols += bases[id]->ncols();
  }
  if (strategy == sparse::MxmStrategy::kGustavson &&
      stacked_cols > sparse::kMaxGustavsonWidth) {
    // The dense scratch fits per base but not stacked: batch per base.
    std::vector<const Query<S>*> ptrs;
    ptrs.reserve(queries.size());
    for (const auto& q : queries) ptrs.push_back(&q);
    return detail::run_batch_per_base<S>(
        [&bases](std::size_t id) -> const sparse::Matrix<T>& {
          return *bases[id];
        },
        ptrs, base_ids, strategy, stats);
  }

  const auto stack = sparse::stack_bases<T>(base_ptrs, S::zero());
  std::vector<std::size_t> block_of(queries.size(), 0);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    block_of[i] = static_cast<std::size_t>(
        std::lower_bound(used.begin(), used.end(), base_ids[i]) -
        used.begin());
  }
  return run_batch_on_stack<S>(stack, queries, block_of, strategy, stats);
}

}  // namespace hyperspace::serve
