#pragma once
// ResultCache — the serve-layer answer cache with epoch invalidation.
//
// Under Zipfian popularity the same point lookups arrive thousands of
// times per epoch, and every submit pays a full scatter + launch for an
// answer the engine already produced. This header caches settled answers
// keyed on everything that determines them bit for bit:
//
//   (base epoch, lhs fingerprint, mask fingerprint + sense/probe,
//    strategy, query kind)
//
// The fingerprints (sparse/delta.hpp) hash operand CONTENT — exact value
// bytes, format-independent — and the epoch pins the base state, so a key
// match means the cached matrix is byte-identical to what a fresh launch
// would return. That is the cache's one contract, and the corollary of
// the serving determinism contract: **a cache hit is a byte-identical
// replay, never a recomputation** — tests/test_cache.cpp's randomized
// coherence fuzzer enforces it memcmp-exactly across semirings, thread
// counts, shard counts, and mutation interleavings.
//
// Mechanics:
//
//  - **Epoch invalidation, lazily.** mutate() bumps the engine's epoch, so
//    new probes carry the new epoch and simply never match old entries —
//    no global flush, and in-flight batches (which pinned their snapshots
//    at flush) are unaffected. Stale entries age to the LRU tail and are
//    reclaimed there: each probe checks at most two tail entries against
//    the engine-supplied staleness predicate, bounding probe cost while
//    guaranteeing dead bytes drain under any steady probe rate.
//  - **LRU under a byte budget.** Entry size is the exact payload byte
//    count (row ids, column ids, value bytes — via the same ADL hook the
//    fingerprint uses for non-POD values) plus a fixed overhead constant.
//    Installing evicts from the tail until the new entry fits; an entry
//    larger than the whole budget is not installed.
//  - **Negative entries.** Empty answers are cached under the same epoch
//    key (config `negative`, default on): "no such row at epoch E" is as
//    valid — and as invalidatable — as any other answer.
//  - **Carries bypass.** A query with a fold carry depends on state
//    outside the key, so it neither probes nor installs. The router's
//    straddling chain stages all carry (and its shard executors run with
//    the cache forced off), so chains bypass per-stage; the router caches
//    the gathered final answer under its own logical epoch.
//
// Concurrency: one internal mutex. Probes and installs are called from
// engine submit/settle paths that hold no cache-relevant locks, so the
// cache never participates in the engines' lock ordering. Counters
// (hits/misses/evictions) are exported through the process-wide registry
// under `serve.cache.*` as kInvariant — for a fixed submit order they are
// thread-count invariant because probing happens at submit, installing at
// settle, both totally ordered by the engine for any one ticket.

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <utility>

#include "serve/batch.hpp"
#include "sparse/delta.hpp"
#include "util/metrics.hpp"

namespace hyperspace::serve {

namespace detail {

/// Byte-counting "hasher": satisfies the same bytes()/u64() surface as
/// sparse::detail::Fnv1a, so sparse::detail::fp_value (and every ADL
/// fingerprint_append hook written for it) doubles as an exact payload
/// size measure for non-trivially-copyable values.
class ByteCounter {
 public:
  void bytes(const void*, std::size_t n) noexcept { n_ += n; }
  void u64(std::uint64_t) noexcept { n_ += sizeof(std::uint64_t); }
  std::size_t value() const noexcept { return n_; }

 private:
  std::size_t n_ = 0;
};

/// Exact stored-payload size of a view: per non-empty row its id and
/// extent, per entry its column id and value bytes (ADL hook for non-POD
/// values). The same walk the fingerprint does, counting instead of
/// hashing.
template <typename T>
std::size_t payload_bytes(const sparse::SparseView<T>& v) {
  ByteCounter bc;
  for (std::size_t ri = 0; ri < v.row_ids.size(); ++ri) {
    const auto rc = v.row_cols(ri);
    const auto rv = v.row_vals(ri);
    bc.u64(static_cast<std::uint64_t>(v.row_ids[ri]));
    bc.u64(static_cast<std::uint64_t>(rc.size()));
    for (std::size_t j = 0; j < rc.size(); ++j) {
      bc.u64(static_cast<std::uint64_t>(rc[j]));
      sparse::detail::fp_value(bc, rv[j]);
    }
  }
  return bc.value();
}

}  // namespace detail

template <semiring::Semiring S>
class ResultCache {
  using T = typename S::value_type;

 public:
  struct Config {
    /// Byte budget for cached answers; 0 (the default) disables the cache
    /// entirely — probe and install become no-ops.
    std::size_t max_bytes = 0;
    /// Cache empty answers (negative entries) under the same epoch key.
    bool negative = true;
  };

  /// Everything that determines an answer bit for bit. The semiring is
  /// type-level (the cache is templated on S); the strategy rides along
  /// even though results are strategy-invariant by contract — a config
  /// change must never alias a key.
  struct Key {
    std::uint64_t epoch = 0;      ///< base epoch the answer is valid at
    std::size_t base = 0;         ///< base index within the engine
    sparse::Fingerprint lhs;      ///< lhs content fingerprint
    bool has_mask = false;
    sparse::Fingerprint mask;     ///< mask content fingerprint (if any)
    bool complement = false;      ///< MaskDesc sense
    unsigned char probe = 0;      ///< MaskDesc probe policy
    unsigned char kind = 0;       ///< QueryKind
    unsigned char strategy = 0;   ///< MxmStrategy
    friend auto operator<=>(const Key&, const Key&) = default;
  };

  /// All counters are exact; for a fixed submit order they are
  /// thread-count invariant (probe at submit, install at settle).
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;    ///< LRU space evictions
    std::uint64_t stale_drops = 0;  ///< epoch-invalidated entries reclaimed
    std::uint64_t installs = 0;     ///< entries actually inserted
    std::uint64_t bytes = 0;        ///< resident payload bytes
    std::uint64_t entries = 0;      ///< resident entries
  };

  /// A probe hit: a COPY of the cached answer (the entry may be evicted
  /// later; the engine owns its result slots) plus its accounted size.
  struct Hit {
    sparse::Matrix<T> value;
    std::size_t bytes = 0;
  };

  explicit ResultCache(Config cfg = {}) : cfg_(cfg) {}

  bool enabled() const noexcept { return cfg_.max_bytes > 0; }
  const Config& config() const noexcept { return cfg_; }

  /// Can this query use the cache at all? Carries seed the fold with
  /// state outside the key; no_cache is the caller's opt-out.
  static bool cacheable(const Query<S>& q) noexcept {
    return !q.carry && !q.no_cache;
  }

  /// Build the key for `q` against base `base` at `epoch`. O(nnz(lhs) +
  /// nnz(mask)) — the fingerprint walks, same order of work as the
  /// executor's exact admission flop count.
  static Key make_key(std::uint64_t epoch, std::size_t base,
                      const Query<S>& q, unsigned char strategy) {
    Key k;
    k.epoch = epoch;
    k.base = base;
    k.lhs = sparse::fingerprint(q.lhs);
    if (q.mask) {
      k.has_mask = true;
      k.mask = sparse::fingerprint(*q.mask);
      k.complement = q.desc.complement;
      k.probe = static_cast<unsigned char>(q.desc.probe);
    }
    k.kind = static_cast<unsigned char>(q.kind);
    k.strategy = strategy;
    return k;
  }

  /// Look up `k`; on a hit the entry moves to the LRU front and a copy of
  /// the answer returns. `stale(key) -> bool` is the engine's staleness
  /// predicate (is this key's epoch no longer the base's current one?);
  /// each probe reclaims at most two stale entries from the LRU tail.
  template <typename StaleFn>
  std::optional<Hit> probe(const Key& k, StaleFn&& stale) {
    if (!enabled()) return std::nullopt;
    std::lock_guard lock(mu_);
    for (int i = 0; i < 2 && !lru_.empty(); ++i) {
      if (!stale(lru_.back())) break;  // tail is live: nothing has aged out
      drop_tail_locked(/*stale_drop=*/true);
    }
    const auto it = map_.find(k);
    if (it == map_.end()) {
      ++stats_.misses;
      bump_counter("serve.cache.misses");
      return std::nullopt;
    }
    lru_.splice(lru_.begin(), lru_, it->second.pos);
    ++stats_.hits;
    bump_counter("serve.cache.hits");
    return Hit{it->second.value, it->second.bytes};
  }

  /// Install `value` under `k`, evicting from the LRU tail until it fits.
  /// Empty answers are skipped unless `negative` is on; an answer larger
  /// than the whole budget is skipped; a key already present just
  /// refreshes its LRU position (a concurrent duplicate computed the same
  /// bytes — the contract guarantees it).
  void install(const Key& k, const sparse::Matrix<T>& value) {
    if (!enabled()) return;
    const auto v = value.view();
    if (v.nnz() == 0 && !cfg_.negative) return;
    const std::size_t b = kEntryOverhead + detail::payload_bytes(v);
    if (b > cfg_.max_bytes) return;
    std::lock_guard lock(mu_);
    const auto it = map_.find(k);
    if (it != map_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.pos);
      return;
    }
    while (stats_.bytes + b > cfg_.max_bytes && !lru_.empty()) {
      drop_tail_locked(/*stale_drop=*/false);
    }
    lru_.push_front(k);
    map_.emplace(k, Entry{value, b, lru_.begin()});
    stats_.bytes += b;
    ++stats_.entries;
    ++stats_.installs;
    set_bytes_gauge_locked();
  }

  Stats stats() const {
    std::lock_guard lock(mu_);
    return stats_;
  }

  /// Drop every entry (counters keep accumulating). Test/bench hook.
  void clear() {
    std::lock_guard lock(mu_);
    map_.clear();
    lru_.clear();
    stats_.bytes = 0;
    stats_.entries = 0;
    set_bytes_gauge_locked();
  }

 private:
  /// Accounted per-entry overhead beyond the payload walk: shape header,
  /// key, and list/map bookkeeping, rounded to a fixed constant so entry
  /// sizes (and therefore eviction order) are platform-independent.
  static constexpr std::size_t kEntryOverhead = 128;

  struct Entry {
    sparse::Matrix<T> value;
    std::size_t bytes = 0;
    typename std::list<Key>::iterator pos;
  };

  void drop_tail_locked(bool stale_drop) {
    const auto it = map_.find(lru_.back());
    stats_.bytes -= it->second.bytes;
    --stats_.entries;
    map_.erase(it);
    lru_.pop_back();
    if (stale_drop) {
      ++stats_.stale_drops;
    } else {
      ++stats_.evictions;
      bump_counter("serve.cache.evictions");
    }
    set_bytes_gauge_locked();
  }

  /// Registry export. Counters aggregate across every engine in the
  /// process; the bytes gauge is last-write-wins (one engine's residency
  /// at a time — fine for the single-engine common case, documented for
  /// the rest).
  static void bump_counter(const char* name) {
    if (!util::metrics::enabled()) return;
    util::metrics::Registry::instance()
        .counter(name, util::metrics::Stability::kInvariant)
        .inc();
  }
  void set_bytes_gauge_locked() {
    if (!util::metrics::enabled()) return;
    util::metrics::Registry::instance()
        .gauge("serve.cache.bytes", util::metrics::Stability::kTiming)
        .set(static_cast<double>(stats_.bytes));
  }

  Config cfg_;
  mutable std::mutex mu_;
  std::map<Key, Entry> map_;
  std::list<Key> lru_;  ///< front = most recently used
  Stats stats_;
};

}  // namespace hyperspace::serve
