#pragma once
// Executor — the serving loop's front door over run_batch.
//
// Queries are submitted against one shared base matrix and queued; flush()
// slices the queue (in submission order) into coalesced batches under a
// configurable admission policy and runs each batch as a single launch:
//
//   * max_batch_queries — close a batch after this many queries (bounds
//     result latency and stacked-operand size);
//   * max_batch_flops   — close a batch when its accumulated flop count
//     would exceed this budget (bounds time-to-first-result under heavy
//     queries). Flops are counted exactly — the sum over lhs entries of
//     the matching base-row length — not estimated, so admission is
//     deterministic.
//
// The executor is synchronous and deterministic by design: results are
// bit-identical to per-query execution regardless of batch boundaries,
// thread count, or flush timing, so serving-layer batching never changes
// answers. ServeStats aggregates what coalescing saved.

#include <cstdint>
#include <deque>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "serve/batch.hpp"

namespace hyperspace::serve {

template <semiring::Semiring S>
class Executor {
  using T = typename S::value_type;

 public:
  struct Config {
    int max_batch_queries = 64;
    std::uint64_t max_batch_flops = std::uint64_t{1} << 32;
    sparse::MxmStrategy strategy = sparse::MxmStrategy::kAuto;
  };

  explicit Executor(sparse::Matrix<T> base, Config cfg = {})
      : base_(std::move(base)), cfg_(cfg) {
    if (cfg_.max_batch_queries < 1) {
      throw std::invalid_argument("Executor: max_batch_queries must be >= 1");
    }
  }

  const sparse::Matrix<T>& base() const { return base_; }
  const Config& config() const { return cfg_; }
  const ServeStats& stats() const { return stats_; }
  std::size_t pending() const { return pending_.size(); }

  /// Enqueue a query; returns the ticket redeemable via result(). Shape
  /// mismatches throw here — at admission, not at flush.
  std::size_t submit(Query<S> q) {
    detail::validate_query(base_, q);
    pending_flops_.push_back(query_flops(q));
    pending_tickets_.push_back(results_.size());
    pending_.push_back(std::move(q));
    results_.emplace_back();
    return results_.size() - 1;
  }

  /// Drain the queue: admission slices pending queries, in submission
  /// order, into batches; each batch is one coalesced launch.
  void flush() {
    std::size_t i = 0;
    while (i < pending_.size()) {
      std::size_t j = i;
      std::uint64_t flops = 0;
      while (j < pending_.size() &&
             j - i < static_cast<std::size_t>(cfg_.max_batch_queries) &&
             (j == i || flops + pending_flops_[j] <= cfg_.max_batch_flops)) {
        flops += pending_flops_[j];
        ++j;
      }
      std::vector<Query<S>> batch;
      batch.reserve(j - i);
      for (std::size_t k = i; k < j; ++k) {
        batch.push_back(std::move(pending_[k]));
      }
      auto rs = run_batch(base_, batch, cfg_.strategy, &stats_);
      for (std::size_t k = i; k < j; ++k) {
        results_[pending_tickets_[k]] = std::move(rs[k - i]);
      }
      i = j;
    }
    pending_.clear();
    pending_flops_.clear();
    pending_tickets_.clear();
  }

  /// The result for a ticket; flushes pending work if it is not ready yet.
  /// The reference stays valid across later submit()/flush() calls
  /// (results live in a deque, which never relocates settled elements).
  const sparse::Matrix<T>& result(std::size_t ticket) {
    if (ticket >= results_.size()) {
      throw std::out_of_range("Executor: unknown ticket");
    }
    if (!results_[ticket]) flush();
    return *results_[ticket];
  }

 private:
  /// Exact flop count of q against the base: Σ over lhs entries of the
  /// matching base-row length. O(nnz(lhs) · log) — cheap next to the
  /// product itself, and what makes the flop-budget admission exact.
  std::uint64_t query_flops(const Query<S>& q) const {
    const auto b = base_.view();
    const bool b_full = b.n_nonempty_rows() == b.nrows;
    const auto a = q.lhs.view();
    std::uint64_t flops = 0;
    for (std::size_t ri = 0; ri < a.row_ids.size(); ++ri) {
      for (const sparse::Index k : a.row_cols(ri)) {
        const auto bk = sparse::detail::find_row(b, k, b_full);
        if (bk >= 0) {
          flops += b.row_cols(static_cast<std::size_t>(bk)).size();
        }
      }
    }
    return flops;
  }

  sparse::Matrix<T> base_;
  Config cfg_;
  ServeStats stats_;
  std::vector<Query<S>> pending_;
  std::vector<std::uint64_t> pending_flops_;
  std::vector<std::size_t> pending_tickets_;
  std::deque<std::optional<sparse::Matrix<T>>> results_;
};

}  // namespace hyperspace::serve
