#pragma once
// Executor — the serving loop's front door over run_batch /
// run_batch_on_stack.
//
// Queries are submitted against one of several base matrices the executor
// owns, tagged with a tenant id, and queued per tenant. A flush drains the
// queues into coalesced batches under the admission policy and runs each
// batch as a single launch — queries against *different* bases still share
// one launch via the block-diagonal base stack built ONCE at construction
// (run_batch_on_stack, so a flush pays O(queries), never O(nnz(bases))):
//
//   * max_batch_queries  — close a batch after this many queries (bounds
//     result latency and stacked-operand size);
//   * max_batch_flops    — close a batch when its accumulated flop count
//     would exceed this budget. Flops are counted exactly — the sum over
//     lhs entries of the matching base-row length — so admission is
//     deterministic;
//   * tenant_flop_quota  — per-tenant flop budget *within one batch*.
//     Admission drains tenants round-robin (ascending tenant id, rotating
//     the starting tenant batch to batch), and a tenant whose next query
//     would blow its quota is deferred to a later batch while other
//     tenants keep flowing — one heavy tenant cannot starve point lookups.
//     The first query of a batch is always admitted, so a zero quota (and
//     a zero batch budget) still makes progress, one query per batch.
//
// Synchronous mode (default): the caller drives flush() (or lets wait()
// do it). Async mode (`Config.async`): a dedicated background thread
// drains the queue whenever the queue depth reaches `flush_queue_depth`
// or the `flush_interval` deadline passes, so callers submit() and later
// wait()/poll() a ticket — results are futures backed by the ticketed
// deque. shutdown() (also run by the destructor) retires the flush
// thread and, by default, drains every queued-but-unflushed ticket.
//
// Bases are updatable (sparse/delta.hpp): mutate(tenant, base, ops)
// applies an UpdateBatch to a base's delta and publishes the next epoch.
// Every flushed batch pins the snapshots of the bases it touches FIRST,
// then runs — so an in-flight batch finishes on the epoch it started on
// while later submits see the new one, and a query's answer is always
// bit-identical to a from-scratch rebuild of its base at that epoch.
//
// Whatever the mode, batch boundaries, tenant mix, flush timing, and
// thread count NEVER change an answer: every result is bit-identical to
// running its query alone, synchronously. ServeStats aggregates what
// coalescing saved; TenantStats splits the accounting per tenant.

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/admission.hpp"
#include "serve/batch.hpp"
#include "serve/cache.hpp"
#include "serve/service.hpp"
#include "serve/trace.hpp"
#include "util/metrics.hpp"

namespace hyperspace::serve {

/// Per-tenant split of the serving accounting. queries/rows/flops are
/// exact and independent of flush timing and thread count; batches and
/// deferrals describe how admission actually sliced the queue (they depend
/// on flush timing in async mode).
struct TenantStats {
  std::uint64_t queries = 0;    ///< queries executed for this tenant
  std::uint64_t rows = 0;       ///< lhs rows executed
  std::uint64_t flops = 0;      ///< exact flops admitted (Σ base-row lengths)
  std::uint64_t batches = 0;    ///< batches this tenant participated in
  std::uint64_t deferrals = 0;  ///< batches where the quota deferred this tenant
  std::uint64_t mutations = 0;  ///< mutation batches this tenant applied
  /// Result-cache split (serve/cache.hpp). A cache hit settles at submit
  /// and never executes, so it counts here and NOT in queries/rows/flops
  /// — those describe work the kernels actually did.
  std::uint64_t cache_hits = 0;    ///< queries answered from the cache
  std::uint64_t cache_misses = 0;  ///< cacheable queries that missed
  std::uint64_t cache_bytes = 0;   ///< answer bytes served from the cache
};

template <semiring::Semiring S>
class Executor : public Service<S> {
  using T = typename S::value_type;

 public:
  struct Config {
    int max_batch_queries = 64;
    std::uint64_t max_batch_flops = std::uint64_t{1} << 32;
    /// Per-tenant flop budget within one batch (~0 = unlimited).
    std::uint64_t tenant_flop_quota = ~std::uint64_t{0};
    sparse::MxmStrategy strategy = sparse::MxmStrategy::kAuto;
    /// Spawn the background flush thread. Leave false for single-threaded
    /// (no-extra-thread) builds: every API below then runs synchronously
    /// on the calling thread, same results bit for bit.
    bool async = false;
    int flush_queue_depth = 64;  ///< async: flush when this many are queued
    std::chrono::milliseconds flush_interval{2};  ///< async: flush deadline
    /// Adaptive admission (serve/admission.hpp): when set, every flushed
    /// batch's exact (flops, latency) sample drives `max_batch_flops` and
    /// `flush_queue_depth` toward this per-batch latency target. Zero (the
    /// default) keeps both limits static. Results are unaffected either
    /// way — admission only re-slices the queue.
    std::chrono::microseconds latency_target{0};
    /// Adaptive admission steers by the p95 of observed ns-per-flop
    /// instead of the EWMA mean (see AdmissionController::Config::use_p95).
    /// Only meaningful with latency_target set.
    bool admission_use_p95 = false;
    /// Draw a trace id at submit for queries that arrive without one
    /// (serve/trace.hpp sampling). The sharded router disables this on its
    /// shard executors so each top-level query is sampled exactly once, at
    /// the router.
    bool trace_sampling = true;
    /// Delta-base tuning (buffer size, cascade fanout, compaction
    /// threshold, background compactor). Applied to every base.
    sparse::DeltaConfig delta{};
    /// Result-cache byte budget (serve/cache.hpp); 0 (default) disables
    /// caching. Entries are keyed per base epoch, so mutate() invalidates
    /// without flushing.
    std::size_t cache_bytes = 0;
    /// Cache empty answers too (negative entries). Only meaningful with
    /// cache_bytes > 0.
    bool cache_negative = true;
    /// Metric-name infix for this executor's admission gauges:
    /// "serve.admission.<scope>max_batch_flops" etc. Empty (default) for
    /// a standalone executor; the sharded router sets "shard<N>." on each
    /// shard executor so the N gauge sets never collide.
    std::string gauge_scope;
  };

  explicit Executor(sparse::Matrix<T> base, Config cfg = {})
      : Executor(make_one(std::move(base)), cfg) {}

  explicit Executor(std::vector<sparse::Matrix<T>> bases, Config cfg = {})
      : cfg_(cfg), cache_({cfg.cache_bytes, cfg.cache_negative}) {
    if (bases.empty()) {
      throw std::invalid_argument("Executor: at least one base required");
    }
    if (cfg_.max_batch_queries < 1) {
      throw std::invalid_argument("Executor: max_batch_queries must be >= 1");
    }
    if (cfg_.async && cfg_.flush_queue_depth < 1) {
      throw std::invalid_argument("Executor: flush_queue_depth must be >= 1");
    }
    if (cfg_.strategy == sparse::MxmStrategy::kGustavson) {
      // Fail fast: a base too wide for the dense scratch would otherwise
      // only surface as a kernel throw at flush time.
      for (const auto& b : bases) {
        if (b.ncols() > sparse::kMaxGustavsonWidth) {
          throw std::invalid_argument(
              "Executor: base too wide for the kGustavson dense scratch");
        }
      }
    }
    live_ = {cfg_.max_batch_flops, cfg_.flush_queue_depth};
    if (cfg_.latency_target.count() > 0) {
      ctrl_ = AdmissionController({.latency_target = cfg_.latency_target,
                                   .use_p95 = cfg_.admission_use_p95},
                                  live_);
    }
    // Wrap every base in a DeltaBase: the ctor warms the view cache on
    // this thread (submit() computes admission flops and the flush thread
    // runs kernels concurrently, so the lazily materialized row-id cache
    // must not be built under a race) and publishes the epoch-0 snapshot.
    bases_.reserve(bases.size());
    for (auto& b : bases) {
      bases_.push_back(std::make_unique<sparse::DeltaBase<S>>(std::move(b),
                                                              cfg_.delta));
    }
    if (bases_.size() > 1) {
      // Stack the bases block-diagonally ONCE: every mixed-base flush at
      // epoch 0 then runs on the cached stack (run_batch_on_stack), paying
      // O(queries) per batch instead of O(nnz(bases)). Once a base has
      // been mutated its stacked block is stale, so mixed batches touching
      // a mutated base fall back to per-base launches (run_admitted).
      std::vector<const sparse::Matrix<T>*> ptrs;
      ptrs.reserve(bases_.size());
      for (const auto& b : bases_) {
        ptrs.push_back(&b->main_matrix());
        stacked_cols_ += b->ncols();
      }
      stack_ = sparse::stack_bases<T>(ptrs, S::zero());
      (void)stack_.stacked.view();
    }
    if (cfg_.async) {
      flusher_running_ = true;
      flusher_ = std::thread([this] { flush_loop(); });
    }
  }

  ~Executor() { shutdown(); }
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Base `i`'s compacted main matrix (the delta is not folded in). The
  /// reference is valid until the base's next compaction.
  const sparse::Matrix<T>& base(std::size_t i = 0) const {
    return bases_.at(i)->main_matrix();
  }
  /// Base `i`'s delta wrapper — snapshot()/epoch()/compact() live there.
  sparse::DeltaBase<S>& delta_base(std::size_t i = 0) {
    return *bases_.at(i);
  }
  const sparse::DeltaBase<S>& delta_base(std::size_t i = 0) const {
    return *bases_.at(i);
  }
  std::size_t n_bases() const { return bases_.size(); }
  const Config& config() const { return cfg_; }

  /// Aggregate accounting snapshot (safe against a concurrent flush).
  ServeStats stats() const override {
    std::lock_guard lock(mu_);
    return stats_;
  }

  /// Base 0's current published epoch (0 = never mutated).
  std::uint64_t epoch() const override { return bases_.front()->epoch(); }
  /// Base `i`'s current published epoch.
  std::uint64_t base_epoch(std::size_t i) const {
    return bases_.at(i)->epoch();
  }

  /// Per-tenant accounting snapshot; default-constructed for an unknown id.
  TenantStats tenant_stats(TenantId tenant) const {
    std::lock_guard lock(mu_);
    const auto it = tstats_.find(tenant);
    return it == tstats_.end() ? TenantStats{} : it->second;
  }

  /// Every tenant that has ever submitted, ascending.
  std::vector<TenantId> tenants() const {
    std::lock_guard lock(mu_);
    std::vector<TenantId> out;
    out.reserve(tstats_.size());
    for (const auto& [t, _] : tstats_) out.push_back(t);
    return out;
  }

  /// Queries queued but not yet admitted to a batch.
  std::size_t pending() const override {
    std::lock_guard lock(mu_);
    return n_pending_;
  }

  /// The admission limits currently in force. Equal to the configured
  /// statics unless `latency_target` enabled the adaptive controller.
  AdmissionController::Limits admission_limits() const {
    std::lock_guard lock(mu_);
    return live_;
  }

  /// Result-cache accounting (zeroes when the cache is disabled).
  typename ResultCache<S>::Stats cache_stats() const { return cache_.stats(); }

  /// Enqueue a query for `tenant` against base `base`; returns the ticket
  /// redeemable via wait()/poll(). Shape mismatches throw here — at
  /// admission, not at flush.
  std::size_t submit(TenantId tenant, std::size_t base, Query<S> q) {
    if (base >= bases_.size()) {
      throw std::out_of_range("Executor: unknown base index");
    }
    detail::validate_query<S>(bases_[base]->nrows(), bases_[base]->ncols(), q);
    auto& tracer = trace::Tracer::instance();
    if (cfg_.trace_sampling && q.trace == 0) q.trace = tracer.sample();
    trace::ScopedSpan span(trace::Stage::kSubmit, q.trace, q.trace != 0);
    // Result-cache probe, keyed on the base's CURRENT epoch. A hit settles
    // the ticket right here — no queue entry, no admission, no launch; the
    // cached bytes are what a launch would have produced (the entry was
    // installed at this exact epoch). A mutate() racing this submit may
    // serve the pre-mutation epoch, which is the same outcome as the query
    // having been flushed just before the mutation — admissible under the
    // epoch contract.
    std::optional<typename ResultCache<S>::Key> ckey;
    if (cache_.enabled() && ResultCache<S>::cacheable(q)) {
      trace::ScopedSpan probe_span(trace::Stage::kCacheProbe, q.trace,
                                   q.trace != 0);
      auto key = ResultCache<S>::make_key(
          bases_[base]->epoch(), base, q,
          static_cast<unsigned char>(cfg_.strategy));
      auto hit = cache_.probe(key, [this](const auto& k) {
        return k.epoch != bases_[k.base]->epoch();
      });
      probe_span.args(hit ? 1 : 0, hit ? hit->bytes : 0);
      if (hit) {
        const std::uint64_t tr2 = q.trace;
        std::lock_guard lock(mu_);
        if (stopping_) {
          throw std::runtime_error("Executor: submit after shutdown");
        }
        const std::size_t ticket = results_.size();
        results_.emplace_back(std::move(hit->value));
        traces_.push_back(tr2);
        auto& ts = tstats_[tenant];
        ++ts.cache_hits;
        ts.cache_bytes += hit->bytes;
        return ticket;
      }
      ckey = std::move(key);  // install at settle, at the served epoch
    }
    const std::uint64_t flops = query_flops(base, q);
    const auto rows = static_cast<std::uint64_t>(q.lhs.nrows());
    span.args(flops, rows);
    // One timestamp serves both the tenant-queue span and the query
    // latency histogram; 0 means "don't measure this one".
    const std::uint64_t enq_ns =
        (q.trace != 0 || util::metrics::enabled()) ? tracer.now_ns() : 0;
    const std::uint64_t tr = q.trace;
    std::unique_lock lock(mu_);
    if (stopping_) {
      throw std::runtime_error("Executor: submit after shutdown");
    }
    const std::size_t ticket = results_.size();
    results_.emplace_back();
    traces_.push_back(tr);
    queues_[tenant].push_back(Pending{std::move(q), base, ticket, flops, rows,
                                      tenant, tr, enq_ns, std::move(ckey)});
    ++n_pending_;
    (void)tstats_[tenant];  // tenant becomes visible on first submit
    if (queues_[tenant].back().ckey) ++tstats_[tenant].cache_misses;
    const bool trigger =
        flusher_running_ &&
        n_pending_ >= static_cast<std::size_t>(live_.flush_queue_depth);
    lock.unlock();
    if (trigger) queue_cv_.notify_all();
    return ticket;
  }

  std::size_t submit(TenantId tenant, Query<S> q) override {
    return submit(tenant, 0, std::move(q));
  }
  std::size_t submit(Query<S> q) { return submit(0, 0, std::move(q)); }

  /// Apply `ops` to base `base_idx` (in order, last write per key wins)
  /// and return the epoch the batch created. Publication is atomic:
  /// batches flushed before this call serve the old epoch, batches
  /// flushed after serve the new one, and a flush racing this call gets
  /// exactly one of the two — never a half-applied batch.
  std::uint64_t mutate(TenantId tenant, std::size_t base_idx,
                       const sparse::UpdateBatch<T>& ops) {
    if (base_idx >= bases_.size()) {
      throw std::out_of_range("Executor: unknown base index");
    }
    {
      std::lock_guard lock(mu_);
      if (stopping_) {
        throw std::runtime_error("Executor: mutate after shutdown");
      }
    }
    const std::uint64_t e = bases_[base_idx]->mutate(ops);
    {
      std::lock_guard lock(mu_);
      ++stats_.mutations;
      ++tstats_[tenant].mutations;
    }
    return e;
  }

  std::uint64_t mutate(TenantId tenant,
                       const sparse::UpdateBatch<T>& ops) override {
    return mutate(tenant, std::size_t{0}, ops);
  }
  using Service<S>::mutate;  // mutate(ops) → anonymous tenant

  /// Drain the whole queue now, on the calling thread. In async mode this
  /// is also what the background thread runs on its triggers; concurrent
  /// drains serialize, so calling it alongside the flusher is safe.
  void flush() override {
    {
      std::lock_guard lock(mu_);
      if (stopping_) return;  // shutdown owns the final drain decision
    }
    flush_impl();
  }

  /// Block until the ticket's result exists and return it. The reference
  /// stays valid across later submit()/flush() calls (results live in a
  /// deque, which never relocates settled elements). In sync mode this
  /// flushes on the calling thread; in async mode it nudges the flush
  /// thread and waits. Throws if the ticket was dropped by a non-draining
  /// shutdown.
  const sparse::Matrix<T>& wait(std::size_t ticket) override {
    trace::ScopedSpan span;
    {
      std::unique_lock lock(mu_);
      if (ticket >= results_.size()) {
        throw std::out_of_range("Executor: unknown ticket");
      }
      span.start(trace::Stage::kWait, traces_[ticket], traces_[ticket] != 0);
      if (results_[ticket]) return *results_[ticket];
      rethrow_if_failed_locked(ticket);
      if (terminated_) {
        throw std::runtime_error("Executor: ticket dropped at shutdown");
      }
      if (flusher_running_) {
        force_flush_ = true;
        queue_cv_.notify_all();
        done_cv_.wait(lock, [&] {
          return results_[ticket].has_value() || failed_.count(ticket) > 0 ||
                 terminated_ || !flusher_running_;
        });
        if (results_[ticket]) return *results_[ticket];
        rethrow_if_failed_locked(ticket);
        if (terminated_) {
          throw std::runtime_error("Executor: ticket dropped at shutdown");
        }
        // Flusher retired mid-wait (shutdown in flight): fall through and
        // resolve synchronously.
      }
    }
    flush();
    std::unique_lock lock(mu_);
    // An in-flight drain on another thread may still be writing results.
    done_cv_.wait(lock, [&] {
      return results_[ticket].has_value() || failed_.count(ticket) > 0 ||
             terminated_;
    });
    if (!results_[ticket]) {
      rethrow_if_failed_locked(ticket);
      throw std::runtime_error("Executor: ticket dropped at shutdown");
    }
    return *results_[ticket];
  }

  /// Non-blocking probe: the settled result, or nullptr while pending.
  const sparse::Matrix<T>* poll(std::size_t ticket) const {
    std::lock_guard lock(mu_);
    if (ticket >= results_.size()) {
      throw std::out_of_range("Executor: unknown ticket");
    }
    rethrow_if_failed_locked(ticket);
    return results_[ticket] ? &*results_[ticket] : nullptr;
  }
  const sparse::Matrix<T>* poll(std::size_t ticket) override {
    return std::as_const(*this).poll(ticket);
  }

  /// Retire the flush thread (async mode) and finalize the executor. With
  /// drain = true (the default, and what the destructor runs) every
  /// queued-but-unflushed ticket is resolved first; with drain = false
  /// unflushed queries are dropped and their wait() throws. Idempotent;
  /// submit() after shutdown throws.
  void shutdown(bool drain = true) override {
    {
      std::lock_guard lock(mu_);
      if (stopping_) return;
      stopping_ = true;
    }
    queue_cv_.notify_all();
    if (flusher_.joinable()) flusher_.join();
    if (drain) {
      // Exception-safe drain: a batch that throws has already routed its
      // failure to its tickets, so swallow it and keep draining the rest —
      // the epilogue below must always run (a throw escaping here would
      // std::terminate from the destructor and strand every waiter short
      // of the terminated_ signal).
      for (;;) {
        try {
          flush_impl();
          break;  // queue fully drained
        } catch (...) {
          // The failed batch left the queue; retry the remainder.
        }
      }
    }
    {
      std::lock_guard lock(mu_);
      queues_.clear();
      n_pending_ = 0;
      terminated_ = true;
    }
    done_cv_.notify_all();
  }

 private:
  struct Pending {
    Query<S> q;
    std::size_t base = 0;
    std::size_t ticket = 0;
    std::uint64_t flops = 0;
    std::uint64_t rows = 0;
    TenantId tenant = 0;
    std::uint64_t trace = 0;   ///< copy of q.trace, survives the move-out
    std::uint64_t enq_ns = 0;  ///< submit timestamp (0 = unmeasured)
    /// Probe key of a cacheable miss: the settled answer installs under
    /// it (re-stamped with the epoch the batch actually pinned).
    std::optional<typename ResultCache<S>::Key> ckey;
  };

  /// Rethrow the flush failure owned by `ticket`, if any (mu_ held).
  void rethrow_if_failed_locked(std::size_t ticket) const {
    const auto it = failed_.find(ticket);
    if (it != failed_.end()) std::rethrow_exception(it->second);
  }

  static std::vector<sparse::Matrix<T>> make_one(sparse::Matrix<T> base) {
    std::vector<sparse::Matrix<T>> v;
    v.push_back(std::move(base));
    return v;
  }

  /// Exact flop count of q against base `bi` at its current epoch: Σ over
  /// lhs entries of the matching base-row length (delta overlay included).
  /// O(nnz(lhs) · log) — cheap next to the product itself, and what makes
  /// the flop-budget admission exact.
  std::uint64_t query_flops(std::size_t bi, const Query<S>& q) const {
    const auto snap = bases_[bi]->snapshot();
    const auto bv = snap->base_view();
    const auto a = q.lhs.view();
    std::uint64_t flops = 0;
    for (std::size_t ri = 0; ri < a.row_ids.size(); ++ri) {
      for (const sparse::Index k : a.row_cols(ri)) {
        flops += static_cast<std::uint64_t>(bv.row_nnz(k));
      }
    }
    return flops;
  }

  /// Admission under mu_: one batch, drained round-robin across tenants in
  /// ascending id order starting after the last tenant served, each pass
  /// taking at most one query per tenant. Closes on max_batch_queries /
  /// max_batch_flops / quota exhaustion; the first query of a batch is
  /// always admitted so zero budgets still make progress.
  std::vector<Pending> next_batch_locked() {
    std::vector<Pending> batch;
    if (n_pending_ == 0) return batch;
    std::vector<TenantId> ids;
    ids.reserve(queues_.size());
    for (const auto& [t, dq] : queues_) {
      if (!dq.empty()) ids.push_back(t);
    }
    if (ids.empty()) return batch;
    std::size_t start = 0;
    while (start < ids.size() && ids[start] < rr_cursor_) ++start;
    if (start == ids.size()) start = 0;

    const auto maxq = static_cast<std::size_t>(cfg_.max_batch_queries);
    std::uint64_t batch_flops = 0;
    std::map<TenantId, std::uint64_t> used;
    std::map<TenantId, bool> quota_deferred;
    bool progress = true;
    while (progress && batch.size() < maxq) {
      progress = false;
      for (std::size_t k = 0; k < ids.size() && batch.size() < maxq; ++k) {
        const TenantId t = ids[(start + k) % ids.size()];
        auto& dq = queues_[t];
        if (dq.empty()) continue;
        const auto& head = dq.front();
        if (!batch.empty()) {
          const bool over_quota =
              used[t] + head.flops > cfg_.tenant_flop_quota;
          if (over_quota) quota_deferred[t] = true;
          if (over_quota ||
              batch_flops + head.flops > live_.max_batch_flops) {
            continue;
          }
        }
        batch_flops += head.flops;
        used[t] += head.flops;
        batch.push_back(std::move(dq.front()));
        dq.pop_front();
        --n_pending_;
        rr_cursor_ = t + 1;
        progress = true;
      }
    }
    for (const auto& [t, _] : quota_deferred) {
      if (!queues_[t].empty()) ++tstats_[t].deferrals;
    }
    return batch;
  }

  /// One full drain: admit → run (kernel outside mu_, so submits keep
  /// flowing) → settle results, repeated until the queue is empty. Whole
  /// drains serialize on flush_mu_.
  void flush_impl() {
    std::lock_guard flush_lock(flush_mu_);
    auto& tracer = trace::Tracer::instance();
    trace::ScopedSpan flush_span(trace::Stage::kFlush, 0, tracer.enabled());
    std::uint64_t drained = 0;
    while (true) {
      std::vector<Pending> batch;
      {
        trace::ScopedSpan adm(trace::Stage::kAdmission, 0, tracer.enabled());
        std::lock_guard lock(mu_);
        batch = next_batch_locked();
        adm.args(batch.size());
      }
      if (batch.empty()) {
        flush_span.args(drained);
        return;
      }
      drained += batch.size();
      if (tracer.enabled()) {
        // The tenant-queue wait ends here, at admission. Each span lands
        // on its query's own lane (cross-thread duration: enqueued on the
        // submitter, admitted here). Guard against a tracer reconfigure
        // between the two timestamps.
        const std::uint64_t now = tracer.now_ns();
        for (const auto& p : batch) {
          if (p.trace != 0 && p.enq_ns != 0 && p.enq_ns <= now) {
            tracer.record(trace::Stage::kTenantQueue, p.trace,
                          trace::query_lane(p.trace), p.enq_ns,
                          now - p.enq_ns, p.flops, p.tenant);
          }
        }
      }
      try {
        run_admitted(batch);
      } catch (...) {
        // Route the failure to the batch's tickets so their wait()/poll()
        // rethrows it, then propagate: synchronous callers see the throw,
        // the background loop catches it and keeps serving later batches.
        {
          std::lock_guard lock(mu_);
          for (const auto& p : batch) {
            failed_.emplace(p.ticket, std::current_exception());
          }
        }
        done_cv_.notify_all();
        throw;
      }
    }
  }

  void run_admitted(std::vector<Pending>& batch) {
    std::vector<Query<S>> qs;
    std::vector<std::size_t> ids;
    qs.reserve(batch.size());
    ids.reserve(batch.size());
    bool mixed = false;
    std::uint64_t batch_flops = 0;
    for (auto& p : batch) {
      qs.push_back(std::move(p.q));
      ids.push_back(p.base);
      batch_flops += p.flops;
      mixed |= p.base != batch.front().base;
    }
    // Pin the involved bases' snapshots FIRST: the whole batch runs on
    // the epochs captured here even if mutations land mid-run, and the
    // shared_ptrs keep those epochs alive past any concurrent compaction.
    std::vector<std::shared_ptr<const sparse::DeltaSnapshot<T>>> snaps(
        bases_.size());
    std::uint64_t max_epoch = 0;
    bool all_epoch0 = true;
    for (const auto id : ids) {
      if (!snaps[id]) {
        snaps[id] = bases_[id]->snapshot();
        max_epoch = std::max(max_epoch, snaps[id]->epoch);
        all_epoch0 &= snaps[id]->epoch == 0;
      }
    }
    const bool telemetry = util::metrics::enabled();
    const bool timed = ctrl_.enabled() || telemetry;
    const auto t0 = timed ? std::chrono::steady_clock::now()
                          : std::chrono::steady_clock::time_point{};
    trace::ScopedSpan kernel_span(trace::Stage::kKernel, 0,
                                  trace::Tracer::instance().enabled());
    kernel_span.args(batch_flops, batch.size());
    ServeStats ss;
    std::vector<sparse::Matrix<T>> rs;
    if (!mixed) {
      // Single-base batch: the plain coalesced path, bit for bit.
      rs = run_batch(*snaps[ids.front()], qs, cfg_.strategy, &ss);
    } else if (!all_epoch0 ||
               (cfg_.strategy == sparse::MxmStrategy::kGustavson &&
                stacked_cols_ > sparse::kMaxGustavsonWidth)) {
      // Per-base fallback: either an involved base has been mutated (the
      // construction-time stack is stale for it), or a forced dense
      // scratch fits per base (checked at construction) but not stacked.
      // Group the batch per base and run each group as its own coalesced
      // launch — never restack, never widen the scratch.
      std::vector<const Query<S>*> ptrs;
      ptrs.reserve(qs.size());
      for (const auto& q : qs) ptrs.push_back(&q);
      rs = detail::run_batch_per_base<S>(
          [&snaps](std::size_t id) -> const sparse::DeltaSnapshot<T>& {
            return *snaps[id];
          },
          ptrs, ids, cfg_.strategy, &ss);
    } else {
      // Mixed-base batch, every involved base still at epoch 0: run on
      // the stack cached at construction — ONE launch.
      rs = run_batch_on_stack<S>(stack_, qs, ids, cfg_.strategy, &ss);
    }
    ss.epoch = std::max(ss.epoch, max_epoch);
    kernel_span.finish();
    if (cache_.enabled()) {
      // Install every cacheable answer under the epoch the batch actually
      // pinned (a mutation may have landed between submit and flush; the
      // snapshot epoch is the truth the bytes were computed at). Outside
      // mu_ — the cache has its own lock and install copies the matrix.
      for (std::size_t k = 0; k < batch.size(); ++k) {
        if (!batch[k].ckey) continue;
        auto key = *batch[k].ckey;
        key.epoch = snaps[batch[k].base]->epoch;
        cache_.install(key, rs[k]);
      }
    }
    const auto dt = timed ? std::chrono::steady_clock::now() - t0
                          : std::chrono::steady_clock::duration{};
    if (telemetry) {
      namespace hm = util::metrics;
      static auto& h_batch =
          hm::Registry::instance().histogram("serve.batch_ns");
      h_batch.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()));
    }
    {
      std::lock_guard lock(mu_);
      if (ctrl_.enabled()) {
        // One exact (flops, latency) sample per flushed batch; the derived
        // limits govern the NEXT admission round.
        ctrl_.observe(batch_flops,
                      std::chrono::duration_cast<std::chrono::nanoseconds>(dt),
                      batch.size());
        live_ = ctrl_.limits();
      }
      if (telemetry) {
        // Admission state as gauges: a stuck controller (samples pinned at
        // 0, limits never moving) is observable instead of silent. Each
        // executor binds its OWN gauge set, namespaced by cfg_.gauge_scope
        // ("serve.admission.shard<N>.*" under the sharded router), so N
        // shard executors export N distinct sets instead of last-batch-
        // wins on one. Bound lazily under mu_, once per executor.
        namespace hm = util::metrics;
        if (g_adm_flops_ == nullptr) {
          const std::string prefix = "serve.admission." + cfg_.gauge_scope;
          auto& reg = hm::Registry::instance();
          g_adm_flops_ = &reg.gauge(prefix + "max_batch_flops",
                                    hm::Stability::kTiming);
          g_adm_depth_ = &reg.gauge(prefix + "flush_queue_depth",
                                    hm::Stability::kTiming);
          g_adm_samples_ =
              &reg.gauge(prefix + "samples", hm::Stability::kTiming);
        }
        g_adm_flops_->set(static_cast<double>(live_.max_batch_flops));
        g_adm_depth_->set(static_cast<double>(live_.flush_queue_depth));
        g_adm_samples_->set(static_cast<double>(ctrl_.samples()));
      }
      const std::uint64_t settle_ns =
          telemetry ? trace::Tracer::instance().now_ns() : 0;
      std::map<TenantId, bool> seen;
      for (std::size_t k = 0; k < batch.size(); ++k) {
        results_[batch[k].ticket] = std::move(rs[k]);
        if (telemetry && batch[k].enq_ns != 0 &&
            batch[k].enq_ns <= settle_ns) {
          namespace hm = util::metrics;
          static auto& h_lat = hm::Registry::instance().histogram(
              "serve.query_latency_ns");
          h_lat.record(settle_ns - batch[k].enq_ns);
        }
        auto& ts = tstats_[batch[k].tenant];
        ++ts.queries;
        ts.rows += batch[k].rows;
        ts.flops += batch[k].flops;
        if (!seen[batch[k].tenant]) {
          seen[batch[k].tenant] = true;
          ++ts.batches;
        }
      }
      stats_ += ss;
    }
    done_cv_.notify_all();
  }

  /// Background flush loop (async mode): wake on queue depth, an explicit
  /// nudge (wait()/shutdown), or the flush_interval deadline.
  void flush_loop() {
    std::unique_lock lock(mu_);
    while (!stopping_) {
      queue_cv_.wait_for(lock, cfg_.flush_interval, [&] {
        return stopping_ || force_flush_ ||
               n_pending_ >= static_cast<std::size_t>(live_.flush_queue_depth);
      });
      if (stopping_) break;
      force_flush_ = false;
      if (n_pending_ == 0) continue;
      lock.unlock();
      try {
        flush_impl();
      } catch (...) {
        // Already routed to the failed tickets; the loop keeps serving.
      }
      lock.lock();
    }
    flusher_running_ = false;
    lock.unlock();
    done_cv_.notify_all();
  }

  std::vector<std::unique_ptr<sparse::DeltaBase<S>>> bases_;
  Config cfg_;
  sparse::BaseStack<T> stack_;    ///< cached blkdiag stack (≥ 2 bases only)
  sparse::Index stacked_cols_ = 0;
  AdmissionController ctrl_;      ///< adaptive admission (off by default)
  AdmissionController::Limits live_{};  ///< limits in force (under mu_)
  ResultCache<S> cache_;          ///< internally locked; off by default
  /// This executor's namespaced admission gauges, bound lazily under mu_
  /// on the first telemetered batch (registry entries are process-
  /// lifetime, so the pointers never dangle).
  util::metrics::Gauge* g_adm_flops_ = nullptr;
  util::metrics::Gauge* g_adm_depth_ = nullptr;
  util::metrics::Gauge* g_adm_samples_ = nullptr;

  mutable std::mutex mu_;       ///< queues, results, stats, lifecycle flags
  std::mutex flush_mu_;         ///< serializes whole-queue drains
  std::condition_variable queue_cv_;  ///< wakes the flush thread
  std::condition_variable done_cv_;   ///< wakes wait()ers

  ServeStats stats_;
  std::map<TenantId, TenantStats> tstats_;
  std::map<TenantId, std::deque<Pending>> queues_;
  std::size_t n_pending_ = 0;
  TenantId rr_cursor_ = 0;  ///< round-robin resumes at the first id >= this
  std::deque<std::optional<sparse::Matrix<T>>> results_;
  std::deque<std::uint64_t> traces_;  ///< ticket → trace id (0 = untraced)
  std::map<std::size_t, std::exception_ptr> failed_;  ///< ticket → flush error

  std::thread flusher_;
  bool flusher_running_ = false;
  bool force_flush_ = false;
  bool stopping_ = false;    ///< refuses new submits; flusher exits
  bool terminated_ = false;  ///< results are final; absent ⇒ dropped
};

}  // namespace hyperspace::serve
