#pragma once
// Router — the scatter-gather front end of the sharded serving stack.
//
// The stack has three explicit layers:
//
//   ShardMap   (shard_map.hpp)  — partitions ONE logical base into N
//     contiguous row-range shards, each a standalone base; owns the
//     local↔global translation and the lhs column-split scatter.
//   Router     (this header)    — implements serve::Service (submit /
//     mutate / wait / poll / flush / shutdown / stats), consults the
//     shard map to scatter each query to the shard(s) its key space
//     touches — and each mutation to the shard owning its row — and
//     fans out to per-shard Executor instances, each with
//     its own flush thread, admission budget, and TenantStats. Key
//     realignment happens ONCE here (ShardMap::scatter); shard executors
//     only ever see operands in their own local coordinates.
//   Gather                      — merges per-shard partials back into one
//     per-query result via a deterministic shard-order fold: stage s+1's
//     launch is SEEDED with stage s's partial (Query::carry), so the
//     accumulator continues the same flat left fold the unsharded kernel
//     runs over the full inner dimension. That makes sharded execution
//     bit-identical to the unsharded executor for every semiring,
//     strategy, and thread count — floats included — because the fold is
//     never regrouped, only resumed. (An ⊕-merge of independently folded
//     partials would regroup the fold tree and drift in the last ulp.)
//
// Queries touching a single shard — the common point-lookup shape — are
// pure pass-through: one sub-query, no carry, no merge step, resolved
// entirely by that shard's executor (its background flush thread included).
// Straddling queries form a CHAIN of sub-queries, one per touched shard in
// ascending shard order; the chain advances when wait()/poll()/flush()
// observes a settled stage and submits the next one with the partial as
// its carry. Chains across DIFFERENT queries proceed concurrently.
//
// The 1-shard Router is the unsharded executor, verbatim: the map moves
// the base through untouched, every query is single-shard pass-through,
// and all launches run the same Executor/run_batch path — the single-base
// Executor is the 1-shard instantiation of this stack, not a parallel
// code path.

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "serve/cache.hpp"
#include "serve/executor.hpp"
#include "serve/service.hpp"
#include "serve/shard_map.hpp"
#include "serve/trace.hpp"

namespace hyperspace::serve {

/// Router-level accounting: logical queries and how the scatter split
/// them. Per-shard ServeStats/TenantStats live in the shard executors
/// (a straddling query counts once per touched shard there).
struct RouterStats {
  std::uint64_t queries = 0;        ///< logical queries submitted
  std::uint64_t single_shard = 0;   ///< resolved by one shard, no merge
  std::uint64_t straddling = 0;     ///< scattered across ≥ 2 shards
  std::uint64_t stage_submits = 0;  ///< sub-queries handed to shard executors
  std::uint64_t merges = 0;         ///< carry folds (straddle stages ≥ 1)
  std::uint64_t mutations = 0;      ///< logical mutation batches accepted
  std::uint64_t epoch = 0;          ///< router-level epoch (= mutations)
  /// Result-cache split (serve/cache.hpp). A hit never scatters, so it
  /// counts in queries but in neither single_shard nor straddling.
  std::uint64_t cache_hits = 0;    ///< logical queries answered from cache
  std::uint64_t cache_misses = 0;  ///< cacheable probes that fell through
};

template <semiring::Semiring S>
class Router : public Service<S> {
  using T = typename S::value_type;

 public:
  struct Config {
    typename Executor<S>::Config executor{};  ///< per-shard executor config
    int n_shards = 1;
    /// Explicit row cuts (size N+1, 0 → nrows); overrides n_shards.
    std::vector<sparse::Index> cuts;
  };

  explicit Router(sparse::Matrix<T> base, Config cfg = {})
      : Router(cfg.cuts.empty()
                   ? ShardMap<T>::split(std::move(base), cfg.n_shards)
                   : ShardMap<T>::with_cuts(std::move(base), cfg.cuts),
               cfg) {}

  Router(ShardMap<T> map, Config cfg = {})
      : map_(std::move(map)),
        cfg_(cfg),
        cache_({cfg.executor.cache_bytes, cfg.executor.cache_negative}) {
    // Trace sampling happens ONCE, here at the router: shard executors
    // must not re-sample the sub-queries of an untraced logical query.
    // The result cache likewise lives ONCE, at the router, keyed on the
    // router-level epoch over the gathered final answer: shard-local
    // caches would key on shard epochs a logical query never observes, so
    // they are forced off — which is also what makes straddling chain
    // stages bypass the cache per-stage. Each shard executor gets its own
    // admission-gauge namespace so N shards export N distinct gauge sets.
    auto ecfg = cfg_.executor;
    ecfg.trace_sampling = false;
    ecfg.cache_bytes = 0;
    execs_.reserve(map_.n_shards());
    for (std::size_t s = 0; s < map_.n_shards(); ++s) {
      ecfg.gauge_scope = "shard" + std::to_string(s) + ".";
      execs_.push_back(
          std::make_unique<Executor<S>>(map_.take_shard(s), ecfg));
    }
  }

  ~Router() { shutdown(); }
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  std::size_t n_shards() const { return execs_.size(); }
  const ShardMap<T>& map() const { return map_; }
  const Config& config() const { return cfg_; }
  /// Shard s's executor (its base() is the shard in LOCAL row space).
  const Executor<S>& shard_executor(std::size_t s) const {
    return *execs_.at(s);
  }

  /// Scatter `q` and enqueue its per-shard chain; returns the router-level
  /// ticket redeemable via wait()/poll(). Shape mismatches throw here, at
  /// admission. The lhs split — the only key realignment in the whole
  /// sharded path — happens now, once.
  std::size_t submit(TenantId tenant, Query<S> q) override {
    if (q.lhs.ncols() != map_.nrows()) {
      throw std::invalid_argument("Router: query inner dimension mismatch");
    }
    if (q.mask && (q.mask->nrows() != q.lhs.nrows() ||
                   q.mask->ncols() != map_.ncols())) {
      throw std::invalid_argument("Router: query mask shape mismatch");
    }
    if (q.carry && (q.carry->nrows() != q.lhs.nrows() ||
                    q.carry->ncols() != map_.ncols())) {
      throw std::invalid_argument("Router: query carry shape mismatch");
    }
    // The router is the sampling point for the whole sharded stack: one
    // trace id covers the logical query, and every sub-query inherits it
    // (shard executors run with trace_sampling off).
    auto& tracer = trace::Tracer::instance();
    if (q.trace == 0) q.trace = tracer.sample();
    // Result-cache probe, keyed on the router-level epoch (the count of
    // logical mutation batches — coarser than the executor's per-base
    // epochs: ANY mutation invalidates, because the router cannot see
    // which shards a cached answer depended on). A hit settles the chain
    // before it exists: no scatter, no sub-queries, no merge.
    std::optional<typename ResultCache<S>::Key> ckey;
    if (cache_.enabled() && ResultCache<S>::cacheable(q)) {
      trace::ScopedSpan probe_span(trace::Stage::kCacheProbe, q.trace,
                                   q.trace != 0);
      std::uint64_t cur;
      {
        std::lock_guard lock(rmu_);
        cur = rstats_.epoch;
      }
      auto key = ResultCache<S>::make_key(
          cur, 0, q, static_cast<unsigned char>(cfg_.executor.strategy));
      auto hit =
          cache_.probe(key, [cur](const auto& k) { return k.epoch != cur; });
      probe_span.args(hit ? 1 : 0, hit ? hit->bytes : 0);
      if (hit) {
        std::lock_guard lock(rmu_);
        if (stopping_) {
          throw std::runtime_error("Router: submit after shutdown");
        }
        const std::size_t ticket = chains_.size();
        Chain hc;
        hc.trace = q.trace;
        hc.tenant = tenant;
        hc.cached = std::move(hit->value);
        chains_.push_back(std::move(hc));
        ++rstats_.queries;
        ++rstats_.cache_hits;
        auto& ts = rtstats_[tenant];
        ++ts.cache_hits;
        ts.cache_bytes += hit->bytes;
        return ticket;
      }
      ckey = std::move(key);  // install when the gathered answer settles
    }
    Chain c;
    c.trace = q.trace;
    c.start_ns = q.trace != 0 ? tracer.now_ns() : 0;
    trace::ScopedSpan scatter_span(trace::Stage::kScatter, q.trace,
                                   q.trace != 0);
    if (map_.n_shards() == 1) {
      // 1-shard pass-through: the executor path verbatim — the lhs moves
      // through unsplit, uncopied, untranslated.
      c.shards.push_back(0);
      c.lhs.push_back(std::move(q.lhs));
    } else {
      auto sc = map_.scatter(q.lhs);
      if (sc.shards.empty()) {
        // No shard touched (all-empty lhs): route an empty sub-operand to
        // shard 0 so the query flows the uniform path — with a carry, the
        // kernel passes it through; without one the result is empty.
        sc.shards.push_back(0);
        sc.lhs.emplace_back(q.lhs.nrows(), map_.height(0), S::zero());
      }
      c.shards = std::move(sc.shards);
      c.lhs = std::move(sc.lhs);
    }
    c.mask = std::move(q.mask);
    c.desc = q.desc;
    c.tenant = tenant;
    c.ckey = std::move(ckey);
    scatter_span.args(c.shards.size(), c.lhs.empty() ? 0 : c.lhs[0].nrows());
    scatter_span.finish();  // the split is done; queueing is not scatter
    std::lock_guard lock(rmu_);
    if (stopping_) {
      throw std::runtime_error("Router: submit after shutdown");
    }
    const std::size_t ticket = chains_.size();
    chains_.push_back(std::move(c));
    ++rstats_.queries;
    if (chains_.back().ckey) {
      ++rstats_.cache_misses;
      ++rtstats_[tenant].cache_misses;
    }
    if (chains_.back().shards.size() > 1) {
      ++rstats_.straddling;
    } else {
      ++rstats_.single_shard;
    }
    submit_stage_locked(chains_.back(), std::move(q.carry));
    return ticket;
  }

  std::size_t submit(Query<S> q) { return submit(0, std::move(q)); }

  /// Apply `ops` to the logical base: scatter each update to the shard
  /// owning its row (ShardMap::scatter_updates — local row r − cuts[s],
  /// columns untouched) and forward every non-empty slice to that shard
  /// executor's delta base. Returns the router-level epoch: the count of
  /// logical mutation batches accepted, which advances once per call
  /// regardless of how many shards the batch straddled. Known limitation:
  /// a straddling chain in flight can observe MIXED epochs if a mutation
  /// lands between its stages — quiesce (flush) around mutations when
  /// chain-level epoch stability matters; epoch-pinned chains are a
  /// ROADMAP follow-on.
  std::uint64_t mutate(TenantId tenant,
                       const sparse::UpdateBatch<T>& ops) override {
    auto slices = map_.scatter_updates(ops);  // validates every key first
    {
      std::lock_guard lock(rmu_);
      if (stopping_) {
        throw std::runtime_error("Router: mutate after shutdown");
      }
    }
    for (std::size_t s = 0; s < slices.size(); ++s) {
      if (!slices[s].empty()) {
        execs_[s]->mutate(tenant, std::size_t{0}, slices[s]);
      }
    }
    std::lock_guard lock(rmu_);
    ++rstats_.mutations;
    rstats_.epoch += 1;
    return rstats_.epoch;
  }
  using Service<S>::mutate;  // mutate(ops) → anonymous tenant

  /// The router-level epoch: logical mutation batches accepted so far.
  std::uint64_t epoch() const override {
    std::lock_guard lock(rmu_);
    return rstats_.epoch;
  }

  /// Block until the query's chain completes and return its final result.
  /// The reference lives in the LAST touched shard's executor and stays
  /// valid for the router's lifetime. Advances the chain stage by stage:
  /// each settled partial is folded forward as the next stage's carry.
  const sparse::Matrix<T>& wait(std::size_t ticket) override {
    for (;;) {
      Executor<S>* exec;
      std::size_t sticket;
      std::size_t stage;
      bool final_stage;
      {
        std::lock_guard lock(rmu_);
        Chain& ch = chain_at_locked(ticket);
        if (ch.cached) return *ch.cached;  // settled at submit by a hit
        exec = execs_[ch.shards[ch.stage]].get();
        sticket = ch.stage_ticket;
        stage = ch.stage;
        final_stage = ch.stage + 1 == ch.shards.size();
      }
      const auto& r = exec->wait(sticket);  // blocks outside the router lock
      std::lock_guard lock(rmu_);
      Chain& ch = chain_at_locked(ticket);
      if (ch.stage != stage) continue;  // another waiter advanced the chain
      if (final_stage) {
        record_gather_locked(ch);
        install_locked(ch, r);
        return r;
      }
      ch.stage += 1;
      ++rstats_.merges;
      submit_stage_locked(ch, r);  // the partial seeds the next shard
    }
  }

  /// Non-blocking probe: the settled final result, or nullptr while any
  /// stage is pending. Opportunistically advances the chain when the
  /// current stage has settled (submitting the next stage's sub-query),
  /// so background flush threads keep multi-shard chains moving between
  /// polls.
  const sparse::Matrix<T>* poll(std::size_t ticket) override {
    std::lock_guard lock(rmu_);
    Chain& ch = chain_at_locked(ticket);
    if (ch.cached) return &*ch.cached;  // settled at submit by a hit
    for (;;) {
      auto* exec = execs_[ch.shards[ch.stage]].get();
      const auto* r = exec->poll(ch.stage_ticket);
      if (r == nullptr) return nullptr;
      if (ch.stage + 1 == ch.shards.size()) {
        record_gather_locked(ch);
        install_locked(ch, *r);
        return r;
      }
      ch.stage += 1;
      ++rstats_.merges;
      submit_stage_locked(ch, *r);
    }
  }

  /// Drain everything on the calling thread: flush every shard executor
  /// and advance every chain until all queues are empty and every chain is
  /// at its final, settled stage.
  void flush() override {
    for (;;) {
      for (auto& e : execs_) e->flush();
      bool advanced = false;
      {
        std::lock_guard lock(rmu_);
        for (auto& ch : chains_) {
          while (ch.stage + 1 < ch.shards.size()) {
            const sparse::Matrix<T>* r = nullptr;
            try {
              r = execs_[ch.shards[ch.stage]]->poll(ch.stage_ticket);
            } catch (...) {
              break;  // failed stage: wait() rethrows it to the caller
            }
            if (r == nullptr) break;
            ch.stage += 1;
            ++rstats_.merges;
            submit_stage_locked(ch, *r);
            advanced = true;
          }
        }
      }
      if (!advanced) return;
    }
  }

  /// Retire every shard executor. With drain = true (default, and the
  /// destructor's behavior) all chains are driven to completion first;
  /// with drain = false unflushed sub-queries are dropped and their
  /// wait() throws.
  void shutdown(bool drain = true) override {
    {
      std::lock_guard lock(rmu_);
      if (stopping_) return;
      stopping_ = true;
    }
    if (drain) {
      // A failing batch routes its error to its tickets and leaves the
      // queue; retrying the drain terminates (mirrors Executor::shutdown).
      for (;;) {
        try {
          flush();
          break;
        } catch (...) {
        }
      }
    }
    for (auto& e : execs_) e->shutdown(drain);
  }

  /// Aggregate kernel-level accounting across the shard executors. Note:
  /// `queries` here counts SUB-queries (one per touched shard); the
  /// logical count is router_stats().queries. The flop totals partition
  /// the unsharded executor's exactly, for masked and unmasked traffic
  /// alike — every product is counted in exactly one stage (flops_kept
  /// counts every product that reaches an accumulator, mask or no mask)
  /// and the carry adds none.
  ServeStats stats() const override {
    ServeStats out;
    for (const auto& e : execs_) out += e->stats();
    return out;
  }

  RouterStats router_stats() const {
    std::lock_guard lock(rmu_);
    return rstats_;
  }

  /// Per-tenant accounting summed across shards (sub-query granularity),
  /// plus this router's own cache hit/miss/bytes split — hits never reach
  /// a shard, so they are accounted here and only here.
  TenantStats tenant_stats(TenantId tenant) const {
    TenantStats out;
    for (const auto& e : execs_) {
      const auto ts = e->tenant_stats(tenant);
      out.queries += ts.queries;
      out.rows += ts.rows;
      out.flops += ts.flops;
      out.batches += ts.batches;
      out.deferrals += ts.deferrals;
      out.mutations += ts.mutations;
    }
    std::lock_guard lock(rmu_);
    const auto it = rtstats_.find(tenant);
    if (it != rtstats_.end()) {
      out.cache_hits += it->second.cache_hits;
      out.cache_misses += it->second.cache_misses;
      out.cache_bytes += it->second.cache_bytes;
    }
    return out;
  }

  /// Every tenant that has ever submitted, ascending, across all shards
  /// (cache-hit-only tenants included — they never reach a shard).
  std::vector<TenantId> tenants() const {
    std::map<TenantId, bool> seen;
    for (const auto& e : execs_) {
      for (const auto t : e->tenants()) seen[t] = true;
    }
    {
      std::lock_guard lock(rmu_);
      for (const auto& [t, _] : rtstats_) seen[t] = true;
    }
    std::vector<TenantId> out;
    out.reserve(seen.size());
    for (const auto& [t, _] : seen) out.push_back(t);
    return out;
  }

  /// Result-cache accounting (zeroes when the cache is disabled).
  typename ResultCache<S>::Stats cache_stats() const { return cache_.stats(); }

  /// Sub-queries queued but not yet admitted, across all shards.
  std::size_t pending() const override {
    std::size_t n = 0;
    for (const auto& e : execs_) n += e->pending();
    return n;
  }

 private:
  /// One scattered query: sub-lhs operands for the touched shards, run in
  /// ascending shard order with the partial folded forward as a carry.
  struct Chain {
    std::vector<std::size_t> shards;      ///< touched shards, ascending
    std::vector<sparse::Matrix<T>> lhs;   ///< per-stage sub-lhs (consumed)
    std::optional<sparse::Matrix<T>> mask;
    sparse::MaskDesc desc{};
    TenantId tenant = 0;
    std::size_t stage = 0;         ///< currently submitted stage
    std::size_t stage_ticket = 0;  ///< ticket within shards[stage]'s executor
    std::uint64_t trace = 0;       ///< sampled trace id (0 = untraced)
    std::uint64_t start_ns = 0;    ///< scatter time, anchors the gather span
    bool gathered = false;         ///< gather span recorded once per chain
    /// A cache hit settles the chain at submit: the answer lives here and
    /// no stage is ever submitted (shards/lhs stay empty).
    std::optional<sparse::Matrix<T>> cached;
    /// Probe key of a cacheable miss; the gathered final answer installs
    /// under it, once, unless a mutation moved the epoch meanwhile.
    std::optional<typename ResultCache<S>::Key> ckey;
    bool installed = false;        ///< install attempted (once per chain)
  };

  Chain& chain_at_locked(std::size_t ticket) {
    if (ticket >= chains_.size()) {
      throw std::out_of_range("Router: unknown ticket");
    }
    return chains_[ticket];
  }

  /// Install a settled final answer under the chain's probe key, once
  /// (rmu_ held). Skipped if a mutation moved the router epoch since the
  /// probe: the answer is correct for the submit-time epoch, but keying
  /// it under the current epoch would be wrong and under the old one
  /// useless. (A mutate() whose shard writes landed but whose epoch bump
  /// is still in flight can slip an old-keyed entry in — it can only be
  /// served to submits racing that same mutate, for which either epoch's
  /// answer is admissible, and it ages out of the LRU tail.)
  void install_locked(Chain& ch, const sparse::Matrix<T>& r) {
    if (!ch.ckey || ch.installed) return;
    ch.installed = true;
    if (rstats_.epoch != ch.ckey->epoch) return;
    cache_.install(*ch.ckey, r);
  }

  /// Record the chain-level gather span — scatter to observed completion —
  /// on the query's trace lane, once, when a straddling traced chain's
  /// final stage is first seen settled (rmu_ held). Single-shard chains
  /// skip it: there is nothing to gather.
  void record_gather_locked(Chain& ch) {
    if (ch.gathered || ch.trace == 0 || ch.shards.size() < 2) return;
    ch.gathered = true;
    auto& tracer = trace::Tracer::instance();
    if (!tracer.enabled()) return;
    const std::uint64_t now = tracer.now_ns();
    if (ch.start_ns == 0 || ch.start_ns > now) return;  // tracer reconfigured
    tracer.record(trace::Stage::kGather, ch.trace, trace::query_lane(ch.trace),
                  ch.start_ns, now - ch.start_ns, ch.shards.size(),
                  rstats_.merges);
  }

  /// Submit chain stage `ch.stage` to its shard executor (rmu_ held).
  /// `carry` is the previous stage's partial (or the caller's seed for
  /// stage 0); the mask rides along on every stage — output columns are
  /// not sharded, so it applies unchanged. Known cost: non-final stages
  /// deep-copy the mask and every merge copies its partial into the next
  /// stage's Query (queries own their operands by value). Straddle stages
  /// are O(partial) work anyway, so this is a constant factor, but a
  /// shared mask view across chain stages is a ROADMAP follow-on.
  template <typename CarryArg>
  void submit_stage_locked(Chain& ch, CarryArg&& carry) {
    Query<S> sq;
    sq.lhs = std::move(ch.lhs[ch.stage]);
    if (ch.mask) {
      sq.kind = QueryKind::kMtimesMasked;
      sq.desc = ch.desc;
      // The last stage may consume the mask; earlier stages copy it.
      if (ch.stage + 1 == ch.shards.size()) {
        sq.mask = std::move(ch.mask);
      } else {
        sq.mask = *ch.mask;
      }
    }
    if constexpr (std::is_same_v<std::decay_t<CarryArg>,
                                 std::optional<sparse::Matrix<T>>>) {
      sq.carry = std::forward<CarryArg>(carry);
    } else {
      sq.carry = carry;  // a settled partial: copied into the next stage
    }
    sq.trace = ch.trace;  // sub-queries inherit the logical query's trace
    if (ch.trace != 0 && ch.stage > 0) {
      // Instant carry marker on the query's lane: stage s's partial is
      // being folded forward into shard shards[stage]'s sub-query.
      auto& tracer = trace::Tracer::instance();
      if (tracer.enabled()) {
        tracer.record(trace::Stage::kChainCarry, ch.trace,
                      trace::query_lane(ch.trace), tracer.now_ns(), 0,
                      ch.stage, ch.shards[ch.stage]);
      }
    }
    ch.stage_ticket =
        execs_[ch.shards[ch.stage]]->submit(ch.tenant, 0, std::move(sq));
    ++rstats_.stage_submits;
  }

  ShardMap<T> map_;
  Config cfg_;
  std::vector<std::unique_ptr<Executor<S>>> execs_;

  mutable std::mutex rmu_;     ///< chains + router stats + lifecycle
  std::deque<Chain> chains_;   ///< ticket-indexed
  RouterStats rstats_;
  ResultCache<S> cache_;       ///< internally locked; off by default
  /// Router-level per-tenant cache accounting (hits never reach a shard
  /// executor's TenantStats). Only the cache_* fields are ever nonzero.
  std::map<TenantId, TenantStats> rtstats_;
  bool stopping_ = false;
};

}  // namespace hyperspace::serve
