#pragma once
// serve::Service — the ONE serving submit surface.
//
// PR 4 gave the Executor an async ticketed API and PR 5 wrapped it in a
// sharded Router, but each engine grew its own spelling of the same verbs
// and every example/bench/test special-cased which engine it drove. This
// interface is the redesign that closes that gap: anything that serves
// queries — the single-process Executor, the sharded Router, whatever
// comes next — implements
//
//   submit(tenant, query)  → ticket      enqueue a read
//   mutate(tenant, batch)  → epoch       apply writes (delta bases)
//   wait(ticket)           → result      block until settled
//   poll(ticket)           → result|null non-blocking probe
//   flush()                              drain on the calling thread
//   shutdown(drain)                      retire the engine
//   stats() / epoch() / pending()        accounting
//
// so callers hold a Service<S>& and never name the engine. The contract
// every implementation must keep: results are bit-identical to running
// each query alone against a from-scratch rebuild of its base at the
// epoch the query's batch was served — batching, sharding, asynchrony,
// mutation interleaving, and thread count never change an answer. The
// result cache (serve/cache.hpp, enabled per engine via
// Config::cache_bytes / cache_negative, default off) inherits that
// contract wholesale: a hit is a byte-identical replay of the answer the
// engine settled at that epoch, never a recomputation, so enabling it is
// invisible to every caller of this interface except in latency and in
// the serve.cache.* registry section of metrics_text()/metrics_json().

#include <cstdint>
#include <sstream>
#include <string>

#include "serve/batch.hpp"
#include "sparse/delta.hpp"
#include "util/metrics.hpp"

namespace hyperspace::serve {

using TenantId = std::uint32_t;

template <semiring::Semiring S>
class Service {
 public:
  using T = typename S::value_type;

  virtual ~Service() = default;

  /// Enqueue `q` for `tenant`; returns the ticket redeemable via
  /// wait()/poll(). Shape mismatches throw here, at admission.
  virtual std::size_t submit(TenantId tenant, Query<S> q) = 0;

  /// Apply a batch of mutations (in order, last write per key wins) to the
  /// engine's primary base and return the epoch the batch created.
  /// In-flight query batches finish on the epoch they started on; later
  /// flushes serve the new one.
  virtual std::uint64_t mutate(TenantId tenant,
                               const sparse::UpdateBatch<T>& ops) = 0;

  /// Block until the ticket's result exists and return it. The reference
  /// stays valid for the engine's lifetime.
  virtual const sparse::Matrix<T>& wait(std::size_t ticket) = 0;

  /// Non-blocking probe: the settled result, or nullptr while pending.
  virtual const sparse::Matrix<T>* poll(std::size_t ticket) = 0;

  /// Drain all queued work on the calling thread.
  virtual void flush() = 0;

  /// Retire the engine. drain = true resolves queued tickets first;
  /// drain = false drops them (their wait() throws). Idempotent.
  virtual void shutdown(bool drain) = 0;

  /// Aggregate kernel-level accounting, including the highest epoch any
  /// flushed batch was served at.
  virtual ServeStats stats() const = 0;

  /// The primary base's current published epoch (0 = never mutated).
  virtual std::uint64_t epoch() const = 0;

  /// Queries queued but not yet admitted to a batch.
  virtual std::size_t pending() const = 0;

  /// Anonymous-tenant conveniences.
  std::size_t submit(Query<S> q) { return submit(TenantId{0}, std::move(q)); }
  std::uint64_t mutate(const sparse::UpdateBatch<T>& ops) {
    return mutate(TenantId{0}, ops);
  }
  void shutdown() { shutdown(true); }

  /// Prometheus-style text exposition: the engine's own ServeStats (exact,
  /// thread-count-invariant) followed by the process-wide metrics registry
  /// (counters, gauges, latency histograms with p50/p95/p99 quantiles).
  /// The registry section is empty when telemetry is compiled out or
  /// disabled; the ServeStats lines are always present.
  std::string metrics_text() const {
    std::ostringstream os;
    const ServeStats ss = stats();
    os << "# engine ServeStats (exact, thread-count-invariant)\n";
    os << "hyperspace_serve_queries " << ss.queries << "\n";
    os << "hyperspace_serve_batches " << ss.batches << "\n";
    os << "hyperspace_serve_kernel_launches " << ss.kernel_launches << "\n";
    os << "hyperspace_serve_launches_saved " << ss.launches_saved << "\n";
    os << "hyperspace_serve_rows_coalesced " << ss.rows_coalesced << "\n";
    os << "hyperspace_serve_flops_kept " << ss.flops_kept << "\n";
    os << "hyperspace_serve_flops_skipped " << ss.flops_skipped << "\n";
    os << "hyperspace_serve_mutations " << ss.mutations << "\n";
    os << "hyperspace_serve_epoch " << epoch() << "\n";
    os << "hyperspace_serve_pending " << pending() << "\n";
    os << util::metrics::Registry::instance().prometheus_text();
    return os.str();
  }

  /// The same surface as one JSON object: {"serve": {...engine stats...},
  /// "registry": {...process-wide metrics, segregated by stability...}}.
  std::string metrics_json() const {
    std::ostringstream os;
    const ServeStats ss = stats();
    os << "{\"serve\":{\"queries\":" << ss.queries
       << ",\"batches\":" << ss.batches
       << ",\"kernel_launches\":" << ss.kernel_launches
       << ",\"launches_saved\":" << ss.launches_saved
       << ",\"rows_coalesced\":" << ss.rows_coalesced
       << ",\"flops_kept\":" << ss.flops_kept
       << ",\"flops_skipped\":" << ss.flops_skipped
       << ",\"mutations\":" << ss.mutations << ",\"epoch\":" << epoch()
       << ",\"pending\":" << pending()
       << "},\"registry\":" << util::metrics::Registry::instance().json()
       << "}";
    return os.str();
  }
};

}  // namespace hyperspace::serve
