#pragma once
// ShardMap — the partition authority of the sharded serving stack.
//
// A shard map cuts ONE logical base (n × c) into N contiguous row-range
// shards: shard s is a standalone base holding global rows
// [cuts[s], cuts[s+1]) as local rows 0..height, with the full column
// space. Shards are built once via the existing split primitive
// (sparse::split_rows) and handed to per-shard executors; the map keeps
// the cuts — the local↔global row translation — and performs the router's
// scatter: splitting a query's lhs by COLUMN ranges (lhs columns index
// base rows) into per-shard sub-operands, rebased into each shard's local
// row space. That realignment happens ONCE here, at the router — a shard
// executor only ever sees operands already in its own coordinates.
//
// The 1-shard map is the unsharded executor's base, verbatim (moved, not
// copied, not translated) — the single-base serving path IS the 1-shard
// instantiation of this stack.

#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sparse/delta.hpp"
#include "sparse/matrix.hpp"
#include "sparse/shard.hpp"

namespace hyperspace::serve {

template <typename T>
class ShardMap {
 public:
  ShardMap() = default;

  /// Partition `base` into N even row-range shards.
  static ShardMap split(sparse::Matrix<T> base, int n_shards) {
    auto cuts = sparse::even_cuts(base.nrows(), n_shards);
    return with_cuts(std::move(base), std::move(cuts));
  }

  /// Partition `base` at explicit cuts (ascending, 0 → nrows; equal
  /// consecutive cuts make a legal zero-height shard).
  static ShardMap with_cuts(sparse::Matrix<T> base,
                            std::vector<sparse::Index> cuts) {
    sparse::validate_cuts(cuts, base.nrows());
    ShardMap m;
    m.ncols_ = base.ncols();
    m.zero_ = base.implicit_zero();
    m.cuts_ = std::move(cuts);
    if (m.cuts_.size() == 2) {
      // 1 shard: the base itself — no split, no copy, no translation.
      m.shards_.push_back(std::move(base));
    } else {
      m.shards_ = sparse::split_rows(base, m.cuts_, base.implicit_zero());
    }
    return m;
  }

  std::size_t n_shards() const { return cuts_.size() - 1; }
  sparse::Index nrows() const { return cuts_.back(); }
  sparse::Index ncols() const { return ncols_; }
  const std::vector<sparse::Index>& cuts() const { return cuts_; }
  sparse::Index height(std::size_t s) const { return cuts_[s + 1] - cuts_[s]; }

  /// Shard owning global base row r.
  std::size_t shard_of(sparse::Index r) const {
    return sparse::shard_of(cuts_, r);
  }

  const sparse::Matrix<T>& shard(std::size_t s) const { return shards_.at(s); }

  /// Move shard s's base out (router construction hands each shard base to
  /// its executor exactly once; the map keeps cuts and shapes for routing).
  sparse::Matrix<T> take_shard(std::size_t s) {
    return std::move(shards_.at(s));
  }

  /// Scatter a query's lhs: which shards does its key space touch, and
  /// what is the per-shard sub-operand? Sub-lhs s holds the lhs columns in
  /// shard s's row range, rebased local — split ONCE here. Shards with no
  /// lhs support are skipped entirely (the shard-level §IV annihilation:
  /// disjoint key ranges contribute nothing). An all-empty lhs touches no
  /// shard.
  struct Scatter {
    std::vector<std::size_t> shards;        ///< touched, ascending
    std::vector<sparse::Matrix<T>> lhs;     ///< one rebased sub-lhs each
  };
  Scatter scatter(const sparse::Matrix<T>& lhs) const {
    if (lhs.ncols() != nrows()) {
      throw std::invalid_argument("ShardMap: query inner dimension mismatch");
    }
    Scatter sc;
    if (n_shards() == 1) {
      // Pass-through: no split, no copy of the lhs pattern.
      if (lhs.nnz() > 0) {
        sc.shards.push_back(0);
        sc.lhs.push_back(lhs);
      }
      return sc;
    }
    auto parts = sparse::split_cols(lhs, cuts_, lhs.implicit_zero());
    for (std::size_t s = 0; s < parts.size(); ++s) {
      if (parts[s].nnz() > 0) {
        sc.shards.push_back(s);
        sc.lhs.push_back(std::move(parts[s]));
      }
    }
    return sc;
  }

  /// Scatter a mutation batch: update (r, c) lands on shard_of(r) as
  /// local row r − cuts[s] (columns are untouched — shards keep the full
  /// column space). Relative order within each shard's slice is preserved,
  /// so per-key last-wins semantics survive the split. Out-of-range keys
  /// throw before anything is scattered. Returns one (possibly empty)
  /// batch per shard, indexed by shard id.
  std::vector<sparse::UpdateBatch<T>> scatter_updates(
      const sparse::UpdateBatch<T>& ops) const {
    for (const auto& u : ops) {
      if (u.row < 0 || u.row >= nrows() || u.col < 0 || u.col >= ncols_) {
        throw std::out_of_range("ShardMap: update key out of range");
      }
    }
    std::vector<sparse::UpdateBatch<T>> out(n_shards());
    for (const auto& u : ops) {
      const std::size_t s = shard_of(u.row);
      auto local = u;
      local.row = u.row - cuts_[s];
      out[s].push_back(std::move(local));
    }
    return out;
  }

 private:
  std::vector<sparse::Index> cuts_;      ///< size N+1, 0 → nrows
  std::vector<sparse::Matrix<T>> shards_;
  sparse::Index ncols_ = 0;
  T zero_{};
};

}  // namespace hyperspace::serve
