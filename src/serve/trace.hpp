#pragma once
// Life-of-a-query tracing for the serving stack: timestamped spans at
// every stage a query passes through — submit → tenant queue → admission
// → flush → lhs scatter → per-shard kernel launch → chain stage carry →
// gather → wait — buffered in bounded per-thread rings and dumped as
// Chrome trace-event-format JSON (chrome://tracing / Perfetto).
//
// Mechanics:
//
//  - **Sampling.** `Tracer::sample()` hands out a trace id (or 0 for
//    "untraced") for every `sample_every`-th query; id 0 disarms every
//    query-scope span downstream, so the cost of an untraced query is a
//    relaxed flag load. Engine-scope spans (admission, flush, kernel
//    launch) record whenever tracing is enabled — they are per batch,
//    not per query.
//  - **Rings.** Each recording thread appends to its own bounded ring
//    (no locks, no cross-thread slot races on the hot path); the reader
//    merges and time-sorts all rings on demand, keeping the newest
//    `ring_capacity` spans per thread. Readers racing live writers can
//    observe a torn span only while a ring is actively wrapping; dumps
//    are taken at quiesce points (after flush/wait) where that cannot
//    happen.
//  - **Lanes.** Thread-scope spans are attributed to the recording
//    thread's dense ordinal ("tid" in the Chrome JSON). Cross-thread
//    stages whose duration spans threads — tenant queue wait, chain
//    carry, gather — land on a per-query lane (kQueryLaneBase + trace
//    id), which renders each traced query as its own row: the life of a
//    query, literally. Spans on any one lane are properly nested, which
//    tools/check_trace_json.py enforces.
//  - **Determinism.** Tracing reads clocks and writes rings; it never
//    feeds back into execution. Results are bit-identical with tracing
//    on, off, or sampled, at any thread count (tests/test_trace.cpp
//    sweeps exactly that).
//
// Compile out with HYPERSPACE_NO_TELEMETRY (shared with util/metrics.hpp):
// `enabled()` becomes constant false and every span folds away.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "util/metrics.hpp"

namespace hyperspace::serve::trace {

/// The span taxonomy — one stage per hop of the serving stack.
enum class Stage : unsigned char {
  kSubmit,       ///< Service::submit — validate, cost, enqueue (thread lane)
  kTenantQueue,  ///< enqueue → admission wait (query lane)
  kAdmission,    ///< round-robin batch assembly under quotas (thread lane)
  kFlush,        ///< one flush drain: admit + run + settle (thread lane)
  kScatter,      ///< router lhs split into per-shard sub-queries (thread lane)
  kKernel,       ///< one coalesced kernel launch for a batch (thread lane)
  kChainCarry,   ///< carry handoff to the next shard stage (query lane)
  kGather,       ///< chain start → final carry settle (query lane)
  kWait,         ///< caller blocking in wait() (thread lane)
  kCacheProbe,   ///< result-cache lookup at submit (thread lane)
};

inline const char* stage_name(Stage s) noexcept {
  switch (s) {
    case Stage::kSubmit: return "submit";
    case Stage::kTenantQueue: return "tenant_queue";
    case Stage::kAdmission: return "admission";
    case Stage::kFlush: return "flush";
    case Stage::kScatter: return "scatter";
    case Stage::kKernel: return "kernel";
    case Stage::kChainCarry: return "chain_carry";
    case Stage::kGather: return "gather";
    case Stage::kWait: return "wait";
    case Stage::kCacheProbe: return "cache_probe";
  }
  return "?";
}

/// Display lane for cross-thread, per-query spans. Thread lanes are small
/// dense ordinals; query lanes start far above them.
inline constexpr std::uint64_t kQueryLaneBase = 1'000'000;
constexpr std::uint64_t query_lane(std::uint64_t trace_id) noexcept {
  return kQueryLaneBase + trace_id;
}

/// One completed span. Timestamps are nanoseconds since the tracer epoch
/// (configure time); a0/a1 are stage-specific arguments (documented in
/// docs/ARCHITECTURE.md's span taxonomy table).
struct Span {
  std::uint64_t trace = 0;  ///< 0 = engine-scope (no owning query)
  Stage stage = Stage::kSubmit;
  std::uint64_t lane = 0;   ///< Chrome "tid": thread ordinal or query lane
  std::uint64_t ts_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t a0 = 0;
  std::uint64_t a1 = 0;
};

/// The process-wide tracer: sampling, per-thread rings, merge-and-dump.
class Tracer {
 public:
  struct Config {
    bool enabled = false;
    std::uint64_t sample_every = 1;    ///< trace 1 in N queries (>=1)
    std::size_t ring_capacity = 1 << 14;  ///< spans kept per thread
  };

  static Tracer& instance() {
    static Tracer t;
    return t;
  }

  /// (Re)arm the tracer: installs the config, drops every existing ring
  /// and buffered span, resets the id counter and the clock epoch.
  void configure(const Config& c) {
    std::lock_guard lock(mu_);
    cap_ = c.ring_capacity == 0 ? 1 : c.ring_capacity;
    sample_every_.store(c.sample_every == 0 ? 1 : c.sample_every,
                        std::memory_order_relaxed);
    rings_.clear();
    generation_.fetch_add(1, std::memory_order_relaxed);
    next_id_.store(0, std::memory_order_relaxed);
    epoch_ns_ = util::metrics::clock_ns();
    enabled_.store(c.enabled && util::metrics::kCompiledIn,
                   std::memory_order_relaxed);
  }

  bool enabled() const noexcept {
    if constexpr (!util::metrics::kCompiledIn) {
      return false;
    } else {
      return enabled_.load(std::memory_order_relaxed);
    }
  }

  /// Draw the next trace id: nonzero (this query is traced) for every
  /// sample_every-th draw, 0 (untraced) otherwise. Ids are dense and
  /// start at 1; the id doubles as the query's display lane offset.
  std::uint64_t sample() noexcept {
    if (!enabled()) return 0;
    const std::uint64_t n = next_id_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t every = sample_every_.load(std::memory_order_relaxed);
    return (every <= 1 || n % every == 0) ? n + 1 : 0;
  }

  /// Nanoseconds since the tracer epoch, from the shared telemetry clock.
  std::uint64_t now_ns() const noexcept {
    return util::metrics::clock_ns() - epoch_ns_;
  }

  /// This thread's display lane (its dense ordinal).
  static std::uint64_t thread_lane() noexcept {
    return util::metrics::detail::thread_ordinal();
  }

  /// Append one completed span to this thread's ring (creating and
  /// registering the ring on first use). Lock-free after the first call
  /// per thread per configure() generation.
  void record(Stage stage, std::uint64_t trace_id, std::uint64_t lane,
              std::uint64_t ts_ns, std::uint64_t dur_ns, std::uint64_t a0 = 0,
              std::uint64_t a1 = 0) {
    if (!enabled()) return;
    Ring& r = local_ring();
    const std::uint64_t n = r.n.load(std::memory_order_relaxed);
    r.slots[n % r.slots.size()] =
        Span{trace_id, stage, lane, ts_ns, dur_ns, a0, a1};
    r.n.store(n + 1, std::memory_order_release);
  }

  /// Merge every ring (newest `ring_capacity` spans per thread) and sort
  /// by start time, longer spans first on ties so parents precede
  /// children. Non-destructive.
  std::vector<Span> snapshot() const {
    std::vector<Span> out;
    std::lock_guard lock(mu_);
    for (const auto& rp : rings_) {
      const Ring& r = *rp;
      const std::uint64_t n = r.n.load(std::memory_order_acquire);
      const std::uint64_t cap = r.slots.size();
      for (std::uint64_t i = n > cap ? n - cap : 0; i < n; ++i) {
        out.push_back(r.slots[i % cap]);
      }
    }
    std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
      return a.ts_ns != b.ts_ns ? a.ts_ns < b.ts_ns : a.dur_ns > b.dur_ns;
    });
    return out;
  }

  /// Total spans recorded since configure() (including any that wrapped
  /// out of their ring).
  std::uint64_t recorded() const {
    std::lock_guard lock(mu_);
    std::uint64_t n = 0;
    for (const auto& rp : rings_) {
      n += rp->n.load(std::memory_order_acquire);
    }
    return n;
  }

  std::uint64_t sample_every() const noexcept {
    return sample_every_.load(std::memory_order_relaxed);
  }

  /// Chrome trace-event JSON ("X" complete events, ts/dur in
  /// microseconds at nanosecond resolution). Loadable in chrome://tracing
  /// and Perfetto; validated by tools/check_trace_json.py.
  void write_chrome_json(std::ostream& os) const {
    const auto spans = snapshot();
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    os << std::fixed << std::setprecision(3);
    bool first = true;
    for (const auto& s : spans) {
      os << (first ? "\n" : ",\n") << " {\"name\":\"" << stage_name(s.stage)
         << "\",\"cat\":\"" << (s.lane >= kQueryLaneBase ? "query" : "engine")
         << "\",\"ph\":\"X\",\"ts\":"
         << static_cast<double>(s.ts_ns) / 1000.0
         << ",\"dur\":" << static_cast<double>(s.dur_ns) / 1000.0
         << ",\"pid\":1,\"tid\":" << s.lane << ",\"args\":{\"trace\":"
         << s.trace << ",\"a0\":" << s.a0 << ",\"a1\":" << s.a1 << "}}";
      first = false;
    }
    os << "\n]}\n";
  }

  /// Convenience: dump to a file; returns false if the file won't open.
  bool write_chrome_json(const std::string& path) const {
    std::ofstream f(path);
    if (!f) return false;
    write_chrome_json(f);
    return static_cast<bool>(f);
  }

 private:
  struct Ring {
    explicit Ring(std::size_t cap) : slots(cap) {}
    std::vector<Span> slots;
    std::atomic<std::uint64_t> n{0};  ///< total appended; slot = n % size
  };

  Ring& local_ring() {
    thread_local std::shared_ptr<Ring> ring;
    thread_local std::uint64_t ring_gen = ~std::uint64_t{0};
    const std::uint64_t gen = generation_.load(std::memory_order_relaxed);
    if (!ring || ring_gen != gen) {
      std::lock_guard lock(mu_);
      ring = std::make_shared<Ring>(cap_);
      ring_gen = generation_.load(std::memory_order_relaxed);
      rings_.push_back(ring);
    }
    return *ring;
  }

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<Ring>> rings_;  ///< shared so rings outlive threads
  std::size_t cap_ = 1 << 14;
  std::uint64_t epoch_ns_ = util::metrics::clock_ns();
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::uint64_t> sample_every_{1};
  std::atomic<bool> enabled_{false};
};

/// RAII thread-lane span: arms at construction (when tracing is enabled
/// and `when` holds — pass `trace != 0` for query-scope stages), records
/// on destruction or explicit finish(). Zero clock reads when disarmed.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Stage stage, std::uint64_t trace_id, bool when = true) {
    start(stage, trace_id, when);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { finish(); }

  /// Arm a default-constructed span (for sites that learn the trace id
  /// only after some locking).
  void start(Stage stage, std::uint64_t trace_id, bool when = true) {
    Tracer& t = Tracer::instance();
    if (!when || !t.enabled()) return;
    armed_ = true;
    stage_ = stage;
    trace_ = trace_id;
    t0_ = t.now_ns();
  }

  /// Attach stage arguments (batch size, flops, ...) before the span ends.
  void args(std::uint64_t a0, std::uint64_t a1 = 0) noexcept {
    a0_ = a0;
    a1_ = a1;
  }

  void finish() {
    if (!armed_) return;
    armed_ = false;
    Tracer& t = Tracer::instance();
    t.record(stage_, trace_, Tracer::thread_lane(), t0_, t.now_ns() - t0_,
             a0_, a1_);
  }

 private:
  bool armed_ = false;
  Stage stage_ = Stage::kSubmit;
  std::uint64_t trace_ = 0;
  std::uint64_t t0_ = 0;
  std::uint64_t a0_ = 0;
  std::uint64_t a1_ = 0;
};

}  // namespace hyperspace::serve::trace
