#pragma once
// Per-row SpGEMM accumulators — the pluggable core of the multiply engine.
//
// Every ⊕.⊗ product in this library reduces to the same inner loop: scatter
// partial products S::mul(a_ik, b_kj) into a per-row accumulator keyed by
// output column j, folding duplicates with S::add in encounter order, then
// extract the row sorted by column. This header factors that loop into an
// *accumulator concept* (RowAccumulatorFor) with three strategies:
//
//   * DenseAccumulator      — O(ncols) value + visit-stamp arrays, reused
//     across rows via an epoch counter. Fastest for modest ncols(B);
//     impossible in the hypersparse regime.
//   * FlatHashAccumulator   — open-addressing table in flat arrays
//     (multiplicative hashing, linear probing, power-of-two capacity,
//     KEY_EMPTY sentinel — the cheetah local-hypertable idiom). O(flops)
//     memory independent of dimension; the hypersparse workhorse.
//   * SortedMergeAccumulator — append (col, val) pairs, stable-sort by
//     column at extract and fold runs left-to-right. Wins when rows are
//     tiny or nearly sorted; also the simplest reference.
//
// StdMapAccumulator wraps std::unordered_map with the same interface; it is
// the pre-refactor baseline, kept for equivalence tests and the ablation
// bench, not for production dispatch.
//
// All four fold duplicate columns with S::add in first-encounter order, so
// every strategy produces bit-identical rows (floats included) and the mxm
// driver can swap them freely.
//
// Mask fusion: MaskDesc / RowMaskProbe let the driver consult a structural
// (or complemented) mask *during* accumulation, so masked products do
// O(kept) accumulator work instead of materializing O(produced) entries and
// filtering. MxmMaskStats records kept/skipped flop counts — the planner's
// skip-counting and the BFS O(kept) assertions read them.

#include <algorithm>
#include <bit>
#include <concepts>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "semiring/concepts.hpp"
#include "sparse/types.hpp"
#include "util/metrics.hpp"
#include "sparse/view.hpp"

namespace hyperspace::sparse {

/// How the fused kernel probes a mask row for membership.
///   * kBinary — binary-search the sorted mask row per product: O(log len),
///     no setup. Right for sparse mask rows.
///   * kBitmap — arm a per-row bitmap once (O(len)) and probe O(1) per
///     product. Wins for dense mask rows probed many times (late-BFS
///     ¬visited); impossible when the mask's column space is hypersparse-
///     huge (the bitmap would be O(ncols) bits).
///   * kMerge  — two-pointer merge of the mask row against B's sorted row:
///     probes within one B-row scan arrive in ascending column order, so a
///     cursor walks the mask row once per scan — O(len + probes) amortized,
///     no arming pass and no O(ncols) allocation, so it stays admissible in
///     hypersparse column spaces where the bitmap is not.
///   * kAuto   — bitmap iff the row is dense enough and probed enough to
///     amortize arming (see detail::use_bitmap_probe); else the merge for
///     the mid-density band (long mask rows, enough probes to amortize the
///     walk — detail::use_merge_probe); else binary search.
enum class MaskProbe : unsigned char { kAuto, kBinary, kBitmap, kMerge };

/// Structural mask descriptor: which positions of M count, whether the
/// sense is complemented, and how rows are probed.
struct MaskDesc {
  bool complement = false;
  MaskProbe probe = MaskProbe::kAuto;
};

/// Flop accounting for fused masked products. Totals are sums of per-row
/// integer counts, so they are identical for every thread count.
struct MxmMaskStats {
  std::uint64_t flops_kept = 0;     ///< products that reached an accumulator
  std::uint64_t flops_skipped = 0;  ///< products dropped by the mask probe

  std::uint64_t flops_total() const { return flops_kept + flops_skipped; }
};

/// A per-row accumulator for semiring S: begin_row() resets, reserve() sizes
/// for an expected entry count, accumulate() folds one partial product with
/// S::add in encounter order, extract_sorted() appends the row's entries in
/// ascending column order and leaves the accumulator reusable.
template <typename A, typename S>
concept RowAccumulatorFor =
    semiring::Semiring<S> &&
    requires(A a, Index j, typename S::value_type v, std::vector<Index>& cols,
             std::vector<typename S::value_type>& vals, std::size_t n) {
      a.begin_row();
      a.reserve(n);
      a.accumulate(j, v);
      a.extract_sorted(cols, vals);
    };

/// Dense scratch accumulator (the Gustavson strategy). Width fixed at
/// construction; rows are "cleared" by bumping an epoch stamp, so per-row
/// cost is O(row nnz), not O(ncols).
template <semiring::Semiring S>
class DenseAccumulator {
  using T = typename S::value_type;

 public:
  explicit DenseAccumulator(Index width)
      : acc_(static_cast<std::size_t>(width), S::zero()),
        stamp_(static_cast<std::size_t>(width), -1) {}

  void begin_row() {
    ++epoch_;
    touched_.clear();
  }
  void reserve(std::size_t) {}  // width is fixed; nothing to size per row

  void accumulate(Index j, const T& v) {
    const auto p = static_cast<std::size_t>(j);
    if (stamp_[p] != epoch_) {
      stamp_[p] = epoch_;
      acc_[p] = v;
      touched_.push_back(j);
    } else {
      acc_[p] = S::add(acc_[p], v);
    }
  }

  void extract_sorted(std::vector<Index>& cols, std::vector<T>& vals) {
    std::sort(touched_.begin(), touched_.end());
    cols.reserve(cols.size() + touched_.size());
    vals.reserve(vals.size() + touched_.size());
    for (const Index j : touched_) {
      cols.push_back(j);
      vals.push_back(std::move(acc_[static_cast<std::size_t>(j)]));
    }
  }

 private:
  std::vector<T> acc_;
  std::vector<Index> stamp_;
  std::vector<Index> touched_;
  Index epoch_ = 0;
};

/// Flat open-addressing hash accumulator. Keys and values live in parallel
/// flat arrays (no per-node allocation); probing is linear from a
/// multiplicative (Fibonacci) hash; capacity is a power of two grown at 50%
/// load. KEY_EMPTY = -1 marks free buckets — column indices are always
/// non-negative. No deletion (accumulators only insert), so no tombstones.
template <semiring::Semiring S>
class FlatHashAccumulator {
  using T = typename S::value_type;
  static constexpr Index kEmpty = -1;
  static constexpr std::size_t kMinCapacity = 16;

 public:
  void begin_row() {
    // O(occupied) sparse clear: only touched buckets are reset.
    for (const std::uint32_t b : slots_) keys_[b] = kEmpty;
    slots_.clear();
  }

  /// Size for an expected number of distinct columns; grows only (capacity
  /// persists across rows so hypersparse row sequences stop re-allocating).
  void reserve(std::size_t expected) {
    const std::size_t want =
        std::max(kMinCapacity, std::bit_ceil(expected * 2));
    if (want > keys_.size()) rehash(want);
  }

  void accumulate(Index j, const T& v) {
    if (slots_.size() * 2 >= keys_.size()) {
      rehash(std::max(kMinCapacity, keys_.size() * 2));
    }
    const std::size_t b = find_bucket(j);
    if (keys_[b] == kEmpty) {
      keys_[b] = j;
      vals_[b] = v;
      slots_.push_back(static_cast<std::uint32_t>(b));
    } else {
      vals_[b] = S::add(vals_[b], v);
    }
  }

  void extract_sorted(std::vector<Index>& cols, std::vector<T>& vals) {
    // Sort bucket indices by key so values move once, at emit time.
    std::sort(slots_.begin(), slots_.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                return keys_[a] < keys_[b];
              });
    cols.reserve(cols.size() + slots_.size());
    vals.reserve(vals.size() + slots_.size());
    for (const std::uint32_t b : slots_) {
      cols.push_back(keys_[b]);
      vals.push_back(std::move(vals_[b]));
    }
  }

  std::size_t capacity() const { return keys_.size(); }
  std::size_t size() const { return slots_.size(); }

 private:
  std::size_t find_bucket(Index j) const {
    const std::size_t mask = keys_.size() - 1;
    // Fibonacci hashing: multiply by 2^64/φ and keep the TOP log2(capacity)
    // bits (shift tracks capacity), so every key bit — high column bits of
    // power-of-two-strided hypersparse keys included — influences the
    // bucket. A fixed low shift would collapse such keys into one probe
    // chain.
    const auto h = static_cast<std::uint64_t>(j) * 0x9E3779B97F4A7C15ULL;
    std::size_t b = static_cast<std::size_t>(h >> shift_);
    while (keys_[b] != kEmpty && keys_[b] != j) b = (b + 1) & mask;
    return b;
  }

  void rehash(std::size_t new_capacity) {
    std::vector<Index> old_keys = std::move(keys_);
    std::vector<T> old_vals = std::move(vals_);
    std::vector<std::uint32_t> old_slots = std::move(slots_);
    keys_.assign(new_capacity, kEmpty);
    vals_.assign(new_capacity, T{});
    shift_ = 64 - std::bit_width(new_capacity - 1);
    slots_.clear();
    slots_.reserve(old_slots.size());
    for (const std::uint32_t ob : old_slots) {
      const std::size_t b = find_bucket(old_keys[ob]);
      keys_[b] = old_keys[ob];
      vals_[b] = std::move(old_vals[ob]);
      slots_.push_back(static_cast<std::uint32_t>(b));
    }
  }

  std::vector<Index> keys_;          ///< kEmpty or a column index
  std::vector<T> vals_;
  std::vector<std::uint32_t> slots_; ///< occupied bucket indices, insert order
  int shift_ = 64;                   ///< 64 - log2(capacity)
};

/// Sorted-merge accumulator: defer all folding to extract time. Appends are
/// O(1); extract stable-sorts by column (stability keeps duplicates in
/// encounter order) and folds runs left-to-right, matching the other
/// strategies bit-for-bit.
template <semiring::Semiring S>
class SortedMergeAccumulator {
  using T = typename S::value_type;

 public:
  void begin_row() { pairs_.clear(); }
  void reserve(std::size_t expected) { pairs_.reserve(expected); }

  void accumulate(Index j, const T& v) { pairs_.push_back({j, v}); }

  void extract_sorted(std::vector<Index>& cols, std::vector<T>& vals) {
    std::stable_sort(pairs_.begin(), pairs_.end(),
                     [](const Pair& a, const Pair& b) { return a.col < b.col; });
    for (std::size_t i = 0; i < pairs_.size();) {
      std::size_t k = i + 1;
      T acc = std::move(pairs_[i].val);
      while (k < pairs_.size() && pairs_[k].col == pairs_[i].col) {
        acc = S::add(acc, pairs_[k].val);
        ++k;
      }
      cols.push_back(pairs_[i].col);
      vals.push_back(std::move(acc));
      i = k;
    }
  }

 private:
  struct Pair {
    Index col;
    T val;
  };
  std::vector<Pair> pairs_;
};

/// std::unordered_map accumulator — the pre-refactor baseline. Kept so the
/// flat table has an in-tree referee (equivalence tests) and a bench
/// baseline (BENCH_spgemm.json); never selected by automatic dispatch.
template <semiring::Semiring S>
class StdMapAccumulator {
  using T = typename S::value_type;

 public:
  void begin_row() { map_.clear(); }
  void reserve(std::size_t expected) { map_.reserve(expected); }

  void accumulate(Index j, const T& v) {
    auto [it, inserted] = map_.try_emplace(j, v);
    if (!inserted) it->second = S::add(it->second, v);
  }

  void extract_sorted(std::vector<Index>& cols, std::vector<T>& vals) {
    const std::size_t base = cols.size();
    cols.reserve(base + map_.size());
    for (const auto& [j, _] : map_) cols.push_back(j);
    std::sort(cols.begin() + static_cast<std::ptrdiff_t>(base), cols.end());
    vals.reserve(vals.size() + map_.size());
    for (std::size_t i = base; i < cols.size(); ++i) {
      vals.push_back(std::move(map_.at(cols[i])));
    }
  }

 private:
  std::unordered_map<Index, T> map_;
};

namespace detail {

/// Widest mask column space the bitmap probe will allocate for: 2^24 bits
/// = 2 MiB per worker thread. Beyond this (hypersparse masks) the probe
/// falls back to binary search regardless of MaskProbe.
inline constexpr Index kMaxMaskBitmapWidth = Index{1} << 24;

/// kAuto bitmap gate, density half: rows shorter than this never arm.
inline constexpr std::size_t kMaskBitmapMinRowLen = 64;

/// Should this mask row be probed through a bitmap? Arming costs O(len)
/// (set + lazy clear); each probe then costs O(1) instead of O(log len).
/// kAuto arms when the row is dense in its column space (≥ 1/8) and the
/// row's flop count gives enough probes to amortize the arming pass.
inline bool use_bitmap_probe(MaskProbe probe, std::size_t row_len,
                             std::size_t flops_hint, Index ncols) {
  if (row_len == 0 || ncols > kMaxMaskBitmapWidth) return false;
  if (probe == MaskProbe::kBinary || probe == MaskProbe::kMerge) return false;
  if (probe == MaskProbe::kBitmap) return true;
  return row_len >= kMaskBitmapMinRowLen &&
         row_len * 8 >= static_cast<std::size_t>(ncols) &&
         flops_hint * 4 >= row_len;
}

/// kAuto merge gate: rows long enough that the per-probe log factor of the
/// binary search hurts, probed often enough to amortize one O(len) cursor
/// walk per B-row scan. Consulted only after use_bitmap_probe declined, so
/// kAuto resolves bitmap > merge > binary — the merge owns the mid-density
/// band (too sparse in its column space to arm a bitmap, too long to
/// binary-search per product) and the hypersparse column spaces where the
/// bitmap is inadmissible outright.
inline bool use_merge_probe(MaskProbe probe, std::size_t row_len,
                            std::size_t flops_hint) {
  if (row_len == 0) return false;
  if (probe == MaskProbe::kMerge) return true;
  if (probe != MaskProbe::kAuto) return false;
  return row_len >= kMaskBitmapMinRowLen && flops_hint * 4 >= row_len;
}

/// Per-worker bitmap scratch for the mask probe. Armed lazily per mask row;
/// the previous row's bits are cleared on the next arm (O(previous len)),
/// so total extra work is O(Σ armed row lengths), never O(ncols · rows).
struct MaskBitmapScratch {
  std::vector<std::uint64_t> bits;
  std::span<const Index> armed;  ///< columns currently set

  const std::uint64_t* arm(std::span<const Index> cols, Index ncols) {
    for (const Index j : armed) {
      bits[static_cast<std::size_t>(j >> 6)] &=
          ~(std::uint64_t{1} << (j & 63));
    }
    const auto words = static_cast<std::size_t>((ncols + 63) >> 6);
    if (bits.size() < words) bits.resize(words, 0);
    for (const Index j : cols) {
      bits[static_cast<std::size_t>(j >> 6)] |= std::uint64_t{1} << (j & 63);
    }
    armed = cols;
    return bits.data();
  }
};

/// One resolved mask row: a sorted column span, the sense, and (optionally)
/// an armed bitmap for O(1) probes. Shared by every masked policy.
/// `col_shift` supports two-sided batched blocks (multi-base serving):
/// the mask's columns live in its query's LOCAL column space, so a stacked
/// output column j probes at j − col_shift. Probes that fall outside the
/// local space miss structurally (hit = false).
struct MaskRow {
  std::span<const Index> cols;
  bool complement = false;
  const std::uint64_t* bits = nullptr;
  Index col_shift = 0;  ///< stacked column j probes local column j − shift
  Index bit_limit = 0;  ///< armed bitmap width (meaningful iff bits != null)
  mutable bool merge = false;  ///< two-pointer merge probe (mid-density)
  mutable std::size_t cursor = 0;  ///< merge probe: first mask col ≥ last c
  mutable std::size_t steps = 0;   ///< merge probe: cursor work spent so far
  mutable std::size_t probes = 0;  ///< merge probe: probes answered so far
  mutable Index last_c = -1;       ///< merge probe: previous probed column

  bool all_blocked() const { return !complement && cols.empty(); }
  bool all_allowed() const { return complement && cols.empty(); }
  bool allowed(Index j) const {
    const Index c = j - col_shift;
    bool hit;
    if (c < 0) {
      hit = false;
    } else if (bits) {
      hit = c < bit_limit &&
            ((bits[static_cast<std::size_t>(c >> 6)] >> (c & 63)) & 1) != 0;
    } else if (merge) {
      // Probes within one B-row scan come in ascending column order, so
      // the cursor only moves forward; a descending probe marks a new
      // scan (next A-entry's B row) and rewinds it. On the sorted scans
      // the SpGEMM driver issues the total cursor work per mask row is
      // O(len + probes) — but many scans that each land deep in the mask
      // row would re-walk it per rewind, so once the cursor work stops
      // amortizing against what binary search would have cost (~log per
      // probe) the row retires to binary search for its remaining probes.
      // Answers are identical either way; the cap just bounds the worst
      // case, so kAuto can never lose more than a constant factor.
      if (c < last_c) cursor = 0;
      last_c = c;
      const std::size_t start = cursor;
      while (cursor < cols.size() && cols[cursor] < c) ++cursor;
      hit = cursor < cols.size() && cols[cursor] == c;
      steps += cursor - start;
      ++probes;
      if (steps > probes * 16 + 64) merge = false;
    } else {
      hit = std::binary_search(cols.begin(), cols.end(), c);
    }
    return hit != complement;
  }
};

/// Resolve row r of mask view `m` under `desc`, arming the bitmap probe
/// when the desc/auto rule says so. An absent mask row blocks everything
/// (plain sense) or allows everything (complement sense) — the driver's
/// whole-row fast paths.
template <typename U>
MaskRow mask_row_lookup(const SparseView<U>& m, Index r, MaskDesc desc,
                        std::size_t flops_hint, MaskBitmapScratch& scratch,
                        Index col_shift = 0) {
  const auto it = std::lower_bound(m.row_ids.begin(), m.row_ids.end(), r);
  if (it == m.row_ids.end() || *it != r) {
    return {{}, desc.complement, nullptr, col_shift, 0};
  }
  const auto ri = static_cast<std::size_t>(it - m.row_ids.begin());
  const auto cols = m.row_cols(ri);
  const std::uint64_t* bits = nullptr;
  if (use_bitmap_probe(desc.probe, cols.size(), flops_hint, m.ncols)) {
    bits = scratch.arm(cols, m.ncols);
  }
  const bool merge =
      !bits && use_merge_probe(desc.probe, cols.size(), flops_hint);
  if (util::metrics::enabled()) {
    // Probe-strategy mix (bitmap / merge / binary), one count per mask row
    // armed. Gate decisions depend only on shape, never on timing, so the
    // mix is thread-count invariant.
    namespace hm = util::metrics;
    static auto& bitmap_rows = hm::Registry::instance().counter(
        "mxm.probe.bitmap_rows", hm::Stability::kInvariant);
    static auto& merge_rows = hm::Registry::instance().counter(
        "mxm.probe.merge_rows", hm::Stability::kInvariant);
    static auto& binary_rows = hm::Registry::instance().counter(
        "mxm.probe.binary_rows", hm::Stability::kInvariant);
    (bits != nullptr ? bitmap_rows : merge ? merge_rows : binary_rows).inc();
  }
  return {cols,      desc.complement, bits, col_shift,
          bits ? m.ncols : Index{0}, merge};
}

/// No-mask policy: every column is allowed; compiles out of the driver.
struct NoMask {
  static constexpr bool kMasked = false;
  struct Scratch {};
  struct Row {
    bool all_blocked() const { return false; }
    bool all_allowed() const { return true; }
    bool allowed(Index) const { return true; }
  };
  Row row(Index, std::size_t, Scratch&) const { return {}; }
};

/// Structural mask over a sparse view: one MaskDesc governs every row.
template <typename U>
struct StructuralMask {
  static constexpr bool kMasked = true;
  SparseView<U> m;
  MaskDesc desc;

  using Scratch = MaskBitmapScratch;
  using Row = MaskRow;

  Row row(Index r, std::size_t flops_hint, Scratch& s) const {
    return mask_row_lookup(m, r, desc, flops_hint, s);
  }
};

/// Batched (block-diagonal serving) mask: rows of the stacked operand are
/// partitioned into K contiguous query blocks by `row_offsets` (size K+1),
/// and block q probes the shared stacked mask under its own MaskDesc.
/// Queries without masks contribute no mask rows under a complement sense —
/// absent row ⇒ all allowed — so masked, complement-masked, and unmasked
/// queries coalesce into ONE fused kernel launch.
template <typename U>
struct BatchMask {
  static constexpr bool kMasked = true;
  SparseView<U> m;
  std::span<const Index> row_offsets;  ///< size K+1, ascending
  std::span<const MaskDesc> descs;     ///< size K, one per query block
  /// Two-sided blocks (multi-base serving): block q's mask columns are in
  /// its base's local column space, so stacked column j probes j −
  /// col_offsets[q]. Empty ⇒ one shared column space (no shift).
  std::span<const Index> col_offsets{};

  using Scratch = MaskBitmapScratch;
  using Row = MaskRow;

  Row row(Index r, std::size_t flops_hint, Scratch& s) const {
    const auto q = static_cast<std::size_t>(
        std::upper_bound(row_offsets.begin(), row_offsets.end(), r) -
        row_offsets.begin() - 1);
    const Index shift = col_offsets.empty() ? Index{0} : col_offsets[q];
    return mask_row_lookup(m, r, descs[q], flops_hint, s, shift);
  }
};

/// No-carry policy: accumulators start empty; compiles out of the driver.
struct NoCarry {
  static constexpr bool kCarry = false;
  struct Row {
    std::span<const Index> cols;
    bool empty() const { return true; }
  };
  Row row(Index) const { return {}; }
};

/// Carry (seed) policy — the shard-chain gather's fold-continuation hook.
/// Before any product of stacked row r is accumulated, the driver seeds the
/// row's accumulator with the carry row's entries: the carry is a partial
/// result from an earlier launch (an earlier shard's fold over a prefix of
/// the inner dimension), and seeding it as the accumulator's initial values
/// makes the current launch CONTINUE that flat left fold — so chaining
/// launches over an ordered partition of the inner dimension is
/// bit-identical to one unsharded launch, floats included. Carry entries
/// are seeds, not products: they are never mask-probed (they were produced
/// under the same mask) and add no flops to MxmMaskStats.
///
/// Rows are partitioned into K contiguous query blocks by `row_offsets`
/// (the serving batcher's layout); block q's rows seed from its own carry
/// view, addressed in the query's local row space. A default (empty) view
/// means no carry for that block. `col_offsets` (two-sided stacks) shifts
/// block q's carry columns — stored in the query's LOCAL column space —
/// into the stacked output column space.
template <typename T>
struct MultiCarry {
  static constexpr bool kCarry = true;
  std::span<const SparseView<T>> views;  ///< size K, one per query block
  std::span<const Index> row_offsets;    ///< size K+1, ascending
  /// Per-block column shift: local carry column c seeds stacked column
  /// c + col_offsets[q]. Empty ⇒ no shift (one shared column space).
  std::span<const Index> col_offsets{};

  struct Row {
    std::span<const Index> cols;
    std::span<const T> vals;
    Index col_shift = 0;
    bool empty() const { return cols.empty(); }
  };

  Row row(Index r) const {
    const auto q = static_cast<std::size_t>(
        std::upper_bound(row_offsets.begin(), row_offsets.end(), r) -
        row_offsets.begin() - 1);
    const auto& v = views[q];
    const Index local = r - row_offsets[q];
    const auto it = std::lower_bound(v.row_ids.begin(), v.row_ids.end(), local);
    if (it == v.row_ids.end() || *it != local) return {};
    const auto ri = static_cast<std::size_t>(it - v.row_ids.begin());
    return {v.row_cols(ri), v.row_vals(ri),
            col_offsets.empty() ? Index{0} : col_offsets[q]};
  }
};

/// BatchMask without the stacked mask matrix: block q's rows probe query
/// q's OWN mask view, addressed in the query's local row space (stacked
/// row r ↦ local row r − row_offsets[q]). Unmasked queries pass a default
/// (empty) view with a complement desc — every row absent ⇒ all allowed.
/// This is the serving batcher's zero-copy mask path: semantics identical
/// to BatchMask over concat-ed masks, with no mask entry ever copied.
template <typename U>
struct MultiMask {
  static constexpr bool kMasked = true;
  std::span<const SparseView<U>> views;  ///< size K, one per query block
  std::span<const Index> row_offsets;    ///< size K+1, ascending
  std::span<const MaskDesc> descs;       ///< size K
  /// Per-block column shift for two-sided (multi-base) stacks: block q's
  /// mask addresses its own base's column space, so stacked column j
  /// probes local column j − col_offsets[q]. Empty ⇒ no shift.
  std::span<const Index> col_offsets{};

  using Scratch = MaskBitmapScratch;
  using Row = MaskRow;

  Row row(Index r, std::size_t flops_hint, Scratch& s) const {
    const auto q = static_cast<std::size_t>(
        std::upper_bound(row_offsets.begin(), row_offsets.end(), r) -
        row_offsets.begin() - 1);
    const Index shift = col_offsets.empty() ? Index{0} : col_offsets[q];
    return mask_row_lookup(views[q], r - row_offsets[q], descs[q],
                           flops_hint, s, shift);
  }
};

}  // namespace detail

}  // namespace hyperspace::sparse
