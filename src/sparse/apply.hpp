#pragma once
// Per-entry transforms: apply (GrB_apply), select (GxB_select), and the
// element-wise zero-norm ||·||₀ of Table II, which "maps all non-zero
// elements to 1" — the workhorse that turns values into pure sparsity
// patterns (used by the §IV identities and the §V-B database mask).
//
// apply is a 1:1 map, parallelized straight over the entry list; the
// filters (select / prune / zero_norm) run per fixed chunk with per-chunk
// output spliced in chunk order — both shapes are deterministic for any
// thread count.

#include <utility>
#include <vector>

#include "semiring/concepts.hpp"
#include "sparse/matrix.hpp"
#include "sparse/slices.hpp"
#include "util/parallel.hpp"

namespace hyperspace::sparse {

/// Entries per task in the per-entry kernels.
inline constexpr std::ptrdiff_t kApplyGrain = 1024;

/// C(i,j) = f(A(i,j)) on stored entries. f may change the value type.
template <typename T, typename F>
auto apply(const Matrix<T>& A, F&& f) {
  using U = std::decay_t<decltype(f(std::declval<const T&>()))>;
  const auto triples = A.to_triples();
  std::vector<Triple<U>> out(triples.size());
  util::parallel_for(0, static_cast<std::ptrdiff_t>(triples.size()),
                     kApplyGrain, [&](std::ptrdiff_t i) {
                       const auto& t = triples[static_cast<std::size_t>(i)];
                       out[static_cast<std::size_t>(i)] = {t.row, t.col,
                                                           f(t.val)};
                     });
  return Matrix<U>::from_canonical_triples(A.nrows(), A.ncols(), out);
}

/// Keep entries where pred(row, col, value) holds.
template <typename T, typename Pred>
Matrix<T> select(const Matrix<T>& A, Pred&& pred) {
  auto triples = A.to_triples();
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(triples.size());
  std::vector<std::vector<Triple<T>>> parts(
      static_cast<std::size_t>(util::chunk_count(n, kApplyGrain)));
  util::parallel_chunks(
      0, n, kApplyGrain,
      [&](std::ptrdiff_t chunk, std::ptrdiff_t lo, std::ptrdiff_t hi) {
        auto& part = parts[static_cast<std::size_t>(chunk)];
        for (std::ptrdiff_t i = lo; i < hi; ++i) {
          auto& t = triples[static_cast<std::size_t>(i)];
          if (pred(t.row, t.col, t.val)) part.push_back(std::move(t));
        }
      });
  const auto out = detail::splice_triple_chunks(parts);
  return Matrix<T>::from_canonical_triples(A.nrows(), A.ncols(), out,
                                           A.implicit_zero());
}

/// Drop stored entries equal to the semiring zero (GraphBLAS "prune").
template <semiring::Semiring S>
Matrix<typename S::value_type> prune(const Matrix<typename S::value_type>& A) {
  using T = typename S::value_type;
  return select(A, [](Index, Index, const T& v) { return !(v == S::zero()); });
}

/// |A|₀ — zero-norm: entries not equal to 0 become 1; explicit zeros are
/// dropped. The result is the sparsity pattern of A expressed in S.
template <semiring::Semiring S>
Matrix<typename S::value_type> zero_norm(
    const Matrix<typename S::value_type>& A) {
  using T = typename S::value_type;
  const auto triples = A.to_triples();
  const std::ptrdiff_t n = static_cast<std::ptrdiff_t>(triples.size());
  std::vector<std::vector<Triple<T>>> parts(
      static_cast<std::size_t>(util::chunk_count(n, kApplyGrain)));
  util::parallel_chunks(
      0, n, kApplyGrain,
      [&](std::ptrdiff_t chunk, std::ptrdiff_t lo, std::ptrdiff_t hi) {
        auto& part = parts[static_cast<std::size_t>(chunk)];
        for (std::ptrdiff_t i = lo; i < hi; ++i) {
          const auto& t = triples[static_cast<std::size_t>(i)];
          if (!(t.val == S::zero())) part.push_back({t.row, t.col, S::one()});
        }
      });
  const auto out = detail::splice_triple_chunks(parts);
  return Matrix<T>::from_canonical_triples(A.nrows(), A.ncols(), out,
                                           S::zero());
}

/// Same-sparsity test |A|₀ = |B|₀ (Table II), independent of values.
template <typename T, typename U>
bool same_sparsity(const Matrix<T>& A, const Matrix<U>& B) {
  if (A.nrows() != B.nrows() || A.ncols() != B.ncols()) return false;
  const auto ta = A.to_triples();
  const auto tb = B.to_triples();
  if (ta.size() != tb.size()) return false;
  for (std::size_t i = 0; i < ta.size(); ++i) {
    if (ta[i].row != tb[i].row || ta[i].col != tb[i].col) return false;
  }
  return true;
}

}  // namespace hyperspace::sparse
