#pragma once
// Per-entry transforms: apply (GrB_apply), select (GxB_select), and the
// element-wise zero-norm ||·||₀ of Table II, which "maps all non-zero
// elements to 1" — the workhorse that turns values into pure sparsity
// patterns (used by the §IV identities and the §V-B database mask).

#include <utility>
#include <vector>

#include "semiring/concepts.hpp"
#include "sparse/matrix.hpp"

namespace hyperspace::sparse {

/// C(i,j) = f(A(i,j)) on stored entries. f may change the value type.
template <typename T, typename F>
auto apply(const Matrix<T>& A, F&& f) {
  using U = std::decay_t<decltype(f(std::declval<const T&>()))>;
  auto triples = A.to_triples();
  std::vector<Triple<U>> out;
  out.reserve(triples.size());
  for (auto& t : triples) out.push_back({t.row, t.col, f(t.val)});
  return Matrix<U>::from_canonical_triples(A.nrows(), A.ncols(), out);
}

/// Keep entries where pred(row, col, value) holds.
template <typename T, typename Pred>
Matrix<T> select(const Matrix<T>& A, Pred&& pred) {
  auto triples = A.to_triples();
  std::vector<Triple<T>> out;
  out.reserve(triples.size());
  for (auto& t : triples) {
    if (pred(t.row, t.col, t.val)) out.push_back(std::move(t));
  }
  return Matrix<T>::from_canonical_triples(A.nrows(), A.ncols(), out,
                                           A.implicit_zero());
}

/// Drop stored entries equal to the semiring zero (GraphBLAS "prune").
template <semiring::Semiring S>
Matrix<typename S::value_type> prune(const Matrix<typename S::value_type>& A) {
  using T = typename S::value_type;
  return select(A, [](Index, Index, const T& v) { return !(v == S::zero()); });
}

/// |A|₀ — zero-norm: entries not equal to 0 become 1; explicit zeros are
/// dropped. The result is the sparsity pattern of A expressed in S.
template <semiring::Semiring S>
Matrix<typename S::value_type> zero_norm(
    const Matrix<typename S::value_type>& A) {
  using T = typename S::value_type;
  auto triples = A.to_triples();
  std::vector<Triple<T>> out;
  out.reserve(triples.size());
  for (auto& t : triples) {
    if (!(t.val == S::zero())) out.push_back({t.row, t.col, S::one()});
  }
  return Matrix<T>::from_canonical_triples(A.nrows(), A.ncols(), out,
                                           S::zero());
}

/// Same-sparsity test |A|₀ = |B|₀ (Table II), independent of values.
template <typename T, typename U>
bool same_sparsity(const Matrix<T>& A, const Matrix<U>& B) {
  if (A.nrows() != B.nrows() || A.ncols() != B.ncols()) return false;
  const auto ta = A.to_triples();
  const auto tb = B.to_triples();
  if (ta.size() != tb.size()) return false;
  for (std::size_t i = 0; i < ta.size(); ++i) {
    if (ta[i].row != tb[i].row || ta[i].col != tb[i].col) return false;
  }
  return true;
}

}  // namespace hyperspace::sparse
