#pragma once
// Bitmap format — presence byte per position plus a value array.
//
// SuiteSparse:GraphBLAS (paper, Conclusions) uses bitmap for matrices that
// are too dense for CSR's per-entry index overhead but still have holes.
// O(nrows*ncols) storage; O(1) random access and update.

#include <cassert>
#include <stdexcept>
#include <vector>

#include "sparse/types.hpp"

namespace hyperspace::sparse {

/// Largest nrows*ncols we will allocate for bitmap/dense formats. Beyond
/// this the dimension is in hypersparse territory and densifying is a bug.
inline constexpr Index kMaxDenseExtent = Index{1} << 26;

template <typename T>
class Bitmap {
 public:
  Bitmap() = default;

  Bitmap(Index nrows, Index ncols) : nrows_(nrows), ncols_(ncols) {
    if (nrows < 0 || ncols < 0 ||
        (nrows > 0 && ncols > kMaxDenseExtent / std::max<Index>(nrows, 1))) {
      throw std::length_error("Bitmap: dimensions too large to densify");
    }
    present_.assign(static_cast<std::size_t>(nrows * ncols), 0);
    vals_.assign(static_cast<std::size_t>(nrows * ncols), T{});
  }

  Index nrows() const { return nrows_; }
  Index ncols() const { return ncols_; }

  Index nnz() const {
    Index n = 0;
    for (auto p : present_) n += p;
    return n;
  }

  bool has(Index r, Index c) const { return present_[pos(r, c)] != 0; }
  const T& at(Index r, Index c) const { return vals_[pos(r, c)]; }

  void set(Index r, Index c, T v) {
    present_[pos(r, c)] = 1;
    vals_[pos(r, c)] = std::move(v);
  }
  void clear(Index r, Index c) {
    present_[pos(r, c)] = 0;
    vals_[pos(r, c)] = T{};
  }

  std::size_t bytes() const {
    return sizeof(*this) + present_.capacity() * sizeof(unsigned char) +
           vals_.capacity() * sizeof(T);
  }

 private:
  std::size_t pos(Index r, Index c) const {
    assert(r >= 0 && r < nrows_ && c >= 0 && c < ncols_);
    return static_cast<std::size_t>(r * ncols_ + c);
  }

  Index nrows_ = 0;
  Index ncols_ = 0;
  std::vector<unsigned char> present_;
  std::vector<T> vals_;
};

}  // namespace hyperspace::sparse
