#pragma once
// Block assembly for batched query serving — stack many operands into one.
//
// The serving engine (serve/) turns K concurrent queries against a shared
// base matrix into ONE masked product: per-query left operands concatenate
// into disjoint row ranges (concat_rows), per-query masks concatenate the
// same way, and the stacked result splits back per query (split_rows).
// block_diag additionally offsets columns, so queries against *different*
// bases coalesce too:
//
//   block_diag(A_1..A_K) ⊕.⊗ concat_rows(B_1..B_K)  =  concat_rows(C_1..C_K)
//
// Everything here is an offset-shifted CSR concat: row pointers, column
// indices, and values are copied in parallel to positions fixed by the
// input alone (per-block offsets), so assembly is deterministic at any
// thread count — and the split result is bit-identical to what each query
// would have produced alone.

#include <algorithm>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "sparse/matrix.hpp"
#include "util/parallel.hpp"

namespace hyperspace::sparse {

/// One operand placed at (row_offset, col_offset) inside the stacked
/// matrix. Row ranges of distinct blocks must be disjoint.
template <typename T>
struct Block {
  const Matrix<T>* m = nullptr;
  Index row_offset = 0;
  Index col_offset = 0;
};

/// Assemble blocks into one nrows × ncols matrix (CSR, or DCSR when the
/// stacked shape is hypersparse). Blocks may appear in any order but their
/// row ranges must be disjoint and in bounds.
template <typename T>
Matrix<T> concat_blocks(Index nrows, Index ncols, std::vector<Block<T>> blocks,
                        T implicit_zero = T{}) {
  for (const auto& b : blocks) {
    if (b.m == nullptr) throw std::invalid_argument("concat_blocks: null block");
  }
  // Zero-row blocks share their row_offset with the block that follows
  // them; ties break on height so empty blocks sort FIRST and the overlap
  // validation below (row_offset < prev_end) doesn't reject a valid
  // batch. Equal (offset, height) pairs are both empty and interchangeable,
  // so the unstable sort is still deterministic in its output.
  std::sort(blocks.begin(), blocks.end(),
            [](const Block<T>& a, const Block<T>& b) {
              if (a.row_offset != b.row_offset) {
                return a.row_offset < b.row_offset;
              }
              return a.m->nrows() < b.m->nrows();
            });
  // Views are gathered serially: CSR's view() materializes its row-id cache
  // on first use and must not race.
  std::vector<SparseView<T>> views;
  views.reserve(blocks.size());
  Index prev_end = 0;
  for (const auto& b : blocks) {
    if (b.m == nullptr) throw std::invalid_argument("concat_blocks: null block");
    if (b.row_offset < prev_end || b.row_offset + b.m->nrows() > nrows ||
        b.col_offset < 0 || b.col_offset + b.m->ncols() > ncols) {
      throw std::invalid_argument("concat_blocks: block out of range");
    }
    prev_end = b.row_offset + b.m->nrows();
    views.push_back(b.m->view());
  }
  const auto nparts = static_cast<std::ptrdiff_t>(blocks.size());

  // Per-block entry and non-empty-row offsets (serial prefix over K parts).
  std::vector<std::size_t> val_off(blocks.size() + 1, 0);
  std::vector<std::size_t> ne_count(blocks.size(), 0);
  util::parallel_for(0, nparts, 1, [&](std::ptrdiff_t p) {
    const auto& v = views[static_cast<std::size_t>(p)];
    std::size_t ne = 0;
    for (std::size_t ri = 0; ri < v.row_ids.size(); ++ri) {
      ne += !v.row_cols(ri).empty();
    }
    ne_count[static_cast<std::size_t>(p)] = ne;
  });
  std::vector<std::size_t> ne_off(blocks.size() + 1, 0);
  for (std::size_t p = 0; p < blocks.size(); ++p) {
    val_off[p + 1] =
        val_off[p] + static_cast<std::size_t>(views[p].nnz());
    ne_off[p + 1] = ne_off[p] + ne_count[p];
  }
  const std::size_t total_nnz = val_off.back();
  const auto total_ne = static_cast<Index>(ne_off.back());

  // Same tail rule as choose_format: hypersparse row space ⇒ DCSR.
  const bool dcsr = nrows > kMaxCsrRows || total_ne * 8 < nrows;
  if (!dcsr) {
    std::vector<Index> row_ptr(static_cast<std::size_t>(nrows) + 1, 0);
    std::vector<Index> cols(total_nnz);
    std::vector<T> vals(total_nnz);
    // Blocks are row-disjoint and sorted, so block order IS row-major
    // order: block p's entries land contiguously at val_off[p].
    util::parallel_for(0, nparts, 1, [&](std::ptrdiff_t p) {
      const auto& v = views[static_cast<std::size_t>(p)];
      const auto& b = blocks[static_cast<std::size_t>(p)];
      const std::size_t base = val_off[static_cast<std::size_t>(p)];
      for (std::size_t ri = 0; ri < v.row_ids.size(); ++ri) {
        const auto rc = v.row_cols(ri);
        const auto rv = v.row_vals(ri);
        const auto grow = static_cast<std::size_t>(b.row_offset + v.row_ids[ri]);
        row_ptr[grow + 1] = static_cast<Index>(rc.size());
        std::size_t o = base + static_cast<std::size_t>(v.row_ptr[ri]);
        for (std::size_t j = 0; j < rc.size(); ++j, ++o) {
          cols[o] = rc[j] + b.col_offset;
          vals[o] = rv[j];
        }
      }
    });
    for (std::size_t r = 0; r < static_cast<std::size_t>(nrows); ++r) {
      row_ptr[r + 1] += row_ptr[r];
    }
    return Matrix<T>::from_csr(
        Csr<T>(nrows, ncols, std::move(row_ptr), std::move(cols),
               std::move(vals)),
        std::move(implicit_zero));
  }

  std::vector<Index> row_ids(static_cast<std::size_t>(total_ne));
  std::vector<Index> row_len(static_cast<std::size_t>(total_ne));
  std::vector<Index> cols(total_nnz);
  std::vector<T> vals(total_nnz);
  util::parallel_for(0, nparts, 1, [&](std::ptrdiff_t p) {
    const auto& v = views[static_cast<std::size_t>(p)];
    const auto& b = blocks[static_cast<std::size_t>(p)];
    const std::size_t vbase = val_off[static_cast<std::size_t>(p)];
    std::size_t pos = ne_off[static_cast<std::size_t>(p)];
    for (std::size_t ri = 0; ri < v.row_ids.size(); ++ri) {
      const auto rc = v.row_cols(ri);
      if (rc.empty()) continue;
      const auto rv = v.row_vals(ri);
      row_ids[pos] = b.row_offset + v.row_ids[ri];
      row_len[pos] = static_cast<Index>(rc.size());
      ++pos;
      std::size_t o = vbase + static_cast<std::size_t>(v.row_ptr[ri]);
      for (std::size_t j = 0; j < rc.size(); ++j, ++o) {
        cols[o] = rc[j] + b.col_offset;
        vals[o] = rv[j];
      }
    }
  });
  std::vector<Index> row_ptr(static_cast<std::size_t>(total_ne) + 1, 0);
  for (std::size_t r = 0; r < row_len.size(); ++r) {
    row_ptr[r + 1] = row_ptr[r] + row_len[r];
  }
  return Matrix<T>::from_dcsr(
      Dcsr<T>(nrows, ncols, std::move(row_ids), std::move(row_ptr),
              std::move(cols), std::move(vals)),
      std::move(implicit_zero));
}

/// Vertical stack: parts share a column space; rows concatenate in order.
template <typename T>
Matrix<T> concat_rows(const std::vector<const Matrix<T>*>& parts,
                      T implicit_zero = T{}) {
  Index nrows = 0;
  Index ncols = 0;
  std::vector<Block<T>> blocks;
  blocks.reserve(parts.size());
  for (const auto* p : parts) {
    if (p == nullptr) throw std::invalid_argument("concat_rows: null part");
    if (!blocks.empty() && p->ncols() != ncols) {
      throw std::invalid_argument("concat_rows: column count mismatch");
    }
    ncols = p->ncols();
    blocks.push_back({p, nrows, 0});
    nrows += p->nrows();
  }
  return concat_blocks(nrows, ncols, std::move(blocks),
                       std::move(implicit_zero));
}

/// Block-diagonal embedding: rows AND columns offset per part, zeros
/// elsewhere. blkdiag(A_1..A_K) ⊕.⊗ concat_rows(B_1..B_K) computes every
/// A_q ⊕.⊗ B_q in one launch.
template <typename T>
Matrix<T> block_diag(const std::vector<const Matrix<T>*>& parts,
                     T implicit_zero = T{}) {
  Index nrows = 0;
  Index ncols = 0;
  std::vector<Block<T>> blocks;
  blocks.reserve(parts.size());
  for (const auto* p : parts) {
    if (p == nullptr) throw std::invalid_argument("block_diag: null part");
    blocks.push_back({p, nrows, ncols});
    nrows += p->nrows();
    ncols += p->ncols();
  }
  return concat_blocks(nrows, ncols, std::move(blocks),
                       std::move(implicit_zero));
}

/// A block-diagonal stack of base matrices plus the offset bookkeeping the
/// multi-base serving engine needs: base g occupies rows
/// [row_offsets[g], row_offsets[g+1]) and columns
/// [col_offsets[g], col_offsets[g+1]) of `stacked`. A query against base g
/// coalesces by placing its lhs at column offset row_offsets[g] (lhs
/// columns index base rows) and reading its result columns rebased by
/// col_offsets[g].
template <typename T>
struct BaseStack {
  Matrix<T> stacked;               ///< blkdiag(B_0 .. B_{G-1})
  std::vector<Index> row_offsets;  ///< size G+1
  std::vector<Index> col_offsets;  ///< size G+1
};

/// Stack bases block-diagonally, in the given order, returning the stack
/// and both offset tables. Same deterministic parallel assembly as
/// block_diag — this is block_diag with the offsets kept.
template <typename T>
BaseStack<T> stack_bases(std::span<const Matrix<T>* const> bases,
                         T implicit_zero = T{}) {
  BaseStack<T> s;
  s.row_offsets.assign(1, 0);
  s.col_offsets.assign(1, 0);
  std::vector<Block<T>> blocks;
  blocks.reserve(bases.size());
  for (const auto* b : bases) {
    if (b == nullptr) throw std::invalid_argument("stack_bases: null base");
    blocks.push_back({b, s.row_offsets.back(), s.col_offsets.back()});
    s.row_offsets.push_back(s.row_offsets.back() + b->nrows());
    s.col_offsets.push_back(s.col_offsets.back() + b->ncols());
  }
  s.stacked = concat_blocks(s.row_offsets.back(), s.col_offsets.back(),
                            std::move(blocks), std::move(implicit_zero));
  return s;
}

/// Scatter — the inverse of concat_rows: split rows [offsets[q],
/// offsets[q+1]) into per-query matrices with rows rebased to zero.
/// Each slice's triples are exactly the canonical triples the per-query
/// kernel would emit, so every split result is bit-identical (format
/// switch rule included) to its per-query counterpart.
template <typename T>
std::vector<Matrix<T>> split_rows(const Matrix<T>& stacked,
                                  std::span<const Index> offsets,
                                  T implicit_zero = T{}) {
  if (offsets.size() < 2 || offsets.front() != 0 ||
      offsets.back() != stacked.nrows() ||
      !std::is_sorted(offsets.begin(), offsets.end())) {
    throw std::invalid_argument("split_rows: bad offsets");
  }
  const SparseView<T> v = stacked.view();
  const auto nparts = static_cast<std::ptrdiff_t>(offsets.size() - 1);
  std::vector<Matrix<T>> out(static_cast<std::size_t>(nparts));
  util::parallel_for(0, nparts, 1, [&](std::ptrdiff_t q) {
    const Index lo = offsets[static_cast<std::size_t>(q)];
    const Index hi = offsets[static_cast<std::size_t>(q) + 1];
    const auto first = std::lower_bound(v.row_ids.begin(), v.row_ids.end(), lo);
    const auto last = std::lower_bound(first, v.row_ids.end(), hi);
    std::vector<Triple<T>> t;
    for (auto it = first; it != last; ++it) {
      const auto ri = static_cast<std::size_t>(it - v.row_ids.begin());
      const auto rc = v.row_cols(ri);
      const auto rv = v.row_vals(ri);
      for (std::size_t j = 0; j < rc.size(); ++j) {
        t.push_back({*it - lo, rc[j], rv[j]});
      }
    }
    out[static_cast<std::size_t>(q)] =
        Matrix<T>::from_canonical_triples(hi - lo, v.ncols, t, implicit_zero);
  });
  return out;
}

}  // namespace hyperspace::sparse
