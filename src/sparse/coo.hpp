#pragma once
// COO (coordinate) format — the streaming-ingest/build format.
//
// Edges arrive as (row, col, value) triples in arbitrary order, possibly
// with duplicates (multi-edges). sort_combine<S>() canonicalizes: sorts by
// (row, col) and combines duplicates with the semiring's ⊕ — exactly the
// "multi-edge" semantics of the paper's incidence arrays (Fig 2), where
// repeated entries accumulate.

#include <algorithm>
#include <utility>
#include <vector>

#include "semiring/concepts.hpp"
#include "sparse/slices.hpp"
#include "sparse/types.hpp"
#include "util/parallel.hpp"

namespace hyperspace::sparse {

template <typename T>
class Coo {
 public:
  Coo() = default;
  Coo(Index nrows, Index ncols) : nrows_(nrows), ncols_(ncols) {}
  Coo(Index nrows, Index ncols, std::vector<Triple<T>> triples)
      : nrows_(nrows), ncols_(ncols), triples_(std::move(triples)) {}

  Index nrows() const { return nrows_; }
  Index ncols() const { return ncols_; }
  Index nnz() const { return static_cast<Index>(triples_.size()); }
  const std::vector<Triple<T>>& triples() const { return triples_; }
  bool sorted() const { return sorted_; }

  void push(Index row, Index col, T val) {
    triples_.push_back({row, col, std::move(val)});
    sorted_ = false;
  }

  /// Sort by (row, col) and fold duplicates with S::add. After this the
  /// triple list is canonical and convertible to CSR/DCSR in one pass.
  template <semiring::Semiring S>
    requires std::same_as<typename S::value_type, T>
  void sort_combine() {
    sort_combine_with([](const T& a, const T& b) { return S::add(a, b); });
  }

  /// Same, with an arbitrary combiner (e.g. "second wins" for upserts).
  ///
  /// Runs on the unified parallel runtime: a parallel stable sort, then a
  /// chunked duplicate fold where each (row, col) group is combined — left
  /// to right, insertion order — by the chunk containing its first element.
  /// Chunk boundaries depend only on the sorted data, so the canonical
  /// result is bit-identical for every thread count (stable_sort order is a
  /// pure function of the input, and each group folds exactly as in the
  /// serial scan).
  template <typename Combine>
  void sort_combine_with(Combine&& combine) {
    const auto less = [](const Triple<T>& x, const Triple<T>& y) {
      return x.row != y.row ? x.row < y.row : x.col < y.col;
    };
    util::parallel_stable_sort(triples_.begin(), triples_.end(), less);

    const auto n = static_cast<std::ptrdiff_t>(triples_.size());
    constexpr std::ptrdiff_t grain = std::ptrdiff_t{1} << 14;
    if (n <= grain || util::max_threads() <= 1) {
      combine_sorted_serial(combine);
      return;
    }
    const auto same = [this](std::ptrdiff_t i, std::ptrdiff_t j) {
      const auto& x = triples_[static_cast<std::size_t>(i)];
      const auto& y = triples_[static_cast<std::size_t>(j)];
      return x.row == y.row && x.col == y.col;
    };
    std::vector<std::vector<Triple<T>>> parts(
        static_cast<std::size_t>(util::chunk_count(n, grain)));
    util::parallel_chunks(
        0, n, grain,
        [&](std::ptrdiff_t chunk, std::ptrdiff_t lo, std::ptrdiff_t hi) {
          auto& part = parts[static_cast<std::size_t>(chunk)];
          // Skip entries whose group started in an earlier chunk; a group is
          // folded in full by the chunk that holds its first element.
          std::ptrdiff_t i = lo;
          while (i < hi && i > 0 && same(i - 1, i)) ++i;
          while (i < hi) {
            Triple<T> t = std::move(triples_[static_cast<std::size_t>(i)]);
            std::ptrdiff_t j = i + 1;
            while (j < n && same(i, j)) {
              t.val = combine(t.val, triples_[static_cast<std::size_t>(j)].val);
              ++j;
            }
            part.push_back(std::move(t));
            i = j;
          }
        });
    triples_ = detail::splice_triple_chunks(parts);
    sorted_ = true;
  }

  std::size_t bytes() const {
    return sizeof(*this) + triples_.capacity() * sizeof(Triple<T>);
  }

 private:
  /// In-place duplicate fold over sorted triples (small-input fast path).
  template <typename Combine>
  void combine_sorted_serial(Combine& combine) {
    std::size_t out = 0;
    for (std::size_t i = 0; i < triples_.size(); ++i) {
      if (out > 0 && triples_[out - 1].row == triples_[i].row &&
          triples_[out - 1].col == triples_[i].col) {
        triples_[out - 1].val = combine(triples_[out - 1].val, triples_[i].val);
      } else {
        if (out != i) triples_[out] = std::move(triples_[i]);
        ++out;
      }
    }
    triples_.resize(out);
    sorted_ = true;
  }

  Index nrows_ = 0;
  Index ncols_ = 0;
  std::vector<Triple<T>> triples_;
  bool sorted_ = false;
};

}  // namespace hyperspace::sparse
