#pragma once
// COO (coordinate) format — the streaming-ingest/build format.
//
// Edges arrive as (row, col, value) triples in arbitrary order, possibly
// with duplicates (multi-edges). sort_combine<S>() canonicalizes: sorts by
// (row, col) and combines duplicates with the semiring's ⊕ — exactly the
// "multi-edge" semantics of the paper's incidence arrays (Fig 2), where
// repeated entries accumulate.

#include <algorithm>
#include <utility>
#include <vector>

#include "semiring/concepts.hpp"
#include "sparse/types.hpp"

namespace hyperspace::sparse {

template <typename T>
class Coo {
 public:
  Coo() = default;
  Coo(Index nrows, Index ncols) : nrows_(nrows), ncols_(ncols) {}
  Coo(Index nrows, Index ncols, std::vector<Triple<T>> triples)
      : nrows_(nrows), ncols_(ncols), triples_(std::move(triples)) {}

  Index nrows() const { return nrows_; }
  Index ncols() const { return ncols_; }
  Index nnz() const { return static_cast<Index>(triples_.size()); }
  const std::vector<Triple<T>>& triples() const { return triples_; }
  bool sorted() const { return sorted_; }

  void push(Index row, Index col, T val) {
    triples_.push_back({row, col, std::move(val)});
    sorted_ = false;
  }

  /// Sort by (row, col) and fold duplicates with S::add. After this the
  /// triple list is canonical and convertible to CSR/DCSR in one pass.
  template <semiring::Semiring S>
    requires std::same_as<typename S::value_type, T>
  void sort_combine() {
    sort_combine_with([](const T& a, const T& b) { return S::add(a, b); });
  }

  /// Same, with an arbitrary combiner (e.g. "second wins" for upserts).
  template <typename Combine>
  void sort_combine_with(Combine&& combine) {
    std::stable_sort(triples_.begin(), triples_.end(),
                     [](const Triple<T>& x, const Triple<T>& y) {
                       return x.row != y.row ? x.row < y.row : x.col < y.col;
                     });
    std::size_t out = 0;
    for (std::size_t i = 0; i < triples_.size(); ++i) {
      if (out > 0 && triples_[out - 1].row == triples_[i].row &&
          triples_[out - 1].col == triples_[i].col) {
        triples_[out - 1].val = combine(triples_[out - 1].val, triples_[i].val);
      } else {
        if (out != i) triples_[out] = std::move(triples_[i]);
        ++out;
      }
    }
    triples_.resize(out);
    sorted_ = true;
  }

  std::size_t bytes() const {
    return sizeof(*this) + triples_.capacity() * sizeof(Triple<T>);
  }

 private:
  Index nrows_ = 0;
  Index ncols_ = 0;
  std::vector<Triple<T>> triples_;
  bool sorted_ = false;
};

}  // namespace hyperspace::sparse
