#pragma once
// CSR (compressed sparse row) — the "sparse" regime of Fig 4: nnz ~ O(N).
//
// Storage is O(nrows + nnz): a row-pointer array plus packed, column-sorted
// entries. This is the workhorse compute format; kernels consume it through
// SparseView (see view.hpp).

#include <cassert>
#include <numeric>
#include <utility>
#include <vector>

#include "sparse/types.hpp"
#include "sparse/view.hpp"
#include "util/parallel.hpp"

namespace hyperspace::sparse {

template <typename T>
class Csr {
 public:
  Csr() = default;
  Csr(Index nrows, Index ncols) : nrows_(nrows), ncols_(ncols),
                                  row_ptr_(static_cast<std::size_t>(nrows) + 1, 0) {}

  /// Build from canonical triples (sorted by (row,col), no duplicates —
  /// i.e. the output of Coo::sort_combine). Runs on the parallel runtime:
  /// cols/vals copy and per-chunk row histograms are parallel; only the
  /// O(nrows) prefix sum and the fold of per-chunk histograms (total size
  /// ≤ non-empty rows + #chunks) stay serial. Deterministic: every write
  /// lands at a position fixed by the input alone.
  Csr(Index nrows, Index ncols, const std::vector<Triple<T>>& sorted_triples)
      : nrows_(nrows), ncols_(ncols),
        row_ptr_(static_cast<std::size_t>(nrows) + 1, 0) {
    const auto n = static_cast<std::ptrdiff_t>(sorted_triples.size());
    cols_.resize(sorted_triples.size());
    vals_.resize(sorted_triples.size());
    constexpr std::ptrdiff_t grain = std::ptrdiff_t{1} << 14;
    // Per-chunk histogram over the (contiguous, sorted) row span it covers.
    struct ChunkCounts {
      Index first_row = 0;
      std::vector<Index> counts;
    };
    std::vector<ChunkCounts> local(
        static_cast<std::size_t>(util::chunk_count(n, grain)));
    util::parallel_chunks(
        0, n, grain,
        [&](std::ptrdiff_t chunk, std::ptrdiff_t lo, std::ptrdiff_t hi) {
          auto& cc = local[static_cast<std::size_t>(chunk)];
          cc.first_row = sorted_triples[static_cast<std::size_t>(lo)].row;
          const Index last_row =
              sorted_triples[static_cast<std::size_t>(hi - 1)].row;
          cc.counts.assign(static_cast<std::size_t>(last_row - cc.first_row) + 1,
                           0);
          for (std::ptrdiff_t i = lo; i < hi; ++i) {
            const auto& t = sorted_triples[static_cast<std::size_t>(i)];
            assert(t.row >= 0 && t.row < nrows_ && t.col >= 0 && t.col < ncols_);
            ++cc.counts[static_cast<std::size_t>(t.row - cc.first_row)];
            cols_[static_cast<std::size_t>(i)] = t.col;
            vals_[static_cast<std::size_t>(i)] = t.val;
          }
        });
    for (const auto& cc : local) {
      for (std::size_t r = 0; r < cc.counts.size(); ++r) {
        row_ptr_[static_cast<std::size_t>(cc.first_row) + r + 1] += cc.counts[r];
      }
    }
    std::partial_sum(row_ptr_.begin(), row_ptr_.end(), row_ptr_.begin());
  }

  /// Assemble directly from parts (kernel outputs).
  Csr(Index nrows, Index ncols, std::vector<Index> row_ptr,
      std::vector<Index> cols, std::vector<T> vals)
      : nrows_(nrows), ncols_(ncols), row_ptr_(std::move(row_ptr)),
        cols_(std::move(cols)), vals_(std::move(vals)) {
    assert(row_ptr_.size() == static_cast<std::size_t>(nrows_) + 1);
    assert(cols_.size() == vals_.size());
  }

  Index nrows() const { return nrows_; }
  Index ncols() const { return ncols_; }
  Index nnz() const { return row_ptr_.empty() ? 0 : row_ptr_.back(); }

  const std::vector<Index>& row_ptr() const { return row_ptr_; }
  const std::vector<Index>& cols() const { return cols_; }
  const std::vector<T>& vals() const { return vals_; }
  std::vector<T>& mutable_vals() { return vals_; }

  Index n_nonempty_rows() const {
    Index n = 0;
    for (Index r = 0; r < nrows_; ++r) {
      n += (row_ptr_[static_cast<std::size_t>(r) + 1] >
            row_ptr_[static_cast<std::size_t>(r)]);
    }
    return n;
  }

  /// Uniform kernel view. Materializes (once) the identity row-id list;
  /// call from a single thread before entering parallel regions.
  SparseView<T> view() const {
    if (row_ids_cache_.size() != static_cast<std::size_t>(nrows_)) {
      row_ids_cache_.resize(static_cast<std::size_t>(nrows_));
      std::iota(row_ids_cache_.begin(), row_ids_cache_.end(), Index{0});
    }
    return {nrows_, ncols_, row_ids_cache_, row_ptr_, cols_, vals_};
  }

  /// Storage footprint (excludes the lazily built view cache, which is an
  /// iteration convenience, not part of the format).
  std::size_t bytes() const {
    return sizeof(*this) + row_ptr_.capacity() * sizeof(Index) +
           cols_.capacity() * sizeof(Index) + vals_.capacity() * sizeof(T);
  }

 private:
  Index nrows_ = 0;
  Index ncols_ = 0;
  std::vector<Index> row_ptr_;
  std::vector<Index> cols_;
  std::vector<T> vals_;
  mutable std::vector<Index> row_ids_cache_;
};

}  // namespace hyperspace::sparse
