#pragma once
// DCSR (doubly-compressed sparse row) — the *hypersparse* regime of Fig 4:
// nnz ≪ N (Buluç & Gilbert 2008, cited as [6] in the paper).
//
// Only non-empty rows are stored: a sorted row-id list plus offsets. Total
// storage is O(nnz), fully independent of the nominal dimension, so a
// 2^60 × 2^60 array with a thousand entries costs a few kilobytes — the
// "data growing without bounds" regime of Section II-B.

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

#include "sparse/types.hpp"
#include "sparse/view.hpp"
#include "util/parallel.hpp"

namespace hyperspace::sparse {

template <typename T>
class Dcsr {
 public:
  Dcsr() = default;
  Dcsr(Index nrows, Index ncols) : nrows_(nrows), ncols_(ncols),
                                   row_ptr_(1, 0) {}

  /// Build from canonical triples (sorted by (row,col), deduplicated).
  /// Runs on the parallel runtime like the Csr triple ctor: the cols/vals
  /// copy and the per-chunk row-id discovery scan are parallel; only the
  /// fold of per-chunk row lists (total size ≤ non-empty rows + #chunks)
  /// stays serial. Deterministic: every write lands at a position fixed by
  /// the input alone, and the fold visits chunks in index order, so the
  /// result is bit-identical at any thread count.
  Dcsr(Index nrows, Index ncols, const std::vector<Triple<T>>& sorted_triples)
      : nrows_(nrows), ncols_(ncols) {
    const auto n = static_cast<std::ptrdiff_t>(sorted_triples.size());
    cols_.resize(sorted_triples.size());
    vals_.resize(sorted_triples.size());
    constexpr std::ptrdiff_t grain = std::ptrdiff_t{1} << 14;
    // Distinct rows (with entry counts) per fixed chunk; a row spanning a
    // chunk boundary appears in both chunks and is merged in the fold.
    struct ChunkRows {
      std::vector<Index> rows;
      std::vector<Index> counts;
    };
    std::vector<ChunkRows> local(
        static_cast<std::size_t>(util::chunk_count(n, grain)));
    util::parallel_chunks(
        0, n, grain,
        [&](std::ptrdiff_t chunk, std::ptrdiff_t lo, std::ptrdiff_t hi) {
          auto& cr = local[static_cast<std::size_t>(chunk)];
          for (std::ptrdiff_t i = lo; i < hi; ++i) {
            const auto& t = sorted_triples[static_cast<std::size_t>(i)];
            assert(t.row >= 0 && t.row < nrows_ && t.col >= 0 &&
                   t.col < ncols_);
            if (cr.rows.empty() || cr.rows.back() != t.row) {
              cr.rows.push_back(t.row);
              cr.counts.push_back(0);
            }
            ++cr.counts.back();
            cols_[static_cast<std::size_t>(i)] = t.col;
            vals_[static_cast<std::size_t>(i)] = t.val;
          }
        });
    row_ptr_.push_back(0);
    for (const auto& cr : local) {
      for (std::size_t r = 0; r < cr.rows.size(); ++r) {
        if (!row_ids_.empty() && row_ids_.back() == cr.rows[r]) {
          row_ptr_.back() += cr.counts[r];  // row split across a chunk edge
        } else {
          row_ids_.push_back(cr.rows[r]);
          row_ptr_.push_back(row_ptr_.back() + cr.counts[r]);
        }
      }
    }
  }

  /// Assemble directly from parts (kernel outputs).
  Dcsr(Index nrows, Index ncols, std::vector<Index> row_ids,
       std::vector<Index> row_ptr, std::vector<Index> cols, std::vector<T> vals)
      : nrows_(nrows), ncols_(ncols), row_ids_(std::move(row_ids)),
        row_ptr_(std::move(row_ptr)), cols_(std::move(cols)),
        vals_(std::move(vals)) {
    assert(row_ptr_.size() == row_ids_.size() + 1);
    assert(cols_.size() == vals_.size());
  }

  Index nrows() const { return nrows_; }
  Index ncols() const { return ncols_; }
  Index nnz() const { return row_ptr_.empty() ? 0 : row_ptr_.back(); }
  Index n_nonempty_rows() const { return static_cast<Index>(row_ids_.size()); }

  const std::vector<Index>& row_ids() const { return row_ids_; }
  const std::vector<Index>& row_ptr() const { return row_ptr_; }
  const std::vector<Index>& cols() const { return cols_; }
  const std::vector<T>& vals() const { return vals_; }

  SparseView<T> view() const {
    return {nrows_, ncols_, row_ids_, row_ptr_, cols_, vals_};
  }

  std::size_t bytes() const {
    return sizeof(*this) + row_ids_.capacity() * sizeof(Index) +
           row_ptr_.capacity() * sizeof(Index) +
           cols_.capacity() * sizeof(Index) + vals_.capacity() * sizeof(T);
  }

 private:
  Index nrows_ = 0;
  Index ncols_ = 0;
  std::vector<Index> row_ids_;  ///< sorted non-empty rows
  std::vector<Index> row_ptr_;  ///< size row_ids_.size() + 1
  std::vector<Index> cols_;
  std::vector<T> vals_;
};

}  // namespace hyperspace::sparse
