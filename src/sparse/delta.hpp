#pragma once
// Updatable serving base: immutable main + small delta, epoch-versioned.
//
// The paper's associative arrays are *updatable* — insert, update, and
// delete are first-class (Section II) — but a sorted CSR main is exactly
// the structure you must never touch per write. DeltaBase<S> reproduces
// the hierarchical-hypersparse answer ([8], sparse/stream.hpp) at the
// serving layer:
//
//   main   — an immutable Matrix (CSR/DCSR), shared_ptr-held, only ever
//            REPLACED wholesale by compaction;
//   delta  — a StreamingMatrix over "last-wins" slots: an assign overwrites
//            the key's prior value, an erase is a tombstone. The ⊕ of this
//            log is newer-wins, which streams through the same buffered
//            cascade as any Table I semiring now that stream.hpp folds
//            older ⊕ newer everywhere;
//   overlay — every delta-touched main row, fully patched (two-pointer
//            merge of the main row with the delta row: tombstones drop
//            entries, assigns replace or insert). Queries resolve B-rows
//            through the overlay first (sparse::detail::BaseView), so the
//            kernel sees EXACTLY the rows a from-scratch rebuild would
//            hold — results are byte-identical, floats included, for every
//            semiring, strategy, and thread count. No value ever passes
//            through an extra ⊕, so there is no fold regrouping to drift.
//
// Epochs and snapshots: every mutate() batch bumps the epoch and publishes
// a new shared_ptr<const DeltaSnapshot> — readers grab the pointer under a
// mutex held only for the copy, so a reader never blocks on a writer's
// merge work, and an in-flight batch holding a snapshot keeps serving the
// epoch it started on even while newer epochs publish. Compaction (inline
// or on the background thread) freezes the delta, merges it into a new
// main OFF-lock, and republishes the SAME epoch with an emptier overlay:
// compaction changes representation, never results.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "semiring/concepts.hpp"
#include "sparse/ewise.hpp"
#include "sparse/matrix.hpp"
#include "sparse/mxm.hpp"
#include "sparse/stream.hpp"

namespace hyperspace::sparse {

// ---- content fingerprints -------------------------------------------------
//
// The serve-layer result cache (serve/cache.hpp) keys answers on the exact
// CONTENT of their operands: two lhs matrices with the same stored triples
// — same rows, same columns, same value bit patterns — must produce the
// same key, and any differing bit must produce a different one. The
// fingerprint hashes the canonical row/col/value sequence of a SparseView,
// so it is format-independent (a CSR and a DCSR holding the same entries
// fingerprint identically) and value-bit-exact (it hashes value BYTES, so
// -0.0 and +0.0 key differently — a cache hit must be a byte-identical
// replay, never a "close enough" one).

namespace detail {

/// FNV-1a, the classic 64-bit fold. Two independently seeded lanes give
/// the 128-bit fingerprint; together with the stored shape/nnz a collision
/// needs ~2^128 adversarial luck, which the cache treats as impossible.
class Fnv1a {
 public:
  explicit constexpr Fnv1a(std::uint64_t seed) : h_(seed) {}

  void bytes(const void* p, std::size_t n) noexcept {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= b[i];
      h_ *= 0x100000001b3ULL;
    }
  }
  void u64(std::uint64_t v) noexcept { bytes(&v, sizeof v); }
  std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_;
};

/// Hash one stored value: trivially copyable types hash their bytes;
/// anything else (e.g. semiring::ValueSet) must provide an ADL-visible
/// `fingerprint_append(hasher, value)` hook, templated on the hasher so
/// the value's layer never depends on this header.
template <typename H, typename T>
void fp_value(H& h, const T& v) {
  if constexpr (std::is_trivially_copyable_v<T>) {
    h.bytes(&v, sizeof(T));
  } else {
    fingerprint_append(h, v);
  }
}

}  // namespace detail

/// 128-bit content fingerprint of a matrix view plus its exact shape and
/// nnz. Equality of fingerprints is what the result cache treats as
/// equality of operands.
struct Fingerprint {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  Index nrows = 0;
  Index ncols = 0;
  Index nnz = 0;
  friend auto operator<=>(const Fingerprint&, const Fingerprint&) = default;
};

/// Fingerprint the canonical content of `v`: shape, then per non-empty row
/// the row id, its column ids, and its value bytes (or ADL hook), in
/// storage order. O(nnz) — the same order of work as the executor's exact
/// admission flop count.
template <typename T>
Fingerprint fingerprint(const SparseView<T>& v) {
  detail::Fnv1a a(0xcbf29ce484222325ULL);
  detail::Fnv1a b(0x9e3779b97f4a7c15ULL);
  const auto mix = [&](auto&& fold) {
    fold(a);
    fold(b);
  };
  mix([&](detail::Fnv1a& h) {
    h.u64(static_cast<std::uint64_t>(v.nrows));
    h.u64(static_cast<std::uint64_t>(v.ncols));
  });
  for (std::size_t ri = 0; ri < v.row_ids.size(); ++ri) {
    const auto rc = v.row_cols(ri);
    const auto rv = v.row_vals(ri);
    mix([&](detail::Fnv1a& h) {
      h.u64(static_cast<std::uint64_t>(v.row_ids[ri]));
      h.u64(static_cast<std::uint64_t>(rc.size()));
    });
    for (std::size_t j = 0; j < rc.size(); ++j) {
      mix([&](detail::Fnv1a& h) {
        h.u64(static_cast<std::uint64_t>(rc[j]));
        detail::fp_value(h, rv[j]);
      });
    }
  }
  return {a.value(), b.value(), v.nrows, v.ncols, v.nnz()};
}

/// Fingerprint a matrix through its uniform compute view (materializes the
/// CSR mirror for COO/bitmap/dense payloads, exactly as a kernel would).
template <typename T>
Fingerprint fingerprint(const Matrix<T>& m) {
  return fingerprint(m.view());
}

/// One mutation: assign (insert-or-update) or erase at (row, col).
template <typename T>
struct Update {
  Index row = 0;
  Index col = 0;
  T val{};
  bool erase = false;

  static Update assign(Index r, Index c, T v) {
    return {r, c, std::move(v), false};
  }
  static Update erased(Index r, Index c) { return {r, c, T{}, true}; }
};

/// A batch of mutations, applied in order, last write per key wins.
template <typename T>
using UpdateBatch = std::vector<Update<T>>;

/// One delta cell: the latest operation that touched a key. `op` kNone is
/// the slot's implicit zero — never produced by an update — so an assign
/// of the value T{} survives format conversion (matrices drop entries
/// equal to their implicit zero, and an assign must still overwrite main).
template <typename T>
struct DeltaSlot {
  enum class Op : unsigned char { kNone = 0, kAssign = 1, kErase = 2 };
  T val{};
  Op op = Op::kNone;
  bool operator==(const DeltaSlot&) const = default;
};

/// The delta log's "semiring": ⊕ = newer wins. Folded older ⊕ newer by
/// StreamingMatrix / Coo (stable sort, insertion order), add(a, b) = b is
/// exactly per-key overwrite. ⊗ and one() exist only to satisfy the
/// Semiring concept; nothing multiplies slots.
template <typename T>
struct LastWins {
  using value_type = DeltaSlot<T>;
  static value_type zero() { return {}; }
  static value_type one() { return {T{}, DeltaSlot<T>::Op::kAssign}; }
  static value_type add(const value_type&, const value_type& b) { return b; }
  static value_type mul(const value_type&, const value_type& b) { return b; }
  static const char* name() { return "last_wins"; }
};

/// An immutable, epoch-stamped view of a DeltaBase: the shared main plus
/// the patched-row overlay. Queries run against base_view(); the snapshot
/// keeps `main` alive for as long as any reader holds the shared_ptr, so
/// in-flight batches finish on the epoch they started on no matter how
/// many mutations or compactions publish behind them.
template <typename T>
struct DeltaSnapshot {
  std::uint64_t epoch = 0;
  std::shared_ptr<const Matrix<T>> main;

  /// Patched rows, sorted by row id. Row i spans [optr[i], optr[i+1]) of
  /// ocols/ovals and REPLACES the main row wholesale — an empty span
  /// shadows a fully deleted row.
  std::vector<Index> orows;
  std::vector<Index> optr{0};
  std::vector<Index> ocols;
  std::vector<T> ovals;

  /// LOGICAL shape — ≥ main's shape when mutations landed beyond the
  /// constructed key space. Until the next compaction the grown region
  /// lives only in the overlay; the compaction swap materializes at this
  /// shape, folding the growth into the new main.
  Index shape_rows = 0;
  Index shape_cols = 0;

  Index nrows() const { return shape_rows > 0 ? shape_rows : main->nrows(); }
  Index ncols() const { return shape_cols > 0 ? shape_cols : main->ncols(); }
  bool plain() const { return orows.empty(); }

  /// The kernel-facing row resolver: overlay first, then main. The view
  /// advertises the LOGICAL shape, so queries address grown keys the same
  /// way a from-scratch rebuild at this shape would.
  detail::BaseView<T> base_view() const {
    detail::BaseView<T> bv(*main);
    bv.nrows = nrows();
    bv.ncols = ncols();
    bv.orows = orows;
    bv.optr = optr;
    bv.ocols = ocols;
    bv.ovals = ovals;
    return bv;
  }

  /// Rebuild the full logical matrix (what a from-scratch rebuild at this
  /// epoch would construct). Compaction's merge step, and the referee the
  /// bit-identity tests compare against.
  Matrix<T> materialize() const {
    const auto bv = base_view();
    const auto& mv = bv.b;
    // Union of main's row list and the overlay's, overlay replacing.
    struct Src {
      Index row;
      std::ptrdiff_t im, io;
    };
    std::vector<Src> srcs;
    srcs.reserve(mv.row_ids.size() + orows.size());
    std::size_t im = 0, io = 0;
    while (im < mv.row_ids.size() || io < orows.size()) {
      const Index rm = im < mv.row_ids.size()
                           ? mv.row_ids[im]
                           : std::numeric_limits<Index>::max();
      const Index ro = io < orows.size() ? orows[io]
                                         : std::numeric_limits<Index>::max();
      if (rm < ro) {
        srcs.push_back({rm, static_cast<std::ptrdiff_t>(im++), -1});
      } else if (ro < rm) {
        srcs.push_back({ro, -1, static_cast<std::ptrdiff_t>(io++)});
      } else {
        srcs.push_back({rm, static_cast<std::ptrdiff_t>(im++),
                        static_cast<std::ptrdiff_t>(io++)});
      }
    }
    std::vector<detail::RowSlice<T>> rows(srcs.size());
    util::parallel_for(
        0, static_cast<std::ptrdiff_t>(srcs.size()), 64,
        [&](std::ptrdiff_t i) {
          const auto& s = srcs[static_cast<std::size_t>(i)];
          auto& out = rows[static_cast<std::size_t>(i)];
          out.row = s.row;
          if (s.io >= 0) {  // patched row replaces the main row
            const auto i0 = static_cast<std::size_t>(optr[s.io]);
            const auto i1 = static_cast<std::size_t>(optr[s.io + 1]);
            out.cols.assign(ocols.begin() + i0, ocols.begin() + i1);
            out.vals.assign(ovals.begin() + i0, ovals.begin() + i1);
          } else {
            const auto c = mv.row_cols(static_cast<std::size_t>(s.im));
            const auto v = mv.row_vals(static_cast<std::size_t>(s.im));
            out.cols.assign(c.begin(), c.end());
            out.vals.assign(v.begin(), v.end());
          }
        });
    const auto t = detail::splice_row_slices(rows);
    return Matrix<T>::from_canonical_triples(nrows(), ncols(), t,
                                             main->implicit_zero());
  }
};

/// Tuning knobs for a DeltaBase (a plain struct so serving configs can
/// embed it without naming the semiring).
struct DeltaConfig {
  std::size_t delta_buffer = 1 << 10;  ///< StreamingMatrix level-0 size
  int delta_fanout = 4;
  /// Pending delta entries that arm the background compactor (ignored
  /// without `background`; compact() always runs on demand).
  std::size_t compact_threshold = 1 << 14;
  bool background = false;  ///< spawn the compaction thread
};

/// The updatable serving base. Writers (mutate / compact) serialize on one
/// writer lock; readers only ever touch the publish lock, held for a
/// shared_ptr copy — never for merge work — so readers never block on
/// writers. See the header comment for the main/delta/overlay design.
template <semiring::Semiring S>
class DeltaBase {
 public:
  using T = typename S::value_type;

  explicit DeltaBase(Matrix<T> main, DeltaConfig cfg = {})
      : cfg_(cfg),
        main_(std::make_shared<const Matrix<T>>(std::move(main))),
        nrows_(main_->nrows()),
        ncols_(main_->ncols()),
        delta_(main_->nrows(), main_->ncols(), cfg_.delta_buffer,
               cfg_.delta_fanout) {
    (void)main_->view();  // warm the row cache before any concurrent reader
    auto snap = std::make_shared<DeltaSnapshot<T>>();
    snap->main = main_;
    snap->shape_rows = nrows_;
    snap->shape_cols = ncols_;
    {
      std::lock_guard plock(pub_mu_);
      published_ = std::move(snap);
    }
    if (cfg_.background) {
      compactor_ = std::thread([this] { compact_loop(); });
    }
  }

  ~DeltaBase() {
    {
      std::lock_guard lock(wmu_);
      stop_ = true;
    }
    ccv_.notify_all();
    if (compactor_.joinable()) compactor_.join();
  }
  DeltaBase(const DeltaBase&) = delete;
  DeltaBase& operator=(const DeltaBase&) = delete;

  /// Logical shape (grows when a mutation lands beyond the constructed key
  /// space). Read through the published snapshot, so it is safe against a
  /// concurrent compaction swapping main_.
  Index nrows() const { return snapshot()->nrows(); }
  Index ncols() const { return snapshot()->ncols(); }

  /// The published snapshot. A pointer copy under pub_mu_ — wait-free in
  /// practice; the snapshot stays queryable for as long as the caller
  /// holds it, regardless of later mutations or compactions.
  std::shared_ptr<const DeltaSnapshot<T>> snapshot() const {
    std::lock_guard lock(pub_mu_);
    return published_;
  }

  std::uint64_t epoch() const { return snapshot()->epoch; }
  std::uint64_t compactions() const {
    return compactions_.load(std::memory_order_relaxed);
  }

  /// The current main matrix (the pre-compaction original until the first
  /// compaction). The reference is stable until the NEXT compaction.
  const Matrix<T>& main_matrix() const { return *snapshot()->main; }
  std::shared_ptr<const Matrix<T>> main_shared() const {
    return snapshot()->main;
  }

  /// Apply a batch of mutations (in order, last write per key wins) and
  /// publish the next epoch. Returns the new epoch. Negative keys throw
  /// before anything is applied; keys BEYOND the constructed shape grow
  /// the key space — the grown region serves from the overlay until the
  /// next compaction folds it into the swapped-in main, so growth never
  /// requires a manual rebuild.
  std::uint64_t mutate(const UpdateBatch<T>& ops) {
    Index need_r = 0, need_c = 0;
    for (const auto& op : ops) {
      if (op.row < 0 || op.col < 0) {
        throw std::out_of_range("DeltaBase: update key out of range");
      }
      need_r = std::max(need_r, op.row + 1);
      need_c = std::max(need_c, op.col + 1);
    }
    std::unique_lock lock(wmu_);
    if (need_r > nrows_ || need_c > ncols_) grow_locked(lock, need_r, need_c);
    for (const auto& op : ops) {
      delta_.insert(op.row, op.col,
                    DeltaSlot<T>{op.val, op.erase ? DeltaSlot<T>::Op::kErase
                                                  : DeltaSlot<T>::Op::kAssign});
    }
    ++epoch_;
    publish_locked();
    const auto e = epoch_;
    const bool kick =
        cfg_.background && delta_.pending_updates() >= cfg_.compact_threshold;
    lock.unlock();
    if (kick) ccv_.notify_all();
    return e;
  }

  /// Delta entries not yet folded into main (active + frozen).
  std::size_t delta_entries() const {
    std::lock_guard lock(wmu_);
    std::size_t n = delta_.pending_updates();
    if (frozen_) n += static_cast<std::size_t>(frozen_->nnz());
    return n;
  }

  /// Merge the delta into a new main and republish the SAME epoch with an
  /// empty (or emptier) overlay. The merge runs off-lock: mutations and
  /// snapshot() proceed concurrently; mutations landing mid-merge stay in
  /// the active delta and the republished overlay.
  void compact() {
    std::unique_lock lock(wmu_);
    // A background compaction already mid-merge: wait for it to install,
    // then fold whatever arrived meanwhile.
    ccv_.wait(lock, [&] { return !frozen_; });
    if (delta_.pending_updates() == 0) return;
    compact_locked(lock);
    ccv_.notify_all();
  }

 private:
  /// Grow the logical key space to cover (need_r, need_c) (wmu_ held).
  /// Waits out an in-flight background compaction — the frozen generation
  /// and the active delta must agree on shape for the publish-time fold —
  /// then rebuilds the active delta log at the grown shape by replaying
  /// its folded slots (one slot per key, so replay order is immaterial).
  /// main_ is untouched: the growth itself reaches main at the next
  /// compaction swap, which materializes at the logical shape.
  void grow_locked(std::unique_lock<std::mutex>& lock, Index need_r,
                   Index need_c) {
    ccv_.wait(lock, [&] { return !frozen_; });
    const Index nr = std::max(nrows_, need_r);
    const Index nc = std::max(ncols_, need_c);
    if (nr == nrows_ && nc == ncols_) return;  // raced with another grower
    const Matrix<DeltaSlot<T>> folded = delta_.snapshot();
    delta_ = StreamingMatrix<LastWins<T>>(nr, nc, cfg_.delta_buffer,
                                          cfg_.delta_fanout);
    const auto fv = folded.view();
    for (std::size_t ri = 0; ri < fv.row_ids.size(); ++ri) {
      const auto cols = fv.row_cols(ri);
      const auto vals = fv.row_vals(ri);
      for (std::size_t j = 0; j < cols.size(); ++j) {
        delta_.insert(fv.row_ids[ri], cols[j], vals[j]);
      }
    }
    nrows_ = nr;
    ncols_ = nc;
  }

  /// Build and publish the snapshot for the current epoch (wmu_ held).
  /// The effective delta folds the frozen generation (older) under the
  /// active one, so readers mid-compaction see both.
  void publish_locked() {
    Matrix<DeltaSlot<T>> eff = delta_.snapshot();
    if (frozen_) eff = ewise_add<LastWins<T>>(*frozen_, eff);
    auto snap = std::make_shared<DeltaSnapshot<T>>(
        build_snapshot(epoch_, main_, eff, nrows_, ncols_));
    std::lock_guard plock(pub_mu_);
    published_ = std::move(snap);
  }

  /// One compaction cycle (wmu_ held on entry and exit; UNLOCKED during
  /// the merge so writers and readers keep flowing).
  void compact_locked(std::unique_lock<std::mutex>& lock) {
    frozen_ = delta_.snapshot();
    delta_ = StreamingMatrix<LastWins<T>>(nrows_, ncols_, cfg_.delta_buffer,
                                          cfg_.delta_fanout);
    const auto old_main = main_;
    const auto frozen = *frozen_;
    const auto at_epoch = epoch_;
    const auto at_rows = nrows_;
    const auto at_cols = ncols_;
    lock.unlock();

    // The heavy merge, off-lock: patch main with the frozen delta. The
    // result is exactly materialize() of the frozen snapshot — same rows,
    // same values, no ⊕ applied — so republishing it changes the
    // representation and nothing else. Materializing at the LOGICAL shape
    // is where key-space growth folds into the swap: the new main covers
    // every grown key from here on.
    auto patched = build_snapshot(at_epoch, old_main, frozen, at_rows, at_cols);
    auto merged =
        std::make_shared<const Matrix<T>>(patched.materialize());
    (void)merged->view();  // warm before publication

    lock.lock();
    main_ = std::move(merged);
    frozen_.reset();
    compactions_.fetch_add(1, std::memory_order_relaxed);
    publish_locked();  // overlay now holds only post-freeze mutations
  }

  void compact_loop() {
    std::unique_lock lock(wmu_);
    while (true) {
      ccv_.wait(lock, [&] {
        return stop_ ||
               (!frozen_ && delta_.pending_updates() >= cfg_.compact_threshold);
      });
      if (stop_) return;
      compact_locked(lock);
      ccv_.notify_all();  // wake synchronous compact() waiters
    }
  }

  /// Patch `main` with a canonical slot matrix: every slot row becomes an
  /// overlay row = two-pointer merge of the main row and the slot row
  /// (assign replaces or inserts, erase drops). O(delta + touched rows).
  static DeltaSnapshot<T> build_snapshot(
      std::uint64_t epoch, std::shared_ptr<const Matrix<T>> main,
      const Matrix<DeltaSlot<T>>& slots, Index shape_rows, Index shape_cols) {
    DeltaSnapshot<T> snap;
    snap.epoch = epoch;
    snap.main = std::move(main);
    snap.shape_rows = shape_rows;
    snap.shape_cols = shape_cols;
    if (slots.nnz() == 0) return snap;

    const auto mv = snap.main->view();
    const bool m_full = mv.n_nonempty_rows() == mv.nrows;
    const auto dv = slots.view();
    snap.orows.reserve(dv.row_ids.size());
    snap.optr.reserve(dv.row_ids.size() + 1);
    for (std::size_t di = 0; di < dv.row_ids.size(); ++di) {
      const Index r = dv.row_ids[di];
      const auto dc = dv.row_cols(di);
      const auto dval = dv.row_vals(di);
      if (dc.empty()) continue;  // empty slot row: nothing to patch
      snap.orows.push_back(r);
      const auto mrow = detail::find_row(mv, r, m_full);
      std::span<const Index> mc;
      std::span<const T> mval;
      if (mrow >= 0) {
        mc = mv.row_cols(static_cast<std::size_t>(mrow));
        mval = mv.row_vals(static_cast<std::size_t>(mrow));
      }
      std::size_t jm = 0, jd = 0;
      while (jm < mc.size() || jd < dc.size()) {
        const Index cm = jm < mc.size() ? mc[jm]
                                        : std::numeric_limits<Index>::max();
        const Index cd = jd < dc.size() ? dc[jd]
                                        : std::numeric_limits<Index>::max();
        if (cm < cd) {  // untouched main entry
          snap.ocols.push_back(cm);
          snap.ovals.push_back(mval[jm]);
          ++jm;
        } else {
          if (cm == cd) ++jm;  // the slot overrides the main entry
          if (dval[jd].op == DeltaSlot<T>::Op::kAssign) {
            snap.ocols.push_back(cd);
            snap.ovals.push_back(dval[jd].val);
          }  // kErase: emit nothing (tombstone); kNone cannot be stored
          ++jd;
        }
      }
      snap.optr.push_back(static_cast<Index>(snap.ocols.size()));
    }
    return snap;
  }

  DeltaConfig cfg_;

  mutable std::mutex pub_mu_;  ///< guards published_ (pointer copy only)
  std::shared_ptr<const DeltaSnapshot<T>> published_;

  mutable std::mutex wmu_;  ///< serializes writers; guards the fields below
  std::shared_ptr<const Matrix<T>> main_;
  Index nrows_ = 0;  ///< logical shape; ≥ main_'s until the next compaction
  Index ncols_ = 0;
  StreamingMatrix<LastWins<T>> delta_;  ///< active update log
  std::optional<Matrix<DeltaSlot<T>>> frozen_;  ///< generation mid-compaction
  std::uint64_t epoch_ = 0;
  std::atomic<std::uint64_t> compactions_{0};

  std::condition_variable ccv_;
  std::thread compactor_;
  bool stop_ = false;
};

}  // namespace hyperspace::sparse
