#pragma once
// Dense ("full") format — every position holds a value.
//
// The Fig 4 left panel: nnz ~ N². Positions not explicitly set hold the
// ambient semiring zero, which must be supplied when densifying since the
// formats themselves are semiring-agnostic.

#include <cassert>
#include <stdexcept>
#include <vector>

#include "sparse/bitmap.hpp"  // kMaxDenseExtent
#include "sparse/types.hpp"

namespace hyperspace::sparse {

template <typename T>
class DenseMat {
 public:
  DenseMat() = default;

  DenseMat(Index nrows, Index ncols, T fill = T{})
      : nrows_(nrows), ncols_(ncols) {
    if (nrows < 0 || ncols < 0 ||
        (nrows > 0 && ncols > kMaxDenseExtent / std::max<Index>(nrows, 1))) {
      throw std::length_error("DenseMat: dimensions too large to densify");
    }
    vals_.assign(static_cast<std::size_t>(nrows * ncols), fill);
  }

  Index nrows() const { return nrows_; }
  Index ncols() const { return ncols_; }
  Index nnz() const { return nrows_ * ncols_; }  ///< all entries are present

  const T& at(Index r, Index c) const { return vals_[pos(r, c)]; }
  T& at(Index r, Index c) { return vals_[pos(r, c)]; }
  const std::vector<T>& vals() const { return vals_; }

  std::size_t bytes() const {
    return sizeof(*this) + vals_.capacity() * sizeof(T);
  }

 private:
  std::size_t pos(Index r, Index c) const {
    assert(r >= 0 && r < nrows_ && c >= 0 && c < ncols_);
    return static_cast<std::size_t>(r * ncols_ + c);
  }

  Index nrows_ = 0;
  Index ncols_ = 0;
  std::vector<T> vals_;
};

}  // namespace hyperspace::sparse
