#pragma once
// Element-wise ⊕ and ⊗ — the paper's graph union and graph intersection
// (Fig 5):
//
//   C = A ⊕ B : entries on the *union* of patterns; where both present,
//               values combine with ⊕ (absent = implicit 0, and a ⊕ 0 = a).
//   C = A ⊗ B : entries on the *intersection* of patterns; 0 annihilates ⊗,
//               so positions present in only one operand vanish.
//
// Both are two-pointer merges over the sorted row lists / column lists of
// the operands' SparseViews, so CSR and DCSR (hypersparse) operands mix
// freely. Output entries are produced in canonical order.

#include <algorithm>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "semiring/concepts.hpp"
#include "sparse/matrix.hpp"

namespace hyperspace::sparse {

namespace detail {

inline void check_same_shape(Index ar, Index ac, Index br, Index bc,
                             const char* op) {
  if (ar != br || ac != bc) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch");
  }
}

}  // namespace detail

/// C = A ⊕ B (pattern union). Works for any Table I semiring.
template <semiring::Semiring S>
Matrix<typename S::value_type> ewise_add(
    const Matrix<typename S::value_type>& A,
    const Matrix<typename S::value_type>& B) {
  using T = typename S::value_type;
  detail::check_same_shape(A.nrows(), A.ncols(), B.nrows(), B.ncols(),
                           "ewise_add");
  const SparseView<T> a = A.view();
  const SparseView<T> b = B.view();

  std::vector<Triple<T>> out;
  out.reserve(static_cast<std::size_t>(a.nnz() + b.nnz()));

  std::size_t ia = 0, ib = 0;
  auto emit_row = [&out](Index row, std::span<const Index> cols,
                         std::span<const T> vals) {
    for (std::size_t j = 0; j < cols.size(); ++j) {
      out.push_back({row, cols[j], vals[j]});
    }
  };

  while (ia < a.row_ids.size() || ib < b.row_ids.size()) {
    const Index ra = ia < a.row_ids.size() ? a.row_ids[ia]
                                           : std::numeric_limits<Index>::max();
    const Index rb = ib < b.row_ids.size() ? b.row_ids[ib]
                                           : std::numeric_limits<Index>::max();
    if (ra < rb) {
      emit_row(ra, a.row_cols(ia), a.row_vals(ia));
      ++ia;
    } else if (rb < ra) {
      emit_row(rb, b.row_cols(ib), b.row_vals(ib));
      ++ib;
    } else {
      const auto ac = a.row_cols(ia), bc = b.row_cols(ib);
      const auto av = a.row_vals(ia), bv = b.row_vals(ib);
      std::size_t ja = 0, jb = 0;
      while (ja < ac.size() || jb < bc.size()) {
        const Index ca = ja < ac.size() ? ac[ja]
                                        : std::numeric_limits<Index>::max();
        const Index cb = jb < bc.size() ? bc[jb]
                                        : std::numeric_limits<Index>::max();
        if (ca < cb) {
          out.push_back({ra, ca, av[ja]});
          ++ja;
        } else if (cb < ca) {
          out.push_back({ra, cb, bv[jb]});
          ++jb;
        } else {
          out.push_back({ra, ca, S::add(av[ja], bv[jb])});
          ++ja;
          ++jb;
        }
      }
      ++ia;
      ++ib;
    }
  }
  return Matrix<T>::from_canonical_triples(A.nrows(), A.ncols(), out,
                                           S::zero());
}

/// C = A ⊗ B (pattern intersection). Works for any Table I semiring.
template <semiring::Semiring S>
Matrix<typename S::value_type> ewise_mult(
    const Matrix<typename S::value_type>& A,
    const Matrix<typename S::value_type>& B) {
  using T = typename S::value_type;
  detail::check_same_shape(A.nrows(), A.ncols(), B.nrows(), B.ncols(),
                           "ewise_mult");
  const SparseView<T> a = A.view();
  const SparseView<T> b = B.view();

  std::vector<Triple<T>> out;
  out.reserve(static_cast<std::size_t>(std::min(a.nnz(), b.nnz())));

  std::size_t ia = 0, ib = 0;
  while (ia < a.row_ids.size() && ib < b.row_ids.size()) {
    if (a.row_ids[ia] < b.row_ids[ib]) {
      ++ia;
    } else if (b.row_ids[ib] < a.row_ids[ia]) {
      ++ib;
    } else {
      const Index row = a.row_ids[ia];
      const auto ac = a.row_cols(ia), bc = b.row_cols(ib);
      const auto av = a.row_vals(ia), bv = b.row_vals(ib);
      std::size_t ja = 0, jb = 0;
      while (ja < ac.size() && jb < bc.size()) {
        if (ac[ja] < bc[jb]) {
          ++ja;
        } else if (bc[jb] < ac[ja]) {
          ++jb;
        } else {
          out.push_back({row, ac[ja], S::mul(av[ja], bv[jb])});
          ++ja;
          ++jb;
        }
      }
      ++ia;
      ++ib;
    }
  }
  return Matrix<T>::from_canonical_triples(A.nrows(), A.ncols(), out,
                                           S::zero());
}

}  // namespace hyperspace::sparse
