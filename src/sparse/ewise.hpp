#pragma once
// Element-wise ⊕ and ⊗ — the paper's graph union and graph intersection
// (Fig 5):
//
//   C = A ⊕ B : entries on the *union* of patterns; where both present,
//               values combine with ⊕ (absent = implicit 0, and a ⊕ 0 = a).
//   C = A ⊗ B : entries on the *intersection* of patterns; 0 annihilates ⊗,
//               so positions present in only one operand vanish.
//
// Both are two-pointer merges over the sorted row lists / column lists of
// the operands' SparseViews, so CSR and DCSR (hypersparse) operands mix
// freely. The row-id merge is done once up front; each output row is then
// an independent column merge, run on the unified parallel runtime with one
// output slice per row — deterministic for any thread count.

#include <algorithm>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "semiring/concepts.hpp"
#include "sparse/matrix.hpp"
#include "sparse/slices.hpp"
#include "util/parallel.hpp"

namespace hyperspace::sparse {

namespace detail {

inline void check_same_shape(Index ar, Index ac, Index br, Index bc,
                             const char* op) {
  if (ar != br || ac != bc) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch");
  }
}

/// One entry of the merged row-id list: a row present in A (ia >= 0),
/// B (ib >= 0), or both.
struct RowPair {
  Index row;
  std::ptrdiff_t ia;
  std::ptrdiff_t ib;
};

/// Merge the sorted row lists of two views (union mode) or keep only common
/// rows (intersect mode). Rows with no stored entries are dropped — CSR
/// views list every row, and carrying the empty ones would cost O(nrows)
/// slices per call in the hypersparse-tall regime.
template <typename T>
std::vector<RowPair> merge_row_ids(const SparseView<T>& a,
                                   const SparseView<T>& b, bool intersect) {
  const auto nonempty = [](const SparseView<T>& v, std::size_t i) {
    return v.row_ptr[i + 1] > v.row_ptr[i];
  };
  // Non-empty rows are bounded by nnz, which for tall CSR operands (whose
  // row_ids list every row) is the far tighter reserve bound.
  const auto bound_a = std::min<std::size_t>(
      a.row_ids.size(), static_cast<std::size_t>(a.nnz()));
  const auto bound_b = std::min<std::size_t>(
      b.row_ids.size(), static_cast<std::size_t>(b.nnz()));
  std::vector<RowPair> out;
  out.reserve(intersect ? std::min(bound_a, bound_b) : bound_a + bound_b);
  std::size_t ia = 0, ib = 0;
  while (ia < a.row_ids.size() || ib < b.row_ids.size()) {
    const Index ra = ia < a.row_ids.size() ? a.row_ids[ia]
                                           : std::numeric_limits<Index>::max();
    const Index rb = ib < b.row_ids.size() ? b.row_ids[ib]
                                           : std::numeric_limits<Index>::max();
    if (ra < rb) {
      if (!intersect && nonempty(a, ia)) {
        out.push_back({ra, static_cast<std::ptrdiff_t>(ia), -1});
      }
      ++ia;
    } else if (rb < ra) {
      if (!intersect && nonempty(b, ib)) {
        out.push_back({rb, -1, static_cast<std::ptrdiff_t>(ib)});
      }
      ++ib;
    } else {
      const bool ea = nonempty(a, ia), eb = nonempty(b, ib);
      if (intersect ? (ea && eb) : (ea || eb)) {
        out.push_back({ra, static_cast<std::ptrdiff_t>(ia),
                       static_cast<std::ptrdiff_t>(ib)});
      }
      ++ia;
      ++ib;
    }
  }
  return out;
}

}  // namespace detail

/// C = A ⊕ B (pattern union). Works for any Table I semiring.
template <semiring::Semiring S>
Matrix<typename S::value_type> ewise_add(
    const Matrix<typename S::value_type>& A,
    const Matrix<typename S::value_type>& B) {
  using T = typename S::value_type;
  detail::check_same_shape(A.nrows(), A.ncols(), B.nrows(), B.ncols(),
                           "ewise_add");
  const SparseView<T> a = A.view();
  const SparseView<T> b = B.view();

  const auto merged = detail::merge_row_ids(a, b, /*intersect=*/false);
  std::vector<detail::RowSlice<T>> rows(merged.size());

  util::parallel_for(
      0, static_cast<std::ptrdiff_t>(merged.size()), 32,
      [&](std::ptrdiff_t mi) {
        const auto& m = merged[static_cast<std::size_t>(mi)];
        auto& out = rows[static_cast<std::size_t>(mi)];
        out.row = m.row;
        if (m.ib < 0) {  // row only in A
          const auto c = a.row_cols(static_cast<std::size_t>(m.ia));
          const auto v = a.row_vals(static_cast<std::size_t>(m.ia));
          out.cols.assign(c.begin(), c.end());
          out.vals.assign(v.begin(), v.end());
          return;
        }
        if (m.ia < 0) {  // row only in B
          const auto c = b.row_cols(static_cast<std::size_t>(m.ib));
          const auto v = b.row_vals(static_cast<std::size_t>(m.ib));
          out.cols.assign(c.begin(), c.end());
          out.vals.assign(v.begin(), v.end());
          return;
        }
        const auto ac = a.row_cols(static_cast<std::size_t>(m.ia));
        const auto av = a.row_vals(static_cast<std::size_t>(m.ia));
        const auto bc = b.row_cols(static_cast<std::size_t>(m.ib));
        const auto bv = b.row_vals(static_cast<std::size_t>(m.ib));
        out.cols.reserve(ac.size() + bc.size());
        out.vals.reserve(ac.size() + bc.size());
        std::size_t ja = 0, jb = 0;
        while (ja < ac.size() || jb < bc.size()) {
          const Index ca = ja < ac.size() ? ac[ja]
                                          : std::numeric_limits<Index>::max();
          const Index cb = jb < bc.size() ? bc[jb]
                                          : std::numeric_limits<Index>::max();
          if (ca < cb) {
            out.cols.push_back(ca);
            out.vals.push_back(av[ja]);
            ++ja;
          } else if (cb < ca) {
            out.cols.push_back(cb);
            out.vals.push_back(bv[jb]);
            ++jb;
          } else {
            out.cols.push_back(ca);
            out.vals.push_back(S::add(av[ja], bv[jb]));
            ++ja;
            ++jb;
          }
        }
      },
      // Cost hint: the merge walks both operand rows once.
      [&](std::ptrdiff_t mi) -> std::uint64_t {
        const auto& m = merged[static_cast<std::size_t>(mi)];
        std::uint64_t c = 1;
        if (m.ia >= 0) c += a.row_cols(static_cast<std::size_t>(m.ia)).size();
        if (m.ib >= 0) c += b.row_cols(static_cast<std::size_t>(m.ib)).size();
        return c;
      });

  const auto out = detail::splice_row_slices(rows);
  return Matrix<T>::from_canonical_triples(A.nrows(), A.ncols(), out,
                                           S::zero());
}

/// C = A ⊗ B (pattern intersection). Works for any Table I semiring.
template <semiring::Semiring S>
Matrix<typename S::value_type> ewise_mult(
    const Matrix<typename S::value_type>& A,
    const Matrix<typename S::value_type>& B) {
  using T = typename S::value_type;
  detail::check_same_shape(A.nrows(), A.ncols(), B.nrows(), B.ncols(),
                           "ewise_mult");
  const SparseView<T> a = A.view();
  const SparseView<T> b = B.view();

  const auto merged = detail::merge_row_ids(a, b, /*intersect=*/true);
  std::vector<detail::RowSlice<T>> rows(merged.size());

  util::parallel_for(
      0, static_cast<std::ptrdiff_t>(merged.size()), 32,
      [&](std::ptrdiff_t mi) {
        const auto& m = merged[static_cast<std::size_t>(mi)];
        auto& out = rows[static_cast<std::size_t>(mi)];
        out.row = m.row;
        const auto ac = a.row_cols(static_cast<std::size_t>(m.ia));
        const auto av = a.row_vals(static_cast<std::size_t>(m.ia));
        const auto bc = b.row_cols(static_cast<std::size_t>(m.ib));
        const auto bv = b.row_vals(static_cast<std::size_t>(m.ib));
        std::size_t ja = 0, jb = 0;
        while (ja < ac.size() && jb < bc.size()) {
          if (ac[ja] < bc[jb]) {
            ++ja;
          } else if (bc[jb] < ac[ja]) {
            ++jb;
          } else {
            out.cols.push_back(ac[ja]);
            out.vals.push_back(S::mul(av[ja], bv[jb]));
            ++ja;
            ++jb;
          }
        }
      },
      // Cost hint: the intersection walks both operand rows once.
      [&](std::ptrdiff_t mi) -> std::uint64_t {
        const auto& m = merged[static_cast<std::size_t>(mi)];
        return a.row_cols(static_cast<std::size_t>(m.ia)).size() +
               b.row_cols(static_cast<std::size_t>(m.ib)).size() + 1;
      });

  const auto out = detail::splice_row_slices(rows);
  return Matrix<T>::from_canonical_triples(A.nrows(), A.ncols(), out,
                                           S::zero());
}

}  // namespace hyperspace::sparse
