#pragma once
// Sub-array extraction and assignment (GrB_extract / GrB_assign).
//
// extract(A, rows, cols) gathers the submatrix addressed by index lists —
// the integer-index core under AssocArray::extract's key layer. assign
// scatters a small array into a larger one, combining collisions with a
// semiring ⊕ (so repeated assigns behave like the paper's streaming
// accumulation).

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "semiring/concepts.hpp"
#include "sparse/matrix.hpp"
#include "sparse/slices.hpp"
#include "util/parallel.hpp"

namespace hyperspace::sparse {

/// C = A(rows, cols): C(i, j) = A(rows[i], cols[j]). Index lists need not
/// be sorted or unique (duplicates replicate rows/columns, as in MATLAB).
template <typename T>
Matrix<T> extract(const Matrix<T>& A, const std::vector<Index>& rows,
                  const std::vector<Index>& cols) {
  for (const Index r : rows) {
    if (r < 0 || r >= A.nrows()) throw std::out_of_range("extract: row");
  }
  for (const Index c : cols) {
    if (c < 0 || c >= A.ncols()) throw std::out_of_range("extract: col");
  }
  // Invert the column list: source col -> list of output cols.
  std::unordered_map<Index, std::vector<Index>> col_out;
  for (std::size_t j = 0; j < cols.size(); ++j) {
    col_out[cols[j]].push_back(static_cast<Index>(j));
  }
  const SparseView<T> v = A.view();
  // Each output row gathers independently into its own slice (unified
  // runtime) and sorts its columns locally — canonical order after splicing
  // in row order, deterministic for any thread count.
  std::vector<detail::RowSlice<T>> slices(rows.size());
  util::parallel_for_scratch(
      0, static_cast<std::ptrdiff_t>(rows.size()), 16,
      [] { return std::vector<std::pair<Index, T>>{}; },
      [&](std::ptrdiff_t i, std::vector<std::pair<Index, T>>& gathered) {
        auto& out = slices[static_cast<std::size_t>(i)];
        out.row = static_cast<Index>(i);
        const Index src = rows[static_cast<std::size_t>(i)];
        const auto rit =
            std::lower_bound(v.row_ids.begin(), v.row_ids.end(), src);
        if (rit == v.row_ids.end() || *rit != src) return;
        const auto ri = static_cast<std::size_t>(rit - v.row_ids.begin());
        const auto rc = v.row_cols(ri);
        const auto rv = v.row_vals(ri);
        gathered.clear();
        for (std::size_t p = 0; p < rc.size(); ++p) {
          const auto it = col_out.find(rc[p]);
          if (it == col_out.end()) continue;
          for (const Index j : it->second) gathered.push_back({j, rv[p]});
        }
        std::sort(gathered.begin(), gathered.end(),
                  [](const auto& x, const auto& y) { return x.first < y.first; });
        out.cols.reserve(gathered.size());
        out.vals.reserve(gathered.size());
        for (auto& [j, val] : gathered) {
          out.cols.push_back(j);
          out.vals.push_back(std::move(val));
        }
      });
  const auto out = detail::splice_row_slices(slices);
  return Matrix<T>::from_canonical_triples(static_cast<Index>(rows.size()),
                                           static_cast<Index>(cols.size()),
                                           out, A.implicit_zero());
}

/// C = A with B scattered at (rows, cols): positions colliding with
/// existing entries combine via S::add. rows/cols must be unique.
template <semiring::Semiring S>
Matrix<typename S::value_type> assign(
    const Matrix<typename S::value_type>& A,
    const Matrix<typename S::value_type>& B, const std::vector<Index>& rows,
    const std::vector<Index>& cols) {
  using T = typename S::value_type;
  if (static_cast<Index>(rows.size()) != B.nrows() ||
      static_cast<Index>(cols.size()) != B.ncols()) {
    throw std::invalid_argument("assign: index list / B shape mismatch");
  }
  for (const Index r : rows) {
    if (r < 0 || r >= A.nrows()) throw std::out_of_range("assign: row");
  }
  for (const Index c : cols) {
    if (c < 0 || c >= A.ncols()) throw std::out_of_range("assign: col");
  }
  auto triples = A.to_triples();
  for (const auto& t : B.to_triples()) {
    triples.push_back({rows[static_cast<std::size_t>(t.row)],
                       cols[static_cast<std::size_t>(t.col)], t.val});
  }
  return Matrix<T>::template from_triples<S>(A.nrows(), A.ncols(),
                                             std::move(triples));
}

/// Row gather shorthand: A(rows, :).
template <typename T>
Matrix<T> extract_rows(const Matrix<T>& A, const std::vector<Index>& rows) {
  std::vector<Index> cols(static_cast<std::size_t>(A.ncols()));
  std::iota(cols.begin(), cols.end(), Index{0});
  return extract(A, rows, cols);
}

}  // namespace hyperspace::sparse
