#pragma once
// Construction helpers and textual rendering for small worked examples
// (the bench binaries print the paper's figures with these).

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "semiring/concepts.hpp"
#include "sparse/matrix.hpp"

namespace hyperspace::sparse {

/// Terse literal construction: make_matrix<S>(r, c, {{0,1,3.0}, ...}).
template <semiring::Semiring S>
Matrix<typename S::value_type> make_matrix(
    Index nrows, Index ncols,
    std::vector<Triple<typename S::value_type>> triples) {
  return Matrix<typename S::value_type>::template from_triples<S>(
      nrows, ncols, std::move(triples));
}

/// Render a small matrix as a dense grid; empty cells print as '.'.
/// Intended for worked examples only (guards against large extents).
template <typename T>
std::string to_grid(const Matrix<T>& A, int cell_width = 4) {
  std::ostringstream os;
  if (A.nrows() * A.ncols() > 10000) {
    os << "[" << A.nrows() << " x " << A.ncols() << ", nnz=" << A.nnz()
       << ", " << format_name(A.format()) << "]";
    return os.str();
  }
  for (Index r = 0; r < A.nrows(); ++r) {
    for (Index c = 0; c < A.ncols(); ++c) {
      const auto v = A.get(r, c);
      std::ostringstream cell;
      if (v) {
        cell << *v;
      } else {
        cell << '.';
      }
      os << std::setw(cell_width) << cell.str();
    }
    os << '\n';
  }
  return os.str();
}

/// One-line summary: shape, nnz, storage format, bytes.
template <typename T>
std::string summary(const Matrix<T>& A) {
  std::ostringstream os;
  os << A.nrows() << "x" << A.ncols() << " nnz=" << A.nnz() << " fmt="
     << format_name(A.format()) << " bytes=" << A.bytes();
  return os.str();
}

}  // namespace hyperspace::sparse
