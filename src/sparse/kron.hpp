#pragma once
// Kronecker product over an arbitrary semiring.
//
// C = A ⊗K B has shape (ma·mb) × (na·nb), with
//   C(ia·mb + ib, ja·nb + jb) = A(ia, ja) ⊗ B(ib, jb).
//
// The R-MAT streams standing in for the paper's internet-scale data are
// stochastic Kronecker graphs; this is the exact (deterministic) operation,
// and it composes with hypersparse storage: a few Kronecker factors span
// astronomically large key spaces at O(nnz(A)·nnz(B)) cost.

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "semiring/concepts.hpp"
#include "sparse/matrix.hpp"
#include "util/parallel.hpp"

namespace hyperspace::sparse {

template <semiring::Semiring S>
Matrix<typename S::value_type> kron(const Matrix<typename S::value_type>& A,
                                    const Matrix<typename S::value_type>& B) {
  using T = typename S::value_type;
  const Index mb = B.nrows(), nb = B.ncols();
  if (A.nrows() != 0 && mb != 0 &&
      A.nrows() > (Index{1} << 62) / std::max<Index>(mb, 1)) {
    throw std::length_error("kron: output dimension overflow");
  }
  const auto ta = A.to_triples();
  const auto tb = B.to_triples();
  std::vector<Triple<T>> out(ta.size() * tb.size());
  // Each A-entry owns the fixed output slice [p·nnz(B), (p+1)·nnz(B)) —
  // positions are partition-independent, so the parallel fill is
  // deterministic for any thread count.
  util::parallel_for(
      0, static_cast<std::ptrdiff_t>(ta.size()), 8, [&](std::ptrdiff_t p) {
        const auto& a = ta[static_cast<std::size_t>(p)];
        Triple<T>* slice = out.data() + static_cast<std::size_t>(p) * tb.size();
        for (std::size_t q = 0; q < tb.size(); ++q) {
          const auto& b = tb[q];
          slice[q] = {a.row * mb + b.row, a.col * nb + b.col,
                      S::mul(a.val, b.val)};
        }
      });
  std::sort(out.begin(), out.end(), [](const Triple<T>& x, const Triple<T>& y) {
    return x.row != y.row ? x.row < y.row : x.col < y.col;
  });
  return Matrix<T>::from_canonical_triples(A.nrows() * mb, A.ncols() * nb,
                                           out, S::zero());
}

/// n-fold Kronecker power A ⊗K A ⊗K ... — deterministic Kronecker graphs.
template <semiring::Semiring S>
Matrix<typename S::value_type> kron_power(
    const Matrix<typename S::value_type>& A, int n) {
  if (n < 1) throw std::invalid_argument("kron_power: n must be >= 1");
  auto result = A;
  for (int i = 1; i < n; ++i) result = kron<S>(result, A);
  return result;
}

}  // namespace hyperspace::sparse
