#pragma once
// Masked operations — the GraphBLAS write-mask C⟨M⟩ = op(...).
//
// A mask restricts which output positions may be written: only positions
// present in M (or absent, for a complemented mask) survive. Masks are the
// idiom behind efficient BFS frontiers ("visited" complement masks) and the
// §V-B database row mask |…|₀ ∩ A — this header generalizes that pattern
// to every kernel.

#include <vector>

#include "semiring/concepts.hpp"
#include "sparse/accumulator.hpp"  // MaskDesc, MxmMaskStats
#include "sparse/ewise.hpp"
#include "sparse/matrix.hpp"
#include "sparse/mxm.hpp"
#include "sparse/slices.hpp"
#include "util/parallel.hpp"

namespace hyperspace::sparse {

/// Keep only the entries of A at positions present in M (structural mask;
/// M's values are ignored — only its pattern matters).
template <typename T, typename U>
Matrix<T> mask_select(const Matrix<T>& A, const Matrix<U>& M,
                      MaskDesc desc = {}) {
  if (A.nrows() != M.nrows() || A.ncols() != M.ncols()) {
    throw std::invalid_argument("mask_select: shape mismatch");
  }
  const SparseView<U> m = M.view();
  // Build a row-indexed lookup over M's pattern.
  auto in_mask = [&m](Index r, Index c) {
    const auto rit = std::lower_bound(m.row_ids.begin(), m.row_ids.end(), r);
    if (rit == m.row_ids.end() || *rit != r) return false;
    const auto ri = static_cast<std::size_t>(rit - m.row_ids.begin());
    const auto cols = m.row_cols(ri);
    return std::binary_search(cols.begin(), cols.end(), c);
  };
  // Chunked filter on the unified runtime (deterministic for any thread
  // count — see detail::chunked_collect).
  auto triples = A.to_triples();
  const auto out = detail::chunked_collect<T>(
      static_cast<std::ptrdiff_t>(triples.size()), 512,
      [&](std::ptrdiff_t i, std::vector<Triple<T>>& part) {
        auto& t = triples[static_cast<std::size_t>(i)];
        if (in_mask(t.row, t.col) != desc.complement) {
          part.push_back(std::move(t));
        }
      });
  return Matrix<T>::from_canonical_triples(A.nrows(), A.ncols(), out,
                                           A.implicit_zero());
}

/// C⟨M⟩ = A ⊕.⊗ B — masked array multiplication, fused: the mask is
/// consulted during accumulation (O(kept) work; see mxm_masked_fused).
/// With a complement mask this is the classic BFS "unvisited only" step.
/// `stats`, when given, accumulates kept/skipped flop counts.
template <semiring::Semiring S, typename U>
Matrix<typename S::value_type> mxm_masked(
    const Matrix<typename S::value_type>& A,
    const Matrix<typename S::value_type>& B, const Matrix<U>& M,
    MaskDesc desc = {}, MxmMaskStats* stats = nullptr,
    MxmStrategy strategy = MxmStrategy::kAuto) {
  return mxm_masked_fused<S>(A, B, M, desc, stats, strategy);
}

/// Compute-then-filter reference for the fused kernel: the full product is
/// materialized and masked afterwards. O(produced) — kept only so tests and
/// the ablation bench can assert/measure the fusion win.
template <semiring::Semiring S, typename U>
Matrix<typename S::value_type> mxm_masked_unfused(
    const Matrix<typename S::value_type>& A,
    const Matrix<typename S::value_type>& B, const Matrix<U>& M,
    MaskDesc desc = {}, MxmStrategy strategy = MxmStrategy::kAuto) {
  if (M.nrows() != A.nrows() || M.ncols() != B.ncols()) {
    throw std::invalid_argument("mxm_masked: mask shape mismatch");
  }
  return mask_select(mxm<S>(A, B, strategy), M, desc);
}

/// C⟨M⟩ = A ⊕ B — masked element-wise addition.
template <semiring::Semiring S, typename U>
Matrix<typename S::value_type> ewise_add_masked(
    const Matrix<typename S::value_type>& A,
    const Matrix<typename S::value_type>& B, const Matrix<U>& M,
    MaskDesc desc = {}) {
  return mask_select(ewise_add<S>(A, B), M, desc);
}

/// C⟨M⟩ = A ⊗ B — masked element-wise multiplication. (With a structural
/// mask this equals A ⊗ B ⊗ |M|₀ — the Table II mask identity, asserted in
/// tests.)
template <semiring::Semiring S, typename U>
Matrix<typename S::value_type> ewise_mult_masked(
    const Matrix<typename S::value_type>& A,
    const Matrix<typename S::value_type>& B, const Matrix<U>& M,
    MaskDesc desc = {}) {
  return mask_select(ewise_mult<S>(A, B), M, desc);
}

}  // namespace hyperspace::sparse
