#pragma once
// Matrix<T> — the GrB_Matrix analogue: one opaque container that stores its
// payload in whichever of {COO, CSR, DCSR, bitmap, dense} suits the data,
// and switches automatically, "with little or no involvement from the user
// application" (paper, Conclusions, describing SuiteSparse:GraphBLAS).
//
// Switch rule (choose_format):
//   * dense     if every position is present (nnz == nrows*ncols), matching
//               SuiteSparse's "full" — automatic switching never fabricates
//               entries, so stored-entry semantics are format-independent
//   * bitmap    if the extent densifies and density ≥ 1/10
//   * DCSR      if non-empty rows < nrows/8, or nrows alone is too big for
//               an O(nrows) row-pointer array (the hypersparse regime)
//   * CSR       otherwise
//
// Compute kernels consume SparseView<T>; view() lazily materializes a CSR
// mirror for COO/bitmap/dense payloads so every format is computable.

#include <algorithm>
#include <cassert>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>
#include <variant>
#include <vector>

#include "semiring/concepts.hpp"
#include "sparse/bitmap.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/dcsr.hpp"
#include "sparse/dense.hpp"
#include "sparse/slices.hpp"
#include "sparse/types.hpp"
#include "sparse/view.hpp"
#include "util/parallel.hpp"

namespace hyperspace::sparse {

/// Row-pointer arrays beyond this row count are refused; such matrices are
/// forced to DCSR (storage independent of dimension).
inline constexpr Index kMaxCsrRows = Index{1} << 28;

/// The automatic format decision. Pure function so the ablation bench can
/// interrogate it directly.
inline Format choose_format(Index nrows, Index ncols, Index nnz,
                            Index nonempty_rows) {
  const auto extent = static_cast<__int128>(nrows) * ncols;
  if (extent > 0 && extent <= kMaxDenseExtent) {
    if (static_cast<__int128>(nnz) == extent) return Format::kDense;
    const double density =
        static_cast<double>(nnz) / static_cast<double>(extent);
    if (density >= 0.10) return Format::kBitmap;
  }
  if (nrows > kMaxCsrRows) return Format::kDcsr;
  if (nonempty_rows * 8 < nrows) return Format::kDcsr;
  return Format::kCsr;
}

template <typename T>
class Matrix {
 public:
  Matrix() : payload_(Csr<T>{}) {}

  Matrix(const Matrix& other) : payload_(other.payload_), zero_(other.zero_) {}
  Matrix& operator=(const Matrix& other) {
    payload_ = other.payload_;
    zero_ = other.zero_;
    mirror_.reset();
    return *this;
  }
  // Hand-written moves: the mirror mutex is per-object and never moves.
  Matrix(Matrix&& other) noexcept
      : payload_(std::move(other.payload_)),
        zero_(std::move(other.zero_)),
        mirror_(std::move(other.mirror_)) {}
  Matrix& operator=(Matrix&& other) noexcept {
    payload_ = std::move(other.payload_);
    zero_ = std::move(other.zero_);
    mirror_ = std::move(other.mirror_);
    return *this;
  }

  /// Empty matrix of the given shape (CSR or DCSR per the switch rule).
  Matrix(Index nrows, Index ncols, T implicit_zero = T{})
      : zero_(std::move(implicit_zero)) {
    if (nrows > kMaxCsrRows) {
      payload_ = Dcsr<T>(nrows, ncols);
    } else {
      payload_ = Csr<T>(nrows, ncols);
    }
  }

  /// Build from triples, combining duplicates with the semiring's ⊕ and
  /// choosing the storage format automatically.
  template <semiring::Semiring S>
    requires std::same_as<typename S::value_type, T>
  static Matrix from_triples(Index nrows, Index ncols,
                             std::vector<Triple<T>> triples) {
    Coo<T> coo(nrows, ncols, std::move(triples));
    coo.template sort_combine<S>();
    Matrix m = from_sorted_triples(nrows, ncols, coo.triples());
    m.zero_ = S::zero();
    return m;
  }

  /// Build from triples that are already unique; duplicates are an error.
  static Matrix from_unique_triples(Index nrows, Index ncols,
                                    std::vector<Triple<T>> triples,
                                    T implicit_zero = T{}) {
    Coo<T> coo(nrows, ncols, std::move(triples));
    coo.sort_combine_with([](const T&, const T&) -> T {
      throw std::invalid_argument("from_unique_triples: duplicate entry");
    });
    Matrix m = from_sorted_triples(nrows, ncols, coo.triples());
    m.zero_ = std::move(implicit_zero);
    return m;
  }

  /// Build from triples already in canonical order (sorted by (row, col),
  /// unique). This is the fast path for kernel outputs, which produce
  /// entries in order; sortedness is asserted in debug builds.
  static Matrix from_canonical_triples(Index nrows, Index ncols,
                                       const std::vector<Triple<T>>& triples,
                                       T implicit_zero = T{}) {
#ifndef NDEBUG
    for (std::size_t i = 1; i < triples.size(); ++i) {
      assert(triples[i - 1].row < triples[i].row ||
             (triples[i - 1].row == triples[i].row &&
              triples[i - 1].col < triples[i].col));
    }
#endif
    Matrix m = from_sorted_triples(nrows, ncols, triples);
    m.zero_ = std::move(implicit_zero);
    return m;
  }

  /// Identity-like I(n): diagonal of `one`s (Table II: I(k) = P(k,k)).
  static Matrix identity(Index n, T one, T implicit_zero = T{}) {
    std::vector<Triple<T>> t;
    t.reserve(static_cast<std::size_t>(n));
    for (Index i = 0; i < n; ++i) t.push_back({i, i, one});
    return from_unique_triples(n, n, std::move(t), std::move(implicit_zero));
  }

  /// The all-`v` matrix ("1 is the array of all 1", Section III). Dense.
  static Matrix full(Index nrows, Index ncols, T v, T implicit_zero = T{}) {
    Matrix m;
    m.payload_ = DenseMat<T>(nrows, ncols, std::move(v));
    m.zero_ = std::move(implicit_zero);
    return m;
  }

  static Matrix from_csr(Csr<T> c, T implicit_zero = T{}) {
    Matrix m;
    m.payload_ = std::move(c);
    m.zero_ = std::move(implicit_zero);
    return m;
  }
  static Matrix from_dcsr(Dcsr<T> d, T implicit_zero = T{}) {
    Matrix m;
    m.payload_ = std::move(d);
    m.zero_ = std::move(implicit_zero);
    return m;
  }
  static Matrix from_dense(DenseMat<T> d, T implicit_zero = T{}) {
    Matrix m;
    m.payload_ = std::move(d);
    m.zero_ = std::move(implicit_zero);
    return m;
  }
  static Matrix from_bitmap(Bitmap<T> b, T implicit_zero = T{}) {
    Matrix m;
    m.payload_ = std::move(b);
    m.zero_ = std::move(implicit_zero);
    return m;
  }

  Format format() const {
    return std::visit(
        [](const auto& p) -> Format {
          using P = std::decay_t<decltype(p)>;
          if constexpr (std::is_same_v<P, Coo<T>>) return Format::kCoo;
          else if constexpr (std::is_same_v<P, Csr<T>>) return Format::kCsr;
          else if constexpr (std::is_same_v<P, Dcsr<T>>) return Format::kDcsr;
          else if constexpr (std::is_same_v<P, Bitmap<T>>) return Format::kBitmap;
          else return Format::kDense;
        },
        payload_);
  }

  Index nrows() const {
    return std::visit([](const auto& p) { return p.nrows(); }, payload_);
  }
  Index ncols() const {
    return std::visit([](const auto& p) { return p.ncols(); }, payload_);
  }
  Index nnz() const {
    return std::visit([](const auto& p) { return p.nnz(); }, payload_);
  }

  const T& implicit_zero() const { return zero_; }
  void set_implicit_zero(T z) { zero_ = std::move(z); }

  /// Stored value at (r, c), or nullopt if the position is empty.
  std::optional<T> get(Index r, Index c) const {
    if (r < 0 || r >= nrows() || c < 0 || c >= ncols()) return std::nullopt;
    if (const auto* d = std::get_if<DenseMat<T>>(&payload_)) return d->at(r, c);
    if (const auto* b = std::get_if<Bitmap<T>>(&payload_)) {
      return b->has(r, c) ? std::optional<T>(b->at(r, c)) : std::nullopt;
    }
    const SparseView<T> v = view();
    // binary search the non-empty row list, then the row's columns
    const auto rit = std::lower_bound(v.row_ids.begin(), v.row_ids.end(), r);
    if (rit == v.row_ids.end() || *rit != r) return std::nullopt;
    const auto ri = static_cast<std::size_t>(rit - v.row_ids.begin());
    const auto rc = v.row_cols(ri);
    const auto cit = std::lower_bound(rc.begin(), rc.end(), c);
    if (cit == rc.end() || *cit != c) return std::nullopt;
    return v.row_vals(ri)[static_cast<std::size_t>(cit - rc.begin())];
  }

  /// Extraction: (k1, k2, v) = A (Table II). Triples in (row, col) order.
  /// Every payload writes to positions fixed by the data alone (CSR offsets,
  /// dense strides, per-row bitmap counts), so the extraction is parallel
  /// and deterministic — conversions bracket every kernel call, and this is
  /// their hot half.
  std::vector<Triple<T>> to_triples() const {
    std::vector<Triple<T>> out;
    if (const auto* d = std::get_if<DenseMat<T>>(&payload_)) {
      const Index nc = d->ncols();
      out.resize(static_cast<std::size_t>(d->nnz()));
      util::parallel_for(0, static_cast<std::ptrdiff_t>(d->nrows()), 64,
                         [&](std::ptrdiff_t r) {
                           for (Index c = 0; c < nc; ++c) {
                             out[static_cast<std::size_t>(r * nc + c)] = {
                                 static_cast<Index>(r), c,
                                 d->at(static_cast<Index>(r), c)};
                           }
                         });
      return out;
    }
    if (const auto* b = std::get_if<Bitmap<T>>(&payload_)) {
      // Count per row, prefix serially, then fill rows in parallel.
      const Index nr = b->nrows(), nc = b->ncols();
      std::vector<std::size_t> offset(static_cast<std::size_t>(nr) + 1, 0);
      util::parallel_for(0, static_cast<std::ptrdiff_t>(nr), 64,
                         [&](std::ptrdiff_t r) {
                           std::size_t n = 0;
                           for (Index c = 0; c < nc; ++c) {
                             n += b->has(static_cast<Index>(r), c);
                           }
                           offset[static_cast<std::size_t>(r) + 1] = n;
                         });
      for (std::size_t r = 0; r < static_cast<std::size_t>(nr); ++r) {
        offset[r + 1] += offset[r];
      }
      out.resize(offset.back());
      util::parallel_for(0, static_cast<std::ptrdiff_t>(nr), 64,
                         [&](std::ptrdiff_t r) {
                           std::size_t p = offset[static_cast<std::size_t>(r)];
                           for (Index c = 0; c < nc; ++c) {
                             if (b->has(static_cast<Index>(r), c)) {
                               out[p++] = {static_cast<Index>(r), c,
                                           b->at(static_cast<Index>(r), c)};
                             }
                           }
                         });
      return out;
    }
    const SparseView<T> v = view();
    out.resize(static_cast<std::size_t>(v.nnz()));
    util::parallel_for(
        0, static_cast<std::ptrdiff_t>(v.row_ids.size()), 64,
        [&](std::ptrdiff_t ri) {
          const auto rc = v.row_cols(static_cast<std::size_t>(ri));
          const auto rv = v.row_vals(static_cast<std::size_t>(ri));
          auto p = static_cast<std::size_t>(
              v.row_ptr[static_cast<std::size_t>(ri)]);
          for (std::size_t j = 0; j < rc.size(); ++j) {
            out[p + j] = {v.row_ids[static_cast<std::size_t>(ri)], rc[j], rv[j]};
          }
        });
    return out;
  }

  Index n_nonempty_rows() const {
    const Index fast = n_nonempty_rows_fast();
    return fast >= 0 ? fast : view().n_nonempty_rows();
  }

 private:
  Index n_nonempty_rows_fast() const {
    return std::visit(
        [](const auto& p) -> Index {
          using P = std::decay_t<decltype(p)>;
          if constexpr (std::is_same_v<P, Csr<T>> || std::is_same_v<P, Dcsr<T>>) {
            return p.n_nonempty_rows();
          } else if constexpr (std::is_same_v<P, DenseMat<T>>) {
            return p.ncols() > 0 ? p.nrows() : 0;
          } else {
            (void)p;
            return Index{-1};  // resolved via the view below
          }
        },
        payload_);
  }

 public:
  /// Uniform compute view. For COO/bitmap/dense payloads a CSR mirror is
  /// materialized once into a mutable cache (invalidated by mutation).
  SparseView<T> view() const {
    if (const auto* c = std::get_if<Csr<T>>(&payload_)) return c->view();
    if (const auto* d = std::get_if<Dcsr<T>>(&payload_)) return d->view();
    // Concurrent readers may share one matrix (snapshot overlays under the
    // async executor), so first-call materialization must be guarded; after
    // it, the pointer is stable until a mutation (which readers must not
    // overlap anyway) resets it.
    std::lock_guard lock(mirror_mu_);
    if (!mirror_) {
      auto triples = to_triples_nonview();
      mirror_ = std::make_unique<Csr<T>>(nrows(), ncols(), triples);
    }
    return mirror_->view();
  }

  /// Convert in place to the requested format. Converting *from* dense to a
  /// sparse format drops entries equal to the implicit zero — densify and
  /// sparsify are inverses up to the ambient zero.
  void convert(Format f) {
    if (f == format()) return;
    auto triples = to_triples();
    if (format() == Format::kDense &&
        (f == Format::kCoo || f == Format::kCsr || f == Format::kDcsr)) {
      // Chunked parallel zero-drop, spliced in chunk order (deterministic).
      triples = detail::chunked_collect<T>(
          static_cast<std::ptrdiff_t>(triples.size()), std::ptrdiff_t{1} << 14,
          [&](std::ptrdiff_t i, std::vector<Triple<T>>& part) {
            auto& t = triples[static_cast<std::size_t>(i)];
            if (!(t.val == zero_)) part.push_back(std::move(t));
          });
    }
    const Index nr = nrows(), nc = ncols();
    switch (f) {
      case Format::kCoo:
        payload_ = Coo<T>(nr, nc, std::move(triples));
        break;
      case Format::kCsr:
        if (nr > kMaxCsrRows) {
          throw std::length_error("convert: too many rows for CSR");
        }
        payload_ = Csr<T>(nr, nc, triples);
        break;
      case Format::kDcsr:
        payload_ = Dcsr<T>(nr, nc, triples);
        break;
      case Format::kBitmap: {
        // Triples hold unique positions, so parallel set() calls touch
        // disjoint slots of the presence/value arrays.
        Bitmap<T> b(nr, nc);
        util::parallel_for(0, static_cast<std::ptrdiff_t>(triples.size()),
                           1 << 12, [&](std::ptrdiff_t i) {
                             auto& t = triples[static_cast<std::size_t>(i)];
                             b.set(t.row, t.col, std::move(t.val));
                           });
        payload_ = std::move(b);
        break;
      }
      case Format::kDense: {
        DenseMat<T> d(nr, nc, zero_);
        util::parallel_for(0, static_cast<std::ptrdiff_t>(triples.size()),
                           1 << 12, [&](std::ptrdiff_t i) {
                             auto& t = triples[static_cast<std::size_t>(i)];
                             d.at(t.row, t.col) = std::move(t.val);
                           });
        payload_ = std::move(d);
        break;
      }
    }
    mirror_.reset();
  }

  /// Apply the automatic switch rule to the current contents.
  void auto_format() {
    convert(choose_format(nrows(), ncols(), nnz(), n_nonempty_rows()));
  }

  std::size_t bytes() const {
    return std::visit([](const auto& p) { return p.bytes(); }, payload_);
  }

  /// Structural + value equality of stored entries (ignores format).
  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.nrows() == b.nrows() && a.ncols() == b.ncols() &&
           a.to_triples() == b.to_triples();
  }

 private:
  static Matrix from_sorted_triples(Index nrows, Index ncols,
                                    const std::vector<Triple<T>>& triples) {
    Index nonempty = 0;
    Index prev = -1;
    for (const auto& t : triples) {
      if (t.row != prev) {
        ++nonempty;
        prev = t.row;
      }
    }
    const Format f = choose_format(nrows, ncols,
                                   static_cast<Index>(triples.size()), nonempty);
    Matrix m;
    switch (f) {
      case Format::kDense: {
        DenseMat<T> d(nrows, ncols);
        for (const auto& t : triples) d.at(t.row, t.col) = t.val;
        m.payload_ = std::move(d);
        break;
      }
      case Format::kBitmap: {
        Bitmap<T> b(nrows, ncols);
        for (const auto& t : triples) b.set(t.row, t.col, t.val);
        m.payload_ = std::move(b);
        break;
      }
      case Format::kDcsr:
        m.payload_ = Dcsr<T>(nrows, ncols, triples);
        break;
      default:
        m.payload_ = Csr<T>(nrows, ncols, triples);
        break;
    }
    return m;
  }

  // to_triples without touching the mirror cache (used to build the mirror).
  std::vector<Triple<T>> to_triples_nonview() const {
    if (const auto* coo = std::get_if<Coo<T>>(&payload_)) {
      auto copy = *coo;
      copy.sort_combine_with([](const T&, const T& b) { return b; });
      return copy.triples();
    }
    return to_triples();
  }

  std::variant<Coo<T>, Csr<T>, Dcsr<T>, Bitmap<T>, DenseMat<T>> payload_;
  T zero_{};
  mutable std::unique_ptr<Csr<T>> mirror_;
  mutable std::mutex mirror_mu_;
};

}  // namespace hyperspace::sparse
