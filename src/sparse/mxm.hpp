#pragma once
// Array multiplication C = A ⊕.⊗ B — the fundamental array operation the
// paper pairs with breadth-first-search (Fig 1) and uses to project
// incidence arrays onto adjacency arrays (Fig 3):
//
//   C(i, j) = ⨁_k A(i, k) ⊗ B(k, j)
//
// One row-parallel Gustavson driver serves every strategy; the per-row
// accumulation is a pluggable accumulator (accumulator.hpp):
//
//   * kGustavson — dense scratch of width ncols(B). Fastest when ncols(B)
//     is modest; impossible in the hypersparse regime (allocating O(ncols)
//     defeats O(nnz) storage).
//   * kHash      — flat open-addressing table; O(flops) independent of
//     dimension, mandatory when ncols(B) is huge.
//   * kSorted    — append + sort-fold; reference strategy, good for tiny rows.
//
// All strategies fold duplicates with S::add in encounter order, so their
// outputs are bit-identical and mxm() may pick freely (kAuto).
//
// Masked products are *fused*: mxm_masked_fused consults the mask during
// accumulation, doing O(kept) accumulator work instead of materializing the
// full product and filtering — the BFS complement-mask and §V-B row-mask
// fast path. Rows of A are processed independently on the unified parallel
// runtime (util/parallel.hpp), each producing its own sorted output slice,
// so results are deterministic for any thread count.

#include <algorithm>
#include <atomic>
#include <span>
#include <stdexcept>
#include <vector>

#include "semiring/concepts.hpp"
#include "sparse/accumulator.hpp"
#include "sparse/matrix.hpp"
#include "sparse/slices.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"

namespace hyperspace::sparse {

enum class MxmStrategy { kAuto, kGustavson, kHash, kSorted };

/// Dense accumulators wider than this fall back to hashing.
inline constexpr Index kMaxGustavsonWidth = Index{1} << 24;

namespace detail {

/// Locate row `k` inside B's non-empty row list. For CSR operands the list
/// is the identity so this is O(1); for DCSR it is a binary search.
template <typename T>
inline std::ptrdiff_t find_row(const SparseView<T>& v, Index k, bool is_full) {
  // A full view still bounds-checks: a delta base whose key space GREW
  // advertises a logical shape larger than the stored view, so rows beyond
  // it are absent, not resolvable by direct index.
  if (is_full) {
    return k < static_cast<Index>(v.row_ids.size()) ? k : -1;
  }
  const auto it = std::lower_bound(v.row_ids.begin(), v.row_ids.end(), k);
  if (it == v.row_ids.end() || *it != k) return -1;
  return it - v.row_ids.begin();
}

/// The driver's B-operand: a plain SparseView plus an optional patched-row
/// overlay (sparse/delta.hpp). Rows listed in `orows` (sorted) REPLACE the
/// main row wholesale — they are the fully merged main⊕delta rows, so the
/// kernel accumulates exactly the entries a from-scratch rebuild would
/// hold, in the same order: delta serving is byte-identical by
/// construction, not by reconciliation. An overlay row may be empty,
/// shadowing a fully deleted main row. With no overlay (the default), the
/// row resolver degenerates to find_row — one branch on an empty span.
///
/// Row handles returned by find(): >= 0 is a main-view row index, -1 is
/// absent, <= -2 encodes overlay row (-h - 2).
template <typename T>
struct BaseView {
  SparseView<T> b{};
  bool b_full = false;
  Index nrows = 0;
  Index ncols = 0;
  std::span<const Index> orows{};
  std::span<const Index> optr{};  ///< size orows.size() + 1
  std::span<const Index> ocols{};
  std::span<const T> ovals{};

  BaseView() = default;
  explicit BaseView(const Matrix<T>& B)
      : b(B.view()), nrows(B.nrows()), ncols(B.ncols()) {
    b_full = b.n_nonempty_rows() == b.nrows;
  }

  bool patched() const { return !orows.empty(); }

  std::ptrdiff_t find(Index k) const {
    if (!orows.empty()) {
      const auto it = std::lower_bound(orows.begin(), orows.end(), k);
      if (it != orows.end() && *it == k) {
        return -2 - (it - orows.begin());
      }
    }
    return find_row(b, k, b_full);
  }

  std::span<const Index> row_cols(std::ptrdiff_t h) const {
    if (h <= -2) {
      const auto i = static_cast<std::size_t>(-2 - h);
      return ocols.subspan(static_cast<std::size_t>(optr[i]),
                           static_cast<std::size_t>(optr[i + 1] - optr[i]));
    }
    return b.row_cols(static_cast<std::size_t>(h));
  }

  std::span<const T> row_vals(std::ptrdiff_t h) const {
    if (h <= -2) {
      const auto i = static_cast<std::size_t>(-2 - h);
      return ovals.subspan(static_cast<std::size_t>(optr[i]),
                           static_cast<std::size_t>(optr[i + 1] - optr[i]));
    }
    return b.row_vals(static_cast<std::size_t>(h));
  }

  /// Stored entries of logical row k (0 when absent) — the serving
  /// layer's exact flop accounting against a patched base.
  std::size_t row_nnz(Index k) const {
    const auto h = find(k);
    return h == -1 ? 0 : row_cols(h).size();
  }
};

/// The one SpGEMM inner loop. Each row of A resolves its B-rows once
/// (cached in scratch so the flop count for reserve() sizing costs no
/// second lookup), probes the mask policy per product, and folds survivors
/// into the accumulator. Per-row kept/skipped counts are summed with
/// relaxed atomic adds — integer addition commutes, so the totals are
/// exact and identical for every thread count. Returns the per-row output
/// slices (sorted by row) rather than a matrix, so callers that scatter
/// rows elsewhere — the batched serving engine splits one product into K
/// per-query results — skip a stacked-matrix round trip.
///
/// The Carry policy (default: none) seeds each row's accumulator with a
/// prior partial result BEFORE any product folds, making this launch
/// continue that partial's flat left fold — the sharded serving gather
/// (serve/router.hpp) chains launches over an ordered row partition of B
/// this way and stays bit-identical to one unsharded launch. Carry entries
/// are never mask-probed and add no flops.
template <semiring::Semiring S, typename MakeAcc, typename Mask,
          typename Carry = detail::NoCarry>
std::vector<detail::RowSlice<typename S::value_type>> mxm_rows(
    const Matrix<typename S::value_type>& A,
    const BaseView<typename S::value_type>& bv, MakeAcc&& make_acc,
    const Mask& mask, MxmMaskStats* stats, const Carry& carry = {}) {
  using T = typename S::value_type;
  if (A.ncols() != bv.nrows) {
    throw std::invalid_argument("mxm: inner dimension mismatch");
  }
  const SparseView<T> a = A.view();
  const auto b_ncols = static_cast<std::size_t>(bv.ncols);

  const auto n_arows = a.row_ids.size();
  std::vector<detail::RowSlice<T>> rows(n_arows);
  std::atomic<std::uint64_t> kept{0}, skipped{0};
  // Sampled once outside the loop: one flag read per launch, and every row
  // of the launch agrees on whether to count.
  const bool telemetry = util::metrics::enabled();

  struct Scratch {
    decltype(make_acc()) acc;
    std::vector<std::ptrdiff_t> b_rows;  ///< resolved B-row per A-row entry
    typename Mask::Scratch mask;         ///< e.g. the bitmap-probe scratch
  };
  util::parallel_for_scratch(
      0, static_cast<std::ptrdiff_t>(n_arows), 16,
      [&make_acc] { return Scratch{make_acc(), {}, {}}; },
      [&](std::ptrdiff_t ri, Scratch& s) {
        auto& out = rows[static_cast<std::size_t>(ri)];
        out.row = a.row_ids[static_cast<std::size_t>(ri)];
        const auto acols = a.row_cols(static_cast<std::size_t>(ri));
        const auto avals = a.row_vals(static_cast<std::size_t>(ri));

        // Resolve B rows once (overlay-aware); the sum of their lengths is
        // this row's flops.
        s.b_rows.clear();
        s.b_rows.reserve(acols.size());
        std::size_t row_flops = 0;
        for (const Index k : acols) {
          const auto bk = bv.find(k);
          s.b_rows.push_back(bk);
          if (bk != -1) {
            row_flops += bv.row_cols(bk).size();
          }
        }
        [[maybe_unused]] typename Carry::Row crow{};
        bool has_carry = false;
        if constexpr (Carry::kCarry) {
          crow = carry.row(out.row);
          has_carry = !crow.empty();
        }
        if (row_flops == 0 && !has_carry) return;

        const auto mrow = mask.row(out.row, row_flops, s.mask);
        if constexpr (Mask::kMasked) {
          if (mrow.all_blocked()) {
            // A blocked row emits nothing; its carry — produced under the
            // same mask — is empty by construction.
            skipped.fetch_add(row_flops, std::memory_order_relaxed);
            return;
          }
        }

        auto& acc = s.acc;
        acc.begin_row();
        // Distinct output columns are bounded by both the row's flops and
        // B's column count — the tight reserve that stops hypersparse rows
        // paying rehash/allocation churn.
        std::size_t expected = std::min(row_flops, b_ncols);
        if constexpr (Carry::kCarry) expected += crow.cols.size();
        acc.reserve(expected);
        if constexpr (Carry::kCarry) {
          // Seed the prior partial first: first-encounter inserts make it
          // the accumulator's initial value, so the products below CONTINUE
          // its fold rather than regrouping it.
          for (std::size_t j = 0; j < crow.cols.size(); ++j) {
            acc.accumulate(crow.cols[j] + crow.col_shift, crow.vals[j]);
          }
        }

        std::uint64_t row_kept = 0, row_skipped = 0;
        for (std::size_t p = 0; p < acols.size(); ++p) {
          const auto bk = s.b_rows[p];
          if (bk == -1) continue;
          const auto bcols = bv.row_cols(bk);
          const auto bvals = bv.row_vals(bk);
          for (std::size_t q = 0; q < bcols.size(); ++q) {
            if constexpr (Mask::kMasked) {
              if (!mrow.all_allowed() && !mrow.allowed(bcols[q])) {
                ++row_skipped;
                continue;
              }
              ++row_kept;
            }
            acc.accumulate(bcols[q], S::mul(avals[p], bvals[q]));
          }
        }
        acc.extract_sorted(out.cols, out.vals);
        if constexpr (Mask::kMasked) {
          kept.fetch_add(row_kept, std::memory_order_relaxed);
          skipped.fetch_add(row_skipped, std::memory_order_relaxed);
        } else if (stats || telemetry) {
          // Unmasked rows accumulate every product, so flops_kept means
          // the same thing with or without a mask policy — which keeps
          // batch-level flop accounting (ServeStats) independent of how
          // admission happened to group masked and unmasked queries.
          kept.fetch_add(row_flops, std::memory_order_relaxed);
        }
      },
      // Cost hint for the steal scheduler's tiler: the A-row extent (free
      // from the row pointers) is the flop-count proxy, so a hub row tiles
      // alone instead of dragging its neighbours. Steers tiling only —
      // results are bit-identical with or without it.
      [&a](std::ptrdiff_t ri) -> std::uint64_t {
        return a.row_cols(static_cast<std::size_t>(ri)).size() + 1;
      });

  if (stats) {
    stats->flops_kept += kept.load();
    stats->flops_skipped += skipped.load();
  }
  if (telemetry) {
    // Exact kernel-level flop accounting: relaxed-atomic sums commute, so
    // these are identical for any thread count (Stability::kInvariant).
    namespace hm = util::metrics;
    static auto& c_rows = hm::Registry::instance().counter(
        "mxm.rows", hm::Stability::kInvariant);
    static auto& c_kept = hm::Registry::instance().counter(
        "mxm.flops_kept", hm::Stability::kInvariant);
    static auto& c_skipped = hm::Registry::instance().counter(
        "mxm.flops_skipped", hm::Stability::kInvariant);
    c_rows.add(n_arows);
    c_kept.add(kept.load());
    c_skipped.add(skipped.load());
  }
  return rows;
}

/// mxm_rows + canonical assembly: the shape every plain product returns.
template <semiring::Semiring S, typename MakeAcc, typename Mask>
Matrix<typename S::value_type> mxm_driver(
    const Matrix<typename S::value_type>& A,
    const Matrix<typename S::value_type>& B, MakeAcc&& make_acc,
    const Mask& mask, MxmMaskStats* stats) {
  const BaseView<typename S::value_type> bv(B);
  auto rows = mxm_rows<S>(A, bv, std::forward<MakeAcc>(make_acc), mask, stats);
  const auto triples = detail::splice_row_slices(rows);
  return Matrix<typename S::value_type>::from_canonical_triples(
      A.nrows(), B.ncols(), triples, S::zero());
}

/// Strategy switch over mxm_rows. kAuto prefers the dense scratch while it
/// fits, else the flat hash.
template <semiring::Semiring S, typename Mask,
          typename Carry = detail::NoCarry>
std::vector<detail::RowSlice<typename S::value_type>> mxm_dispatch_rows(
    const Matrix<typename S::value_type>& A,
    const BaseView<typename S::value_type>& bv, MxmStrategy strategy,
    const Mask& mask, MxmMaskStats* stats, const Carry& carry = {}) {
  if (strategy == MxmStrategy::kAuto) {
    strategy = bv.ncols <= kMaxGustavsonWidth ? MxmStrategy::kGustavson
                                              : MxmStrategy::kHash;
  }
  const bool telemetry = util::metrics::enabled();
  if (telemetry) {
    // Which accumulator actually ran (post-kAuto resolution) is a shape
    // decision — invariant; the launch wall time below is not.
    namespace hm = util::metrics;
    static auto& c_launches = hm::Registry::instance().counter(
        "mxm.launches", hm::Stability::kInvariant);
    static auto& c_gustavson = hm::Registry::instance().counter(
        "mxm.launches.gustavson", hm::Stability::kInvariant);
    static auto& c_hash = hm::Registry::instance().counter(
        "mxm.launches.hash", hm::Stability::kInvariant);
    static auto& c_sorted = hm::Registry::instance().counter(
        "mxm.launches.sorted", hm::Stability::kInvariant);
    c_launches.inc();
    (strategy == MxmStrategy::kGustavson
         ? c_gustavson
         : strategy == MxmStrategy::kSorted ? c_sorted : c_hash)
        .inc();
  }
  const std::uint64_t t0 = telemetry ? util::metrics::clock_ns() : 0;
  std::vector<detail::RowSlice<typename S::value_type>> rows;
  switch (strategy) {
    case MxmStrategy::kGustavson:
      if (bv.ncols > kMaxGustavsonWidth) {
        throw std::length_error("mxm_gustavson: accumulator too wide");
      }
      rows = mxm_rows<S>(
          A, bv, [w = bv.ncols] { return DenseAccumulator<S>(w); }, mask,
          stats, carry);
      break;
    case MxmStrategy::kSorted:
      rows = mxm_rows<S>(
          A, bv, [] { return SortedMergeAccumulator<S>{}; }, mask, stats,
          carry);
      break;
    default:
      rows = mxm_rows<S>(
          A, bv, [] { return FlatHashAccumulator<S>{}; }, mask, stats, carry);
      break;
  }
  if (telemetry) {
    namespace hm = util::metrics;
    static auto& h_launch = hm::Registry::instance().histogram(
        "mxm.launch_ns");
    h_launch.record(util::metrics::clock_ns() - t0);
  }
  return rows;
}

template <semiring::Semiring S, typename Mask,
          typename Carry = detail::NoCarry>
std::vector<detail::RowSlice<typename S::value_type>> mxm_dispatch_rows(
    const Matrix<typename S::value_type>& A,
    const Matrix<typename S::value_type>& B, MxmStrategy strategy,
    const Mask& mask, MxmMaskStats* stats, const Carry& carry = {}) {
  const BaseView<typename S::value_type> bv(B);
  return mxm_dispatch_rows<S>(A, bv, strategy, mask, stats, carry);
}

/// Dispatch a (possibly masked) product to the accumulator the strategy
/// names and assemble the canonical result matrix. (No carry here: a carry
/// can hold rows absent from A, which need the caller-side merge the serve
/// layer performs — see serve::detail::run_stacked.)
template <semiring::Semiring S, typename Mask>
Matrix<typename S::value_type> mxm_dispatch(
    const Matrix<typename S::value_type>& A,
    const BaseView<typename S::value_type>& bv, MxmStrategy strategy,
    const Mask& mask, MxmMaskStats* stats) {
  using T = typename S::value_type;
  auto rows = mxm_dispatch_rows<S>(A, bv, strategy, mask, stats);
  const auto triples = detail::splice_row_slices(rows);
  return Matrix<T>::from_canonical_triples(A.nrows(), bv.ncols, triples,
                                           S::zero());
}

template <semiring::Semiring S, typename Mask>
Matrix<typename S::value_type> mxm_dispatch(
    const Matrix<typename S::value_type>& A,
    const Matrix<typename S::value_type>& B, MxmStrategy strategy,
    const Mask& mask, MxmMaskStats* stats) {
  const BaseView<typename S::value_type> bv(B);
  return mxm_dispatch<S>(A, bv, strategy, mask, stats);
}

}  // namespace detail

/// Gustavson-style SpGEMM. Requires ncols(B) small enough for a dense
/// accumulator; throws std::length_error otherwise.
template <semiring::Semiring S>
Matrix<typename S::value_type> mxm_gustavson(
    const Matrix<typename S::value_type>& A,
    const Matrix<typename S::value_type>& B) {
  return detail::mxm_dispatch<S>(A, B, MxmStrategy::kGustavson,
                                 detail::NoMask{}, nullptr);
}

/// Flat-hash SpGEMM. O(flops) memory, dimension-independent — the only
/// viable strategy when B's column space is hypersparse-huge.
template <semiring::Semiring S>
Matrix<typename S::value_type> mxm_hash(
    const Matrix<typename S::value_type>& A,
    const Matrix<typename S::value_type>& B) {
  return detail::mxm_dispatch<S>(A, B, MxmStrategy::kHash, detail::NoMask{},
                                 nullptr);
}

/// Sorted-merge SpGEMM (append, sort, fold). Reference strategy.
template <semiring::Semiring S>
Matrix<typename S::value_type> mxm_sorted(
    const Matrix<typename S::value_type>& A,
    const Matrix<typename S::value_type>& B) {
  return detail::mxm_dispatch<S>(A, B, MxmStrategy::kSorted, detail::NoMask{},
                                 nullptr);
}

/// The pre-refactor std::unordered_map accumulator, kept as the referee for
/// flat-hash equivalence tests and the BENCH_spgemm.json baseline row.
template <semiring::Semiring S>
Matrix<typename S::value_type> mxm_hash_baseline(
    const Matrix<typename S::value_type>& A,
    const Matrix<typename S::value_type>& B) {
  return detail::mxm_driver<S>(
      A, B, [] { return StdMapAccumulator<S>{}; }, detail::NoMask{}, nullptr);
}

/// C = A ⊕.⊗ B with automatic strategy selection.
template <semiring::Semiring S>
Matrix<typename S::value_type> mxm(const Matrix<typename S::value_type>& A,
                                   const Matrix<typename S::value_type>& B,
                                   MxmStrategy strategy = MxmStrategy::kAuto) {
  return detail::mxm_dispatch<S>(A, B, strategy, detail::NoMask{}, nullptr);
}

/// C⟨M⟩ = A ⊕.⊗ B with the structural mask fused into accumulation: a
/// product lands in the accumulator only if its output position survives the
/// mask, so the work is O(kept flops), not O(produced). Bit-identical to
/// compute-then-filter (each output column either wholly passes or wholly
/// fails the mask, and survivors fold in the same encounter order).
template <semiring::Semiring S, typename U>
Matrix<typename S::value_type> mxm_masked_fused(
    const Matrix<typename S::value_type>& A,
    const Matrix<typename S::value_type>& B, const Matrix<U>& M,
    MaskDesc desc = {}, MxmMaskStats* stats = nullptr,
    MxmStrategy strategy = MxmStrategy::kAuto) {
  if (M.nrows() != A.nrows() || M.ncols() != B.ncols()) {
    throw std::invalid_argument("mxm_masked: mask shape mismatch");
  }
  const detail::StructuralMask<U> mask{M.view(), desc};
  return detail::mxm_dispatch<S>(A, B, strategy, mask, stats);
}

/// Batched masked product — the serving engine's ONE kernel entry. Rows of
/// A are partitioned into K contiguous query blocks by `row_offsets` (size
/// K+1, front() == 0, back() == nrows(A)); block q probes the shared
/// stacked mask M under descs[q] (its own sense and probe). Blocks whose
/// query has no mask simply have no mask rows and a complement sense, so
/// every sense/probe mix coalesces into ONE launch, each row bit-identical
/// to the per-query kernel's.
///
/// `col_offsets` selects the sidedness. Empty (the one-sided form): one
/// shared output column space, M.ncols() == B's. Size K (the two-sided,
/// multi-base form): block q's slice of B is a diagonal block starting at
/// column col_offsets[q] (B is typically sparse::block_diag of per-query
/// bases) while M keeps each block's mask rows in the block's LOCAL column
/// space — a product landing at stacked column j probes M at (r, j −
/// col_offsets[q]), and M's width is the widest local block, so no shape
/// identity with B is required.
///
/// B arrives as a detail::BaseView so an epoch snapshot's patched rows
/// (sparse/delta.hpp) serve through the very same entry; the Matrix
/// wrappers below cover the immutable-base callers.
template <semiring::Semiring S, typename U>
Matrix<typename S::value_type> mxm_masked_batched(
    const Matrix<typename S::value_type>& A,
    const detail::BaseView<typename S::value_type>& B, const Matrix<U>& M,
    std::span<const Index> row_offsets, std::span<const Index> col_offsets,
    std::span<const MaskDesc> descs, MxmMaskStats* stats = nullptr,
    MxmStrategy strategy = MxmStrategy::kAuto) {
  if (M.nrows() != A.nrows() ||
      (col_offsets.empty() && M.ncols() != B.ncols)) {
    throw std::invalid_argument("mxm_masked_batched: mask shape mismatch");
  }
  if (row_offsets.size() != descs.size() + 1 || descs.empty() ||
      (!col_offsets.empty() && col_offsets.size() != descs.size()) ||
      row_offsets.front() != 0 || row_offsets.back() != A.nrows() ||
      !std::is_sorted(row_offsets.begin(), row_offsets.end())) {
    throw std::invalid_argument("mxm_masked_batched: bad block offsets");
  }
  const detail::BatchMask<U> mask{M.view(), row_offsets, descs, col_offsets};
  return detail::mxm_dispatch<S>(A, B, strategy, mask, stats);
}

/// One-sided thin wrapper over the span-based core: one shared column
/// space (empty col_offsets ⇒ zero shift everywhere).
template <semiring::Semiring S, typename U>
Matrix<typename S::value_type> mxm_masked_batched(
    const Matrix<typename S::value_type>& A,
    const Matrix<typename S::value_type>& B, const Matrix<U>& M,
    std::span<const Index> row_offsets, std::span<const MaskDesc> descs,
    MxmMaskStats* stats = nullptr, MxmStrategy strategy = MxmStrategy::kAuto) {
  const detail::BaseView<typename S::value_type> bv(B);
  return mxm_masked_batched<S>(A, bv, M, row_offsets, {}, descs, stats,
                               strategy);
}

/// Two-sided thin wrapper over the span-based core (immutable base).
template <semiring::Semiring S, typename U>
Matrix<typename S::value_type> mxm_masked_batched(
    const Matrix<typename S::value_type>& A,
    const Matrix<typename S::value_type>& B, const Matrix<U>& M,
    std::span<const Index> row_offsets, std::span<const Index> col_offsets,
    std::span<const MaskDesc> descs, MxmMaskStats* stats = nullptr,
    MxmStrategy strategy = MxmStrategy::kAuto) {
  const detail::BaseView<typename S::value_type> bv(B);
  return mxm_masked_batched<S>(A, bv, M, row_offsets, col_offsets, descs,
                               stats, strategy);
}

}  // namespace hyperspace::sparse
