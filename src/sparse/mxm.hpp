#pragma once
// Array multiplication C = A ⊕.⊗ B — the fundamental array operation the
// paper pairs with breadth-first-search (Fig 1) and uses to project
// incidence arrays onto adjacency arrays (Fig 3):
//
//   C(i, j) = ⨁_k A(i, k) ⊗ B(k, j)
//
// Two SpGEMM accumulator strategies are provided (the DESIGN.md ablation):
//
//   * Gustavson: a dense per-thread accumulator of width ncols(B) with a
//     visit-stamp array. Fastest when ncols(B) is modest; impossible in the
//     hypersparse regime (allocating O(ncols) defeats O(nnz) storage).
//   * Hash: a per-row hash accumulator; O(flops) independent of dimension,
//     mandatory when ncols(B) is huge.
//
// mxm() picks automatically; mxm_gustavson / mxm_hash pin a strategy.
// Rows of A are processed independently on the unified parallel runtime
// (util/parallel.hpp), each producing its own sorted output slice, so
// results are deterministic for any thread count.

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "semiring/concepts.hpp"
#include "sparse/matrix.hpp"
#include "sparse/slices.hpp"
#include "util/parallel.hpp"

namespace hyperspace::sparse {

enum class MxmStrategy { kAuto, kGustavson, kHash };

/// Dense accumulators wider than this fall back to hashing.
inline constexpr Index kMaxGustavsonWidth = Index{1} << 24;

namespace detail {

/// Locate row `k` inside B's non-empty row list. For CSR operands the list
/// is the identity so this is O(1); for DCSR it is a binary search.
template <typename T>
inline std::ptrdiff_t find_row(const SparseView<T>& v, Index k, bool is_full) {
  if (is_full) return k;
  const auto it = std::lower_bound(v.row_ids.begin(), v.row_ids.end(), k);
  if (it == v.row_ids.end() || *it != k) return -1;
  return it - v.row_ids.begin();
}

}  // namespace detail

/// Gustavson-style SpGEMM. Requires ncols(B) small enough for a dense
/// accumulator; throws std::length_error otherwise.
template <semiring::Semiring S>
Matrix<typename S::value_type> mxm_gustavson(
    const Matrix<typename S::value_type>& A,
    const Matrix<typename S::value_type>& B) {
  using T = typename S::value_type;
  if (A.ncols() != B.nrows()) {
    throw std::invalid_argument("mxm: inner dimension mismatch");
  }
  if (B.ncols() > kMaxGustavsonWidth) {
    throw std::length_error("mxm_gustavson: accumulator too wide");
  }
  const SparseView<T> a = A.view();
  const SparseView<T> b = B.view();
  const bool b_full = b.n_nonempty_rows() == b.nrows;

  const auto n_arows = a.row_ids.size();
  std::vector<detail::RowSlice<T>> rows(n_arows);

  struct Scratch {
    std::vector<T> acc;
    std::vector<Index> stamp;
    std::vector<Index> touched;
  };
  util::parallel_for_scratch(
      0, static_cast<std::ptrdiff_t>(n_arows), 16,
      [&b] {
        return Scratch{std::vector<T>(static_cast<std::size_t>(b.ncols),
                                      S::zero()),
                       std::vector<Index>(static_cast<std::size_t>(b.ncols),
                                          -1),
                       {}};
      },
      [&](std::ptrdiff_t ri, Scratch& s) {
        s.touched.clear();
        const auto acols = a.row_cols(static_cast<std::size_t>(ri));
        const auto avals = a.row_vals(static_cast<std::size_t>(ri));
        for (std::size_t p = 0; p < acols.size(); ++p) {
          const auto bk = detail::find_row(b, acols[p], b_full);
          if (bk < 0) continue;
          const auto bcols = b.row_cols(static_cast<std::size_t>(bk));
          const auto bvals = b.row_vals(static_cast<std::size_t>(bk));
          for (std::size_t q = 0; q < bcols.size(); ++q) {
            const auto j = static_cast<std::size_t>(bcols[q]);
            const T prod = S::mul(avals[p], bvals[q]);
            if (s.stamp[j] != ri) {
              s.stamp[j] = static_cast<Index>(ri);
              s.acc[j] = prod;
              s.touched.push_back(bcols[q]);
            } else {
              s.acc[j] = S::add(s.acc[j], prod);
            }
          }
        }
        std::sort(s.touched.begin(), s.touched.end());
        auto& out = rows[static_cast<std::size_t>(ri)];
        out.row = a.row_ids[static_cast<std::size_t>(ri)];
        out.cols.assign(s.touched.begin(), s.touched.end());
        out.vals.reserve(s.touched.size());
        for (const Index j : s.touched) {
          out.vals.push_back(std::move(s.acc[static_cast<std::size_t>(j)]));
        }
      });

  const auto triples = detail::splice_row_slices(rows);
  return Matrix<T>::from_canonical_triples(A.nrows(), B.ncols(), triples,
                                           S::zero());
}

/// Hash-accumulator SpGEMM. O(flops) memory, dimension-independent — the
/// only viable strategy when B's column space is hypersparse-huge.
template <semiring::Semiring S>
Matrix<typename S::value_type> mxm_hash(
    const Matrix<typename S::value_type>& A,
    const Matrix<typename S::value_type>& B) {
  using T = typename S::value_type;
  if (A.ncols() != B.nrows()) {
    throw std::invalid_argument("mxm: inner dimension mismatch");
  }
  const SparseView<T> a = A.view();
  const SparseView<T> b = B.view();
  const bool b_full = b.n_nonempty_rows() == b.nrows;

  const auto n_arows = a.row_ids.size();
  std::vector<detail::RowSlice<T>> rows(n_arows);

  util::parallel_for_scratch(
      0, static_cast<std::ptrdiff_t>(n_arows), 16,
      [] { return std::unordered_map<Index, T>{}; },
      [&](std::ptrdiff_t ri, std::unordered_map<Index, T>& acc) {
        acc.clear();
        const auto acols = a.row_cols(static_cast<std::size_t>(ri));
        const auto avals = a.row_vals(static_cast<std::size_t>(ri));
        for (std::size_t p = 0; p < acols.size(); ++p) {
          const auto bk = detail::find_row(b, acols[p], b_full);
          if (bk < 0) continue;
          const auto bcols = b.row_cols(static_cast<std::size_t>(bk));
          const auto bvals = b.row_vals(static_cast<std::size_t>(bk));
          for (std::size_t q = 0; q < bcols.size(); ++q) {
            const T prod = S::mul(avals[p], bvals[q]);
            auto [it, inserted] = acc.try_emplace(bcols[q], prod);
            if (!inserted) it->second = S::add(it->second, prod);
          }
        }
        auto& out = rows[static_cast<std::size_t>(ri)];
        out.row = a.row_ids[static_cast<std::size_t>(ri)];
        out.cols.reserve(acc.size());
        for (const auto& [j, _] : acc) out.cols.push_back(j);
        std::sort(out.cols.begin(), out.cols.end());
        out.vals.reserve(acc.size());
        for (const Index j : out.cols) out.vals.push_back(std::move(acc.at(j)));
      });

  const auto triples = detail::splice_row_slices(rows);
  return Matrix<T>::from_canonical_triples(A.nrows(), B.ncols(), triples,
                                           S::zero());
}

/// C = A ⊕.⊗ B with automatic strategy selection.
template <semiring::Semiring S>
Matrix<typename S::value_type> mxm(const Matrix<typename S::value_type>& A,
                                   const Matrix<typename S::value_type>& B,
                                   MxmStrategy strategy = MxmStrategy::kAuto) {
  switch (strategy) {
    case MxmStrategy::kGustavson: return mxm_gustavson<S>(A, B);
    case MxmStrategy::kHash: return mxm_hash<S>(A, B);
    case MxmStrategy::kAuto: break;
  }
  if (B.ncols() <= kMaxGustavsonWidth) return mxm_gustavson<S>(A, B);
  return mxm_hash<S>(A, B);
}

}  // namespace hyperspace::sparse
