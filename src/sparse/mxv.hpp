#pragma once
// Vector ⊕.⊗ conveniences.
//
// Following the paper's convention (Section V-C, Sparse DNN Challenge:
// "yℓ are row vectors and left array multiplication is used"), vectors are
// 1 × n (row) or n × 1 (column) matrices, and vxm/mxv delegate to mxm. The
// BFS of Fig 1 is vᵀA = vxm(v, A) over any semiring.

#include <vector>

#include "semiring/concepts.hpp"
#include "sparse/mxm.hpp"

namespace hyperspace::sparse {

/// Build a 1 × n sparse row vector from (index, value) pairs.
template <semiring::Semiring S>
Matrix<typename S::value_type> row_vector(
    Index n, std::vector<std::pair<Index, typename S::value_type>> entries) {
  using T = typename S::value_type;
  std::vector<Triple<T>> t;
  t.reserve(entries.size());
  for (auto& [i, v] : entries) t.push_back({0, i, std::move(v)});
  return Matrix<T>::template from_triples<S>(1, n, std::move(t));
}

/// Build an n × 1 sparse column vector from (index, value) pairs.
template <semiring::Semiring S>
Matrix<typename S::value_type> col_vector(
    Index n, std::vector<std::pair<Index, typename S::value_type>> entries) {
  using T = typename S::value_type;
  std::vector<Triple<T>> t;
  t.reserve(entries.size());
  for (auto& [i, v] : entries) t.push_back({i, 0, std::move(v)});
  return Matrix<T>::template from_triples<S>(n, 1, std::move(t));
}

/// vᵀA: row vector (1 × m) times matrix (m × n) → 1 × n.
template <semiring::Semiring S>
Matrix<typename S::value_type> vxm(const Matrix<typename S::value_type>& v,
                                   const Matrix<typename S::value_type>& A) {
  return mxm<S>(v, A);
}

/// Av: matrix (m × n) times column vector (n × 1) → m × 1.
template <semiring::Semiring S>
Matrix<typename S::value_type> mxv(const Matrix<typename S::value_type>& A,
                                   const Matrix<typename S::value_type>& v) {
  return mxm<S>(A, v);
}

}  // namespace hyperspace::sparse
