#pragma once
// Vector ⊕.⊗ conveniences.
//
// Following the paper's convention (Section V-C, Sparse DNN Challenge:
// "yℓ are row vectors and left array multiplication is used"), vectors are
// 1 × n (row) or n × 1 (column) matrices, and vxm/mxv delegate to mxm. The
// BFS of Fig 1 is vᵀA = vxm(v, A) over any semiring.
//
// For dense operand vectors two direction-specialized parallel kernels are
// provided on the unified runtime:
//
//   * mxv_pull  — y = A ⊕.⊗ x: each output row i folds its CSR row against
//     x in column order; rows are independent, so the kernel parallelizes
//     over rows and is bit-identical for any thread count.
//   * vxm_push  — y = xᵀ ⊕.⊗ A: the scatter direction. Output columns are
//     partitioned into ranges; every task walks the non-empty rows of A in
//     order and accumulates only the columns it owns, so each y[j] receives
//     its contributions in row order no matter how many threads run.

#include <algorithm>
#include <vector>

#include "semiring/concepts.hpp"
#include "sparse/mxm.hpp"
#include "util/parallel.hpp"

namespace hyperspace::sparse {

/// Build a 1 × n sparse row vector from (index, value) pairs.
template <semiring::Semiring S>
Matrix<typename S::value_type> row_vector(
    Index n, std::vector<std::pair<Index, typename S::value_type>> entries) {
  using T = typename S::value_type;
  std::vector<Triple<T>> t;
  t.reserve(entries.size());
  for (auto& [i, v] : entries) t.push_back({0, i, std::move(v)});
  return Matrix<T>::template from_triples<S>(1, n, std::move(t));
}

/// Build an n × 1 sparse column vector from (index, value) pairs.
template <semiring::Semiring S>
Matrix<typename S::value_type> col_vector(
    Index n, std::vector<std::pair<Index, typename S::value_type>> entries) {
  using T = typename S::value_type;
  std::vector<Triple<T>> t;
  t.reserve(entries.size());
  for (auto& [i, v] : entries) t.push_back({i, 0, std::move(v)});
  return Matrix<T>::template from_triples<S>(n, 1, std::move(t));
}

/// vᵀA: row vector (1 × m) times matrix (m × n) → 1 × n.
template <semiring::Semiring S>
Matrix<typename S::value_type> vxm(const Matrix<typename S::value_type>& v,
                                   const Matrix<typename S::value_type>& A) {
  return mxm<S>(v, A);
}

/// Av: matrix (m × n) times column vector (n × 1) → m × 1.
template <semiring::Semiring S>
Matrix<typename S::value_type> mxv(const Matrix<typename S::value_type>& A,
                                   const Matrix<typename S::value_type>& v) {
  return mxm<S>(A, v);
}

/// Pull-direction dense mxv: y[i] = ⨁_j A(i, j) ⊗ x[j]. Entries absent from
/// A contribute nothing; rows with no entries yield S::zero(). Parallel over
/// rows; bit-identical for any thread count.
template <semiring::Semiring S>
std::vector<typename S::value_type> mxv_pull(
    const Matrix<typename S::value_type>& A,
    const std::vector<typename S::value_type>& x) {
  using T = typename S::value_type;
  if (static_cast<Index>(x.size()) != A.ncols()) {
    throw std::invalid_argument("mxv_pull: dimension mismatch");
  }
  const SparseView<T> a = A.view();
  std::vector<T> y(static_cast<std::size_t>(A.nrows()), S::zero());
  util::parallel_for(
      0, static_cast<std::ptrdiff_t>(a.row_ids.size()), 64,
      [&](std::ptrdiff_t ri) {
        const auto cols = a.row_cols(static_cast<std::size_t>(ri));
        const auto vals = a.row_vals(static_cast<std::size_t>(ri));
        T acc = S::zero();
        for (std::size_t p = 0; p < cols.size(); ++p) {
          acc = S::add(acc, S::mul(vals[p], x[static_cast<std::size_t>(cols[p])]));
        }
        y[static_cast<std::size_t>(a.row_ids[static_cast<std::size_t>(ri)])] =
            std::move(acc);
      },
      // Cost hint: row extent, so a hub row becomes its own tile.
      [&a](std::ptrdiff_t ri) -> std::uint64_t {
        return a.row_cols(static_cast<std::size_t>(ri)).size() + 1;
      });
  return y;
}

/// Push-direction dense vxm: y[j] = ⨁_i x[i] ⊗ A(i, j). Tasks own disjoint
/// output-column ranges and scan A's non-empty rows in order, so every y[j]
/// accumulates in row order regardless of thread count (deterministic ⊕).
/// `active` short-circuits rows whose x value equals S::zero().
template <semiring::Semiring S>
std::vector<typename S::value_type> vxm_push(
    const std::vector<typename S::value_type>& x,
    const Matrix<typename S::value_type>& A) {
  using T = typename S::value_type;
  if (static_cast<Index>(x.size()) != A.nrows()) {
    throw std::invalid_argument("vxm_push: dimension mismatch");
  }
  const SparseView<T> a = A.view();
  std::vector<T> y(static_cast<std::size_t>(A.ncols()), S::zero());
  if (a.row_ids.empty() || A.ncols() == 0) return y;

  // One column range per thread; every range scans the rows in order. The
  // O(1) front/back disjointness test keeps the per-(row, range) overhead
  // to two comparisons when a short row misses the range entirely.
  const std::ptrdiff_t grain = std::max<std::ptrdiff_t>(
      1, (static_cast<std::ptrdiff_t>(A.ncols()) +
          static_cast<std::ptrdiff_t>(util::max_threads()) - 1) /
             static_cast<std::ptrdiff_t>(util::max_threads()));
  util::parallel_chunks(
      0, static_cast<std::ptrdiff_t>(A.ncols()), grain,
      [&](std::ptrdiff_t, std::ptrdiff_t clo, std::ptrdiff_t chi) {
        const Index lo = static_cast<Index>(clo);
        const Index hi = static_cast<Index>(chi);
        for (std::size_t ri = 0; ri < a.row_ids.size(); ++ri) {
          const auto cols = a.row_cols(ri);
          if (cols.empty() || cols.back() < lo || cols.front() >= hi) continue;
          const T& xv = x[static_cast<std::size_t>(a.row_ids[ri])];
          if (xv == S::zero()) continue;
          const auto vals = a.row_vals(ri);
          const auto first =
              std::lower_bound(cols.begin(), cols.end(), lo) - cols.begin();
          for (std::size_t p = static_cast<std::size_t>(first);
               p < cols.size() && cols[p] < hi; ++p) {
            auto& acc = y[static_cast<std::size_t>(cols[p])];
            acc = S::add(acc, S::mul(xv, vals[p]));
          }
        }
      });
  return y;
}

}  // namespace hyperspace::sparse
