#pragma once
// Monoid reductions.
//
// The paper's Section IV observes that 1 under ⊕.⊗ projects an array onto
// its rows or columns:  C = A ⊕.⊗ 1  ⇒  C(k1, :) = ⨁_{k2} A(k1, k2).
// These reductions are that projection computed directly (and the tests
// verify they agree with the mxm-by-ones formulation).
//
// Parallel structure (unified runtime, deterministic for any thread count):
//   * reduce_rows — rows are independent; one output slot per row.
//   * reduce_cols — tasks own disjoint column ranges and scan the rows in
//     order, so each column's ⨁ happens in row order regardless of threads.
//   * reduce_all  — fixed-grain chunked fold via util::parallel_reduce: the
//     chunking depends only on the grain, so the combine order (and thus
//     the float result) is identical at every thread count.

#include <algorithm>
#include <map>
#include <vector>

#include "semiring/concepts.hpp"
#include "sparse/matrix.hpp"
#include "sparse/slices.hpp"
#include "util/parallel.hpp"

namespace hyperspace::sparse {

/// Rows per chunk in reduce_all. Fixed (not thread-derived) so the fold
/// order — hence the bit pattern of a float result — never varies.
inline constexpr std::ptrdiff_t kReduceGrain = 256;

/// Row reduction: out(i, 0) = ⨁_j A(i, j). Result is nrows × 1.
template <semiring::Monoid M>
Matrix<typename M::value_type> reduce_rows(
    const Matrix<typename M::value_type>& A) {
  using T = typename M::value_type;
  const SparseView<T> v = A.view();
  std::vector<detail::RowSlice<T>> rows(v.row_ids.size());
  util::parallel_for(
      0, static_cast<std::ptrdiff_t>(v.row_ids.size()), 64,
      [&](std::ptrdiff_t ri) {
        const auto vals = v.row_vals(static_cast<std::size_t>(ri));
        auto& out = rows[static_cast<std::size_t>(ri)];
        out.row = v.row_ids[static_cast<std::size_t>(ri)];
        if (vals.empty()) return;  // CSR views list empty rows too
        T acc = vals[0];
        for (std::size_t j = 1; j < vals.size(); ++j) acc = M::op(acc, vals[j]);
        out.cols.push_back(0);
        out.vals.push_back(std::move(acc));
      },
      // Cost hint: row extent, so a hub row becomes its own tile.
      [&v](std::ptrdiff_t ri) -> std::uint64_t {
        return v.row_vals(static_cast<std::size_t>(ri)).size() + 1;
      });
  const auto out = detail::splice_row_slices(rows);
  return Matrix<T>::from_canonical_triples(A.nrows(), 1, out, M::identity());
}

/// Column reduction: out(0, j) = ⨁_i A(i, j). Result is 1 × ncols.
/// Tasks own disjoint column ranges; every task walks the rows in order, so
/// each column accumulates identically no matter how work is partitioned.
template <semiring::Monoid M>
Matrix<typename M::value_type> reduce_cols(
    const Matrix<typename M::value_type>& A) {
  using T = typename M::value_type;
  const SparseView<T> v = A.view();

  // One column range per thread; every range scans the rows in order. The
  // O(1) front/back disjointness test keeps the per-(row, range) overhead
  // to two comparisons when a short row misses the range entirely.
  const std::ptrdiff_t ncols = static_cast<std::ptrdiff_t>(A.ncols());
  const std::ptrdiff_t grain = std::max<std::ptrdiff_t>(
      1, (ncols + static_cast<std::ptrdiff_t>(util::max_threads()) - 1) /
             static_cast<std::ptrdiff_t>(util::max_threads()));
  std::vector<std::vector<Triple<T>>> parts(
      static_cast<std::size_t>(util::chunk_count(ncols, grain)));

  util::parallel_chunks(
      0, ncols, grain,
      [&](std::ptrdiff_t chunk, std::ptrdiff_t clo, std::ptrdiff_t chi) {
        const Index lo = static_cast<Index>(clo);
        const Index hi = static_cast<Index>(chi);
        // Sorted-key map keeps this range's output in column order.
        std::map<Index, T> acc;
        for (std::size_t ri = 0; ri < v.row_ids.size(); ++ri) {
          const auto cols = v.row_cols(ri);
          if (cols.empty() || cols.back() < lo || cols.front() >= hi) continue;
          const auto vals = v.row_vals(ri);
          const auto first =
              std::lower_bound(cols.begin(), cols.end(), lo) - cols.begin();
          for (std::size_t j = static_cast<std::size_t>(first);
               j < cols.size() && cols[j] < hi; ++j) {
            auto [it, inserted] = acc.try_emplace(cols[j], vals[j]);
            if (!inserted) it->second = M::op(it->second, vals[j]);
          }
        }
        auto& part = parts[static_cast<std::size_t>(chunk)];
        part.reserve(acc.size());
        for (auto& [c, val] : acc) part.push_back({0, c, std::move(val)});
      });

  const auto out = detail::splice_triple_chunks(parts);
  return Matrix<T>::from_canonical_triples(1, A.ncols(), out, M::identity());
}

/// Full reduction ⨁_{i,j} A(i, j). Returns identity() for an empty matrix.
/// Chunked fold with a fixed grain: per-chunk partials are produced in row
/// order and combined in chunk order, so the result is the same for every
/// thread count (it may differ from a strictly linear fold only for
/// non-associative-in-float ⊕ — by design, determinism wins).
template <semiring::Monoid M>
typename M::value_type reduce_all(const Matrix<typename M::value_type>& A) {
  using T = typename M::value_type;
  const SparseView<T> v = A.view();
  return util::parallel_reduce(
      0, static_cast<std::ptrdiff_t>(v.row_ids.size()), kReduceGrain,
      M::identity(),
      [&](std::ptrdiff_t ri) {
        T acc = M::identity();
        for (const T& val : v.row_vals(static_cast<std::size_t>(ri))) {
          acc = M::op(acc, val);
        }
        return acc;
      },
      [](T a, T b) { return M::op(std::move(a), std::move(b)); },
      // Cost hint: row extent. Weights tiling only — chunk boundaries and
      // the combine order (hence the result bits) are fixed by the grain.
      [&v](std::ptrdiff_t ri) -> std::uint64_t {
        return v.row_vals(static_cast<std::size_t>(ri)).size() + 1;
      });
}

}  // namespace hyperspace::sparse
