#pragma once
// Monoid reductions.
//
// The paper's Section IV observes that 1 under ⊕.⊗ projects an array onto
// its rows or columns:  C = A ⊕.⊗ 1  ⇒  C(k1, :) = ⨁_{k2} A(k1, k2).
// These reductions are that projection computed directly (and the tests
// verify they agree with the mxm-by-ones formulation).

#include <map>
#include <vector>

#include "semiring/concepts.hpp"
#include "sparse/matrix.hpp"

namespace hyperspace::sparse {

/// Row reduction: out(i, 0) = ⨁_j A(i, j). Result is nrows × 1.
template <semiring::Monoid M>
Matrix<typename M::value_type> reduce_rows(
    const Matrix<typename M::value_type>& A) {
  using T = typename M::value_type;
  const SparseView<T> v = A.view();
  std::vector<Triple<T>> out;
  out.reserve(v.row_ids.size());
  for (std::size_t ri = 0; ri < v.row_ids.size(); ++ri) {
    const auto vals = v.row_vals(ri);
    if (vals.empty()) continue;
    T acc = vals[0];
    for (std::size_t j = 1; j < vals.size(); ++j) acc = M::op(acc, vals[j]);
    out.push_back({v.row_ids[ri], 0, std::move(acc)});
  }
  return Matrix<T>::from_canonical_triples(A.nrows(), 1, out, M::identity());
}

/// Column reduction: out(0, j) = ⨁_i A(i, j). Result is 1 × ncols.
template <semiring::Monoid M>
Matrix<typename M::value_type> reduce_cols(
    const Matrix<typename M::value_type>& A) {
  using T = typename M::value_type;
  const SparseView<T> v = A.view();
  // Accumulate per column in sorted-key map order to emit canonically.
  std::map<Index, T> acc;
  for (std::size_t ri = 0; ri < v.row_ids.size(); ++ri) {
    const auto cols = v.row_cols(ri);
    const auto vals = v.row_vals(ri);
    for (std::size_t j = 0; j < cols.size(); ++j) {
      auto [it, inserted] = acc.try_emplace(cols[j], vals[j]);
      if (!inserted) it->second = M::op(it->second, vals[j]);
    }
  }
  std::vector<Triple<T>> out;
  out.reserve(acc.size());
  for (auto& [c, val] : acc) out.push_back({0, c, std::move(val)});
  return Matrix<T>::from_canonical_triples(1, A.ncols(), out, M::identity());
}

/// Full reduction ⨁_{i,j} A(i, j). Returns identity() for an empty matrix.
template <semiring::Monoid M>
typename M::value_type reduce_all(const Matrix<typename M::value_type>& A) {
  using T = typename M::value_type;
  const SparseView<T> v = A.view();
  T acc = M::identity();
  for (std::size_t ri = 0; ri < v.row_ids.size(); ++ri) {
    for (const T& val : v.row_vals(ri)) acc = M::op(acc, val);
  }
  return acc;
}

}  // namespace hyperspace::sparse
