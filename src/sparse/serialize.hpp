#pragma once
// Matrix serialization — a MatrixMarket-style coordinate text format.
//
// Header line:  %%hyperspace matrix coordinate <nrows> <ncols> <nnz>
// Body:         one "row col value" triple per line, canonical order.
//
// Round-trips every storage format (the format is re-chosen on load, so a
// matrix saved from a bitmap may load as CSR — contents are what persist,
// per the stored-entry semantics of the container).

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "semiring/concepts.hpp"
#include "sparse/matrix.hpp"

namespace hyperspace::sparse {

/// Write A as coordinate text. Values stream via operator<<.
template <typename T>
void write_matrix(std::ostream& os, const Matrix<T>& A) {
  os << "%%hyperspace matrix coordinate " << A.nrows() << ' ' << A.ncols()
     << ' ' << A.nnz() << '\n';
  os.precision(17);
  for (const auto& t : A.to_triples()) {
    os << t.row << ' ' << t.col << ' ' << t.val << '\n';
  }
}

template <typename T>
std::string to_string(const Matrix<T>& A) {
  std::ostringstream os;
  write_matrix(os, A);
  return os.str();
}

/// Read a coordinate-text matrix. Duplicate entries combine with S::add
/// (streaming-accumulation semantics on load).
template <semiring::Semiring S>
Matrix<typename S::value_type> read_matrix(std::istream& is) {
  using T = typename S::value_type;
  std::string header;
  if (!std::getline(is, header)) {
    throw std::invalid_argument("read_matrix: empty input");
  }
  std::istringstream hs(header);
  std::string magic, kind, layout;
  Index nrows = 0, ncols = 0, nnz = 0;
  hs >> magic >> kind >> layout >> nrows >> ncols >> nnz;
  if (magic != "%%hyperspace" || kind != "matrix" || layout != "coordinate" ||
      !hs) {
    throw std::invalid_argument("read_matrix: bad header: " + header);
  }
  std::vector<Triple<T>> triples;
  triples.reserve(static_cast<std::size_t>(nnz));
  for (Index i = 0; i < nnz; ++i) {
    Triple<T> t;
    if (!(is >> t.row >> t.col >> t.val)) {
      throw std::invalid_argument("read_matrix: truncated body");
    }
    if (t.row < 0 || t.row >= nrows || t.col < 0 || t.col >= ncols) {
      throw std::out_of_range("read_matrix: entry outside declared shape");
    }
    triples.push_back(std::move(t));
  }
  return Matrix<T>::template from_triples<S>(nrows, ncols, std::move(triples));
}

template <semiring::Semiring S>
Matrix<typename S::value_type> from_string(const std::string& text) {
  std::istringstream is(text);
  return read_matrix<S>(is);
}

}  // namespace hyperspace::sparse
