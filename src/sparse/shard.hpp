#pragma once
// Shard-partition primitives for the sharded serving stack (serve/).
//
// A shard map partitions a base matrix by contiguous ROW ranges: shard s
// owns base rows [cuts[s], cuts[s+1]) as a standalone matrix with local
// rows 0..height and the base's full column space (sparse::split_rows is
// the builder). Queries multiply FROM the left, so their lhs operands are
// partitioned the dual way — by COLUMN ranges (lhs columns index base
// rows): split_cols slices an lhs into per-shard sub-operands with columns
// rebased to each shard's local row space. Both splits are offset
// arithmetic on sorted data, so they are deterministic at any thread count
// and their concatenation reconstructs the input exactly.

#include <algorithm>
#include <span>
#include <stdexcept>
#include <vector>

#include "sparse/block_diag.hpp"
#include "sparse/matrix.hpp"
#include "sparse/slices.hpp"
#include "util/parallel.hpp"

namespace hyperspace::sparse {

/// Even row cuts: N contiguous ranges covering [0, nrows), heights differing
/// by at most one (the remainder spreads over the leading shards).
inline std::vector<Index> even_cuts(Index nrows, int n_shards) {
  if (n_shards < 1) {
    throw std::invalid_argument("even_cuts: need at least one shard");
  }
  std::vector<Index> cuts(static_cast<std::size_t>(n_shards) + 1, 0);
  const Index q = nrows / n_shards;
  const Index r = nrows % n_shards;
  for (int s = 0; s < n_shards; ++s) {
    cuts[static_cast<std::size_t>(s) + 1] =
        cuts[static_cast<std::size_t>(s)] + q + (s < r ? 1 : 0);
  }
  return cuts;
}

/// Validate a cut vector against a row count: ascending, 0-anchored, ending
/// at nrows. Equal consecutive cuts (zero-height shards) are legal.
inline void validate_cuts(std::span<const Index> cuts, Index nrows) {
  if (cuts.size() < 2 || cuts.front() != 0 || cuts.back() != nrows ||
      !std::is_sorted(cuts.begin(), cuts.end())) {
    throw std::invalid_argument("shard cuts: must ascend from 0 to nrows");
  }
}

/// Shard index owning row `r`: the last cut ≤ r (zero-height shards never
/// own a row).
inline std::size_t shard_of(std::span<const Index> cuts, Index r) {
  return static_cast<std::size_t>(
      std::upper_bound(cuts.begin(), cuts.end(), r) - cuts.begin() - 1);
}

/// Split A by COLUMN ranges: part s holds A's columns
/// [cuts[s], cuts[s+1]) rebased to zero, all rows kept. The dual of
/// split_rows — the scatter that carves a query's lhs into per-shard
/// sub-operands. Column order within a row is preserved, so chaining the
/// parts in cut order visits A's entries in exactly A's own encounter
/// order (the sharded-fold determinism hinges on this).
template <typename T>
std::vector<Matrix<T>> split_cols(const Matrix<T>& A,
                                  std::span<const Index> cuts,
                                  T implicit_zero = T{}) {
  validate_cuts(cuts, A.ncols());
  const SparseView<T> v = A.view();
  const auto nparts = static_cast<std::ptrdiff_t>(cuts.size() - 1);
  std::vector<Matrix<T>> out(static_cast<std::size_t>(nparts));
  util::parallel_for(0, nparts, 1, [&](std::ptrdiff_t p) {
    const Index lo = cuts[static_cast<std::size_t>(p)];
    const Index hi = cuts[static_cast<std::size_t>(p) + 1];
    std::vector<Triple<T>> t;
    for (std::size_t ri = 0; ri < v.row_ids.size(); ++ri) {
      const auto rc = v.row_cols(ri);
      const auto rv = v.row_vals(ri);
      const auto first = std::lower_bound(rc.begin(), rc.end(), lo);
      const auto last = std::lower_bound(first, rc.end(), hi);
      for (auto it = first; it != last; ++it) {
        const auto j = static_cast<std::size_t>(it - rc.begin());
        t.push_back({v.row_ids[ri], *it - lo, rv[j]});
      }
    }
    out[static_cast<std::size_t>(p)] = Matrix<T>::from_canonical_triples(
        v.nrows, hi - lo, t, implicit_zero);
  });
  return out;
}

}  // namespace hyperspace::sparse
