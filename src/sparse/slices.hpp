#pragma once
// Per-row output slices — the determinism idiom shared by every parallel
// kernel. Each task computes one row (or one fixed chunk) into its own
// slice; slices are spliced in row/chunk order on a single thread, so the
// assembled triple list is identical no matter which thread ran which task.

#include <utility>
#include <vector>

#include "sparse/types.hpp"

namespace hyperspace::sparse::detail {

template <typename T>
struct RowSlice {
  Index row = 0;
  std::vector<Index> cols;
  std::vector<T> vals;
};

/// Splice per-row slices into one canonical triple list, in slice order.
template <typename T>
std::vector<Triple<T>> splice_row_slices(std::vector<RowSlice<T>>& rows) {
  std::size_t total = 0;
  for (const auto& r : rows) total += r.cols.size();
  std::vector<Triple<T>> triples;
  triples.reserve(total);
  for (auto& r : rows) {
    for (std::size_t j = 0; j < r.cols.size(); ++j) {
      triples.push_back({r.row, r.cols[j], std::move(r.vals[j])});
    }
  }
  return triples;
}

/// Splice per-chunk triple vectors in chunk order.
template <typename T>
std::vector<Triple<T>> splice_triple_chunks(
    std::vector<std::vector<Triple<T>>>& parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  std::vector<Triple<T>> out;
  out.reserve(total);
  for (auto& p : parts) {
    for (auto& t : p) out.push_back(std::move(t));
    p.clear();
  }
  return out;
}

}  // namespace hyperspace::sparse::detail
