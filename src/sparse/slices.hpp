#pragma once
// Per-row output slices — the determinism idiom shared by every parallel
// kernel. Each task computes one row (or one fixed chunk) into its own
// slice; slices are spliced in row/chunk order on a single thread, so the
// assembled triple list is identical no matter which thread ran which task.

#include <utility>
#include <vector>

#include "sparse/types.hpp"
#include "util/parallel.hpp"

namespace hyperspace::sparse::detail {

template <typename T>
struct RowSlice {
  Index row = 0;
  std::vector<Index> cols;
  std::vector<T> vals;
};

/// Splice per-row slices into one canonical triple list, in slice order.
template <typename T>
std::vector<Triple<T>> splice_row_slices(std::vector<RowSlice<T>>& rows) {
  std::size_t total = 0;
  for (const auto& r : rows) total += r.cols.size();
  std::vector<Triple<T>> triples;
  triples.reserve(total);
  for (auto& r : rows) {
    for (std::size_t j = 0; j < r.cols.size(); ++j) {
      triples.push_back({r.row, r.cols[j], std::move(r.vals[j])});
    }
  }
  return triples;
}

/// Splice per-chunk triple vectors in chunk order.
template <typename T>
std::vector<Triple<T>> splice_triple_chunks(
    std::vector<std::vector<Triple<T>>>& parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  std::vector<Triple<T>> out;
  out.reserve(total);
  for (auto& p : parts) {
    for (auto& t : p) out.push_back(std::move(t));
    p.clear();
  }
  return out;
}

/// The chunked filter/transform idiom behind every "keep some triples"
/// kernel (mask_select, convert's zero-drop, BFS level filtering): fixed
/// chunks over [0, n), `body(i, part)` appends zero or more triples for
/// index i into its chunk's part, parts spliced in chunk order —
/// deterministic for any thread count.
template <typename T, typename Body>
std::vector<Triple<T>> chunked_collect(std::ptrdiff_t n, std::ptrdiff_t grain,
                                       Body&& body) {
  std::vector<std::vector<Triple<T>>> parts(
      static_cast<std::size_t>(util::chunk_count(n, grain)));
  util::parallel_chunks(
      0, n, grain,
      [&](std::ptrdiff_t chunk, std::ptrdiff_t lo, std::ptrdiff_t hi) {
        auto& part = parts[static_cast<std::size_t>(chunk)];
        for (std::ptrdiff_t i = lo; i < hi; ++i) body(i, part);
      });
  return splice_triple_chunks(parts);
}

}  // namespace hyperspace::sparse::detail
