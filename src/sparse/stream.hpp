#pragma once
// Hierarchical hypersparse streaming accumulator.
//
// The paper's hypersparse lineage ([8]: "75,000,000,000 streaming
// inserts/second using hierarchical hypersparse GraphBLAS matrices")
// achieves high ingest rates by never touching a big sorted structure per
// insert: updates land in a small COO buffer; full buffers cascade into a
// geometric hierarchy of sorted layers (LSM-style), merged with the
// semiring ⊕; queries and bulk reads merge the layers on demand.
//
// StreamingMatrix<S> reproduces that design: O(1) amortized insert, layers
// of size buffer · fanoutᵏ, and snapshot() producing an ordinary Matrix.
//
// Merge orientation: ⊕ is NOT assumed commutative. Every fold — the buffer
// canonicalization (stable sort, insertion order), the cascade, snapshot(),
// get(), compact() — combines `older ⊕ newer` with the older operand on the
// left. Table I semirings are commutative so this costs nothing, but it is
// what lets a "last-wins" ⊕ (the delta-base update log, sparse/delta.hpp)
// stream through the same cascade with per-key overwrite semantics.

#include <optional>
#include <utility>
#include <vector>

#include "semiring/concepts.hpp"
#include "sparse/ewise.hpp"
#include "sparse/matrix.hpp"

namespace hyperspace::sparse {

template <semiring::Semiring S>
class StreamingMatrix {
 public:
  using T = typename S::value_type;

  /// `buffer_capacity` = level-0 size; each level holds fanout× the last.
  StreamingMatrix(Index nrows, Index ncols,
                  std::size_t buffer_capacity = 1 << 14, int fanout = 4)
      : nrows_(nrows), ncols_(ncols), capacity_(buffer_capacity),
        fanout_(fanout) {
    buffer_.reserve(capacity_);
  }

  Index nrows() const { return nrows_; }
  Index ncols() const { return ncols_; }

  /// Total stored updates (pre-merge upper bound on nnz).
  std::size_t pending_updates() const {
    std::size_t n = buffer_.size();
    for (const auto& l : layers_) {
      n += static_cast<std::size_t>(l.nnz());
    }
    return n;
  }

  std::size_t n_layers() const { return layers_.size(); }

  /// O(1) amortized: append to the buffer; cascade when full.
  void insert(Index row, Index col, T val) {
    buffer_.push_back({row, col, std::move(val)});
    if (buffer_.size() >= capacity_) flush_buffer();
  }

  /// Merge everything into one Matrix (duplicates combined with ⊕, oldest
  /// layer first so the fold runs in arrival order).
  Matrix<T> snapshot() const {
    if (layers_.empty()) return buffer_matrix();
    Matrix<T> acc = layers_.back();  // deepest layer = oldest data
    for (std::size_t k = layers_.size() - 1; k-- > 0;) {
      acc = ewise_add<S>(acc, layers_[k]);
    }
    return ewise_add<S>(acc, buffer_matrix());
  }

  /// Value at (r, c) across all layers, if any update touched it. Folds
  /// oldest ⊕ newest like snapshot().
  std::optional<T> get(Index r, Index c) const {
    std::optional<T> acc;
    auto fold = [&acc](const std::optional<T>& v) {
      if (!v) return;
      acc = acc ? S::add(*acc, *v) : *v;
    };
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
      fold(it->get(r, c));
    }
    fold(buffer_matrix().get(r, c));
    return acc;
  }

  /// Force all pending updates into the layer hierarchy.
  void compact() {
    if (!buffer_.empty()) flush_buffer();
    // Fold everything into a single top layer, oldest first.
    if (layers_.size() > 1) {
      Matrix<T> acc = layers_.back();
      for (std::size_t i = layers_.size() - 1; i-- > 0;) {
        acc = ewise_add<S>(acc, layers_[i]);
      }
      layers_.assign(1, std::move(acc));
    }
  }

 private:
  Matrix<T> buffer_matrix() const {
    std::vector<Triple<T>> copy(buffer_);
    return Matrix<T>::template from_triples<S>(nrows_, ncols_,
                                               std::move(copy));
  }

  void flush_buffer() {
    Matrix<T> level = buffer_matrix();
    buffer_.clear();
    // Cascade: merge into level k while the occupant is at capacity for
    // its depth (geometric growth keeps total merge work O(n log n)).
    std::size_t level_cap = capacity_;
    for (std::size_t k = 0;; ++k) {
      if (k == layers_.size()) {
        layers_.push_back(std::move(level));
        return;
      }
      if (static_cast<std::size_t>(layers_[k].nnz()) < level_cap) {
        // The occupant arrived before `level`: older on the left.
        layers_[k] = ewise_add<S>(layers_[k], level);
        return;
      }
      level = ewise_add<S>(
          std::exchange(layers_[k], Matrix<T>(nrows_, ncols_)), level);
      level_cap *= static_cast<std::size_t>(fanout_);
    }
  }

  Index nrows_;
  Index ncols_;
  std::size_t capacity_;
  int fanout_;
  std::vector<Triple<T>> buffer_;
  std::vector<Matrix<T>> layers_;  ///< layers_[k] holds ~capacity·fanoutᵏ
};

}  // namespace hyperspace::sparse
