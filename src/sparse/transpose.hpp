#pragma once
// Transpose: A(k2, k1) = Aᵀ(k1, k2) (Table II).

#include <utility>
#include <vector>

#include "sparse/matrix.hpp"

namespace hyperspace::sparse {

template <typename T>
Matrix<T> transpose(const Matrix<T>& A) {
  auto triples = A.to_triples();
  for (auto& t : triples) std::swap(t.row, t.col);
  std::sort(triples.begin(), triples.end(),
            [](const Triple<T>& x, const Triple<T>& y) {
              return x.row != y.row ? x.row < y.row : x.col < y.col;
            });
  return Matrix<T>::from_canonical_triples(A.ncols(), A.nrows(), triples,
                                           A.implicit_zero());
}

}  // namespace hyperspace::sparse
