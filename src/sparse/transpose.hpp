#pragma once
// Transpose: A(k2, k1) = Aᵀ(k1, k2) (Table II).
//
// Implemented as a parallel counting sort on the unified runtime. Phase 1
// counts entries per output row (= input column) for each fixed chunk of
// input rows; phase 2 turns the counts into exact write cursors per
// (chunk, column); phase 3 has every chunk write its entries straight into
// their final canonical positions. Each output position is a pure function
// of the entry's (col, row) rank, so the result is bit-identical for any
// thread count. Hypersparse-wide inputs (huge ncols) fall back to the
// sort-based path, which never allocates O(ncols).

#include <algorithm>
#include <utility>
#include <vector>

#include "sparse/matrix.hpp"
#include "util/parallel.hpp"

namespace hyperspace::sparse {

/// Column counts above this use the sort-based fallback (the counting
/// cursors would need O(ncols · chunks) memory).
inline constexpr Index kMaxCountingTransposeCols = Index{1} << 22;

namespace detail {

template <typename T>
Matrix<T> transpose_by_sort(const Matrix<T>& A) {
  auto triples = A.to_triples();
  for (auto& t : triples) std::swap(t.row, t.col);
  std::sort(triples.begin(), triples.end(),
            [](const Triple<T>& x, const Triple<T>& y) {
              return x.row != y.row ? x.row < y.row : x.col < y.col;
            });
  return Matrix<T>::from_canonical_triples(A.ncols(), A.nrows(), triples,
                                           A.implicit_zero());
}

}  // namespace detail

template <typename T>
Matrix<T> transpose(const Matrix<T>& A) {
  // Sort-based path when counting cursors would dwarf the data: wide
  // hypersparse inputs, or nnz small relative to the column histogram.
  if (A.ncols() > kMaxCountingTransposeCols || A.nnz() < A.ncols()) {
    return detail::transpose_by_sort(A);
  }
  const SparseView<T> v = A.view();
  const std::size_t nnz = static_cast<std::size_t>(v.nnz());
  const std::size_t ncols = static_cast<std::size_t>(A.ncols());

  // Chunk over the non-empty row list. Chunk count scales with threads but
  // output positions are partition-independent, so any chunking yields the
  // same canonical result. Scratch is O(nchunks · ncols) (histograms +
  // cursors), so the chunk count is additionally capped to keep that
  // bounded on many-core machines.
  const std::ptrdiff_t n_rows = static_cast<std::ptrdiff_t>(v.row_ids.size());
  constexpr std::ptrdiff_t kScratchBudget = std::ptrdiff_t{1} << 23;
  const std::ptrdiff_t max_chunks = std::max<std::ptrdiff_t>(
      1, kScratchBudget / std::max<std::ptrdiff_t>(
                              1, static_cast<std::ptrdiff_t>(ncols)));
  const std::ptrdiff_t want_chunks = std::min<std::ptrdiff_t>(
      max_chunks, static_cast<std::ptrdiff_t>(util::max_threads()) * 4);
  const std::ptrdiff_t grain = std::max<std::ptrdiff_t>(
      64, (n_rows + want_chunks - 1) / want_chunks);
  const std::size_t nchunks =
      static_cast<std::size_t>(util::chunk_count(n_rows, grain));

  // Phase 1: per-chunk column histograms.
  std::vector<std::vector<Index>> counts(
      nchunks, std::vector<Index>());
  util::parallel_chunks(
      0, n_rows, grain,
      [&](std::ptrdiff_t chunk, std::ptrdiff_t lo, std::ptrdiff_t hi) {
        auto& c = counts[static_cast<std::size_t>(chunk)];
        c.assign(ncols, 0);
        for (std::ptrdiff_t ri = lo; ri < hi; ++ri) {
          for (const Index col : v.row_cols(static_cast<std::size_t>(ri))) {
            ++c[static_cast<std::size_t>(col)];
          }
        }
      });

  // Phase 2 (serial): exclusive write cursors per (column, chunk) — the
  // canonical position of each entry.
  std::vector<std::size_t> cursor(nchunks * ncols, 0);
  std::size_t offset = 0;
  for (std::size_t col = 0; col < ncols; ++col) {
    for (std::size_t chunk = 0; chunk < nchunks; ++chunk) {
      cursor[chunk * ncols + col] = offset;
      offset += static_cast<std::size_t>(counts[chunk][col]);
    }
  }

  // Phase 3: scatter into final positions, rows in order within a chunk.
  std::vector<Triple<T>> out(nnz);
  util::parallel_chunks(
      0, n_rows, grain,
      [&](std::ptrdiff_t chunk, std::ptrdiff_t lo, std::ptrdiff_t hi) {
        auto* cur = &cursor[static_cast<std::size_t>(chunk) * ncols];
        for (std::ptrdiff_t ri = lo; ri < hi; ++ri) {
          const Index row = v.row_ids[static_cast<std::size_t>(ri)];
          const auto cols = v.row_cols(static_cast<std::size_t>(ri));
          const auto vals = v.row_vals(static_cast<std::size_t>(ri));
          for (std::size_t j = 0; j < cols.size(); ++j) {
            out[cur[static_cast<std::size_t>(cols[j])]++] =
                {cols[j], row, vals[j]};
          }
        }
      });

  return Matrix<T>::from_canonical_triples(A.ncols(), A.nrows(), out,
                                           A.implicit_zero());
}

}  // namespace hyperspace::sparse
