#pragma once
// Shared scalar types for the sparse engine.

#include <cstdint>
#include <string_view>

namespace hyperspace::sparse {

/// Row/column index. Signed 64-bit so hypersparse dimensions (e.g. 2^60 —
/// "data growing without bounds", Section II-B) are representable even
/// though only O(nnz) of the space is ever touched.
using Index = std::int64_t;

/// One stored entry (row, col, value) — the unit of construction and
/// extraction (Table II: A = A(k1, k2, v) and (k1, k2, v) = A).
template <typename T>
struct Triple {
  Index row = 0;
  Index col = 0;
  T val{};

  friend bool operator==(const Triple&, const Triple&) = default;
};

/// Storage formats, mirroring SuiteSparse:GraphBLAS's sparse / hypersparse /
/// bitmap / full set (paper, Conclusions) plus COO as the build format.
enum class Format : unsigned char {
  kCoo,         ///< unsorted triples; the streaming-ingest format
  kCsr,         ///< compressed sparse row ("sparse")
  kDcsr,        ///< doubly-compressed sparse row ("hypersparse")
  kBitmap,      ///< presence bitmap + value array
  kDense,       ///< every entry present ("full")
};

constexpr std::string_view format_name(Format f) {
  switch (f) {
    case Format::kCoo: return "COO";
    case Format::kCsr: return "CSR";
    case Format::kDcsr: return "DCSR";
    case Format::kBitmap: return "bitmap";
    case Format::kDense: return "dense";
  }
  return "?";
}

}  // namespace hyperspace::sparse
