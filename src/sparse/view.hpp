#pragma once
// SparseView — the uniform read-only shape every compute kernel consumes.
//
// A view lists only the *non-empty* rows (row_ids) with CSR-style offsets
// into shared col/val arrays. CSR exposes all rows (row_ids = 0..nrows-1,
// cached); DCSR exposes its non-empty row list directly. This lets one
// templated kernel serve both the sparse and hypersparse regimes without
// ever allocating O(nrows) state for hypersparse operands.

#include <span>

#include "sparse/types.hpp"

namespace hyperspace::sparse {

template <typename T>
struct SparseView {
  Index nrows = 0;
  Index ncols = 0;
  std::span<const Index> row_ids;  ///< sorted non-empty row ids, size nr
  std::span<const Index> row_ptr;  ///< size nr + 1, offsets into cols/vals
  std::span<const Index> cols;     ///< column indices, sorted within a row
  std::span<const T> vals;

  Index nnz() const { return row_ptr.empty() ? 0 : row_ptr.back(); }
  Index n_nonempty_rows() const { return static_cast<Index>(row_ids.size()); }

  std::span<const Index> row_cols(std::size_t r) const {
    return cols.subspan(static_cast<std::size_t>(row_ptr[r]),
                        static_cast<std::size_t>(row_ptr[r + 1] - row_ptr[r]));
  }
  std::span<const T> row_vals(std::size_t r) const {
    return vals.subspan(static_cast<std::size_t>(row_ptr[r]),
                        static_cast<std::size_t>(row_ptr[r + 1] - row_ptr[r]));
  }
};

}  // namespace hyperspace::sparse
