#pragma once
// Synthetic workload generators.
//
// The paper motivates its mathematics with streaming internet-scale data
// (network flows, social graphs). We stand in for those proprietary streams
// with the generator family Kepner's own hypersparse-GraphBLAS experiments
// use: Kronecker / R-MAT power-law edge streams, plus Erdős–Rényi and Zipf
// draws for controlled-density sweeps. See DESIGN.md "Substitutions".

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace hyperspace::util {

/// A directed edge with a weight, the unit of every streaming workload here.
struct Edge {
  std::int64_t src = 0;
  std::int64_t dst = 0;
  double weight = 1.0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// R-MAT (recursive-matrix / stochastic Kronecker) edge generator.
///
/// Produces the skewed, power-law degree distributions typical of the
/// "digital hyperspace" data the paper describes. Default probabilities are
/// the Graph500 values (a,b,c) = (0.57, 0.19, 0.19).
struct RmatParams {
  int scale = 10;           ///< number of vertices is 2^scale
  double edge_factor = 8;   ///< edges = edge_factor * 2^scale
  double a = 0.57, b = 0.19, c = 0.19;
  std::uint64_t seed = 1;
};

inline std::vector<Edge> rmat_edges(const RmatParams& p) {
  Xoshiro256 rng(p.seed);
  const std::int64_t n = std::int64_t{1} << p.scale;
  const auto m = static_cast<std::size_t>(p.edge_factor * static_cast<double>(n));
  std::vector<Edge> edges;
  edges.reserve(m);
  for (std::size_t e = 0; e < m; ++e) {
    std::int64_t row = 0, col = 0;
    for (int level = 0; level < p.scale; ++level) {
      const double r = rng.uniform();
      row <<= 1;
      col <<= 1;
      if (r < p.a) {
        // upper-left quadrant: no bits set
      } else if (r < p.a + p.b) {
        col |= 1;
      } else if (r < p.a + p.b + p.c) {
        row |= 1;
      } else {
        row |= 1;
        col |= 1;
      }
    }
    edges.push_back({row, col, 1.0 + rng.uniform()});
  }
  return edges;
}

/// Erdős–Rényi G(n, m): exactly m uniform edges (with replacement).
inline std::vector<Edge> erdos_renyi_edges(std::int64_t n, std::size_t m,
                                           std::uint64_t seed = 1) {
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  edges.reserve(m);
  for (std::size_t e = 0; e < m; ++e) {
    edges.push_back({static_cast<std::int64_t>(rng.bounded(static_cast<std::uint64_t>(n))),
                     static_cast<std::int64_t>(rng.bounded(static_cast<std::uint64_t>(n))),
                     1.0 + rng.uniform()});
  }
  return edges;
}

/// Hypersparse workload: m edges drawn from an enormous key space
/// (dimension n_huge >> m), so nnz << nrows. This is the Fig 4 right panel.
inline std::vector<Edge> hypersparse_edges(std::int64_t n_huge, std::size_t m,
                                           std::uint64_t seed = 1) {
  return erdos_renyi_edges(n_huge, m, seed);
}

/// Zipf-distributed integer in [0, n): rank r with probability ~ 1/(r+1)^s.
/// Uses the rejection-inversion method of Hörmann & Derflinger.
class ZipfDistribution {
 public:
  ZipfDistribution(std::int64_t n, double s = 1.0) : n_(n), s_(s) {
    h_x1_ = h(1.5) - 1.0;
    h_n_ = h(static_cast<double>(n_) + 0.5);
  }

  std::int64_t operator()(Xoshiro256& rng) const {
    while (true) {
      const double u = h_n_ + rng.uniform() * (h_x1_ - h_n_);
      const double x = h_inv(u);
      auto k = static_cast<std::int64_t>(x + 0.5);
      k = std::clamp<std::int64_t>(k, 1, n_);
      if (u >= h(static_cast<double>(k) + 0.5) - std::exp(-s_ * std::log(static_cast<double>(k)))) {
        return k - 1;  // zero-based rank
      }
    }
  }

 private:
  double h(double x) const {
    if (s_ == 1.0) return std::log(x);
    return (std::exp((1.0 - s_) * std::log(x)) - 1.0) / (1.0 - s_);
  }
  double h_inv(double u) const {
    if (s_ == 1.0) return std::exp(u);
    return std::exp(std::log(1.0 + u * (1.0 - s_)) / (1.0 - s_));
  }

  std::int64_t n_;
  double s_;
  double h_x1_ = 0;
  double h_n_ = 0;
};

/// Deduplicate an edge list, summing weights of duplicates (plus semiring).
inline std::vector<Edge> dedupe_sum(std::vector<Edge> edges) {
  std::sort(edges.begin(), edges.end(), [](const Edge& x, const Edge& y) {
    return x.src != y.src ? x.src < y.src : x.dst < y.dst;
  });
  std::vector<Edge> out;
  out.reserve(edges.size());
  for (const Edge& e : edges) {
    if (!out.empty() && out.back().src == e.src && out.back().dst == e.dst) {
      out.back().weight += e.weight;
    } else {
      out.push_back(e);
    }
  }
  return out;
}

/// Synthetic dotted-quad IPv4 string for database workloads (Fig 6).
inline std::string synthetic_ip(Xoshiro256& rng, std::int64_t universe) {
  const auto v = static_cast<std::uint32_t>(rng.bounded(static_cast<std::uint64_t>(universe)));
  return std::to_string((v >> 24) & 0xFF) + "." + std::to_string((v >> 16) & 0xFF) +
         "." + std::to_string((v >> 8) & 0xFF) + "." + std::to_string(v & 0xFF);
}

}  // namespace hyperspace::util
