#pragma once
// Process-wide metrics registry: named counters, gauges, and log-bucketed
// latency histograms with p50/p95/p99 extraction, built for serving-stack
// hot paths.
//
// Design rules, in order of importance:
//
//  1. **Hot paths pay one uncontended increment.** Counters and histograms
//     are striped across cache-line-padded shards indexed by a thread
//     ordinal; readers merge shards on demand. There is no per-record lock
//     anywhere, and no contended cache line as long as threads outnumber
//     shards only modestly.
//  2. **Invariant and timing-dependent stats never mix.** Every entry is
//     registered under a `Stability` class: `kInvariant` values (flops,
//     queries, kept/skipped, probe selections) are identical for any
//     thread count and may be asserted exactly in tests; `kTiming` values
//     (latencies, queue depths, adaptive limits) are wall-clock artifacts
//     and may only be bounded. Registering the same name under a different
//     class (or kind) throws — the segregation is enforced, not advisory.
//     Histograms are always `kTiming`. Export surfaces render the two
//     classes in separate sections so downstream tooling cannot confuse a
//     measurement with a fact.
//  3. **Telemetry observes, it never steers.** Nothing in this header
//     reads a metric to make a decision, so results are bit-identical
//     with telemetry on, off, or compiled out. (The one sanctioned
//     consumer is the admission controller, which re-slices batches —
//     batching never changes answers, per the serve-layer contract.)
//  4. **Off means off.** Compile with `HYPERSPACE_NO_TELEMETRY` and every
//     record path folds to nothing; at runtime `set_enabled(false)`
//     reduces a record to one relaxed load of a read-mostly flag.
//
// Histogram buckets are HdrHistogram-style: values below 2^kSubBits are
// exact (bucket width 1); above that, each power-of-two octave is split
// into 2^kSubBits sub-buckets, bounding relative error by 2^-kSubBits
// (6.25%). `percentile(q)` implements the nearest-rank definition and
// returns the lower bound of the bucket holding the rank-th sample —
// `bucket_floor(bucket_index(v))` for the exact sample a sorted reference
// would pick, which is what the tests assert, exactly.

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cctype>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <string>

namespace hyperspace::util::metrics {

#if defined(HYPERSPACE_NO_TELEMETRY)
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

namespace detail {
inline std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{true};
  return flag;
}
}  // namespace detail

/// Is telemetry recording live right now? One relaxed load of a
/// read-mostly flag; constant `false` when compiled out.
inline bool enabled() noexcept {
  if constexpr (kCompiledIn) {
    return detail::enabled_flag().load(std::memory_order_relaxed);
  } else {
    return false;
  }
}

/// Runtime kill switch. A no-op when telemetry is compiled out.
inline void set_enabled(bool on) noexcept {
  if constexpr (kCompiledIn) {
    detail::enabled_flag().store(on, std::memory_order_relaxed);
  } else {
    (void)on;
  }
}

/// Thread-count invariance class of a stat. See rule 2 above.
enum class Stability {
  kInvariant,  ///< exact for any thread count (flops, queries, selections)
  kTiming,     ///< wall-clock dependent (latency, adaptive limits)
};

inline constexpr std::size_t kCounterShards = 16;  // power of two

namespace detail {
/// Small dense thread ordinal (0, 1, 2, ...) assigned on first use; the
/// shard stripe for this thread is `ordinal % shards`.
inline std::size_t thread_ordinal() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}
inline std::size_t shard_index() noexcept {
  return thread_ordinal() & (kCounterShards - 1);
}
}  // namespace detail

/// Monotone counter, striped across cache-line-padded per-thread shards
/// merged on read. `add` is one relaxed fetch_add on this thread's stripe.
class Counter {
 public:
  void add(std::uint64_t n) noexcept {
    if (!enabled()) return;
    slots_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }

  /// Merge-on-read: sum of all shards.
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : slots_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() noexcept {
    for (auto& s : slots_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Slot, kCounterShards> slots_{};
};

/// Last-write-wins instantaneous value (adaptive limits, queue depths).
class Gauge {
 public:
  void set(double v) noexcept {
    if (!enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

// ---- log-bucketed histogram geometry (shared with the admission
// controller, which keeps a plain copyable bucket array of its own) ----

inline constexpr unsigned kSubBits = 4;
inline constexpr std::uint64_t kSubBuckets = std::uint64_t{1} << kSubBits;
inline constexpr std::size_t kNumBuckets =
    static_cast<std::size_t>((64 - kSubBits) * kSubBuckets + kSubBuckets);

/// Bucket holding value `v`. Values < 2^kSubBits map 1:1; larger values
/// land in sub-bucket (top kSubBits bits below the leading one) of their
/// octave. Monotone in `v`, so bucket order is value order.
constexpr std::size_t bucket_index(std::uint64_t v) noexcept {
  if (v < kSubBuckets) return static_cast<std::size_t>(v);
  const unsigned width = static_cast<unsigned>(std::bit_width(v));
  const unsigned octave = width - kSubBits;                    // >= 1
  const std::uint64_t sub = (v >> (width - 1 - kSubBits)) - kSubBuckets;
  return static_cast<std::size_t>(octave * kSubBuckets + sub);
}

/// Smallest value mapping to bucket `i` — the inverse of bucket_index on
/// bucket lower bounds: bucket_index(bucket_floor(i)) == i.
constexpr std::uint64_t bucket_floor(std::size_t i) noexcept {
  if (i < kSubBuckets) return static_cast<std::uint64_t>(i);
  const std::uint64_t octave = i >> kSubBits;
  const std::uint64_t sub = i & (kSubBuckets - 1);
  return (kSubBuckets + sub) << (octave - 1);
}

/// Nearest-rank index for quantile `q` over `count` samples: the
/// 1-indexed rank ceil(q * count), clamped to [1, count]. Exposed so the
/// tests' sorted-sample reference uses the identical definition.
inline std::uint64_t nearest_rank(double q, std::uint64_t count) noexcept {
  if (count == 0) return 0;
  const auto r = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  return std::clamp<std::uint64_t>(r, 1, count);
}

/// Log-bucketed latency histogram, striped like Counter. `record` is two
/// relaxed increments (bucket + count) plus sum/max upkeep on this
/// thread's stripe; percentile extraction merges shards on read.
class Histogram {
 public:
  /// A merged point-in-time view. Percentiles come from here so one merge
  /// serves p50/p95/p99 consistently.
  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    std::array<std::uint64_t, kNumBuckets> buckets{};

    /// Nearest-rank percentile: lower bound of the bucket holding the
    /// rank-th smallest sample. Equals bucket_floor(bucket_index(v)) of
    /// the sample a sorted reference would select; exact for values
    /// < 2^kSubBits, within 2^-kSubBits relative below the sample
    /// otherwise. 0 on an empty histogram.
    std::uint64_t percentile(double q) const noexcept {
      const std::uint64_t rank = nearest_rank(q, count);
      if (rank == 0) return 0;
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i < kNumBuckets; ++i) {
        cum += buckets[i];
        if (cum >= rank) return bucket_floor(i);
      }
      return bucket_floor(kNumBuckets - 1);  // unreachable when consistent
    }
    double mean() const noexcept {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
  };

  void record(std::uint64_t v) noexcept {
    if (!enabled()) return;
    auto& s = shards_[detail::shard_index() & (kHistShards - 1)];
    s.buckets[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t m = s.max.load(std::memory_order_relaxed);
    while (v > m && !s.max.compare_exchange_weak(m, v,
                                                 std::memory_order_relaxed)) {
    }
  }

  Snapshot snapshot() const noexcept {
    Snapshot out;
    for (const auto& s : shards_) {
      out.count += s.count.load(std::memory_order_relaxed);
      out.sum += s.sum.load(std::memory_order_relaxed);
      out.max = std::max(out.max, s.max.load(std::memory_order_relaxed));
      for (std::size_t i = 0; i < kNumBuckets; ++i) {
        out.buckets[i] += s.buckets[i].load(std::memory_order_relaxed);
      }
    }
    return out;
  }

  void reset() noexcept {
    for (auto& s : shards_) {
      s.count.store(0, std::memory_order_relaxed);
      s.sum.store(0, std::memory_order_relaxed);
      s.max.store(0, std::memory_order_relaxed);
      for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    }
  }

 private:
  static constexpr std::size_t kHistShards = 4;  // ~31 KiB per histogram
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
    std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets{};
  };
  std::array<Shard, kHistShards> shards_{};
};

/// The process-wide registry. Entries are created on first use and live
/// for the process lifetime, so `static auto& c = Registry::instance()
/// .counter(...)` at a call site is one lookup ever and the reference
/// never dangles. `reset_values()` zeroes values without invalidating
/// handles (tests and benches isolate runs with it).
class Registry {
 public:
  static Registry& instance() {
    static Registry r;
    return r;
  }

  /// Find-or-register. Throws std::logic_error if `name` already exists
  /// with a different kind or stability class — rule 2 is enforced here.
  Counter& counter(const std::string& name, Stability st) {
    return *get(name, Kind::kCounter, st).c;
  }
  Gauge& gauge(const std::string& name, Stability st) {
    return *get(name, Kind::kGauge, st).g;
  }
  /// Histograms measure wall clock; they are kTiming by definition.
  Histogram& histogram(const std::string& name) {
    return *get(name, Kind::kHistogram, Stability::kTiming).h;
  }

  /// Read-side lookups for tests and export code. Missing names read as
  /// zero rather than registering.
  std::uint64_t counter_value(const std::string& name) const {
    std::lock_guard lock(mu_);
    const auto it = entries_.find(name);
    return it != entries_.end() && it->second.c ? it->second.c->value() : 0;
  }
  double gauge_value(const std::string& name) const {
    std::lock_guard lock(mu_);
    const auto it = entries_.find(name);
    return it != entries_.end() && it->second.g ? it->second.g->value() : 0.0;
  }
  Histogram::Snapshot histogram_snapshot(const std::string& name) const {
    std::lock_guard lock(mu_);
    const auto it = entries_.find(name);
    return it != entries_.end() && it->second.h ? it->second.h->snapshot()
                                                : Histogram::Snapshot{};
  }

  /// Zero every value; handles stay valid. Not atomic across entries.
  void reset_values() {
    std::lock_guard lock(mu_);
    for (auto& [name, e] : entries_) {
      if (e.c) e.c->reset();
      if (e.g) e.g->reset();
      if (e.h) e.h->reset();
    }
  }

  /// Prometheus-style exposition text. Invariant entries first, then
  /// timing entries; histograms render as summaries with p50/p95/p99
  /// quantile lines plus _sum/_count/_max.
  std::string prometheus_text() const {
    std::lock_guard lock(mu_);
    std::ostringstream os;
    os << "# stability: invariant (exact for any thread count)\n";
    render_text(os, Stability::kInvariant);
    os << "# stability: timing (wall-clock dependent)\n";
    render_text(os, Stability::kTiming);
    return os.str();
  }

  /// The same content as a JSON object:
  /// {"invariant": {name: number}, "timing": {"counters": {...},
  ///  "gauges": {...}, "histograms": {name: {count,sum,max,mean,
  ///  p50,p95,p99}}}}
  std::string json() const {
    std::lock_guard lock(mu_);
    std::ostringstream os;
    os << "{\"invariant\":{";
    bool first = true;
    for (const auto& [name, e] : entries_) {
      if (e.stability != Stability::kInvariant) continue;
      os << (first ? "" : ",") << '"' << name << "\":";
      if (e.c) os << e.c->value();
      if (e.g) os << e.g->value();
      first = false;
    }
    os << "},\"timing\":{\"counters\":{";
    first = true;
    for (const auto& [name, e] : entries_) {
      if (e.stability != Stability::kTiming || !e.c) continue;
      os << (first ? "" : ",") << '"' << name << "\":" << e.c->value();
      first = false;
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto& [name, e] : entries_) {
      if (e.stability != Stability::kTiming || !e.g) continue;
      os << (first ? "" : ",") << '"' << name << "\":" << e.g->value();
      first = false;
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto& [name, e] : entries_) {
      if (!e.h) continue;
      const auto s = e.h->snapshot();
      os << (first ? "" : ",") << '"' << name << "\":{"
         << "\"count\":" << s.count << ",\"sum\":" << s.sum
         << ",\"max\":" << s.max << ",\"mean\":" << s.mean()
         << ",\"p50\":" << s.percentile(0.50)
         << ",\"p95\":" << s.percentile(0.95)
         << ",\"p99\":" << s.percentile(0.99) << '}';
      first = false;
    }
    os << "}}}";
    return os.str();
  }

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind{};
    Stability stability{};
    std::unique_ptr<Counter> c;
    std::unique_ptr<Gauge> g;
    std::unique_ptr<Histogram> h;
  };

  Entry& get(const std::string& name, Kind kind, Stability st) {
    std::lock_guard lock(mu_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      Entry e;
      e.kind = kind;
      e.stability = st;
      switch (kind) {
        case Kind::kCounter: e.c = std::make_unique<Counter>(); break;
        case Kind::kGauge: e.g = std::make_unique<Gauge>(); break;
        case Kind::kHistogram: e.h = std::make_unique<Histogram>(); break;
      }
      it = entries_.emplace(name, std::move(e)).first;
    } else if (it->second.kind != kind || it->second.stability != st) {
      throw std::logic_error(
          "metrics: '" + name +
          "' re-registered with a different kind or stability class");
    }
    return it->second;
  }

  static std::string sanitized(const std::string& name) {
    std::string out = "hyperspace_";
    for (const char ch : name) {
      out += (std::isalnum(static_cast<unsigned char>(ch)) != 0) ? ch : '_';
    }
    return out;
  }

  void render_text(std::ostringstream& os, Stability st) const {
    for (const auto& [name, e] : entries_) {
      if (e.stability != st) continue;
      const std::string p = sanitized(name);
      if (e.c) {
        os << "# TYPE " << p << " counter\n" << p << ' ' << e.c->value()
           << '\n';
      } else if (e.g) {
        os << "# TYPE " << p << " gauge\n" << p << ' ' << e.g->value()
           << '\n';
      } else if (e.h) {
        const auto s = e.h->snapshot();
        os << "# TYPE " << p << " summary\n"
           << p << "{quantile=\"0.5\"} " << s.percentile(0.50) << '\n'
           << p << "{quantile=\"0.95\"} " << s.percentile(0.95) << '\n'
           << p << "{quantile=\"0.99\"} " << s.percentile(0.99) << '\n'
           << p << "_sum " << s.sum << '\n'
           << p << "_count " << s.count << '\n'
           << p << "_max " << s.max << '\n';
      }
    }
  }

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  ///< ordered → stable export
};

/// Monotonic nanoseconds for span/latency timestamps. One clock for the
/// whole telemetry layer so traces and histograms agree.
inline std::uint64_t clock_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// RAII latency sample: records elapsed ns into `h` on destruction.
/// Disarmed (no clock read at all) when telemetry is off at construction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h) noexcept
      : h_(&h), armed_(enabled()), t0_(armed_ ? clock_ns() : 0) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (armed_) h_->record(clock_ns() - t0_);
  }

 private:
  Histogram* h_;
  bool armed_;
  std::uint64_t t0_;
};

}  // namespace hyperspace::util::metrics
