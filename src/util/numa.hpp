#pragma once
// NUMA topology probe + worker→node pinning for the parallel runtime.
//
// On multi-socket machines the accumulator scratch a worker allocates
// should live on the worker's own node, and the worker should stay there.
// Both fall out of two primitives:
//
//   * topology()            — node count and each node's CPU list, parsed
//     once from /sys/devices/system/node/node*/cpulist (Linux). Anywhere
//     that sysfs layout is absent (non-Linux, containers with masked /sys,
//     single-socket boxes) the probe reports ONE node and everything below
//     becomes a no-op.
//   * pin_worker(worker_id) — pin the calling thread to the CPUs of node
//     `worker_id % nodes` via pthread_setaffinity_np. The thread-pool
//     backend calls this once per worker at spawn; combined with the pool
//     constructing per-worker scratch ON the worker (first-touch), scratch
//     pages land node-local without any explicit NUMA allocator.
//
// Pinning is only attempted when the probe sees >1 node and the
// HYPERSPACE_NUMA env var is not "0"; it never affects results, only
// memory placement — the determinism contract is untouched.

#include <cctype>
#include <cstdlib>
#include <string>
#include <vector>

#if defined(__linux__)
#include <fstream>
#include <pthread.h>
#include <sched.h>
#endif

namespace hyperspace::util::numa {

struct Topology {
  /// One entry per NUMA node: the node's online CPU ids.
  std::vector<std::vector<int>> node_cpus;
  int nodes() const { return static_cast<int>(node_cpus.size()); }
};

namespace detail {

/// Parse a sysfs cpulist ("0-3,8,10-11") into CPU ids.
inline std::vector<int> parse_cpulist(const std::string& s) {
  std::vector<int> cpus;
  std::size_t i = 0;
  while (i < s.size()) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) {
      ++i;
      continue;
    }
    std::size_t end = i;
    const int lo = std::stoi(s.substr(i), &end);
    i += end;
    int hi = lo;
    if (i < s.size() && s[i] == '-') {
      const int h = std::stoi(s.substr(i + 1), &end);
      i += end + 1;
      hi = h;
    }
    for (int c = lo; c <= hi && hi - lo < 4096; ++c) cpus.push_back(c);
  }
  return cpus;
}

inline Topology probe() {
  Topology t;
#if defined(__linux__)
  for (int node = 0; node < 256; ++node) {
    std::ifstream f("/sys/devices/system/node/node" + std::to_string(node) +
                    "/cpulist");
    if (!f.is_open()) break;
    std::string line;
    std::getline(f, line);
    auto cpus = parse_cpulist(line);
    if (!cpus.empty()) t.node_cpus.push_back(std::move(cpus));
  }
#endif
  if (t.node_cpus.empty()) t.node_cpus.push_back({});  // single-node fallback
  return t;
}

}  // namespace detail

/// The machine topology, probed once per process.
inline const Topology& topology() {
  static const Topology t = detail::probe();
  return t;
}

/// True when pinning would do anything: >1 node and not disabled by
/// HYPERSPACE_NUMA=0.
inline bool pinning_enabled() {
  static const bool on = [] {
    if (const char* env = std::getenv("HYPERSPACE_NUMA")) {
      if (env[0] == '0' && env[1] == '\0') return false;
    }
    return topology().nodes() > 1;
  }();
  return on;
}

/// Node a given pool worker maps to (round-robin across nodes, so any
/// worker-count prefix spreads evenly over sockets).
inline int node_of_worker(int worker_id) {
  const int n = topology().nodes();
  return n > 0 ? worker_id % n : 0;
}

/// Pin the calling thread to its worker's node. Returns true on success;
/// a portable no-op (false) when pinning is disabled or unsupported.
inline bool pin_worker([[maybe_unused]] int worker_id) {
  if (!pinning_enabled()) return false;
#if defined(__linux__)
  const auto& cpus = topology().node_cpus[static_cast<std::size_t>(
      node_of_worker(worker_id))];
  if (cpus.empty()) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  for (const int c : cpus) {
    if (c >= 0 && c < CPU_SETSIZE) CPU_SET(c, &set);
  }
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  return false;
#endif
}

}  // namespace hyperspace::util::numa
