#pragma once
// Unified parallel runtime — the one scheduling substrate every sparse
// kernel runs on.
//
// The paper's performance story ("as fast as the hardware allows") rests on
// the ⊕.⊗ kernels saturating cores. Rather than sprinkle OpenMP pragmas per
// kernel, everything funnels through this header:
//
//   * parallel_for(begin, end, grain, body[, cost])  — body(i) per index
//   * parallel_for_scratch(b, e, g, make, body[, cost]) — body(i, scratch&),
//     scratch constructed once per worker thread (dense accumulators, hash
//     maps, stamp arrays)
//   * parallel_chunks(b, e, grain, body[, chunk_cost]) — body(chunk, lo, hi),
//     chunk boundaries fixed by `grain` alone, independent of thread count
//   * parallel_reduce(b, e, grain, identity, map, combine[, cost])
//     — deterministic chunked fold: partials are produced per fixed chunk
//     and combined in chunk-index order, so the result is bit-identical for
//     ANY thread count (1 included).
//
// Backend: an OpenMP parallel region when compiled with -fopenmp, otherwise
// a lazily-started persistent std::thread pool. Both honour
// HYPERSPACE_NUM_THREADS (env) and set_num_threads() (programmatic, wins
// over the env; used by tests to sweep thread counts in one process).
//
// Scheduling: the index space is cut into TILES up front — cost-aware when
// the caller passes a per-index cost hint (a hub row whose estimated flops
// dwarf the target tile cost becomes its own tile), even-sized otherwise —
// and the tiles are seeded CONTIGUOUSLY into per-worker deques (tile-affine:
// worker w starts on the w-th contiguous block, so on a pinned multi-socket
// pool neighbouring rows stay on one node). A worker pops tiles from the
// bottom of its own deque; when it drains, it steals the TOP HALF of a
// victim's remaining range in one CAS (Chase–Lev style: owner at the
// bottom, thieves split from the top). The pre-tiling static-cursor handout
// is kept behind Scheduler::kStatic / HYPERSPACE_SCHED=static for A/B
// benchmarking.
//
// Determinism contract: WHICH worker runs a tile, and in what steal order,
// is nondeterministic — kernels must write disjoint output slices per
// index/chunk (the mxm row-slice pattern), and every tile folds its indices
// in index order into its own slice, stitched by tile index. Steal order
// changes timing, never bytes: under that discipline every kernel in this
// repo is bit-identical for any thread count, which is what lets
// single-threaded CI vouch for the multi-threaded production binary.
//
// NUMA: pool workers are pinned round-robin across nodes when the topology
// probe (util/numa.hpp) sees more than one; per-worker scratch is
// constructed ON the worker, so first-touch places accumulator pages
// node-local. Portable no-op everywhere else.
//
// Telemetry (util/metrics.hpp, all kTiming — tile shapes depend on the
// thread count, so none of these are thread-count invariant):
//   parallel.tiles    — tiles created across all regions
//   parallel.steals   — successful steal-half operations
//   parallel.idle_ns  — worker time spent finding nothing to pop or steal
//   parallel.tile_ns  — per-tile execution time histogram
// Counters observe, never steer: scheduling reads none of them.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <functional>
#include <mutex>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "util/metrics.hpp"
#include "util/numa.hpp"

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace hyperspace::util {

namespace detail {

inline int& thread_override() {
  static int v = 0;
  return v;
}

}  // namespace detail

/// Programmatic thread-count override (0 restores env/hardware default).
inline void set_num_threads(int n) { detail::thread_override() = n < 0 ? 0 : n; }

/// Worker count: set_num_threads() > HYPERSPACE_NUM_THREADS > hardware.
inline int max_threads() {
  if (const int o = detail::thread_override(); o > 0) return o;
  if (const char* env = std::getenv("HYPERSPACE_NUM_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
#if defined(_OPENMP)
  return omp_get_max_threads();
#else
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
#endif
}

/// Index-loop scheduler. kWorkSteal (default): cost-aware tiles in
/// per-worker deques with steal-half rebalancing. kStatic: the pre-tiling
/// shared-cursor handout over even grain-sized chunks, kept for A/B
/// benchmarking. Both produce bit-identical results — the switch trades
/// time only.
enum class Scheduler { kWorkSteal = 0, kStatic = 1 };

namespace detail {

inline std::atomic<int>& scheduler_override() {
  static std::atomic<int> v{-1};  // -1: fall back to env/default
  return v;
}

inline Scheduler env_scheduler() {
  static const Scheduler s = [] {
    if (const char* env = std::getenv("HYPERSPACE_SCHED")) {
      if (std::string_view(env) == "static") return Scheduler::kStatic;
    }
    return Scheduler::kWorkSteal;
  }();
  return s;
}

}  // namespace detail

/// Programmatic scheduler override (benches A/B static vs work-steal).
inline void set_scheduler(Scheduler s) {
  detail::scheduler_override().store(static_cast<int>(s),
                                     std::memory_order_relaxed);
}
/// Restore the HYPERSPACE_SCHED / default scheduler choice.
inline void reset_scheduler() {
  detail::scheduler_override().store(-1, std::memory_order_relaxed);
}
/// The active scheduler: set_scheduler() > HYPERSPACE_SCHED=static > steal.
inline Scheduler scheduler() {
  const int o = detail::scheduler_override().load(std::memory_order_relaxed);
  if (o >= 0) return static_cast<Scheduler>(o);
  return detail::env_scheduler();
}

namespace detail {

/// Persistent worker pool for the non-OpenMP backend. Workers are started on
/// first use and parked between regions; run() executes job(tid) for
/// tid ∈ [0, nthreads), with the calling thread serving tid 0.
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  /// `job` must not throw (callers wrap bodies in try/catch).
  /// Reentrant calls (a worker body spawning another region) run the inner
  /// job inline on the calling thread — mirroring OpenMP's default
  /// serialized nested regions — since the pool has one job slot. For the
  /// same reason, a second OS thread arriving while the pool is busy (the
  /// serving executor's background flush thread racing the submitting
  /// thread) runs its job inline instead of queueing: single-threaded
  /// execution is always bit-identical, so contention costs parallelism,
  /// never correctness.
  void run(int nthreads, const std::function<void(int)>& job) {
    if (nthreads <= 1 || inside_region()) {
      job(0);
      return;
    }
    std::unique_lock region(region_mu_, std::try_to_lock);
    if (!region.owns_lock()) {
      job(0);
      return;
    }
    const NestedGuard nested;
    std::unique_lock lock(mu_);
    while (static_cast<int>(threads_.size()) < nthreads - 1) {
      const int id = static_cast<int>(threads_.size()) + 1;
      threads_.emplace_back([this, id] { worker_loop(id); });
    }
    job_ = &job;
    job_nthreads_ = nthreads;
    pending_ = nthreads - 1;
    ++epoch_;
    lock.unlock();
    start_cv_.notify_all();
    job(0);
    lock.lock();
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    job_ = nullptr;
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  static bool& inside_region() {
    thread_local bool v = false;
    return v;
  }
  struct NestedGuard {
    NestedGuard() { inside_region() = true; }
    ~NestedGuard() { inside_region() = false; }
  };

  ThreadPool() = default;
  ~ThreadPool() {
    {
      std::lock_guard lock(mu_);
      stop_ = true;
    }
    start_cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  void worker_loop(int id) {
    // Pin to this worker's NUMA node before any scratch is constructed, so
    // first-touch lands every allocation node-local. No-op off multi-node.
    numa::pin_worker(id);
    std::uint64_t seen = 0;
    std::unique_lock lock(mu_);
    while (true) {
      start_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      if (id < job_nthreads_) {
        const auto* job = job_;
        lock.unlock();
        {
          const NestedGuard nested;
          (*job)(id);
        }
        lock.lock();
        if (--pending_ == 0) done_cv_.notify_one();
      }
    }
  }

  std::mutex region_mu_;  ///< one region at a time; losers run inline
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;
  const std::function<void(int)>* job_ = nullptr;
  int job_nthreads_ = 0;
  int pending_ = 0;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
};

}  // namespace detail

/// Low-level region: run body(tid) on `nthreads` workers (caller included).
/// body must not throw; the higher-level loops below capture exceptions.
template <typename Body>
void parallel_region(int nthreads, Body&& body) {
#if defined(_OPENMP)
#pragma omp parallel num_threads(nthreads)
  { body(omp_get_thread_num()); }
#else
  const std::function<void(int)> fn = std::ref(body);
  detail::ThreadPool::instance().run(nthreads, fn);
#endif
}

namespace detail {

/// The unit cost sentinel: every index weighs the same, so tiling can be
/// computed arithmetically without touching the indices.
struct UnitCost {
  constexpr std::uint64_t operator()(std::ptrdiff_t) const { return 1; }
};

template <typename Cost>
inline constexpr bool kIsUnitCost =
    std::is_same_v<std::remove_cvref_t<Cost>, UnitCost>;

/// One contiguous index range; the atom of the steal scheduler. Bodies run
/// a tile's indices in index order into disjoint per-index slots, so the
/// stitched result is independent of which worker ran which tile.
struct Tile {
  std::ptrdiff_t lo;
  std::ptrdiff_t hi;
};

/// Tiles per worker the tiler aims for: enough slack that steal-half can
/// rebalance a bad draw, few enough that handout cost stays negligible.
inline constexpr std::ptrdiff_t kTilesPerWorker = 8;
/// Hard cap on the tile count (indices are packed into 32-bit deque words).
inline constexpr std::ptrdiff_t kMaxTiles = std::ptrdiff_t{1} << 22;

/// Cut [begin, end) into tiles. Unit cost: even tiles of
/// max(grain, n/(kTilesPerWorker·nthreads)) indices. With a cost hint: walk
/// the per-index costs and close a tile when it reaches
/// total/(kTilesPerWorker·nthreads) — an index whose own cost reaches the
/// target is closed as a SINGLETON tile (the hub row), so no worker ever
/// drags cheap neighbours behind the expensive one. Tiling is a pure
/// function of (range, grain, cost, nthreads): it never reads timing.
template <typename Cost>
std::vector<Tile> build_tiles(std::ptrdiff_t begin, std::ptrdiff_t end,
                              std::ptrdiff_t grain, int nthreads,
                              const Cost& cost) {
  const std::ptrdiff_t n = end - begin;
  const std::ptrdiff_t g = grain > 0 ? grain : 1;
  const std::ptrdiff_t want =
      std::max<std::ptrdiff_t>(1, kTilesPerWorker * nthreads);
  std::vector<Tile> tiles;
  if constexpr (kIsUnitCost<Cost>) {
    std::ptrdiff_t len = std::max(g, (n + want - 1) / want);
    len = std::max(len, (n + kMaxTiles - 1) / kMaxTiles);
    tiles.reserve(static_cast<std::size_t>((n + len - 1) / len));
    for (std::ptrdiff_t lo = begin; lo < end; lo += len) {
      tiles.push_back({lo, std::min(end, lo + len)});
    }
  } else {
    std::uint64_t total = 0;
    for (std::ptrdiff_t i = begin; i < end; ++i) total += cost(i);
    const std::uint64_t target =
        std::max<std::uint64_t>(1, total / static_cast<std::uint64_t>(want));
    // Cost-aware tiles ignore `grain` as a floor — a hub row must be able
    // to stand alone — but the kMaxTiles cap still bounds the count.
    const std::ptrdiff_t min_len = (n + kMaxTiles - 1) / kMaxTiles;
    tiles.reserve(static_cast<std::size_t>(
        std::min<std::ptrdiff_t>(2 * want, kMaxTiles)));
    std::uint64_t acc = 0;
    std::ptrdiff_t lo = begin;
    for (std::ptrdiff_t i = begin; i < end; ++i) {
      const std::uint64_t ci = cost(i);
      if (i > lo && ci >= target && acc > 0 && i - lo >= min_len) {
        tiles.push_back({lo, i});  // close before the hub: it tiles alone
        lo = i;
        acc = 0;
      }
      acc += ci;
      if (acc >= target && i + 1 - lo >= min_len) {
        tiles.push_back({lo, i + 1});
        lo = i + 1;
        acc = 0;
      }
    }
    if (lo < end) tiles.push_back({lo, end});
  }
  return tiles;
}

/// Per-worker deque over a CONTIGUOUS range of tile indices, packed into
/// one 64-bit word (lo:32 | hi:32) so both ends move under a single CAS.
/// The owner pops one tile from the bottom (lo); a thief claims the top
/// half [hi-k, hi) in one CAS and installs it as its OWN range. ABA cannot
/// occur: a tile index never re-enters any deque after being claimed —
/// the deques always partition the still-unclaimed tiles.
struct alignas(64) StealDeque {
  std::atomic<std::uint64_t> range{0};

  static constexpr std::uint64_t pack(std::uint32_t lo, std::uint32_t hi) {
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
  }
  static constexpr std::uint32_t lo_of(std::uint64_t r) {
    return static_cast<std::uint32_t>(r >> 32);
  }
  static constexpr std::uint32_t hi_of(std::uint64_t r) {
    return static_cast<std::uint32_t>(r);
  }

  void seed(std::uint32_t lo, std::uint32_t hi) {
    range.store(pack(lo, hi), std::memory_order_relaxed);
  }

  /// Owner: pop the bottom tile. False when empty.
  bool pop(std::uint32_t& t) {
    std::uint64_t r = range.load(std::memory_order_acquire);
    while (true) {
      const std::uint32_t lo = lo_of(r), hi = hi_of(r);
      if (lo >= hi) return false;
      if (range.compare_exchange_weak(r, pack(lo + 1, hi),
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        t = lo;
        return true;
      }
    }
  }

  /// Thief: steal the top half (⌈size/2⌉ tiles). False when empty.
  bool steal_half(std::uint32_t& s_lo, std::uint32_t& s_hi) {
    std::uint64_t r = range.load(std::memory_order_acquire);
    while (true) {
      const std::uint32_t lo = lo_of(r), hi = hi_of(r);
      if (lo >= hi) return false;
      const std::uint32_t k = (hi - lo + 1) / 2;
      if (range.compare_exchange_weak(r, pack(lo, hi - k),
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        s_lo = hi - k;
        s_hi = hi;
        return true;
      }
    }
  }
};

/// The work-stealing region driver: seed tile-affine blocks, run
/// pop → steal-half → idle-wait until the global remaining counter drains.
/// Robust to the backend granting fewer workers than asked (nested/inline
/// pool regions, OpenMP under load): unstarted workers' seeds are simply
/// stolen. First exception wins; later tiles are claimed but skipped.
template <typename MakeScratch, typename Body>
void run_worksteal(const std::vector<Tile>& tiles, int nthreads,
                   MakeScratch&& per_worker, Body&& body) {
  const auto ntiles = static_cast<std::uint32_t>(tiles.size());
  std::vector<StealDeque> deques(static_cast<std::size_t>(nthreads));
  for (int w = 0; w < nthreads; ++w) {
    const auto lo = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(ntiles) * w / nthreads);
    const auto hi = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(ntiles) * (w + 1) / nthreads);
    deques[static_cast<std::size_t>(w)].seed(lo, hi);
  }
  std::atomic<std::ptrdiff_t> remaining{static_cast<std::ptrdiff_t>(ntiles)};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;

  const bool telemetry = metrics::enabled();
  metrics::Histogram* tile_hist = nullptr;
  if (telemetry) {
    static auto& h = metrics::Registry::instance().histogram("parallel.tile_ns");
    tile_hist = &h;
  }
  std::atomic<std::uint64_t> steals{0}, idle_ns{0};

  parallel_region(nthreads, [&](int tid) {
    auto scratch = per_worker();
    std::uint64_t my_steals = 0, my_idle = 0;
    auto& mine = deques[static_cast<std::size_t>(tid)];
    const auto exec = [&](std::uint32_t t) {
      if (!failed.load(std::memory_order_relaxed)) {
        const std::uint64_t t0 = telemetry ? metrics::clock_ns() : 0;
        try {
          const Tile tile = tiles[t];
          for (std::ptrdiff_t i = tile.lo; i < tile.hi; ++i) body(i, scratch);
        } catch (...) {
          std::lock_guard lock(error_mu);
          if (!error) error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
        if (telemetry) tile_hist->record(metrics::clock_ns() - t0);
      }
      remaining.fetch_sub(1, std::memory_order_acq_rel);
    };
    while (true) {
      std::uint32_t t;
      if (mine.pop(t)) {
        exec(t);
        continue;
      }
      if (remaining.load(std::memory_order_acquire) <= 0) break;
      const std::uint64_t i0 = telemetry ? metrics::clock_ns() : 0;
      bool stole = false;
      for (int k = 1; k < nthreads && !stole; ++k) {
        auto& victim =
            deques[static_cast<std::size_t>((tid + k) % nthreads)];
        std::uint32_t s_lo, s_hi;
        if (victim.steal_half(s_lo, s_hi)) {
          // Keep the first stolen tile to run now; publish the rest as our
          // own range so further thieves can split it again.
          mine.seed(s_lo + 1, s_hi);
          ++my_steals;
          if (telemetry) my_idle += metrics::clock_ns() - i0;
          exec(s_lo);
          stole = true;
        }
      }
      if (!stole) {
        std::this_thread::yield();
        if (telemetry) my_idle += metrics::clock_ns() - i0;
      }
    }
    if (telemetry) {
      steals.fetch_add(my_steals, std::memory_order_relaxed);
      idle_ns.fetch_add(my_idle, std::memory_order_relaxed);
    }
  });

  if (telemetry) {
    namespace hm = metrics;
    static auto& c_tiles =
        hm::Registry::instance().counter("parallel.tiles", hm::Stability::kTiming);
    static auto& c_steals =
        hm::Registry::instance().counter("parallel.steals", hm::Stability::kTiming);
    static auto& c_idle =
        hm::Registry::instance().counter("parallel.idle_ns", hm::Stability::kTiming);
    c_tiles.add(ntiles);
    c_steals.add(steals.load(std::memory_order_relaxed));
    c_idle.add(idle_ns.load(std::memory_order_relaxed));
  }
  if (error) std::rethrow_exception(error);
}

/// The static-chunk region driver (Scheduler::kStatic): even grain-sized
/// chunks handed out through one shared atomic cursor. The pre-steal
/// baseline, kept so benches can price the scheduler against it.
template <typename MakeScratch, typename Body>
void run_static(std::ptrdiff_t begin, std::ptrdiff_t end, std::ptrdiff_t g,
                std::ptrdiff_t nchunks, int nthreads,
                MakeScratch&& per_worker, Body&& body) {
  std::atomic<std::ptrdiff_t> cursor{0};
  std::exception_ptr error;
  std::mutex error_mu;
  parallel_region(nthreads, [&](int) {
    auto scratch = per_worker();
    try {
      while (true) {
        const std::ptrdiff_t c = cursor.fetch_add(1, std::memory_order_relaxed);
        if (c >= nchunks) break;
        const std::ptrdiff_t lo = begin + c * g;
        const std::ptrdiff_t hi = std::min(end, lo + g);
        for (std::ptrdiff_t i = lo; i < hi; ++i) body(i, scratch);
      }
    } catch (...) {
      std::lock_guard lock(error_mu);
      if (!error) error = std::current_exception();
    }
  });
  if (error) std::rethrow_exception(error);
}

/// Shared loop driver: tile (cost-aware when hinted), then run under the
/// active scheduler. `per_worker` makes each worker's scratch,
/// `body(i, scratch)` runs per index. First exception wins and is rethrown
/// on the calling thread.
template <typename MakeScratch, typename Body, typename Cost = UnitCost>
void for_each_chunked(std::ptrdiff_t begin, std::ptrdiff_t end,
                      std::ptrdiff_t grain, MakeScratch&& per_worker,
                      Body&& body, Cost&& cost = {}) {
  const std::ptrdiff_t n = end - begin;
  if (n <= 0) return;
  const std::ptrdiff_t g = grain > 0 ? grain : 1;
  const std::ptrdiff_t nchunks = (n + g - 1) / g;
  const int nt = max_threads();
  const int nthreads = static_cast<int>(std::min<std::ptrdiff_t>(nt, nchunks));

  if (nthreads <= 1) {
    auto scratch = per_worker();
    for (std::ptrdiff_t i = begin; i < end; ++i) body(i, scratch);
    return;
  }
  if (scheduler() == Scheduler::kStatic) {
    run_static(begin, end, g, nchunks, nthreads, per_worker, body);
    return;
  }
  const auto tiles = build_tiles(begin, end, g, nt, cost);
  const int tile_threads = static_cast<int>(std::min<std::ptrdiff_t>(
      nt, static_cast<std::ptrdiff_t>(tiles.size())));
  if (tile_threads <= 1) {
    auto scratch = per_worker();
    for (std::ptrdiff_t i = begin; i < end; ++i) body(i, scratch);
    return;
  }
  run_worksteal(tiles, tile_threads, per_worker, body);
}

struct NoScratch {};

}  // namespace detail

/// Parallel loop: body(i) for i in [begin, end), `grain` indices per task.
template <typename Body>
void parallel_for(std::ptrdiff_t begin, std::ptrdiff_t end,
                  std::ptrdiff_t grain, Body&& body) {
  detail::for_each_chunked(
      begin, end, grain, [] { return detail::NoScratch{}; },
      [&body](std::ptrdiff_t i, detail::NoScratch&) { body(i); });
}

/// Parallel loop with a per-index cost hint: `cost(i)` estimates the
/// relative work of index i (for sparse kernels, the row's stored extent —
/// free from the CSR row pointers). The tiler splits by accumulated cost
/// instead of index count, so a hub row becomes its own tile. Hints steer
/// tiling only — results are bit-identical with or without them.
template <typename Body, typename Cost>
void parallel_for(std::ptrdiff_t begin, std::ptrdiff_t end,
                  std::ptrdiff_t grain, Body&& body, Cost&& cost) {
  detail::for_each_chunked(
      begin, end, grain, [] { return detail::NoScratch{}; },
      [&body](std::ptrdiff_t i, detail::NoScratch&) { body(i); },
      std::forward<Cost>(cost));
}

/// Parallel loop with per-thread scratch: `make()` is invoked once per
/// worker, body(i, scratch&) per index. The canonical shape for kernels
/// with dense accumulators / stamp arrays / hash maps. Scratch is
/// constructed ON the worker thread, so with NUMA pinning (util/numa.hpp)
/// first-touch places it node-local.
template <typename MakeScratch, typename Body>
void parallel_for_scratch(std::ptrdiff_t begin, std::ptrdiff_t end,
                          std::ptrdiff_t grain, MakeScratch&& make,
                          Body&& body) {
  detail::for_each_chunked(begin, end, grain,
                           std::forward<MakeScratch>(make),
                           std::forward<Body>(body));
}

/// parallel_for_scratch with a per-index cost hint (see parallel_for).
template <typename MakeScratch, typename Body, typename Cost>
void parallel_for_scratch(std::ptrdiff_t begin, std::ptrdiff_t end,
                          std::ptrdiff_t grain, MakeScratch&& make,
                          Body&& body, Cost&& cost) {
  detail::for_each_chunked(begin, end, grain,
                           std::forward<MakeScratch>(make),
                           std::forward<Body>(body), std::forward<Cost>(cost));
}

/// Number of fixed-size chunks `parallel_chunks` will produce.
inline std::ptrdiff_t chunk_count(std::ptrdiff_t n, std::ptrdiff_t grain) {
  const std::ptrdiff_t g = grain > 0 ? grain : 1;
  return n <= 0 ? 0 : (n + g - 1) / g;
}

/// Chunk-level loop: body(chunk_index, lo, hi) per fixed chunk. Chunk
/// boundaries depend only on `grain`, never on the thread count or the
/// scheduler — the building block for stitch-style kernels (filters,
/// counting transpose) and order-fixed reductions. The steal scheduler
/// moves whole chunks between workers; it never re-cuts them.
template <typename Body>
void parallel_chunks(std::ptrdiff_t begin, std::ptrdiff_t end,
                     std::ptrdiff_t grain, Body&& body) {
  const std::ptrdiff_t g = grain > 0 ? grain : 1;
  const std::ptrdiff_t nchunks = chunk_count(end - begin, g);
  parallel_for(0, nchunks, 1, [&](std::ptrdiff_t c) {
    const std::ptrdiff_t lo = begin + c * g;
    const std::ptrdiff_t hi = std::min(end, lo + g);
    body(c, lo, hi);
  });
}

/// parallel_chunks with a chunk cost hint: `chunk_cost(lo, hi)` estimates
/// the work of one fixed chunk (e.g. the stored entries its rows span).
/// Boundaries stay a function of `grain` alone.
template <typename Body, typename ChunkCost>
void parallel_chunks(std::ptrdiff_t begin, std::ptrdiff_t end,
                     std::ptrdiff_t grain, Body&& body, ChunkCost&& chunk_cost) {
  const std::ptrdiff_t g = grain > 0 ? grain : 1;
  const std::ptrdiff_t nchunks = chunk_count(end - begin, g);
  parallel_for(
      0, nchunks,
      1,
      [&](std::ptrdiff_t c) {
        const std::ptrdiff_t lo = begin + c * g;
        const std::ptrdiff_t hi = std::min(end, lo + g);
        body(c, lo, hi);
      },
      [&, g](std::ptrdiff_t c) -> std::uint64_t {
        const std::ptrdiff_t lo = begin + c * g;
        const std::ptrdiff_t hi = std::min(end, lo + g);
        return chunk_cost(lo, hi);
      });
}

/// Parallel stable sort: fixed-grain chunks are stable-sorted concurrently,
/// then merged pairwise in rounds (std::inplace_merge on fixed boundaries).
/// Stability is preserved end-to-end — equal elements keep input order — and
/// a stable sort's output is a pure function of (input, comparator), so the
/// result is bit-identical for every thread count.
template <typename RandomIt, typename Compare>
void parallel_stable_sort(RandomIt first, RandomIt last, Compare comp) {
  const std::ptrdiff_t n = last - first;
  constexpr std::ptrdiff_t kSortGrain = std::ptrdiff_t{1} << 13;
  if (n <= kSortGrain * 2 || max_threads() <= 1) {
    std::stable_sort(first, last, comp);
    return;
  }
  parallel_chunks(0, n, kSortGrain,
                  [&](std::ptrdiff_t, std::ptrdiff_t lo, std::ptrdiff_t hi) {
                    std::stable_sort(first + lo, first + hi, comp);
                  });
  for (std::ptrdiff_t width = kSortGrain; width < n; width *= 2) {
    const std::ptrdiff_t npairs = chunk_count(n, 2 * width);
    parallel_for(0, npairs, 1, [&](std::ptrdiff_t p) {
      const std::ptrdiff_t lo = p * 2 * width;
      const std::ptrdiff_t mid = std::min(lo + width, n);
      const std::ptrdiff_t hi = std::min(lo + 2 * width, n);
      if (mid < hi) std::inplace_merge(first + lo, first + mid, first + hi, comp);
    });
  }
}

/// Deterministic chunked reduction: each fixed chunk folds
/// map(i) into `identity` serially (index order), then the per-chunk
/// partials are combined in chunk-index order. Because chunking is a
/// function of `grain` only, the result is bit-identical for every thread
/// count — including non-associative-in-float ⊕. The optional per-index
/// cost hint only weights how chunks are tiled across workers; boundaries,
/// combine order, and the result bits are unchanged by it.
template <typename T, typename Map, typename Combine, typename Cost = detail::UnitCost>
T parallel_reduce(std::ptrdiff_t begin, std::ptrdiff_t end,
                  std::ptrdiff_t grain, T identity, Map&& map,
                  Combine&& combine, Cost&& cost = {}) {
  const std::ptrdiff_t nchunks = chunk_count(end - begin, grain);
  if (nchunks == 0) return identity;
  std::vector<T> partials(static_cast<std::size_t>(nchunks), identity);
  const auto fold = [&](std::ptrdiff_t c, std::ptrdiff_t lo, std::ptrdiff_t hi) {
    T acc = identity;
    for (std::ptrdiff_t i = lo; i < hi; ++i) {
      acc = combine(std::move(acc), map(i));
    }
    partials[static_cast<std::size_t>(c)] = std::move(acc);
  };
  if constexpr (detail::kIsUnitCost<Cost>) {
    parallel_chunks(begin, end, grain, fold);
  } else {
    parallel_chunks(begin, end, grain, fold,
                    [&](std::ptrdiff_t lo, std::ptrdiff_t hi) {
                      std::uint64_t c = 0;
                      for (std::ptrdiff_t i = lo; i < hi; ++i) c += cost(i);
                      return c;
                    });
  }
  T out = std::move(partials[0]);
  for (std::ptrdiff_t c = 1; c < nchunks; ++c) {
    out = combine(std::move(out), std::move(partials[static_cast<std::size_t>(c)]));
  }
  return out;
}

}  // namespace hyperspace::util
