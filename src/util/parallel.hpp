#pragma once
// Unified parallel runtime — the one scheduling substrate every sparse
// kernel runs on.
//
// The paper's performance story ("as fast as the hardware allows") rests on
// the ⊕.⊗ kernels saturating cores. Rather than sprinkle OpenMP pragmas per
// kernel, everything funnels through this header:
//
//   * parallel_for(begin, end, grain, body)          — body(i) per index
//   * parallel_for_scratch(b, e, g, make, body)      — body(i, scratch&),
//     scratch constructed once per worker thread (dense accumulators, hash
//     maps, stamp arrays)
//   * parallel_chunks(b, e, grain, body)             — body(chunk, lo, hi),
//     chunk boundaries fixed by `grain` alone, independent of thread count
//   * parallel_reduce(b, e, grain, identity, map, combine)
//     — deterministic chunked fold: partials are produced per fixed chunk
//     and combined in chunk-index order, so the result is bit-identical for
//     ANY thread count (1 included).
//
// Backend: an OpenMP parallel region when compiled with -fopenmp, otherwise
// a lazily-started persistent std::thread pool. Both honour
// HYPERSPACE_NUM_THREADS (env) and set_num_threads() (programmatic, wins
// over the env; used by tests to sweep thread counts in one process).
//
// Determinism contract: work is handed out as chunks via a shared atomic
// cursor, so WHICH thread runs a chunk is nondeterministic — kernels must
// write disjoint output slices per index/chunk (the mxm row-slice pattern).
// Under that discipline every kernel in this repo is bit-identical for any
// thread count, which is what lets single-threaded CI vouch for the
// multi-threaded production binary.

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace hyperspace::util {

namespace detail {

inline int& thread_override() {
  static int v = 0;
  return v;
}

}  // namespace detail

/// Programmatic thread-count override (0 restores env/hardware default).
inline void set_num_threads(int n) { detail::thread_override() = n < 0 ? 0 : n; }

/// Worker count: set_num_threads() > HYPERSPACE_NUM_THREADS > hardware.
inline int max_threads() {
  if (const int o = detail::thread_override(); o > 0) return o;
  if (const char* env = std::getenv("HYPERSPACE_NUM_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
#if defined(_OPENMP)
  return omp_get_max_threads();
#else
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
#endif
}

namespace detail {

/// Persistent worker pool for the non-OpenMP backend. Workers are started on
/// first use and parked between regions; run() executes job(tid) for
/// tid ∈ [0, nthreads), with the calling thread serving tid 0.
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  /// `job` must not throw (callers wrap bodies in try/catch).
  /// Reentrant calls (a worker body spawning another region) run the inner
  /// job inline on the calling thread — mirroring OpenMP's default
  /// serialized nested regions — since the pool has one job slot. For the
  /// same reason, a second OS thread arriving while the pool is busy (the
  /// serving executor's background flush thread racing the submitting
  /// thread) runs its job inline instead of queueing: single-threaded
  /// execution is always bit-identical, so contention costs parallelism,
  /// never correctness.
  void run(int nthreads, const std::function<void(int)>& job) {
    if (nthreads <= 1 || inside_region()) {
      job(0);
      return;
    }
    std::unique_lock region(region_mu_, std::try_to_lock);
    if (!region.owns_lock()) {
      job(0);
      return;
    }
    const NestedGuard nested;
    std::unique_lock lock(mu_);
    while (static_cast<int>(threads_.size()) < nthreads - 1) {
      const int id = static_cast<int>(threads_.size()) + 1;
      threads_.emplace_back([this, id] { worker_loop(id); });
    }
    job_ = &job;
    job_nthreads_ = nthreads;
    pending_ = nthreads - 1;
    ++epoch_;
    lock.unlock();
    start_cv_.notify_all();
    job(0);
    lock.lock();
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    job_ = nullptr;
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  static bool& inside_region() {
    thread_local bool v = false;
    return v;
  }
  struct NestedGuard {
    NestedGuard() { inside_region() = true; }
    ~NestedGuard() { inside_region() = false; }
  };

  ThreadPool() = default;
  ~ThreadPool() {
    {
      std::lock_guard lock(mu_);
      stop_ = true;
    }
    start_cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  void worker_loop(int id) {
    std::uint64_t seen = 0;
    std::unique_lock lock(mu_);
    while (true) {
      start_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      if (id < job_nthreads_) {
        const auto* job = job_;
        lock.unlock();
        {
          const NestedGuard nested;
          (*job)(id);
        }
        lock.lock();
        if (--pending_ == 0) done_cv_.notify_one();
      }
    }
  }

  std::mutex region_mu_;  ///< one region at a time; losers run inline
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;
  const std::function<void(int)>* job_ = nullptr;
  int job_nthreads_ = 0;
  int pending_ = 0;
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
};

}  // namespace detail

/// Low-level region: run body(tid) on `nthreads` workers (caller included).
/// body must not throw; the higher-level loops below capture exceptions.
template <typename Body>
void parallel_region(int nthreads, Body&& body) {
#if defined(_OPENMP)
#pragma omp parallel num_threads(nthreads)
  { body(omp_get_thread_num()); }
#else
  const std::function<void(int)> fn = std::ref(body);
  detail::ThreadPool::instance().run(nthreads, fn);
#endif
}

namespace detail {

/// Shared chunked-loop driver: hands out [begin, end) in `grain`-sized
/// chunks through an atomic cursor; `per_worker` makes each worker's
/// scratch, `body(i, scratch)` runs per index. First exception wins and is
/// rethrown on the calling thread.
template <typename MakeScratch, typename Body>
void for_each_chunked(std::ptrdiff_t begin, std::ptrdiff_t end,
                      std::ptrdiff_t grain, MakeScratch&& per_worker,
                      Body&& body) {
  const std::ptrdiff_t n = end - begin;
  if (n <= 0) return;
  const std::ptrdiff_t g = grain > 0 ? grain : 1;
  const std::ptrdiff_t nchunks = (n + g - 1) / g;
  const int nthreads =
      static_cast<int>(std::min<std::ptrdiff_t>(max_threads(), nchunks));

  if (nthreads <= 1) {
    auto scratch = per_worker();
    for (std::ptrdiff_t i = begin; i < end; ++i) body(i, scratch);
    return;
  }

  std::atomic<std::ptrdiff_t> cursor{0};
  std::exception_ptr error;
  std::mutex error_mu;
  parallel_region(nthreads, [&](int) {
    auto scratch = per_worker();
    try {
      while (true) {
        const std::ptrdiff_t c =
            cursor.fetch_add(1, std::memory_order_relaxed);
        if (c >= nchunks) break;
        const std::ptrdiff_t lo = begin + c * g;
        const std::ptrdiff_t hi = std::min(end, lo + g);
        for (std::ptrdiff_t i = lo; i < hi; ++i) body(i, scratch);
      }
    } catch (...) {
      std::lock_guard lock(error_mu);
      if (!error) error = std::current_exception();
    }
  });
  if (error) std::rethrow_exception(error);
}

struct NoScratch {};

}  // namespace detail

/// Parallel loop: body(i) for i in [begin, end), `grain` indices per task.
template <typename Body>
void parallel_for(std::ptrdiff_t begin, std::ptrdiff_t end,
                  std::ptrdiff_t grain, Body&& body) {
  detail::for_each_chunked(
      begin, end, grain, [] { return detail::NoScratch{}; },
      [&body](std::ptrdiff_t i, detail::NoScratch&) { body(i); });
}

/// Parallel loop with per-thread scratch: `make()` is invoked once per
/// worker, body(i, scratch&) per index. The canonical shape for kernels
/// with dense accumulators / stamp arrays / hash maps.
template <typename MakeScratch, typename Body>
void parallel_for_scratch(std::ptrdiff_t begin, std::ptrdiff_t end,
                          std::ptrdiff_t grain, MakeScratch&& make,
                          Body&& body) {
  detail::for_each_chunked(begin, end, grain,
                           std::forward<MakeScratch>(make),
                           std::forward<Body>(body));
}

/// Number of fixed-size chunks `parallel_chunks` will produce.
inline std::ptrdiff_t chunk_count(std::ptrdiff_t n, std::ptrdiff_t grain) {
  const std::ptrdiff_t g = grain > 0 ? grain : 1;
  return n <= 0 ? 0 : (n + g - 1) / g;
}

/// Chunk-level loop: body(chunk_index, lo, hi) per fixed chunk. Chunk
/// boundaries depend only on `grain`, never on the thread count — the
/// building block for stitch-style kernels (filters, counting transpose)
/// and order-fixed reductions.
template <typename Body>
void parallel_chunks(std::ptrdiff_t begin, std::ptrdiff_t end,
                     std::ptrdiff_t grain, Body&& body) {
  const std::ptrdiff_t g = grain > 0 ? grain : 1;
  const std::ptrdiff_t nchunks = chunk_count(end - begin, g);
  parallel_for(0, nchunks, 1, [&](std::ptrdiff_t c) {
    const std::ptrdiff_t lo = begin + c * g;
    const std::ptrdiff_t hi = std::min(end, lo + g);
    body(c, lo, hi);
  });
}

/// Parallel stable sort: fixed-grain chunks are stable-sorted concurrently,
/// then merged pairwise in rounds (std::inplace_merge on fixed boundaries).
/// Stability is preserved end-to-end — equal elements keep input order — and
/// a stable sort's output is a pure function of (input, comparator), so the
/// result is bit-identical for every thread count.
template <typename RandomIt, typename Compare>
void parallel_stable_sort(RandomIt first, RandomIt last, Compare comp) {
  const std::ptrdiff_t n = last - first;
  constexpr std::ptrdiff_t kSortGrain = std::ptrdiff_t{1} << 13;
  if (n <= kSortGrain * 2 || max_threads() <= 1) {
    std::stable_sort(first, last, comp);
    return;
  }
  parallel_chunks(0, n, kSortGrain,
                  [&](std::ptrdiff_t, std::ptrdiff_t lo, std::ptrdiff_t hi) {
                    std::stable_sort(first + lo, first + hi, comp);
                  });
  for (std::ptrdiff_t width = kSortGrain; width < n; width *= 2) {
    const std::ptrdiff_t npairs = chunk_count(n, 2 * width);
    parallel_for(0, npairs, 1, [&](std::ptrdiff_t p) {
      const std::ptrdiff_t lo = p * 2 * width;
      const std::ptrdiff_t mid = std::min(lo + width, n);
      const std::ptrdiff_t hi = std::min(lo + 2 * width, n);
      if (mid < hi) std::inplace_merge(first + lo, first + mid, first + hi, comp);
    });
  }
}

/// Deterministic chunked reduction: each fixed chunk folds
/// map(i) into `identity` serially (index order), then the per-chunk
/// partials are combined in chunk-index order. Because chunking is a
/// function of `grain` only, the result is bit-identical for every thread
/// count — including non-associative-in-float ⊕.
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::ptrdiff_t begin, std::ptrdiff_t end,
                  std::ptrdiff_t grain, T identity, Map&& map,
                  Combine&& combine) {
  const std::ptrdiff_t nchunks = chunk_count(end - begin, grain);
  if (nchunks == 0) return identity;
  std::vector<T> partials(static_cast<std::size_t>(nchunks), identity);
  parallel_chunks(begin, end, grain,
                  [&](std::ptrdiff_t c, std::ptrdiff_t lo, std::ptrdiff_t hi) {
                    T acc = identity;
                    for (std::ptrdiff_t i = lo; i < hi; ++i) {
                      acc = combine(std::move(acc), map(i));
                    }
                    partials[static_cast<std::size_t>(c)] = std::move(acc);
                  });
  T out = std::move(partials[0]);
  for (std::ptrdiff_t c = 1; c < nchunks; ++c) {
    out = combine(std::move(out), std::move(partials[static_cast<std::size_t>(c)]));
  }
  return out;
}

}  // namespace hyperspace::util
