#pragma once
// Deterministic pseudo-random number generation for workload synthesis.
//
// Every generator in this library is seeded explicitly so that test fixtures
// and benchmark figures are reproducible run-to-run and machine-to-machine.
// The core engine is xoshiro256** (Blackman & Vigna), which is small, fast,
// and has no measurable bias for the uses here (index selection, value
// draws, edge sampling).

#include <cstdint>
#include <limits>

namespace hyperspace::util {

/// xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seed via splitmix64 so that nearby seeds give unrelated streams.
  explicit constexpr Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  constexpr std::uint64_t bounded(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace hyperspace::util
