#pragma once
// Fixed-width console table printer used by the benchmark binaries to
// regenerate the paper's tables and figure data as aligned text.

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace hyperspace::util {

/// Accumulates rows of strings and prints them with per-column alignment.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header) {
    rows_.push_back(std::move(header));
  }

  template <typename... Cells>
  void row(const Cells&... cells) {
    std::vector<std::string> r;
    (r.push_back(to_cell(cells)), ...);
    rows_.push_back(std::move(r));
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width;
    for (const auto& r : rows_) {
      if (width.size() < r.size()) width.resize(r.size(), 0);
      for (std::size_t c = 0; c < r.size(); ++c) {
        width[c] = std::max(width[c], r[c].size());
      }
    }
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      os << "  ";
      for (std::size_t c = 0; c < rows_[i].size(); ++c) {
        os << std::left << std::setw(static_cast<int>(width[c]) + 2) << rows_[i][c];
      }
      os << '\n';
      if (i == 0) {
        os << "  ";
        for (std::size_t c = 0; c < width.size(); ++c) {
          os << std::string(width[c], '-') << "  ";
        }
        os << '\n';
      }
    }
  }

 private:
  template <typename T>
  static std::string to_cell(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else if constexpr (std::is_floating_point_v<T>) {
      std::ostringstream ss;
      ss << std::setprecision(4) << v;
      return ss.str();
    } else {
      std::ostringstream ss;
      ss << v;
      return ss.str();
    }
  }

  std::vector<std::vector<std::string>> rows_;
};

/// Section banner used between figure-reproduction blocks in bench output.
inline void banner(const std::string& title, std::ostream& os = std::cout) {
  os << '\n' << std::string(72, '=') << '\n'
     << "  " << title << '\n'
     << std::string(72, '=') << '\n';
}

}  // namespace hyperspace::util
