#pragma once
// Shared helpers for the test suites (not a test binary: CMake only globs
// tests/test_*.cpp).

#include "util/parallel.hpp"

namespace hyperspace::testing {

/// RAII thread-count override so a failing assertion can't leak a setting.
struct ThreadGuard {
  explicit ThreadGuard(int n) { util::set_num_threads(n); }
  ~ThreadGuard() { util::set_num_threads(0); }
};

}  // namespace hyperspace::testing
