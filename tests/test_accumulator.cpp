// Unit tests for the per-row SpGEMM accumulators (accumulator.hpp): the
// flat open-addressing hash table against the std::unordered_map referee,
// the dense scratch, and the sorted-merge fold — plus the mxm-level
// equivalence of all four on hypersparse and adversarial-collision inputs.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "semiring/all.hpp"
#include "sparse/accumulator.hpp"
#include "sparse/io.hpp"
#include "sparse/mxm.hpp"
#include "util/rng.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::sparse;
using S = semiring::PlusTimes<double>;

/// Drive any accumulator over a (col, val) stream and return the extracted
/// sorted row.
template <typename Acc>
std::pair<std::vector<Index>, std::vector<double>> run(
    Acc& acc, const std::vector<std::pair<Index, double>>& stream,
    std::size_t reserve_hint = 0) {
  acc.begin_row();
  if (reserve_hint > 0) acc.reserve(reserve_hint);
  for (const auto& [j, v] : stream) acc.accumulate(j, v);
  std::vector<Index> cols;
  std::vector<double> vals;
  acc.extract_sorted(cols, vals);
  return {cols, vals};
}

std::map<Index, double> reference(
    const std::vector<std::pair<Index, double>>& stream) {
  std::map<Index, double> m;
  for (const auto& [j, v] : stream) m[j] += v;
  return m;
}

template <typename Acc>
void expect_matches_reference(
    Acc& acc, const std::vector<std::pair<Index, double>>& stream) {
  const auto [cols, vals] = run(acc, stream);
  const auto ref = reference(stream);
  ASSERT_EQ(cols.size(), ref.size());
  std::size_t i = 0;
  for (const auto& [j, v] : ref) {
    EXPECT_EQ(cols[i], j);
    EXPECT_DOUBLE_EQ(vals[i], v);
    ++i;
  }
}

TEST(FlatHash, InsertFoldExtract) {
  FlatHashAccumulator<S> acc;
  expect_matches_reference(acc, {{7, 1.0}, {3, 2.0}, {7, 3.0}, {1, 4.0}});
}

TEST(FlatHash, ReusableAcrossRowsWithSparseClear) {
  FlatHashAccumulator<S> acc;
  expect_matches_reference(acc, {{100, 1.0}, {200, 2.0}});
  // Second row must not see residue from the first.
  expect_matches_reference(acc, {{100, 5.0}, {300, 6.0}});
  expect_matches_reference(acc, {});
}

TEST(FlatHash, GrowsThroughManyDistinctKeys) {
  FlatHashAccumulator<S> acc;
  std::vector<std::pair<Index, double>> stream;
  for (Index j = 0; j < 5000; ++j) stream.push_back({j * 3 + 1, 1.0});
  for (Index j = 0; j < 5000; ++j) stream.push_back({j * 3 + 1, 0.5});
  expect_matches_reference(acc, stream);
  EXPECT_GE(acc.capacity(), 2u * 5000u);
}

TEST(FlatHash, AdversarialCollisionKeys) {
  // Keys sharing identical low bits (huge power-of-two strides) — the
  // classic failure mode for masked hashing — and keys differing only in
  // high bits. The multiplicative hash + linear probe must stay correct.
  FlatHashAccumulator<S> acc;
  std::vector<std::pair<Index, double>> stream;
  for (Index i = 0; i < 512; ++i) stream.push_back({i << 40, 1.0});
  for (Index i = 0; i < 512; ++i) stream.push_back({(i << 40) | 1, 2.0});
  for (Index i = 0; i < 512; ++i) stream.push_back({i << 40, 3.0});
  expect_matches_reference(acc, stream);
}

TEST(FlatHash, LargeStrideKeysStayLinearTime) {
  // 2^46-strided keys differ only in bits a capacity-tracking top-bits
  // bucket function reaches (~1 probe per insert). Any fixed-low-bits
  // scheme maps all 2^16 keys into one probe chain — ~2·10^9 probe steps,
  // minutes under sanitizers — so a regression fails CI by timeout.
  FlatHashAccumulator<S> acc;
  std::vector<std::pair<Index, double>> stream;
  for (Index i = 0; i < (Index{1} << 16); ++i) {
    stream.push_back({i << 46, 1.0});
  }
  expect_matches_reference(acc, stream);
}

TEST(FlatHash, ReserveBoundsCapacityForHypersparseRows) {
  // A row with k flops never needs capacity beyond O(k): reserve(k) must
  // pre-size so tiny rows trigger no rehash churn, and the capacity stays
  // bounded by the next power of two above 2k.
  FlatHashAccumulator<S> acc;
  acc.begin_row();
  acc.reserve(5);
  const std::size_t cap = acc.capacity();
  EXPECT_GE(cap, 10u);
  EXPECT_LE(cap, 32u);
  for (Index j = 0; j < 5; ++j) acc.accumulate(j * 1000, 1.0);
  EXPECT_EQ(acc.capacity(), cap);  // no growth mid-row
  EXPECT_EQ(acc.size(), 5u);
}

TEST(SortedMerge, FoldsDuplicatesInEncounterOrder) {
  SortedMergeAccumulator<S> acc;
  expect_matches_reference(acc, {{9, 1.0}, {2, 2.0}, {9, 3.0}, {2, 4.0}});
}

TEST(DenseAccumulator, MatchesReference) {
  DenseAccumulator<S> acc(1000);
  expect_matches_reference(acc, {{999, 1.0}, {0, 2.0}, {999, 3.0}});
  expect_matches_reference(acc, {{5, 1.0}});  // epoch clear works
}

TEST(StdMapBaseline, MatchesReference) {
  StdMapAccumulator<S> acc;
  expect_matches_reference(acc, {{4, 1.0}, {4, 1.0}, {2, 1.0}});
}

TEST(Accumulators, RandomStreamAgreement) {
  // All four accumulators fold with S::add in encounter order, so their
  // extracted rows are bit-identical on any stream.
  util::Xoshiro256 rng(42);
  std::vector<std::pair<Index, double>> stream;
  for (int i = 0; i < 4000; ++i) {
    stream.push_back({static_cast<Index>(rng.bounded(700)),
                      rng.uniform(-1.0, 1.0)});
  }
  FlatHashAccumulator<S> flat;
  StdMapAccumulator<S> std_map;
  SortedMergeAccumulator<S> sorted;
  DenseAccumulator<S> dense(700);
  const auto a = run(flat, stream);
  const auto b = run(std_map, stream);
  const auto c = run(sorted, stream);
  const auto d = run(dense, stream);
  EXPECT_EQ(a, b);  // bitwise: same fold order
  EXPECT_EQ(a, c);
  EXPECT_EQ(a, d);
}

// ------------------------------------------------------ mxm-level equivalence

Matrix<double> hypersparse_matrix(Index dim, std::size_t m, std::uint64_t seed,
                                  Index stride) {
  // Entries on a coarse power-of-two-ish lattice: hypersparse and
  // collision-adversarial at once.
  util::Xoshiro256 rng(seed);
  std::vector<Triple<double>> t;
  for (std::size_t e = 0; e < m; ++e) {
    t.push_back({static_cast<Index>(rng.bounded(256)) * stride,
                 static_cast<Index>(rng.bounded(256)) * stride,
                 rng.uniform(1.0, 2.0)});
  }
  return Matrix<double>::from_triples<S>(dim, dim, std::move(t));
}

TEST(MxmAccumulators, FlatHashEqualsBaselineOnHypersparse) {
  const Index dim = Index{1} << 45;
  const Index stride = (dim / 256);
  const auto a = hypersparse_matrix(dim, 2000, 7, stride);
  const auto b = hypersparse_matrix(dim, 2000, 8, stride);
  ASSERT_EQ(a.format(), Format::kDcsr);
  EXPECT_EQ(mxm_hash<S>(a, b), mxm_hash_baseline<S>(a, b));
  EXPECT_EQ(mxm_hash<S>(a, b), mxm_sorted<S>(a, b));
}

TEST(MxmAccumulators, AllStrategiesAgreeOnOrdinarySparse) {
  const auto a = hypersparse_matrix(4096, 3000, 9, 16);
  const auto b = hypersparse_matrix(4096, 3000, 10, 16);
  const auto g = mxm_gustavson<S>(a, b);
  EXPECT_EQ(g, mxm_hash<S>(a, b));
  EXPECT_EQ(g, mxm_sorted<S>(a, b));
  EXPECT_EQ(g, mxm_hash_baseline<S>(a, b));
}

}  // namespace
