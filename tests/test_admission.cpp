// Tests for adaptive admission (serve/admission.hpp): the controller is a
// pure component, so these tests drive it with INJECTED timings and assert
// deterministic convergence toward the latency target; the executor
// integration asserts the live limits move while answers stay bit-identical
// (admission only re-slices the queue).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>

#include "helpers.hpp"
#include "semiring/all.hpp"
#include "serve/executor.hpp"
#include "serve/router.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace {

using namespace hyperspace;
using namespace std::chrono_literals;
using S = semiring::PlusTimes<double>;
using sparse::Index;
using sparse::Matrix;
using sparse::Triple;

serve::AdmissionController make_ctrl(std::chrono::microseconds target,
                                     std::uint64_t init_flops = 1u << 20,
                                     int init_depth = 64) {
  return serve::AdmissionController({.latency_target = target},
                                    {init_flops, init_depth});
}

TEST(AdmissionController, DisabledControllerNeverMoves) {
  auto c = make_ctrl(0us, 12345, 7);
  EXPECT_FALSE(c.enabled());
  c.observe(1 << 20, 10ms, 8);
  EXPECT_EQ(c.limits().max_batch_flops, 12345u);
  EXPECT_EQ(c.limits().flush_queue_depth, 7);
}

TEST(AdmissionController, ConvergesToTargetOverFlopCost) {
  // Constant injected cost: 10 ns per flop. A 1 ms target admits exactly
  // 100,000 flops once the EWMA settles; convergence is geometric and
  // fully deterministic.
  auto c = make_ctrl(1000us);
  ASSERT_TRUE(c.enabled());
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t flops = 50'000;
    c.observe(flops, std::chrono::nanoseconds(flops * 10), 10);
  }
  EXPECT_NEAR(c.ns_per_flop(), 10.0, 1e-9);
  EXPECT_NEAR(static_cast<double>(c.limits().max_batch_flops), 100'000.0,
              1.0);
  // Queue depth tracks the average per-query flop mass: 5,000 flops/query
  // ⇒ ~20 queries fill the budget.
  EXPECT_NEAR(static_cast<double>(c.limits().flush_queue_depth), 20.0, 1.0);
}

TEST(AdmissionController, SlowerSamplesShrinkTheBudget) {
  auto fast = make_ctrl(500us);
  auto slow = make_ctrl(500us);
  for (int i = 0; i < 32; ++i) {
    fast.observe(10'000, std::chrono::nanoseconds(10'000 * 2), 4);
    slow.observe(10'000, std::chrono::nanoseconds(10'000 * 8), 4);
  }
  EXPECT_GT(fast.limits().max_batch_flops, slow.limits().max_batch_flops);
  // 4× the cost ⇒ ¼ the budget, exactly, at the converged estimates.
  EXPECT_NEAR(static_cast<double>(fast.limits().max_batch_flops),
              4.0 * static_cast<double>(slow.limits().max_batch_flops), 4.0);
}

TEST(AdmissionController, ClampsStopRunawayAdjustment) {
  auto c = make_ctrl(1000000us);  // absurd 1 s target
  c.observe(1 << 20, std::chrono::nanoseconds(1), 1);  // absurdly fast
  EXPECT_LE(c.limits().max_batch_flops, (std::uint64_t{1} << 40));
  auto d = make_ctrl(1us);
  for (int i = 0; i < 8; ++i) {
    d.observe(1 << 20, 100ms, 1);  // absurdly slow
  }
  EXPECT_GE(d.limits().max_batch_flops, std::uint64_t{1} << 10);
  EXPECT_GE(d.limits().flush_queue_depth, 1);
}

TEST(AdmissionController, TinyBatchesAreFixedCostNoiseAndIgnored) {
  auto c = make_ctrl(1000us, 2048, 9);
  c.observe(8, 10ms, 1);  // below min_sample_flops
  EXPECT_EQ(c.ns_per_flop(), 0.0);
  EXPECT_EQ(c.limits().max_batch_flops, 2048u);
  EXPECT_EQ(c.samples(), 0u);  // a starved controller is visible
}

TEST(AdmissionController, PercentileTracksTheSampleDistribution) {
  auto c = make_ctrl(1000us);
  // 19 fast batches at 10 ns/flop, 1 slow at 80 ns/flop: p95 lands on the
  // highest of the fast samples by nearest rank (rank 19 of 20), p100 on
  // the slow one. Expected values go through the same bucket math the
  // histogram stores (1/1024 fixed point, bucket floors).
  for (int i = 0; i < 19; ++i) {
    c.observe(10'000, std::chrono::nanoseconds(100'000), 1);  // 10 ns/flop
  }
  c.observe(10'000, std::chrono::nanoseconds(800'000), 1);  // 80 ns/flop
  EXPECT_EQ(c.samples(), 20u);
  const auto floor_of = [](double ns_per_flop) {
    return static_cast<double>(util::metrics::bucket_floor(
               util::metrics::bucket_index(static_cast<std::uint64_t>(
                   ns_per_flop * 1024.0)))) /
           1024.0;
  };
  EXPECT_EQ(c.ns_per_flop_percentile(0.5), floor_of(10.0));
  EXPECT_EQ(c.p95_ns_per_flop(), floor_of(10.0));
  EXPECT_EQ(c.ns_per_flop_percentile(1.0), floor_of(80.0));
}

TEST(AdmissionController, P95ModeSteersByTheTailNotTheMean) {
  // Same traffic into a mean-steered and a tail-steered controller: 9 in
  // 10 batches run at 10 ns/flop, 1 in 10 at 100 ns/flop. The EWMA settles
  // near the mix; the p95 budget prices every batch at the slow cost, so
  // the tail-aware budget is decisively smaller.
  serve::AdmissionController mean({.latency_target = 1000us, .gain = 0.25},
                                  {1u << 20, 64});
  serve::AdmissionController tail(
      {.latency_target = 1000us, .gain = 0.25, .use_p95 = true},
      {1u << 20, 64});
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 9; ++i) {
      mean.observe(10'000, std::chrono::nanoseconds(100'000), 1);
      tail.observe(10'000, std::chrono::nanoseconds(100'000), 1);
    }
    mean.observe(10'000, std::chrono::nanoseconds(1'000'000), 1);
    tail.observe(10'000, std::chrono::nanoseconds(1'000'000), 1);
  }
  // p95 of {90×10, 10×100} ns/flop is the 100 ns/flop bucket (rank 95).
  EXPECT_GE(tail.p95_ns_per_flop(), 90.0);
  // 1 ms / ~100 ns-per-flop ≈ 10k flops vs the mean-steered budget of
  // roughly 1 ms / ~19 ns-per-flop ≈ 50k: the tail budget is the
  // conservative one.
  EXPECT_LT(tail.limits().max_batch_flops,
            mean.limits().max_batch_flops / 2);
  EXPECT_NEAR(static_cast<double>(tail.limits().max_batch_flops),
              1'000'000.0 / tail.p95_ns_per_flop(), 2.0);
}

TEST(AdmissionController, P95ModeFallsBackToEwmaWhileStarved) {
  serve::AdmissionController c(
      {.latency_target = 1000us, .use_p95 = true}, {1u << 20, 64});
  c.observe(8, 10ms, 1);  // below min_sample_flops: no usable sample yet
  EXPECT_EQ(c.samples(), 0u);
  EXPECT_EQ(c.limits().max_batch_flops, std::uint64_t{1} << 20);
}

// --------------------------------------------------------------------------
// Executor integration: the live limits follow the controller; results are
// untouched (admission is answer-invariant by the serving contract).

/// A base whose every row has exactly 4 entries (admission flops are then
/// 4 · nnz(lhs), exactly).
Matrix<double> uniform_base(Index n) {
  std::vector<Triple<double>> t;
  for (Index r = 0; r < n; ++r) {
    for (Index j = 0; j < 4; ++j) {
      t.push_back({r, (r + j * 7) % n, 1.0 + static_cast<double>(r + j)});
    }
  }
  return Matrix<double>::from_triples<S>(n, n, std::move(t));
}

serve::Query<S> point_query(Index n, int width, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<Triple<double>> t;
  for (int e = 0; e < width; ++e) {
    t.push_back({0, (static_cast<Index>(rng.bounded(
                         static_cast<std::uint64_t>(n) / 8)) *
                         8 +
                     e) %
                        n,
                 rng.uniform(0.5, 1.5)});
  }
  return serve::Query<S>::analytic(
      Matrix<double>::from_unique_triples(1, n, std::move(t)));
}

TEST(ExecutorAdaptive, StaticConfigKeepsLimitsFixed) {
  const auto base = uniform_base(64);
  serve::Executor<S> ex(base, {.max_batch_flops = 4096});
  for (int i = 0; i < 8; ++i) {
    ex.submit(point_query(64, 4, 10 + static_cast<std::uint64_t>(i)));
  }
  ex.flush();
  EXPECT_EQ(ex.admission_limits().max_batch_flops, 4096u);
  EXPECT_EQ(ex.admission_limits().flush_queue_depth, 64);
}

TEST(ExecutorAdaptive, LatencyTargetMovesLimitsAnswersUnchanged) {
  const Index n = 256;
  const auto base = uniform_base(n);
  serve::Executor<S> ex(base, {.latency_target = 50us});
  std::vector<std::size_t> tickets;
  std::vector<serve::Query<S>> qs;
  for (int i = 0; i < 48; ++i) {
    qs.push_back(point_query(n, 8, 100 + static_cast<std::uint64_t>(i)));
    tickets.push_back(ex.submit(qs.back()));
  }
  ex.flush();
  // The controller has seen ≥ 1 usable sample, so the limits are derived
  // (not the config statics) and stay within the clamp bounds. The exact
  // value is timing-dependent — the deterministic convergence story is the
  // pure-controller tests above.
  const auto lim = ex.admission_limits();
  EXPECT_GE(lim.max_batch_flops, std::uint64_t{1} << 10);
  EXPECT_LE(lim.max_batch_flops, std::uint64_t{1} << 40);
  EXPECT_GE(lim.flush_queue_depth, 1);
  // Bit-identical results regardless of how admission sliced the queue.
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(ex.wait(tickets[i]), serve::run_single(base, qs[i]))
        << "query=" << i;
  }
  EXPECT_EQ(ex.stats().queries, qs.size());
}

TEST(ExecutorAdaptive, AdmissionStateIsExportedAsGauges) {
  namespace m = hyperspace::util::metrics;
  if (!m::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  m::set_enabled(true);
  const Index n = 256;
  const auto base = uniform_base(n);
  serve::Executor<S> ex(base, {.latency_target = 50us,
                               .admission_use_p95 = true});
  for (int i = 0; i < 32; ++i) {
    ex.submit(point_query(n, 8, 300 + static_cast<std::uint64_t>(i)));
  }
  ex.flush();
  auto& reg = m::Registry::instance();
  const auto lim = ex.admission_limits();
  EXPECT_EQ(reg.gauge_value("serve.admission.max_batch_flops"),
            static_cast<double>(lim.max_batch_flops));
  EXPECT_EQ(reg.gauge_value("serve.admission.flush_queue_depth"),
            static_cast<double>(lim.flush_queue_depth));
  // The sample-count gauge makes a starved controller visible; here the
  // batches were big enough to count.
  EXPECT_GE(reg.gauge_value("serve.admission.samples"), 1.0);
}

TEST(ExecutorAdaptive, ShardedRouterExportsOneGaugeSetPerShard) {
  // Regression: the admission gauges used to be a single static unscoped
  // set, so a 4-shard router's executors fought last-batch-wins over one
  // "serve.admission.*" triple. Each shard executor now binds its own
  // "serve.admission.shard<N>.*" set.
  namespace m = hyperspace::util::metrics;
  if (!m::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  m::set_enabled(true);
  auto& reg = m::Registry::instance();
  reg.reset_values();
  const Index n = 256;
  const auto base = uniform_base(n);
  serve::Router<S> router(base, {.n_shards = 4});
  // Width-8 point queries straddle shards, so every shard executor runs
  // telemetered batches and binds its own gauges.
  for (int i = 0; i < 32; ++i) {
    router.submit(point_query(n, 8, 500 + static_cast<std::uint64_t>(i)));
  }
  router.flush();
  ASSERT_EQ(router.n_shards(), 4u);
  for (std::size_t s = 0; s < 4; ++s) {
    const std::string prefix =
        "serve.admission.shard" + std::to_string(s) + ".";
    const auto lim = router.shard_executor(s).admission_limits();
    EXPECT_EQ(reg.gauge_value(prefix + "max_batch_flops"),
              static_cast<double>(lim.max_batch_flops))
        << prefix;
    EXPECT_EQ(reg.gauge_value(prefix + "flush_queue_depth"),
              static_cast<double>(lim.flush_queue_depth))
        << prefix;
  }
  // The four sets are distinct registry entries, not one shared set: the
  // legacy unscoped names were never touched by the router (reset to 0
  // above, still 0 now).
  EXPECT_EQ(reg.gauge_value("serve.admission.max_batch_flops"), 0.0);
  EXPECT_EQ(reg.gauge_value("serve.admission.flush_queue_depth"), 0.0);
}

}  // namespace
