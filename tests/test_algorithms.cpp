// Tests for the graph analytics built on the semiring kernels:
// connected components (min.+), triangle counting (+.× with mask),
// degrees (row projection), and SSSP (min.+ Bellman–Ford).

#include <gtest/gtest.h>

#include <cmath>

#include "hypergraph/algorithms.hpp"
#include "hypergraph/bfs.hpp"
#include "sparse/io.hpp"
#include "util/generators.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::hypergraph;
using S = semiring::PlusTimes<double>;
using sparse::Index;

sparse::Matrix<double> from_pairs(
    Index n, const std::vector<std::pair<Index, Index>>& edges) {
  std::vector<sparse::Triple<double>> t;
  for (const auto& [s, d] : edges) t.push_back({s, d, 1.0});
  return sparse::Matrix<double>::from_triples<S>(n, n, std::move(t));
}

TEST(ConnectedComponents, TwoComponents) {
  const auto a = from_pairs(6, {{0, 1}, {1, 2}, {3, 4}});
  const auto cc = connected_components(a);
  EXPECT_EQ(cc[0], 0);
  EXPECT_EQ(cc[1], 0);
  EXPECT_EQ(cc[2], 0);
  EXPECT_EQ(cc[3], 3);
  EXPECT_EQ(cc[4], 3);
  EXPECT_EQ(cc[5], 5);  // isolated vertex is its own component
}

TEST(ConnectedComponents, DirectionIgnored) {
  // Components are over the undirected pattern: 2→0 joins {0,1,2}.
  const auto a = from_pairs(3, {{0, 1}, {2, 0}});
  const auto cc = connected_components(a);
  EXPECT_EQ(cc[0], 0);
  EXPECT_EQ(cc[1], 0);
  EXPECT_EQ(cc[2], 0);
}

TEST(ConnectedComponents, AgreesWithBfsReachability) {
  const auto edges = util::rmat_edges({.scale = 8, .edge_factor = 2, .seed = 9});
  std::vector<sparse::Triple<double>> t;
  for (const auto& e : edges) t.push_back({e.src, e.dst, 1.0});
  const auto a = sparse::Matrix<double>::from_triples<S>(256, 256, std::move(t));
  const auto cc = connected_components(a);
  // Two vertices share a label iff mutually reachable over the undirected
  // pattern; verify against BFS from each label representative.
  const auto undirected8 = symmetrize_pattern(a);
  const auto und = sparse::apply(undirected8, [](std::uint8_t) { return 1.0; });
  for (Index rep : {cc[0], cc[100], cc[255]}) {
    const auto levels = bfs_queue(und, rep);
    for (Index v = 0; v < 256; ++v) {
      EXPECT_EQ(cc[static_cast<std::size_t>(v)] == rep, levels[static_cast<std::size_t>(v)] >= 0)
          << "rep=" << rep << " v=" << v;
    }
  }
}

TEST(TriangleCount, SingleTriangle) {
  EXPECT_EQ(triangle_count(from_pairs(3, {{0, 1}, {1, 2}, {2, 0}})), 1);
}

TEST(TriangleCount, NoTrianglesInTree) {
  EXPECT_EQ(triangle_count(from_pairs(5, {{0, 1}, {0, 2}, {1, 3}, {1, 4}})), 0);
}

TEST(TriangleCount, CompleteGraphK5) {
  std::vector<std::pair<Index, Index>> edges;
  for (Index i = 0; i < 5; ++i) {
    for (Index j = i + 1; j < 5; ++j) edges.emplace_back(i, j);
  }
  EXPECT_EQ(triangle_count(from_pairs(5, edges)), 10);  // C(5,3)
}

TEST(TriangleCount, SelfLoopsIgnored) {
  EXPECT_EQ(triangle_count(from_pairs(3, {{0, 0}, {0, 1}, {1, 2}, {2, 0}})), 1);
}

TEST(TriangleCount, MultiEdgesDoNotInflate) {
  // Pattern-level count: duplicate edges collapse in the lor.land pattern.
  EXPECT_EQ(triangle_count(from_pairs(3, {{0, 1}, {0, 1}, {1, 2}, {2, 0}})), 1);
}

TEST(OutDegrees, CountsPerRow) {
  const auto deg = out_degrees(from_pairs(4, {{0, 1}, {0, 2}, {0, 3}, {2, 3}}));
  EXPECT_EQ(deg, (std::vector<Index>{3, 0, 1, 0}));
}

TEST(OutDegrees, MultiEdgesCountSeparately) {
  // from_pairs sums duplicate weights into one stored entry, so build raw.
  const auto a = sparse::Matrix<double>::from_unique_triples(
      2, 2, {{0, 0, 1.0}, {0, 1, 1.0}});
  EXPECT_EQ(out_degrees(a), (std::vector<Index>{2, 0}));
}

TEST(Sssp, ShortestPathBeatsDirectEdge) {
  // 0→1 cost 10; 0→2→1 cost 3.
  auto a = sparse::make_matrix<semiring::MinPlus<double>>(
      3, 3, {{0, 1, 10.0}, {0, 2, 1.0}, {2, 1, 2.0}});
  const auto d = sssp(a, 0);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  EXPECT_DOUBLE_EQ(d[1], 3.0);
  EXPECT_DOUBLE_EQ(d[2], 1.0);
}

TEST(Sssp, UnreachableIsInfinity) {
  auto a = sparse::make_matrix<semiring::MinPlus<double>>(
      3, 3, {{0, 1, 1.0}});
  const auto d = sssp(a, 0);
  EXPECT_TRUE(std::isinf(d[2]));
}

TEST(Sssp, AgreesWithBfsHopCountOnUnitWeights) {
  const auto edges = util::rmat_edges({.scale = 7, .edge_factor = 4, .seed = 3});
  std::vector<sparse::Triple<double>> t;
  for (const auto& e : edges) t.push_back({e.src, e.dst, 1.0});
  // min.+ combining of duplicates keeps weight 1.
  auto a = sparse::Matrix<double>::from_triples<semiring::MinPlus<double>>(
      128, 128, std::move(t));
  const auto d = sssp(a, 0);
  const auto levels = bfs_queue(a, 0);
  for (Index v = 0; v < 128; ++v) {
    if (levels[static_cast<std::size_t>(v)] < 0) {
      EXPECT_TRUE(std::isinf(d[static_cast<std::size_t>(v)]));
    } else {
      EXPECT_DOUBLE_EQ(d[static_cast<std::size_t>(v)],
                       static_cast<double>(levels[static_cast<std::size_t>(v)]));
    }
  }
}

TEST(SymmetrizePattern, UnionOfBothDirections) {
  const auto p = symmetrize_pattern(from_pairs(3, {{0, 1}}));
  EXPECT_EQ(p.nnz(), 2);
  EXPECT_TRUE(p.get(0, 1).has_value());
  EXPECT_TRUE(p.get(1, 0).has_value());
}

}  // namespace
