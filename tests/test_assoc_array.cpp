// Unit tests for AssocArray — every Table II operation.

#include <gtest/gtest.h>

#include "array/assoc_array.hpp"
#include "semiring/all.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::array;
using S = semiring::PlusTimes<double>;
using Arr = AssocArray<S>;

Arr sample() {
  // A 3-row table keyed by names and fields.
  return Arr(std::vector<Key>{"alice", "alice", "bob", "carol"},
             std::vector<Key>{"age", "city", "age", "city"},
             std::vector<double>{30, 1, 40, 2});
}

TEST(AssocArray, ConstructionAndExtractionRoundTrip) {
  const auto a = sample();
  const auto entries = a.entries();
  ASSERT_EQ(entries.size(), 4u);
  // Entries come back in key order.
  EXPECT_EQ(std::get<0>(entries[0]), Key("alice"));
  EXPECT_EQ(std::get<1>(entries[0]), Key("age"));
  EXPECT_EQ(std::get<2>(entries[0]), 30.0);
  EXPECT_EQ(Arr::from_entries(entries), a);
}

TEST(AssocArray, DuplicateKeysCombineWithSemiringAdd) {
  const Arr a(std::vector<Key>{"x", "x"}, std::vector<Key>{"k", "k"},
              std::vector<double>{2.0, 5.0});
  EXPECT_EQ(a.nnz(), 1);
  EXPECT_EQ(a.get("x", "k"), 7.0);
}

TEST(AssocArray, LengthMismatchThrows) {
  EXPECT_THROW(Arr(std::vector<Key>{"a"}, std::vector<Key>{"b", "c"},
                   std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(AssocArray, GetAbsentKeyIsEmpty) {
  const auto a = sample();
  EXPECT_EQ(a.get("alice", "age"), 30.0);
  EXPECT_EQ(a.get("dave", "age"), std::nullopt);
  EXPECT_EQ(a.get("alice", "salary"), std::nullopt);
}

TEST(AssocArray, RowAndColReturnNonEmptyKeys) {
  const auto a = sample();
  EXPECT_EQ(a.row(), (KeySet{"alice", "bob", "carol"}));
  EXPECT_EQ(a.col(), (KeySet{"age", "city"}));
}

TEST(AssocArray, PermutationAndIdentity) {
  const auto p = Arr::permutation({"a", "b", "c"}, {"z", "y", "x"});
  EXPECT_EQ(p.nnz(), 3);
  EXPECT_EQ(p.get("a", "z"), S::one());
  const auto eye = Arr::identity(KeySet{"a", "b"});
  EXPECT_EQ(eye.get("a", "a"), S::one());
  EXPECT_EQ(eye.get("a", "b"), std::nullopt);
}

TEST(AssocArray, PermutationLengthMismatchThrows) {
  EXPECT_THROW(Arr::permutation({"a"}, {"x", "y"}), std::invalid_argument);
}

TEST(AssocArray, OnesIsFullArray) {
  const auto ones = Arr::ones(KeySet{"r1", "r2"}, KeySet{"c1"});
  EXPECT_EQ(ones.nnz(), 2);
  EXPECT_EQ(ones.get("r2", "c1"), 1.0);
}

TEST(AssocArray, TransposeSwapsKeys) {
  const auto t = sample().transpose();
  EXPECT_EQ(t.get("age", "alice"), 30.0);
  EXPECT_EQ(t.row(), (KeySet{"age", "city"}));
}

TEST(AssocArray, TransposeInvolution) {
  const auto a = sample();
  EXPECT_EQ(a.transpose().transpose(), a);
}

TEST(AssocArray, ExtractSubArray) {
  const auto a = sample();
  const auto sub = a.extract(KeySet{"alice", "bob"}, KeySet{"age"});
  EXPECT_EQ(sub.nnz(), 2);
  EXPECT_EQ(sub.get("alice", "age"), 30.0);
  EXPECT_EQ(sub.get("alice", "city"), std::nullopt);
}

TEST(AssocArray, ExtractWithForeignKeysSelectsNothing) {
  const auto a = sample();
  const auto sub = a.extract(KeySet{"nobody"}, KeySet{"age"});
  EXPECT_TRUE(sub.empty());
}

TEST(AssocArray, ZeroNormMapsToOne) {
  const auto z = sample().zero_norm();
  for (const auto& [r, c, v] : z.entries()) EXPECT_EQ(v, 1.0);
  EXPECT_EQ(z.nnz(), 4);
}

TEST(AssocArray, CompactDropsEmptyKeySpace) {
  const auto a = sample();
  const auto padded = a.realign(key_union(a.row_keys(), KeySet{"zz"}),
                                a.col_keys());
  EXPECT_EQ(padded.row_keys().size(), 4u);
  const auto c = padded.compact();
  EXPECT_EQ(c.row_keys().size(), 3u);
  EXPECT_EQ(c, a);
}

TEST(AssocArray, AddAlignsDifferentKeySpaces) {
  // The defining associative-array behaviour: operands over different key
  // spaces combine with no conformance fuss.
  const Arr a(std::vector<Key>{"alice"}, std::vector<Key>{"age"},
              std::vector<double>{30});
  const Arr b(std::vector<Key>{"bob"}, std::vector<Key>{"age"},
              std::vector<double>{40});
  const auto c = add(a, b);
  EXPECT_EQ(c.get("alice", "age"), 30.0);
  EXPECT_EQ(c.get("bob", "age"), 40.0);
  EXPECT_EQ(c.nnz(), 2);
}

TEST(AssocArray, AddCombinesOverlap) {
  const Arr a(std::vector<Key>{"x"}, std::vector<Key>{"k"},
              std::vector<double>{1});
  const Arr b(std::vector<Key>{"x"}, std::vector<Key>{"k"},
              std::vector<double>{2});
  EXPECT_EQ(add(a, b).get("x", "k"), 3.0);
}

TEST(AssocArray, MultIsKeyIntersection) {
  const auto a = sample();
  const Arr b(std::vector<Key>{"alice", "dave"},
              std::vector<Key>{"age", "age"}, std::vector<double>{2, 9});
  const auto c = mult(a, b);
  EXPECT_EQ(c.nnz(), 1);
  EXPECT_EQ(c.get("alice", "age"), 60.0);
}

TEST(AssocArray, MtimesComposesOverSharedInnerKeys) {
  // friend-of-friend: alice->bob, bob->carol ⇒ alice->carol.
  const Arr g(std::vector<Key>{"alice", "bob"},
              std::vector<Key>{"bob", "carol"}, std::vector<double>{1, 1});
  const auto two_hop = mtimes(g, g);
  EXPECT_EQ(two_hop.get("alice", "carol"), 1.0);
  EXPECT_EQ(two_hop.nnz(), 1);
}

TEST(AssocArray, MtimesWithDisjointInnerKeysIsZero) {
  // "What is more important ... is some overlap in the non-zero row and
  // column keys" — none here, so the product is all 0.
  const Arr a(std::vector<Key>{"r"}, std::vector<Key>{"k1"},
              std::vector<double>{3});
  const Arr b(std::vector<Key>{"k2"}, std::vector<Key>{"c"},
              std::vector<double>{4});
  EXPECT_TRUE(mtimes(a, b).empty());
}

TEST(AssocArray, MtimesIdentityBehaviour) {
  const auto a = sample();
  const auto eye = Arr::identity(a.col_keys());
  EXPECT_EQ(mtimes(a, eye), a);
  const auto eye_l = Arr::identity(a.row_keys());
  EXPECT_EQ(mtimes(eye_l, a), a);
}

TEST(AssocArray, OperatorSugar) {
  const auto a = sample();
  EXPECT_EQ(a + a, add(a, a));
  EXPECT_EQ(a * a, mult(a, a));
}

TEST(AssocArray, MixedKeyTypesInOneArray) {
  const Arr a(std::vector<Key>{1, "alice", 2.5},
              std::vector<Key>{"f", "f", "f"}, std::vector<double>{1, 2, 3});
  EXPECT_EQ(a.nnz(), 3);
  EXPECT_EQ(a.get(1, "f"), 1.0);
  EXPECT_EQ(a.get("alice", "f"), 2.0);
  EXPECT_EQ(a.get(2.5, "f"), 3.0);
}

TEST(AssocArray, EqualityIsEntryBased) {
  const auto a = sample();
  const auto padded =
      a.realign(key_union(a.row_keys(), KeySet{"ghost"}), a.col_keys());
  EXPECT_EQ(a, padded);  // same entries, bigger ambient space
}

TEST(AssocArray, WrapMatrixShapeMismatchThrows) {
  EXPECT_THROW(Arr(KeySet{"a"}, KeySet{"b"},
                   sparse::Matrix<double>(2, 1, S::zero())),
               std::invalid_argument);
}

}  // namespace
