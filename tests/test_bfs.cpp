// Tests for the Fig 1 BFS duality: the array method (vᵀA per level) and the
// classic queue traversal must produce identical levels on every graph.

#include <gtest/gtest.h>

#include "hypergraph/bfs.hpp"
#include "semiring/arithmetic.hpp"
#include "sparse/io.hpp"
#include "util/generators.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::hypergraph;
using S = semiring::PlusTimes<double>;

sparse::Matrix<double> from_edges(sparse::Index n,
                                  const std::vector<util::Edge>& edges) {
  std::vector<sparse::Triple<double>> t;
  for (const auto& e : edges) t.push_back({e.src, e.dst, e.weight});
  return sparse::Matrix<double>::from_triples<S>(n, n, std::move(t));
}

TEST(Bfs, ChainGraphLevels) {
  const auto a = sparse::make_matrix<S>(
      4, 4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}});
  const auto levels = bfs_array(a, 0);
  EXPECT_EQ(levels, (std::vector<sparse::Index>{0, 1, 2, 3}));
}

TEST(Bfs, UnreachableVerticesStayMinusOne) {
  const auto a = sparse::make_matrix<S>(4, 4, {{0, 1, 1.0}, {2, 3, 1.0}});
  const auto levels = bfs_array(a, 0);
  EXPECT_EQ(levels[1], 1);
  EXPECT_EQ(levels[2], -1);
  EXPECT_EQ(levels[3], -1);
}

TEST(Bfs, SourceOutOfRange) {
  const auto a = sparse::make_matrix<S>(3, 3, {{0, 1, 1.0}});
  EXPECT_EQ(bfs_array(a, 7), (std::vector<sparse::Index>{-1, -1, -1}));
  EXPECT_EQ(bfs_queue(a, -1), (std::vector<sparse::Index>{-1, -1, -1}));
}

TEST(Bfs, CycleGraph) {
  const auto a = sparse::make_matrix<S>(
      5, 5, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}, {3, 4, 1.0}, {4, 0, 1.0}});
  const auto levels = bfs_array(a, 2);
  EXPECT_EQ(levels, (std::vector<sparse::Index>{3, 4, 0, 1, 2}));
}

TEST(Bfs, SelfLoopDoesNotTrapTraversal) {
  const auto a = sparse::make_matrix<S>(3, 3, {{0, 0, 1.0}, {0, 1, 1.0},
                                               {1, 2, 1.0}});
  EXPECT_EQ(bfs_array(a, 0), (std::vector<sparse::Index>{0, 1, 2}));
}

TEST(Bfs, EmptyGraph) {
  const sparse::Matrix<double> a(4, 4);
  const auto levels = bfs_array(a, 1);
  EXPECT_EQ(levels, (std::vector<sparse::Index>{-1, 0, -1, -1}));
}

// The duality property, swept over R-MAT scales and seeds.
class BfsDuality
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(BfsDuality, ArrayAndQueueAgree) {
  const auto [scale, seed] = GetParam();
  const auto edges =
      util::rmat_edges({.scale = scale, .edge_factor = 6, .seed = seed});
  const auto a = from_edges(sparse::Index{1} << scale, edges);
  for (const sparse::Index src : {sparse::Index{0}, sparse::Index{1}, (a.nrows() - 1) / 2}) {
    EXPECT_EQ(bfs_array(a, src), bfs_queue(a, src))
        << "scale=" << scale << " seed=" << seed << " src=" << src;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RmatSweep, BfsDuality,
    ::testing::Combine(::testing::Values(6, 8, 10),
                       ::testing::Values(1u, 2u, 3u)));

TEST(Bfs, ComplementMaskDoesOnlyKeptAccumulatorWork) {
  // Undirected star: 0 <-> i for i in 1..8. Level 1 discovers all 8 leaves
  // (8 kept flops); level 2's products all land back on visited vertex 0
  // (8 skipped flops, 0 kept) and the traversal ends. The fused kernel must
  // report exactly that split — O(kept) accumulator work, not O(produced).
  std::vector<sparse::Triple<double>> t;
  for (sparse::Index i = 1; i <= 8; ++i) {
    t.push_back({0, i, 1.0});
    t.push_back({i, 0, 1.0});
  }
  const auto a = sparse::Matrix<double>::from_triples<S>(9, 9, std::move(t));
  sparse::MxmMaskStats stats;
  const auto levels = bfs_array(a, 0, &stats);
  EXPECT_EQ(levels[0], 0);
  for (std::size_t v = 1; v <= 8; ++v) EXPECT_EQ(levels[v], 1);
  EXPECT_EQ(stats.flops_kept, 8u);
  EXPECT_EQ(stats.flops_skipped, 8u);
}

TEST(Bfs, SkipCountersPartitionFlopsOnRmat) {
  // On any graph: kept + skipped must equal the exact flop count of the
  // traversal, and every kept flop lands on a then-unvisited vertex, so
  // kept is bounded by edges into discovered vertices (≤ nnz).
  const auto edges =
      util::rmat_edges({.scale = 8, .edge_factor = 6, .seed = 9});
  const auto a = from_edges(sparse::Index{1} << 8, edges);
  sparse::MxmMaskStats stats;
  const auto levels = bfs_array(a, 0, &stats);
  EXPECT_EQ(levels, bfs_queue(a, 0));
  EXPECT_GT(stats.flops_total(), 0u);
  std::uint64_t reached_edges = 0;  // edges whose source was ever a frontier
  for (const auto& e : edges) {
    if (levels[static_cast<std::size_t>(e.src)] >= 0) ++reached_edges;
  }
  // Multi-edges fold at build time, so the traversal sees ≤ reached_edges.
  EXPECT_LE(stats.flops_total(), reached_edges);
  EXPECT_LE(stats.flops_kept,
            static_cast<std::uint64_t>(a.nnz()));
}

TEST(Bfs, DualityOnHypersparsePattern) {
  // A graph whose adjacency sits in DCSR (few occupied rows).
  std::vector<sparse::Triple<double>> t;
  for (sparse::Index i = 0; i < 20; ++i) {
    t.push_back({i * 50, (i + 1) * 50, 1.0});
  }
  const auto a =
      sparse::Matrix<double>::from_triples<S>(1024, 1024, std::move(t));
  ASSERT_EQ(a.format(), sparse::Format::kDcsr);
  EXPECT_EQ(bfs_array(a, 0), bfs_queue(a, 0));
}

}  // namespace
