// Tests for the Fig 1 BFS duality: the array method (vᵀA per level) and the
// classic queue traversal must produce identical levels on every graph.

#include <gtest/gtest.h>

#include "hypergraph/bfs.hpp"
#include "semiring/arithmetic.hpp"
#include "sparse/io.hpp"
#include "util/generators.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::hypergraph;
using S = semiring::PlusTimes<double>;

sparse::Matrix<double> from_edges(sparse::Index n,
                                  const std::vector<util::Edge>& edges) {
  std::vector<sparse::Triple<double>> t;
  for (const auto& e : edges) t.push_back({e.src, e.dst, e.weight});
  return sparse::Matrix<double>::from_triples<S>(n, n, std::move(t));
}

TEST(Bfs, ChainGraphLevels) {
  const auto a = sparse::make_matrix<S>(
      4, 4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}});
  const auto levels = bfs_array(a, 0);
  EXPECT_EQ(levels, (std::vector<sparse::Index>{0, 1, 2, 3}));
}

TEST(Bfs, UnreachableVerticesStayMinusOne) {
  const auto a = sparse::make_matrix<S>(4, 4, {{0, 1, 1.0}, {2, 3, 1.0}});
  const auto levels = bfs_array(a, 0);
  EXPECT_EQ(levels[1], 1);
  EXPECT_EQ(levels[2], -1);
  EXPECT_EQ(levels[3], -1);
}

TEST(Bfs, SourceOutOfRange) {
  const auto a = sparse::make_matrix<S>(3, 3, {{0, 1, 1.0}});
  EXPECT_EQ(bfs_array(a, 7), (std::vector<sparse::Index>{-1, -1, -1}));
  EXPECT_EQ(bfs_queue(a, -1), (std::vector<sparse::Index>{-1, -1, -1}));
}

TEST(Bfs, CycleGraph) {
  const auto a = sparse::make_matrix<S>(
      5, 5, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}, {3, 4, 1.0}, {4, 0, 1.0}});
  const auto levels = bfs_array(a, 2);
  EXPECT_EQ(levels, (std::vector<sparse::Index>{3, 4, 0, 1, 2}));
}

TEST(Bfs, SelfLoopDoesNotTrapTraversal) {
  const auto a = sparse::make_matrix<S>(3, 3, {{0, 0, 1.0}, {0, 1, 1.0},
                                               {1, 2, 1.0}});
  EXPECT_EQ(bfs_array(a, 0), (std::vector<sparse::Index>{0, 1, 2}));
}

TEST(Bfs, EmptyGraph) {
  const sparse::Matrix<double> a(4, 4);
  const auto levels = bfs_array(a, 1);
  EXPECT_EQ(levels, (std::vector<sparse::Index>{-1, 0, -1, -1}));
}

// The duality property, swept over R-MAT scales and seeds.
class BfsDuality
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(BfsDuality, ArrayAndQueueAgree) {
  const auto [scale, seed] = GetParam();
  const auto edges =
      util::rmat_edges({.scale = scale, .edge_factor = 6, .seed = seed});
  const auto a = from_edges(sparse::Index{1} << scale, edges);
  for (const sparse::Index src : {sparse::Index{0}, sparse::Index{1}, (a.nrows() - 1) / 2}) {
    EXPECT_EQ(bfs_array(a, src), bfs_queue(a, src))
        << "scale=" << scale << " seed=" << seed << " src=" << src;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RmatSweep, BfsDuality,
    ::testing::Combine(::testing::Values(6, 8, 10),
                       ::testing::Values(1u, 2u, 3u)));

TEST(Bfs, DualityOnHypersparsePattern) {
  // A graph whose adjacency sits in DCSR (few occupied rows).
  std::vector<sparse::Triple<double>> t;
  for (sparse::Index i = 0; i < 20; ++i) {
    t.push_back({i * 50, (i + 1) * 50, 1.0});
  }
  const auto a =
      sparse::Matrix<double>::from_triples<S>(1024, 1024, std::move(t));
  ASSERT_EQ(a.format(), sparse::Format::kDcsr);
  EXPECT_EQ(bfs_array(a, 0), bfs_queue(a, 0));
}

}  // namespace
