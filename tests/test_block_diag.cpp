// Tests for the block-assembly primitives behind batched serving:
// concat_rows / block_diag / concat_blocks stacking and the split_rows
// scatter, including the hypersparse (DCSR) regime and thread-count
// invariance of the parallel assembly.

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "semiring/all.hpp"
#include "sparse/block_diag.hpp"
#include "sparse/io.hpp"
#include "sparse/mxm.hpp"
#include "util/rng.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::sparse;
using hyperspace::testing::ThreadGuard;
using S = semiring::PlusTimes<double>;

Matrix<double> random_matrix(Index nrows, Index ncols, int nnz,
                             std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<Triple<double>> t;
  for (int i = 0; i < nnz; ++i) {
    t.push_back({static_cast<Index>(rng.bounded(
                     static_cast<std::uint64_t>(nrows))),
                 static_cast<Index>(rng.bounded(
                     static_cast<std::uint64_t>(ncols))),
                 rng.uniform(-1.0, 1.0)});
  }
  return Matrix<double>::from_triples<S>(nrows, ncols, std::move(t));
}

TEST(ConcatRows, StacksEntriesAtRowOffsets) {
  const auto a = make_matrix<S>(2, 3, {{0, 0, 1.0}, {1, 2, 2.0}});
  const auto b = make_matrix<S>(3, 3, {{0, 1, 3.0}, {2, 0, 4.0}});
  const auto c = concat_rows<double>({&a, &b});
  EXPECT_EQ(c.nrows(), 5);
  EXPECT_EQ(c.ncols(), 3);
  EXPECT_EQ(c.nnz(), 4);
  EXPECT_EQ(c.get(0, 0), 1.0);
  EXPECT_EQ(c.get(1, 2), 2.0);
  EXPECT_EQ(c.get(2, 1), 3.0);  // b's row 0 landed at row 2
  EXPECT_EQ(c.get(4, 0), 4.0);
}

TEST(ConcatRows, ColumnMismatchThrows) {
  const auto a = make_matrix<S>(2, 3, {{0, 0, 1.0}});
  const auto b = make_matrix<S>(2, 4, {{0, 0, 1.0}});
  EXPECT_THROW(concat_rows<double>({&a, &b}), std::invalid_argument);
}

TEST(ConcatRows, EmptyAndZeroRowParts) {
  const auto a = make_matrix<S>(0, 3, {});
  const auto b = Matrix<double>(2, 3);  // rows but no entries
  const auto c = make_matrix<S>(1, 3, {{0, 1, 9.0}});
  const auto s = concat_rows<double>({&a, &b, &c});
  EXPECT_EQ(s.nrows(), 3);
  EXPECT_EQ(s.nnz(), 1);
  EXPECT_EQ(s.get(2, 1), 9.0);
}

TEST(ConcatRows, NoParts) {
  const auto c = concat_rows<double>({});
  EXPECT_EQ(c.nrows(), 0);
  EXPECT_EQ(c.nnz(), 0);
}

TEST(BlockDiag, OffsetsRowsAndColumns) {
  const auto a = make_matrix<S>(2, 2, {{0, 1, 1.0}, {1, 0, 2.0}});
  const auto b = make_matrix<S>(1, 3, {{0, 2, 3.0}});
  const auto d = block_diag<double>({&a, &b});
  EXPECT_EQ(d.nrows(), 3);
  EXPECT_EQ(d.ncols(), 5);
  EXPECT_EQ(d.get(0, 1), 1.0);
  EXPECT_EQ(d.get(2, 4), 3.0);  // b's (0,2) shifted by (2,2)
  EXPECT_FALSE(d.get(0, 3).has_value());
}

TEST(BlockDiag, TimesStackedBasesEqualsPerPairProducts) {
  // blkdiag(A_1, A_2) ⊕.⊗ concat_rows(B_1, B_2) = concat_rows(C_1, C_2).
  const auto a1 = random_matrix(5, 8, 20, 1);
  const auto a2 = random_matrix(3, 6, 12, 2);
  const auto b1 = random_matrix(8, 7, 30, 3);
  const auto b2 = random_matrix(6, 7, 25, 4);
  const auto lhs = block_diag<double>({&a1, &a2});
  const auto rhs = concat_rows<double>({&b1, &b2});
  const auto c = mxm<S>(lhs, rhs);
  const std::vector<Index> offsets{0, 5, 8};
  const auto parts = split_rows(c, offsets);
  EXPECT_EQ(parts[0], mxm<S>(a1, b1));
  EXPECT_EQ(parts[1], mxm<S>(a2, b2));
}

TEST(ConcatBlocks, OverlappingRowRangesThrow) {
  const auto a = make_matrix<S>(2, 3, {{0, 0, 1.0}});
  EXPECT_THROW(
      concat_blocks<double>(3, 3, {{&a, 0, 0}, {&a, 1, 0}}),
      std::invalid_argument);
  EXPECT_THROW(concat_blocks<double>(3, 3, {{&a, 2, 0}}),
               std::invalid_argument);  // out of range
}

TEST(ConcatBlocks, GapsBetweenBlocksStayEmpty) {
  const auto a = make_matrix<S>(1, 2, {{0, 0, 1.0}});
  const auto c = concat_blocks<double>(8, 4, {{&a, 1, 0}, {&a, 6, 2}});
  EXPECT_EQ(c.nnz(), 2);
  EXPECT_EQ(c.get(1, 0), 1.0);
  EXPECT_EQ(c.get(6, 2), 1.0);
  EXPECT_FALSE(c.get(0, 0).has_value());
}

TEST(ConcatBlocks, HypersparseStackUsesDcsr) {
  const Index huge = Index{1} << 40;
  const auto a = Matrix<double>::from_unique_triples(
      huge, huge, {{Index{1} << 30, 5, 1.0}});
  const auto b = Matrix<double>::from_unique_triples(
      huge, huge, {{7, Index{1} << 35, 2.0}});
  const auto c = concat_blocks<double>(2 * huge, huge,
                                       {{&a, 0, 0}, {&b, huge, 0}});
  EXPECT_EQ(c.format(), Format::kDcsr);
  EXPECT_EQ(c.nnz(), 2);
  EXPECT_EQ(c.get(Index{1} << 30, 5), 1.0);
  EXPECT_EQ(c.get(huge + 7, Index{1} << 35), 2.0);
}

TEST(SplitRows, RoundTripsConcatRows) {
  std::vector<Matrix<double>> parts;
  parts.push_back(random_matrix(4, 6, 15, 10));
  parts.push_back(Matrix<double>(0, 6));      // zero-row part
  parts.push_back(random_matrix(1, 6, 3, 11));
  parts.push_back(Matrix<double>(3, 6));      // empty part
  std::vector<const Matrix<double>*> ptrs;
  std::vector<Index> offsets{0};
  for (const auto& p : parts) {
    ptrs.push_back(&p);
    offsets.push_back(offsets.back() + p.nrows());
  }
  const auto stacked = concat_rows(ptrs);
  const auto back = split_rows(stacked, offsets);
  ASSERT_EQ(back.size(), parts.size());
  for (std::size_t i = 0; i < parts.size(); ++i) {
    EXPECT_EQ(back[i], parts[i]) << "part " << i;
  }
}

TEST(SplitRows, BadOffsetsThrow) {
  const auto m = random_matrix(4, 4, 8, 1);
  EXPECT_THROW(split_rows(m, std::vector<Index>{0, 5}),
               std::invalid_argument);
  EXPECT_THROW(split_rows(m, std::vector<Index>{1, 4}),
               std::invalid_argument);
  EXPECT_THROW(split_rows(m, std::vector<Index>{0, 3, 2, 4}),
               std::invalid_argument);
}

TEST(ConcatBlocks, ThreadCountInvariant) {
  // Assembly writes to positions fixed by the input alone: the stacked
  // matrix must be bit-identical at every thread count.
  std::vector<Matrix<double>> parts;
  for (int i = 0; i < 6; ++i) {
    parts.push_back(random_matrix(64, 48, 400, 20 + i));
  }
  std::vector<const Matrix<double>*> ptrs;
  for (const auto& p : parts) ptrs.push_back(&p);
  Matrix<double> reference;
  {
    ThreadGuard guard(1);
    reference = concat_rows(ptrs);
  }
  for (const int nt : {2, 8}) {
    ThreadGuard guard(nt);
    EXPECT_EQ(concat_rows(ptrs), reference) << "threads=" << nt;
    EXPECT_EQ(reference.to_triples(), concat_rows(ptrs).to_triples());
  }
}

TEST(ConcatBlocks, ManyZeroRowBlocksAtSharedOffsetsSortStably) {
  // Zero-row blocks share their row offset with the following block; with
  // enough blocks to leave std::sort's insertion-sort regime, an
  // offset-only comparator could order an empty block AFTER its
  // equal-offset neighbor and make validation reject a valid batch. The
  // height tie-break must keep this assembling — in any input order.
  const int kPairs = 48;
  std::vector<Matrix<double>> mats;
  std::vector<Block<double>> blocks;
  Index off = 0;
  for (int i = 0; i < kPairs; ++i) {
    mats.push_back(Matrix<double>(0, 4));  // zero-row block
    mats.push_back(make_matrix<S>(1, 4, {{0, i % 4, 1.0 + i}}));
  }
  for (int i = 0; i < kPairs; ++i) {
    blocks.push_back({&mats[static_cast<std::size_t>(2 * i)], off, 0});
    blocks.push_back({&mats[static_cast<std::size_t>(2 * i + 1)], off, 0});
    off += 1;
  }
  // Reversed input order: every empty block now ARRIVES after its
  // equal-offset neighbor.
  std::reverse(blocks.begin(), blocks.end());
  const auto c = concat_blocks<double>(off, 4, blocks);
  EXPECT_EQ(c.nrows(), static_cast<Index>(kPairs));
  EXPECT_EQ(c.nnz(), static_cast<std::size_t>(kPairs));
  for (int i = 0; i < kPairs; ++i) {
    EXPECT_EQ(c.get(i, i % 4), 1.0 + i) << "row=" << i;
  }
  // Genuinely overlapping non-empty blocks must still throw.
  const auto a = make_matrix<S>(2, 4, {{0, 0, 1.0}});
  const auto b = make_matrix<S>(2, 4, {{1, 1, 2.0}});
  EXPECT_THROW(concat_blocks<double>(3, 4, {{&a, 0, 0}, {&b, 1, 0}}),
               std::invalid_argument);
}

TEST(StackBases, OffsetsAndBlockDiagPlacement) {
  const auto b0 = random_matrix(4, 3, 8, 1);
  const auto b1 = random_matrix(2, 5, 6, 2);
  const auto b2 = Matrix<double>(3, 2);  // empty base
  const auto st =
      stack_bases<double>(std::vector<const Matrix<double>*>{&b0, &b1, &b2});
  EXPECT_EQ(st.row_offsets, (std::vector<Index>{0, 4, 6, 9}));
  EXPECT_EQ(st.col_offsets, (std::vector<Index>{0, 3, 8, 10}));
  EXPECT_EQ(st.stacked.nrows(), 9);
  EXPECT_EQ(st.stacked.ncols(), 10);
  EXPECT_EQ(st.stacked.nnz(), b0.nnz() + b1.nnz());
  // Spot-check placement: every b1 entry lands offset by (4, 3).
  const auto v = b1.view();
  for (std::size_t ri = 0; ri < v.row_ids.size(); ++ri) {
    const auto rc = v.row_cols(ri);
    const auto rv = v.row_vals(ri);
    for (std::size_t j = 0; j < rc.size(); ++j) {
      EXPECT_EQ(st.stacked.get(v.row_ids[ri] + 4, rc[j] + 3), rv[j]);
    }
  }
}

}  // namespace
