// Tests for the serve-layer result cache (serve/cache.hpp): the
// ResultCache mechanics (LRU under a byte budget, negative entries, lazy
// stale reclamation), key near-misses (same lhs at a different epoch,
// same pattern with different values, same mask with a different
// sense/probe), epoch invalidation through the Executor and Router, and
// — the load-bearing part — a randomized read/mutate coherence fuzzer
// proving that a cached engine is BYTE-identical to an uncached reference
// across semirings, thread counts, shard counts, and sync/async modes:
// a cache hit is a byte-identical replay, never a recomputation.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <optional>
#include <vector>

#include "helpers.hpp"
#include "semiring/all.hpp"
#include "serve/cache.hpp"
#include "serve/executor.hpp"
#include "serve/router.hpp"
#include "util/rng.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::sparse;
using hyperspace::testing::ThreadGuard;
using S = semiring::PlusTimes<double>;

template <semiring::Semiring Sr, typename Gen>
Matrix<typename Sr::value_type> random_matrix(Index nrows, Index ncols,
                                              int nnz, std::uint64_t seed,
                                              Gen&& entry) {
  util::Xoshiro256 rng(seed);
  std::vector<Triple<typename Sr::value_type>> t;
  for (int i = 0; i < nnz; ++i) {
    t.push_back({static_cast<Index>(rng.bounded(
                     static_cast<std::uint64_t>(nrows))),
                 static_cast<Index>(rng.bounded(
                     static_cast<std::uint64_t>(ncols))),
                 entry(rng)});
  }
  return Matrix<typename Sr::value_type>::template from_triples<Sr>(
      nrows, ncols, std::move(t));
}

double dbl_entry(util::Xoshiro256& r) { return r.uniform(-1.0, 1.0); }

semiring::ValueSet vs_entry(util::Xoshiro256& r) {
  return semiring::ValueSet{static_cast<std::int64_t>(r.bounded(16)),
                            static_cast<std::int64_t>(r.bounded(16))};
}

// --------------------------------------------------------------------------
// Byte-exact comparison: serialize a matrix's canonical content — shape,
// row ids, column ids, raw value BYTES (memcpy, not operator==, so
// -0.0 != +0.0 and NaN payloads count) — and memcmp the two buffers.

template <typename T>
void append_value_bytes(std::vector<unsigned char>& out, const T& v) {
  unsigned char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.insert(out.end(), buf, buf + sizeof(T));
}

void append_value_bytes(std::vector<unsigned char>& out,
                        const semiring::ValueSet& v) {
  out.push_back(v.is_universe() ? 1 : 0);
  append_value_bytes(out, static_cast<std::uint64_t>(v.elements().size()));
  for (const std::int64_t e : v.elements()) append_value_bytes(out, e);
}

template <typename T>
std::vector<unsigned char> matrix_bytes(const Matrix<T>& m) {
  std::vector<unsigned char> out;
  const auto v = m.view();
  append_value_bytes(out, static_cast<std::int64_t>(v.nrows));
  append_value_bytes(out, static_cast<std::int64_t>(v.ncols));
  for (std::size_t ri = 0; ri < v.row_ids.size(); ++ri) {
    const auto rc = v.row_cols(ri);
    const auto rv = v.row_vals(ri);
    append_value_bytes(out, static_cast<std::int64_t>(v.row_ids[ri]));
    append_value_bytes(out, static_cast<std::uint64_t>(rc.size()));
    for (std::size_t j = 0; j < rc.size(); ++j) {
      append_value_bytes(out, static_cast<std::int64_t>(rc[j]));
      append_value_bytes(out, rv[j]);
    }
  }
  return out;
}

template <typename T>
::testing::AssertionResult bytes_identical(const Matrix<T>& a,
                                           const Matrix<T>& b) {
  const auto ba = matrix_bytes(a);
  const auto bb = matrix_bytes(b);
  if (ba.size() != bb.size()) {
    return ::testing::AssertionFailure()
           << "serialized sizes differ: " << ba.size() << " vs " << bb.size();
  }
  if (!ba.empty() && std::memcmp(ba.data(), bb.data(), ba.size()) != 0) {
    return ::testing::AssertionFailure() << "serialized bytes differ";
  }
  return ::testing::AssertionSuccess();
}

// --------------------------------------------------------------------------
// ResultCache unit mechanics (no engine involved).

serve::Query<S> one_row_query(Index n, std::uint64_t seed, int width = 4) {
  util::Xoshiro256 rng(seed);
  std::vector<Triple<double>> t;
  for (int e = 0; e < width; ++e) {
    t.push_back({0,
                 static_cast<Index>(rng.bounded(
                     static_cast<std::uint64_t>(n))),
                 rng.uniform(0.5, 1.5)});
  }
  return serve::Query<S>::analytic(
      Matrix<double>::from_triples<S>(1, n, std::move(t)));
}

TEST(ResultCache, DisabledCacheNeverHitsOrStores) {
  serve::ResultCache<S> cache;  // max_bytes = 0
  EXPECT_FALSE(cache.enabled());
  const auto q = one_row_query(16, 1);
  const auto k = serve::ResultCache<S>::make_key(0, 0, q, 0);
  cache.install(k, q.lhs);
  EXPECT_FALSE(cache.probe(k, [](const auto&) { return false; }).has_value());
  EXPECT_EQ(cache.stats().misses, 0u);  // disabled probes don't even count
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCache, MissInstallHitRoundTripsTheExactBytes) {
  serve::ResultCache<S> cache({.max_bytes = 1 << 16});
  const auto q = one_row_query(16, 2);
  const auto val = random_matrix<S>(1, 8, 6, 3, dbl_entry);
  const auto k = serve::ResultCache<S>::make_key(0, 0, q, 0);
  auto fresh = [](const auto&) { return false; };
  EXPECT_FALSE(cache.probe(k, fresh).has_value());
  cache.install(k, val);
  const auto hit = cache.probe(k, fresh);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(bytes_identical(hit->value, val));
  EXPECT_GT(hit->bytes, 0u);
  const auto st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.installs, 1u);
  EXPECT_EQ(st.entries, 1u);
  EXPECT_EQ(st.bytes, hit->bytes);
}

TEST(ResultCache, LruEvictsUnderTheByteBudgetOldestFirst) {
  serve::ResultCache<S> cache({.max_bytes = 1 << 10});
  auto fresh = [](const auto&) { return false; };
  const auto val = random_matrix<S>(1, 16, 12, 5, dbl_entry);
  // Install keys until the budget forces evictions.
  std::vector<serve::ResultCache<S>::Key> keys;
  for (std::uint64_t i = 0; i < 16; ++i) {
    const auto q = one_row_query(16, 100 + i);
    keys.push_back(serve::ResultCache<S>::make_key(0, 0, q, 0));
    cache.install(keys.back(), val);
  }
  const auto st = cache.stats();
  EXPECT_EQ(st.installs, 16u);
  EXPECT_GT(st.evictions, 0u);
  EXPECT_LE(st.bytes, std::uint64_t{1} << 10);
  EXPECT_EQ(st.entries, st.installs - st.evictions);
  // Oldest-first: the most recent key must still be resident, the very
  // first long gone.
  EXPECT_TRUE(cache.probe(keys.back(), fresh).has_value());
  EXPECT_FALSE(cache.probe(keys.front(), fresh).has_value());
}

TEST(ResultCache, OversizedAnswerIsNotInstalled) {
  serve::ResultCache<S> cache({.max_bytes = 64});
  const auto q = one_row_query(16, 7);
  const auto k = serve::ResultCache<S>::make_key(0, 0, q, 0);
  cache.install(k, random_matrix<S>(4, 32, 64, 8, dbl_entry));
  EXPECT_EQ(cache.stats().installs, 0u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCache, NegativeEntriesFollowTheConfigSwitch) {
  const Matrix<double> empty(1, 8, 0.0);
  const auto q = one_row_query(16, 9);
  const auto k = serve::ResultCache<S>::make_key(0, 0, q, 0);
  auto fresh = [](const auto&) { return false; };
  serve::ResultCache<S> on({.max_bytes = 1 << 12, .negative = true});
  on.install(k, empty);
  const auto hit = on.probe(k, fresh);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->value.view().nnz(), 0);
  serve::ResultCache<S> off({.max_bytes = 1 << 12, .negative = false});
  off.install(k, empty);
  EXPECT_FALSE(off.probe(k, fresh).has_value());
}

TEST(ResultCache, StaleTailEntriesAreReclaimedLazilyOnProbe) {
  serve::ResultCache<S> cache({.max_bytes = 1 << 16});
  const auto val = random_matrix<S>(1, 8, 6, 11, dbl_entry);
  // Three entries at epoch 0, then the "engine" moves to epoch 1.
  std::vector<serve::ResultCache<S>::Key> old_keys;
  for (std::uint64_t i = 0; i < 3; ++i) {
    old_keys.push_back(serve::ResultCache<S>::make_key(
        0, 0, one_row_query(16, 200 + i), 0));
    cache.install(old_keys.back(), val);
  }
  auto stale = [](const serve::ResultCache<S>::Key& k) {
    return k.epoch != 1;
  };
  // A probe at the new epoch reclaims at most two tail entries.
  const auto k_new =
      serve::ResultCache<S>::make_key(1, 0, one_row_query(16, 300), 0);
  EXPECT_FALSE(cache.probe(k_new, stale).has_value());
  EXPECT_EQ(cache.stats().stale_drops, 2u);
  EXPECT_EQ(cache.stats().entries, 1u);
  // The next probe drains the rest; stale drops are not LRU evictions.
  EXPECT_FALSE(cache.probe(k_new, stale).has_value());
  EXPECT_EQ(cache.stats().stale_drops, 3u);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

// --------------------------------------------------------------------------
// Key near-misses: every component of the key must separate.

TEST(CacheKey, SameLhsAtDifferentEpochsNeverCollides) {
  const auto q = one_row_query(16, 21);
  const auto k0 = serve::ResultCache<S>::make_key(0, 0, q, 0);
  const auto k1 = serve::ResultCache<S>::make_key(1, 0, q, 0);
  EXPECT_NE(k0, k1);
  serve::ResultCache<S> cache({.max_bytes = 1 << 14});
  cache.install(k0, q.lhs);
  EXPECT_FALSE(
      cache.probe(k1, [](const auto&) { return false; }).has_value());
}

TEST(CacheKey, SamePatternDifferentValueBytesNeverCollides) {
  // Same sparsity pattern, values differing in exactly one bit pattern
  // (+0.0 vs -0.0 included): the content fingerprint must separate them.
  std::vector<Triple<double>> ta{{0, 1, 1.5}, {0, 4, 0.0}};
  std::vector<Triple<double>> tb{{0, 1, 1.5}, {0, 4, -0.0}};
  auto qa = serve::Query<S>::analytic(
      Matrix<double>::from_unique_triples(1, 8, std::move(ta)));
  auto qb = serve::Query<S>::analytic(
      Matrix<double>::from_unique_triples(1, 8, std::move(tb)));
  EXPECT_NE(serve::ResultCache<S>::make_key(0, 0, qa, 0),
            serve::ResultCache<S>::make_key(0, 0, qb, 0));
}

TEST(CacheKey, SameMaskDifferentSenseOrProbeNeverCollides) {
  const auto lhs = random_matrix<S>(2, 16, 8, 31, dbl_entry);
  const auto mask = random_matrix<S>(2, 16, 10, 32, dbl_entry);
  auto make = [&](bool complement, MaskProbe probe) {
    auto q = serve::Query<S>::masked(lhs, mask,
                                     {.complement = complement,
                                      .probe = probe});
    return serve::ResultCache<S>::make_key(0, 0, q, 0);
  };
  const auto plain = make(false, MaskProbe::kAuto);
  EXPECT_NE(plain, make(true, MaskProbe::kAuto));    // sense differs
  EXPECT_NE(plain, make(false, MaskProbe::kBinary))  // probe differs
      << "probe policy must be part of the key";
  // And masked vs unmasked with the same lhs: kind differs.
  auto qa = serve::Query<S>::analytic(lhs);
  EXPECT_NE(plain, serve::ResultCache<S>::make_key(0, 0, qa, 0));
}

TEST(CacheKey, CarriedQueriesAreNeverCacheable) {
  auto q = one_row_query(16, 41);
  EXPECT_TRUE(serve::ResultCache<S>::cacheable(q));
  q.carry = Matrix<double>(1, 16, 0.0);
  EXPECT_FALSE(serve::ResultCache<S>::cacheable(q));
  auto q2 = one_row_query(16, 42);
  q2.no_cache = true;
  EXPECT_FALSE(serve::ResultCache<S>::cacheable(q2));
}

// --------------------------------------------------------------------------
// Engine integration: Executor hit/miss/invalidation semantics.

/// A base with row 2 deliberately EMPTY (for the negative-entry test) and
/// every other row carrying 3 entries.
Matrix<double> holey_base(Index n) {
  std::vector<Triple<double>> t;
  for (Index r = 0; r < n; ++r) {
    if (r == 2) continue;
    for (Index j = 0; j < 3; ++j) {
      t.push_back({r, (r + j * 5) % n, 1.0 + static_cast<double>(r + j)});
    }
  }
  return Matrix<double>::from_triples<S>(n, n, std::move(t));
}

TEST(ExecutorCache, RepeatQueryHitsAndReplaysTheExactBytes) {
  const Index n = 32;
  serve::Executor<S> ex(holey_base(n), {.cache_bytes = 1 << 16});
  const auto q = one_row_query(n, 51);
  const auto t0 = ex.submit(q);
  const auto first = matrix_bytes(ex.wait(t0));
  const auto t1 = ex.submit(q);
  const auto second = matrix_bytes(ex.wait(t1));
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(std::memcmp(first.data(), second.data(), first.size()), 0);
  const auto st = ex.cache_stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, 1u);
  const auto ts = ex.tenant_stats(0);
  EXPECT_EQ(ts.cache_hits, 1u);
  EXPECT_EQ(ts.cache_misses, 1u);
  EXPECT_GT(ts.cache_bytes, 0u);
  // A hit never executes: kernel-side accounting saw exactly one query.
  EXPECT_EQ(ex.stats().queries, 1u);
  EXPECT_EQ(ts.queries, 1u);
}

TEST(ExecutorCache, MutationInvalidatesByEpochWithoutFlushing) {
  const Index n = 32;
  serve::Executor<S> cached(holey_base(n), {.cache_bytes = 1 << 16});
  serve::Executor<S> plain(holey_base(n));
  const auto q = one_row_query(n, 61);
  // Warm the cache at epoch 0 and hit it once.
  (void)cached.wait(cached.submit(q));
  (void)cached.wait(cached.submit(q));
  (void)plain.wait(plain.submit(q));
  ASSERT_EQ(cached.cache_stats().hits, 1u);
  // Mutate both engines identically: the epoch moves, the entry is stale.
  UpdateBatch<double> ops;
  util::Xoshiro256 rng(62);
  for (int i = 0; i < 8; ++i) {
    ops.push_back(Update<double>::assign(
        static_cast<Index>(rng.bounded(static_cast<std::uint64_t>(n))),
        static_cast<Index>(rng.bounded(static_cast<std::uint64_t>(n))),
        rng.uniform(0.5, 1.5)));
  }
  cached.mutate(0, ops);
  plain.mutate(0, ops);
  const auto& rc = cached.wait(cached.submit(q));
  const auto& rp = plain.wait(plain.submit(q));
  EXPECT_TRUE(bytes_identical(rc, rp));
  const auto st = cached.cache_stats();
  EXPECT_EQ(st.hits, 1u);    // the post-mutation probe missed
  EXPECT_EQ(st.misses, 2u);  // warm-up + post-mutation
  // And the new-epoch answer is itself cached: one more submit hits.
  (void)cached.wait(cached.submit(q));
  EXPECT_EQ(cached.cache_stats().hits, 2u);
}

TEST(ExecutorCache, NegativeEntryInvalidatedWhenMutationFillsTheRow) {
  const Index n = 32;
  serve::Executor<S> ex(holey_base(n), {.cache_bytes = 1 << 16});
  const auto q = serve::Query<S>::point(2, n);  // row 2 is empty
  const auto& r0 = ex.wait(ex.submit(q));
  EXPECT_EQ(r0.view().nnz(), 0);
  const auto& r1 = ex.wait(ex.submit(q));  // negative entry hit
  EXPECT_EQ(r1.view().nnz(), 0);
  EXPECT_EQ(ex.cache_stats().hits, 1u);
  // The mutation makes the answer non-empty; the negative entry must die
  // with its epoch, not survive as a wrong "no such row".
  UpdateBatch<double> ops;
  ops.push_back(Update<double>::assign(2, 7, 42.0));
  ex.mutate(0, ops);
  const auto& r2 = ex.wait(ex.submit(q));
  EXPECT_GT(r2.view().nnz(), 0);
  EXPECT_EQ(ex.cache_stats().hits, 1u);  // no phantom hit after the epoch
}

TEST(ExecutorCache, NegativeCachingCanBeDisabled) {
  const Index n = 32;
  serve::Executor<S> ex(holey_base(n), {.cache_bytes = 1 << 16,
                                        .cache_negative = false});
  const auto q = serve::Query<S>::point(2, n);
  (void)ex.wait(ex.submit(q));
  (void)ex.wait(ex.submit(q));
  EXPECT_EQ(ex.cache_stats().hits, 0u);  // empty answers never installed
  EXPECT_EQ(ex.cache_stats().misses, 2u);
}

TEST(RouterCache, HitsServeWithoutScatterAndMutationInvalidates) {
  const Index n = 48;
  const auto base = random_matrix<S>(n, n, 6 * n, 71, dbl_entry);
  serve::Router<S> router(base, {.executor = {.cache_bytes = 1 << 16},
                                 .n_shards = 4});
  // A 4-key point query straddles shards: the gathered final answer is
  // what must land in the cache.
  const auto q = one_row_query(n, 72);
  const auto b0 = matrix_bytes(router.wait(router.submit(q)));
  const auto rs0 = router.router_stats();
  EXPECT_EQ(rs0.cache_misses, 1u);
  const auto b1 = matrix_bytes(router.wait(router.submit(q)));
  ASSERT_EQ(b0.size(), b1.size());
  EXPECT_EQ(std::memcmp(b0.data(), b1.data(), b0.size()), 0);
  const auto rs1 = router.router_stats();
  EXPECT_EQ(rs1.cache_hits, 1u);
  // The hit created no chain stages: stage_submits didn't move.
  EXPECT_EQ(rs1.stage_submits, rs0.stage_submits);
  EXPECT_EQ(router.tenant_stats(0).cache_hits, 1u);
  // Any logical mutation invalidates (router epoch is coarse).
  UpdateBatch<double> ops;
  ops.push_back(Update<double>::assign(0, 0, 9.0));
  router.mutate(ops);
  (void)router.wait(router.submit(q));
  EXPECT_EQ(router.router_stats().cache_hits, 1u);
  EXPECT_EQ(router.router_stats().cache_misses, 2u);
}

// --------------------------------------------------------------------------
// The randomized coherence fuzzer: a cached Router against an uncached
// reference, interleaving point / select / analytic / masked queries with
// mutation batches, swept over semiring × threads × shards × sync/async.
// Every answer must be memcmp-identical, and the cache counters must be
// invariant across thread counts (probe at submit, install at settle,
// both sequenced by the submit-then-wait discipline).

template <semiring::Semiring Sr, typename Gen>
serve::Query<Sr> random_query(Index n, util::Xoshiro256& rng, Gen&& entry) {
  using Q = serve::Query<Sr>;
  // Draw the query's shape AND its seed from a small pool so exact
  // repeats are common — that is what a result cache is for.
  const auto kind = rng.bounded(4);
  const std::uint64_t qseed = 1000 + rng.bounded(6) * 17;
  switch (kind) {
    case 0:  // point lookup
      return Q::point(static_cast<Index>(qseed % static_cast<std::uint64_t>(n)),
                      n);
    case 1: {  // row extraction
      std::vector<Index> rows;
      util::Xoshiro256 qr(qseed);
      for (int i = 0; i < 3; ++i) {
        rows.push_back(static_cast<Index>(
            qr.bounded(static_cast<std::uint64_t>(n))));
      }
      return Q::select(rows, n);
    }
    case 2:  // analytic
      return Q::analytic(random_matrix<Sr>(2, n, 10, qseed, entry));
    default: {  // masked, alternating sense
      auto q = Q::masked(random_matrix<Sr>(2, n, 10, qseed, entry),
                         random_matrix<Sr>(2, n, 2 * n, qseed + 1, entry),
                         {.complement = qseed % 2 == 1});
      return q;
    }
  }
}

template <typename T, typename Gen>
UpdateBatch<T> random_update_batch(Index n, util::Xoshiro256& rng,
                                   Gen&& entry) {
  UpdateBatch<T> ops;
  const int count = 4 + static_cast<int>(rng.bounded(8));
  for (int i = 0; i < count; ++i) {
    const auto r = static_cast<Index>(rng.bounded(
        static_cast<std::uint64_t>(n)));
    const auto c = static_cast<Index>(rng.bounded(
        static_cast<std::uint64_t>(n)));
    if (rng.bounded(4) == 0) {
      ops.push_back(Update<T>::erased(r, c));
    } else {
      ops.push_back(Update<T>::assign(r, c, entry(rng)));
    }
  }
  return ops;
}

/// One fuzz run: `ops` interleaved reads and mutations through a cached
/// Router and an uncached reference with identical config; every answer
/// byte-compared. Returns the cached engine's cache counters.
template <semiring::Semiring Sr, typename Gen>
typename serve::ResultCache<Sr>::Stats fuzz_run(int n_shards, bool async,
                                                std::uint64_t seed, int ops,
                                                std::size_t cache_bytes,
                                                Gen&& entry) {
  using T = typename Sr::value_type;
  const Index n = 48;
  const auto base = random_matrix<Sr>(n, n, 6 * n, seed, entry);

  typename serve::Router<Sr>::Config cfg;
  cfg.n_shards = n_shards;
  cfg.executor.cache_bytes = cache_bytes;
  cfg.executor.async = async;
  cfg.executor.flush_queue_depth = 3;
  serve::Router<Sr> cached(base, cfg);
  auto ucfg = cfg;
  ucfg.executor.cache_bytes = 0;
  serve::Router<Sr> uncached(base, ucfg);

  util::Xoshiro256 rng(seed * 77 + 13);
  for (int op = 0; op < ops; ++op) {
    if (rng.bounded(10) < 2) {
      const auto batch = random_update_batch<T>(n, rng, entry);
      cached.mutate(batch);
      uncached.mutate(batch);
      continue;
    }
    const auto q = random_query<Sr>(n, rng, entry);
    const auto tc = cached.submit(q);
    const auto tu = uncached.submit(q);
    // Submit-then-wait: the total order of probes and installs is the op
    // order, which is what makes the counters thread-count invariant.
    const auto& rc = cached.wait(tc);
    const auto& ru = uncached.wait(tu);
    EXPECT_TRUE(bytes_identical(rc, ru))
        << "op=" << op << " shards=" << n_shards << " async=" << async
        << " seed=" << seed;
  }
  return cached.cache_stats();
}

template <semiring::Semiring Sr, typename Gen>
void coherence_sweep(std::uint64_t seed, Gen&& entry) {
  std::uint64_t total_hits = 0;
  for (const int shards : {1, 2, 4}) {
    for (const bool async : {false, true}) {
      std::optional<typename serve::ResultCache<Sr>::Stats> ref;
      for (const int nt : {1, 2, 8}) {
        ThreadGuard guard(nt);
        const auto st = fuzz_run<Sr>(shards, async,
                                     seed + static_cast<std::uint64_t>(shards),
                                     40, std::size_t{1} << 16, entry);
        if (!ref) {
          ref = st;
          total_hits += st.hits;
          EXPECT_GT(st.hits, 0u)
              << "shards=" << shards << " async=" << async
              << ": repeat-heavy mix produced no hit — cache never engaged";
        } else {
          // Thread-count invariance of every cache counter.
          EXPECT_EQ(st.hits, ref->hits) << "shards=" << shards;
          EXPECT_EQ(st.misses, ref->misses) << "shards=" << shards;
          EXPECT_EQ(st.evictions, ref->evictions) << "shards=" << shards;
          EXPECT_EQ(st.stale_drops, ref->stale_drops) << "shards=" << shards;
          EXPECT_EQ(st.installs, ref->installs) << "shards=" << shards;
          EXPECT_EQ(st.bytes, ref->bytes) << "shards=" << shards;
        }
      }
    }
  }
  EXPECT_GT(total_hits, 0u);
}

TEST(CacheCoherenceFuzz, PlusTimes) {
  coherence_sweep<semiring::PlusTimes<double>>(901, dbl_entry);
}

TEST(CacheCoherenceFuzz, MinPlus) {
  coherence_sweep<semiring::MinPlus<double>>(902, dbl_entry);
}

TEST(CacheCoherenceFuzz, UnionIntersect) {
  coherence_sweep<semiring::UnionIntersect>(903, vs_entry);
}

// A tight-budget variant so LRU eviction runs inside the coherence loop
// too (the sweep above mostly fits): eviction order — and therefore every
// answer — must still be deterministic at any thread count.
TEST(CacheCoherenceFuzz, TightBudgetForcesEvictionsDeterministically) {
  std::optional<serve::ResultCache<S>::Stats> ref;
  for (const int nt : {1, 2, 8}) {
    ThreadGuard guard(nt);
    const auto st =
        fuzz_run<S>(2, false, 904, 60, std::size_t{1} << 11, dbl_entry);
    if (!ref) {
      ref = st;
      EXPECT_GT(st.evictions, 0u) << "budget too large to force eviction";
    } else {
      EXPECT_EQ(st.hits, ref->hits);
      EXPECT_EQ(st.misses, ref->misses);
      EXPECT_EQ(st.evictions, ref->evictions);
      EXPECT_EQ(st.bytes, ref->bytes);
    }
  }
}

}  // namespace
