// Tests for PageRank, k-truss, and Jaccard similarity.

#include <gtest/gtest.h>

#include <numeric>

#include "hypergraph/centrality.hpp"
#include "sparse/io.hpp"
#include "util/generators.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::hypergraph;
using sparse::Index;
using S = semiring::PlusTimes<double>;

sparse::Matrix<double> from_pairs(
    Index n, const std::vector<std::pair<Index, Index>>& edges) {
  std::vector<sparse::Triple<double>> t;
  for (const auto& [s, d] : edges) t.push_back({s, d, 1.0});
  return sparse::Matrix<double>::from_triples<S>(n, n, std::move(t));
}

TEST(PageRank, SumsToOne) {
  const auto a = from_pairs(5, {{0, 1}, {1, 2}, {2, 0}, {3, 4}});
  const auto r = pagerank(a);
  EXPECT_NEAR(std::accumulate(r.begin(), r.end(), 0.0), 1.0, 1e-6);
}

TEST(PageRank, SymmetricCycleIsUniform) {
  const auto a = from_pairs(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  const auto r = pagerank(a);
  for (const double v : r) EXPECT_NEAR(v, 0.25, 1e-6);
}

TEST(PageRank, HubOutranksLeaves) {
  // Everyone points at vertex 0.
  const auto a = from_pairs(5, {{1, 0}, {2, 0}, {3, 0}, {4, 0}});
  const auto r = pagerank(a);
  for (int v = 1; v < 5; ++v) EXPECT_GT(r[0], r[static_cast<std::size_t>(v)]);
}

TEST(PageRank, DanglingMassRedistributed) {
  // 0 -> 1; 1 dangles. Ranks must still sum to 1.
  const auto a = from_pairs(2, {{0, 1}});
  const auto r = pagerank(a);
  EXPECT_NEAR(r[0] + r[1], 1.0, 1e-6);
  EXPECT_GT(r[1], r[0]);
}

TEST(PageRank, EmptyGraph) {
  const sparse::Matrix<double> a(3, 3);
  const auto r = pagerank(a);
  for (const double v : r) EXPECT_NEAR(v, 1.0 / 3, 1e-6);
}

TEST(KTruss, TriangleSurvivesThreeTruss) {
  const auto a = from_pairs(4, {{0, 1}, {1, 2}, {2, 0}, {0, 3}});
  const auto t3 = k_truss(a, 3);
  // The pendant edge (0,3) has no triangle support; the triangle stays.
  EXPECT_EQ(t3.nnz(), 6);  // 3 undirected edges, both directions
  EXPECT_FALSE(t3.get(0, 3).has_value());
  EXPECT_TRUE(t3.get(0, 1).has_value());
}

TEST(KTruss, K4SurvivesFourTruss) {
  std::vector<std::pair<Index, Index>> edges;
  for (Index i = 0; i < 4; ++i) {
    for (Index j = i + 1; j < 4; ++j) edges.emplace_back(i, j);
  }
  const auto a = from_pairs(5, edges);
  EXPECT_EQ(k_truss(a, 4).nnz(), 12);  // K4: every edge in 2 triangles
  EXPECT_EQ(k_truss(a, 5).nnz(), 0);   // but not in 3
}

TEST(KTruss, TwoTrussIsWholeGraph) {
  const auto a = from_pairs(4, {{0, 1}, {1, 2}, {2, 0}, {0, 3}});
  EXPECT_EQ(k_truss(a, 2).nnz(), 8);  // every edge survives (support >= 0)
}

TEST(KTruss, CascadingPeel) {
  // Triangle + a second triangle sharing one edge, plus a tail: 3-truss
  // keeps both triangles, 4-truss kills everything (no edge has 2 support).
  const auto a = from_pairs(
      5, {{0, 1}, {1, 2}, {2, 0}, {1, 3}, {2, 3}, {3, 4}});
  EXPECT_EQ(k_truss(a, 3).nnz(), 10);  // 5 undirected edges survive
  EXPECT_EQ(k_truss(a, 4).nnz(), 0);
}

TEST(Jaccard, IdenticalNeighborhoodsScoreOne) {
  // 0 and 1 both point at exactly {2, 3}.
  const auto a = from_pairs(4, {{0, 2}, {0, 3}, {1, 2}, {1, 3}});
  const auto j = jaccard_similarity(a);
  EXPECT_NEAR(j.get(0, 1).value(), 1.0, 1e-12);
  EXPECT_NEAR(j.get(1, 0).value(), 1.0, 1e-12);
}

TEST(Jaccard, PartialOverlap) {
  // N(0) = {2,3}, N(1) = {3,4}: J = 1/3.
  const auto a = from_pairs(5, {{0, 2}, {0, 3}, {1, 3}, {1, 4}});
  EXPECT_NEAR(jaccard_similarity(a).get(0, 1).value(), 1.0 / 3, 1e-12);
}

TEST(Jaccard, NoOverlapNoEntry) {
  const auto a = from_pairs(4, {{0, 2}, {1, 3}});
  const auto j = jaccard_similarity(a);
  EXPECT_FALSE(j.get(0, 1).has_value());
}

TEST(Jaccard, ScoresBounded) {
  const auto edges = util::rmat_edges({.scale = 7, .edge_factor = 4, .seed = 2});
  std::vector<sparse::Triple<double>> t;
  for (const auto& e : edges) t.push_back({e.src, e.dst, 1.0});
  const auto a = sparse::Matrix<double>::from_triples<S>(128, 128, std::move(t));
  for (const auto& tr : jaccard_similarity(a).to_triples()) {
    EXPECT_GT(tr.val, 0.0);
    EXPECT_LE(tr.val, 1.0);
  }
}

}  // namespace
