// Unit tests for the COO build format.

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "semiring/arithmetic.hpp"
#include "semiring/tropical.hpp"
#include "sparse/coo.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using namespace hyperspace;
using sparse::Coo;
using sparse::Triple;

TEST(Coo, PushAccumulatesUnsorted) {
  Coo<double> c(4, 4);
  c.push(3, 1, 1.0);
  c.push(0, 2, 2.0);
  EXPECT_EQ(c.nnz(), 2);
  EXPECT_FALSE(c.sorted());
}

TEST(Coo, SortCombineSumsDuplicates) {
  Coo<double> c(4, 4);
  c.push(1, 1, 2.0);
  c.push(0, 0, 1.0);
  c.push(1, 1, 3.0);
  c.sort_combine<semiring::PlusTimes<double>>();
  ASSERT_EQ(c.nnz(), 2);
  EXPECT_EQ(c.triples()[0], (Triple<double>{0, 0, 1.0}));
  EXPECT_EQ(c.triples()[1], (Triple<double>{1, 1, 5.0}));
  EXPECT_TRUE(c.sorted());
}

TEST(Coo, SortCombineRespectsSemiring) {
  // Over min.+, duplicate edges keep the minimum weight.
  Coo<double> c(2, 2);
  c.push(0, 1, 7.0);
  c.push(0, 1, 3.0);
  c.sort_combine<semiring::MinPlus<double>>();
  ASSERT_EQ(c.nnz(), 1);
  EXPECT_DOUBLE_EQ(c.triples()[0].val, 3.0);
}

TEST(Coo, SortCombineWithCustomCombiner) {
  // "Last wins" upsert semantics.
  Coo<double> c(2, 2);
  c.push(0, 0, 1.0);
  c.push(0, 0, 9.0);
  c.sort_combine_with([](const double&, const double& b) { return b; });
  ASSERT_EQ(c.nnz(), 1);
  EXPECT_DOUBLE_EQ(c.triples()[0].val, 9.0);
}

TEST(Coo, StableOrderForCustomCombiner) {
  // stable_sort guarantees duplicates arrive at the combiner in insertion
  // order, which "last wins" semantics depend on.
  Coo<int> c(1, 1);
  for (int i = 0; i < 20; ++i) c.push(0, 0, i);
  c.sort_combine_with([](int, int b) { return b; });
  EXPECT_EQ(c.triples()[0].val, 19);
}

TEST(Coo, EmptySortIsFine) {
  Coo<double> c(3, 3);
  c.sort_combine<semiring::PlusTimes<double>>();
  EXPECT_EQ(c.nnz(), 0);
  EXPECT_TRUE(c.sorted());
}

TEST(Coo, BytesGrowWithEntries) {
  Coo<double> a(10, 10), b(10, 10);
  for (int i = 0; i < 100; ++i) b.push(i % 10, (i * 3) % 10, 1.0);
  EXPECT_GT(b.bytes(), a.bytes());
}

// --------------------------------------------------------------------------
// Parallel sort_combine: large inputs exercise the parallel stable sort +
// chunked group fold, which must be bit-identical at every thread count.

using hyperspace::testing::ThreadGuard;

Coo<double> big_random_coo(std::size_t m, std::uint64_t seed) {
  hyperspace::util::Xoshiro256 rng(seed);
  Coo<double> c(1000, 1000);
  for (std::size_t i = 0; i < m; ++i) {
    // ~8 duplicates per position on average, in random arrival order.
    c.push(static_cast<sparse::Index>(rng.bounded(100)),
           static_cast<sparse::Index>(rng.bounded(100)),
           rng.uniform(-1.0, 1.0));
  }
  return c;
}

TEST(Coo, ParallelSortCombineIsThreadCountInvariant) {
  std::vector<std::vector<Triple<double>>> results;
  for (const int nt : {1, 2, 8}) {
    ThreadGuard guard(nt);
    auto c = big_random_coo(80000, 5);
    c.sort_combine<semiring::PlusTimes<double>>();
    EXPECT_TRUE(c.sorted());
    results.push_back(c.triples());
  }
  EXPECT_EQ(results[0], results[1]);  // bitwise, float ⊕ included
  EXPECT_EQ(results[0], results[2]);
}

TEST(Coo, ParallelLastWinsKeepsInsertionOrder) {
  // "Last wins" depends on stable sort + left-to-right group folds; a group
  // spanning many chunks must still resolve to the latest insertion.
  for (const int nt : {1, 8}) {
    ThreadGuard guard(nt);
    Coo<int> c(4, 4);
    const int n = 100000;
    for (int i = 0; i < n; ++i) c.push(i % 2, 0, i);
    c.sort_combine_with([](int, int b) { return b; });
    ASSERT_EQ(c.nnz(), 2);
    EXPECT_EQ(c.triples()[0].val, n - 2);  // last even i
    EXPECT_EQ(c.triples()[1].val, n - 1);  // last odd i
  }
}

TEST(Coo, ParallelSingleGiantGroup) {
  // All entries share one (row, col): the group spans every chunk and must
  // fold exactly once, in insertion order.
  ThreadGuard guard(8);
  Coo<double> c(1, 1);
  const int n = 50000;
  for (int i = 0; i < n; ++i) c.push(0, 0, 1.0);
  c.sort_combine<semiring::PlusTimes<double>>();
  ASSERT_EQ(c.nnz(), 1);
  EXPECT_DOUBLE_EQ(c.triples()[0].val, static_cast<double>(n));
}

}  // namespace
