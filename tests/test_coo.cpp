// Unit tests for the COO build format.

#include <gtest/gtest.h>

#include "semiring/arithmetic.hpp"
#include "semiring/tropical.hpp"
#include "sparse/coo.hpp"

namespace {

using namespace hyperspace;
using sparse::Coo;
using sparse::Triple;

TEST(Coo, PushAccumulatesUnsorted) {
  Coo<double> c(4, 4);
  c.push(3, 1, 1.0);
  c.push(0, 2, 2.0);
  EXPECT_EQ(c.nnz(), 2);
  EXPECT_FALSE(c.sorted());
}

TEST(Coo, SortCombineSumsDuplicates) {
  Coo<double> c(4, 4);
  c.push(1, 1, 2.0);
  c.push(0, 0, 1.0);
  c.push(1, 1, 3.0);
  c.sort_combine<semiring::PlusTimes<double>>();
  ASSERT_EQ(c.nnz(), 2);
  EXPECT_EQ(c.triples()[0], (Triple<double>{0, 0, 1.0}));
  EXPECT_EQ(c.triples()[1], (Triple<double>{1, 1, 5.0}));
  EXPECT_TRUE(c.sorted());
}

TEST(Coo, SortCombineRespectsSemiring) {
  // Over min.+, duplicate edges keep the minimum weight.
  Coo<double> c(2, 2);
  c.push(0, 1, 7.0);
  c.push(0, 1, 3.0);
  c.sort_combine<semiring::MinPlus<double>>();
  ASSERT_EQ(c.nnz(), 1);
  EXPECT_DOUBLE_EQ(c.triples()[0].val, 3.0);
}

TEST(Coo, SortCombineWithCustomCombiner) {
  // "Last wins" upsert semantics.
  Coo<double> c(2, 2);
  c.push(0, 0, 1.0);
  c.push(0, 0, 9.0);
  c.sort_combine_with([](const double&, const double& b) { return b; });
  ASSERT_EQ(c.nnz(), 1);
  EXPECT_DOUBLE_EQ(c.triples()[0].val, 9.0);
}

TEST(Coo, StableOrderForCustomCombiner) {
  // stable_sort guarantees duplicates arrive at the combiner in insertion
  // order, which "last wins" semantics depend on.
  Coo<int> c(1, 1);
  for (int i = 0; i < 20; ++i) c.push(0, 0, i);
  c.sort_combine_with([](int, int b) { return b; });
  EXPECT_EQ(c.triples()[0].val, 19);
}

TEST(Coo, EmptySortIsFine) {
  Coo<double> c(3, 3);
  c.sort_combine<semiring::PlusTimes<double>>();
  EXPECT_EQ(c.nnz(), 0);
  EXPECT_TRUE(c.sorted());
}

TEST(Coo, BytesGrowWithEntries) {
  Coo<double> a(10, 10), b(10, 10);
  for (int i = 0; i < 100; ++i) b.push(i % 10, (i * 3) % 10, 1.0);
  EXPECT_GT(b.bytes(), a.bytes());
}

}  // namespace
