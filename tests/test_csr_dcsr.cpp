// Unit tests for CSR and DCSR (hypersparse) storage.

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "sparse/csr.hpp"
#include "sparse/dcsr.hpp"
#include "util/rng.hpp"

namespace {

using namespace hyperspace::sparse;
using hyperspace::testing::ThreadGuard;

std::vector<Triple<double>> sample_triples() {
  return {{0, 1, 1.0}, {0, 3, 2.0}, {2, 0, 3.0}, {2, 2, 4.0}, {3, 3, 5.0}};
}

TEST(Csr, BuildFromSortedTriples) {
  Csr<double> m(4, 4, sample_triples());
  EXPECT_EQ(m.nrows(), 4);
  EXPECT_EQ(m.ncols(), 4);
  EXPECT_EQ(m.nnz(), 5);
  EXPECT_EQ(m.row_ptr(), (std::vector<Index>{0, 2, 2, 4, 5}));
  EXPECT_EQ(m.cols(), (std::vector<Index>{1, 3, 0, 2, 3}));
}

TEST(Csr, NonEmptyRowCountSkipsEmptyRows) {
  Csr<double> m(4, 4, sample_triples());
  EXPECT_EQ(m.n_nonempty_rows(), 3);  // row 1 is empty
}

TEST(Csr, ViewExposesAllRows) {
  Csr<double> m(4, 4, sample_triples());
  const auto v = m.view();
  EXPECT_EQ(v.row_ids.size(), 4u);
  EXPECT_EQ(v.nnz(), 5);
  EXPECT_EQ(v.row_cols(0).size(), 2u);
  EXPECT_EQ(v.row_cols(1).size(), 0u);
  EXPECT_DOUBLE_EQ(v.row_vals(2)[1], 4.0);
}

TEST(Csr, EmptyMatrix) {
  Csr<double> m(5, 7);
  EXPECT_EQ(m.nnz(), 0);
  EXPECT_EQ(m.view().row_ids.size(), 5u);
}

TEST(Dcsr, StoresOnlyNonEmptyRows) {
  Dcsr<double> m(4, 4, sample_triples());
  EXPECT_EQ(m.nnz(), 5);
  EXPECT_EQ(m.row_ids(), (std::vector<Index>{0, 2, 3}));
  EXPECT_EQ(m.row_ptr(), (std::vector<Index>{0, 2, 4, 5}));
}

TEST(Dcsr, ViewMatchesStorage) {
  Dcsr<double> m(4, 4, sample_triples());
  const auto v = m.view();
  EXPECT_EQ(v.row_ids.size(), 3u);
  EXPECT_EQ(v.row_ids[1], 2);
  EXPECT_EQ(v.row_cols(1)[0], 0);
}

TEST(Dcsr, HugeDimensionCostsNothing) {
  // The defining hypersparse property: storage independent of nrows.
  const Index huge = Index{1} << 50;
  std::vector<Triple<double>> t = {{Index{1} << 40, 7, 1.0},
                                   {Index{1} << 49, 3, 2.0}};
  Dcsr<double> m(huge, huge, t);
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_EQ(m.n_nonempty_rows(), 2);
  EXPECT_LT(m.bytes(), 4096u);
}

TEST(Dcsr, BytesScaleWithNnzNotDimension) {
  std::vector<Triple<double>> small_dim, huge_dim;
  for (Index i = 0; i < 100; ++i) {
    small_dim.push_back({i, i, 1.0});
    huge_dim.push_back({i * (Index{1} << 40), i, 1.0});
  }
  Dcsr<double> a(128, 128, small_dim);
  Dcsr<double> b(Index{1} << 50, 128, huge_dim);
  // Equal nnz and non-empty-row counts: storage must be identical.
  EXPECT_EQ(a.bytes(), b.bytes());
}

TEST(CsrVsDcsr, SameLogicalContent) {
  const auto t = sample_triples();
  Csr<double> c(4, 4, t);
  Dcsr<double> d(4, 4, t);
  EXPECT_EQ(c.nnz(), d.nnz());
  const auto vc = c.view();
  const auto vd = d.view();
  // Every non-empty CSR row appears identically in the DCSR view.
  std::size_t di = 0;
  for (std::size_t ci = 0; ci < vc.row_ids.size(); ++ci) {
    if (vc.row_cols(ci).empty()) continue;
    ASSERT_LT(di, vd.row_ids.size());
    EXPECT_EQ(vd.row_ids[di], vc.row_ids[ci]);
    ASSERT_EQ(vd.row_cols(di).size(), vc.row_cols(ci).size());
    for (std::size_t j = 0; j < vc.row_cols(ci).size(); ++j) {
      EXPECT_EQ(vd.row_cols(di)[j], vc.row_cols(ci)[j]);
      EXPECT_DOUBLE_EQ(vd.row_vals(di)[j], vc.row_vals(ci)[j]);
    }
    ++di;
  }
  EXPECT_EQ(di, vd.row_ids.size());
}

TEST(Csr, AssembleFromParts) {
  Csr<double> m(2, 3, {0, 1, 3}, {2, 0, 1}, {9.0, 8.0, 7.0});
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_EQ(m.view().row_cols(1)[1], 1);
}

// --------------------------------------------------------------------------
// Parallel DCSR assembly: the triple ctor's row-id discovery runs as
// per-chunk scans folded in chunk order, so the built arrays must be
// bit-identical at every thread count — including rows that straddle chunk
// boundaries (the chunk grain is 2^14 entries).

std::vector<Triple<double>> big_sorted_triples(std::size_t n,
                                               std::uint64_t seed) {
  hyperspace::util::Xoshiro256 rng(seed);
  std::vector<Triple<double>> t;
  t.reserve(n);
  Index row = 0;
  Index col = 0;
  for (std::size_t i = 0; i < n; ++i) {
    // Long runs keep many rows straddling the 2^14-entry chunk boundary.
    if (rng.bounded(100) < 3) {
      row += 1 + static_cast<Index>(rng.bounded(Index{1} << 30));
      col = 0;
    }
    col += 1 + static_cast<Index>(rng.bounded(16));
    t.push_back({row, col, rng.uniform(-1.0, 1.0)});
  }
  return t;
}

TEST(Dcsr, ParallelBuildBitIdenticalAtAnyThreadCount) {
  const auto t = big_sorted_triples(90'000, 7);  // ~6 chunks
  const Index dim = Index{1} << 50;
  std::vector<Index> ref_ids, ref_ptr, ref_cols;
  std::vector<double> ref_vals;
  {
    ThreadGuard guard(1);
    Dcsr<double> d(dim, dim, t);
    ref_ids = d.row_ids();
    ref_ptr = d.row_ptr();
    ref_cols = d.cols();
    ref_vals = d.vals();
  }
  EXPECT_EQ(ref_ptr.back(), static_cast<Index>(t.size()));
  for (const int nt : {2, 8}) {
    ThreadGuard guard(nt);
    Dcsr<double> d(dim, dim, t);
    EXPECT_EQ(d.row_ids(), ref_ids) << "threads=" << nt;
    EXPECT_EQ(d.row_ptr(), ref_ptr) << "threads=" << nt;
    EXPECT_EQ(d.cols(), ref_cols) << "threads=" << nt;
    EXPECT_EQ(d.vals(), ref_vals) << "threads=" << nt;
  }
}

TEST(Dcsr, ParallelBuildMergesRowsAcrossChunkBoundaries) {
  // One giant row spanning several chunks plus neighbors: the per-chunk
  // fold must merge the straddling row, not duplicate it.
  std::vector<Triple<double>> t;
  t.push_back({2, 0, 1.0});
  for (Index i = 0; i < (Index{1} << 15) + 37; ++i) {
    t.push_back({5, i, static_cast<double>(i)});
  }
  t.push_back({9, 1, 2.0});
  for (const int nt : {1, 8}) {
    ThreadGuard guard(nt);
    Dcsr<double> d(16, Index{1} << 16, t);
    EXPECT_EQ(d.row_ids(), (std::vector<Index>{2, 5, 9}));
    EXPECT_EQ(d.row_ptr(),
              (std::vector<Index>{0, 1, 1 + (Index{1} << 15) + 37,
                                  2 + (Index{1} << 15) + 37}));
  }
}

}  // namespace
