// Tests for the §V-B database layer: the semilink select expression
// |((A ∪.∩ I(k)) ∩ v) ∪.∩ 1|₀ ∩ A, the AssocTable wrapper, and the Fig 6
// worked example.

#include <gtest/gtest.h>

#include "db/select.hpp"
#include "db/table.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::db;
using array::Key;
using array::KeySet;

SetArray demo_array() {
  // The Fig 6 traffic table:
  //   001 | 1.1.1.1 http 0.0.0.0
  //   002 | 0.0.0.0 udp  1.1.1.1
  //   003 | 1.1.1.1 ssh  2.2.2.2
  // with value ids: 0=1.1.1.1, 1=0.0.0.0, 2=2.2.2.2, 10=http, 11=udp, 12=ssh.
  return SetArray::from_entries({
      {Key("001"), Key("src"), semiring::ValueSet{0}},
      {Key("001"), Key("link"), semiring::ValueSet{10}},
      {Key("001"), Key("dest"), semiring::ValueSet{1}},
      {Key("002"), Key("src"), semiring::ValueSet{1}},
      {Key("002"), Key("link"), semiring::ValueSet{11}},
      {Key("002"), Key("dest"), semiring::ValueSet{0}},
      {Key("003"), Key("src"), semiring::ValueSet{0}},
      {Key("003"), Key("link"), semiring::ValueSet{12}},
      {Key("003"), Key("dest"), semiring::ValueSet{2}},
  });
}

TEST(SemilinkSelect, SelectsMatchingRows) {
  // WHERE src = 1.1.1.1 (id 0) ⇒ rows 001 and 003, all columns.
  const auto rows = semilink_select(demo_array(), Key("src"), 0);
  EXPECT_EQ(rows.nnz(), 6);  // two full rows of three cells
  EXPECT_TRUE(rows.get(Key("001"), Key("dest")).has_value());
  EXPECT_TRUE(rows.get(Key("003"), Key("link")).has_value());
  EXPECT_FALSE(rows.get(Key("002"), Key("src")).has_value());
}

TEST(SemilinkSelect, PreservesCellValues) {
  const auto rows = semilink_select(demo_array(), Key("src"), 0);
  EXPECT_EQ(rows.get(Key("001"), Key("dest")), (semiring::ValueSet{1}));
  EXPECT_EQ(rows.get(Key("003"), Key("dest")), (semiring::ValueSet{2}));
}

TEST(SemilinkSelect, AgreesWithDirectScan) {
  const auto a = demo_array();
  for (const auto col : {Key("src"), Key("link"), Key("dest")}) {
    for (semiring::ValueSet::element v = 0; v <= 12; ++v) {
      EXPECT_EQ(semilink_select(a, col, v), direct_select(a, col, v))
          << "col=" << col << " v=" << v;
    }
  }
}

TEST(SemilinkSelect, NoMatchesGivesEmptyArray) {
  EXPECT_TRUE(semilink_select(demo_array(), Key("src"), 999).empty());
  EXPECT_TRUE(semilink_select(demo_array(), Key("nosuchcol"), 0).empty());
}

TEST(SemilinkSelect, MultiValuedCellsMatchAnyElement) {
  // A cell holding {1, 2} matches a select on 1 and on 2.
  const auto a = SetArray::from_entries({
      {Key("r1"), Key("tags"), semiring::ValueSet{1, 2}},
      {Key("r1"), Key("name"), semiring::ValueSet{7}},
      {Key("r2"), Key("tags"), semiring::ValueSet{3}},
  });
  EXPECT_EQ(semilink_select(a, Key("tags"), 1).nnz(), 2);
  EXPECT_EQ(semilink_select(a, Key("tags"), 2).nnz(), 2);
  EXPECT_EQ(semilink_select(a, Key("tags"), 3).nnz(), 1);
}

TEST(ColumnSelector, IsOneEntryIdentity) {
  const auto sel = column_selector(Key("src"));
  EXPECT_EQ(sel.nnz(), 1);
  EXPECT_EQ(sel.get(Key("src"), Key("src")), semiring::ValueSet::all());
}

TEST(Dictionary, InternIsIdempotent) {
  Dictionary d;
  const auto a = d.intern("http");
  const auto b = d.intern("udp");
  EXPECT_EQ(d.intern("http"), a);
  EXPECT_NE(a, b);
  EXPECT_EQ(d.at(a), "http");
  EXPECT_EQ(d.find("udp"), b);
  EXPECT_EQ(d.find("never"), std::nullopt);
  EXPECT_EQ(d.size(), 2u);
}

TEST(AssocTable, InsertAndSelect) {
  AssocTable t;
  t.insert({{"src", "1.1.1.1"}, {"link", "http"}, {"dest", "0.0.0.0"}});
  t.insert({{"src", "0.0.0.0"}, {"link", "udp"}, {"dest", "1.1.1.1"}});
  t.insert({{"src", "1.1.1.1"}, {"link", "ssh"}, {"dest", "2.2.2.2"}});
  EXPECT_EQ(t.size(), 3u);
  const auto dests = t.select_values("src", "1.1.1.1", "dest");
  EXPECT_EQ(dests, (std::vector<std::string>{"0.0.0.0", "2.2.2.2"}));
}

TEST(AssocTable, SemilinkAndDirectSelectAgree) {
  AssocTable t;
  t.insert({{"a", "x"}, {"b", "y"}});
  t.insert({{"a", "x"}, {"b", "z"}});
  t.insert({{"a", "w"}, {"b", "y"}});
  EXPECT_EQ(t.select_semilink("a", "x"), t.select_direct("a", "x"));
  EXPECT_EQ(t.select_semilink("b", "y"), t.select_direct("b", "y"));
}

TEST(AssocTable, SelectUnknownValueIsEmpty) {
  AssocTable t;
  t.insert({{"a", "x"}});
  EXPECT_TRUE(t.select_semilink("a", "nope").empty());
  EXPECT_TRUE(t.select_values("a", "nope", "a").empty());
}

TEST(AssocTable, ExplicitRowKeys) {
  AssocTable t;
  t.insert(array::Key("row-alpha"), {{"f", "1"}});
  const auto& arr = t.array();
  EXPECT_TRUE(arr.get(Key("row-alpha"), Key("f")).has_value());
}

TEST(AssocTable, SharedDictionaryAcrossTables) {
  auto dict = std::make_shared<Dictionary>();
  AssocTable t1(dict), t2(dict);
  t1.insert({{"f", "shared"}});
  t2.insert({{"g", "shared"}});
  EXPECT_EQ(dict->size(), 1u);  // one interned string
}

}  // namespace
