// Tests for live mutation: DeltaBase (immutable main + last-wins delta,
// epoch-versioned snapshots, compaction) and its threading through the
// unified serve::Service interface (Executor and Router).
//
// The contract under test is the PR's acceptance bar: at EVERY epoch,
// results served against main ⊕ delta are bit-identical — float bits
// included — to a from-scratch rebuild of the base with the same
// mutations applied, for every semiring family, strategy, thread count,
// sharded and unsharded, sync and async. Compaction changes the
// representation, never a result, and a reader holding an old snapshot
// keeps getting the old epoch's answers while new epochs publish.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "helpers.hpp"
#include "semiring/all.hpp"
#include "serve/router.hpp"
#include "serve/service.hpp"
#include "sparse/delta.hpp"
#include "util/rng.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::sparse;
using hyperspace::testing::ThreadGuard;
using S = semiring::PlusTimes<double>;

template <semiring::Semiring Sr, typename Gen>
Matrix<typename Sr::value_type> random_matrix(Index nrows, Index ncols,
                                              int nnz, std::uint64_t seed,
                                              Gen&& entry) {
  util::Xoshiro256 rng(seed);
  std::vector<Triple<typename Sr::value_type>> t;
  for (int i = 0; i < nnz; ++i) {
    t.push_back({static_cast<Index>(rng.bounded(
                     static_cast<std::uint64_t>(nrows))),
                 static_cast<Index>(rng.bounded(
                     static_cast<std::uint64_t>(ncols))),
                 entry(rng)});
  }
  return Matrix<typename Sr::value_type>::template from_triples<Sr>(
      nrows, ncols, std::move(t));
}

double dbl_entry(util::Xoshiro256& r) { return r.uniform(0.5, 1.5); }

/// The trusted reference: base content as a map, mutations applied in
/// order (last write per key wins, erase removes), rebuilt from scratch.
template <typename T>
struct RefModel {
  Index nrows, ncols;
  std::map<std::pair<Index, Index>, T> cells;

  explicit RefModel(const Matrix<T>& base)
      : nrows(base.nrows()), ncols(base.ncols()) {
    for (const auto& t : base.to_triples()) cells[{t.row, t.col}] = t.val;
  }

  void grow(Index r, Index c) {
    nrows = std::max(nrows, r);
    ncols = std::max(ncols, c);
  }

  void apply(const UpdateBatch<T>& ops) {
    for (const auto& op : ops) {
      if (op.erase) {
        cells.erase({op.row, op.col});
      } else {
        cells[{op.row, op.col}] = op.val;
      }
    }
  }

  Matrix<T> rebuild(const T& zero) const {
    std::vector<Triple<T>> t;
    t.reserve(cells.size());
    for (const auto& [rc, v] : cells) t.push_back({rc.first, rc.second, v});
    return Matrix<T>::from_unique_triples(nrows, ncols, std::move(t), zero);
  }
};

/// A mutation batch with intra-batch key collisions (last-wins must
/// resolve within ONE batch too), erases of present and absent keys, and
/// assigns to fresh and existing keys.
template <typename T, typename Gen>
UpdateBatch<T> random_ops(const RefModel<T>& ref, util::Xoshiro256& rng,
                          int count, Gen&& entry) {
  UpdateBatch<T> ops;
  std::vector<std::pair<Index, Index>> present;
  present.reserve(ref.cells.size());
  for (const auto& [rc, _] : ref.cells) present.push_back(rc);
  for (int i = 0; i < count; ++i) {
    const auto kind = rng.bounded(8);
    if (kind < 2 && !present.empty()) {
      // erase a present key (tombstone that must drop a real entry)
      const auto& rc = present[rng.bounded(present.size())];
      ops.push_back(Update<T>::erased(rc.first, rc.second));
    } else if (kind == 2) {
      // erase a (probably) absent key — must be a no-op in the result
      ops.push_back(Update<T>::erased(
          static_cast<Index>(rng.bounded(
              static_cast<std::uint64_t>(ref.nrows))),
          static_cast<Index>(rng.bounded(
              static_cast<std::uint64_t>(ref.ncols)))));
    } else if (kind == 3 && !present.empty()) {
      // overwrite a present key
      const auto& rc = present[rng.bounded(present.size())];
      ops.push_back(Update<T>::assign(rc.first, rc.second, entry(rng)));
    } else {
      ops.push_back(Update<T>::assign(
          static_cast<Index>(rng.bounded(
              static_cast<std::uint64_t>(ref.nrows))),
          static_cast<Index>(rng.bounded(
              static_cast<std::uint64_t>(ref.ncols))),
          entry(rng)));
    }
    if (i % 7 == 6 && !ops.empty()) {
      // repeat the previous key with a new op: intra-batch last-wins
      auto prev = ops.back();
      ops.push_back(prev.erase ? Update<T>::assign(prev.row, prev.col,
                                                   entry(rng))
                               : Update<T>::erased(prev.row, prev.col));
    }
  }
  return ops;
}

/// Query mix against an n×n base: analytic, masked (both senses), select,
/// empty lhs.
template <semiring::Semiring Sr, typename Gen>
std::vector<serve::Query<Sr>> query_mix(Index n, std::uint64_t seed,
                                        Gen&& entry) {
  using Q = serve::Query<Sr>;
  std::vector<Q> qs;
  qs.push_back(Q::analytic(random_matrix<Sr>(5, n, 30, seed + 1, entry)));
  qs.push_back(Q::masked(random_matrix<Sr>(4, n, 24, seed + 2, entry),
                         random_matrix<Sr>(4, n, 40, seed + 3, entry)));
  qs.push_back(Q::masked(random_matrix<Sr>(3, n, 16, seed + 4, entry),
                         random_matrix<Sr>(3, n, 16, seed + 5, entry),
                         {.complement = true}));
  qs.push_back(Q::select({0, n / 3, n - 1}, n));
  qs.push_back(Q::analytic(random_matrix<Sr>(2, n, 0, seed + 6, entry)));
  return qs;
}

// ---- DeltaBase unit behavior ---------------------------------------------

TEST(DeltaBase, MutateAssignEraseResurrect) {
  auto base = Matrix<double>::from_triples<S>(
      6, 6, {{0, 0, 1.0}, {2, 3, 2.0}, {5, 5, 3.0}});
  DeltaBase<S> db(base);
  EXPECT_EQ(db.epoch(), 0u);
  EXPECT_EQ(db.snapshot()->materialize(), base);

  db.mutate({Update<double>::assign(1, 1, 9.0)});       // insert
  db.mutate({Update<double>::assign(2, 3, 8.0)});       // update
  db.mutate({Update<double>::erased(5, 5)});            // delete
  db.mutate({Update<double>::erased(0, 5)});            // delete absent
  EXPECT_EQ(db.epoch(), 4u);

  const auto want = Matrix<double>::from_triples<S>(
      6, 6, {{0, 0, 1.0}, {1, 1, 9.0}, {2, 3, 8.0}});
  EXPECT_EQ(db.snapshot()->materialize(), want);

  db.mutate({Update<double>::assign(5, 5, 4.0)});       // resurrect
  EXPECT_EQ(db.snapshot()->materialize().get(5, 5), 4.0);
  EXPECT_EQ(db.epoch(), 5u);
}

TEST(DeltaBase, IntraBatchLastWins) {
  auto base = Matrix<double>::from_triples<S>(4, 4, {{0, 0, 1.0}});
  DeltaBase<S> db(base);
  // One batch, three writes to one key: only the last survives.
  db.mutate({Update<double>::assign(0, 0, 2.0),
             Update<double>::erased(0, 0),
             Update<double>::assign(0, 0, 7.0)});
  EXPECT_EQ(db.epoch(), 1u);
  EXPECT_EQ(db.snapshot()->materialize().get(0, 0), 7.0);
  // And ending on the tombstone deletes.
  db.mutate({Update<double>::assign(1, 1, 5.0),
             Update<double>::erased(1, 1)});
  EXPECT_EQ(db.snapshot()->materialize().get(1, 1), std::nullopt);
}

TEST(DeltaBase, NegativeKeyThrowsBeforeApplying) {
  auto base = Matrix<double>::from_triples<S>(4, 4, {{0, 0, 1.0}});
  DeltaBase<S> db(base);
  // A batch with a bad key must not half-apply its good prefix.
  EXPECT_THROW(db.mutate({Update<double>::assign(1, 1, 2.0),
                          Update<double>::assign(-1, 0, 3.0)}),
               std::out_of_range);
  EXPECT_THROW(db.mutate({Update<double>::erased(0, -1)}), std::out_of_range);
  EXPECT_EQ(db.epoch(), 0u);
  EXPECT_EQ(db.snapshot()->materialize(), base);
}

// ---- key-space growth: mutations beyond the constructed shape ------------

TEST(DeltaBase, MutationBeyondShapeGrowsKeySpace) {
  auto base = Matrix<double>::from_triples<S>(4, 4, {{0, 0, 1.0}, {2, 3, 5.0}});
  DeltaBase<S> db(base);
  // One batch mixing in-shape and beyond-shape keys: no rebuild needed.
  db.mutate({Update<double>::assign(1, 1, 2.0),
             Update<double>::assign(6, 9, 7.0)});
  EXPECT_EQ(db.nrows(), 7);
  EXPECT_EQ(db.ncols(), 10);
  const auto snap = db.snapshot();
  EXPECT_EQ(snap->nrows(), 7);
  EXPECT_EQ(snap->ncols(), 10);
  // The kernel-facing view advertises the grown shape too.
  EXPECT_EQ(snap->base_view().nrows, 7);
  EXPECT_EQ(snap->base_view().ncols, 10);
  // materialize() == a from-scratch rebuild at the grown shape.
  const auto ref = Matrix<double>::from_triples<S>(
      7, 10, {{0, 0, 1.0}, {1, 1, 2.0}, {2, 3, 5.0}, {6, 9, 7.0}});
  EXPECT_EQ(snap->materialize(), ref);
  // Until compaction the grown region lives in the overlay; main still has
  // the constructed shape.
  EXPECT_EQ(snap->main->nrows(), 4);
  // The compaction swap folds growth into the new main.
  db.compact();
  EXPECT_EQ(db.main_matrix().nrows(), 7);
  EXPECT_EQ(db.main_matrix().ncols(), 10);
  EXPECT_EQ(db.snapshot()->materialize(), ref);
  // And mutations keep composing after the swap.
  db.mutate({Update<double>::erased(6, 9), Update<double>::assign(8, 2, 3.0)});
  const auto ref2 = Matrix<double>::from_triples<S>(
      9, 10, {{0, 0, 1.0}, {1, 1, 2.0}, {2, 3, 5.0}, {8, 2, 3.0}});
  EXPECT_EQ(db.snapshot()->materialize(), ref2);
}

TEST(DeltaBase, GrowthPreservesPinnedSnapshotsAndQueries) {
  auto base = Matrix<double>::from_triples<S>(3, 3, {{0, 1, 2.0}, {2, 2, 4.0}});
  DeltaBase<S> db(base);
  const auto pinned = db.snapshot();  // epoch 0, 3×3
  db.mutate({Update<double>::assign(5, 5, 9.0)});
  // The pinned reader keeps its epoch's shape and answers.
  EXPECT_EQ(pinned->nrows(), 3);
  EXPECT_EQ(pinned->materialize(), base);
  // Queries against the grown snapshot match a from-scratch rebuild.
  const auto grown = db.snapshot();
  const auto rebuild = Matrix<double>::from_triples<S>(
      6, 6, {{0, 1, 2.0}, {2, 2, 4.0}, {5, 5, 9.0}});
  auto probe = Matrix<double>::from_triples<S>(1, 6, {{0, 5, 1.0}});
  const auto q = serve::Query<S>::analytic(probe);
  const auto got = serve::run_single<S>(grown->base_view(), q);
  const auto want = serve::run_single<S>(
      sparse::detail::BaseView<double>(rebuild), q);
  EXPECT_EQ(got, want);
  EXPECT_EQ(got.get(0, 5), 9.0);
}

TEST(DeltaBase, GrowthWithBackgroundCompactionStaysConsistent) {
  // Growth must serialize with the background compactor (the frozen
  // generation and the active delta have to agree on shape); interleaving
  // growing batches with threshold-armed compactions must end bit-identical
  // to a from-scratch rebuild.
  auto base = Matrix<double>::from_triples<S>(4, 4, {{0, 0, 1.0}});
  RefModel<double> ref(base);
  DeltaBase<S> db(base, {.delta_buffer = 8,
                         .delta_fanout = 2,
                         .compact_threshold = 16,
                         .background = true});
  util::Xoshiro256 rng(77);
  Index rows = 4, cols = 4;
  for (int round = 0; round < 8; ++round) {
    UpdateBatch<double> ops;
    for (int k = 0; k < 12; ++k) {
      const auto r = static_cast<Index>(rng.bounded(static_cast<std::uint64_t>(rows) + 2));
      const auto c = static_cast<Index>(rng.bounded(static_cast<std::uint64_t>(cols) + 2));
      ops.push_back(Update<double>::assign(
          r, c, static_cast<double>(1 + rng.bounded(97))));
      rows = std::max(rows, r + 1);
      cols = std::max(cols, c + 1);
    }
    db.mutate(ops);
    ref.grow(rows, cols);
    ref.apply(ops);
  }
  db.compact();
  EXPECT_EQ(db.nrows(), rows);
  EXPECT_EQ(db.ncols(), cols);
  EXPECT_EQ(db.snapshot()->materialize(), ref.rebuild(0.0));
}

TEST(DeltaBase, CompactionChangesRepresentationNeverResults) {
  const auto base = random_matrix<S>(32, 32, 200, 11, dbl_entry);
  RefModel<double> ref(base);
  DeltaBase<S> db(base, {.delta_buffer = 8, .delta_fanout = 2});
  util::Xoshiro256 rng(12);
  for (int round = 0; round < 4; ++round) {
    const auto ops = random_ops(ref, rng, 25, dbl_entry);
    ref.apply(ops);
    db.mutate(ops);
  }
  const auto epoch_before = db.epoch();
  const auto snap_before = db.snapshot();
  const auto want = ref.rebuild(S::zero());
  EXPECT_EQ(snap_before->materialize(), want);
  EXPECT_GT(db.delta_entries(), 0u);

  db.compact();
  // Same epoch, same results; emptier representation; new main holds the
  // folded content.
  EXPECT_EQ(db.epoch(), epoch_before);
  EXPECT_EQ(db.compactions(), 1u);
  EXPECT_EQ(db.delta_entries(), 0u);
  EXPECT_EQ(db.snapshot()->materialize(), want);
  EXPECT_EQ(db.main_matrix(), want);
  EXPECT_TRUE(db.snapshot()->plain());
  // The pre-compaction snapshot a reader may still hold answers the same.
  EXPECT_EQ(snap_before->materialize(), want);
}

TEST(DeltaBase, SnapshotServesPinnedEpochForever) {
  const auto base = random_matrix<S>(24, 24, 120, 21, dbl_entry);
  RefModel<double> ref(base);
  DeltaBase<S> db(base);
  util::Xoshiro256 rng(22);

  const auto ops0 = random_ops(ref, rng, 20, dbl_entry);
  ref.apply(ops0);
  db.mutate(ops0);
  const auto pinned = db.snapshot();           // epoch 1
  const auto want_at_1 = ref.rebuild(S::zero());
  const auto q = serve::Query<S>::analytic(
      random_matrix<S>(3, 24, 18, 23, dbl_entry));
  const auto r_at_1 = serve::run_single(*pinned, q);
  EXPECT_EQ(r_at_1, serve::run_single(want_at_1, q));

  // Epochs 2..5 publish and a compaction lands; the pinned snapshot's
  // answers must not move.
  for (int e = 0; e < 4; ++e) {
    const auto ops = random_ops(ref, rng, 20, dbl_entry);
    ref.apply(ops);
    db.mutate(ops);
  }
  db.compact();
  EXPECT_EQ(pinned->epoch, 1u);
  EXPECT_EQ(serve::run_single(*pinned, q), r_at_1);
  // And the live snapshot serves the new state.
  EXPECT_EQ(db.snapshot()->materialize(), ref.rebuild(S::zero()));
}

TEST(DeltaBase, FloatBitsIdenticalToRebuild) {
  // Byte-level check: to_triples of the overlay-served product vs the
  // rebuilt-base product, doubles compared by memcmp, not ==.
  const auto base = random_matrix<S>(40, 40, 300, 31, dbl_entry);
  RefModel<double> ref(base);
  DeltaBase<S> db(base);
  util::Xoshiro256 rng(32);
  const auto ops = random_ops(ref, rng, 60, dbl_entry);
  ref.apply(ops);
  db.mutate(ops);
  const auto q = serve::Query<S>::analytic(
      random_matrix<S>(6, 40, 50, 33, dbl_entry));
  const auto got = serve::run_single(*db.snapshot(), q).to_triples();
  const auto want =
      serve::run_single(ref.rebuild(S::zero()), q).to_triples();
  ASSERT_EQ(got.size(), want.size());
  ASSERT_FALSE(got.empty());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].row, want[i].row);
    EXPECT_EQ(got[i].col, want[i].col);
    EXPECT_EQ(std::memcmp(&got[i].val, &want[i].val, sizeof(double)), 0)
        << "float bits differ at triple " << i;
  }
}

// ---- ShardMap mutation scatter -------------------------------------------

TEST(ShardMapUpdates, ScatterUpdatesRebasesRowsKeepsOrder) {
  auto base = random_matrix<S>(12, 8, 30, 41, dbl_entry);
  auto map = serve::ShardMap<double>::with_cuts(std::move(base),
                                                {0, 4, 4, 12});
  UpdateBatch<double> ops;
  ops.push_back(Update<double>::assign(0, 1, 1.0));   // shard 0, local 0
  ops.push_back(Update<double>::assign(11, 2, 2.0));  // shard 2, local 7
  ops.push_back(Update<double>::erased(4, 3));        // shard 2, local 0
  ops.push_back(Update<double>::assign(3, 0, 3.0));   // shard 0, local 3
  ops.push_back(Update<double>::erased(0, 1));        // shard 0, local 0
  const auto slices = map.scatter_updates(ops);
  ASSERT_EQ(slices.size(), 3u);
  EXPECT_TRUE(slices[1].empty());  // zero-height shard gets nothing
  ASSERT_EQ(slices[0].size(), 3u);
  ASSERT_EQ(slices[2].size(), 2u);
  // Order within a shard preserved (last-wins depends on it).
  EXPECT_EQ(slices[0][0].row, 0);
  EXPECT_FALSE(slices[0][0].erase);
  EXPECT_EQ(slices[0][1].row, 3);
  EXPECT_EQ(slices[0][2].row, 0);
  EXPECT_TRUE(slices[0][2].erase);
  // Rows rebased, cols untouched.
  EXPECT_EQ(slices[2][0].row, 7);
  EXPECT_EQ(slices[2][0].col, 2);
  EXPECT_EQ(slices[2][1].row, 0);
  EXPECT_TRUE(slices[2][1].erase);
  EXPECT_THROW(map.scatter_updates({Update<double>::assign(12, 0, 1.0)}),
               std::out_of_range);
  EXPECT_THROW(map.scatter_updates({Update<double>::assign(0, 8, 1.0)}),
               std::out_of_range);
}

// ---- the Service-level epoch sweep (the acceptance bar) ------------------

/// Drive ONE engine through E epochs of mutation↔query interleaving and
/// require bit-identity against the from-scratch rebuild at every epoch.
template <semiring::Semiring Sr, typename Gen>
void sweep_engine(serve::Service<Sr>& svc, Index n,
                  const std::vector<UpdateBatch<typename Sr::value_type>>&
                      batches,
                  const std::vector<Matrix<typename Sr::value_type>>&
                      rebuilt,
                  std::uint64_t qseed, Gen&& entry) {
  for (std::size_t e = 0; e < rebuilt.size(); ++e) {
    if (e > 0) svc.mutate(batches[e - 1]);
    const auto qs = query_mix<Sr>(n, qseed + 100 * e, entry);
    std::vector<std::size_t> tickets;
    tickets.reserve(qs.size());
    for (const auto& q : qs) tickets.push_back(svc.submit(q));
    for (std::size_t i = 0; i < qs.size(); ++i) {
      EXPECT_EQ(svc.wait(tickets[i]), serve::run_single(rebuilt[e], qs[i]))
          << "epoch " << e << ", query " << i;
    }
  }
}

template <semiring::Semiring Sr, typename Gen>
void epoch_bit_identity_sweep(Index n, std::uint64_t seed, Gen&& entry) {
  using T = typename Sr::value_type;
  const auto base = random_matrix<Sr>(n, n, 6 * static_cast<int>(n), seed,
                                      entry);
  // Pre-generate the epochs and their reference rebuilds once.
  RefModel<T> ref(base);
  std::vector<UpdateBatch<T>> batches;
  std::vector<Matrix<T>> rebuilt;
  rebuilt.push_back(ref.rebuild(Sr::zero()));
  util::Xoshiro256 rng(seed + 7);
  for (int e = 0; e < 4; ++e) {
    batches.push_back(random_ops(ref, rng, 30, entry));
    ref.apply(batches.back());
    rebuilt.push_back(ref.rebuild(Sr::zero()));
  }

  for (const int nt : {1, 2, 8}) {
    ThreadGuard guard(nt);
    // Unsharded executor, every strategy, tiny delta buffers (cascades).
    for (const auto strat :
         {MxmStrategy::kAuto, MxmStrategy::kGustavson, MxmStrategy::kHash,
          MxmStrategy::kSorted}) {
      serve::Executor<Sr> ex(
          base, {.strategy = strat,
                 .delta = {.delta_buffer = 16, .delta_fanout = 2}});
      sweep_engine<Sr>(ex, n, batches, rebuilt, seed + 50, entry);
    }
    // Sharded (3 uneven shards) and async variants, kAuto.
    for (const bool async : {false, true}) {
      for (const int shards : {1, 3}) {
        typename serve::Router<Sr>::Config cfg;
        cfg.executor.async = async;
        cfg.executor.flush_queue_depth = 4;
        cfg.executor.flush_interval = std::chrono::milliseconds(1);
        cfg.executor.delta = {.delta_buffer = 16, .delta_fanout = 2};
        if (shards > 1) {
          cfg.cuts = {0, n / 4, n / 2, n};  // uneven on purpose
        }
        serve::Router<Sr> router(base, cfg);
        sweep_engine<Sr>(router, n, batches, rebuilt, seed + 60, entry);
      }
    }
  }
}

TEST(DeltaServe, ArithmeticSemiringEverywhere) {
  epoch_bit_identity_sweep<S>(48, 501, dbl_entry);
}

TEST(DeltaServe, TropicalSemiringEverywhere) {
  epoch_bit_identity_sweep<semiring::MinPlus<double>>(
      48, 502, [](util::Xoshiro256& r) { return r.uniform(0.0, 10.0); });
}

TEST(DeltaServe, SetSemiringEverywhere) {
  epoch_bit_identity_sweep<semiring::UnionIntersect>(
      40, 503, [](util::Xoshiro256& r) {
        return semiring::ValueSet{static_cast<std::int64_t>(r.bounded(16)),
                                  static_cast<std::int64_t>(r.bounded(16))};
      });
}

// ---- service stats + epochs through the engines --------------------------

TEST(DeltaServe, StatsCarryMutationsAndServedEpoch) {
  const auto base = random_matrix<S>(24, 24, 120, 61, dbl_entry);
  serve::Executor<S> ex(base);
  serve::Service<S>& svc = ex;
  EXPECT_EQ(svc.epoch(), 0u);
  svc.mutate({Update<double>::assign(0, 0, 2.0)});
  const auto e2 = svc.mutate({Update<double>::assign(1, 1, 3.0)});
  EXPECT_EQ(e2, 2u);
  EXPECT_EQ(svc.epoch(), 2u);
  const auto t = svc.submit(serve::Query<S>::analytic(
      random_matrix<S>(2, 24, 10, 62, dbl_entry)));
  (void)svc.wait(t);
  const auto st = svc.stats();
  EXPECT_EQ(st.mutations, 2u);
  EXPECT_EQ(st.epoch, 2u);  // the flushed batch served epoch 2
}

TEST(DeltaServe, RouterEpochCountsLogicalBatches) {
  const auto base = random_matrix<S>(24, 24, 120, 71, dbl_entry);
  serve::Router<S> router(base, {.n_shards = 3});
  EXPECT_EQ(router.epoch(), 0u);
  // One logical batch straddling every shard: ONE router epoch.
  UpdateBatch<double> ops;
  for (Index r = 0; r < 24; r += 4) {
    ops.push_back(Update<double>::assign(r, 0, 1.0));
  }
  EXPECT_EQ(router.mutate(0u, ops), 1u);
  EXPECT_EQ(router.epoch(), 1u);
  const auto rs = router.router_stats();
  EXPECT_EQ(rs.mutations, 1u);
  EXPECT_EQ(rs.epoch, 1u);
  // A batch touching one shard still advances the logical epoch.
  EXPECT_EQ(router.mutate(0u, {Update<double>::assign(0, 1, 2.0)}), 2u);
  EXPECT_EQ(router.epoch(), 2u);
}

// ---- in-flight batches pin their epoch; liveness under churn -------------

TEST(DeltaServe, AsyncMutationQueryInterleavingStress) {
  // A mutator thread publishes epochs (with background compaction armed at
  // a tiny threshold) while query threads submit against the async
  // executor. Every answer must match the rebuild at SOME epoch in the
  // mutation order — each batch serves exactly the epoch it pinned.
  const Index n = 32;
  const auto base = random_matrix<S>(n, n, 160, 81, dbl_entry);
  RefModel<double> ref(base);
  constexpr int kEpochs = 24;
  std::vector<UpdateBatch<double>> batches;
  std::vector<Matrix<double>> rebuilt;
  rebuilt.push_back(ref.rebuild(S::zero()));
  util::Xoshiro256 rng(82);
  for (int e = 0; e < kEpochs; ++e) {
    batches.push_back(random_ops(ref, rng, 20, dbl_entry));
    ref.apply(batches.back());
    rebuilt.push_back(ref.rebuild(S::zero()));
  }

  serve::Executor<S> ex(
      base, {.async = true,
             .flush_queue_depth = 4,
             .flush_interval = std::chrono::milliseconds(1),
             .delta = {.delta_buffer = 16,
                       .delta_fanout = 2,
                       .compact_threshold = 32,
                       .background = true}});
  serve::Service<S>& svc = ex;

  const auto q =
      serve::Query<S>::analytic(random_matrix<S>(3, n, 20, 83, dbl_entry));
  std::atomic<bool> done{false};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_relaxed)) {
        const auto t = svc.submit(q);
        const auto& got = svc.wait(t);
        bool ok = false;
        for (const auto& want : rebuilt) {
          if (got == serve::run_single(want, q)) {
            ok = true;
            break;
          }
        }
        if (!ok) mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (const auto& ops : batches) {
    svc.mutate(ops);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  done.store(true, std::memory_order_relaxed);
  for (auto& th : readers) th.join();
  EXPECT_EQ(mismatches.load(), 0);

  // Quiesced: the final epoch serves the final rebuild, compactions ran.
  svc.flush();
  const auto t = svc.submit(q);
  EXPECT_EQ(svc.wait(t), serve::run_single(rebuilt.back(), q));
  EXPECT_EQ(ex.delta_base().epoch(), static_cast<std::uint64_t>(kEpochs));
  EXPECT_GT(ex.delta_base().compactions(), 0u);
}

}  // namespace
