// Tests for the sparse DNN layer (§V-C): the two-semiring (semilink-style)
// inference must agree exactly with the standard formulation, and the
// RadiX-Net-style generator must produce the stated topology.

#include <gtest/gtest.h>

#include "dnn/inference.hpp"
#include "dnn/radixnet.hpp"
#include "semilink/dnn_link.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::dnn;

TEST(DnnLink, ReluIsS2AddWithS2One) {
  // h(y) = y ⊕₂ 1₂ = max(y, 0).
  EXPECT_EQ(semilink::relu<>(3.5), 3.5);
  EXPECT_EQ(semilink::relu<>(-2.0), 0.0);
  EXPECT_EQ(semilink::relu<>(0.0), 0.0);
}

TEST(DnnLink, BiasIsS2Mul) {
  EXPECT_EQ(semilink::bias_mul<>(3.0, -1.0), 2.0);
}

TEST(DnnLink, S2ZeroAnnihilatesAndIdentities) {
  using S2 = semilink::DnnLink::S2;
  EXPECT_EQ(S2::zero(), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(S2::one(), 0.0);
  EXPECT_EQ(S2::add(5.0, S2::zero()), 5.0);
  EXPECT_EQ(S2::mul(5.0, S2::zero()), S2::zero());
}

TEST(Network, RejectsBadShapes) {
  using S = semiring::PlusTimes<double>;
  auto w = sparse::Matrix<double>::from_triples<S>(4, 4, {{0, 0, 1.0}});
  EXPECT_THROW(Network({{w, std::vector<double>(3, 0.0)}}),
               std::invalid_argument);
  auto w2 = sparse::Matrix<double>::from_triples<S>(5, 5, {{0, 0, 1.0}});
  EXPECT_THROW(Network({{w, std::vector<double>(4, 0.0)},
                        {w2, std::vector<double>(5, 0.0)}}),
               std::invalid_argument);
}

TEST(Network, ShapeAccessors) {
  const auto net = make_radixnet({.neurons = 32, .layers = 3, .fanin = 4});
  EXPECT_EQ(net.depth(), 3u);
  EXPECT_EQ(net.n_in(), 32);
  EXPECT_EQ(net.n_out(), 32);
  EXPECT_EQ(net.total_nnz(), 3 * 32 * 4);
}

TEST(RadixNet, FixedFanInPerNeuron) {
  const auto net = make_radixnet({.neurons = 64, .layers = 2, .fanin = 8});
  for (const auto& layer : net.layers()) {
    // Every output neuron has in-degree exactly fanin: column sums of the
    // pattern are all 8.
    std::vector<int> indeg(64, 0);
    for (const auto& t : layer.weights.to_triples()) {
      ++indeg[static_cast<std::size_t>(t.col)];
    }
    for (const int d : indeg) EXPECT_EQ(d, 8);
  }
}

TEST(RadixNet, LayersDifferInStructure) {
  const auto net = make_radixnet({.neurons = 32, .layers = 3, .fanin = 4});
  EXPECT_NE(net.layer(0).weights, net.layer(1).weights);
}

TEST(StandardInference, HandComputedTinyNet) {
  // 2 inputs → 2 outputs: W = [[1, 2], [0, 1]], b = (-1, 0).
  using S = semiring::PlusTimes<double>;
  auto w = sparse::Matrix<double>::from_triples<S>(
      2, 2, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 1, 1.0}});
  const Network net({{w, {-1.0, 0.0}}});
  DenseBatch y(1, 2);
  y.at(0, 0) = 1.0;
  y.at(0, 1) = 3.0;
  const auto out = infer_standard(net, y);
  // z0 = 1*1 - 1 = 0; z1 = 1*2 + 3*1 + 0 = 5.
  EXPECT_DOUBLE_EQ(out.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(out.at(0, 1), 5.0);
}

TEST(StandardInference, ReluClampsNegative) {
  using S = semiring::PlusTimes<double>;
  auto w = sparse::Matrix<double>::from_triples<S>(1, 1, {{0, 0, 1.0}});
  const Network net({{w, {-10.0}}});
  DenseBatch y(1, 1);
  y.at(0, 0) = 2.0;
  EXPECT_DOUBLE_EQ(infer_standard(net, y).at(0, 0), 0.0);
}

class InferenceEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(InferenceEquivalence, SemilinkMatchesStandardBitwise) {
  const auto [neurons, layers, density] = GetParam();
  const auto net = make_radixnet({.neurons = neurons,
                                  .layers = layers,
                                  .fanin = 32,
                                  .weight = 1.0 / 8,
                                  .bias = -0.02});
  const auto y0 = make_sparse_features(16, neurons, density, 77);
  const auto a = infer_standard(net, y0);
  const auto b = infer_semilink(net, y0);
  ASSERT_EQ(a.data.size(), b.data.size());
  for (std::size_t i = 0; i < a.data.size(); ++i) {
    ASSERT_EQ(a.data[i], b.data[i]) << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, InferenceEquivalence,
    ::testing::Combine(::testing::Values(64, 256),
                       ::testing::Values(2, 8),
                       ::testing::Values(0.1, 0.5)));

TEST(InferenceEquivalence, RandomUnstructuredNet) {
  const auto net = make_random_net(100, 5, 0.05, 42);
  const auto y0 = make_sparse_features(8, 100, 0.3, 43);
  const auto a = infer_standard(net, y0);
  const auto b = infer_semilink(net, y0);
  EXPECT_EQ(a.data, b.data);
}

TEST(Inference, ActivityStaysAliveWithGentleBias) {
  // The challenge-style constant negative bias must not kill the signal
  // for the benchmark configuration.
  const auto net = make_radixnet({.neurons = 128,
                                  .layers = 12,
                                  .fanin = 32,
                                  .weight = 0.5,
                                  .bias = -0.001});
  const auto y0 = make_sparse_features(8, 128, 0.3, 5);
  const auto out = infer_standard(net, y0);
  EXPECT_GT(out.nnz(), 0);
}

TEST(Inference, EmptyInputStaysEmptyWithZeroBias) {
  const auto net = make_radixnet({.neurons = 32, .layers = 3, .fanin = 4,
                                  .weight = 0.25, .bias = 0.0});
  const DenseBatch y0(4, 32);  // all zeros
  EXPECT_EQ(infer_standard(net, y0).nnz(), 0);
}

TEST(Inference, PositiveBiasLightsEverything) {
  const auto net = make_radixnet({.neurons = 16, .layers = 1, .fanin = 4,
                                  .weight = 0.25, .bias = 0.5});
  const DenseBatch y0(2, 16);
  EXPECT_EQ(infer_standard(net, y0).nnz(), 2 * 16);
}

TEST(Categories, ArgmaxPerRow) {
  DenseBatch y(2, 3);
  y.at(0, 1) = 5.0;
  y.at(1, 2) = 2.0;
  y.at(1, 0) = 1.0;
  EXPECT_EQ(categories(y), (std::vector<Index>{1, 2}));
}

TEST(SparseFeatures, DensityApproximatelyRespected) {
  const auto y = make_sparse_features(10, 1000, 0.1, 3);
  // Collisions make it ≤ 0.1; should be within a factor.
  EXPECT_GT(y.nnz(), 10 * 1000 * 0.05);
  EXPECT_LE(y.nnz(), 10 * 1000 * 0.1);
}

}  // namespace
