// Unit + property tests for element-wise ⊕ (graph union) and ⊗ (graph
// intersection), Fig 5.

#include <gtest/gtest.h>

#include "semiring/all.hpp"
#include "sparse/ewise.hpp"
#include "sparse/io.hpp"
#include "util/generators.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::sparse;
using S = semiring::PlusTimes<double>;

Matrix<double> random_matrix(Index n, std::size_t m, std::uint64_t seed) {
  std::vector<Triple<double>> t;
  for (const auto& e : util::erdos_renyi_edges(n, m, seed)) {
    t.push_back({e.src, e.dst, e.weight});
  }
  return Matrix<double>::from_triples<S>(n, n, std::move(t));
}

TEST(EwiseAdd, PatternIsUnion) {
  const auto a = make_matrix<S>(3, 3, {{0, 0, 1.0}, {1, 1, 2.0}});
  const auto b = make_matrix<S>(3, 3, {{1, 1, 3.0}, {2, 2, 4.0}});
  const auto c = ewise_add<S>(a, b);
  EXPECT_EQ(c.nnz(), 3);
  EXPECT_EQ(c.get(0, 0), 1.0);   // only in a: a ⊕ 0 = a
  EXPECT_EQ(c.get(1, 1), 5.0);   // both: 2 ⊕ 3
  EXPECT_EQ(c.get(2, 2), 4.0);   // only in b
}

TEST(EwiseMult, PatternIsIntersection) {
  const auto a = make_matrix<S>(3, 3, {{0, 0, 2.0}, {1, 1, 2.0}, {1, 2, 9.0}});
  const auto b = make_matrix<S>(3, 3, {{1, 1, 3.0}, {2, 2, 4.0}});
  const auto c = ewise_mult<S>(a, b);
  EXPECT_EQ(c.nnz(), 1);
  EXPECT_EQ(c.get(1, 1), 6.0);
}

TEST(EwiseAdd, EmptyOperandIsIdentity) {
  const auto a = random_matrix(50, 200, 1);
  const Matrix<double> zero(50, 50);
  EXPECT_EQ(ewise_add<S>(a, zero), a);
  EXPECT_EQ(ewise_add<S>(zero, a), a);
}

TEST(EwiseMult, EmptyOperandAnnihilates) {
  const auto a = random_matrix(50, 200, 2);
  const Matrix<double> zero(50, 50);
  EXPECT_EQ(ewise_mult<S>(a, zero).nnz(), 0);
  EXPECT_EQ(ewise_mult<S>(zero, a).nnz(), 0);
}

TEST(Ewise, ShapeMismatchThrows) {
  const auto a = random_matrix(4, 4, 3);
  const Matrix<double> b(5, 4);
  EXPECT_THROW(ewise_add<S>(a, b), std::invalid_argument);
  EXPECT_THROW(ewise_mult<S>(a, b), std::invalid_argument);
}

TEST(Ewise, MixedFormatsAgree) {
  auto a = random_matrix(64, 600, 4);
  auto b = random_matrix(64, 600, 5);
  const auto expect_add = ewise_add<S>(a, b);
  const auto expect_mul = ewise_mult<S>(a, b);
  a.convert(Format::kDcsr);
  b.convert(Format::kBitmap);
  EXPECT_EQ(ewise_add<S>(a, b), expect_add);
  EXPECT_EQ(ewise_mult<S>(a, b), expect_mul);
}

TEST(Ewise, HypersparseOperands) {
  const Index huge = Index{1} << 45;
  const auto a = Matrix<double>::from_unique_triples(
      huge, huge, {{Index{1} << 20, 5, 1.0}, {Index{1} << 40, 9, 2.0}});
  const auto b = Matrix<double>::from_unique_triples(
      huge, huge, {{Index{1} << 40, 9, 10.0}});
  const auto sum = ewise_add<S>(a, b);
  const auto prod = ewise_mult<S>(a, b);
  EXPECT_EQ(sum.nnz(), 2);
  EXPECT_EQ(sum.get(Index{1} << 40, 9), 12.0);
  EXPECT_EQ(prod.nnz(), 1);
  EXPECT_EQ(prod.get(Index{1} << 40, 9), 20.0);
}

// Property sweep: ⊕ commutes, ⊗ commutes, and the identities hold, over
// several semirings and random patterns.
class EwiseProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EwiseProperties, AddCommutes) {
  const auto a = random_matrix(40, 150, GetParam());
  const auto b = random_matrix(40, 150, GetParam() + 1000);
  EXPECT_EQ(ewise_add<S>(a, b), ewise_add<S>(b, a));
}

TEST_P(EwiseProperties, MultCommutes) {
  const auto a = random_matrix(40, 150, GetParam());
  const auto b = random_matrix(40, 150, GetParam() + 1000);
  EXPECT_EQ(ewise_mult<S>(a, b), ewise_mult<S>(b, a));
}

TEST_P(EwiseProperties, AddAssociates) {
  const auto a = random_matrix(30, 100, GetParam());
  const auto b = random_matrix(30, 100, GetParam() + 1);
  const auto c = random_matrix(30, 100, GetParam() + 2);
  EXPECT_EQ(ewise_add<S>(ewise_add<S>(a, b), c),
            ewise_add<S>(a, ewise_add<S>(b, c)));
}

TEST_P(EwiseProperties, MaxPlusSemiringWorksToo) {
  using MP = semiring::MaxPlus<double>;
  const auto a = random_matrix(30, 100, GetParam());
  const auto b = random_matrix(30, 100, GetParam() + 7);
  const auto c = ewise_add<MP>(a, b);
  // max-add union: where both present, value is max.
  for (const auto& t : c.to_triples()) {
    const auto va = a.get(t.row, t.col);
    const auto vb = b.get(t.row, t.col);
    const double expect =
        va && vb ? std::max(*va, *vb) : (va ? *va : *vb);
    EXPECT_DOUBLE_EQ(t.val, expect);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EwiseProperties,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(EwiseSetSemiring, DatabaseStyleCells) {
  using U = semiring::UnionIntersect;
  using semiring::ValueSet;
  const auto a = make_matrix<U>(2, 2, {{0, 0, ValueSet{1, 2}},
                                       {1, 1, ValueSet{3}}});
  const auto b = make_matrix<U>(2, 2, {{0, 0, ValueSet{2, 4}},
                                       {0, 1, ValueSet{9}}});
  const auto uni = ewise_add<U>(a, b);
  EXPECT_EQ(uni.get(0, 0), (ValueSet{1, 2, 4}));
  const auto inter = ewise_mult<U>(a, b);
  EXPECT_EQ(inter.nnz(), 1);
  EXPECT_EQ(inter.get(0, 0), (ValueSet{2}));
}

}  // namespace
