// Tests for the D4M-style exploded schema: column|value keys, scan-free
// selects, and AᵀA facet correlation — and agreement with the §V-B
// semilink select on the same records.

#include <gtest/gtest.h>

#include "db/exploded.hpp"
#include "db/table.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::db;

ExplodedTable fig6_exploded() {
  ExplodedTable t;
  t.insert({{"src", "1.1.1.1"}, {"link", "http"}, {"dest", "0.0.0.0"}});
  t.insert({{"src", "0.0.0.0"}, {"link", "udp"}, {"dest", "1.1.1.1"}});
  t.insert({{"src", "1.1.1.1"}, {"link", "ssh"}, {"dest", "2.2.2.2"}});
  return t;
}

TEST(Exploded, KeyComposition) {
  EXPECT_EQ(ExplodedTable::exploded_key("src", "1.1.1.1"),
            array::Key("src|1.1.1.1"));
}

TEST(Exploded, OneEntryPerFieldPerRow) {
  const auto t = fig6_exploded();
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.array().nnz(), 9);  // 3 rows x 3 fields, all 0/1
  for (const auto& [r, c, v] : t.array().entries()) EXPECT_EQ(v, 1.0);
}

TEST(Exploded, SelectRowsIsColumnLookup) {
  const auto t = fig6_exploded();
  const auto rows = t.select_rows("src", "1.1.1.1");
  EXPECT_EQ(rows.size(), 2u);
  EXPECT_TRUE(rows.contains(array::Key("000001")));
  EXPECT_TRUE(rows.contains(array::Key("000003")));
}

TEST(Exploded, SelectValuesMatchesFig6) {
  const auto t = fig6_exploded();
  EXPECT_EQ(t.select_values("src", "1.1.1.1", "dest"),
            (std::vector<std::string>{"0.0.0.0", "2.2.2.2"}));
}

TEST(Exploded, AgreesWithSemilinkSelectTable) {
  // Same records through both encodings: answers must coincide.
  AssocTable dense;
  ExplodedTable exploded;
  const std::vector<Record> records = {
      {{"a", "x"}, {"b", "p"}},
      {{"a", "x"}, {"b", "q"}},
      {{"a", "y"}, {"b", "p"}},
      {{"a", "z"}, {"b", "q"}},
  };
  for (const auto& r : records) {
    dense.insert(r);
    exploded.insert(r);
  }
  for (const std::string v : {"x", "y", "z"}) {
    EXPECT_EQ(exploded.select_values("a", v, "b"),
              dense.select_values("a", v, "b"))
        << v;
  }
}

TEST(Exploded, SelectUnknownValueIsEmpty) {
  const auto t = fig6_exploded();
  EXPECT_TRUE(t.select_rows("src", "9.9.9.9").empty());
  EXPECT_TRUE(t.select("nope", "x").empty());
  EXPECT_TRUE(t.select_values("src", "9.9.9.9", "dest").empty());
}

TEST(Exploded, CorrelationCountsCooccurrence) {
  const auto t = fig6_exploded();
  // src=1.1.1.1 co-occurs with link=http once and link=ssh once.
  EXPECT_EQ(t.cooccurrence("src", "1.1.1.1", "link", "http"), 1.0);
  EXPECT_EQ(t.cooccurrence("src", "1.1.1.1", "link", "ssh"), 1.0);
  EXPECT_EQ(t.cooccurrence("src", "1.1.1.1", "link", "udp"), 0.0);
  // Diagonal counts facet frequency.
  EXPECT_EQ(t.cooccurrence("src", "1.1.1.1", "src", "1.1.1.1"), 2.0);
}

TEST(Exploded, CorrelationIsSymmetric) {
  ExplodedTable t;
  t.insert({{"u", "a"}, {"v", "b"}});
  t.insert({{"u", "a"}, {"v", "c"}});
  t.insert({{"u", "d"}, {"v", "b"}});
  const auto c = t.correlation();
  EXPECT_EQ(c, c.transpose());
  EXPECT_EQ(t.cooccurrence("u", "a", "v", "b"), 1.0);
  EXPECT_EQ(t.cooccurrence("v", "b", "u", "a"), 1.0);
}

TEST(Exploded, MultiValuedColumnsViaRepeatedInserts) {
  // Two rows sharing a tag: correlation counts both.
  ExplodedTable t;
  t.insert({{"tag", "red"}, {"name", "n1"}});
  t.insert({{"tag", "red"}, {"name", "n2"}});
  EXPECT_EQ(t.cooccurrence("tag", "red", "tag", "red"), 2.0);
  EXPECT_EQ(t.select_values("tag", "red", "name"),
            (std::vector<std::string>{"n1", "n2"}));
}

TEST(Exploded, EmptyTable) {
  ExplodedTable t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.select_rows("a", "b").empty());
  EXPECT_TRUE(t.correlation().empty());
}

}  // namespace
