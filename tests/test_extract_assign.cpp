// Tests for integer-index extract / assign (GrB_extract / GrB_assign).

#include <gtest/gtest.h>

#include "semiring/all.hpp"
#include "sparse/extract_assign.hpp"
#include "sparse/io.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::sparse;
using S = semiring::PlusTimes<double>;

Matrix<double> sample() {
  return make_matrix<S>(4, 4, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, 3.0},
                               {2, 3, 4.0}, {3, 0, 5.0}});
}

TEST(Extract, GathersSubmatrix) {
  const auto c = extract(sample(), {0, 2}, {0, 2, 3});
  EXPECT_EQ(c.nrows(), 2);
  EXPECT_EQ(c.ncols(), 3);
  EXPECT_EQ(c.get(0, 0), 1.0);   // A(0,0)
  EXPECT_EQ(c.get(0, 1), 2.0);   // A(0,2)
  EXPECT_EQ(c.get(1, 2), 4.0);   // A(2,3)
  EXPECT_EQ(c.nnz(), 3);
}

TEST(Extract, ReordersRows) {
  const auto c = extract(sample(), {3, 0}, {0});
  EXPECT_EQ(c.get(0, 0), 5.0);  // A(3,0) first
  EXPECT_EQ(c.get(1, 0), 1.0);
}

TEST(Extract, DuplicatedIndicesReplicate) {
  const auto c = extract(sample(), {0, 0}, {0, 0});
  EXPECT_EQ(c.nnz(), 4);  // A(0,0) appears at all four positions
  EXPECT_EQ(c.get(1, 1), 1.0);
}

TEST(Extract, OutOfRangeThrows) {
  EXPECT_THROW(extract(sample(), {4}, {0}), std::out_of_range);
  EXPECT_THROW(extract(sample(), {0}, {-1}), std::out_of_range);
}

TEST(Extract, EmptyListsGiveEmptyMatrix) {
  const auto c = extract(sample(), {}, {});
  EXPECT_EQ(c.nrows(), 0);
  EXPECT_EQ(c.nnz(), 0);
}

TEST(ExtractRows, AllColumnsShorthand) {
  const auto c = extract_rows(sample(), {1, 2});
  EXPECT_EQ(c.nrows(), 2);
  EXPECT_EQ(c.ncols(), 4);
  EXPECT_EQ(c.get(0, 1), 3.0);
  EXPECT_EQ(c.get(1, 3), 4.0);
}

TEST(Extract, HypersparseSource) {
  const Index huge = Index{1} << 40;
  const auto a = Matrix<double>::from_unique_triples(
      huge, huge, {{Index{1} << 39, Index{1} << 20, 9.0}});
  const auto c = extract(a, {Index{1} << 39}, {Index{1} << 20, 5});
  EXPECT_EQ(c.get(0, 0), 9.0);
  EXPECT_EQ(c.nnz(), 1);
}

TEST(Assign, ScattersIntoTarget) {
  const auto b = make_matrix<S>(2, 2, {{0, 0, 10.0}, {1, 1, 20.0}});
  const auto c = assign<S>(sample(), b, {1, 3}, {2, 3});
  EXPECT_EQ(c.get(1, 2), 10.0);
  EXPECT_EQ(c.get(3, 3), 20.0);
  EXPECT_EQ(c.get(0, 0), 1.0);  // untouched entries survive
}

TEST(Assign, CollisionsCombineWithSemiringAdd) {
  const auto b = make_matrix<S>(1, 1, {{0, 0, 100.0}});
  const auto c = assign<S>(sample(), b, {0}, {0});
  EXPECT_EQ(c.get(0, 0), 101.0);  // 1 ⊕ 100
}

TEST(Assign, MinPlusCollisionKeepsMinimum) {
  using MP = semiring::MinPlus<double>;
  const auto a = make_matrix<MP>(2, 2, {{0, 0, 5.0}});
  const auto b = make_matrix<MP>(1, 1, {{0, 0, 3.0}});
  const auto c = assign<MP>(a, b, {0}, {0});
  EXPECT_EQ(c.get(0, 0), 3.0);
}

TEST(Assign, ShapeMismatchThrows) {
  const auto b = make_matrix<S>(2, 2, {{0, 0, 1.0}});
  EXPECT_THROW(assign<S>(sample(), b, {0}, {0, 1}), std::invalid_argument);
  EXPECT_THROW(assign<S>(sample(), b, {0, 9}, {0, 1}), std::out_of_range);
}

TEST(ExtractAssign, RoundTrip) {
  // Extracting then assigning back into an empty matrix restores the block.
  const auto a = sample();
  const std::vector<Index> rows = {0, 1}, cols = {0, 1, 2};
  const auto block = extract(a, rows, cols);
  const Matrix<double> empty(4, 4);
  const auto restored = assign<S>(empty, block, rows, cols);
  for (const Index r : rows) {
    for (const Index c : cols) {
      EXPECT_EQ(restored.get(r, c), a.get(r, c)) << r << "," << c;
    }
  }
}

}  // namespace
