// Figure-fidelity tests: the worked examples of Figs 1, 3, 5 (and Fig 6,
// covered in test_polystore.cpp) are encoded and asserted. Where the paper's
// figure data is not machine-readable (exact cell layouts of Figs 2/3/5 are
// drawings), we encode examples with the same structure — a 7-vertex graph,
// a hyper-edge, a multi-edge — and assert the *semantics* the figure
// illustrates exactly. See EXPERIMENTS.md.

#include <gtest/gtest.h>

#include "hypergraph/bfs.hpp"
#include "hypergraph/incidence.hpp"
#include "hypergraph/projection.hpp"
#include "semiring/all.hpp"
#include "sparse/ewise.hpp"
#include "sparse/io.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::hypergraph;
using S = semiring::PlusTimes<double>;
using sparse::Index;

// Fig 1: Alice—Bob—Carl style BFS step. v has a 1 at the source; one array
// multiply vᵀA yields exactly the source's neighbors.
TEST(Fig1, OneArrayMultiplyIsOneBfsStep) {
  // Graph: Alice→Bob, Alice→Carl, Bob→Carl (vertices 0, 1, 2).
  const auto a = sparse::make_matrix<S>(
      3, 3, {{0, 1, 1.0}, {0, 2, 1.0}, {1, 2, 1.0}});
  const auto v = sparse::Matrix<double>::from_unique_triples(
      1, 3, {{0, 0, 1.0}});  // start at Alice
  const auto reached = sparse::mxm<S>(v, a);
  EXPECT_EQ(reached.nnz(), 2);
  EXPECT_TRUE(reached.get(0, 1).has_value());  // Bob
  EXPECT_TRUE(reached.get(0, 2).has_value());  // Carl
  EXPECT_FALSE(reached.get(0, 0).has_value());
}

TEST(Fig1, FullBfsMatchesGraphTraversal) {
  const auto a = sparse::make_matrix<S>(
      3, 3, {{0, 1, 1.0}, {0, 2, 1.0}, {1, 2, 1.0}});
  EXPECT_EQ(bfs_array(a, 0), bfs_queue(a, 0));
  EXPECT_EQ(bfs_array(a, 0), (std::vector<Index>{0, 1, 1}));
}

// Fig 2 + Fig 3: a 12-vertex, 13-edge hyper-multi-graph in incidence form,
// projected to adjacency via A = E_outᵀ E_in.
IncidencePair fig2_graph() {
  std::vector<HyperEdge> edges;
  // Plain directed edges (structure mirroring the figure's simple edges).
  for (const auto& [s, d] :
       std::vector<std::pair<Index, Index>>{{0, 1}, {1, 2}, {2, 3}, {3, 4},
                                            {4, 5}, {5, 6}, {6, 7}, {7, 0},
                                            {8, 9}, {10, 11}}) {
    edges.push_back({{s}, {d}, 1.0});
  }
  // The red hyper-edge: one event connecting several vertices at once.
  edges.push_back({{0, 2, 4}, {6, 8, 10}, 1.0});
  // The blue multi-edge: a repeat of an existing (3 → 4) edge.
  edges.push_back({{3}, {4}, 1.0});
  edges.push_back({{3}, {4}, 1.0});
  return IncidencePair(12, edges);
}

TEST(Fig2, ThirteenEdgesTwelveVertices) {
  const auto g = fig2_graph();
  EXPECT_EQ(g.n_edges(), 13);
  EXPECT_EQ(g.n_vertices(), 12);
  EXPECT_TRUE(g.has_hyper_edges());
}

TEST(Fig2, HyperEdgeRowHasMultipleEntries) {
  const auto g = fig2_graph();
  // Edge 10 is the hyper-edge: 3 out-vertices, 3 in-vertices.
  int out_count = 0, in_count = 0;
  for (Index v = 0; v < 12; ++v) {
    out_count += g.eout().get(10, v).has_value();
    in_count += g.ein().get(10, v).has_value();
  }
  EXPECT_EQ(out_count, 3);
  EXPECT_EQ(in_count, 3);
}

TEST(Fig3, ProjectionAccumulatesMultiEdges) {
  const auto g = fig2_graph();
  const auto a = adjacency(g);
  // 3→4 appears as one simple edge plus two multi-edge copies: A(3,4) = 3.
  EXPECT_EQ(a.get(3, 4), 3.0);
  // Hyper-edge contributes all out×in pairs.
  EXPECT_TRUE(a.get(0, 8).has_value());
  EXPECT_TRUE(a.get(4, 10).has_value());
}

TEST(Fig3, EntryFormulaHolds) {
  // A(i, j) = ⨁_k E_outᵀ(i, k) ⊗ E_in(k, j) — verify every entry.
  const auto g = fig2_graph();
  const auto a = adjacency(g);
  for (Index i = 0; i < 12; ++i) {
    for (Index j = 0; j < 12; ++j) {
      double expect = 0;
      for (Index k = 0; k < g.n_edges(); ++k) {
        const auto o = g.eout().get(k, i);
        const auto in = g.ein().get(k, j);
        if (o && in) expect += *o * *in;
      }
      const auto got = a.get(i, j);
      EXPECT_EQ(got.value_or(0.0), expect) << i << "," << j;
    }
  }
}

// Fig 5: element-wise ⊕ is graph union, element-wise ⊗ is graph
// intersection, on two 7-vertex graphs.
TEST(Fig5, UnionAndIntersection) {
  const auto A = sparse::make_matrix<S>(
      7, 7, {{0, 3, 4.0}, {2, 1, 2.0}, {2, 2, 1.0}, {5, 6, 7.0}});
  const auto B = sparse::make_matrix<S>(
      7, 7, {{2, 1, 2.0}, {4, 4, 5.0}, {5, 6, 7.0}});

  const auto uni = sparse::ewise_add<S>(A, B);
  EXPECT_EQ(uni.nnz(), 5);                 // union of the two edge sets
  EXPECT_EQ(uni.get(0, 3), 4.0);           // A-only edge survives
  EXPECT_EQ(uni.get(4, 4), 5.0);           // B-only edge survives
  EXPECT_EQ(uni.get(2, 1), 4.0);           // shared edge: 2 ⊕ 2
  EXPECT_EQ(uni.get(5, 6), 14.0);          // shared edge: 7 ⊕ 7

  const auto inter = sparse::ewise_mult<S>(A, B);
  EXPECT_EQ(inter.nnz(), 2);               // only the shared edges
  EXPECT_EQ(inter.get(2, 1), 4.0);         // 2 ⊗ 2
  EXPECT_EQ(inter.get(5, 6), 49.0);        // 7 ⊗ 7
  EXPECT_FALSE(inter.get(0, 3).has_value());
}

TEST(Fig5, TopologyHoldsOverAnySemiring) {
  // §V-A: "the core topological aspects of graph union [and] intersection
  // hold for any semiring" — patterns must be identical across semirings.
  using MP = semiring::MaxPlus<double>;
  const auto A = sparse::make_matrix<S>(
      7, 7, {{0, 3, 4.0}, {2, 1, 2.0}, {5, 6, 7.0}});
  const auto B = sparse::make_matrix<S>(
      7, 7, {{2, 1, 2.0}, {4, 4, 5.0}, {5, 6, 7.0}});
  EXPECT_TRUE(sparse::same_sparsity(sparse::ewise_add<S>(A, B),
                                    sparse::ewise_add<MP>(A, B)));
  EXPECT_TRUE(sparse::same_sparsity(sparse::ewise_mult<S>(A, B),
                                    sparse::ewise_mult<MP>(A, B)));
}

// Fig 4: the three sparsity regimes and their storage consequences.
TEST(Fig4, FormatsFollowSparsityRegimes) {
  const Index n = 512;
  // Dense regime: nnz ~ N².
  auto dense = sparse::Matrix<double>::full(64, 64, 1.0);
  EXPECT_EQ(dense.format(), sparse::Format::kDense);
  // Sparse regime: nnz ~ N spread over most rows.
  std::vector<sparse::Triple<double>> diag;
  for (Index i = 0; i < n; ++i) diag.push_back({i, (i * 7) % n, 1.0});
  const auto sp = sparse::Matrix<double>::from_unique_triples(n, n, diag);
  EXPECT_EQ(sp.format(), sparse::Format::kCsr);
  // Hypersparse regime: nnz ≪ N.
  const Index huge = Index{1} << 40;
  const auto hyper = sparse::Matrix<double>::from_unique_triples(
      huge, huge, {{12345, 67890, 1.0}});
  EXPECT_EQ(hyper.format(), sparse::Format::kDcsr);
  EXPECT_LT(hyper.bytes(), 1024u);
}

}  // namespace
