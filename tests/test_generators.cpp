// Unit tests for the synthetic workload generators (util/generators.hpp).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "util/generators.hpp"

namespace {

using namespace hyperspace::util;

TEST(Rmat, EdgeCountMatchesParams) {
  const auto edges = rmat_edges({.scale = 8, .edge_factor = 4, .seed = 1});
  EXPECT_EQ(edges.size(), 4u << 8);
}

TEST(Rmat, VerticesWithinRange) {
  const auto edges = rmat_edges({.scale = 6, .edge_factor = 8, .seed = 2});
  for (const auto& e : edges) {
    EXPECT_GE(e.src, 0);
    EXPECT_LT(e.src, 64);
    EXPECT_GE(e.dst, 0);
    EXPECT_LT(e.dst, 64);
  }
}

TEST(Rmat, Deterministic) {
  const auto a = rmat_edges({.scale = 7, .seed = 5});
  const auto b = rmat_edges({.scale = 7, .seed = 5});
  EXPECT_EQ(a, b);
}

TEST(Rmat, SkewedDegreeDistribution) {
  // Power-law: the max out-degree should far exceed the mean.
  const auto edges = rmat_edges({.scale = 10, .edge_factor = 8, .seed = 3});
  std::map<std::int64_t, int> deg;
  for (const auto& e : edges) ++deg[e.src];
  int max_deg = 0;
  for (const auto& [v, d] : deg) max_deg = std::max(max_deg, d);
  const double mean =
      static_cast<double>(edges.size()) / static_cast<double>(deg.size());
  EXPECT_GT(max_deg, 4 * mean);
}

TEST(ErdosRenyi, CountAndRange) {
  const auto edges = erdos_renyi_edges(100, 500, 4);
  EXPECT_EQ(edges.size(), 500u);
  for (const auto& e : edges) {
    EXPECT_GE(e.src, 0);
    EXPECT_LT(e.src, 100);
  }
}

TEST(Hypersparse, KeySpaceVastlyExceedsEdges) {
  const std::int64_t huge = std::int64_t{1} << 40;
  const auto edges = hypersparse_edges(huge, 1000, 5);
  EXPECT_EQ(edges.size(), 1000u);
  // With 2^40 keys and 1000 draws, collisions are vanishingly unlikely:
  // nearly all sources distinct (nnz << N regime).
  std::vector<std::int64_t> srcs;
  for (const auto& e : edges) srcs.push_back(e.src);
  std::sort(srcs.begin(), srcs.end());
  srcs.erase(std::unique(srcs.begin(), srcs.end()), srcs.end());
  EXPECT_GT(srcs.size(), 990u);
}

TEST(DedupeSum, CombinesDuplicateEdges) {
  std::vector<Edge> edges = {{1, 2, 1.0}, {1, 2, 2.5}, {0, 1, 1.0}};
  const auto out = dedupe_sum(edges);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].src, 0);
  EXPECT_DOUBLE_EQ(out[1].weight, 3.5);
}

TEST(DedupeSum, SortedOutput) {
  const auto out = dedupe_sum(rmat_edges({.scale = 8, .seed = 6}));
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_TRUE(out[i - 1].src < out[i].src ||
                (out[i - 1].src == out[i].src && out[i - 1].dst < out[i].dst));
  }
}

TEST(Zipf, InRangeAndSkewed) {
  Xoshiro256 rng(17);
  ZipfDistribution zipf(1000, 1.1);
  std::map<std::int64_t, int> counts;
  for (int i = 0; i < 20000; ++i) {
    const auto k = zipf(rng);
    ASSERT_GE(k, 0);
    ASSERT_LT(k, 1000);
    ++counts[k];
  }
  // Rank 0 should dominate rank 100 heavily under s = 1.1.
  EXPECT_GT(counts[0], 20 * std::max(counts[100], 1));
}

TEST(SyntheticIp, DottedQuadShape) {
  Xoshiro256 rng(23);
  const auto ip = synthetic_ip(rng, 1 << 16);
  int dots = 0;
  for (const char ch : ip) dots += (ch == '.');
  EXPECT_EQ(dots, 3);
}

}  // namespace
