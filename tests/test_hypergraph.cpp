// Unit tests for incidence arrays (Fig 2) and the adjacency projection
// A = E_outᵀ E_in (Fig 3).

#include <gtest/gtest.h>

#include "hypergraph/incidence.hpp"
#include "hypergraph/projection.hpp"
#include "semiring/all.hpp"
#include "sparse/apply.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::hypergraph;

TEST(Incidence, SimpleEdgesOneEntryPerArrayRow) {
  const auto g = incidence_from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(g.n_edges(), 3);
  EXPECT_EQ(g.eout().nnz(), 3);
  EXPECT_EQ(g.ein().nnz(), 3);
  EXPECT_EQ(g.eout().get(0, 0), 1.0);  // edge 0 leaves vertex 0
  EXPECT_EQ(g.ein().get(0, 1), 1.0);   // edge 0 enters vertex 1
  EXPECT_FALSE(g.has_hyper_edges());
}

TEST(Incidence, HyperEdgeTouchesManyVertices) {
  // Fig 2 red: one edge connecting more than two vertices.
  const std::vector<HyperEdge> edges = {{{0, 1, 2}, {3, 4}, 1.0}};
  const IncidencePair g(5, edges);
  EXPECT_EQ(g.eout().nnz(), 3);
  EXPECT_EQ(g.ein().nnz(), 2);
  EXPECT_TRUE(g.has_hyper_edges());
}

TEST(Incidence, MultiEdgesOccupySeparateRows) {
  // Fig 2 blue: repeated edges between the same vertices.
  const auto g = incidence_from_edges(3, {{0, 1}, {0, 1}, {0, 1}});
  EXPECT_EQ(g.n_edges(), 3);
  EXPECT_EQ(g.eout().nnz(), 3);  // three distinct edge rows
}

TEST(Incidence, EmptyEndpointThrows) {
  EXPECT_THROW(IncidencePair(3, {{{0}, {}, 1.0}}), std::invalid_argument);
  EXPECT_THROW(IncidencePair(3, {{{}, {1}, 1.0}}), std::invalid_argument);
}

TEST(Projection, SingleEdgeGivesSingleAdjacencyEntry) {
  const auto g = incidence_from_edges(3, {{0, 2}});
  const auto a = adjacency(g);
  EXPECT_EQ(a.nnz(), 1);
  EXPECT_EQ(a.get(0, 2), 1.0);
}

TEST(Projection, MultiEdgesAccumulate) {
  // Two parallel edges 0→1: A(0,1) = ⊕_k ... = 2 over +.×.
  const auto g = incidence_from_edges(3, {{0, 1}, {0, 1}});
  const auto a = adjacency(g);
  EXPECT_EQ(a.get(0, 1), 2.0);
}

TEST(Projection, HyperEdgeExpandsToAllPairs) {
  // Edge out of {0,1} into {2,3} ⇒ adjacency entries (0,2),(0,3),(1,2),(1,3).
  const IncidencePair g(4, {{{0, 1}, {2, 3}, 1.0}});
  const auto a = adjacency(g);
  EXPECT_EQ(a.nnz(), 4);
  EXPECT_EQ(a.get(0, 2), 1.0);
  EXPECT_EQ(a.get(1, 3), 1.0);
  EXPECT_EQ(a.get(2, 0), std::nullopt);  // directed
}

TEST(Projection, Fig3EntryFormula) {
  // A(i, j) = ⨁_k E_outᵀ(i, k) ⊗ E_in(k, j): cross-check one entry by hand.
  const auto g = incidence_from_edges(
      7, {{3, 2}, {3, 2}, {0, 1}, {3, 5}});  // two parallel 3→2 edges
  const auto a = adjacency(g);
  double expect = 0;
  for (sparse::Index k = 0; k < g.n_edges(); ++k) {
    const auto o = g.eout().get(k, 3);
    const auto i = g.ein().get(k, 2);
    if (o && i) expect += *o * *i;
  }
  EXPECT_EQ(a.get(3, 2), expect);
  EXPECT_EQ(expect, 2.0);
}

TEST(Projection, PatternIsSemiringIndependent) {
  // §V-A: "the core topological aspects ... hold for any semiring". The
  // *pattern* of the projection must be identical across semirings.
  const auto g = incidence_from_edges(
      6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {0, 1}});
  const auto a_plus = adjacency_projection<semiring::PlusTimes<double>>(
      g.eout(), g.ein());
  const auto a_max = adjacency_projection<semiring::MaxPlus<double>>(
      g.eout(), g.ein());
  const auto a_min = adjacency_projection<semiring::MinTimes<double>>(
      g.eout(), g.ein());
  EXPECT_TRUE(sparse::same_sparsity(a_plus, a_max));
  EXPECT_TRUE(sparse::same_sparsity(a_plus, a_min));
  // Values differ: +.× accumulates the multi-edge, max.+ takes the max.
  EXPECT_EQ(a_plus.get(0, 1), 2.0);
  EXPECT_EQ(a_max.get(0, 1), 2.0);  // 1+1 over max.+ mul
  EXPECT_EQ(a_min.get(0, 1), 1.0);  // min(1*1, 1*1)
}

TEST(Projection, WeightsFlowThrough) {
  const IncidencePair g(3, {{{0}, {1}, 2.5}});
  const auto a = adjacency(g);
  EXPECT_EQ(a.get(0, 1), 2.5 * 2.5);  // E_outᵀ(0,k) ⊗ E_in(k,1) = w·w
}

}  // namespace
