// End-to-end integration: the "digital hyperspace" pipeline —
// stream events → incidence arrays → adjacency projection → graph
// analytics → database ingestion → identical answers from every engine.

#include <gtest/gtest.h>

#include "db/polystore.hpp"
#include "hypergraph/algorithms.hpp"
#include "hypergraph/bfs.hpp"
#include "hypergraph/incidence.hpp"
#include "hypergraph/projection.hpp"
#include "semilink/identities.hpp"
#include "util/generators.hpp"

namespace {

using namespace hyperspace;
using sparse::Index;

TEST(Pipeline, StreamToIncidenceToAdjacencyToAnalytics) {
  // 1. Stream: R-MAT edges standing in for network events.
  const auto edges =
      util::rmat_edges({.scale = 8, .edge_factor = 4, .seed = 21});
  const Index n = 256;

  // 2. Incidence arrays (one row per event — the streaming representation).
  std::vector<std::pair<Index, Index>> pairs;
  for (const auto& e : edges) pairs.emplace_back(e.src, e.dst);
  const auto g = hypergraph::incidence_from_edges(n, pairs);
  EXPECT_EQ(g.n_edges(), static_cast<Index>(edges.size()));

  // 3. Projection A = E_outᵀ E_in.
  const auto a = hypergraph::adjacency(g);
  EXPECT_GT(a.nnz(), 0);

  // 4. The projection must match direct adjacency construction (duplicate
  // edges accumulate under +.× in both paths).
  std::vector<sparse::Triple<double>> t;
  for (const auto& [s, d] : pairs) t.push_back({s, d, 1.0});
  const auto direct = sparse::Matrix<double>::from_triples<
      semiring::PlusTimes<double>>(n, n, std::move(t));
  EXPECT_EQ(a, direct);

  // 5. Analytics agree across formulations.
  EXPECT_EQ(hypergraph::bfs_array(a, 0), hypergraph::bfs_queue(a, 0));
  EXPECT_GE(hypergraph::triangle_count(a), 0);
}

TEST(Pipeline, EventsToPolystoreConsistency) {
  // Synthetic traffic through the full polystore; every engine agrees on
  // every observed source.
  util::Xoshiro256 rng(5);
  db::FlowPolystore ps;
  std::vector<std::string> srcs;
  for (int i = 0; i < 60; ++i) {
    const auto s = util::synthetic_ip(rng, 1 << 20);
    const auto d = util::synthetic_ip(rng, 1 << 20);
    srcs.push_back(s);
    ps.insert({s, rng.bounded(2) ? "http" : "dns", d});
  }
  for (const auto& s : srcs) {
    const auto expect = ps.neighbors_sql(s);
    EXPECT_EQ(ps.neighbors_semilink(s), expect);
    EXPECT_EQ(ps.neighbors_newsql(s), expect);
    EXPECT_EQ(ps.neighbors_nosql(s), expect);
  }
}

TEST(Pipeline, SemilinkIdentitiesHoldOnRealWorkloadArrays) {
  // Build an associative array from generated traffic and check the §IV
  // machinery on it.
  util::Xoshiro256 rng(9);
  std::vector<array::Key> k1, k2;
  std::vector<double> v;
  for (int i = 0; i < 40; ++i) {
    k1.emplace_back(util::synthetic_ip(rng, 64));
    k2.emplace_back(util::synthetic_ip(rng, 64));
    v.push_back(1.0 + static_cast<double>(rng.bounded(9)));
  }
  const array::AssocArray<semiring::PlusTimes<double>> A(k1, k2, v);
  EXPECT_TRUE(semilink::ones_projects_rows(A));
  EXPECT_TRUE(semilink::ones_projects_cols(A));
  semilink::Semilink<semiring::PlusTimes<double>> link(A.row_keys());
  EXPECT_TRUE(semilink::identities_interact(link));
}

TEST(Pipeline, HypersparseStreamingIngest) {
  // Ingest a stream keyed by an enormous (2^48) key space — the regime the
  // paper's hypersparse arrays exist for — then query it.
  const Index huge = Index{1} << 48;
  const auto edges = util::hypersparse_edges(huge, 2000, 33);
  std::vector<sparse::Triple<double>> t;
  for (const auto& e : edges) t.push_back({e.src, e.dst, e.weight});
  const auto a = sparse::Matrix<double>::from_triples<
      semiring::PlusTimes<double>>(huge, huge, std::move(t));
  EXPECT_EQ(a.format(), sparse::Format::kDcsr);
  EXPECT_LE(a.nnz(), 2000);
  EXPECT_LT(a.bytes(), 200'000u);
  // Row projection over the ambient ones is impossible to densify, but
  // per-row reduction works fine at O(nnz).
  using Add = semiring::AddMonoidOf<semiring::PlusTimes<double>>;
  const auto sums = sparse::reduce_rows<Add>(a);
  EXPECT_EQ(sums.n_nonempty_rows(), a.n_nonempty_rows());
}

TEST(Pipeline, GraphUnionIntersectionOnStreams) {
  // Two observation windows of the same network; union joins them,
  // intersection finds persistent links (Fig 5 at workload scale).
  using S = semiring::PlusTimes<double>;
  auto window = [](std::uint64_t seed) {
    std::vector<sparse::Triple<double>> t;
    for (const auto& e :
         util::rmat_edges({.scale = 7, .edge_factor = 4, .seed = seed})) {
      t.push_back({e.src, e.dst, 1.0});
    }
    return sparse::Matrix<double>::from_triples<S>(128, 128, std::move(t));
  };
  const auto w1 = window(1), w2 = window(2);
  const auto uni = sparse::ewise_add<S>(w1, w2);
  const auto inter = sparse::ewise_mult<S>(w1, w2);
  EXPECT_GE(uni.nnz(), std::max(w1.nnz(), w2.nnz()));
  EXPECT_LE(inter.nnz(), std::min(w1.nnz(), w2.nnz()));
  // Sanity: every intersection edge is in both windows.
  for (const auto& t : inter.to_triples()) {
    EXPECT_TRUE(w1.get(t.row, t.col).has_value());
    EXPECT_TRUE(w2.get(t.row, t.col).has_value());
  }
}

}  // namespace
