// Unit tests for Key (sortable mixed-type keys) and KeySet.

#include <gtest/gtest.h>

#include <sstream>

#include "array/key.hpp"

namespace {

using namespace hyperspace::array;

TEST(Key, TypeInspection) {
  EXPECT_TRUE(Key(5).is_int());
  EXPECT_TRUE(Key(2.5).is_real());
  EXPECT_TRUE(Key("abc").is_string());
  EXPECT_EQ(Key(5).as_int(), 5);
  EXPECT_EQ(Key(2.5).as_real(), 2.5);
  EXPECT_EQ(Key("abc").as_string(), "abc");
}

TEST(Key, StrictTotalOrderWithinType) {
  EXPECT_LT(Key(1), Key(2));
  EXPECT_LT(Key(1.5), Key(2.5));
  EXPECT_LT(Key("alice"), Key("bob"));
  EXPECT_FALSE(Key("bob") < Key("alice"));
}

TEST(Key, CrossTypeOrderIsDeterministic) {
  // ints < reals < strings (variant index order); mixed key sets sort.
  EXPECT_LT(Key(999), Key(0.5));
  EXPECT_LT(Key(0.5), Key("a"));
  EXPECT_LT(Key(999), Key("a"));
}

TEST(Key, EqualityIsTypeSensitive) {
  EXPECT_EQ(Key(3), Key(3));
  EXPECT_NE(Key(3), Key(3.0));  // int key != real key
  EXPECT_EQ(Key("x"), Key(std::string("x")));
}

TEST(Key, Printing) {
  std::ostringstream os;
  os << Key(7) << "/" << Key("ip");
  EXPECT_EQ(os.str(), "7/ip");
}

TEST(KeySet, SortsAndDedupes) {
  const KeySet s{Key("b"), Key("a"), Key("b"), Key("c")};
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0], Key("a"));
  EXPECT_EQ(s[2], Key("c"));
}

TEST(KeySet, FindReturnsPosition) {
  const KeySet s{Key(10), Key(20), Key(30)};
  EXPECT_EQ(s.find(Key(20)), 1u);
  EXPECT_EQ(s.find(Key(25)), std::nullopt);
  EXPECT_TRUE(s.contains(Key(30)));
  EXPECT_FALSE(s.contains(Key(31)));
}

TEST(KeySet, RangeBuilder) {
  const auto s = KeySet::range(4, 10);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s[0], Key(10));
  EXPECT_EQ(s[3], Key(13));
}

TEST(KeySet, UnionAndIntersection) {
  const KeySet a{Key(1), Key(2), Key(3)};
  const KeySet b{Key(3), Key(4)};
  EXPECT_EQ(key_union(a, b), (KeySet{Key(1), Key(2), Key(3), Key(4)}));
  EXPECT_EQ(key_intersection(a, b), (KeySet{Key(3)}));
}

TEST(KeySet, MixedTypeSetOperations) {
  const KeySet a{Key(1), Key("alice")};
  const KeySet b{Key("alice"), Key(2.0)};
  const auto u = key_union(a, b);
  EXPECT_EQ(u.size(), 3u);
  EXPECT_EQ(key_intersection(a, b), (KeySet{Key("alice")}));
}

TEST(KeySet, DisjointPredicate) {
  EXPECT_TRUE(disjoint(KeySet{Key(1)}, KeySet{Key(2)}));
  EXPECT_FALSE(disjoint(KeySet{Key(1), Key(2)}, KeySet{Key(2)}));
  EXPECT_TRUE(disjoint(KeySet{}, KeySet{Key(1)}));
}

TEST(KeySet, EmptySetBehaviour) {
  const KeySet e;
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(key_union(e, e).size(), 0u);
  EXPECT_FALSE(e.contains(Key(0)));
}

}  // namespace
