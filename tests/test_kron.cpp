// Tests for the Kronecker product / Kronecker-power graph generator.

#include <gtest/gtest.h>

#include "semiring/all.hpp"
#include "sparse/io.hpp"
#include "sparse/kron.hpp"
#include "sparse/mxm.hpp"
#include "sparse/transpose.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::sparse;
using S = semiring::PlusTimes<double>;

TEST(Kron, ShapeIsProductOfShapes) {
  const auto a = make_matrix<S>(2, 3, {{0, 0, 1.0}});
  const auto b = make_matrix<S>(4, 5, {{1, 1, 1.0}});
  const auto c = kron<S>(a, b);
  EXPECT_EQ(c.nrows(), 8);
  EXPECT_EQ(c.ncols(), 15);
}

TEST(Kron, EntryFormula) {
  const auto a = make_matrix<S>(2, 2, {{0, 1, 2.0}, {1, 0, 3.0}});
  const auto b = make_matrix<S>(2, 2, {{0, 0, 5.0}, {1, 1, 7.0}});
  const auto c = kron<S>(a, b);
  // C(ia*2+ib, ja*2+jb) = A(ia,ja) * B(ib,jb).
  EXPECT_EQ(c.nnz(), 4);
  EXPECT_EQ(c.get(0, 2), 10.0);  // A(0,1)*B(0,0)
  EXPECT_EQ(c.get(1, 3), 14.0);  // A(0,1)*B(1,1)
  EXPECT_EQ(c.get(2, 0), 15.0);  // A(1,0)*B(0,0)
  EXPECT_EQ(c.get(3, 1), 21.0);  // A(1,0)*B(1,1)
}

TEST(Kron, NnzIsProductOfNnz) {
  const auto a = make_matrix<S>(3, 3, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 0, 1.0}});
  const auto b = make_matrix<S>(2, 2, {{0, 0, 1.0}, {1, 1, 1.0}});
  EXPECT_EQ(kron<S>(a, b).nnz(), a.nnz() * b.nnz());
}

TEST(Kron, IdentityKronIdentityIsIdentity) {
  const auto i2 = Matrix<double>::identity(2, 1.0);
  const auto i3 = Matrix<double>::identity(3, 1.0);
  EXPECT_EQ(kron<S>(i2, i3), Matrix<double>::identity(6, 1.0));
}

TEST(Kron, MixedProductProperty) {
  // (A ⊗K B)(C ⊗K D) = (AC) ⊗K (BD) — the law Kronecker generators rely on.
  const auto a = make_matrix<S>(2, 2, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 1, 3.0}});
  const auto b = make_matrix<S>(2, 2, {{0, 1, 1.0}, {1, 0, 4.0}});
  const auto c = make_matrix<S>(2, 2, {{0, 0, 2.0}, {1, 0, 1.0}});
  const auto d = make_matrix<S>(2, 2, {{0, 0, 1.0}, {1, 1, 5.0}});
  const auto lhs = mxm<S>(kron<S>(a, b), kron<S>(c, d));
  const auto rhs = kron<S>(mxm<S>(a, c), mxm<S>(b, d));
  EXPECT_EQ(lhs, rhs);
}

TEST(Kron, TransposeDistributes) {
  const auto a = make_matrix<S>(2, 3, {{0, 2, 2.0}, {1, 0, 3.0}});
  const auto b = make_matrix<S>(3, 2, {{0, 1, 5.0}, {2, 0, 7.0}});
  EXPECT_EQ(transpose(kron<S>(a, b)), kron<S>(transpose(a), transpose(b)));
}

TEST(Kron, TropicalSemiring) {
  using MP = semiring::MinPlus<double>;
  // Over min.+, kron multiplies via +.
  const auto a = make_matrix<MP>(1, 1, {{0, 0, 3.0}});
  const auto b = make_matrix<MP>(1, 1, {{0, 0, 4.0}});
  EXPECT_EQ(kron<MP>(a, b).get(0, 0), 7.0);
}

TEST(KronPower, GrowsExponentially) {
  // A star seed: 2x2 with 3 entries -> power k has 3^k entries over 2^k dims.
  const auto seed = make_matrix<S>(2, 2, {{0, 0, 1.0}, {0, 1, 1.0},
                                          {1, 0, 1.0}});
  const auto g3 = kron_power<S>(seed, 3);
  EXPECT_EQ(g3.nrows(), 8);
  EXPECT_EQ(g3.nnz(), 27);
}

TEST(KronPower, PowerOneIsIdentityOperation) {
  const auto seed = make_matrix<S>(2, 2, {{0, 1, 2.0}});
  EXPECT_EQ(kron_power<S>(seed, 1), seed);
  EXPECT_THROW(kron_power<S>(seed, 0), std::invalid_argument);
}

TEST(KronPower, HypersparseAtHighPower) {
  // 2^40-dimension Kronecker graph with only 2^10 entries: DCSR territory.
  const auto seed = make_matrix<S>(4, 4, {{0, 1, 1.0}, {2, 3, 1.0}});
  const auto g = kron_power<S>(seed, 10);  // 4^10 = 2^20 dims, 2^10 entries
  EXPECT_EQ(g.nrows(), Index{1} << 20);
  EXPECT_EQ(g.nnz(), 1024);
  EXPECT_EQ(g.format(), Format::kDcsr);
}

}  // namespace
