// Tests for masked operations (write masks, complement masks) and their
// interaction with the BFS frontier pattern and the §V-B row mask.

#include <gtest/gtest.h>

#include "semiring/all.hpp"
#include "sparse/io.hpp"
#include "sparse/apply.hpp"
#include "sparse/masked.hpp"
#include "util/generators.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::sparse;
using S = semiring::PlusTimes<double>;

Matrix<double> sample() {
  return make_matrix<S>(4, 4, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 2, 3.0},
                               {3, 3, 4.0}});
}

Matrix<double> mask_pattern() {
  return make_matrix<S>(4, 4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 2, 1.0}});
}

TEST(MaskSelect, KeepsOnlyMaskedPositions) {
  const auto c = mask_select(sample(), mask_pattern());
  EXPECT_EQ(c.nnz(), 2);
  EXPECT_EQ(c.get(0, 1), 2.0);
  EXPECT_EQ(c.get(1, 2), 3.0);
  EXPECT_FALSE(c.get(0, 0).has_value());
}

TEST(MaskSelect, ComplementKeepsUnmaskedPositions) {
  const auto c = mask_select(sample(), mask_pattern(), {.complement = true});
  EXPECT_EQ(c.nnz(), 2);
  EXPECT_EQ(c.get(0, 0), 1.0);
  EXPECT_EQ(c.get(3, 3), 4.0);
}

TEST(MaskSelect, MaskValuesIgnoredOnlyPatternMatters) {
  const auto weird_mask = make_matrix<S>(4, 4, {{0, 0, 0.0}, {0, 1, -5.0}});
  const auto c = mask_select(sample(), weird_mask);
  EXPECT_EQ(c.nnz(), 2);  // (0,0) and (0,1) both present in the mask pattern
}

TEST(MaskSelect, EmptyMaskAnnihilatesOrPassesAll) {
  const Matrix<double> empty(4, 4);
  EXPECT_EQ(mask_select(sample(), empty).nnz(), 0);
  EXPECT_EQ(mask_select(sample(), empty, {.complement = true}), sample());
}

TEST(MaskSelect, ShapeMismatchThrows) {
  const Matrix<double> m(3, 4);
  EXPECT_THROW(mask_select(sample(), m), std::invalid_argument);
}

TEST(MaskSelect, MixedValueTypes) {
  // Mask over uint8 pattern applied to a double matrix.
  const auto m8 = Matrix<std::uint8_t>::from_unique_triples(
      4, 4, {{0, 0, std::uint8_t{1}}});
  const auto c = mask_select(sample(), m8);
  EXPECT_EQ(c.nnz(), 1);
}

TEST(MaskedMxm, EqualsUnmaskedThenFiltered) {
  const auto a = sample();
  const auto m = mask_pattern();
  EXPECT_EQ(mxm_masked<S>(a, a, m), mask_select(mxm<S>(a, a), m));
}

TEST(MaskedEwiseMult, MatchesMaskAsThirdFactor) {
  // C⟨M⟩ = A ⊗ B equals A ⊗ B ⊗ |M|₀ for structural masks.
  const auto a = sample();
  const auto b = make_matrix<S>(4, 4, {{0, 1, 10.0}, {1, 2, 10.0},
                                       {3, 3, 10.0}});
  const auto m = mask_pattern();
  const auto lhs = ewise_mult_masked<S>(a, b, m);
  const auto rhs = ewise_mult<S>(ewise_mult<S>(a, b), zero_norm<S>(m));
  EXPECT_EQ(lhs, rhs);
}

TEST(MaskedBfsStep, ComplementMaskExcludesVisited) {
  // One BFS step that must not revisit: frontier x A masked by ¬visited.
  using B = semiring::LorLand;
  const auto adj = Matrix<std::uint8_t>::from_unique_triples(
      3, 3, {{0, 1, std::uint8_t{1}}, {1, 0, std::uint8_t{1}},
             {1, 2, std::uint8_t{1}}});
  const auto frontier = Matrix<std::uint8_t>::from_unique_triples(
      1, 3, {{0, 1, std::uint8_t{1}}});
  const auto visited = Matrix<std::uint8_t>::from_unique_triples(
      1, 3, {{0, 0, std::uint8_t{1}}, {0, 1, std::uint8_t{1}}});
  const auto next = mxm_masked<B>(frontier, adj, visited,
                                  {.complement = true});
  EXPECT_EQ(next.nnz(), 1);
  EXPECT_TRUE(next.get(0, 2).has_value());  // vertex 0 masked off
}

TEST(MaskedEwiseAdd, MaskAppliesAfterUnion) {
  const auto a = sample();
  const auto b = mask_pattern();
  const auto c = ewise_add_masked<S>(a, b, mask_pattern());
  EXPECT_EQ(c.nnz(), 3);  // exactly the mask positions
  EXPECT_EQ(c.get(0, 1), 3.0);
}

TEST(Masked, HypersparseOperands) {
  const Index huge = Index{1} << 40;
  const auto a = Matrix<double>::from_unique_triples(
      huge, huge, {{5, 5, 1.0}, {Index{1} << 30, 2, 3.0}});
  const auto m = Matrix<double>::from_unique_triples(
      huge, huge, {{Index{1} << 30, 2, 1.0}});
  const auto c = mask_select(a, m);
  EXPECT_EQ(c.nnz(), 1);
  EXPECT_EQ(c.get(Index{1} << 30, 2), 3.0);
}

}  // namespace
