// Tests for masked operations (write masks, complement masks) and their
// interaction with the BFS frontier pattern and the §V-B row mask. The
// fused kernel (mask consulted during accumulation) must be bit-identical
// to compute-then-filter for every semiring family, strategy, sense, and
// thread count.

#include <gtest/gtest.h>

#include "helpers.hpp"
#include "semiring/all.hpp"
#include "sparse/io.hpp"
#include "sparse/apply.hpp"
#include "sparse/masked.hpp"
#include "util/generators.hpp"
#include "util/rng.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::sparse;
using S = semiring::PlusTimes<double>;

Matrix<double> sample() {
  return make_matrix<S>(4, 4, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 2, 3.0},
                               {3, 3, 4.0}});
}

Matrix<double> mask_pattern() {
  return make_matrix<S>(4, 4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 2, 1.0}});
}

TEST(MaskSelect, KeepsOnlyMaskedPositions) {
  const auto c = mask_select(sample(), mask_pattern());
  EXPECT_EQ(c.nnz(), 2);
  EXPECT_EQ(c.get(0, 1), 2.0);
  EXPECT_EQ(c.get(1, 2), 3.0);
  EXPECT_FALSE(c.get(0, 0).has_value());
}

TEST(MaskSelect, ComplementKeepsUnmaskedPositions) {
  const auto c = mask_select(sample(), mask_pattern(), {.complement = true});
  EXPECT_EQ(c.nnz(), 2);
  EXPECT_EQ(c.get(0, 0), 1.0);
  EXPECT_EQ(c.get(3, 3), 4.0);
}

TEST(MaskSelect, MaskValuesIgnoredOnlyPatternMatters) {
  const auto weird_mask = make_matrix<S>(4, 4, {{0, 0, 0.0}, {0, 1, -5.0}});
  const auto c = mask_select(sample(), weird_mask);
  EXPECT_EQ(c.nnz(), 2);  // (0,0) and (0,1) both present in the mask pattern
}

TEST(MaskSelect, EmptyMaskAnnihilatesOrPassesAll) {
  const Matrix<double> empty(4, 4);
  EXPECT_EQ(mask_select(sample(), empty).nnz(), 0);
  EXPECT_EQ(mask_select(sample(), empty, {.complement = true}), sample());
}

TEST(MaskSelect, ShapeMismatchThrows) {
  const Matrix<double> m(3, 4);
  EXPECT_THROW(mask_select(sample(), m), std::invalid_argument);
}

TEST(MaskSelect, MixedValueTypes) {
  // Mask over uint8 pattern applied to a double matrix.
  const auto m8 = Matrix<std::uint8_t>::from_unique_triples(
      4, 4, {{0, 0, std::uint8_t{1}}});
  const auto c = mask_select(sample(), m8);
  EXPECT_EQ(c.nnz(), 1);
}

TEST(MaskedMxm, EqualsUnmaskedThenFiltered) {
  const auto a = sample();
  const auto m = mask_pattern();
  EXPECT_EQ(mxm_masked<S>(a, a, m), mask_select(mxm<S>(a, a), m));
}

TEST(MaskedMxm, MaskShapeMismatchThrows) {
  const auto a = sample();
  const Matrix<double> m(3, 4);
  EXPECT_THROW(mxm_masked<S>(a, a, m), std::invalid_argument);
  EXPECT_THROW(mxm_masked_unfused<S>(a, a, m), std::invalid_argument);
}

TEST(MaskedMxm, SkipCountersPartitionTheFlops) {
  const auto a = sample();
  const auto m = mask_pattern();
  // Total flops of a·a: sum over a(i,k) of |row k of a|.
  std::uint64_t flops = 0;
  for (const auto& t : a.to_triples()) {
    for (const auto& u : a.to_triples()) flops += (u.row == t.col);
  }
  for (const bool comp : {false, true}) {
    MxmMaskStats st;
    const auto c = mxm_masked<S>(a, a, m, {.complement = comp}, &st);
    EXPECT_EQ(st.flops_total(), flops);
    EXPECT_GE(st.flops_kept, static_cast<std::uint64_t>(c.nnz()));
  }
}

TEST(MaskedMxm, EmptyMaskDoesZeroAccumulatorWork) {
  // Plain sense + empty mask: every row is blocked before accumulation —
  // the O(kept) contract with kept == 0.
  const auto a = sample();
  const Matrix<double> empty(4, 4);
  MxmMaskStats st;
  const auto c = mxm_masked<S>(a, a, empty, {}, &st);
  EXPECT_EQ(c.nnz(), 0);
  EXPECT_EQ(st.flops_kept, 0u);
  EXPECT_GT(st.flops_skipped, 0u);
}

// --------------------------------------------------------------------------
// Fused ≡ compute-then-filter: all three semiring families × both mask
// senses × all accumulator strategies × 1/2/8 threads, bit-identical.

using hyperspace::testing::ThreadGuard;

template <semiring::Semiring Sr, typename Gen>
void expect_fused_equals_filtered(Gen&& entry, Index n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<Triple<typename Sr::value_type>> ta, tb, tm;
  for (int i = 0; i < 400; ++i) {
    ta.push_back({static_cast<Index>(rng.bounded(static_cast<std::uint64_t>(n))),
                  static_cast<Index>(rng.bounded(static_cast<std::uint64_t>(n))),
                  entry(rng)});
    tb.push_back({static_cast<Index>(rng.bounded(static_cast<std::uint64_t>(n))),
                  static_cast<Index>(rng.bounded(static_cast<std::uint64_t>(n))),
                  entry(rng)});
  }
  for (int i = 0; i < 250; ++i) {
    tm.push_back({static_cast<Index>(rng.bounded(static_cast<std::uint64_t>(n))),
                  static_cast<Index>(rng.bounded(static_cast<std::uint64_t>(n))),
                  entry(rng)});
  }
  using M = Matrix<typename Sr::value_type>;
  const auto a = M::template from_triples<Sr>(n, n, std::move(ta));
  const auto b = M::template from_triples<Sr>(n, n, std::move(tb));
  const auto m = M::template from_triples<Sr>(n, n, std::move(tm));
  for (const int nt : {1, 2, 8}) {
    ThreadGuard guard(nt);
    for (const bool comp : {false, true}) {
      const MaskDesc desc{.complement = comp};
      const auto filtered = mxm_masked_unfused<Sr>(a, b, m, desc);
      for (const auto strat : {MxmStrategy::kGustavson, MxmStrategy::kHash,
                               MxmStrategy::kSorted}) {
        EXPECT_EQ(mxm_masked<Sr>(a, b, m, desc, nullptr, strat), filtered)
            << "threads=" << nt << " complement=" << comp
            << " strategy=" << static_cast<int>(strat);
      }
    }
  }
}

TEST(MaskedMxmFused, ArithmeticSemiringAllThreadCounts) {
  expect_fused_equals_filtered<semiring::PlusTimes<double>>(
      [](util::Xoshiro256& r) { return r.uniform(-1.0, 1.0); }, 64, 11);
}

TEST(MaskedMxmFused, TropicalSemiringAllThreadCounts) {
  expect_fused_equals_filtered<semiring::MinPlus<double>>(
      [](util::Xoshiro256& r) { return r.uniform(0.0, 10.0); }, 64, 12);
}

TEST(MaskedMxmFused, SetSemiringAllThreadCounts) {
  expect_fused_equals_filtered<semiring::UnionIntersect>(
      [](util::Xoshiro256& r) {
        return semiring::ValueSet{static_cast<std::int64_t>(r.bounded(16)),
                                  static_cast<std::int64_t>(r.bounded(16))};
      },
      48, 13);
}

TEST(MaskedMxmFused, HypersparseMaskedProduct) {
  // Fusion must hold in the DCSR/flat-hash regime too.
  const Index huge = Index{1} << 40;
  const auto a = Matrix<double>::from_unique_triples(
      huge, huge, {{5, 7, 2.0}, {Index{1} << 30, 7, 3.0}});
  const auto b = Matrix<double>::from_unique_triples(
      huge, huge, {{7, 9, 10.0}, {7, Index{1} << 35, 20.0}});
  const auto m = Matrix<double>::from_unique_triples(
      huge, huge, {{5, 9, 1.0}, {Index{1} << 30, Index{1} << 35, 1.0}});
  for (const bool comp : {false, true}) {
    MxmMaskStats st;
    const auto fused = mxm_masked<S>(a, b, m, {.complement = comp}, &st);
    EXPECT_EQ(fused, mxm_masked_unfused<S>(a, b, m, {.complement = comp}));
    EXPECT_EQ(st.flops_total(), 4u);  // 2 A-entries × 2 B-entries on row 7
  }
}

// --------------------------------------------------------------------------
// Bitmap mask probe: for dense mask rows the fused kernel may arm a per-row
// bitmap and probe O(1) instead of binary-searching — the probe choice must
// never change results, for either sense, any strategy, any thread count.

TEST(MaskedMxmBitmapProbe, ForcedProbesAgreeEverywhere) {
  util::Xoshiro256 rng(77);
  const Index n = 256;
  std::vector<Triple<double>> ta, tb, tm;
  for (int i = 0; i < 1500; ++i) {
    ta.push_back({static_cast<Index>(rng.bounded(n)),
                  static_cast<Index>(rng.bounded(n)), rng.uniform(-1., 1.)});
    tb.push_back({static_cast<Index>(rng.bounded(n)),
                  static_cast<Index>(rng.bounded(n)), rng.uniform(-1., 1.)});
  }
  // Dense mask (~50%): rows long enough that kAuto arms the bitmap too.
  for (Index r = 0; r < n; ++r) {
    for (Index c = 0; c < n; ++c) {
      if (rng.bounded(100) < 50) tm.push_back({r, c, 1.0});
    }
  }
  const auto a = Matrix<double>::from_triples<S>(n, n, std::move(ta));
  const auto b = Matrix<double>::from_triples<S>(n, n, std::move(tb));
  const auto m = Matrix<double>::from_triples<S>(n, n, std::move(tm));
  for (const int nt : {1, 8}) {
    hyperspace::testing::ThreadGuard guard(nt);
    for (const bool comp : {false, true}) {
      MxmMaskStats bin_st, bit_st, auto_st;
      const auto binary = mxm_masked<S>(
          a, b, m, {.complement = comp, .probe = MaskProbe::kBinary},
          &bin_st);
      MxmMaskStats merge_st;
      for (const auto strat : {MxmStrategy::kGustavson, MxmStrategy::kHash,
                               MxmStrategy::kSorted}) {
        EXPECT_EQ(mxm_masked<S>(
                      a, b, m,
                      {.complement = comp, .probe = MaskProbe::kBitmap},
                      &bit_st, strat),
                  binary)
            << "threads=" << nt << " complement=" << comp;
        EXPECT_EQ(mxm_masked<S>(
                      a, b, m,
                      {.complement = comp, .probe = MaskProbe::kMerge},
                      &merge_st, strat),
                  binary)
            << "threads=" << nt << " complement=" << comp;
        EXPECT_EQ(mxm_masked<S>(
                      a, b, m,
                      {.complement = comp, .probe = MaskProbe::kAuto},
                      &auto_st, strat),
                  binary);
      }
      // The probe never changes the kept/skipped split either.
      EXPECT_EQ(bit_st.flops_kept, 3 * bin_st.flops_kept);
      EXPECT_EQ(bit_st.flops_skipped, 3 * bin_st.flops_skipped);
      EXPECT_EQ(merge_st.flops_kept, 3 * bin_st.flops_kept);
      EXPECT_EQ(merge_st.flops_skipped, 3 * bin_st.flops_skipped);
    }
  }
}

TEST(MaskedMxmMergeProbe, AdmissibleWhereTheBitmapIsNot) {
  // A 2^40-wide mask row cannot arm a bitmap, but the two-pointer merge
  // needs no O(ncols) state at all — it must serve the hypersparse column
  // space exactly, both senses. The mask row is long (128 entries) and the
  // probing B-row interleaves hits and misses in ascending column order,
  // exercising the cursor walk; a second A-entry re-scans the same B row,
  // exercising the cursor rewind between scans.
  const Index huge = Index{1} << 40;
  std::vector<Triple<double>> ta{{0, 7, 2.0}, {0, 9, 3.0}};
  std::vector<Triple<double>> tb, tm;
  for (int j = 0; j < 96; ++j) {
    const Index col = (Index{1} << 30) + j * (Index{1} << 22);
    tb.push_back({7, col, 1.0 + j});
    if (j % 3 != 0) tm.push_back({0, col, 1.0});  // hit 2 of every 3
  }
  tb.push_back({9, Index{1} << 30, 5.0});  // second scan restarts low
  for (int j = 0; j < 40; ++j) {
    tm.push_back({0, (Index{1} << 36) + j, 1.0});  // mask tail past B's cols
  }
  const auto a = Matrix<double>::from_unique_triples(1, huge, std::move(ta));
  const auto b = Matrix<double>::from_unique_triples(huge, huge,
                                                     std::move(tb));
  const auto m = Matrix<double>::from_unique_triples(1, huge, std::move(tm));
  for (const bool comp : {false, true}) {
    MxmMaskStats merge_st, bin_st;
    const auto merged = mxm_masked<S>(
        a, b, m, {.complement = comp, .probe = MaskProbe::kMerge}, &merge_st);
    const auto binary = mxm_masked<S>(
        a, b, m, {.complement = comp, .probe = MaskProbe::kBinary}, &bin_st);
    EXPECT_EQ(merged, binary) << "complement=" << comp;
    EXPECT_EQ(merge_st.flops_kept, bin_st.flops_kept);
    EXPECT_EQ(merge_st.flops_skipped, bin_st.flops_skipped);
  }
}

TEST(MaskedMxmBitmapProbe, HypersparseMaskFallsBackToBinary) {
  // A 2^40-wide mask cannot allocate a bitmap; forcing kBitmap must fall
  // back to the binary probe, not crash or misbehave.
  const Index huge = Index{1} << 40;
  const auto a = Matrix<double>::from_unique_triples(
      huge, huge, {{5, 7, 2.0}, {Index{1} << 30, 7, 3.0}});
  const auto b = Matrix<double>::from_unique_triples(
      huge, huge, {{7, 9, 10.0}, {7, Index{1} << 35, 20.0}});
  const auto m = Matrix<double>::from_unique_triples(
      huge, huge, {{5, 9, 1.0}, {Index{1} << 30, Index{1} << 35, 1.0}});
  for (const bool comp : {false, true}) {
    EXPECT_EQ(
        mxm_masked<S>(a, b, m,
                      {.complement = comp, .probe = MaskProbe::kBitmap}),
        mxm_masked<S>(a, b, m,
                      {.complement = comp, .probe = MaskProbe::kBinary}));
  }
}

TEST(MaskedEwiseMult, MatchesMaskAsThirdFactor) {
  // C⟨M⟩ = A ⊗ B equals A ⊗ B ⊗ |M|₀ for structural masks.
  const auto a = sample();
  const auto b = make_matrix<S>(4, 4, {{0, 1, 10.0}, {1, 2, 10.0},
                                       {3, 3, 10.0}});
  const auto m = mask_pattern();
  const auto lhs = ewise_mult_masked<S>(a, b, m);
  const auto rhs = ewise_mult<S>(ewise_mult<S>(a, b), zero_norm<S>(m));
  EXPECT_EQ(lhs, rhs);
}

TEST(MaskedBfsStep, ComplementMaskExcludesVisited) {
  // One BFS step that must not revisit: frontier x A masked by ¬visited.
  using B = semiring::LorLand;
  const auto adj = Matrix<std::uint8_t>::from_unique_triples(
      3, 3, {{0, 1, std::uint8_t{1}}, {1, 0, std::uint8_t{1}},
             {1, 2, std::uint8_t{1}}});
  const auto frontier = Matrix<std::uint8_t>::from_unique_triples(
      1, 3, {{0, 1, std::uint8_t{1}}});
  const auto visited = Matrix<std::uint8_t>::from_unique_triples(
      1, 3, {{0, 0, std::uint8_t{1}}, {0, 1, std::uint8_t{1}}});
  const auto next = mxm_masked<B>(frontier, adj, visited,
                                  {.complement = true});
  EXPECT_EQ(next.nnz(), 1);
  EXPECT_TRUE(next.get(0, 2).has_value());  // vertex 0 masked off
}

TEST(MaskedEwiseAdd, MaskAppliesAfterUnion) {
  const auto a = sample();
  const auto b = mask_pattern();
  const auto c = ewise_add_masked<S>(a, b, mask_pattern());
  EXPECT_EQ(c.nnz(), 3);  // exactly the mask positions
  EXPECT_EQ(c.get(0, 1), 3.0);
}

TEST(Masked, HypersparseOperands) {
  const Index huge = Index{1} << 40;
  const auto a = Matrix<double>::from_unique_triples(
      huge, huge, {{5, 5, 1.0}, {Index{1} << 30, 2, 3.0}});
  const auto m = Matrix<double>::from_unique_triples(
      huge, huge, {{Index{1} << 30, 2, 1.0}});
  const auto c = mask_select(a, m);
  EXPECT_EQ(c.nnz(), 1);
  EXPECT_EQ(c.get(Index{1} << 30, 2), 3.0);
}

}  // namespace
