// Unit tests for Matrix<T>: the format-switching container (Fig 4 /
// SuiteSparse-style sparse/hypersparse/bitmap/full behaviour).

#include <gtest/gtest.h>

#include "semiring/arithmetic.hpp"
#include "sparse/io.hpp"
#include "sparse/matrix.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::sparse;
using S = semiring::PlusTimes<double>;

Matrix<double> sample() {
  return make_matrix<S>(100, 100, {{0, 1, 1.0}, {5, 5, 2.0}, {99, 0, 3.0}});
}

TEST(ChooseFormat, DenseOnlyWhenCompletelyFull) {
  EXPECT_EQ(choose_format(10, 10, 100, 10), Format::kDense);
  // 90% full is *not* dense — automatic switching must never fabricate
  // entries, so anything short of full stays bitmap.
  EXPECT_EQ(choose_format(10, 10, 90, 10), Format::kBitmap);
}

TEST(ChooseFormat, BitmapAtModerateDensity) {
  EXPECT_EQ(choose_format(100, 100, 2000, 100), Format::kBitmap);
}

TEST(ChooseFormat, CsrForOrdinarySparse) {
  EXPECT_EQ(choose_format(1000, 1000, 5000, 900), Format::kCsr);
}

TEST(ChooseFormat, DcsrWhenFewRowsOccupied) {
  EXPECT_EQ(choose_format(1'000'000, 1'000'000, 50, 50), Format::kDcsr);
}

TEST(ChooseFormat, DcsrForcedByHugeRowCount) {
  // Even with every row "occupied", an O(nrows) row pointer is refused.
  const Index huge = Index{1} << 40;
  EXPECT_EQ(choose_format(huge, huge, huge, huge), Format::kDcsr);
}

TEST(Matrix, AutoFormatOnConstruction) {
  const auto m = sample();
  EXPECT_EQ(m.format(), Format::kDcsr);  // 3 of 100 rows occupied
  EXPECT_EQ(m.nnz(), 3);
}

TEST(Matrix, GetPresentAndAbsent) {
  const auto m = sample();
  EXPECT_EQ(m.get(5, 5), 2.0);
  EXPECT_EQ(m.get(5, 6), std::nullopt);
  EXPECT_EQ(m.get(-1, 0), std::nullopt);
  EXPECT_EQ(m.get(0, 1000), std::nullopt);
}

TEST(Matrix, ConversionRoundTripPreservesContent) {
  auto m = sample();
  const auto original = m.to_triples();
  for (const Format f : {Format::kCoo, Format::kCsr, Format::kBitmap,
                         Format::kDense, Format::kDcsr, Format::kCsr}) {
    m.convert(f);
    EXPECT_EQ(m.format(), f);
    if (f == Format::kDense) {
      // Dense stores every position; check the originals survived.
      for (const auto& t : original) {
        EXPECT_EQ(m.get(t.row, t.col), t.val);
      }
    } else {
      EXPECT_EQ(m.to_triples(), original) << format_name(f);
    }
  }
}

TEST(Matrix, DenseConversionFillsWithImplicitZero) {
  auto m = make_matrix<S>(2, 2, {{0, 0, 5.0}});
  m.convert(Format::kDense);
  EXPECT_EQ(m.get(1, 1), 0.0);  // S::zero()
}

TEST(Matrix, DensifyHugeThrows) {
  auto m = Matrix<double>::from_unique_triples(Index{1} << 30, Index{1} << 30,
                                               {{0, 0, 1.0}});
  EXPECT_THROW(m.convert(Format::kDense), std::length_error);
  EXPECT_THROW(m.convert(Format::kBitmap), std::length_error);
  EXPECT_THROW(m.convert(Format::kCsr), std::length_error);
  EXPECT_NO_THROW(m.convert(Format::kDcsr));
}

TEST(Matrix, EqualityIgnoresFormat) {
  auto a = sample();
  auto b = sample();
  b.convert(Format::kCsr);
  EXPECT_EQ(a, b);
  b.convert(Format::kBitmap);
  // Bitmap stores the same entries — still equal.
  EXPECT_EQ(a, b);
}

TEST(Matrix, FromTriplesCombinesDuplicatesWithSemiring) {
  const auto m = make_matrix<S>(4, 4, {{1, 1, 1.0}, {1, 1, 2.0}});
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_EQ(m.get(1, 1), 3.0);
}

TEST(Matrix, FromUniqueTriplesRejectsDuplicates) {
  EXPECT_THROW(Matrix<double>::from_unique_triples(
                   2, 2, {{0, 0, 1.0}, {0, 0, 2.0}}),
               std::invalid_argument);
}

TEST(Matrix, IdentityShape) {
  const auto eye = Matrix<double>::identity(5, 1.0);
  EXPECT_EQ(eye.nnz(), 5);
  EXPECT_EQ(eye.get(3, 3), 1.0);
  EXPECT_EQ(eye.get(3, 4), std::nullopt);
}

TEST(Matrix, FullIsDense) {
  const auto ones = Matrix<double>::full(4, 6, 1.0);
  EXPECT_EQ(ones.format(), Format::kDense);
  EXPECT_EQ(ones.nnz(), 24);
  EXPECT_EQ(ones.get(3, 5), 1.0);
}

TEST(Matrix, AutoFormatAfterConversionRestoresRule) {
  auto m = sample();
  m.convert(Format::kCsr);
  m.auto_format();
  EXPECT_EQ(m.format(), Format::kDcsr);
}

TEST(Matrix, ViewWorksForEveryFormat) {
  auto m = sample();
  const auto expect = m.to_triples();
  for (const Format f : {Format::kCsr, Format::kDcsr, Format::kCoo,
                         Format::kBitmap}) {
    m.convert(f);
    const auto v = m.view();
    EXPECT_EQ(v.nnz(), 3) << format_name(f);
  }
}

TEST(Matrix, CopyIsIndependent) {
  auto a = sample();
  auto b = a;
  b.convert(Format::kCsr);
  EXPECT_EQ(a.format(), Format::kDcsr);
  EXPECT_EQ(b.format(), Format::kCsr);
  EXPECT_EQ(a, b);
}

TEST(Matrix, HypersparseExtremeDimensions) {
  const Index huge = Index{1} << 60;
  const auto m = Matrix<double>::from_unique_triples(
      huge, huge, {{Index{1} << 59, Index{1} << 58, 42.0}});
  EXPECT_EQ(m.format(), Format::kDcsr);
  EXPECT_EQ(m.get(Index{1} << 59, Index{1} << 58), 42.0);
  EXPECT_LT(m.bytes(), 2048u);
}

TEST(Matrix, SummaryAndGridRendering) {
  const auto m = make_matrix<S>(2, 2, {{0, 0, 1.0}, {1, 1, 2.0}});
  EXPECT_NE(summary(m).find("2x2"), std::string::npos);
  const auto grid = to_grid(m);
  EXPECT_NE(grid.find('1'), std::string::npos);
  EXPECT_NE(grid.find('.'), std::string::npos);
}

TEST(Matrix, EmptyMatrixBasics) {
  Matrix<double> m(3, 3);
  EXPECT_EQ(m.nnz(), 0);
  EXPECT_EQ(m.n_nonempty_rows(), 0);
  EXPECT_TRUE(m.to_triples().empty());
}

}  // namespace
