// Tests for the telemetry metrics registry (util/metrics.hpp): histogram
// percentile exactness against a sorted-sample reference, merge-on-read
// vs. per-thread-shard equivalence, the invariant/timing segregation
// rule, runtime disable, and export surface shape. The registry is
// process-global, so every test uses its own name prefix.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "helpers.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using namespace hyperspace;
namespace m = hyperspace::util::metrics;
using hyperspace::testing::ThreadGuard;

TEST(MetricsBuckets, FloorIsInverseOfIndexOnBounds) {
  for (std::size_t i = 0; i < m::kNumBuckets; ++i) {
    EXPECT_EQ(m::bucket_index(m::bucket_floor(i)), i) << "bucket " << i;
  }
}

TEST(MetricsBuckets, IndexIsMonotoneAndFloorBoundsValue) {
  util::Xoshiro256 rng(7);
  std::vector<std::uint64_t> vs = {0, 1, 15, 16, 17, 31, 32, 1000,
                                   (std::uint64_t{1} << 40) + 12345,
                                   ~std::uint64_t{0}};
  for (int i = 0; i < 4096; ++i) {
    vs.push_back(rng() >> (rng() % 64));
  }
  for (const auto v : vs) {
    const auto i = m::bucket_index(v);
    ASSERT_LT(i, m::kNumBuckets);
    const auto lo = m::bucket_floor(i);
    EXPECT_LE(lo, v);
    if (i + 1 < m::kNumBuckets) EXPECT_GT(m::bucket_floor(i + 1), v);
    // Sub-bucketing bounds relative error by 2^-kSubBits.
    EXPECT_LE(v - lo, v / m::kSubBuckets);
  }
}

TEST(MetricsBuckets, ValuesBelowSubBucketsAreExact) {
  for (std::uint64_t v = 0; v < m::kSubBuckets; ++v) {
    EXPECT_EQ(m::bucket_floor(m::bucket_index(v)), v);
  }
}

// The percentile contract, exactly: for any sample set, percentile(q) ==
// bucket_floor(bucket_index(s)) where s is the sample the nearest-rank
// definition picks from the sorted list.
TEST(MetricsHistogram, PercentileMatchesSortedSampleReference) {
  util::Xoshiro256 rng(42);
  m::Histogram h;
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 5000; ++i) {
    // Log-uniform over ~9 decades, plus a dense low band.
    const auto v = (i % 3 == 0) ? rng() % 32
                                : rng() >> (rng() % 50);
    samples.push_back(v);
    h.record(v);
  }
  auto sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const auto snap = h.snapshot();
  ASSERT_EQ(snap.count, samples.size());
  for (const double q : {0.5, 0.9, 0.95, 0.99, 0.999, 1.0}) {
    const auto rank = m::nearest_rank(q, snap.count);
    ASSERT_GE(rank, 1u);
    const auto ref = sorted[static_cast<std::size_t>(rank - 1)];
    EXPECT_EQ(snap.percentile(q), m::bucket_floor(m::bucket_index(ref)))
        << "q=" << q;
  }
  EXPECT_EQ(snap.max, sorted.back());
  std::uint64_t sum = 0;
  for (const auto v : samples) sum += v;
  EXPECT_EQ(snap.sum, sum);
}

TEST(MetricsHistogram, SmallValuePercentilesAreExact) {
  m::Histogram h;
  std::vector<std::uint64_t> samples = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5};
  for (const auto v : samples) h.record(v);
  auto sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const auto snap = h.snapshot();
  for (const double q : {0.25, 0.5, 0.75, 0.95, 1.0}) {
    const auto rank = m::nearest_rank(q, snap.count);
    EXPECT_EQ(snap.percentile(q), sorted[static_cast<std::size_t>(rank - 1)])
        << "q=" << q;
  }
}

TEST(MetricsHistogram, EmptyHistogramReadsZero) {
  m::Histogram h;
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.percentile(0.5), 0u);
  EXPECT_EQ(snap.mean(), 0.0);
}

// Merge-on-read equivalence: recording the same multiset of samples from
// 1 thread and from many threads yields identical merged state, and the
// counter total is exact (per-thread shards never lose increments).
TEST(MetricsShards, MergeOnReadMatchesSingleThread) {
  util::Xoshiro256 rng(3);
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 20000; ++i) {
    samples.push_back(rng() >> (rng() % 40));
  }

  m::Histogram serial;
  for (const auto v : samples) serial.record(v);
  const auto want = serial.snapshot();

  for (const int nt : {2, 8}) {
    ThreadGuard guard(nt);
    m::Histogram parallel;
    m::Counter counter;
    util::parallel_for(0, static_cast<std::ptrdiff_t>(samples.size()), 64,
                       [&](std::ptrdiff_t i) {
                         parallel.record(samples[static_cast<std::size_t>(i)]);
                         counter.inc();
                       });
    const auto got = parallel.snapshot();
    EXPECT_EQ(got.count, want.count) << "threads=" << nt;
    EXPECT_EQ(got.sum, want.sum) << "threads=" << nt;
    EXPECT_EQ(got.max, want.max) << "threads=" << nt;
    EXPECT_EQ(got.buckets, want.buckets) << "threads=" << nt;
    EXPECT_EQ(counter.value(), samples.size()) << "threads=" << nt;
  }
}

TEST(MetricsRegistry, FindOrRegisterReturnsSameEntry) {
  auto& r = m::Registry::instance();
  auto& c1 = r.counter("test.reg.same", m::Stability::kInvariant);
  auto& c2 = r.counter("test.reg.same", m::Stability::kInvariant);
  EXPECT_EQ(&c1, &c2);
  c1.add(3);
  EXPECT_EQ(r.counter_value("test.reg.same"), 3u);
}

// Rule 2: invariant and timing-dependent stats never share a name, and a
// name never changes kind. Enforced with logic_error at registration.
TEST(MetricsRegistry, StabilityAndKindSegregationEnforced) {
  auto& r = m::Registry::instance();
  r.counter("test.reg.inv", m::Stability::kInvariant);
  EXPECT_THROW(r.counter("test.reg.inv", m::Stability::kTiming),
               std::logic_error);
  EXPECT_THROW(r.gauge("test.reg.inv", m::Stability::kInvariant),
               std::logic_error);
  EXPECT_THROW(r.histogram("test.reg.inv"), std::logic_error);
  r.histogram("test.reg.hist");  // histograms are kTiming by definition
  EXPECT_THROW(r.counter("test.reg.hist", m::Stability::kTiming),
               std::logic_error);
}

TEST(MetricsRegistry, RuntimeDisableStopsRecording) {
  auto& r = m::Registry::instance();
  auto& c = r.counter("test.reg.disable", m::Stability::kInvariant);
  auto& h = r.histogram("test.reg.disable.hist");
  c.add(1);
  m::set_enabled(false);
  c.add(100);
  h.record(55);
  m::set_enabled(true);
  c.add(1);
  h.record(7);
  EXPECT_EQ(c.value(), 2u);
  EXPECT_EQ(h.snapshot().count, 1u);
  EXPECT_EQ(h.snapshot().max, 7u);
}

TEST(MetricsRegistry, ResetValuesKeepsHandlesValid) {
  auto& r = m::Registry::instance();
  auto& c = r.counter("test.reg.reset", m::Stability::kInvariant);
  auto& h = r.histogram("test.reg.reset.hist");
  c.add(9);
  h.record(9);
  r.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.snapshot().count, 0u);
  c.add(2);  // the same handle still records
  EXPECT_EQ(r.counter_value("test.reg.reset"), 2u);
}

TEST(MetricsRegistry, PrometheusTextSegregatesSections) {
  auto& r = m::Registry::instance();
  r.counter("test.prom.flops", m::Stability::kInvariant).add(5);
  r.gauge("test.prom.limit", m::Stability::kTiming).set(2.5);
  r.histogram("test.prom.lat").record(100);
  const auto text = r.prometheus_text();
  const auto inv = text.find("# stability: invariant");
  const auto tim = text.find("# stability: timing");
  ASSERT_NE(inv, std::string::npos);
  ASSERT_NE(tim, std::string::npos);
  EXPECT_LT(inv, tim);
  const auto flops = text.find("hyperspace_test_prom_flops 5");
  ASSERT_NE(flops, std::string::npos);
  EXPECT_LT(flops, tim) << "invariant counter must render in the "
                           "invariant section";
  EXPECT_GT(text.find("hyperspace_test_prom_limit"), tim);
  EXPECT_NE(text.find("hyperspace_test_prom_lat{quantile=\"0.95\"}"),
            std::string::npos);
  EXPECT_NE(text.find("hyperspace_test_prom_lat_count 1"),
            std::string::npos);
}

TEST(MetricsRegistry, JsonShape) {
  auto& r = m::Registry::instance();
  r.counter("test.json.c", m::Stability::kInvariant).add(11);
  r.histogram("test.json.h").record(3);
  const auto j = r.json();
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
  EXPECT_NE(j.find("\"invariant\":{"), std::string::npos);
  EXPECT_NE(j.find("\"test.json.c\":"), std::string::npos);
  EXPECT_NE(j.find("\"histograms\":{"), std::string::npos);
  EXPECT_NE(j.find("\"p95\":"), std::string::npos);
}

TEST(MetricsTimer, ScopedTimerRecordsOnceWhenEnabled) {
  m::Histogram h;
  { m::ScopedTimer t(h); }
  EXPECT_EQ(h.snapshot().count, 1u);
  m::set_enabled(false);
  { m::ScopedTimer t(h); }
  m::set_enabled(true);
  EXPECT_EQ(h.snapshot().count, 1u);
}

}  // namespace
