// Unit + property tests for array multiplication C = A ⊕.⊗ B (SpGEMM).

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "semiring/all.hpp"
#include "sparse/ewise.hpp"
#include "sparse/io.hpp"
#include "sparse/mxm.hpp"
#include "sparse/transpose.hpp"
#include "util/generators.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::sparse;
using S = semiring::PlusTimes<double>;

Matrix<double> random_matrix(Index nr, Index nc, std::size_t m,
                             std::uint64_t seed) {
  std::vector<Triple<double>> t;
  util::Xoshiro256 rng(seed);
  for (std::size_t e = 0; e < m; ++e) {
    t.push_back({static_cast<Index>(rng.bounded(static_cast<std::uint64_t>(nr))),
                 static_cast<Index>(rng.bounded(static_cast<std::uint64_t>(nc))),
                 rng.uniform(1.0, 2.0)});
  }
  return Matrix<double>::from_triples<S>(nr, nc, std::move(t));
}

/// Reference O(n^3)-style triple-loop product for validation.
Matrix<double> reference_mxm(const Matrix<double>& A, const Matrix<double>& B) {
  std::map<std::pair<Index, Index>, double> acc;
  for (const auto& ta : A.to_triples()) {
    for (const auto& tb : B.to_triples()) {
      if (ta.col == tb.row) acc[{ta.row, tb.col}] += ta.val * tb.val;
    }
  }
  std::vector<Triple<double>> t;
  for (const auto& [rc, v] : acc) t.push_back({rc.first, rc.second, v});
  return Matrix<double>::from_canonical_triples(A.nrows(), B.ncols(), t);
}

bool approx_equal(const Matrix<double>& a, const Matrix<double>& b,
                  double tol = 1e-9) {
  const auto ta = a.to_triples();
  const auto tb = b.to_triples();
  if (a.nrows() != b.nrows() || a.ncols() != b.ncols()) return false;
  if (ta.size() != tb.size()) return false;
  for (std::size_t i = 0; i < ta.size(); ++i) {
    if (ta[i].row != tb[i].row || ta[i].col != tb[i].col) return false;
    if (std::abs(ta[i].val - tb[i].val) > tol) return false;
  }
  return true;
}

TEST(Mxm, SmallWorkedExample) {
  const auto a = make_matrix<S>(2, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, 3.0}});
  const auto b = make_matrix<S>(3, 2, {{0, 0, 4.0}, {1, 1, 5.0}, {2, 0, 6.0}});
  const auto c = mxm<S>(a, b);
  EXPECT_EQ(c.get(0, 0), 1.0 * 4.0 + 2.0 * 6.0);
  EXPECT_EQ(c.get(1, 1), 15.0);
  EXPECT_EQ(c.nnz(), 2);
}

TEST(Mxm, InnerDimensionMismatchThrows) {
  const auto a = random_matrix(4, 5, 10, 1);
  const auto b = random_matrix(4, 5, 10, 2);
  EXPECT_THROW(mxm<S>(a, b), std::invalid_argument);
}

TEST(Mxm, IdentityIsMtimesIdentity) {
  const auto a = random_matrix(50, 50, 300, 3);
  const auto eye = Matrix<double>::identity(50, 1.0);
  EXPECT_TRUE(approx_equal(mxm<S>(a, eye), a));
  EXPECT_TRUE(approx_equal(mxm<S>(eye, a), a));
}

TEST(Mxm, ZeroAnnihilates) {
  const auto a = random_matrix(20, 20, 80, 4);
  const Matrix<double> zero(20, 20);
  EXPECT_EQ(mxm<S>(a, zero).nnz(), 0);
  EXPECT_EQ(mxm<S>(zero, a).nnz(), 0);
}

TEST(Mxm, MatchesReferenceImplementation) {
  const auto a = random_matrix(30, 40, 150, 5);
  const auto b = random_matrix(40, 25, 150, 6);
  EXPECT_TRUE(approx_equal(mxm<S>(a, b), reference_mxm(a, b)));
}

TEST(Mxm, GustavsonAndHashAgree) {
  const auto a = random_matrix(60, 60, 500, 7);
  const auto b = random_matrix(60, 60, 500, 8);
  const auto g = mxm_gustavson<S>(a, b);
  const auto h = mxm_hash<S>(a, b);
  EXPECT_TRUE(approx_equal(g, h, 1e-12));
}

TEST(Mxm, AllAccumulatorStrategiesBitIdentical) {
  // Every accumulator folds duplicates with S::add in encounter order, so
  // agreement is exact, not approximate — floats included.
  const auto a = random_matrix(80, 80, 900, 21);
  const auto b = random_matrix(80, 80, 900, 22);
  const auto g = mxm_gustavson<S>(a, b);
  EXPECT_EQ(g, mxm_hash<S>(a, b));
  EXPECT_EQ(g, mxm_sorted<S>(a, b));
  EXPECT_EQ(g, mxm_hash_baseline<S>(a, b));
  EXPECT_EQ(g, mxm<S>(a, b, MxmStrategy::kSorted));
}

TEST(Mxm, GustavsonRefusesHugeAccumulator) {
  const Index huge = Index{1} << 40;
  const auto a = Matrix<double>::from_unique_triples(2, huge, {{0, 5, 1.0}});
  const auto b = Matrix<double>::from_unique_triples(huge, huge,
                                                     {{5, 123, 2.0}});
  EXPECT_THROW(mxm_gustavson<S>(a, b), std::length_error);
  // Auto strategy falls back to hashing and succeeds.
  const auto c = mxm<S>(a, b);
  EXPECT_EQ(c.get(0, 123), 2.0);
}

TEST(Mxm, HypersparseChainKeepsTinyFootprint) {
  const Index huge = Index{1} << 50;
  std::vector<Triple<double>> t;
  for (Index i = 0; i < 50; ++i) {
    t.push_back({i * (huge / 64), (i + 1) * (huge / 64), 1.0});
  }
  const auto a = Matrix<double>::from_unique_triples(huge, huge, t);
  const auto c = mxm<S>(a, a);  // two-hop links
  EXPECT_EQ(c.nnz(), 49);
  EXPECT_LT(c.bytes(), 16384u);
}

TEST(Mxm, MinPlusComputesShortestTwoHops) {
  using MP = semiring::MinPlus<double>;
  // 0 -> 1 (3), 0 -> 2 (1), 1 -> 3 (1), 2 -> 3 (5): best 0->3 is 4 via 1.
  auto a = make_matrix<MP>(4, 4, {{0, 1, 3.0}, {0, 2, 1.0}, {1, 3, 1.0},
                                  {2, 3, 5.0}});
  const auto c = mxm<MP>(a, a);
  EXPECT_EQ(c.get(0, 3), 4.0);
}

TEST(Mxm, MaxMinComputesBottleneckPaths) {
  using MM = semiring::MaxMin<double>;
  // Widest-path over two hops: 0->1 cap 5, 1->2 cap 2 → path cap min(5,2)=2;
  // 0->3 cap 1, 3->2 cap 9 → cap 1. max = 2.
  auto a = make_matrix<MM>(4, 4, {{0, 1, 5.0}, {1, 2, 2.0}, {0, 3, 1.0},
                                  {3, 2, 9.0}});
  const auto c = mxm<MM>(a, a);
  EXPECT_EQ(c.get(0, 2), 2.0);
}

TEST(Mxm, UnionIntersectRelationalComposition) {
  using U = semiring::UnionIntersect;
  using semiring::ValueSet;
  // Compose two "relations": C(0,0) = (A(0,0)∩B(0,0)) ∪ (A(0,1)∩B(1,0)).
  const auto a = make_matrix<U>(1, 2, {{0, 0, ValueSet{1, 2}},
                                       {0, 1, ValueSet{3, 4}}});
  const auto b = make_matrix<U>(2, 1, {{0, 0, ValueSet{2, 9}},
                                       {1, 0, ValueSet{4}}});
  const auto c = mxm<U>(a, b);
  EXPECT_EQ(c.get(0, 0), (ValueSet{2, 4}));
}

// Property sweep: (AB)ᵀ = BᵀAᵀ and associativity, across seeds.
class MxmProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MxmProperties, TransposeOfProduct) {
  const auto a = random_matrix(25, 30, 120, GetParam());
  const auto b = random_matrix(30, 20, 120, GetParam() + 50);
  EXPECT_TRUE(approx_equal(transpose(mxm<S>(a, b)),
                           mxm<S>(transpose(b), transpose(a))));
}

TEST_P(MxmProperties, Associativity) {
  const auto a = random_matrix(15, 20, 60, GetParam());
  const auto b = random_matrix(20, 18, 60, GetParam() + 1);
  const auto c = random_matrix(18, 12, 60, GetParam() + 2);
  EXPECT_TRUE(approx_equal(mxm<S>(mxm<S>(a, b), c),
                           mxm<S>(a, mxm<S>(b, c)), 1e-8));
}

TEST_P(MxmProperties, DistributesOverEwiseAdd) {
  const auto a = random_matrix(15, 20, 60, GetParam() + 3);
  const auto b = random_matrix(20, 12, 60, GetParam() + 4);
  const auto c = random_matrix(20, 12, 60, GetParam() + 5);
  const auto lhs = mxm<S>(a, ewise_add<S>(b, c));
  const auto rhs = ewise_add<S>(mxm<S>(a, b), mxm<S>(a, c));
  EXPECT_TRUE(approx_equal(lhs, rhs, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MxmProperties,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
