// Tests for the vector ⊕.⊗ conveniences (mxv.hpp) and the small utility
// layer (text tables, timing, grid rendering edge cases).

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "semiring/all.hpp"
#include "sparse/io.hpp"
#include "sparse/mxv.hpp"
#include "sparse/transpose.hpp"
#include "util/table.hpp"
#include "util/timing.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::sparse;
using S = semiring::PlusTimes<double>;

TEST(RowVector, BuildsOneByN) {
  const auto v = row_vector<S>(5, {{1, 2.0}, {4, 3.0}});
  EXPECT_EQ(v.nrows(), 1);
  EXPECT_EQ(v.ncols(), 5);
  EXPECT_EQ(v.get(0, 4), 3.0);
}

TEST(ColVector, BuildsNByOne) {
  const auto v = col_vector<S>(4, {{0, 1.0}, {3, 2.0}});
  EXPECT_EQ(v.nrows(), 4);
  EXPECT_EQ(v.ncols(), 1);
  EXPECT_EQ(v.get(3, 0), 2.0);
}

TEST(RowVector, DuplicateIndicesCombine) {
  const auto v = row_vector<S>(3, {{1, 2.0}, {1, 5.0}});
  EXPECT_EQ(v.get(0, 1), 7.0);
}

TEST(Vxm, MatchesManualDotProducts) {
  const auto a = make_matrix<S>(3, 2, {{0, 0, 1.0}, {1, 0, 2.0}, {2, 1, 4.0}});
  const auto v = row_vector<S>(3, {{0, 10.0}, {2, 1.0}});
  const auto r = vxm<S>(v, a);
  EXPECT_EQ(r.get(0, 0), 10.0);  // 10*1
  EXPECT_EQ(r.get(0, 1), 4.0);   // 1*4
}

TEST(Mxv, MatchesTransposedVxm) {
  const auto a = make_matrix<S>(3, 3, {{0, 1, 2.0}, {1, 2, 3.0}, {2, 0, 5.0}});
  const auto x = col_vector<S>(3, {{1, 1.0}, {2, 1.0}});
  const auto down = mxv<S>(a, x);
  EXPECT_EQ(down.get(0, 0), 2.0);
  EXPECT_EQ(down.get(1, 0), 3.0);
  EXPECT_EQ(down.get(2, 0), std::nullopt);  // row 2 hits only column 0
}

TEST(Vxm, MinPlusRelaxationStep) {
  using MP = semiring::MinPlus<double>;
  const auto a = make_matrix<MP>(3, 3, {{0, 1, 5.0}, {0, 2, 2.0}, {2, 1, 1.0}});
  const auto d = row_vector<MP>(3, {{0, 0.0}});
  const auto step1 = vxm<MP>(d, a);
  EXPECT_EQ(step1.get(0, 1), 5.0);
  EXPECT_EQ(step1.get(0, 2), 2.0);
}

TEST(MxvPull, DenseVectorWorkedExample) {
  const auto a = make_matrix<S>(3, 3, {{0, 1, 2.0}, {1, 2, 3.0}, {2, 0, 5.0}});
  const std::vector<double> x = {1.0, 10.0, 100.0};
  const auto y = mxv_pull<S>(a, x);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 20.0);   // 2*10
  EXPECT_DOUBLE_EQ(y[1], 300.0);  // 3*100
  EXPECT_DOUBLE_EQ(y[2], 5.0);    // 5*1
}

TEST(VxmPush, DenseVectorWorkedExample) {
  const auto a = make_matrix<S>(3, 3, {{0, 1, 2.0}, {1, 2, 3.0}, {2, 0, 5.0}});
  const std::vector<double> x = {1.0, 10.0, 100.0};
  const auto y = vxm_push<S>(x, a);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], 500.0);  // 100*5
  EXPECT_DOUBLE_EQ(y[1], 2.0);    // 1*2
  EXPECT_DOUBLE_EQ(y[2], 30.0);   // 10*3
}

TEST(MxvPushPull, DimensionMismatchThrows) {
  const auto a = make_matrix<S>(3, 2, {{0, 0, 1.0}});
  EXPECT_THROW(mxv_pull<S>(a, std::vector<double>(3, 1.0)),
               std::invalid_argument);
  EXPECT_THROW(vxm_push<S>(std::vector<double>(2, 1.0), a),
               std::invalid_argument);
}

TEST(VxmPush, ZeroEntriesShortCircuitButResultMatchesPull) {
  // push over A must equal pull over Aᵀ for a semiring with exact ops.
  using MP = semiring::MinPlus<double>;
  const auto a = make_matrix<MP>(4, 4, {{0, 1, 5.0}, {0, 2, 2.0},
                                        {2, 1, 1.0}, {3, 3, 4.0}});
  std::vector<double> x(4, MP::one());
  x[1] = MP::zero();  // inactive source
  const auto push = vxm_push<MP>(x, a);
  const auto pull = mxv_pull<MP>(transpose(a), x);
  EXPECT_EQ(push, pull);
}

TEST(TextTable, AlignsColumns) {
  util::TextTable t({"name", "value"});
  t.row("x", 1);
  t.row("longer", 2.5);
  std::ostringstream os;
  t.print(os);
  const auto s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);  // separator row
}

TEST(TextTable, MixedCellTypes) {
  util::TextTable t({"a", "b", "c"});
  t.row(std::string("str"), 42, 3.14159);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("3.142"), std::string::npos);  // 4 sig figs
}

TEST(Banner, ContainsTitle) {
  std::ostringstream os;
  util::banner("Hello Section", os);
  EXPECT_NE(os.str().find("Hello Section"), std::string::npos);
}

TEST(WallTimer, MeasuresElapsedTime) {
  util::WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(t.millis(), 9.0);
  t.reset();
  EXPECT_LT(t.millis(), 9.0);
}

TEST(ToGrid, LargeMatrixSummarizesInsteadOfPrinting) {
  const auto big = Matrix<double>::from_unique_triples(
      1000, 1000, {{0, 0, 1.0}});
  const auto s = to_grid(big);
  EXPECT_NE(s.find("nnz=1"), std::string::npos);
  EXPECT_EQ(s.find("\n.\n"), std::string::npos);  // no giant grid
}

TEST(ToGrid, EmptyMatrix) {
  const Matrix<double> m(2, 2);
  const auto s = to_grid(m);
  EXPECT_NE(s.find('.'), std::string::npos);
}

TEST(Summary, MentionsFormatAndShape) {
  const auto m = make_matrix<S>(3, 4, {{0, 0, 1.0}});
  const auto s = summary(m);
  EXPECT_NE(s.find("3x4"), std::string::npos);
  EXPECT_NE(s.find("nnz=1"), std::string::npos);
}

}  // namespace
