// Tests for the unified parallel runtime (util/parallel.hpp) and the
// determinism contract of every kernel running on it: identical —
// bit-identical, not approximately equal — output at 1, 2, and 8 threads,
// across the arithmetic, tropical, and set-algebra semirings.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "hypergraph/bfs.hpp"
#include "hypergraph/centrality.hpp"
#include "semiring/all.hpp"
#include "sparse/apply.hpp"
#include "sparse/ewise.hpp"
#include "sparse/kron.hpp"
#include "sparse/masked.hpp"
#include "sparse/mxm.hpp"
#include "sparse/mxv.hpp"
#include "sparse/reduce.hpp"
#include "sparse/transpose.hpp"
#include "helpers.hpp"
#include "util/generators.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::sparse;
using hyperspace::testing::ThreadGuard;

const std::vector<int> kThreadCounts = {1, 2, 8};

/// Run `make()` at every thread count and require bit-identical results.
template <typename F>
auto require_thread_invariant(F&& make) {
  ThreadGuard guard(1);
  const auto reference = make();
  for (const int nt : kThreadCounts) {
    util::set_num_threads(nt);
    const auto result = make();
    EXPECT_TRUE(result == reference) << "diverged at " << nt << " threads";
  }
  return reference;
}

Matrix<double> random_double_matrix(Index nr, Index nc, std::size_t m,
                                    std::uint64_t seed) {
  using S = semiring::PlusTimes<double>;
  util::Xoshiro256 rng(seed);
  std::vector<Triple<double>> t;
  t.reserve(m);
  for (std::size_t e = 0; e < m; ++e) {
    // Integer-valued doubles: every ⊕/⊗ below is exact, so equality is
    // legitimate even where the fold order changes.
    t.push_back({static_cast<Index>(rng.bounded(static_cast<std::uint64_t>(nr))),
                 static_cast<Index>(rng.bounded(static_cast<std::uint64_t>(nc))),
                 static_cast<double>(1 + rng.bounded(8))});
  }
  return Matrix<double>::from_triples<S>(nr, nc, std::move(t));
}

Matrix<semiring::ValueSet> random_set_matrix(Index n, std::size_t m,
                                             std::uint64_t seed) {
  using S = semiring::UnionIntersect;
  util::Xoshiro256 rng(seed);
  std::vector<Triple<semiring::ValueSet>> t;
  t.reserve(m);
  for (std::size_t e = 0; e < m; ++e) {
    t.push_back({static_cast<Index>(rng.bounded(static_cast<std::uint64_t>(n))),
                 static_cast<Index>(rng.bounded(static_cast<std::uint64_t>(n))),
                 semiring::ValueSet{static_cast<std::int64_t>(rng.bounded(16)),
                                    static_cast<std::int64_t>(rng.bounded(16))}});
  }
  return Matrix<semiring::ValueSet>::from_triples<S>(n, n, std::move(t));
}

// ------------------------------------------------------------- runtime core

TEST(ParallelRuntime, ForCoversEveryIndexExactlyOnce) {
  for (const int nt : kThreadCounts) {
    ThreadGuard guard(nt);
    constexpr std::ptrdiff_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    util::parallel_for(0, n, 7, [&](std::ptrdiff_t i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (std::ptrdiff_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
    }
  }
}

TEST(ParallelRuntime, ScratchIsPerWorkerNotPerIndex) {
  ThreadGuard guard(4);
  std::atomic<int> scratch_made{0};
  std::atomic<int> visited{0};
  util::parallel_for_scratch(
      0, 256, 4,
      [&] {
        scratch_made.fetch_add(1);
        return 0;
      },
      [&](std::ptrdiff_t, int& s) {
        ++s;
        visited.fetch_add(1);
      });
  EXPECT_EQ(visited.load(), 256);
  // One scratch per participating worker — never one per index.
  EXPECT_GE(scratch_made.load(), 1);
  EXPECT_LE(scratch_made.load(), 4);
}

TEST(ParallelRuntime, ChunksHaveFixedBoundaries) {
  for (const int nt : kThreadCounts) {
    ThreadGuard guard(nt);
    std::vector<std::pair<std::ptrdiff_t, std::ptrdiff_t>> bounds(
        static_cast<std::size_t>(util::chunk_count(100, 30)));
    util::parallel_chunks(0, 100, 30,
                          [&](std::ptrdiff_t c, std::ptrdiff_t lo,
                              std::ptrdiff_t hi) {
                            bounds[static_cast<std::size_t>(c)] = {lo, hi};
                          });
    const std::vector<std::pair<std::ptrdiff_t, std::ptrdiff_t>> expect = {
        {0, 30}, {30, 60}, {60, 90}, {90, 100}};
    EXPECT_EQ(bounds, expect) << "at " << nt << " threads";
  }
}

TEST(ParallelRuntime, ReduceIsThreadCountInvariant) {
  const auto sum = require_thread_invariant([] {
    return util::parallel_reduce(
        0, 10000, 64, 0.0,
        [](std::ptrdiff_t i) { return static_cast<double>(i); },
        [](double a, double b) { return a + b; });
  });
  EXPECT_DOUBLE_EQ(sum, 10000.0 * 9999.0 / 2.0);
}

TEST(ParallelRuntime, ExceptionsPropagateToCaller) {
  for (const int nt : kThreadCounts) {
    ThreadGuard guard(nt);
    EXPECT_THROW(
        util::parallel_for(0, 100, 1,
                           [](std::ptrdiff_t i) {
                             if (i == 37) throw std::runtime_error("boom");
                           }),
        std::runtime_error);
  }
}

TEST(ParallelRuntime, NestedParallelForRunsToCompletion) {
  // Nested regions run the inner job inline on the calling worker (both
  // backends) — this would deadlock a single-job-slot pool without the
  // reentrancy guard.
  ThreadGuard guard(4);
  std::atomic<int> total{0};
  util::parallel_for(0, 8, 1, [&](std::ptrdiff_t) {
    util::parallel_for(0, 8, 1,
                       [&](std::ptrdiff_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ParallelRuntime, EnvVariableControlsThreadCount) {
  // set_num_threads(0) falls through to HYPERSPACE_NUM_THREADS.
  util::set_num_threads(0);
  ASSERT_EQ(setenv("HYPERSPACE_NUM_THREADS", "3", 1), 0);
  EXPECT_EQ(util::max_threads(), 3);
  ASSERT_EQ(unsetenv("HYPERSPACE_NUM_THREADS"), 0);
  ThreadGuard guard(5);
  EXPECT_EQ(util::max_threads(), 5);
}

// -------------------------------------------------- kernels — arithmetic ⊕.⊗

TEST(ParallelKernels, MxmBothStrategiesArithmetic) {
  using S = semiring::PlusTimes<double>;
  const auto a = random_double_matrix(128, 96, 1500, 1);
  const auto b = random_double_matrix(96, 80, 1500, 2);
  require_thread_invariant([&] { return mxm_gustavson<S>(a, b); });
  require_thread_invariant([&] { return mxm_hash<S>(a, b); });
  ThreadGuard guard(8);
  EXPECT_TRUE(mxm_gustavson<S>(a, b) == mxm_hash<S>(a, b));
}

TEST(ParallelKernels, EwiseAddMultArithmetic) {
  using S = semiring::PlusTimes<double>;
  const auto a = random_double_matrix(200, 150, 3000, 3);
  const auto b = random_double_matrix(200, 150, 3000, 4);
  require_thread_invariant([&] { return ewise_add<S>(a, b); });
  require_thread_invariant([&] { return ewise_mult<S>(a, b); });
}

TEST(ParallelKernels, ReduceFamilyArithmetic) {
  using Add = semiring::AddMonoidOf<semiring::PlusTimes<double>>;
  const auto a = random_double_matrix(300, 200, 4000, 5);
  require_thread_invariant([&] { return reduce_rows<Add>(a); });
  require_thread_invariant([&] { return reduce_cols<Add>(a); });
  const auto total = require_thread_invariant([&] {
    return std::vector<double>{reduce_all<Add>(a)};
  });
  // Integer-valued entries: the chunked fold must equal the plain sum.
  double expect = 0;
  for (const auto& t : a.to_triples()) expect += t.val;
  EXPECT_DOUBLE_EQ(total[0], expect);
}

TEST(ParallelKernels, TransposeCountingAndSortPaths) {
  const auto a = random_double_matrix(256, 192, 6000, 6);  // counting path
  const auto t = require_thread_invariant([&] { return transpose(a); });
  EXPECT_TRUE(transpose(t) == a);
  // Wide hypersparse input exercises the sort fallback (nnz < ncols).
  const auto wide = random_double_matrix(64, 100000, 500, 7);
  const auto wt = require_thread_invariant([&] { return transpose(wide); });
  EXPECT_TRUE(transpose(wt) == wide);
}

TEST(ParallelKernels, ApplySelectZeroNormMask) {
  using S = semiring::PlusTimes<double>;
  const auto a = random_double_matrix(150, 150, 4000, 8);
  const auto m = random_double_matrix(150, 150, 2000, 9);
  require_thread_invariant([&] {
    return apply(a, [](const double& v) { return v * 2.0; });
  });
  require_thread_invariant([&] {
    return select(a, [](Index r, Index c, const double&) {
      return (r + c) % 2 == 0;
    });
  });
  require_thread_invariant([&] { return zero_norm<S>(a); });
  require_thread_invariant([&] { return mask_select(a, m); });
  require_thread_invariant([&] {
    return mask_select(a, m, MaskDesc{.complement = true});
  });
}

TEST(ParallelKernels, KronArithmetic) {
  using S = semiring::PlusTimes<double>;
  const auto a = random_double_matrix(24, 24, 200, 10);
  const auto b = random_double_matrix(16, 16, 100, 11);
  require_thread_invariant([&] { return kron<S>(a, b); });
}

TEST(ParallelKernels, MxvPushPullAgreeWithMxm) {
  using S = semiring::PlusTimes<double>;
  const auto a = random_double_matrix(180, 140, 3000, 12);
  util::Xoshiro256 rng(13);
  std::vector<double> x(140), y(180);
  for (auto& v : x) v = static_cast<double>(rng.bounded(5));
  for (auto& v : y) v = static_cast<double>(rng.bounded(5));

  const auto pull = require_thread_invariant([&] { return mxv_pull<S>(a, x); });
  const auto push = require_thread_invariant([&] { return vxm_push<S>(y, a); });

  // Dense reference against the mxm formulation.
  std::vector<double> pull_ref(180, 0.0), push_ref(140, 0.0);
  for (const auto& t : a.to_triples()) {
    pull_ref[static_cast<std::size_t>(t.row)] +=
        t.val * x[static_cast<std::size_t>(t.col)];
    push_ref[static_cast<std::size_t>(t.col)] +=
        y[static_cast<std::size_t>(t.row)] * t.val;
  }
  for (std::size_t i = 0; i < pull.size(); ++i) {
    EXPECT_DOUBLE_EQ(pull[i], pull_ref[i]) << "pull row " << i;
  }
  for (std::size_t j = 0; j < push.size(); ++j) {
    EXPECT_DOUBLE_EQ(push[j], push_ref[j]) << "push col " << j;
  }
}

// ---------------------------------------------------- kernels — tropical ⊕.⊗

TEST(ParallelKernels, TropicalSemiring) {
  using MP = semiring::MinPlus<double>;
  using S = semiring::PlusTimes<double>;
  const auto costs = random_double_matrix(100, 100, 2000, 14);
  // min.+ product = single-hop-constrained shortest paths.
  require_thread_invariant([&] { return mxm<MP>(costs, costs); });
  require_thread_invariant([&] { return ewise_add<MP>(costs, costs); });
  require_thread_invariant([&] {
    return reduce_rows<semiring::AddMonoidOf<MP>>(costs);
  });
  std::vector<double> x(100, 1.0);
  require_thread_invariant([&] { return mxv_pull<MP>(costs, x); });
  (void)sizeof(S);
}

// ------------------------------------------------- kernels — set algebra ⊕.⊗

TEST(ParallelKernels, SetAlgebraSemiring) {
  using S = semiring::UnionIntersect;
  const auto a = random_set_matrix(64, 600, 15);
  const auto b = random_set_matrix(64, 600, 16);
  require_thread_invariant([&] { return mxm<S>(a, b); });
  require_thread_invariant([&] { return ewise_add<S>(a, b); });
  require_thread_invariant([&] { return ewise_mult<S>(a, b); });
  require_thread_invariant([&] {
    return reduce_all<semiring::AddMonoidOf<S>>(a);
  });
  require_thread_invariant([&] { return transpose(a); });
}

// --------------------------------------------------------- graph algorithms

TEST(ParallelKernels, HypergraphBfsAndPagerank) {
  const auto edges = util::rmat_edges({.scale = 9, .edge_factor = 8, .seed = 17});
  using S = semiring::PlusTimes<double>;
  std::vector<Triple<double>> t;
  t.reserve(edges.size());
  for (const auto& e : edges) t.push_back({e.src, e.dst, 1.0});
  const auto A = Matrix<double>::from_triples<S>(1 << 9, 1 << 9, std::move(t));

  const auto levels = require_thread_invariant(
      [&] { return hypergraph::bfs_array(A, 0); });
  ThreadGuard guard(8);
  EXPECT_EQ(levels, hypergraph::bfs_queue(A, 0));

  require_thread_invariant([&] { return hypergraph::pagerank(A); });
}

}  // namespace
