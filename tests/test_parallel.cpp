// Tests for the unified parallel runtime (util/parallel.hpp) and the
// determinism contract of every kernel running on it: identical —
// bit-identical, not approximately equal — output at 1, 2, and 8 threads,
// across the arithmetic, tropical, and set-algebra semirings.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "hypergraph/bfs.hpp"
#include "hypergraph/centrality.hpp"
#include "semiring/all.hpp"
#include "sparse/apply.hpp"
#include "sparse/ewise.hpp"
#include "sparse/kron.hpp"
#include "sparse/masked.hpp"
#include "sparse/mxm.hpp"
#include "sparse/mxv.hpp"
#include "sparse/reduce.hpp"
#include "sparse/transpose.hpp"
#include "helpers.hpp"
#include "util/generators.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::sparse;
using hyperspace::testing::ThreadGuard;

const std::vector<int> kThreadCounts = {1, 2, 8};

/// Run `make()` at every thread count and require bit-identical results.
template <typename F>
auto require_thread_invariant(F&& make) {
  ThreadGuard guard(1);
  const auto reference = make();
  for (const int nt : kThreadCounts) {
    util::set_num_threads(nt);
    const auto result = make();
    EXPECT_TRUE(result == reference) << "diverged at " << nt << " threads";
  }
  return reference;
}

Matrix<double> random_double_matrix(Index nr, Index nc, std::size_t m,
                                    std::uint64_t seed) {
  using S = semiring::PlusTimes<double>;
  util::Xoshiro256 rng(seed);
  std::vector<Triple<double>> t;
  t.reserve(m);
  for (std::size_t e = 0; e < m; ++e) {
    // Integer-valued doubles: every ⊕/⊗ below is exact, so equality is
    // legitimate even where the fold order changes.
    t.push_back({static_cast<Index>(rng.bounded(static_cast<std::uint64_t>(nr))),
                 static_cast<Index>(rng.bounded(static_cast<std::uint64_t>(nc))),
                 static_cast<double>(1 + rng.bounded(8))});
  }
  return Matrix<double>::from_triples<S>(nr, nc, std::move(t));
}

Matrix<semiring::ValueSet> random_set_matrix(Index n, std::size_t m,
                                             std::uint64_t seed) {
  using S = semiring::UnionIntersect;
  util::Xoshiro256 rng(seed);
  std::vector<Triple<semiring::ValueSet>> t;
  t.reserve(m);
  for (std::size_t e = 0; e < m; ++e) {
    t.push_back({static_cast<Index>(rng.bounded(static_cast<std::uint64_t>(n))),
                 static_cast<Index>(rng.bounded(static_cast<std::uint64_t>(n))),
                 semiring::ValueSet{static_cast<std::int64_t>(rng.bounded(16)),
                                    static_cast<std::int64_t>(rng.bounded(16))}});
  }
  return Matrix<semiring::ValueSet>::from_triples<S>(n, n, std::move(t));
}

// ------------------------------------------------------------- runtime core

TEST(ParallelRuntime, ForCoversEveryIndexExactlyOnce) {
  for (const int nt : kThreadCounts) {
    ThreadGuard guard(nt);
    constexpr std::ptrdiff_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    util::parallel_for(0, n, 7, [&](std::ptrdiff_t i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (std::ptrdiff_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
    }
  }
}

TEST(ParallelRuntime, ScratchIsPerWorkerNotPerIndex) {
  ThreadGuard guard(4);
  std::atomic<int> scratch_made{0};
  std::atomic<int> visited{0};
  util::parallel_for_scratch(
      0, 256, 4,
      [&] {
        scratch_made.fetch_add(1);
        return 0;
      },
      [&](std::ptrdiff_t, int& s) {
        ++s;
        visited.fetch_add(1);
      });
  EXPECT_EQ(visited.load(), 256);
  // One scratch per participating worker — never one per index.
  EXPECT_GE(scratch_made.load(), 1);
  EXPECT_LE(scratch_made.load(), 4);
}

TEST(ParallelRuntime, ChunksHaveFixedBoundaries) {
  for (const int nt : kThreadCounts) {
    ThreadGuard guard(nt);
    std::vector<std::pair<std::ptrdiff_t, std::ptrdiff_t>> bounds(
        static_cast<std::size_t>(util::chunk_count(100, 30)));
    util::parallel_chunks(0, 100, 30,
                          [&](std::ptrdiff_t c, std::ptrdiff_t lo,
                              std::ptrdiff_t hi) {
                            bounds[static_cast<std::size_t>(c)] = {lo, hi};
                          });
    const std::vector<std::pair<std::ptrdiff_t, std::ptrdiff_t>> expect = {
        {0, 30}, {30, 60}, {60, 90}, {90, 100}};
    EXPECT_EQ(bounds, expect) << "at " << nt << " threads";
  }
}

TEST(ParallelRuntime, ReduceIsThreadCountInvariant) {
  const auto sum = require_thread_invariant([] {
    return util::parallel_reduce(
        0, 10000, 64, 0.0,
        [](std::ptrdiff_t i) { return static_cast<double>(i); },
        [](double a, double b) { return a + b; });
  });
  EXPECT_DOUBLE_EQ(sum, 10000.0 * 9999.0 / 2.0);
}

TEST(ParallelRuntime, ExceptionsPropagateToCaller) {
  for (const int nt : kThreadCounts) {
    ThreadGuard guard(nt);
    EXPECT_THROW(
        util::parallel_for(0, 100, 1,
                           [](std::ptrdiff_t i) {
                             if (i == 37) throw std::runtime_error("boom");
                           }),
        std::runtime_error);
  }
}

TEST(ParallelRuntime, NestedParallelForRunsToCompletion) {
  // Nested regions run the inner job inline on the calling worker (both
  // backends) — this would deadlock a single-job-slot pool without the
  // reentrancy guard.
  ThreadGuard guard(4);
  std::atomic<int> total{0};
  util::parallel_for(0, 8, 1, [&](std::ptrdiff_t) {
    util::parallel_for(0, 8, 1,
                       [&](std::ptrdiff_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ParallelRuntime, EnvVariableControlsThreadCount) {
  // set_num_threads(0) falls through to HYPERSPACE_NUM_THREADS.
  util::set_num_threads(0);
  ASSERT_EQ(setenv("HYPERSPACE_NUM_THREADS", "3", 1), 0);
  EXPECT_EQ(util::max_threads(), 3);
  ASSERT_EQ(unsetenv("HYPERSPACE_NUM_THREADS"), 0);
  ThreadGuard guard(5);
  EXPECT_EQ(util::max_threads(), 5);
}

// -------------------------------------------------- kernels — arithmetic ⊕.⊗

TEST(ParallelKernels, MxmBothStrategiesArithmetic) {
  using S = semiring::PlusTimes<double>;
  const auto a = random_double_matrix(128, 96, 1500, 1);
  const auto b = random_double_matrix(96, 80, 1500, 2);
  require_thread_invariant([&] { return mxm_gustavson<S>(a, b); });
  require_thread_invariant([&] { return mxm_hash<S>(a, b); });
  ThreadGuard guard(8);
  EXPECT_TRUE(mxm_gustavson<S>(a, b) == mxm_hash<S>(a, b));
}

TEST(ParallelKernels, EwiseAddMultArithmetic) {
  using S = semiring::PlusTimes<double>;
  const auto a = random_double_matrix(200, 150, 3000, 3);
  const auto b = random_double_matrix(200, 150, 3000, 4);
  require_thread_invariant([&] { return ewise_add<S>(a, b); });
  require_thread_invariant([&] { return ewise_mult<S>(a, b); });
}

TEST(ParallelKernels, ReduceFamilyArithmetic) {
  using Add = semiring::AddMonoidOf<semiring::PlusTimes<double>>;
  const auto a = random_double_matrix(300, 200, 4000, 5);
  require_thread_invariant([&] { return reduce_rows<Add>(a); });
  require_thread_invariant([&] { return reduce_cols<Add>(a); });
  const auto total = require_thread_invariant([&] {
    return std::vector<double>{reduce_all<Add>(a)};
  });
  // Integer-valued entries: the chunked fold must equal the plain sum.
  double expect = 0;
  for (const auto& t : a.to_triples()) expect += t.val;
  EXPECT_DOUBLE_EQ(total[0], expect);
}

TEST(ParallelKernels, TransposeCountingAndSortPaths) {
  const auto a = random_double_matrix(256, 192, 6000, 6);  // counting path
  const auto t = require_thread_invariant([&] { return transpose(a); });
  EXPECT_TRUE(transpose(t) == a);
  // Wide hypersparse input exercises the sort fallback (nnz < ncols).
  const auto wide = random_double_matrix(64, 100000, 500, 7);
  const auto wt = require_thread_invariant([&] { return transpose(wide); });
  EXPECT_TRUE(transpose(wt) == wide);
}

TEST(ParallelKernels, ApplySelectZeroNormMask) {
  using S = semiring::PlusTimes<double>;
  const auto a = random_double_matrix(150, 150, 4000, 8);
  const auto m = random_double_matrix(150, 150, 2000, 9);
  require_thread_invariant([&] {
    return apply(a, [](const double& v) { return v * 2.0; });
  });
  require_thread_invariant([&] {
    return select(a, [](Index r, Index c, const double&) {
      return (r + c) % 2 == 0;
    });
  });
  require_thread_invariant([&] { return zero_norm<S>(a); });
  require_thread_invariant([&] { return mask_select(a, m); });
  require_thread_invariant([&] {
    return mask_select(a, m, MaskDesc{.complement = true});
  });
}

TEST(ParallelKernels, KronArithmetic) {
  using S = semiring::PlusTimes<double>;
  const auto a = random_double_matrix(24, 24, 200, 10);
  const auto b = random_double_matrix(16, 16, 100, 11);
  require_thread_invariant([&] { return kron<S>(a, b); });
}

TEST(ParallelKernels, MxvPushPullAgreeWithMxm) {
  using S = semiring::PlusTimes<double>;
  const auto a = random_double_matrix(180, 140, 3000, 12);
  util::Xoshiro256 rng(13);
  std::vector<double> x(140), y(180);
  for (auto& v : x) v = static_cast<double>(rng.bounded(5));
  for (auto& v : y) v = static_cast<double>(rng.bounded(5));

  const auto pull = require_thread_invariant([&] { return mxv_pull<S>(a, x); });
  const auto push = require_thread_invariant([&] { return vxm_push<S>(y, a); });

  // Dense reference against the mxm formulation.
  std::vector<double> pull_ref(180, 0.0), push_ref(140, 0.0);
  for (const auto& t : a.to_triples()) {
    pull_ref[static_cast<std::size_t>(t.row)] +=
        t.val * x[static_cast<std::size_t>(t.col)];
    push_ref[static_cast<std::size_t>(t.col)] +=
        y[static_cast<std::size_t>(t.row)] * t.val;
  }
  for (std::size_t i = 0; i < pull.size(); ++i) {
    EXPECT_DOUBLE_EQ(pull[i], pull_ref[i]) << "pull row " << i;
  }
  for (std::size_t j = 0; j < push.size(); ++j) {
    EXPECT_DOUBLE_EQ(push[j], push_ref[j]) << "push col " << j;
  }
}

// ---------------------------------------------------- kernels — tropical ⊕.⊗

TEST(ParallelKernels, TropicalSemiring) {
  using MP = semiring::MinPlus<double>;
  using S = semiring::PlusTimes<double>;
  const auto costs = random_double_matrix(100, 100, 2000, 14);
  // min.+ product = single-hop-constrained shortest paths.
  require_thread_invariant([&] { return mxm<MP>(costs, costs); });
  require_thread_invariant([&] { return ewise_add<MP>(costs, costs); });
  require_thread_invariant([&] {
    return reduce_rows<semiring::AddMonoidOf<MP>>(costs);
  });
  std::vector<double> x(100, 1.0);
  require_thread_invariant([&] { return mxv_pull<MP>(costs, x); });
  (void)sizeof(S);
}

// ------------------------------------------------- kernels — set algebra ⊕.⊗

TEST(ParallelKernels, SetAlgebraSemiring) {
  using S = semiring::UnionIntersect;
  const auto a = random_set_matrix(64, 600, 15);
  const auto b = random_set_matrix(64, 600, 16);
  require_thread_invariant([&] { return mxm<S>(a, b); });
  require_thread_invariant([&] { return ewise_add<S>(a, b); });
  require_thread_invariant([&] { return ewise_mult<S>(a, b); });
  require_thread_invariant([&] {
    return reduce_all<semiring::AddMonoidOf<S>>(a);
  });
  require_thread_invariant([&] { return transpose(a); });
}

// --------------------------------------------------------- graph algorithms

// ------------------------------------------------- adversarial skew sweep
//
// The work-stealing scheduler moves whole chunks between workers, so steal
// order may change timing but never bytes. These inputs are chosen to make
// the steal path hot: a hub row holding ~95% of the flops (one singleton
// tile dwarfs everything), a matrix with no stored entries at all (every
// tile is trivially cheap), and a power-law row-length profile (tiles of
// wildly different weight). Each kernel must stay bit-identical across
// thread counts and across repeated runs at the same thread count.

/// Row 0 carries ~95% of the entries; the rest are scattered thinly.
Matrix<double> hub_matrix(Index n, std::uint64_t seed) {
  using S = semiring::PlusTimes<double>;
  util::Xoshiro256 rng(seed);
  std::vector<Triple<double>> t;
  const std::size_t hub = static_cast<std::size_t>(n) * 19;  // ~95% of nnz
  const std::size_t tail = static_cast<std::size_t>(n);
  t.reserve(hub + tail);
  for (std::size_t e = 0; e < hub; ++e) {
    t.push_back({0, static_cast<Index>(rng.bounded(static_cast<std::uint64_t>(n))),
                 static_cast<double>(1 + rng.bounded(4))});
  }
  for (std::size_t e = 0; e < tail; ++e) {
    t.push_back({static_cast<Index>(1 + rng.bounded(static_cast<std::uint64_t>(n - 1))),
                 static_cast<Index>(rng.bounded(static_cast<std::uint64_t>(n))),
                 static_cast<double>(1 + rng.bounded(4))});
  }
  return Matrix<double>::from_triples<S>(n, n, std::move(t));
}

/// Row i holds roughly n / (i + 1) entries — a Zipf-like length profile.
Matrix<double> power_law_matrix(Index n, std::uint64_t seed) {
  using S = semiring::PlusTimes<double>;
  util::Xoshiro256 rng(seed);
  std::vector<Triple<double>> t;
  for (Index i = 0; i < n; ++i) {
    const std::size_t len = static_cast<std::size_t>(n) /
                            (static_cast<std::size_t>(i) + 1);
    for (std::size_t e = 0; e < len; ++e) {
      t.push_back({i, static_cast<Index>(rng.bounded(static_cast<std::uint64_t>(n))),
                   static_cast<double>(1 + rng.bounded(4))});
    }
  }
  return Matrix<double>::from_triples<S>(n, n, std::move(t));
}

/// Like require_thread_invariant, but repeats each thread count several
/// times: a determinism bug that depends on steal interleaving may only
/// show up on some runs, so one sample per count is not enough.
template <typename F>
void require_thread_invariant_repeated(F&& make, int repeats = 3) {
  ThreadGuard guard(1);
  const auto reference = make();
  for (const int nt : kThreadCounts) {
    util::set_num_threads(nt);
    for (int r = 0; r < repeats; ++r) {
      const auto result = make();
      EXPECT_TRUE(result == reference)
          << "diverged at " << nt << " threads, run " << r;
    }
  }
}

void sweep_kernels(const Matrix<double>& a) {
  using S = semiring::PlusTimes<double>;
  using Add = semiring::AddMonoidOf<S>;
  std::vector<double> x(static_cast<std::size_t>(a.ncols()));
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<double>(1 + (i % 7));
  }
  require_thread_invariant_repeated([&] { return mxm<S>(a, a); });
  require_thread_invariant_repeated([&] { return ewise_add<S>(a, a); });
  require_thread_invariant_repeated([&] { return reduce_rows<Add>(a); });
  require_thread_invariant_repeated([&] { return mxv_pull<S>(a, x); });
  require_thread_invariant_repeated(
      [&] { return std::vector<double>{reduce_all<Add>(a)}; });
}

TEST(SkewDeterminism, HubRowDominatesFlops) { sweep_kernels(hub_matrix(96, 21)); }

TEST(SkewDeterminism, AllRowsEmpty) {
  using S = semiring::PlusTimes<double>;
  sweep_kernels(Matrix<double>::from_triples<S>(128, 128, {}));
}

TEST(SkewDeterminism, PowerLawRowLengths) {
  sweep_kernels(power_law_matrix(96, 22));
}

TEST(SkewDeterminism, StaticAndStealSchedulersAgree) {
  // The scheduler choice is a timing knob only: both must produce the same
  // bytes, because chunk boundaries are fixed by the grain and each chunk
  // writes disjoint slots.
  using S = semiring::PlusTimes<double>;
  const auto a = hub_matrix(80, 23);
  ThreadGuard guard(8);
  util::set_scheduler(util::Scheduler::kStatic);
  const auto c_static = mxm<S>(a, a);
  const auto r_static = util::parallel_reduce(
      0, 5000, 64, 0.0,
      [](std::ptrdiff_t i) { return static_cast<double>(i) * 0.5; },
      [](double x, double y) { return x + y; });
  util::set_scheduler(util::Scheduler::kWorkSteal);
  const auto c_steal = mxm<S>(a, a);
  const auto r_steal = util::parallel_reduce(
      0, 5000, 64, 0.0,
      [](std::ptrdiff_t i) { return static_cast<double>(i) * 0.5; },
      [](double x, double y) { return x + y; });
  util::reset_scheduler();
  EXPECT_TRUE(c_static == c_steal);
  EXPECT_EQ(r_static, r_steal);  // bit-identical, not approximately
}

TEST(SkewDeterminism, CostHintCoversEveryIndexExactlyOnce) {
  // A pathological hint (one index claims nearly all the weight, many claim
  // zero) changes only the tiling — never which indices run or how often.
  for (const int nt : kThreadCounts) {
    ThreadGuard guard(nt);
    constexpr std::ptrdiff_t n = 997;  // prime: no tile divides it evenly
    std::vector<std::atomic<int>> hits(n);
    util::parallel_for(
        0, n, 3,
        [&](std::ptrdiff_t i) { hits[static_cast<std::size_t>(i)].fetch_add(1); },
        [](std::ptrdiff_t i) -> std::uint64_t {
          return i == 500 ? 1u << 20 : (i % 3 == 0 ? 0u : 1u);
        });
    for (std::ptrdiff_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
    }
  }
}

// ------------------------------------------------------- scheduler stress
//
// Aimed at TSan as much as at correctness: several OS threads launch
// parallel regions concurrently (losers of the region lock run inline),
// regions nest, and costs are skewed so steals actually happen.

TEST(SchedulerStress, ConcurrentRegionsNestedAndSkewed) {
  ThreadGuard guard(4);
  constexpr int kOuter = 4;
  constexpr std::ptrdiff_t kPer = 512;
  std::vector<std::atomic<long>> sums(kOuter);
  std::vector<std::thread> launchers;
  launchers.reserve(kOuter);
  for (int t = 0; t < kOuter; ++t) {
    launchers.emplace_back([&, t] {
      for (int round = 0; round < 8; ++round) {
        util::parallel_for(
            0, kPer, 1,
            [&](std::ptrdiff_t i) {
              if (i % 64 == 0) {  // nested region on a worker thread
                util::parallel_for(0, 16, 1, [&](std::ptrdiff_t j) {
                  sums[static_cast<std::size_t>(t)].fetch_add(
                      j == 0 ? 1 : 0, std::memory_order_relaxed);
                });
              }
              sums[static_cast<std::size_t>(t)].fetch_add(
                  static_cast<long>(i), std::memory_order_relaxed);
            },
            [](std::ptrdiff_t i) -> std::uint64_t {
              return i % 128 == 0 ? 4096u : 1u;
            });
      }
    });
  }
  for (auto& th : launchers) th.join();
  const long expect = 8 * (kPer * (kPer - 1) / 2 + kPer / 64);
  for (int t = 0; t < kOuter; ++t) {
    EXPECT_EQ(sums[static_cast<std::size_t>(t)].load(), expect) << "thread " << t;
  }
}

TEST(SchedulerStress, RepeatedReduceUnderStealIsStable) {
  ThreadGuard guard(8);
  const auto a = power_law_matrix(64, 24);
  using Add = semiring::AddMonoidOf<semiring::PlusTimes<double>>;
  const double first = reduce_all<Add>(a);
  for (int r = 0; r < 16; ++r) {
    ASSERT_EQ(reduce_all<Add>(a), first) << "run " << r;
  }
}

// --------------------------------------------------------- graph algorithms

TEST(ParallelKernels, HypergraphBfsAndPagerank) {
  const auto edges = util::rmat_edges({.scale = 9, .edge_factor = 8, .seed = 17});
  using S = semiring::PlusTimes<double>;
  std::vector<Triple<double>> t;
  t.reserve(edges.size());
  for (const auto& e : edges) t.push_back({e.src, e.dst, 1.0});
  const auto A = Matrix<double>::from_triples<S>(1 << 9, 1 << 9, std::move(t));

  const auto levels = require_thread_invariant(
      [&] { return hypergraph::bfs_array(A, 0); });
  ThreadGuard guard(8);
  EXPECT_EQ(levels, hypergraph::bfs_queue(A, 0));

  require_thread_invariant([&] { return hypergraph::pagerank(A); });
}

}  // namespace
