// Tests for the §IV-driven query planner: annihilation prechecks must skip
// exactly the products that are provably zero and never change results.

#include <gtest/gtest.h>

#include "db/planner.hpp"
#include "semiring/all.hpp"
#include "util/rng.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::array;
using namespace hyperspace::db;
using S = semiring::PlusTimes<double>;
using Arr = AssocArray<S>;

Arr block(std::int64_t key_base, std::uint64_t seed, int entries = 20) {
  util::Xoshiro256 rng(seed);
  std::vector<Key> k1, k2;
  std::vector<double> v;
  for (int i = 0; i < entries; ++i) {
    k1.emplace_back(key_base + static_cast<std::int64_t>(rng.bounded(16)));
    k2.emplace_back(key_base + static_cast<std::int64_t>(rng.bounded(16)));
    v.push_back(1.0 + static_cast<double>(rng.bounded(4)));
  }
  return Arr(k1, k2, v);
}

TEST(Planner, MtimesSkipsDisjointInnerKeys) {
  PlanStats stats;
  const auto a = block(0, 1);
  const auto b = block(1000, 2);
  const auto r = planned_mtimes(a, b, &stats);
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(stats.products_skipped, 1);
  EXPECT_EQ(stats.products_evaluated, 0);
}

TEST(Planner, MtimesEvaluatesOverlappingKeys) {
  PlanStats stats;
  const auto a = block(0, 1);
  const auto b = block(0, 2);
  const auto r = planned_mtimes(a, b, &stats);
  EXPECT_EQ(r, mtimes(a, b));
  EXPECT_EQ(stats.products_evaluated, 1);
  EXPECT_EQ(stats.products_skipped, 0);
}

TEST(Planner, MultSkipsDisjointPatterns) {
  PlanStats stats;
  const auto r = planned_mult(block(0, 1), block(1000, 2), &stats);
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(stats.mults_skipped, 1);
}

TEST(Planner, MultMatchesUnplanned) {
  PlanStats stats;
  const auto a = block(0, 3);
  const auto b = block(0, 4);
  EXPECT_EQ(planned_mult(a, b, &stats), mult(a, b));
}

TEST(Planner, MultOfProductFullPrecheck) {
  PlanStats stats;
  // row(A) disjoint from row(B): §IV form 1 fires without computing BC.
  const auto a = block(0, 5);
  const auto b = block(1000, 6);
  const auto c = block(1000, 7);
  const auto r = planned_mult_of_product(a, b, c, &stats);
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(stats.products_evaluated, 0);
  EXPECT_GE(stats.products_skipped + stats.mults_skipped, 1);
}

TEST(Planner, MultOfProductMatchesDirectEvaluation) {
  const auto a = block(0, 8);
  const auto b = block(0, 9);
  const auto c = block(0, 10);
  EXPECT_EQ(planned_mult_of_product(a, b, c),
            mult(a, mtimes(b, c)));
}

TEST(Planner, ChainEarlyExit) {
  PlanStats stats;
  const std::vector<Arr> chain = {block(0, 1), block(0, 2), block(5000, 3),
                                  block(5000, 4)};
  const auto r = planned_chain(chain, &stats);
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(stats.products_evaluated, 0);  // precheck fired before any work
}

TEST(Planner, ChainMatchesFoldWhenConnected) {
  const std::vector<Arr> chain = {block(0, 11), block(0, 12), block(0, 13)};
  const auto expect = mtimes(mtimes(chain[0], chain[1]), chain[2]);
  EXPECT_EQ(planned_chain(chain), expect);
}

TEST(Planner, EmptyChainIsZero) {
  EXPECT_TRUE(planned_chain(std::vector<Arr>{}).empty());
}

TEST(Planner, SingleFactorChainIsIdentity) {
  const auto a = block(0, 14);
  EXPECT_EQ(planned_chain(std::vector<Arr>{a}), a);
}

TEST(Planner, MaskedMtimesMatchesFilterAfterProduct) {
  const auto a = block(0, 20);
  const auto b = block(0, 21);
  const auto mask = block(0, 22).zero_norm();
  PlanStats stats;
  const auto fused = planned_mtimes_masked(a, b, mask, {}, &stats);
  // Reference: full product, then keep only positions present in the mask.
  const auto full = mtimes(a, b);
  std::vector<Arr::Entry> kept;
  for (const auto& [r, c, v] : full.entries()) {
    if (mask.get(r, c)) kept.emplace_back(r, c, v);
  }
  EXPECT_EQ(fused.entries(), kept);
  EXPECT_EQ(stats.products_evaluated, 1);
  EXPECT_GT(stats.mask_flops_kept + stats.mask_flops_skipped, 0u);
}

TEST(Planner, MaskedMtimesEmptyMaskSkipsProductEntirely) {
  PlanStats stats;
  const auto a = block(0, 23);
  const auto b = block(0, 24);
  const auto r = planned_mtimes_masked(a, b, Arr(), {}, &stats);
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(stats.products_evaluated, 0);
  EXPECT_EQ(stats.products_skipped, 1);
  EXPECT_EQ(stats.mask_flops_kept + stats.mask_flops_skipped, 0u);
}

TEST(Planner, MaskedMtimesDisjointMaskKeysSkip) {
  // Mask rows/cols disjoint from the product's key spaces ⇒ nothing can
  // survive; the §V-B pushdown skips the product without computing it.
  PlanStats stats;
  const auto a = block(0, 25);
  const auto b = block(0, 26);
  const auto far_mask = block(9000, 27).zero_norm();
  const auto r = planned_mtimes_masked(a, b, far_mask, {}, &stats);
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(stats.products_evaluated, 0);
  EXPECT_EQ(stats.products_skipped, 1);
}

TEST(Planner, MaskedMtimesComplementSenseStillEvaluates) {
  // ¬(empty mask) allows everything: must equal the plain product.
  PlanStats stats;
  const auto a = block(0, 28);
  const auto b = block(0, 29);
  const auto r =
      planned_mtimes_masked(a, b, Arr(), {.complement = true}, &stats);
  EXPECT_EQ(r, mtimes(a, b));
  EXPECT_EQ(stats.products_evaluated, 1);
  EXPECT_EQ(stats.mask_flops_skipped, 0u);
  EXPECT_GT(stats.mask_flops_kept, 0u);
}

TEST(Planner, NullStatsIsSafe) {
  const auto a = block(0, 15);
  EXPECT_NO_THROW(planned_mtimes(a, a));
  EXPECT_NO_THROW(planned_mult(a, a));
}

}  // namespace
