// Integration tests for the Fig 6 polystore: the same neighbor query
// answered by SQL scan, NoSQL triple store, NewSQL adjacency matrix, and
// the associative-array semilink select — all four must agree, on the
// paper's worked example and on random synthetic traffic.

#include <gtest/gtest.h>

#include "db/polystore.hpp"
#include "util/generators.hpp"

namespace {

using namespace hyperspace;
using namespace hyperspace::db;

FlowPolystore fig6_store() {
  FlowPolystore ps;
  // The exact Fig 6 table.
  ps.insert({"1.1.1.1", "http", "0.0.0.0"});
  ps.insert({"0.0.0.0", "udp", "1.1.1.1"});
  ps.insert({"1.1.1.1", "ssh", "2.2.2.2"});
  return ps;
}

TEST(Polystore, Fig6NeighborsOf1111) {
  // "Operation: finding 1.1.1.1's nearest neighbors" ⇒ {0.0.0.0, 2.2.2.2}.
  const auto ps = fig6_store();
  const std::vector<std::string> expect = {"0.0.0.0", "2.2.2.2"};
  EXPECT_EQ(ps.neighbors_sql("1.1.1.1"), expect);
  EXPECT_EQ(ps.neighbors_nosql("1.1.1.1"), expect);
  EXPECT_EQ(ps.neighbors_newsql("1.1.1.1"), expect);
  EXPECT_EQ(ps.neighbors_semilink("1.1.1.1"), expect);
}

TEST(Polystore, Fig6OtherVertices) {
  const auto ps = fig6_store();
  const std::vector<std::string> expect = {"1.1.1.1"};
  EXPECT_EQ(ps.neighbors_sql("0.0.0.0"), expect);
  EXPECT_EQ(ps.neighbors_nosql("0.0.0.0"), expect);
  EXPECT_EQ(ps.neighbors_newsql("0.0.0.0"), expect);
  EXPECT_EQ(ps.neighbors_semilink("0.0.0.0"), expect);
  // 2.2.2.2 has no outgoing flows.
  EXPECT_TRUE(ps.neighbors_sql("2.2.2.2").empty());
  EXPECT_TRUE(ps.neighbors_newsql("2.2.2.2").empty());
}

TEST(Polystore, UnknownEntity) {
  const auto ps = fig6_store();
  EXPECT_TRUE(ps.neighbors_sql("9.9.9.9").empty());
  EXPECT_TRUE(ps.neighbors_nosql("9.9.9.9").empty());
  EXPECT_TRUE(ps.neighbors_newsql("9.9.9.9").empty());
  EXPECT_TRUE(ps.neighbors_semilink("9.9.9.9").empty());
}

TEST(Polystore, TripleStoreInNeighbors) {
  const auto ps = fig6_store();
  EXPECT_EQ(ps.triples().in_neighbors("2.2.2.2"),
            (std::vector<std::string>{"1.1.1.1"}));
  EXPECT_EQ(ps.triples().objects("1.1.1.1", "http"),
            (std::vector<std::string>{"0.0.0.0"}));
  EXPECT_TRUE(ps.triples().objects("1.1.1.1", "smtp").empty());
}

TEST(Polystore, MatrixDbInNeighbors) {
  const auto ps = fig6_store();
  EXPECT_EQ(ps.matrix().in_neighbors("1.1.1.1"),
            (std::vector<std::string>{"0.0.0.0"}));
}

TEST(Polystore, RelationalSetOperations) {
  const auto ps = fig6_store();
  const auto from_1 = ps.relational().where("src", "1.1.1.1");
  const auto http = ps.relational().where("link", "http");
  const auto both = table_intersection(from_1, http);
  EXPECT_EQ(both.size(), 1u);
  const auto either = table_union(from_1, http);
  EXPECT_EQ(either.size(), 2u);
}

TEST(Polystore, DuplicateFlowsCollapseInNeighborLists) {
  FlowPolystore ps;
  ps.insert({"a", "http", "b"});
  ps.insert({"a", "http", "b"});
  ps.insert({"a", "udp", "b"});
  const std::vector<std::string> expect = {"b"};
  EXPECT_EQ(ps.neighbors_sql("a"), expect);
  EXPECT_EQ(ps.neighbors_nosql("a"), expect);
  EXPECT_EQ(ps.neighbors_newsql("a"), expect);
  EXPECT_EQ(ps.neighbors_semilink("a"), expect);
}

// Property sweep: the four engines agree on random synthetic traffic.
class PolystoreAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PolystoreAgreement, AllEnginesAgreeOnRandomTraffic) {
  util::Xoshiro256 rng(GetParam());
  const char* protos[] = {"http", "udp", "ssh", "dns"};
  FlowPolystore ps;
  std::vector<std::string> ips;
  for (int i = 0; i < 25; ++i) ips.push_back(util::synthetic_ip(rng, 1 << 30));
  for (int i = 0; i < 200; ++i) {
    ps.insert({ips[rng.bounded(ips.size())],
               protos[rng.bounded(4)],
               ips[rng.bounded(ips.size())]});
  }
  for (const auto& ip : ips) {
    const auto sql = ps.neighbors_sql(ip);
    EXPECT_EQ(ps.neighbors_nosql(ip), sql) << ip;
    EXPECT_EQ(ps.neighbors_newsql(ip), sql) << ip;
    EXPECT_EQ(ps.neighbors_semilink(ip), sql) << ip;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolystoreAgreement,
                         ::testing::Values(1, 2, 3));

}  // namespace
