// Unit tests for the deterministic RNG (util/rng.hpp).

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"

namespace {

using hyperspace::util::Xoshiro256;

TEST(Rng, SameSeedSameStream) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, NearbySeedsUnrelated) {
  // splitmix64 seeding: adjacent seeds must not give correlated outputs.
  Xoshiro256 a(100), b(101);
  EXPECT_NE(a(), b());
}

TEST(Rng, BoundedStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
}

TEST(Rng, BoundedOneIsAlwaysZero) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Rng, BoundedCoversRange) {
  Xoshiro256 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.bounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Xoshiro256 rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

}  // namespace
